// CG-solver: a conjugate-gradient solve where every matrix-vector product
// runs through the MMU SpMV operator (the DASP tensor-core algorithm) —
// the integration path an application team would take after the advisor
// example says the port pays off.
//
// The system is the synthesized bcsstk39 stiffness matrix made strictly
// diagonally dominant (hence SPD); the example reports convergence and the
// simulated time/energy the solve would cost per GPU.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cubie"
	"repro/internal/kernels/spmv"
	"repro/internal/lcg"
	"repro/internal/sparse"
)

func main() {
	base, err := cubie.SynthesizeMatrix("spmsrts")
	if err != nil {
		log.Fatal(err)
	}
	m := makeSPD(base)
	op := spmv.NewOperator(m)

	// Right-hand side from a known solution so the error is measurable.
	n := m.Rows
	xTrue := make([]float64, n)
	lcg.New(42).Fill(xTrue)
	b := op.Apply(xTrue)

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rs := dot(r, r)
	norm0 := math.Sqrt(rs)

	fmt.Printf("CG on %dx%d SPD system (nnz %d), MMU SpMV operator\n\n",
		m.Rows, m.Cols, m.NNZ())
	iters := 0
	for ; iters < 500; iters++ {
		ap := op.Apply(p)
		alpha := rs / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if iters%10 == 0 {
			fmt.Printf("  iter %3d  relative residual %.3e\n",
				iters, math.Sqrt(rsNew)/norm0)
		}
		if math.Sqrt(rsNew) < 1e-10*norm0 {
			iters++
			break
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	var maxErr float64
	for i := range x {
		if d := math.Abs(x[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("\nconverged in %d iterations; max |x - x_true| = %.3e\n", iters, maxErr)

	// What would the solve cost on real MMU silicon? One SpMV dominates
	// each iteration; reuse the suite's SpMV TC profile for the estimate.
	suite := cubie.NewSuite()
	w, _ := suite.ByName("SpMV")
	res, _ := w.Run(w.Cases()[0], cubie.TC)
	fmt.Println("\nprojected per-solve cost (SpMV-dominated):")
	for _, dev := range cubie.Devices() {
		rep := cubie.Simulate(dev, res.Profile)
		fmt.Printf("  %-5s %8.2f ms, %6.1f J\n",
			dev.Name, rep.Time*float64(iters)*1e3, rep.Energy*float64(iters))
	}
}

// makeSPD symmetrizes m and boosts its diagonal to strict dominance.
func makeSPD(m *sparse.CSR) *sparse.CSR {
	coo := sparse.NewCOO(m.Rows, m.Cols)
	rowAbs := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := int(m.ColIdx[k])
			v := m.Vals[k] / 2
			if i != j {
				coo.Add(i, j, v)
				coo.Add(j, i, v)
				rowAbs[i] += math.Abs(v)
				rowAbs[j] += math.Abs(v)
			}
		}
	}
	for i := 0; i < m.Rows; i++ {
		coo.Add(i, i, rowAbs[i]+1)
	}
	return coo.ToCSR()
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
