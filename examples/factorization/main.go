// Factorization: a blocked Cholesky solve on the MMU — the dense
// linear-algebra extension beyond the ten Cubie kernels (the paper cites
// tensor-core QR, tridiagonalization, and eigensolvers as this line of
// work). Factors an SPD covariance-style matrix with MMA trailing updates,
// solves a system by forward/back substitution, and projects the cost per
// GPU including the Blackwell FP64 regression.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cubie"
)

func main() {
	const n = 256
	a := cubie.RandomSPD(n, 2026)
	l, err := cubie.Cholesky(a)
	if err != nil {
		log.Fatal(err)
	}

	// Solve A·x = b through the factor.
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := solve(l, b)

	// Residual check.
	var maxRes float64
	for i := 0; i < n; i++ {
		var ax float64
		for j := 0; j < n; j++ {
			ax += a.At(i, j) * x[j]
		}
		if d := math.Abs(ax - b[i]); d > maxRes {
			maxRes = d
		}
	}
	fmt.Printf("Cholesky solve, n = %d: max residual %.3e\n\n", n, maxRes)

	fmt.Println("Projected factorization cost at scale (n = 16384):")
	fmt.Printf("%-6s %10s %12s %12s\n", "GPU", "time (ms)", "TFLOPS", "energy (J)")
	p := cubie.CholeskyProfile(16384)
	for _, d := range cubie.Devices() {
		r := cubie.Simulate(d, p)
		fmt.Printf("%-6s %10.1f %12.1f %12.1f\n",
			d.Name, r.Time*1e3, p.TensorFLOPs/r.Time/1e12, r.Energy)
	}
	fmt.Println("\nNote the ordering: H200 leads despite B200's newer silicon —")
	fmt.Println("the factorization is compute-bound and Blackwell's FP64 tensor")
	fmt.Println("peak regressed to 40 TFLOPS (Section 11, Figure 12).")
}

// solve performs L·Lᵀ·x = b via forward then backward substitution.
func solve(l *cubie.Matrix, b []float64) []float64 {
	n := len(b)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
