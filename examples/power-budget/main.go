// Power-budget: choose a GPU for an energy-constrained HPC procurement.
//
// The center's mixed workload is approximated by the Cubie suite; the
// example computes the energy and energy-delay product of every workload's
// TC variant on A100, H200, and B200, aggregates per device, and flags the
// Blackwell FP64 tensor regression the paper warns about (Section 11).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cubie"
)

func main() {
	suite := cubie.NewSuite()
	fmt.Println("Suite-wide energy accounting (TC variants, representative cases)")
	fmt.Printf("\n%-10s", "workload")
	for _, d := range cubie.Devices() {
		fmt.Printf(" %18s", d.Name+" E(J)/run")
	}
	fmt.Println()

	totalE := map[string]float64{}
	logEDP := map[string]float64{}
	n := 0
	for _, w := range suite.Workloads() {
		res, err := w.Run(w.Representative(), cubie.TC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", w.Name())
		for _, d := range cubie.Devices() {
			r := cubie.Simulate(d, res.Profile)
			tr := cubie.RecordPower(d, r, w.Repeats())
			fmt.Printf(" %18.2f", tr.Energy()/float64(w.Repeats()))
			totalE[d.Name] += tr.Energy()
			logEDP[d.Name] += math.Log(tr.EDP())
		}
		fmt.Println()
		n++
	}

	fmt.Println("\nPer-device aggregate over the suite's measurement loops:")
	fmt.Printf("%-6s %16s %20s\n", "GPU", "energy (kJ)", "geomean EDP (J·s)")
	bestGPU, bestEDP := "", math.Inf(1)
	for _, d := range cubie.Devices() {
		geo := math.Exp(logEDP[d.Name] / float64(n))
		fmt.Printf("%-6s %16.1f %20.2f\n", d.Name, totalE[d.Name]/1e3, geo)
		if geo < bestEDP {
			bestEDP, bestGPU = geo, d.Name
		}
	}
	fmt.Printf("\nRecommendation: %s minimizes geomean EDP for this mix.\n", bestGPU)

	h, b := cubie.H200(), cubie.B200()
	if b.TensorFP64 < h.TensorFP64 {
		fmt.Printf("\nCaveat (Section 11): B200's FP64 tensor peak regressed to %.0f TFLOPS\n",
			b.TensorFP64)
		fmt.Printf("(H200: %.1f). Compute-bound FP64 kernels lose headroom on Blackwell\n",
			h.TensorFP64)
		fmt.Println("even though its 8 TB/s memory system helps memory-bound ones.")
	}
}
