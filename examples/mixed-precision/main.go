// Mixed-precision: the Figure 12 story made concrete. FP16 tensor peaks
// scale 312 → 989.5 → 1800 TFLOPS across Ampere/Hopper/Blackwell while the
// FP64 peak regresses on Blackwell — but what does dropping to half
// precision cost a scientific kernel numerically? This example multiplies
// the same matrices through the FP64 DMMA path and the FP16 HMMA path
// (FP32 accumulate) and compares error against throughput headroom.
package main

import (
	"fmt"
	"math"

	"repro/cubie"
	"repro/internal/fp16"
	"repro/internal/lcg"
	"repro/internal/mmu"
)

func main() {
	const n = 128
	g := lcg.New(7)
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	g.Fill(a)
	g.Fill(b)

	// FP64 reference via the DMMA semantics.
	ref := dmmaGEMM(a, b, n)
	// FP16 storage, FP32 accumulation via the HMMA semantics.
	half := fp16.GEMM(fp16.Quantize(a), fp16.Quantize(b), n, n, n)

	var maxAbs, sumAbs float64
	for i := range ref {
		d := math.Abs(half[i] - ref[i])
		sumAbs += d
		if d > maxAbs {
			maxAbs = d
		}
	}
	fmt.Printf("GEMM %dx%dx%d, inputs in (-2, 2)\n\n", n, n, n)
	var refScale float64
	for _, v := range ref {
		refScale += math.Abs(v)
	}
	refScale /= float64(len(ref))
	fmt.Printf("FP16-vs-FP64 error: avg %.3e, max %.3e (mean |C| = %.2f)\n",
		sumAbs/float64(len(ref)), maxAbs, refScale)
	fmt.Printf("≈%.0f significant decimal digits survive, versus ~16 at FP64\n\n",
		-math.Log10(sumAbs/float64(len(ref))/refScale))

	fmt.Println("Peak-throughput headroom (Figure 12):")
	fmt.Printf("%-6s %14s %14s %10s\n", "GPU", "FP16 TC (TF)", "FP64 TC (TF)", "ratio")
	for _, d := range cubie.Devices() {
		fmt.Printf("%-6s %14.1f %14.1f %9.1fx\n",
			d.Name, d.TensorFP16, d.TensorFP64, d.TensorFP16/d.TensorFP64)
	}
	fmt.Println("\nThe FP16/FP64 ratio widens 16x → 14.8x → 45x across generations:")
	fmt.Println("Blackwell's FP64 tensor regression (66.9 → 40 TFLOPS) pushes")
	fmt.Println("scientific codes toward mixed precision — at the accuracy cost")
	fmt.Println("measured above (Section 11's warning).")
}

// dmmaGEMM multiplies via chained FP64 m8n8k4 MMAs.
func dmmaGEMM(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	aT := make([]float64, mmu.M*mmu.K)
	bT := make([]float64, mmu.K*mmu.N)
	cT := make([]float64, mmu.M*mmu.N)
	for i0 := 0; i0 < n; i0 += mmu.M {
		for j0 := 0; j0 < n; j0 += mmu.N {
			for i := range cT {
				cT[i] = 0
			}
			for k0 := 0; k0 < n; k0 += mmu.K {
				for i := 0; i < mmu.M; i++ {
					copy(aT[i*mmu.K:], a[(i0+i)*n+k0:(i0+i)*n+k0+mmu.K])
				}
				for k := 0; k < mmu.K; k++ {
					copy(bT[k*mmu.N:], b[(k0+k)*n+j0:(k0+k)*n+j0+mmu.N])
				}
				mmu.DMMATile(cT, aT, bT)
			}
			for i := 0; i < mmu.M; i++ {
				copy(c[(i0+i)*n+j0:], cT[i*mmu.N:(i+1)*mmu.N])
			}
		}
	}
	return c
}
