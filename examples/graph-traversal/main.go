// Graph-traversal: a Graph500-style reachability study on the Table 3
// graphs, comparing the bit-tensor-core BFS (BerryBees class) against a
// frontier-expansion baseline in GTEPS, and reporting traversal structure
// (levels, reached set) from the real executions.
package main

import (
	"fmt"
	"log"

	"repro/cubie"
)

func main() {
	suite := cubie.NewSuite()
	bfs, err := suite.ByName("BFS")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Bit-MMU BFS vs frontier baseline (synthesized Table 3 graphs)")
	fmt.Printf("\n%-20s %9s %8s %8s", "graph", "reached", "depth", "fill%")
	for _, d := range cubie.Devices() {
		fmt.Printf(" %14s", d.Name+" GTEPS")
	}
	fmt.Println()

	for _, c := range bfs.Cases() {
		tc, err := bfs.Run(c, cubie.TC)
		if err != nil {
			log.Fatal(err)
		}
		bl, err := bfs.Run(c, cubie.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		reached, depth := 0, 0.0
		for _, l := range tc.Output {
			if l >= 0 {
				reached++
				if l > depth {
					depth = l
				}
			}
		}
		fmt.Printf("%-20s %9d %8.0f %8.1f", c.Name, reached, depth, tc.InputUtil*100)
		for _, d := range cubie.Devices() {
			r := cubie.Simulate(d, tc.Profile)
			fmt.Printf(" %14.1f", tc.Work/r.Time/1e9)
		}
		fmt.Println()

		// Speedup summary on H200.
		tTC := cubie.Simulate(cubie.H200(), tc.Profile).Time
		tBL := cubie.Simulate(cubie.H200(), bl.Profile).Time
		fmt.Printf("%-20s   bit-MMA speedup over frontier baseline on H200: %.1fx\n",
			"", tBL/tTC)
	}
	fmt.Println("\nBFS performs no floating-point work: the m8n8k128 bit MMA")
	fmt.Println("intersects 8x128 adjacency bitmap blocks with the frontier")
	fmt.Println("(Quadrant IV: full inputs, one output column consumed).")
}
