// Sparse-advisor: decide whether MMU (tensor-core) acceleration pays off
// for a sparse solver workload — the question an HPC application engineer
// faces before porting an iterative solver to FP64 tensor cores.
//
// The advisor inspects each Table 4 matrix, measures its MMU input
// utilization under the DASP layout, simulates the TC and baseline SpMV on
// every GPU, and recommends (or not) the port — including the CC-E caveat
// of Observation 5 (SpMV is the one kernel where stripping the MMA
// redundancy pays).
package main

import (
	"fmt"
	"log"

	"repro/cubie"
)

func main() {
	suite := cubie.NewSuite()
	spmv, err := suite.ByName("SpMV")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MMU acceleration advisor for SpMV-dominated solvers")
	fmt.Println("===================================================")
	for _, c := range spmv.Cases() {
		tc, err := spmv.Run(c, cubie.TC)
		if err != nil {
			log.Fatal(err)
		}
		bl, err := spmv.Run(c, cubie.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		cce, err := spmv.Run(c, cubie.CCE)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\nmatrix %s — DASP packs %.0f%% of MMA input slots with payload\n",
			c.Name, tc.InputUtil*100)
		best := ""
		var bestGain float64
		for _, dev := range cubie.Devices() {
			tTC := cubie.Simulate(dev, tc.Profile).Time
			tBL := cubie.Simulate(dev, bl.Profile).Time
			tCCE := cubie.Simulate(dev, cce.Profile).Time
			gain := tBL / tTC
			fmt.Printf("  %-5s TC %6.2fx over cuSPARSE-class; CC-E a further %5.2fx over TC\n",
				dev.Name, gain, tTC/tCCE)
			if gain > bestGain {
				bestGain, best = gain, dev.Name
			}
		}
		switch {
		case bestGain >= 1.5:
			fmt.Printf("  => port to the MMU path; best on %s (%.1fx). Consider the\n", best, bestGain)
			fmt.Println("     essential-only (CC-E) refinement: SpMV is the documented")
			fmt.Println("     exception where removing MMA redundancy helps (Observation 5).")
		case bestGain > 1.1:
			fmt.Println("  => marginal: the kernel is launch/bandwidth limited at this size.")
		default:
			fmt.Println("  => keep the vector path.")
		}
	}
}
