// Quickstart: run one Cubie workload across its variants on the three
// simulated GPUs and print a Figure 3-style mini-report.
package main

import (
	"fmt"
	"log"

	"repro/cubie"
)

func main() {
	suite := cubie.NewSuite()
	w, err := suite.ByName("SpMV")
	if err != nil {
		log.Fatal(err)
	}
	c := w.Representative()
	fmt.Printf("Workload %s (quadrant %d), case %s\n\n", w.Name(), w.Quadrant(), c.Name)
	fmt.Printf("%-9s %-6s %12s %12s %12s %10s\n",
		"variant", "GPU", "time (µs)", "GFLOPS", "power (W)", "bottleneck")
	for _, v := range w.Variants() {
		res, err := w.Run(c, v)
		if err != nil {
			log.Fatal(err)
		}
		for _, dev := range cubie.Devices() {
			r := cubie.Simulate(dev, res.Profile)
			fmt.Printf("%-9s %-6s %12.2f %12.1f %12.1f %10s\n",
				v, dev.Name, r.Time*1e6, res.Work/r.Time/1e9, r.AvgPower, r.Bottleneck)
		}
	}
	fmt.Println("\nKey observations reproduced by this run:")
	for _, o := range cubie.Observations()[:5] {
		fmt.Printf("  O%d: %s\n", o.ID, o.Statement)
	}
}
