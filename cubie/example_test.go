package cubie_test

import (
	"fmt"

	"repro/cubie"
)

// ExampleSimulate runs one kernel profile through the analytical device
// model.
func ExampleSimulate() {
	s := cubie.NewSuite()
	w, _ := s.ByName("Reduction")
	res, _ := w.Run(w.Representative(), cubie.TC)
	r := cubie.Simulate(cubie.H200(), res.Profile)
	fmt.Println("bottleneck:", r.Bottleneck)
	// Output: bottleneck: DRAM
}

// ExampleNewSuite lists the ten workloads in Table 2 order.
func ExampleNewSuite() {
	for _, w := range cubie.NewSuite().Workloads() {
		fmt.Printf("%s (Q%d)\n", w.Name(), w.Quadrant())
	}
	// Output:
	// GEMM (Q1)
	// PiC (Q1)
	// FFT (Q1)
	// Stencil (Q1)
	// Scan (Q2)
	// Reduction (Q3)
	// BFS (Q4)
	// GEMV (Q4)
	// SpMV (Q4)
	// SpGEMM (Q4)
}

// ExampleDeviceByName resolves a Table 5 GPU.
func ExampleDeviceByName() {
	d, _ := cubie.DeviceByName("B200")
	fmt.Printf("%s: %.0f TFLOPS FP64 tensor, %.0f TB/s\n",
		d.Name, d.TensorFP64, d.DRAMBWTBs)
	// Output: B200: 40 TFLOPS FP64 tensor, 8 TB/s
}

// ExampleAdvise predicts MMU suitability from algorithm-level traits.
func ExampleAdvise() {
	v := cubie.Advise(cubie.AlgorithmTraits{
		Name:           "my-dense-solver",
		EssentialFLOPs: 1e12, DRAMBytes: 1e9,
		GEMMFraction: 1, OperandReuse: 512, OutputDensity: 1,
	}, cubie.H200())
	fmt.Println("quadrant:", v.Quadrant, "suitable:", v.Suitable)
	// Output: quadrant: 1 suitable: true
}

// ExampleMeasureAccuracy computes one Table 6 row.
func ExampleMeasureAccuracy() {
	s := cubie.NewSuite()
	w, _ := s.ByName("Scan")
	row, _ := cubie.MeasureAccuracy(w)
	fmt.Println("TC and CC bit-identical:", row.TCEqualsCC)
	// Output: TC and CC bit-identical: true
}
