// Package cubie is the public API of the Cubie reproduction: the ten
// MMU-optimized scientific workloads of "Characterizing Matrix
// Multiplication Units across General Parallel Patterns in Scientific
// Computing" (PPoPP '26), their Baseline / TC / CC / CC-E variants, the
// simulated A100 / H200 / B200 devices, and the experiment harness that
// regenerates every figure and table of the paper.
//
// Quick start:
//
//	h := cubie.NewHarness()
//	rows, _ := h.Figure4(cubie.Devices()) // TC-vs-baseline speedups
//	cubie.RenderSpeedups(os.Stdout, "Figure 4", rows)
//
// Individual workloads:
//
//	s := cubie.NewSuite()
//	w, _ := s.ByName("SpMV")
//	res, _ := w.Run(w.Representative(), cubie.TC)
//	report := cubie.Simulate(cubie.H200(), res.Profile)
//	fmt.Println(report.Time, report.AvgPower)
package cubie

import (
	"io"

	"repro/internal/accuracy"
	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/factor"
	"repro/internal/fp16"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/kernels/spmv"
	"repro/internal/mtx"
	"repro/internal/power"
	"repro/internal/roofline"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Workload is one Cubie kernel with its variants and Table 2 test cases.
type Workload = workload.Workload

// Case is one test case of a workload.
type Case = workload.Case

// Result is the outcome of running one (case, variant) pair.
type Result = workload.Result

// Variant identifies one of the paper's algorithmic implementation
// variants (Section 5.2).
type Variant = workload.Variant

// The four variants.
const (
	Baseline = workload.Baseline
	TC       = workload.TC
	CC       = workload.CC
	CCE      = workload.CCE
)

// Suite is the ten-workload Cubie benchmark suite.
type Suite = core.Suite

// NewSuite instantiates the suite in Table 2 order.
func NewSuite() *Suite { return core.NewSuite() }

// Observation is one of the paper's nine key observations.
type Observation = core.Observation

// Observations returns the paper's nine key observations.
func Observations() []Observation { return core.Observations() }

// Device is a simulated GPU specification.
type Device = device.Spec

// A100 returns the NVIDIA A100 (Ampere) spec of Table 5.
func A100() Device { return device.A100() }

// H200 returns the NVIDIA H200 (Hopper) spec of Table 5.
func H200() Device { return device.H200() }

// B200 returns the NVIDIA B200 (Blackwell) spec of Table 5.
func B200() Device { return device.B200() }

// Devices returns the three evaluated GPUs in paper order.
func Devices() []Device { return device.All() }

// DeviceByName resolves "A100", "H200", or "B200".
func DeviceByName(name string) (Device, error) { return device.ByName(name) }

// Profile is a kernel execution profile consumed by the timing model.
type Profile = sim.Profile

// Report is the simulated outcome of executing a profile on a device.
type Report = sim.Report

// Simulate runs the analytical execution model for one kernel invocation.
func Simulate(d Device, p Profile) Report { return sim.Run(d, p) }

// PowerTrace is a sampled power-over-time curve.
type PowerTrace = power.Trace

// RecordPower produces the power trace of a repeated-kernel measurement
// loop (the Figure 8 methodology).
func RecordPower(d Device, r Report, repeats int) PowerTrace {
	return power.Record(d, r, repeats)
}

// Roofline is the cache-aware roofline model of Figure 9.
type Roofline = roofline.Model

// NewRoofline builds the roofline model for a device.
func NewRoofline(d Device) Roofline { return roofline.New(d) }

// AccuracyRow is one Table 6 row of FP64 error measurements.
type AccuracyRow = accuracy.Row

// MeasureAccuracy computes a workload's Table 6 row against the CPU serial
// reference.
func MeasureAccuracy(w Workload) (AccuracyRow, error) {
	return accuracy.MeasureWorkload(w)
}

// Harness drives the paper's experiments end to end with run caching.
type Harness = harness.Harness

// NewHarness creates a harness over a fresh suite.
func NewHarness() *Harness { return harness.New() }

// SpeedupRow is one bar of Figures 4–6.
type SpeedupRow = harness.SpeedupRow

// PerfCell is one marker of Figure 3.
type PerfCell = harness.PerfCell

// EDPRow is one bar of Figure 7.
type EDPRow = harness.EDPRow

// CoverageReport summarizes a Figure 10 PCA coverage analysis.
type CoverageReport = harness.CoverageReport

// SynthesizeMatrix materializes one of the Table 4 sparse matrices
// (synthetic reproduction of its SuiteSparse structural class).
func SynthesizeMatrix(name string) (*sparse.CSR, error) { return sparse.Synthesize(name) }

// SynthesizeGraph materializes one of the Table 3 graphs at reduced scale.
func SynthesizeGraph(name string) (*graph.Graph, error) { return graph.Synthesize(name) }

// SparseMatrix is a CSR sparse matrix.
type SparseMatrix = sparse.CSR

// Graph is a CSR adjacency graph.
type Graph = graph.Graph

// Render helpers (text form of the paper's figures).
var (
	RenderFigure3  = harness.RenderFigure3
	RenderSpeedups = harness.RenderSpeedups
	RenderFigure7  = harness.RenderFigure7
	RenderFigure8  = harness.RenderFigure8
	RenderTable6   = harness.RenderTable6
	RenderFigure9  = harness.RenderFigure9
	RenderCoverage = harness.RenderCoverage
	RenderFigure11 = harness.RenderFigure11
)

// RenderFigure12 prints the Figure 12 peak-throughput chart data.
func RenderFigure12(w io.Writer) { harness.RenderFigure12(w) }

// Figure10Graphs runs the graph-coverage PCA of Figure 10a.
func Figure10Graphs(corpusSize int, seed int64) (*CoverageReport, error) {
	return harness.Figure10Graphs(corpusSize, seed)
}

// Figure10Matrices runs the matrix-coverage PCA of Figure 10b.
func Figure10Matrices(corpusSize int, seed int64) (*CoverageReport, error) {
	return harness.Figure10Matrices(corpusSize, seed)
}

// SpMVOperator is a reusable y = A·x linear operator running the DASP
// tensor-core SpMV semantics — the building block for iterative solvers
// (see examples/cg-solver).
type SpMVOperator = spmv.Operator

// NewSpMVOperator builds the DASP layout for m once.
func NewSpMVOperator(m *SparseMatrix) *SpMVOperator { return spmv.NewOperator(m) }

// ReadMatrixMarket parses a Matrix Market coordinate stream (the SuiteSparse
// distribution format) into a sparse matrix.
func ReadMatrixMarket(r io.Reader) (*SparseMatrix, error) { return mtx.Read(r) }

// WriteMatrixMarket emits m as a general real coordinate Matrix Market file.
func WriteMatrixMarket(w io.Writer, m *SparseMatrix) error { return mtx.Write(w, m) }

// Half is an IEEE 754 binary16 value (the FP16 tensor-core storage format
// whose generational throughput scaling Figure 12 contrasts with FP64).
type Half = fp16.Half

// QuantizeFP16 rounds a float64 slice to binary16.
func QuantizeFP16(src []float64) []Half { return fp16.Quantize(src) }

// GEMMFP16 multiplies FP16 operands with FP32 accumulation via the HMMA
// m16n16k16 semantics (see examples/mixed-precision).
func GEMMFP16(a, b []Half, m, k, n int) []float64 { return fp16.GEMM(a, b, m, k, n) }

// AblationRow is one measurement of a design-choice ablation study.
type AblationRow = harness.AblationRow

// RenderAblations prints ablation rows grouped by study.
var RenderAblations = harness.RenderAblations

// AlgorithmTraits describes a kernel at the algorithm level for the MMU
// suitability advisor (the Section 4 "algorithm level reasoning" step).
type AlgorithmTraits = advisor.AlgorithmTraits

// AdvisorVerdict is the advisor's prediction.
type AdvisorVerdict = advisor.Verdict

// Advise predicts MMU suitability of an algorithm on a device.
func Advise(t AlgorithmTraits, d Device) AdvisorVerdict { return advisor.Advise(t, d) }

// Matrix is a dense row-major FP64 matrix.
type Matrix = tensor.Matrix

// NewMatrix allocates a zeroed dense matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// Cholesky computes the lower-triangular factor of an SPD matrix with MMA
// trailing updates (the dense-factorization extension; see
// examples/factorization).
func Cholesky(a *Matrix) (*Matrix, error) { return factor.Cholesky(a) }

// RandomSPD builds a deterministic SPD test matrix.
func RandomSPD(n int, seed int64) *Matrix { return factor.RandomSPD(n, seed) }

// CholeskyProfile returns the execution profile of an n×n blocked Cholesky
// for the timing model.
func CholeskyProfile(n int) Profile { return factor.Profile(n) }
