package cubie_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/cubie"
)

func TestSuiteRoundTrip(t *testing.T) {
	s := cubie.NewSuite()
	if len(s.Workloads()) != 10 {
		t.Fatalf("%d workloads", len(s.Workloads()))
	}
	w, err := s.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(w.Representative(), cubie.TC)
	if err != nil {
		t.Fatal(err)
	}
	r := cubie.Simulate(cubie.H200(), res.Profile)
	if r.Time <= 0 || r.AvgPower <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
}

func TestDevices(t *testing.T) {
	if len(cubie.Devices()) != 3 {
		t.Fatal("want 3 devices")
	}
	d, err := cubie.DeviceByName("B200")
	if err != nil || d.TensorFP64 != 40 {
		t.Fatalf("B200 lookup: %v %v", d, err)
	}
	if cubie.A100().Arch == cubie.H200().Arch {
		t.Fatal("arch mismatch")
	}
}

func TestPowerAndRoofline(t *testing.T) {
	s := cubie.NewSuite()
	w, _ := s.ByName("Stencil")
	res, _ := w.Run(w.Representative(), cubie.TC)
	rep := cubie.Simulate(cubie.H200(), res.Profile)
	tr := cubie.RecordPower(cubie.H200(), rep, 1000)
	if tr.EDP() <= 0 {
		t.Fatal("EDP must be positive")
	}
	rl := cubie.NewRoofline(cubie.H200())
	pt := rl.Place(w.Name(), string(cubie.TC), res.Profile)
	if pt.TFLOPS <= 0 {
		t.Fatal("roofline point degenerate")
	}
}

func TestAccuracyFacade(t *testing.T) {
	s := cubie.NewSuite()
	w, _ := s.ByName("Scan")
	row, err := cubie.MeasureAccuracy(w)
	if err != nil {
		t.Fatal(err)
	}
	if !row.TCEqualsCC {
		t.Fatal("Scan TC must equal CC")
	}
}

func TestSynthesizers(t *testing.T) {
	m, err := cubie.SynthesizeMatrix("spmsrts")
	if err != nil || m.Rows != 29995 {
		t.Fatalf("matrix synth: %v", err)
	}
	g, err := cubie.SynthesizeGraph("mycielskian17")
	if err != nil || g.N == 0 {
		t.Fatalf("graph synth: %v", err)
	}
}

func TestObservationsAndRender(t *testing.T) {
	if len(cubie.Observations()) != 9 {
		t.Fatal("want 9 observations")
	}
	var buf bytes.Buffer
	cubie.RenderFigure12(&buf)
	if !strings.Contains(buf.String(), "FP64") {
		t.Fatal("Figure 12 render empty")
	}
}

func TestAdvisorFacade(t *testing.T) {
	v := cubie.Advise(cubie.AlgorithmTraits{
		Name: "dense", EssentialFLOPs: 1e12, DRAMBytes: 1e9,
		GEMMFraction: 1, OperandReuse: 256, OutputDensity: 1,
	}, cubie.H200())
	if !v.Suitable || v.Quadrant != 1 {
		t.Fatalf("dense GEMM-shaped kernel should be quadrant-1 suitable: %+v", v)
	}
}

func TestCholeskyFacade(t *testing.T) {
	a := cubie.RandomSPD(32, 7)
	l, err := cubie.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0, 0) <= 0 {
		t.Fatal("factor diagonal must be positive")
	}
	p := cubie.CholeskyProfile(1024)
	if cubie.Simulate(cubie.H200(), p).Time <= 0 {
		t.Fatal("profile must simulate")
	}
}

func TestFP16Facade(t *testing.T) {
	a := cubie.QuantizeFP16([]float64{1, 2, 3, 4})
	b := cubie.QuantizeFP16([]float64{1, 0, 0, 1})
	c := cubie.GEMMFP16(a, b, 2, 2, 2)
	// [1 2; 3 4] · [1 0; 0 1] = identity product.
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("FP16 GEMM = %v, want %v", c, want)
		}
	}
}

func TestMatrixMarketFacade(t *testing.T) {
	m, err := cubie.SynthesizeMatrix("spmsrts")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cubie.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := cubie.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatal("Matrix Market round trip changed nnz")
	}
}

func TestSpMVOperatorFacade(t *testing.T) {
	m, _ := cubie.SynthesizeMatrix("spmsrts")
	op := cubie.NewSpMVOperator(m)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y := op.Apply(x)
	if len(y) != op.Rows() {
		t.Fatal("operator output length wrong")
	}
}
