// Package xsim is a small discrete-event cross-check for the analytical
// model in package sim: it simulates warps on one streaming multiprocessor
// cycle by cycle — a tensor pipe with a fixed issue interval, a memory
// channel with bandwidth and latency — and measures the achieved time of a
// simple kernel directly. The analytical model's central claim, that time
// converges to max(compute time, memory time) with a latency-and-overlap
// correction, is validated against this machine in TestAnalyticalModelAgrees
// rather than assumed.
package xsim

import "fmt"

// Machine describes the simulated SM and memory channel.
type Machine struct {
	Warps            int     // resident warps (latency hiding depth)
	MMAIssueInterval int     // cycles between MMA issues per SM (pipe reciprocal throughput)
	MemLatency       int     // cycles from request to data
	BytesPerCycle    float64 // memory channel bandwidth
}

// Kernel describes per-warp work: iterations of {load, then compute}.
type Kernel struct {
	Iterations   int     // load/compute rounds per warp
	MMAsPerIter  int     // MMA instructions per round
	BytesPerIter float64 // bytes loaded per round
}

// Result reports the simulated execution.
type Result struct {
	Cycles      int
	MMAIssued   int
	BytesMoved  float64
	PipeBusyPct float64 // fraction of cycles the MMA pipe issued
	MemBusyPct  float64 // fraction of cycles the channel transferred
}

// warpState tracks one warp's progress.
type warpState struct {
	iterLeft  int
	mmaLeft   int
	readyAt   int // cycle at which the warp's outstanding load completes
	loadState int // 0 = must issue load, 1 = waiting, 2 = computing
}

// Run executes the kernel on the machine cycle by cycle and returns the
// measured result. It returns an error for non-positive configurations.
func Run(m Machine, k Kernel) (Result, error) {
	if m.Warps < 1 || m.MMAIssueInterval < 1 || m.MemLatency < 0 || m.BytesPerCycle <= 0 {
		return Result{}, fmt.Errorf("xsim: invalid machine %+v", m)
	}
	if k.Iterations < 0 || k.MMAsPerIter < 0 || k.BytesPerIter < 0 {
		return Result{}, fmt.Errorf("xsim: invalid kernel %+v", k)
	}

	warps := make([]warpState, m.Warps)
	for i := range warps {
		warps[i] = warpState{iterLeft: k.Iterations}
	}

	var res Result
	pipeFreeAt := 0      // next cycle the MMA pipe can issue
	var memQueue float64 // bytes queued on the channel
	memBusyCycles := 0
	pipeBusyCycles := 0

	const maxCycles = 1 << 30
	for cycle := 0; cycle < maxCycles; cycle++ {
		// Memory channel drains bandwidth every cycle.
		if memQueue > 0 {
			drained := m.BytesPerCycle
			if drained > memQueue {
				drained = memQueue
			}
			memQueue -= drained
			res.BytesMoved += drained
			memBusyCycles++
		}

		done := true
		issued := false
		for w := range warps {
			ws := &warps[w]
			if ws.iterLeft == 0 && ws.mmaLeft == 0 {
				continue
			}
			done = false
			switch ws.loadState {
			case 0: // issue the load for this iteration
				// Completion waits for latency plus the queue ahead.
				queueCycles := int(memQueue / m.BytesPerCycle)
				ws.readyAt = cycle + m.MemLatency + queueCycles
				memQueue += k.BytesPerIter
				ws.loadState = 1
			case 1: // waiting for data
				if cycle >= ws.readyAt {
					ws.loadState = 2
					ws.mmaLeft = k.MMAsPerIter
				}
			case 2: // computing: contend for the single MMA pipe
				if !issued && cycle >= pipeFreeAt && ws.mmaLeft > 0 {
					issued = true
					pipeFreeAt = cycle + m.MMAIssueInterval
					pipeBusyCycles += m.MMAIssueInterval
					ws.mmaLeft--
					res.MMAIssued++
					if ws.mmaLeft == 0 {
						ws.iterLeft--
						if ws.iterLeft > 0 {
							ws.loadState = 0
						}
					}
				}
			}
		}
		if done && memQueue == 0 {
			res.Cycles = cycle
			if cycle > 0 {
				res.PipeBusyPct = float64(pipeBusyCycles) / float64(cycle)
				res.MemBusyPct = float64(memBusyCycles) / float64(cycle)
				if res.PipeBusyPct > 1 {
					res.PipeBusyPct = 1
				}
			}
			return res, nil
		}
	}
	return res, fmt.Errorf("xsim: kernel did not finish within %d cycles", maxCycles)
}

// AnalyticalCycles is the package-sim-style prediction for the same
// machine/kernel: max of pipe time and memory time plus one latency for the
// un-hidden first load.
func AnalyticalCycles(m Machine, k Kernel) float64 {
	totalMMAs := float64(m.Warps * k.Iterations * k.MMAsPerIter)
	totalBytes := float64(m.Warps*k.Iterations) * k.BytesPerIter
	pipe := totalMMAs * float64(m.MMAIssueInterval)
	mem := totalBytes / m.BytesPerCycle
	busy := pipe
	if mem > busy {
		busy = mem
	}
	return busy + float64(m.MemLatency)
}
