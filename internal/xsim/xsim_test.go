package xsim

import (
	"math"
	"testing"
)

func TestComputeBoundConvergesToPipeTime(t *testing.T) {
	m := Machine{Warps: 16, MMAIssueInterval: 4, MemLatency: 200, BytesPerCycle: 1024}
	k := Kernel{Iterations: 50, MMAsPerIter: 32, BytesPerIter: 256}
	res, err := Run(m, k)
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyticalCycles(m, k)
	rel := math.Abs(float64(res.Cycles)-want) / want
	if rel > 0.10 {
		t.Errorf("compute-bound: simulated %d cycles vs analytical %.0f (%.1f%% off)",
			res.Cycles, want, rel*100)
	}
	if res.PipeBusyPct < 0.85 {
		t.Errorf("pipe busy only %.0f%%, expected near saturation", res.PipeBusyPct*100)
	}
}

func TestMemoryBoundConvergesToChannelTime(t *testing.T) {
	m := Machine{Warps: 16, MMAIssueInterval: 1, MemLatency: 200, BytesPerCycle: 64}
	k := Kernel{Iterations: 50, MMAsPerIter: 2, BytesPerIter: 4096}
	res, err := Run(m, k)
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyticalCycles(m, k)
	rel := math.Abs(float64(res.Cycles)-want) / want
	if rel > 0.10 {
		t.Errorf("memory-bound: simulated %d vs analytical %.0f (%.1f%% off)",
			res.Cycles, want, rel*100)
	}
	if res.MemBusyPct < 0.85 {
		t.Errorf("channel busy only %.0f%%, expected near saturation", res.MemBusyPct*100)
	}
}

// TestAnalyticalModelAgrees sweeps the compute/memory balance and checks
// the max()-based analytical prediction tracks the discrete-event machine
// within 15% everywhere except the deeply latency-bound corner — the
// first-principles justification for package sim's structure.
func TestAnalyticalModelAgrees(t *testing.T) {
	m := Machine{Warps: 24, MMAIssueInterval: 4, MemLatency: 300, BytesPerCycle: 256}
	for _, bytesPerIter := range []float64{64, 256, 1024, 4096, 16384} {
		k := Kernel{Iterations: 40, MMAsPerIter: 16, BytesPerIter: bytesPerIter}
		res, err := Run(m, k)
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticalCycles(m, k)
		rel := math.Abs(float64(res.Cycles)-want) / want
		if rel > 0.15 {
			t.Errorf("bytes/iter %v: simulated %d vs analytical %.0f (%.1f%% off)",
				bytesPerIter, res.Cycles, want, rel*100)
		}
	}
}

func TestFewWarpsAreLatencyBound(t *testing.T) {
	// With a single warp the machine cannot hide the memory latency: it
	// must run slower than the bandwidth/pipe bound — the regime package
	// sim covers with its sync/latency terms rather than the max() core.
	m := Machine{Warps: 1, MMAIssueInterval: 4, MemLatency: 500, BytesPerCycle: 256}
	k := Kernel{Iterations: 20, MMAsPerIter: 8, BytesPerIter: 512}
	res, err := Run(m, k)
	if err != nil {
		t.Fatal(err)
	}
	// Serial lower bound: every iteration pays the full latency.
	minSerial := k.Iterations * m.MemLatency
	if res.Cycles < minSerial {
		t.Errorf("1-warp run finished in %d cycles, below the serial latency bound %d",
			res.Cycles, minSerial)
	}
	want := AnalyticalCycles(m, k)
	if float64(res.Cycles) < want {
		t.Errorf("latency-bound run (%d) should exceed the throughput prediction (%.0f)",
			res.Cycles, want)
	}
}

func TestMoreWarpsNeverSlower(t *testing.T) {
	k := Kernel{Iterations: 30, MMAsPerIter: 8, BytesPerIter: 1024}
	prevPerWarp := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		m := Machine{Warps: w, MMAIssueInterval: 4, MemLatency: 300, BytesPerCycle: 128}
		res, err := Run(m, k)
		if err != nil {
			t.Fatal(err)
		}
		perWarp := float64(res.Cycles) / float64(w)
		// Throughput per warp must not degrade as occupancy grows... until
		// a shared resource saturates, where per-warp time flattens to the
		// bandwidth share. Allow equality within 25%.
		if perWarp > prevPerWarp*1.25 {
			t.Errorf("warps=%d: per-warp cycles %v regressed from %v", w, perWarp, prevPerWarp)
		}
		if perWarp < prevPerWarp {
			prevPerWarp = perWarp
		}
	}
}

func TestWorkConservation(t *testing.T) {
	m := Machine{Warps: 8, MMAIssueInterval: 2, MemLatency: 100, BytesPerCycle: 64}
	k := Kernel{Iterations: 10, MMAsPerIter: 4, BytesPerIter: 128}
	res, err := Run(m, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.MMAIssued != m.Warps*k.Iterations*k.MMAsPerIter {
		t.Errorf("issued %d MMAs, want %d", res.MMAIssued, m.Warps*k.Iterations*k.MMAsPerIter)
	}
	wantBytes := float64(m.Warps*k.Iterations) * k.BytesPerIter
	if math.Abs(res.BytesMoved-wantBytes) > 1e-6 {
		t.Errorf("moved %v bytes, want %v", res.BytesMoved, wantBytes)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Machine{}, Kernel{}); err == nil {
		t.Error("zero machine accepted")
	}
	if _, err := Run(Machine{Warps: 1, MMAIssueInterval: 1, BytesPerCycle: 1},
		Kernel{Iterations: -1}); err == nil {
		t.Error("negative kernel accepted")
	}
	// Zero-work kernel terminates immediately.
	res, err := Run(Machine{Warps: 1, MMAIssueInterval: 1, BytesPerCycle: 1}, Kernel{})
	if err != nil || res.Cycles != 0 {
		t.Errorf("empty kernel: %v cycles, err %v", res.Cycles, err)
	}
}
