package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero", i)
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative shape")
		}
	}()
	NewMatrix(-1, 2)
}

func TestAtSetAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	m.Add(1, 2, 2.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("after Add, At(1,2) = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("unrelated element modified")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows layout wrong: %v", m.Data)
	}
	if e := FromRows(nil); e.Rows != 0 || e.Cols != 0 {
		t.Fatal("empty FromRows not 0x0")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 2)
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row did not return a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2}})
	c := FromRows([][]float64{{1, 3}})
	d := FromRows([][]float64{{1}, {2}})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal misbehaves")
	}
}

func TestZero(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero element")
		}
	}
}

func TestTilePadding(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 9)
	m.Tile(dst, 1, 1, 3, 3)
	want := []float64{4, 0, 0, 0, 0, 0, 0, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Tile pad: got %v want %v", dst, want)
		}
	}
}

func TestTileInterior(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	dst := make([]float64, 4)
	m.Tile(dst, 0, 1, 2, 2)
	want := []float64{2, 3, 5, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Tile interior: got %v want %v", dst, want)
		}
	}
}

func TestSetAddTileRoundTrip(t *testing.T) {
	m := NewMatrix(4, 4)
	tile := []float64{1, 2, 3, 4}
	m.SetTile(tile, 1, 1, 2, 2)
	if m.At(2, 2) != 4 || m.At(1, 1) != 1 {
		t.Fatal("SetTile misplaced values")
	}
	m.AddTile(tile, 1, 1, 2, 2)
	if m.At(2, 2) != 8 {
		t.Fatal("AddTile did not accumulate")
	}
	// Out-of-range writes silently dropped.
	m.SetTile(tile, 3, 3, 2, 2)
	if m.At(3, 3) != 1 {
		t.Fatal("in-range corner not written")
	}
}

func TestTileRoundTripProperty(t *testing.T) {
	f := func(seed uint8) bool {
		m := NewMatrix(8, 8)
		for i := range m.Data {
			m.Data[i] = float64(int(seed)+i%7) - 3
		}
		buf := make([]float64, 16)
		m.Tile(buf, 4, 4, 4, 4)
		n := NewMatrix(8, 8)
		n.SetTile(buf, 4, 4, 4, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if n.At(4+i, 4+j) != m.At(4+i, 4+j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVector(t *testing.T) {
	v := NewVector(3)
	if v.Len() != 3 {
		t.Fatal("bad length")
	}
	v.Data[1] = 2
	c := v.Clone()
	c.Data[1] = 5
	if v.Data[1] != 2 {
		t.Fatal("Vector Clone shares storage")
	}
	if !v.Equal(v.Clone()) || v.Equal(c) || v.Equal(NewVector(2)) {
		t.Fatal("Vector Equal misbehaves")
	}
}

func TestComplexArray(t *testing.T) {
	c := NewComplexArray(4)
	if c.Len() != 4 {
		t.Fatal("bad length")
	}
	c.Re[0], c.Im[0] = 1, -1
	d := c.Clone()
	d.Re[0] = 7
	if c.Re[0] != 1 {
		t.Fatal("ComplexArray Clone shares storage")
	}
}

func TestTileNegativeOrigin(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 9)
	m.Tile(dst, -1, -1, 3, 3)
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("negative-origin Tile: got %v want %v", dst, want)
		}
	}
	m.AddTile([]float64{9, 9, 9, 9}, -1, -1, 2, 2)
	if m.At(0, 0) != 10 {
		t.Fatal("AddTile negative origin wrong")
	}
	m.SetTile([]float64{7, 7, 7, 7}, -1, -1, 2, 2)
	if m.At(0, 0) != 7 {
		t.Fatal("SetTile negative origin wrong")
	}
}

// TestPackAPanelMatchesTile pins PackAPanel (interior fast path and the edge
// slow path) to a per-tile Tile loop, including negative and overhanging
// origins that exercise the zero-fill.
func TestPackAPanelMatchesTile(t *testing.T) {
	m := NewMatrix(11, 17)
	for i := range m.Data {
		m.Data[i] = float64(i%13) - 6
	}
	const kTiles = 3
	got := make([]float64, kTiles*panelM*panelK)
	want := make([]float64, kTiles*panelM*panelK)
	for _, origin := range [][2]int{{0, 0}, {2, 3}, {3, 17 - 2*panelK}, {-1, -2}, {8, 12}} {
		r0, c0 := origin[0], origin[1]
		m.PackAPanel(got, r0, c0, kTiles)
		for tt := 0; tt < kTiles; tt++ {
			m.Tile(want[tt*panelM*panelK:(tt+1)*panelM*panelK], r0, c0+tt*panelK, panelM, panelK)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("origin (%d,%d): element %d: %v != %v", r0, c0, i, got[i], want[i])
			}
		}
	}
}

// TestPackBPanelMatchesTile pins PackBPanel to a per-tile Tile loop the same
// way, covering the interior straight-copy path and the padded edges.
func TestPackBPanelMatchesTile(t *testing.T) {
	m := NewMatrix(19, 10)
	for i := range m.Data {
		m.Data[i] = float64(i%11) - 5
	}
	const kTiles = 3
	got := make([]float64, kTiles*panelK*panelN)
	want := make([]float64, kTiles*panelK*panelN)
	for _, origin := range [][2]int{{0, 0}, {4, 2}, {19 - 2*panelK, 1}, {-2, -1}, {14, 6}} {
		r0, c0 := origin[0], origin[1]
		m.PackBPanel(got, r0, c0, kTiles)
		for tt := 0; tt < kTiles; tt++ {
			m.Tile(want[tt*panelK*panelN:(tt+1)*panelK*panelN], r0+tt*panelK, c0, panelK, panelN)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("origin (%d,%d): element %d: %v != %v", r0, c0, i, got[i], want[i])
			}
		}
	}
}

// TestPackPanelShortDstPanics pins the destination-length guards.
func TestPackPanelShortDstPanics(t *testing.T) {
	m := NewMatrix(8, 8)
	short := make([]float64, panelM*panelK) // one tile, two requested
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short PackAPanel destination")
		}
	}()
	m.PackAPanel(short, 0, 0, 2)
}

// TestSetTileSum pins the fused epilogue: in-range elements get a[i]+b[i] in
// one add, out-of-range writes are dropped.
func TestSetTileSum(t *testing.T) {
	m := NewMatrix(3, 3)
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	m.SetTileSum(a, b, 2, 2, 2, 2) // only (2,2) in range
	if m.At(2, 2) != 11 {
		t.Fatalf("SetTileSum corner = %v, want 11", m.At(2, 2))
	}
	if m.At(0, 0) != 0 || m.At(2, 1) != 0 {
		t.Fatal("SetTileSum wrote outside the tile")
	}
	m.SetTileSum(a, b, 0, 0, 2, 2)
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for k, ij := range want {
		if got := m.At(ij[0], ij[1]); got != a[k]+b[k] {
			t.Fatalf("SetTileSum (%d,%d) = %v, want %v", ij[0], ij[1], got, a[k]+b[k])
		}
	}
}
