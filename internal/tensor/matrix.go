// Package tensor provides the dense FP64 matrix, vector, and tile types that
// the Cubie kernels operate on. Matrices are stored row-major in a single
// contiguous slice, matching the global-memory layout assumed by the MMA
// fragment loaders in package mmu.
package tensor

import "fmt"

// Matrix is a dense row-major FP64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equal reports whether m and n have the same shape and identical elements
// (exact bit comparison; used to verify TC ≡ CC).
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// Tile copies the r0..r0+h, c0..c0+w submatrix into dst (row-major, w stride).
// Out-of-range elements are zero-filled, matching how kernels pad partial
// tiles before feeding them to fixed-shape MMA fragments.
func (m *Matrix) Tile(dst []float64, r0, c0, h, w int) {
	if len(dst) < h*w {
		panic("tensor: Tile destination too small")
	}
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			r, c := r0+i, c0+j
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
				dst[i*w+j] = m.Data[r*m.Cols+c]
			} else {
				dst[i*w+j] = 0
			}
		}
	}
}

// AddTile accumulates the h×w tile src (row-major, stride w) into the
// submatrix at (r0, c0), skipping out-of-range elements.
func (m *Matrix) AddTile(src []float64, r0, c0, h, w int) {
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			r, c := r0+i, c0+j
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
				m.Data[r*m.Cols+c] += src[i*w+j]
			}
		}
	}
}

// SetTile overwrites the h×w submatrix at (r0, c0) from src, skipping
// out-of-range elements.
func (m *Matrix) SetTile(src []float64, r0, c0, h, w int) {
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			r, c := r0+i, c0+j
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
				m.Data[r*m.Cols+c] = src[i*w+j]
			}
		}
	}
}

// SetTileSum overwrites the h×w submatrix at (r0, c0) with the element-wise
// sum a[i]+b[i] of two row-major tiles, skipping out-of-range elements. It
// is the fused epilogue of double-accumulator MMA sweeps: the caller keeps
// the two-accumulator rounding behaviour (one add per element, even chain
// plus odd chain) without a separate summing pass and staging buffer.
func (m *Matrix) SetTileSum(a, b []float64, r0, c0, h, w int) {
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			r, c := r0+i, c0+j
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
				m.Data[r*m.Cols+c] = a[i*w+j] + b[i*w+j]
			}
		}
	}
}

// MMA panel tile shapes (mirrors mmu.M/K/N without importing mmu: tensor is
// below mmu in the layer map).
const (
	panelM = 8 // rows of an A panel tile and a C tile
	panelK = 4 // cols of an A tile, rows of a B tile
	panelN = 8 // cols of a B tile and a C tile
)

// PackARows packs the leading 8 rows of a strided row-major source into
// kTiles consecutive row-major 8×4 MMA A tiles: tile t covers source columns
// 4t..4t+3. It is the one stride-aware bulk A-pack in the tree — the
// PackAPanel interior fast path, mmu.PackA, and the packed-panel cache all
// route through it. The 4-wide array copies compile to register moves rather
// than runtime.memmove calls (the per-row copy() loops it replaced spent
// ~11% of the numeric-phase profile in memmove dispatch). src must cover
// (8-1)·stride + 4·kTiles elements; the array conversions panic otherwise.
func PackARows(dst, src []float64, stride, kTiles int) {
	for r := 0; r < panelM; r++ {
		srow := src[r*stride:]
		drow := dst[r*panelK:]
		for t := 0; t < kTiles; t++ {
			*(*[panelK]float64)(drow[t*panelM*panelK:]) = *(*[panelK]float64)(srow[t*panelK:])
		}
	}
}

// PackBRows packs rows consecutive 8-wide rows of a strided row-major source
// into dst back to back — the B-operand (and any full-width row panel) bulk
// pack. rows is typically 4·kTiles. Like PackARows the 8-wide array copies
// stay out of runtime.memmove. src must cover (rows-1)·stride + 8 elements.
func PackBRows(dst, src []float64, stride, rows int) {
	for r := 0; r < rows; r++ {
		*(*[panelN]float64)(dst[r*panelN:]) = *(*[panelN]float64)(src[r*stride:])
	}
}

// Gather4 sets dst[i] = src[idx[i]] for every i, 4-wide unrolled so the
// compiler hoists the dst/idx bounds checks out of the unrolled body — the
// SpMV B-operand gather (prestaged flat column indices → packed 4×8 tiles)
// runs through it on every apply. len(idx) must be at least len(dst); the
// indices must be valid for src (the DASP builder guarantees both).
func Gather4(dst, src []float64, idx []int32) {
	n := len(dst)
	idx = idx[:n] // one bound, hoisted out of the loop below
	i := 0
	for ; i+4 <= n; i += 4 {
		d := (*[4]float64)(dst[i:])
		x := (*[4]int32)(idx[i:])
		d[0] = src[x[0]]
		d[1] = src[x[1]]
		d[2] = src[x[2]]
		d[3] = src[x[3]]
	}
	for ; i < n; i++ {
		dst[i] = src[idx[i]]
	}
}

// Pack4Stride copies rows groups of 4 contiguous floats from a strided
// source into a strided destination: group r moves from src[r·srcStride:]
// to dst[r·dstStride:]. Like PackARows, the fixed-size array assignments
// compile to register moves rather than runtime.memmove calls. It is the
// strided 4-wide staging primitive of the sparse prestage builders (mBSR
// 4×4 block rows into paired MMA operand slabs, DASP segment lanes into
// prepacked A panels). Both slices must cover (rows-1)·stride + 4 elements.
func Pack4Stride(dst []float64, dstStride int, src []float64, srcStride int, rows int) {
	for r := 0; r < rows; r++ {
		*(*[panelK]float64)(dst[r*dstStride:]) = *(*[panelK]float64)(src[r*srcStride:])
	}
}

// PackAPanel packs the 8×(4·kTiles) row-panel whose top-left corner is
// (r0, c0) into dst as kTiles consecutive row-major 8×4 MMA A tiles: tile t
// covers columns c0+4t … c0+4t+3. Out-of-range elements are zero-filled,
// matching Tile's padding of partial tiles. Packing once per row-tile and
// sweeping the panel with mmu.DMMAPanel replaces the per-k-step Tile
// re-gathers of the tile-at-a-time kernels (BLIS-style operand packing).
func (m *Matrix) PackAPanel(dst []float64, r0, c0, kTiles int) {
	if len(dst) < kTiles*panelM*panelK {
		panic("tensor: PackAPanel destination too small")
	}
	if r0 >= 0 && r0+panelM <= m.Rows && c0 >= 0 && c0+kTiles*panelK <= m.Cols {
		// Fast path: fully interior panel, one bulk stride-aware pack.
		PackARows(dst, m.Data[r0*m.Cols+c0:], m.Cols, kTiles)
		return
	}
	for t := 0; t < kTiles; t++ {
		m.Tile(dst[t*panelM*panelK:(t+1)*panelM*panelK], r0, c0+t*panelK, panelM, panelK)
	}
}

// PackBPanel packs the (4·kTiles)×8 column-panel whose top-left corner is
// (r0, c0) into dst as kTiles consecutive row-major 4×8 MMA B tiles: tile t
// covers rows r0+4t … r0+4t+3. Out-of-range elements are zero-filled.
func (m *Matrix) PackBPanel(dst []float64, r0, c0, kTiles int) {
	if len(dst) < kTiles*panelK*panelN {
		panic("tensor: PackBPanel destination too small")
	}
	if r0 >= 0 && r0+kTiles*panelK <= m.Rows && c0 >= 0 && c0+panelN <= m.Cols {
		PackBRows(dst, m.Data[r0*m.Cols+c0:], m.Cols, kTiles*panelK)
		return
	}
	for t := 0; t < kTiles; t++ {
		m.Tile(dst[t*panelK*panelN:(t+1)*panelK*panelN], r0+t*panelK, c0, panelK, panelN)
	}
}

// Vector is a dense FP64 vector.
type Vector struct {
	Data []float64
}

// NewVector allocates a zeroed length-n vector.
func NewVector(n int) *Vector { return &Vector{Data: make([]float64, n)} }

// Len returns the vector length.
func (v *Vector) Len() int { return len(v.Data) }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := NewVector(len(v.Data))
	copy(c.Data, v.Data)
	return c
}

// Equal reports exact element-wise equality.
func (v *Vector) Equal(w *Vector) bool {
	if len(v.Data) != len(w.Data) {
		return false
	}
	for i, x := range v.Data {
		if x != w.Data[i] {
			return false
		}
	}
	return true
}

// ComplexArray stores complex FP64 data in split (planar) form, the layout
// tcFFT-style kernels use so real and imaginary planes can be fed to
// independent real-valued MMA operations.
type ComplexArray struct {
	Re, Im []float64
}

// NewComplexArray allocates a zeroed length-n complex array.
func NewComplexArray(n int) *ComplexArray {
	return &ComplexArray{Re: make([]float64, n), Im: make([]float64, n)}
}

// Len returns the number of complex elements.
func (c *ComplexArray) Len() int { return len(c.Re) }

// Clone returns a deep copy.
func (c *ComplexArray) Clone() *ComplexArray {
	d := NewComplexArray(c.Len())
	copy(d.Re, c.Re)
	copy(d.Im, c.Im)
	return d
}
