package tensor

import "testing"

// TestGather4 pins the 4-wide gather against the scalar definition
// dst[i] = src[idx[i]] across remainder lengths 0..3.
func TestGather4(t *testing.T) {
	src := make([]float64, 100)
	for i := range src {
		src[i] = float64(i)*1.5 + 0.25
	}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33} {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32((i*37 + 11) % len(src))
		}
		dst := make([]float64, n)
		for i := range dst {
			dst[i] = -1 // dirty, must be fully overwritten
		}
		Gather4(dst, src, idx)
		for i := range dst {
			if dst[i] != src[idx[i]] {
				t.Fatalf("n=%d: dst[%d] = %v, want src[%d] = %v",
					n, i, dst[i], idx[i], src[idx[i]])
			}
		}
	}
}

// TestGather4LongIndex checks an index slice longer than dst only
// contributes its prefix.
func TestGather4LongIndex(t *testing.T) {
	src := []float64{10, 20, 30, 40, 50}
	idx := []int32{4, 3, 2, 1, 0, 4, 4}
	dst := make([]float64, 5)
	Gather4(dst, src, idx)
	want := []float64{50, 40, 30, 20, 10}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

// TestPack4Stride pins the strided 4-wide row move: rows of panelK floats
// copied between arbitrary strides, everything outside the written lanes
// untouched.
func TestPack4Stride(t *testing.T) {
	src := make([]float64, 64)
	for i := range src {
		src[i] = float64(i) + 0.5
	}
	dst := make([]float64, 64)
	for i := range dst {
		dst[i] = -1
	}
	const dstStride, srcStride, rows = 8, 5, 4
	Pack4Stride(dst[3:], dstStride, src[2:], srcStride, rows)
	written := map[int]bool{}
	for r := 0; r < rows; r++ {
		for k := 0; k < panelK; k++ {
			di := 3 + r*dstStride + k
			written[di] = true
			if want := src[2+r*srcStride+k]; dst[di] != want {
				t.Fatalf("dst[%d] = %v, want %v", di, dst[di], want)
			}
		}
	}
	for i, v := range dst {
		if !written[i] && v != -1 {
			t.Fatalf("dst[%d] = %v, expected untouched sentinel", i, v)
		}
	}
}
