package fft

import (
	"math"
	"testing"

	"repro/internal/lcg"
)

// TestFFTLinearity: FFT(αx + βy) = α·FFT(x) + β·FFT(y) up to rounding.
func TestFFTLinearity(t *testing.T) {
	const l = 256
	g := lcg.New(31)
	xRe := make([]float64, l)
	xIm := make([]float64, l)
	yRe := make([]float64, l)
	yIm := make([]float64, l)
	g.Fill(xRe)
	g.Fill(xIm)
	g.Fill(yRe)
	g.Fill(yIm)
	const alpha, beta = 1.7, -0.3

	mixRe := make([]float64, l)
	mixIm := make([]float64, l)
	for i := 0; i < l; i++ {
		mixRe[i] = alpha*xRe[i] + beta*yRe[i]
		mixIm[i] = alpha*xIm[i] + beta*yIm[i]
	}

	p := newPlanMMA(l)
	fx := transformCopy(p, xRe, xIm)
	fy := transformCopy(p, yRe, yIm)
	fm := transformCopy(p, mixRe, mixIm)
	for i := 0; i < l; i++ {
		wantRe := alpha*fx.re[i] + beta*fy.re[i]
		wantIm := alpha*fx.im[i] + beta*fy.im[i]
		scale := math.Abs(wantRe) + math.Abs(wantIm) + 1
		if math.Abs(fm.re[i]-wantRe)/scale > 1e-12 ||
			math.Abs(fm.im[i]-wantIm)/scale > 1e-12 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

// TestFFTParseval: Σ|x|² = (1/N)·Σ|X|².
func TestFFTParseval(t *testing.T) {
	for _, l := range []int{256, 512} {
		g := lcg.New(int64(l))
		re := make([]float64, l)
		im := make([]float64, l)
		g.Fill(re)
		g.Fill(im)
		var timeEnergy float64
		for i := 0; i < l; i++ {
			timeEnergy += re[i]*re[i] + im[i]*im[i]
		}
		out := transformCopy(newPlanMMA(l), re, im)
		var freqEnergy float64
		for i := 0; i < l; i++ {
			freqEnergy += out.re[i]*out.re[i] + out.im[i]*out.im[i]
		}
		freqEnergy /= float64(l)
		if math.Abs(freqEnergy-timeEnergy)/timeEnergy > 1e-12 {
			t.Errorf("l=%d: Parseval violated: %v vs %v", l, timeEnergy, freqEnergy)
		}
	}
}

// TestFFTDeltaIsFlat: the transform of a unit impulse is the all-ones
// spectrum.
func TestFFTDeltaIsFlat(t *testing.T) {
	const l = 256
	re := make([]float64, l)
	im := make([]float64, l)
	re[0] = 1
	out := transformCopy(newPlanMMA(l), re, im)
	for i := 0; i < l; i++ {
		if math.Abs(out.re[i]-1) > 1e-12 || math.Abs(out.im[i]) > 1e-12 {
			t.Fatalf("delta spectrum not flat at %d: (%v, %v)", i, out.re[i], out.im[i])
		}
	}
}

// TestFFTConstantIsDelta: the transform of a constant signal concentrates
// at DC.
func TestFFTConstantIsDelta(t *testing.T) {
	const l = 512
	re := make([]float64, l)
	im := make([]float64, l)
	for i := range re {
		re[i] = 0.5
	}
	out := transformCopy(newPlanMMA(l), re, im)
	if math.Abs(out.re[0]-0.5*float64(l)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %v", out.re[0], 0.5*float64(l))
	}
	for i := 1; i < l; i++ {
		if math.Abs(out.re[i]) > 1e-9 || math.Abs(out.im[i]) > 1e-9 {
			t.Fatalf("non-DC bin %d not zero: (%v, %v)", i, out.re[i], out.im[i])
		}
	}
}

// TestFFTShiftTheorem: a circular shift by s multiplies bin k by
// ω^{-sk}... equivalently the magnitude spectrum is shift-invariant.
func TestFFTShiftTheorem(t *testing.T) {
	const l, shift = 256, 37
	g := lcg.New(77)
	re := make([]float64, l)
	im := make([]float64, l)
	g.Fill(re)
	g.Fill(im)
	shRe := make([]float64, l)
	shIm := make([]float64, l)
	for i := 0; i < l; i++ {
		shRe[i] = re[(i+shift)%l]
		shIm[i] = im[(i+shift)%l]
	}
	p := newPlanMMA(l)
	a := transformCopy(p, re, im)
	b := transformCopy(p, shRe, shIm)
	for k := 0; k < l; k++ {
		magA := math.Hypot(a.re[k], a.im[k])
		magB := math.Hypot(b.re[k], b.im[k])
		if math.Abs(magA-magB)/(magA+1) > 1e-11 {
			t.Fatalf("magnitude spectrum changed under shift at bin %d", k)
		}
	}
}

type complexPair struct{ re, im []float64 }

func transformCopy(p *fftPlanMMA, re, im []float64) complexPair {
	r := append([]float64(nil), re...)
	i := append([]float64(nil), im...)
	p.transform(r, i)
	return complexPair{r, i}
}
