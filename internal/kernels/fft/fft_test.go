package fft

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "FFT" || w.Quadrant() != 1 {
		t.Fatal("bad metadata")
	}
	if len(w.Cases()) != 5 || w.Cases()[0].Name != "256x256" {
		t.Fatal("Table 2 cases wrong")
	}
	if w.Repeats() != 400 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestSplit(t *testing.T) {
	cases := map[int][2]int{256: {16, 16}, 512: {32, 16}, 1024: {32, 32}}
	for l, want := range cases {
		n1, n2 := split(l)
		if n1 != want[0] || n2 != want[1] {
			t.Errorf("split(%d) = %d,%d want %v", l, n1, n2, want)
		}
		if n1*n2 != l {
			t.Errorf("split(%d) does not factor", l)
		}
	}
}

func TestPlanMatchesDirectDFT1D(t *testing.T) {
	for _, l := range []int{256, 512} {
		re := make([]float64, l)
		im := make([]float64, l)
		for i := range re {
			re[i] = math.Sin(0.1*float64(i)) + 0.3
			im[i] = math.Cos(0.07 * float64(i))
		}
		wantRe := append([]float64(nil), re...)
		wantIm := append([]float64(nil), im...)
		directDFT(wantRe, wantIm)
		newPlanMMA(l).transform(re, im)
		for i := 0; i < l; i++ {
			scale := math.Abs(wantRe[i]) + math.Abs(wantIm[i]) + 1
			if math.Abs(re[i]-wantRe[i])/scale > 1e-11 ||
				math.Abs(im[i]-wantIm[i])/scale > 1e-11 {
				t.Fatalf("l=%d: four-step deviates at %d: (%v,%v) vs (%v,%v)",
					l, i, re[i], im[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestRadix2MatchesDirectDFT(t *testing.T) {
	const l = 256
	re := make([]float64, l)
	im := make([]float64, l)
	for i := range re {
		re[i] = float64(i%7) - 3
	}
	wantRe := append([]float64(nil), re...)
	wantIm := append([]float64(nil), im...)
	directDFT(wantRe, wantIm)
	radix2(re, im)
	for i := 0; i < l; i++ {
		scale := math.Abs(wantRe[i]) + math.Abs(wantIm[i]) + 1
		if math.Abs(re[i]-wantRe[i])/scale > 1e-11 {
			t.Fatalf("radix2 deviates at %d", i)
		}
	}
}

func TestVariantsNearReference2D(t *testing.T) {
	w := New()
	c := w.Representative()
	ref, err := w.Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w.Variants() {
		res, err := w.Run(c, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != len(ref) {
			t.Fatalf("%s: output length %d want %d", v, len(res.Output), len(ref))
		}
		var maxRel float64
		for i := range ref {
			scale := math.Abs(ref[i]) + 1
			if d := math.Abs(res.Output[i]-ref[i]) / scale; d > maxRel {
				maxRel = d
			}
		}
		if maxRel > 1e-10 {
			t.Errorf("%s: max relative deviation %v from direct DFT", v, maxRel)
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	cc, _ := w.Run(w.Representative(), workload.CC)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			t.Fatalf("TC and CC differ at %d", i)
		}
	}
}

func TestBaselineOrderDiffers(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	bl, _ := w.Run(w.Representative(), workload.Baseline)
	same := true
	for i := range tc.Output {
		if tc.Output[i] != bl.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("DFT-matrix and radix-2 paths bit-identical; orders should differ")
	}
}

func TestPerformanceShape(t *testing.T) {
	// Section 6.1: the TC FFT performs WORSE than the cuFFT baseline —
	// the one workload where the baseline wins. Section 6.2: FFT suffers
	// the smallest CC degradation within Quadrant I.
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			sp := tBL / tTC
			if sp >= 1.0 || sp < 0.2 {
				t.Errorf("%s/%s: TC 'speedup' %v, want below 1 (cuFFT wins)",
					c.Name, spec.Name, sp)
			}
			// On A100/H200 the gap stays moderate; on B200 the FP64 tensor
			// regression (Section 11) widens it.
			if spec.Name != "B200" && sp < 0.45 {
				t.Errorf("%s/%s: TC 'speedup' %v implausibly low", c.Name, spec.Name, sp)
			}
			if r := tTC / tCC; r < 0.42 || r > 0.98 {
				t.Errorf("%s/%s: CC/TC %v outside [0.42, 0.98]", c.Name, spec.Name, r)
			}
		}
	}
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "bad"}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
}
