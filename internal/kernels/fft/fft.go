// Package fft implements the FFT workload following tcFFT (Li et al.,
// CLUSTER '21) adapted to FP64: each 1D transform of length L = n1·n2 runs
// as the four-step algorithm — an inner DFT against the n2-point Fourier
// matrix, a twiddle scaling, and an outer DFT against the n1-point Fourier
// matrix — with both complex matrix products executed on the FP64 m8n8k4
// MMA (four real products per complex product). The Fourier matrices are
// loaded once and reused across the whole batch — the Quadrant I pattern
// where A is resident and many result matrices are produced (Figure 2).
//
// Table 2's cases are 2D transforms (rows × cols) over a batch of 2048
// images; the paper notes the TC version loses to the cuFFT baseline
// because butterfly patterns map poorly onto MMA shapes (Section 6.1).
package fft

import (
	"fmt"
	"math"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Batch is the number of images per run (Table 2).
const Batch = 2048

// sampleImages is how many images are executed numerically per run.
const sampleImages = 2

// Workload is the FFT kernel.
type Workload struct{}

// New returns the FFT workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "FFT" }

// Quadrant implements workload.Workload (Figure 2, Quadrant I).
func (*Workload) Quadrant() int { return 1 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Spectral methods" }

// Cases returns the five 2D sizes of Table 2.
func (*Workload) Cases() []workload.Case {
	mk := func(r, c int) workload.Case {
		return workload.Case{Name: fmt.Sprintf("%dx%d", r, c), Dims: []int{r, c}}
	}
	return []workload.Case{
		mk(256, 256), mk(256, 512), mk(256, 1024), mk(512, 256), mk(512, 512),
	}
}

// Variants implements workload.Workload. CC-E ≡ CC for Quadrant I.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 400 }

func dims(c workload.Case) (r, cc int, err error) {
	if len(c.Dims) != 2 {
		return 0, 0, fmt.Errorf("fft: case %q needs 2 dims", c.Name)
	}
	return c.Dims[0], c.Dims[1], nil
}

// inputs generates the sampled batch: interleaved re/im, image-major.
func inputs(r, c int) (re, im []float64) {
	n := r * c * sampleImages
	re = make([]float64, n)
	im = make([]float64, n)
	g := lcg.New(int64(r)*65537 + int64(c))
	g.Fill(re)
	g.Fill(im)
	return re, im
}

// split factors an FFT length into the (n1, n2) pair used by the four-step
// decomposition, preferring near-square factors with n1, n2 ≥ 16 so the MMA
// tiles stay full.
func split(l int) (n1, n2 int) {
	n1 = 16
	for n1*n1 < l {
		n1 *= 2
	}
	return n1, l / n1
}

// fourier returns the n-point DFT matrix (row j, col k → ω^{jk}).
func fourier(n int) (re, im []float64) {
	re = make([]float64, n*n)
	im = make([]float64, n*n)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			re[j*n+k] = math.Cos(ang)
			im[j*n+k] = math.Sin(ang)
		}
	}
	return re, im
}

// matmulComplexMMA computes C = A·B for complex matrices in split storage
// using the MMA semantics: C_re = A_re·B_re + (−A_im)·B_im and
// C_im = A_re·B_im + A_im·B_re, each real product tiled over 8×4·4×8 MMAs
// with the k dimension swept in ascending order (first the B_re sweep, then
// the B_im sweep — a fixed, reproducible accumulation order).
func matmulComplexMMA(cRe, cIm, aRe, aIm, bRe, bIm []float64, m, k, n int) {
	negAIm := fftPanelScratch.Get(len(aIm))
	defer fftPanelScratch.Put(negAIm)
	for i, v := range aIm {
		negAIm[i] = -v
	}
	realMMA(cRe, aRe, bRe, m, k, n)
	realMMA(cRe, negAIm, bIm, m, k, n)
	realMMA(cIm, aRe, bIm, m, k, n)
	realMMA(cIm, aIm, bRe, m, k, n)
}

// fftPanelScratch pools the packed A/B operand panels and the C tile of
// realMMA across calls (four per complex product, many per transform).
var fftPanelScratch = par.NewSizedScratch()

// realMMA accumulates C += A·B with fused m8n8k4 MMA k-sweeps (zero-padded
// edges). The operands arrive as raw row-major slices; wrapping them in
// tensor.Matrix views gives the panel packers their fast interior paths.
// Both operands are staged whole, once per call: every B column-panel is
// packed up front and reused by every row block (the per-tile version
// re-packed each column panel m/8 times), and the A row-panel once per row
// block. The four-step intermediates mutate between successive realMMA
// calls, so this per-call hoisting — not the process-wide packcache, which
// would hash-miss on every lookup — is the right reuse scope here. The
// per-element FMA chain stays the ascending-k order of the old loop, so
// results are bit-identical (CUBIE_NO_PANEL=1 verifies).
func realMMA(c, a, b []float64, m, k, n int) {
	av := &tensor.Matrix{Rows: m, Cols: k, Data: a}
	bv := &tensor.Matrix{Rows: k, Cols: n, Data: b}
	kTiles := (k + mmu.K - 1) / mmu.K
	colTiles := (n + mmu.N - 1) / mmu.N
	bStride := kTiles * mmu.K * mmu.N
	buf := fftPanelScratch.Get(mmu.M*mmu.N + kTiles*mmu.M*mmu.K + colTiles*bStride)
	defer fftPanelScratch.Put(buf)
	cT := buf[0 : mmu.M*mmu.N]
	aPanel := buf[mmu.M*mmu.N : mmu.M*mmu.N+kTiles*mmu.M*mmu.K]
	bAll := buf[mmu.M*mmu.N+kTiles*mmu.M*mmu.K:]
	for tj := 0; tj < colTiles; tj++ {
		bv.PackBPanel(bAll[tj*bStride:(tj+1)*bStride], 0, tj*mmu.N, kTiles)
	}
	for i0 := 0; i0 < m; i0 += mmu.M {
		h := minInt(mmu.M, m-i0)
		av.PackAPanel(aPanel, i0, 0, kTiles)
		for j0, tj := 0, 0; j0 < n; j0, tj = j0+mmu.N, tj+1 {
			w := minInt(mmu.N, n-j0)
			bPanel := bAll[tj*bStride : (tj+1)*bStride]
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					cT[i*mmu.N+j] = c[(i0+i)*n+j0+j]
				}
			}
			mmu.DMMAPanel(cT, aPanel, bPanel, kTiles)
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					c[(i0+i)*n+j0+j] = cT[i*mmu.N+j]
				}
			}
		}
	}
}

// fft1DMMA transforms one length-l signal (strided views) with the
// four-step algorithm on the MMA path.
type fftPlanMMA struct {
	l, n1, n2              int
	f1Re, f1Im, f2Re, f2Im []float64
	twRe, twIm             []float64 // ω_L^{j1·k2} twiddles, n1×n2
}

func newPlanMMA(l int) *fftPlanMMA {
	n1, n2 := split(l)
	p := &fftPlanMMA{l: l, n1: n1, n2: n2}
	p.f2Re, p.f2Im = fourier(n2)
	p.f1Re, p.f1Im = fourier(n1)
	p.twRe = make([]float64, n1*n2)
	p.twIm = make([]float64, n1*n2)
	for j1 := 0; j1 < n1; j1++ {
		for k2 := 0; k2 < n2; k2++ {
			ang := -2 * math.Pi * float64(j1*k2) / float64(l)
			p.twRe[j1*n2+k2] = math.Cos(ang)
			p.twIm[j1*n2+k2] = math.Sin(ang)
		}
	}
	return p
}

// transform runs the plan in place on a gathered dense signal.
func (p *fftPlanMMA) transform(re, im []float64) {
	n1, n2 := p.n1, p.n2
	// Step 0: gather x into the n1×n2 matrix X[j1][j2] = x[j1 + n1·j2].
	xRe := make([]float64, n1*n2)
	xIm := make([]float64, n1*n2)
	for j1 := 0; j1 < n1; j1++ {
		for j2 := 0; j2 < n2; j2++ {
			xRe[j1*n2+j2] = re[j1+n1*j2]
			xIm[j1*n2+j2] = im[j1+n1*j2]
		}
	}
	// Step 1: inner DFTs — Y = X·F_{n2}.
	yRe := make([]float64, n1*n2)
	yIm := make([]float64, n1*n2)
	matmulComplexMMA(yRe, yIm, xRe, xIm, p.f2Re, p.f2Im, n1, n2, n2)
	// Step 2: twiddle.
	for i := range yRe {
		r := yRe[i]*p.twRe[i] - yIm[i]*p.twIm[i]
		im2 := yRe[i]*p.twIm[i] + yIm[i]*p.twRe[i]
		yRe[i], yIm[i] = r, im2
	}
	// Step 3: outer DFTs — Z = F_{n1}ᵀ·Y; F is symmetric, so F₁·Y.
	zRe := make([]float64, n1*n2)
	zIm := make([]float64, n1*n2)
	matmulComplexMMA(zRe, zIm, p.f1Re, p.f1Im, yRe, yIm, n1, n1, n2)
	// Z row-major is exactly the k2 + n2·k1 output ordering.
	copy(re, zRe)
	copy(im, zIm)
}

// transform2DMMA applies row FFTs then column FFTs to one r×c image.
func transform2DMMA(re, im []float64, r, c int) {
	rowPlan := newPlanMMA(c)
	colPlan := newPlanMMA(r)
	for i := 0; i < r; i++ {
		rowPlan.transform(re[i*c:(i+1)*c], im[i*c:(i+1)*c])
	}
	colRe := make([]float64, r)
	colIm := make([]float64, r)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			colRe[i], colIm[i] = re[i*c+j], im[i*c+j]
		}
		colPlan.transform(colRe, colIm)
		for i := 0; i < r; i++ {
			re[i*c+j], im[i*c+j] = colRe[i], colIm[i]
		}
	}
}

// radix2 is the cuFFT-class baseline: iterative radix-2 Cooley–Tukey with
// bit-reversal — a completely different rounding order than the DFT-matrix
// path.
func radix2(re, im []float64) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			curRe, curIm := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				uRe, uIm := re[i+j], im[i+j]
				vRe := re[i+j+length/2]*curRe - im[i+j+length/2]*curIm
				vIm := re[i+j+length/2]*curIm + im[i+j+length/2]*curRe
				re[i+j], im[i+j] = uRe+vRe, uIm+vIm
				re[i+j+length/2], im[i+j+length/2] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

func transform2DRadix2(re, im []float64, r, c int) {
	for i := 0; i < r; i++ {
		radix2(re[i*c:(i+1)*c], im[i*c:(i+1)*c])
	}
	colRe := make([]float64, r)
	colIm := make([]float64, r)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			colRe[i], colIm[i] = re[i*c+j], im[i*c+j]
		}
		radix2(colRe, colIm)
		for i := 0; i < r; i++ {
			re[i*c+j], im[i*c+j] = colRe[i], colIm[i]
		}
	}
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	r, cc, err := dims(c)
	if err != nil {
		return nil, err
	}
	pts := float64(r) * float64(cc) * Batch
	res := &workload.Result{
		// Essential FLOPs: 5·N·log₂N per pass, both passes.
		Work:       pts * 5 * (log2f(r) + log2f(cc)),
		MetricName: "GFLOPS",
	}
	switch v {
	case workload.TC:
		res.Profile = tcProfile(r, cc)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.CC, workload.CCE:
		res.Profile = ccProfile(r, cc)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.Baseline:
		res.Profile = baselineProfile(r, cc)
	default:
		return nil, fmt.Errorf("fft: unknown variant %q", v)
	}
	re, im := inputs(r, cc)
	n := r * cc
	for img := 0; img < sampleImages; img++ {
		switch v {
		case workload.TC, workload.CC, workload.CCE:
			transform2DMMA(re[img*n:(img+1)*n], im[img*n:(img+1)*n], r, cc)
		case workload.Baseline:
			transform2DRadix2(re[img*n:(img+1)*n], im[img*n:(img+1)*n], r, cc)
		}
	}
	out := make([]float64, 0, 2*len(re))
	out = append(out, re...)
	out = append(out, im...)
	res.Output = out
	return res, nil
}

// Reference implements workload.Workload: a direct O(N²) DFT per 1D pass
// with separate multiplies and adds — the unambiguous ground truth.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	r, cc, err := dims(c)
	if err != nil {
		return nil, err
	}
	re, im := inputs(r, cc)
	n := r * cc
	for img := 0; img < sampleImages; img++ {
		direct2D(re[img*n:(img+1)*n], im[img*n:(img+1)*n], r, cc)
	}
	out := make([]float64, 0, 2*len(re))
	out = append(out, re...)
	out = append(out, im...)
	return out, nil
}

func directDFT(re, im []float64) {
	n := len(re)
	oRe := make([]float64, n)
	oIm := make([]float64, n)
	for k := 0; k < n; k++ {
		var sr, si float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			cr, ci := math.Cos(ang), math.Sin(ang)
			sr += re[j]*cr - im[j]*ci
			si += re[j]*ci + im[j]*cr
		}
		oRe[k], oIm[k] = sr, si
	}
	copy(re, oRe)
	copy(im, oIm)
}

func direct2D(re, im []float64, r, c int) {
	for i := 0; i < r; i++ {
		directDFT(re[i*c:(i+1)*c], im[i*c:(i+1)*c])
	}
	colRe := make([]float64, r)
	colIm := make([]float64, r)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			colRe[i], colIm[i] = re[i*c+j], im[i*c+j]
		}
		directDFT(colRe, colIm)
		for i := 0; i < r; i++ {
			re[i*c+j], im[i*c+j] = colRe[i], colIm[i]
		}
	}
}

// Profiles. MMA FLOPs per point per pass of length L = n1·n2: 8·(n1+n2)
// (two complex matmuls, four real products each); the baseline performs the
// essential 5·log₂L.

func mmaFLOPsPerPoint(l int) float64 {
	n1, n2 := split(l)
	return 8 * float64(n1+n2)
}

func tcProfile(r, c int) sim.Profile {
	pts := float64(r) * float64(c) * Batch
	return sim.Profile{
		TensorFLOPs: pts * (mmaFLOPsPerPoint(c) + mmaFLOPsPerPoint(r)),
		VectorFLOPs: pts * 12, // twiddle scaling, both passes
		// Two passes, read + write complex, plus the blocked-layout
		// transposes between the four-step stages (~30% extra traffic —
		// the butterfly-to-MMA mismatch the paper calls out).
		DRAMBytes:  pts * 64 * 1.3,
		ConstBytes: pts * 4, // Fourier-matrix broadcasts
		L1Bytes:    pts * 96,
		Launches:   2, // row and column passes
		Overlap:    0.88,
		Eff: sim.Efficiency{
			Tensor: 0.60,
			Vector: 0.6,
			DRAM:   sim.EffLibrary,
			L1:     0.9,
		},
	}
}

func ccProfile(r, c int) sim.Profile {
	p := tcProfile(r, c)
	p.VectorFLOPs += p.TensorFLOPs
	p.TensorFLOPs = 0
	p.ConstBytes = 0
	// The FFT's scalar replacement keeps the regular four-step structure
	// and vectorizes well — the smallest Quadrant I degradation (§6.2).
	p.Overlap = 0.60
	p.Eff = sim.Efficiency{Vector: 0.58, DRAM: sim.EffLibrary, L1: 0.9}
	return p
}

func baselineProfile(r, c int) sim.Profile {
	pts := float64(r) * float64(c) * Batch
	return sim.Profile{
		VectorFLOPs: pts * 5 * (log2f(r) + log2f(c)),
		DRAMBytes:   pts * 64, // cuFFT's fused passes: 2 × read+write complex
		L1Bytes:     pts * 64,
		Launches:    2,
		Overlap:     0.85,
		Eff: sim.Efficiency{
			Vector: sim.EffLibrary,
			DRAM:   0.90,
			L1:     0.85,
		},
	}
}

func log2f(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
