package fft

import (
	"testing"

	"repro/internal/lcg"
)

func BenchmarkTransform256MMA(b *testing.B) {
	p := newPlanMMA(256)
	re := make([]float64, 256)
	im := make([]float64, 256)
	lcg.New(1).Fill(re)
	lcg.New(2).Fill(im)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := append([]float64(nil), re...)
		m := append([]float64(nil), im...)
		p.transform(r, m)
	}
}

func BenchmarkRadix2_256(b *testing.B) {
	re := make([]float64, 256)
	im := make([]float64, 256)
	lcg.New(1).Fill(re)
	lcg.New(2).Fill(im)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := append([]float64(nil), re...)
		m := append([]float64(nil), im...)
		radix2(r, m)
	}
}
