// Package reduction implements the Reduction workload following Dakkak et
// al. (ICS '19) at FP64: each 64-element chunk is laid out as an 8×8 block
// and reduced with two constant-matrix MMAs — (1) A₁·X with A₁ holding ones
// in its first row (column sums land in row 0) and (2) R·B₂ with B₂ holding
// ones in its first column (the block total lands in element (0,0)).
// Quadrant III: partial (constant) input AND partial output — only one row,
// then one element, of each 8×8 tile is meaningful.
//
// Table 2's "Size" is the segment length; the suite reduces a batch of
// 65536 independent segments per run (the CUB BlockReduce baseline is a
// per-block primitive).
package reduction

import (
	"fmt"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Batch is the number of independent segments per run.
const Batch = 65536

// sampleElems caps the numerically-executed portion of a case.
const sampleElems = 1 << 20

// Workload is the Reduction kernel.
type Workload struct{}

// New returns the Reduction workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "Reduction" }

// Quadrant implements workload.Workload (Figure 2, Quadrant III).
func (*Workload) Quadrant() int { return 3 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "MapReduce" }

// Cases returns the five segment sizes of Table 2.
func (*Workload) Cases() []workload.Case {
	var cs []workload.Case
	for _, s := range []int{64, 128, 256, 512, 1024} {
		cs = append(cs, workload.Case{Name: fmt.Sprint(s), Dims: []int{s}})
	}
	return cs
}

// Variants implements workload.Workload.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC, workload.CCE}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[2] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 50000 }

func segSize(c workload.Case) (int, error) {
	if len(c.Dims) != 1 || c.Dims[0] < 1 {
		return 0, fmt.Errorf("reduction: case %q needs one positive dim", c.Name)
	}
	return c.Dims[0], nil
}

func sampleSegments(s int) int {
	n := sampleElems / s
	if n > Batch {
		n = Batch
	}
	if n < 1 {
		n = 1
	}
	return n
}

func input(s int) []float64 {
	segs := sampleSegments(s)
	data := make([]float64, s*segs)
	lcg.New(int64(s) * 3).Fill(data)
	return data
}

// The two constant matrices.
var (
	onesRow0 = func() []float64 { // A₁: ones in row 0
		m := make([]float64, 64)
		for j := 0; j < 8; j++ {
			m[j] = 1
		}
		return m
	}()
	onesCol0 = func() []float64 { // B₂: ones in column 0
		m := make([]float64, 64)
		for i := 0; i < 8; i++ {
			m[i*8] = 1
		}
		return m
	}()
)

// mma8x8 multiplies two 8×8 tiles as one fused two-tile m8n8k4 k-sweep. The
// row-major 8×8 B operand is already a two-tile B panel; A is repacked into
// the caller-provided two-tile panel buffer (len ≥ 64). Per-element FMA
// order matches the old two-DMMATile sequence bit for bit.
func mma8x8(c, a, b, aPanel []float64) {
	mmu.PackA(aPanel, a, 8, 2)
	mmu.DMMAPanel(c, aPanel, b, 2)
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	s, err := segSize(c)
	if err != nil {
		return nil, err
	}
	res := &workload.Result{
		Work:       float64(s) * Batch,
		MetricName: "GElem/s",
	}
	data := input(s)
	switch v {
	case workload.TC:
		res.Profile = tcProfile(s)
		res.Output = computeMMAReduce(data, s)
		// Constant operands carry a single meaningful row/column; only one
		// element of the final output tile is consumed.
		res.InputUtil, res.OutputUtil = 0.5, 1.0/64
	case workload.CC:
		res.Profile = ccProfile(s)
		res.Output = computeMMAReduce(data, s)
		res.InputUtil, res.OutputUtil = 0.5, 1.0/64
	case workload.CCE:
		res.Profile = cceProfile(s)
		res.Output = computePairwise(data, s)
	case workload.Baseline:
		res.Profile = baselineProfile(s)
		res.Output = computeShuffleTree(data, s)
	default:
		return nil, fmt.Errorf("reduction: unknown variant %q", v)
	}
	return res, nil
}

// Reference implements workload.Workload: serial sums per segment.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	s, err := segSize(c)
	if err != nil {
		return nil, err
	}
	data := input(s)
	out := make([]float64, len(data)/s)
	par.ForTiles(len(out), func(lo, hi int) {
		for seg := lo; seg < hi; seg++ {
			var acc float64
			for i := 0; i < s; i++ {
				acc += data[seg*s+i]
			}
			out[seg] = acc
		}
	})
	return out, nil
}

// reduceScratch pools the per-segment staging of computeMMAReduce: the 8×8
// input block X, the two stage tiles, and the A operand panel (64 each).
var reduceScratch = par.NewScratch(4 * 64)

// computeMMAReduce is the TC/CC algorithm: per block, A₁·X folds the eight
// rows into row 0, then R·B₂ folds row 0 into element (0,0); block totals
// accumulate into the segment sum in block order. Segments write disjoint
// out slots, so the segment grid runs on the par worker pool; each segment's
// block-order accumulation is unchanged, keeping results worker-count
// independent.
func computeMMAReduce(data []float64, s int) []float64 {
	out := make([]float64, len(data)/s)
	par.ForTiles(len(out), func(lo, hi int) {
		buf := reduceScratch.Get()
		defer reduceScratch.Put(buf)
		x := buf[0:64]
		r1 := buf[64:128]
		r2 := buf[128:192]
		aPanel := buf[192:256]
		for seg := lo; seg < hi; seg++ {
			var acc float64
			for b0 := 0; b0 < s; b0 += 64 {
				n := min(64, s-b0)
				for i := range x {
					if i < n {
						x[i] = data[seg*s+b0+i]
					} else {
						x[i] = 0
					}
				}
				for i := range r1 {
					r1[i], r2[i] = 0, 0
				}
				mma8x8(r1, onesRow0, x, aPanel)  // column sums in row 0
				mma8x8(r2, r1, onesCol0, aPanel) // block total in (0,0)
				acc += r2[0]
			}
			out[seg] = acc
		}
	})
	return out
}

// computePairwise is the CC-E essential reduction: a binary pairwise tree
// per segment — the classic work-efficient order, different from the MMA's
// row/column folding (Table 6).
func computePairwise(data []float64, s int) []float64 {
	out := make([]float64, len(data)/s)
	par.ForTiles(len(out), func(lo, hi int) {
		buf := make([]float64, s) // one working buffer per worker range
		for seg := lo; seg < hi; seg++ {
			copy(buf, data[seg*s:(seg+1)*s])
			n := s
			for n > 1 {
				half := (n + 1) / 2
				for i := 0; i < n/2; i++ {
					buf[i] = buf[2*i] + buf[2*i+1]
				}
				if n%2 == 1 {
					buf[n/2] = buf[n-1]
				}
				n = half
			}
			out[seg] = buf[0]
		}
	})
	return out
}

// computeShuffleTree is the CUB BlockReduce-class baseline: stride-halving
// warp-shuffle reduction.
func computeShuffleTree(data []float64, s int) []float64 {
	out := make([]float64, len(data)/s)
	p2 := 1
	for p2 < s {
		p2 *= 2
	}
	par.ForTiles(len(out), func(lo, hi int) {
		buf := make([]float64, p2) // one working buffer per worker range
		for seg := lo; seg < hi; seg++ {
			for i := range buf {
				if i < s {
					buf[i] = data[seg*s+i]
				} else {
					buf[i] = 0
				}
			}
			for stride := p2 / 2; stride >= 1; stride /= 2 {
				for i := 0; i < stride; i++ {
					buf[i] += buf[i+stride]
				}
			}
			out[seg] = buf[0]
		}
	})
	return out
}

// Profiles. Reduction streams 8 B per element and writes almost nothing:
// the lowest arithmetic intensity in the suite (Figure 9, ~10⁻¹).

func blocks(s int) float64 { return float64((s+63)/64) * Batch }

func tcProfile(s int) sim.Profile {
	elems := float64(s) * Batch
	nb := blocks(s)
	return sim.Profile{
		TensorFLOPs: nb * 4 * mmu.FLOPsPerDMMA, // 2 stages × 2 MMAs per block
		DRAMBytes:   elems*sim.BytesF64 + Batch*sim.BytesF64,
		ConstBytes:  nb * 2 * 64 * sim.BytesF64,
		L1Bytes:     nb * 2 * 512,
		Launches:    1,
		SyncSteps:   float64((s + 63) / 64),
		Overlap:     0.90,
		Eff: sim.Efficiency{
			// The constant operand stays resident in the MMA register
			// file, so issue runs near peak (the Quadrant III advantage).
			Tensor: 0.75,
			DRAM:   0.90,
			L1:     0.9,
		},
	}
}

func ccProfile(s int) sim.Profile {
	p := tcProfile(s)
	p.VectorFLOPs, p.TensorFLOPs = p.TensorFLOPs, 0
	// Constant operands become regular loads per scalar FMA chain.
	p.ConstBytes = 0
	p.L1Bytes += blocks(s) * 4 * 1024
	p.Overlap = 0.30
	p.Eff = sim.Efficiency{Vector: 0.15, DRAM: 0.90, L1: 0.9}
	return p
}

func cceProfile(s int) sim.Profile {
	elems := float64(s) * Batch
	return sim.Profile{
		VectorFLOPs: elems, // one add per element
		DRAMBytes:   elems*sim.BytesF64 + Batch*sim.BytesF64,
		L1Bytes:     elems * sim.BytesF64,
		Launches:    1,
		SyncSteps:   logish(s),
		Overlap:     0.70,
		Eff: sim.Efficiency{
			Vector: 0.40,
			DRAM:   0.70, // tree strides break perfect streaming
			L1:     0.7,
		},
	}
}

func baselineProfile(s int) sim.Profile {
	elems := float64(s) * Batch
	return sim.Profile{
		VectorFLOPs: elems,
		DRAMBytes:   elems*sim.BytesF64 + Batch*sim.BytesF64,
		L1Bytes:     elems * sim.BytesF64 * 2,
		Launches:    1,
		SyncSteps:   logish(s),
		Overlap:     0.65,
		Eff: sim.Efficiency{
			Vector: sim.EffModerate,
			DRAM:   0.65, // CUB's two-phase (block + grid) reduction
			L1:     0.7,
		},
	}
}

func logish(s int) float64 {
	l := 0.0
	for v := 1; v < s; v *= 2 {
		l++
	}
	return l
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
