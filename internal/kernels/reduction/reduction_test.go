package reduction

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Reduction" || w.Quadrant() != 3 {
		t.Fatal("bad metadata")
	}
	if len(w.Cases()) != 5 || w.Repeats() != 50000 {
		t.Fatal("cases / repeats wrong")
	}
}

func TestConstantMatrices(t *testing.T) {
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			r, c := onesRow0[i*8+j], onesCol0[i*8+j]
			if (i == 0) != (r == 1) || (j == 0) != (c == 1) {
				t.Fatalf("constant matrices wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestAllVariantsNearReference(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		ref, err := w.Reference(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants() {
			res, err := w.Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) != len(ref) {
				t.Fatalf("%s/%s: length %d want %d", c.Name, v, len(res.Output), len(ref))
			}
			for i := range ref {
				scale := math.Abs(ref[i]) + 10
				if d := math.Abs(res.Output[i]-ref[i]) / scale; d > 1e-13 {
					t.Fatalf("%s/%s: rel error %v at segment %d", c.Name, v, d, i)
				}
			}
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		for i := range tc.Output {
			if tc.Output[i] != cc.Output[i] {
				t.Fatalf("%s: TC and CC differ at %d", c.Name, i)
			}
		}
	}
}

func TestVariantOrdersDiverge(t *testing.T) {
	w := New()
	c := w.Cases()[4] // 1024: long enough for order effects to surface
	tc, _ := w.Run(c, workload.TC)
	cce, _ := w.Run(c, workload.CCE)
	bl, _ := w.Run(c, workload.Baseline)
	differs := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !differs(tc.Output, cce.Output) {
		t.Error("CC-E bit-identical to TC")
	}
	if !differs(tc.Output, bl.Output) {
		t.Error("baseline bit-identical to TC")
	}
}

func TestQuadrantIIIUtilization(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	if tc.InputUtil != 0.5 {
		t.Errorf("input utilization %v, want 0.5 (constant operand)", tc.InputUtil)
	}
	if tc.OutputUtil != 1.0/64 {
		t.Errorf("output utilization %v, want 1/64 (single element)", tc.OutputUtil)
	}
}

func TestPerformanceShape(t *testing.T) {
	// Paper: TC 1.3–1.6× over CUB; CC <40% of TC; CC-E 0.66–0.79× of TC.
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		cce, _ := w.Run(c, workload.CCE)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tCCE := sim.Run(spec, cce.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			if sp := tBL / tTC; sp < 1.15 || sp > 1.9 {
				t.Errorf("%s/%s: TC speedup %v outside [1.15, 1.9]", c.Name, spec.Name, sp)
			}
			if r := tTC / tCC; r > 0.5 {
				t.Errorf("%s/%s: CC/TC %v, want well below TC", c.Name, spec.Name, r)
			}
			if r := tTC / tCCE; r < 0.55 || r > 0.90 {
				t.Errorf("%s/%s: CC-E/TC %v outside [0.55, 0.90]", c.Name, spec.Name, r)
			}
		}
	}
}

func TestLowArithmeticIntensity(t *testing.T) {
	// Figure 9 places Reduction around 10⁻¹ FLOPs/byte... for the essential
	// computation; the TC variant's redundant MMA FLOPs raise the issued
	// intensity but the kernel stays memory-bound.
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	r := sim.Run(device.H200(), tc.Profile)
	if r.Bottleneck != "DRAM" {
		t.Errorf("bottleneck = %s, want DRAM", r.Bottleneck)
	}
	cce, _ := w.Run(w.Representative(), workload.CCE)
	if ai := cce.Profile.ArithmeticIntensity(); ai > 0.5 {
		t.Errorf("essential intensity %v, want ~10⁻¹", ai)
	}
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "bad"}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
}
