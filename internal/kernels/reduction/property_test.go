package reduction

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lcg"
)

// TestReductionMatchesKahanSum: the MMA reduction agrees with a compensated
// serial sum to high accuracy.
func TestReductionMatchesKahanSum(t *testing.T) {
	f := func(seed int64) bool {
		g := lcg.New(seed)
		const s = 512
		data := make([]float64, s)
		g.Fill(data)
		out := computeMMAReduce(data, s)
		var sum, comp float64
		for _, v := range data {
			y := v - comp
			tt := sum + y
			comp = (tt - sum) - y
			sum = tt
		}
		return math.Abs(out[0]-sum) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestReductionPermutationStable: summing a permutation changes only
// rounding, never the value beyond FP64 noise.
func TestReductionPermutationStable(t *testing.T) {
	g := lcg.New(5)
	const s = 256
	data := make([]float64, s)
	g.Fill(data)
	perm := g.Perm(s)
	shuffled := make([]float64, s)
	for i, p := range perm {
		shuffled[i] = data[p]
	}
	a := computeMMAReduce(data, s)
	b := computeMMAReduce(shuffled, s)
	if math.Abs(a[0]-b[0]) > 1e-11 {
		t.Fatalf("permutation moved the sum: %v vs %v", a[0], b[0])
	}
}

// TestAllReductionImplementationsAgree cross-checks the three algorithms.
func TestAllReductionImplementationsAgree(t *testing.T) {
	g := lcg.New(9)
	const s = 96 // non-power-of-two, non-multiple of 64
	data := make([]float64, 8*s)
	g.Fill(data)
	mma := computeMMAReduce(data, s)
	pw := computePairwise(data, s)
	st := computeShuffleTree(data, s)
	for i := range mma {
		if math.Abs(mma[i]-pw[i]) > 1e-11 || math.Abs(mma[i]-st[i]) > 1e-11 {
			t.Fatalf("segment %d: %v %v %v", i, mma[i], pw[i], st[i])
		}
	}
}

func BenchmarkMMAReduce(b *testing.B) {
	g := lcg.New(1)
	const s = 1024
	data := make([]float64, 16*s)
	g.Fill(data)
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		computeMMAReduce(data, s)
	}
}
