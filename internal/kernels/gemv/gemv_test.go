package gemv

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lcg"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "GEMV" || w.Quadrant() != 4 {
		t.Fatal("bad metadata")
	}
	if len(w.Cases()) != 5 {
		t.Fatal("want 5 cases")
	}
	if w.Cases()[1].Dims[1] != 32 {
		t.Fatal("4Kx32 case wrong")
	}
	if w.Repeats() != 6_000_000 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestAllVariantsNearReference(t *testing.T) {
	w := New()
	for _, c := range w.Cases()[:2] {
		ref, err := w.Reference(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants() {
			res, err := w.Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) != len(ref) {
				t.Fatalf("%s/%s: length %d want %d", c.Name, v, len(res.Output), len(ref))
			}
			for i := range ref {
				if d := math.Abs(res.Output[i] - ref[i]); d > 1e-13 {
					t.Fatalf("%s/%s: error %v at %d", c.Name, v, d, i)
				}
			}
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		for i := range tc.Output {
			if tc.Output[i] != cc.Output[i] {
				t.Fatalf("%s: TC and CC differ at %d", c.Name, i)
			}
		}
	}
}

func TestBaselineOrderDiffers(t *testing.T) {
	// The tree-reduced baseline must differ in rounding from the MMA chain
	// somewhere across the cases (Table 6 mechanism).
	w := New()
	differs := false
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		bl, _ := w.Run(c, workload.Baseline)
		for i := range tc.Output {
			if tc.Output[i] != bl.Output[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("baseline never deviates from TC in rounding")
	}
}

func TestUtilizationQuadrantIV(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Cases()[0], workload.TC)
	if tc.InputUtil != 1 {
		t.Error("GEMV uses full input")
	}
	if tc.OutputUtil >= 0.5 {
		t.Errorf("GEMV output utilization %v should be partial", tc.OutputUtil)
	}
}

func TestPerformanceShape(t *testing.T) {
	w := New()
	c := w.Cases()[4] // largest
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	cce, _ := w.Run(c, workload.CCE)
	bl, _ := w.Run(c, workload.Baseline)
	for _, spec := range device.All() {
		tTC := sim.Run(spec, tc.Profile).Time
		tCC := sim.Run(spec, cc.Profile).Time
		tCCE := sim.Run(spec, cce.Profile).Time
		tBL := sim.Run(spec, bl.Profile).Time
		if tTC >= tBL {
			t.Errorf("%s: TC (%v) not faster than baseline (%v)", spec.Name, tTC, tBL)
		}
		// CC retains most but not all of TC performance (Figure 5, QIV).
		if r := tTC / tCC; r < 0.5 || r > 0.95 {
			t.Errorf("%s: CC/TC = %v outside [0.5, 0.95]", spec.Name, r)
		}
		// CC-E slightly slower than TC (Section 6.3).
		if r := tTC / tCCE; r < 0.75 || r >= 1.0 {
			t.Errorf("%s: CC-E/TC = %v, want slightly below 1", spec.Name, r)
		}
	}
}

func TestMemoryBound(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Cases()[3], workload.TC)
	r := sim.Run(device.H200(), tc.Profile)
	if r.Bottleneck != "DRAM" {
		t.Errorf("GEMV TC bottleneck = %s, want DRAM", r.Bottleneck)
	}
	if ai := tc.Profile.ArithmeticIntensity(); ai > 16 {
		t.Errorf("arithmetic intensity %v too high for a memory-bound kernel", ai)
	}
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Cases()[0], "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "bad"}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
	if _, err := w.Reference(workload.Case{Name: "bad"}); err == nil {
		t.Error("malformed reference case accepted")
	}
}

func TestGEMVLinearity(t *testing.T) {
	// A·(x + y) must equal A·x + A·y up to rounding — the operator property
	// of the MMA GEMV path.
	m, n := 128, 16
	g := lcg.New(99)
	a := tensor.NewMatrix(m, n)
	g.Fill(a.Data)
	x := make([]float64, n)
	y := make([]float64, n)
	g.Fill(x)
	g.Fill(y)
	sum := make([]float64, n)
	for i := range sum {
		sum[i] = x[i] + y[i]
	}
	ax := computeMMA(a, x)
	ay := computeMMA(a, y)
	asum := computeMMA(a, sum)
	for i := 0; i < m; i++ {
		if d := math.Abs(asum[i] - (ax[i] + ay[i])); d > 1e-13 {
			t.Fatalf("linearity violated at %d: %v", i, d)
		}
	}
}

func TestGEMVZeroVector(t *testing.T) {
	m, n := 64, 16
	a := tensor.NewMatrix(m, n)
	lcg.New(7).Fill(a.Data)
	y := computeMMA(a, make([]float64, n))
	for i, v := range y {
		if v != 0 {
			t.Fatalf("A·0 nonzero at %d: %v", i, v)
		}
	}
}
