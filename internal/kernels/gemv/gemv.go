// Package gemv implements the GEMV workload: y = A·x for tall-skinny dense
// matrices. The TC version partitions A into 8×4 blocks, broadcasts the
// matching x segment into all eight columns of the 4×8 B operand, runs the
// FP64 m8n8k4 MMA, and extracts one column of the (all-equal-column) output
// tile — Quadrant IV: full input, partial output (Figure 2).
package gemv

import (
	"fmt"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/packcache"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Workload is the GEMV kernel.
type Workload struct{}

// New returns the GEMV workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "GEMV" }

// Quadrant implements workload.Workload (Figure 2, Quadrant IV).
func (*Workload) Quadrant() int { return 4 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Dense linear algebra" }

// Cases returns the five M×N test cases of Table 2.
func (*Workload) Cases() []workload.Case {
	mk := func(m, n int, name string) workload.Case {
		return workload.Case{Name: name, Dims: []int{m, n}}
	}
	return []workload.Case{
		mk(4096, 16, "4Kx16"),
		mk(4096, 32, "4Kx32"),
		mk(11264, 16, "11Kx16"),
		mk(32768, 16, "32Kx16"),
		mk(40960, 16, "40Kx16"),
	}
}

// Variants implements workload.Workload.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC, workload.CCE}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload: GEMV is the 6M-repeat micro-kernel
// of Figure 7.
func (*Workload) Repeats() int { return 6_000_000 }

func dims(c workload.Case) (m, n int, err error) {
	if len(c.Dims) != 2 {
		return 0, 0, fmt.Errorf("gemv: case %q needs 2 dims", c.Name)
	}
	return c.Dims[0], c.Dims[1], nil
}

func inputs(m, n int) (*tensor.Matrix, []float64) {
	g := lcg.New(int64(m)*31 + int64(n))
	a := tensor.NewMatrix(m, n)
	x := make([]float64, n)
	g.Fill(a.Data)
	g.Fill(x)
	return a, x
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	m, n, err := dims(c)
	if err != nil {
		return nil, err
	}
	a, x := inputs(m, n)
	res := &workload.Result{
		Work:       2 * float64(m) * float64(n),
		MetricName: "GFLOPS",
	}
	switch v {
	case workload.TC:
		res.Profile = tcProfile(m, n)
		res.Output = computeMMA(a, x)
		res.InputUtil, res.OutputUtil = 1, 1.0/mmu.N
	case workload.CC:
		res.Profile = ccProfile(m, n)
		res.Output = computeMMA(a, x) // identical algorithm on the vector unit
		res.InputUtil, res.OutputUtil = 1, 1.0/mmu.N
	case workload.CCE:
		res.Profile = cceProfile(m, n)
		res.Output = computeEssential(a, x)
	case workload.Baseline:
		res.Profile = baselineProfile(m, n)
		res.Output = computeBaseline(a, x)
	default:
		return nil, fmt.Errorf("gemv: unknown variant %q", v)
	}
	return res, nil
}

// Reference implements workload.Workload: serial dot products with separate
// multiply and add.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	m, n, err := dims(c)
	if err != nil {
		return nil, err
	}
	a, x := inputs(m, n)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			acc += a.At(i, j) * x[j]
		}
		y[i] = acc
	}
	return y, nil
}

// gemvScratch pools the C accumulator plus the broadcast B panel, whose
// length depends on the case's n extent.
var gemvScratch = par.NewSizedScratch()

// computeMMA runs the TC algorithm on the panel engine: 8-row blocks of A,
// x broadcast into B, a fused k-sweep per block, first column of C extracted
// as y. The broadcast B panel depends only on x, so it is built once per call
// and reused by every row block (the tile-at-a-time version rebuilt the same
// 4×8 broadcast tile m/8 × n/4 times); the A operand is staged through the
// packed-panel cache, so repeat runs (sweeps, TC/CC variant pairs) skip the
// tall-skinny matrix re-pack entirely. Packed bytes and per-element FMA
// order are unchanged — the same ascending-k chain — so results are
// bit-identical (CUBIE_NO_PACKCACHE=1 / CUBIE_NO_PANEL=1 verify).
func computeMMA(a *tensor.Matrix, x []float64) []float64 {
	m, n := a.Rows, a.Cols
	y := make([]float64, m)
	kTiles := (n + mmu.K - 1) / mmu.K
	aLease := packcache.PackedA("gemv:A", a, kTiles)
	defer aLease.Release()
	aAll := aLease.Data
	aStride := kTiles * mmu.M * mmu.K
	buf := gemvScratch.Get(mmu.M*mmu.N + kTiles*mmu.K*mmu.N)
	defer gemvScratch.Put(buf)
	cT := buf[0 : mmu.M*mmu.N]
	bPanel := buf[mmu.M*mmu.N:]
	for t := 0; t < kTiles; t++ {
		tile := bPanel[t*mmu.K*mmu.N:]
		for k := 0; k < mmu.K; k++ {
			var xv float64
			if t*mmu.K+k < n {
				xv = x[t*mmu.K+k]
			}
			for j := 0; j < mmu.N; j++ {
				tile[k*mmu.N+j] = xv // broadcast x into every column
			}
		}
	}
	for i0, ti := 0, 0; i0 < m; i0, ti = i0+mmu.M, ti+1 {
		aPanel := aAll[ti*aStride : (ti+1)*aStride]
		for i := range cT {
			cT[i] = 0
		}
		mmu.DMMAPanel(cT, aPanel, bPanel, kTiles)
		for i := 0; i < mmu.M && i0+i < m; i++ {
			y[i0+i] = cT[i*mmu.N] // column 0 of the all-equal output tile
		}
	}
	return y
}

// computeEssential is the CC-E path: only the mathematically necessary
// multiply-adds, vectorized four lanes per row with strided partial sums —
// a different accumulation order than the MMA chain (Table 6: CC-E deviates
// from TC/CC).
func computeEssential(a *tensor.Matrix, x []float64) []float64 {
	m, n := a.Rows, a.Cols
	y := make([]float64, m)
	const lanes = 4
	for i := 0; i < m; i++ {
		var part [lanes]float64
		for j := 0; j < n; j++ {
			part[j%lanes] = mmu.FMA(a.At(i, j), x[j], part[j%lanes])
		}
		y[i] = (part[0] + part[1]) + (part[2] + part[3])
	}
	return y
}

// computeBaseline is the cuBLAS-class vector GEMV: a warp of 32 lanes per
// row with strided partial sums and a binary-tree lane reduction.
func computeBaseline(a *tensor.Matrix, x []float64) []float64 {
	m, n := a.Rows, a.Cols
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		var part [32]float64
		for j := 0; j < n; j++ {
			part[j%32] = mmu.FMA(a.At(i, j), x[j], part[j%32])
		}
		for stride := 16; stride >= 1; stride /= 2 {
			for l := 0; l < stride; l++ {
				part[l] += part[l+stride]
			}
		}
		y[i] = part[0]
	}
	return y
}

// Profiles. GEMV is memory-bound: AI = 2 FLOPs per 8-byte element of A.

func baseBytes(m, n int) float64 {
	return (float64(m)*float64(n) + float64(m) + float64(n)) * sim.BytesF64
}

func tcProfile(m, n int) sim.Profile {
	mn := float64(m) * float64(n)
	return sim.Profile{
		// Every MMA computes 8 identical output columns: 8× redundancy.
		TensorFLOPs: 16 * mn,
		DRAMBytes:   baseBytes(m, n),
		L1Bytes:     16 * mn, // fragment staging: 512 B per 32 payload elems
		ConstBytes:  float64(n) * sim.BytesF64 * float64(m) / mmu.M,
		Launches:    1,
		Overlap:     0.90,
		Eff: sim.Efficiency{
			Tensor: sim.EffModerate,
			DRAM:   0.90, // regularized block loads stream A
			L1:     0.9,
		},
	}
}

func ccProfile(m, n int) sim.Profile {
	p := tcProfile(m, n)
	p.VectorFLOPs, p.TensorFLOPs = p.TensorFLOPs, 0
	p.Overlap = 0.35 // scalar MMA emulation overlaps poorly
	p.Eff = sim.Efficiency{Vector: 0.30, DRAM: 0.90, L1: 0.9}
	return p
}

func cceProfile(m, n int) sim.Profile {
	mn := float64(m) * float64(n)
	return sim.Profile{
		VectorFLOPs: 2 * mn,
		DRAMBytes:   baseBytes(m, n),
		L1Bytes:     2 * mn,
		Launches:    1,
		Overlap:     0.70,
		Eff: sim.Efficiency{
			Vector: sim.EffModerate,
			// Without the MMA block layout the row-major loads of the
			// skinny matrix coalesce slightly worse.
			DRAM: 0.82,
			L1:   0.9,
		},
	}
}

func baselineProfile(m, n int) sim.Profile {
	mn := float64(m) * float64(n)
	return sim.Profile{
		VectorFLOPs: 2 * mn,
		DRAMBytes:   baseBytes(m, n),
		L1Bytes:     2 * mn,
		Launches:    1,
		Overlap:     0.75,
		Eff: sim.Efficiency{
			Vector: 0.60,
			DRAM:   0.70, // cuBLAS GEMV on very skinny matrices underuses BW
			L1:     0.9,
		},
	}
}
