package scan

import (
	"testing"

	"repro/internal/lcg"
)

func benchScan(b *testing.B, f func([]float64, int) []float64) {
	const s = 1024
	data := make([]float64, 64*s)
	lcg.New(1).Fill(data)
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(data, s)
	}
}

func BenchmarkMMAScan(b *testing.B)      { benchScan(b, computeMMAScan) }
func BenchmarkBlelloch(b *testing.B)     { benchScan(b, computeBlelloch) }
func BenchmarkHillisSteele(b *testing.B) { benchScan(b, computeHillisSteele) }
