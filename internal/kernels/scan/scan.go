// Package scan implements the Scan workload following Dakkak et al.
// (ICS '19), reproduced at FP64: each 64-element chunk is laid out as an
// 8×8 block X and prefix-summed with three constant-matrix MMAs —
// (1) X·U with U the upper-triangular ones matrix (row-wise prefix sums),
// (2) Lₛ·M₁ with Lₛ the strictly-lower-triangular ones matrix (previous-row
// totals), and (3) a broadcast MMA folding the previous-row totals back
// into the result. Quadrant II: constant (partial) input, full output.
//
// Table 2's "Size" parameter is the segment length; the suite scans a batch
// of 65536 independent segments per run (the paper's CUB BlockScan baseline
// operates per block, so the benchmark is a batched segmented scan).
package scan

import (
	"fmt"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Batch is the number of independent segments per run.
const Batch = 65536

// sampleElems caps the numerically-executed portion of a case.
const sampleElems = 1 << 20

// Workload is the Scan kernel.
type Workload struct{}

// New returns the Scan workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "Scan" }

// Quadrant implements workload.Workload (Figure 2, Quadrant II).
func (*Workload) Quadrant() int { return 2 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "MapReduce" }

// Cases returns the five segment sizes of Table 2.
func (*Workload) Cases() []workload.Case {
	var cs []workload.Case
	for _, s := range []int{64, 128, 256, 512, 1024} {
		cs = append(cs, workload.Case{Name: fmt.Sprint(s), Dims: []int{s}})
	}
	return cs
}

// Variants implements workload.Workload.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC, workload.CCE}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[2] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 25000 }

func segSize(c workload.Case) (int, error) {
	if len(c.Dims) != 1 || c.Dims[0] < 1 {
		return 0, fmt.Errorf("scan: case %q needs one positive dim", c.Name)
	}
	return c.Dims[0], nil
}

// sampleSegments returns how many segments are executed numerically.
func sampleSegments(s int) int {
	n := sampleElems / s
	if n > Batch {
		n = Batch
	}
	if n < 1 {
		n = 1
	}
	return n
}

func input(s int) []float64 {
	segs := sampleSegments(s)
	data := make([]float64, s*segs)
	lcg.New(int64(s)).Fill(data)
	return data
}

// The three constant matrices of the TC scan.
var (
	upperOnes   = constTri(false) // U: ones on and above the diagonal
	lowerStrict = constTri(true)  // Lₛ: ones strictly below the diagonal
	broadcast7  = constRow7()     // E₇: ones in row 7 (broadcast last column)
)

func constTri(strictLower bool) []float64 {
	m := make([]float64, 64)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if strictLower && i > j {
				m[i*8+j] = 1
			}
			if !strictLower && i <= j {
				m[i*8+j] = 1
			}
		}
	}
	return m
}

func constRow7() []float64 {
	m := make([]float64, 64)
	for j := 0; j < 8; j++ {
		m[7*8+j] = 1
	}
	return m
}

// mma8x8 multiplies two 8×8 tiles as one fused two-tile m8n8k4 k-sweep
// (k = 0..3, then k = 4..7), accumulating into c. An 8×8 row-major B operand
// is already a two-tile B panel, so it feeds the sweep as-is; A is repacked
// into the caller-provided two-tile panel buffer (len ≥ 64). The per-element
// FMA chain keeps the ascending-k order of the old two-DMMATile sequence, so
// results are bit-identical (CUBIE_NO_PANEL=1 verifies).
func mma8x8(c, a, b, aPanel []float64) {
	mmu.PackA(aPanel, a, 8, 2)
	mmu.DMMAPanel(c, aPanel, b, 2)
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	s, err := segSize(c)
	if err != nil {
		return nil, err
	}
	res := &workload.Result{
		Work:       float64(s) * Batch, // elements scanned
		MetricName: "GElem/s",
	}
	data := input(s)
	switch v {
	case workload.TC:
		res.Profile = tcProfile(s)
		res.Output = computeMMAScan(data, s)
		// One operand of every MMA is a constant 0/1 matrix: half the
		// input payload is constant structure; the output is fully used.
		res.InputUtil, res.OutputUtil = 0.5, 1
	case workload.CC:
		res.Profile = ccProfile(s)
		res.Output = computeMMAScan(data, s)
		res.InputUtil, res.OutputUtil = 0.5, 1
	case workload.CCE:
		res.Profile = cceProfile(s)
		res.Output = computeBlelloch(data, s)
	case workload.Baseline:
		res.Profile = baselineProfile(s)
		res.Output = computeHillisSteele(data, s)
	default:
		return nil, fmt.Errorf("scan: unknown variant %q", v)
	}
	return res, nil
}

// Reference implements workload.Workload: serial prefix sum per segment.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	s, err := segSize(c)
	if err != nil {
		return nil, err
	}
	data := input(s)
	out := make([]float64, len(data))
	par.ForTiles(len(data)/s, func(lo, hi int) {
		for seg := lo; seg < hi; seg++ {
			base := seg * s
			var acc float64
			for i := 0; i < s; i++ {
				acc += data[base+i]
				out[base+i] = acc
			}
		}
	})
	return out, nil
}

// scanScratch pools the per-segment staging of computeMMAScan: the 8×8
// input block X, the three stage tiles, and the A operand panel (64 each).
var scanScratch = par.NewScratch(5 * 64)

// computeMMAScan is the TC/CC algorithm: per segment, 64-element blocks are
// scanned with the three constant-matrix MMA stages; the running carry is
// folded into the first element of each block. Segments are independent, so
// the segment grid runs on the par worker pool; each segment's carry chain
// keeps its fixed block order, so results are worker-count independent.
func computeMMAScan(data []float64, s int) []float64 {
	out := make([]float64, len(data))
	par.ForTiles(len(data)/s, func(lo, hi int) {
		buf := scanScratch.Get()
		defer scanScratch.Put(buf)
		x := buf[0:64]
		m1 := buf[64:128]
		m2 := buf[128:192]
		result := buf[192:256]
		aPanel := buf[256:320]
		for seg := lo; seg < hi; seg++ {
			base := seg * s
			var carry float64
			for b0 := 0; b0 < s; b0 += 64 {
				n := min(64, s-b0)
				for i := range x {
					if i < n {
						x[i] = data[base+b0+i]
					} else {
						x[i] = 0
					}
				}
				x[0] += carry
				for i := range m1 {
					m1[i], m2[i] = 0, 0
				}
				mma8x8(m1, x, upperOnes, aPanel)    // row-wise prefix sums
				mma8x8(m2, lowerStrict, m1, aPanel) // previous-row totals (all cols)
				copy(result, m1)
				mma8x8(result, m2, broadcast7, aPanel) // fold totals: m1 + m2·E₇
				copy(out[base+b0:base+b0+n], result[:n])
				carry = result[63]
				if n < 64 {
					carry = result[n-1]
				}
			}
		}
	})
	return out
}

// computeBlelloch is the CC-E essential scan: the work-efficient up-sweep /
// down-sweep tree per segment — a different accumulation order than the MMA
// stages (Table 6).
func computeBlelloch(data []float64, s int) []float64 {
	out := make([]float64, len(data))
	// Round the working buffer up to a power of two.
	p2 := 1
	for p2 < s {
		p2 *= 2
	}
	par.ForTiles(len(data)/s, func(lo, hi int) {
		buf := make([]float64, p2) // one working buffer per worker range
		for seg := lo; seg < hi; seg++ {
			base := seg * s
			for i := range buf {
				if i < s {
					buf[i] = data[base+i]
				} else {
					buf[i] = 0
				}
			}
			for stride := 1; stride < p2; stride *= 2 {
				for i := 2*stride - 1; i < p2; i += 2 * stride {
					buf[i] += buf[i-stride]
				}
			}
			total := buf[p2-1]
			buf[p2-1] = 0
			for stride := p2 / 2; stride >= 1; stride /= 2 {
				for i := 2*stride - 1; i < p2; i += 2 * stride {
					t := buf[i-stride]
					buf[i-stride] = buf[i]
					buf[i] += t
				}
			}
			// Blelloch produces an exclusive scan; convert to inclusive.
			for i := 0; i < s-1; i++ {
				out[base+i] = buf[i+1]
			}
			out[base+s-1] = total
		}
	})
	return out
}

// computeHillisSteele is the CUB BlockScan-class baseline: log₂(s) doubling
// passes per segment.
func computeHillisSteele(data []float64, s int) []float64 {
	out := make([]float64, len(data))
	par.ForTiles(len(data)/s, func(lo, hi int) {
		cur := make([]float64, s) // double buffer per worker range
		next := make([]float64, s)
		for seg := lo; seg < hi; seg++ {
			base := seg * s
			copy(cur, data[base:base+s])
			for stride := 1; stride < s; stride *= 2 {
				for i := 0; i < s; i++ {
					if i >= stride {
						next[i] = cur[i] + cur[i-stride]
					} else {
						next[i] = cur[i]
					}
				}
				cur, next = next, cur
			}
			copy(out[base:base+s], cur)
		}
	})
	return out
}

// Profiles. Scan is a streaming kernel: 8 B read + 8 B written per element.

func blocks(s int) float64 { return float64((s+63)/64) * Batch }

func tcProfile(s int) sim.Profile {
	elems := float64(s) * Batch
	nb := blocks(s)
	return sim.Profile{
		TensorFLOPs: nb * 6 * mmu.FLOPsPerDMMA, // 3 stages × 2 MMAs per block
		DRAMBytes:   2 * elems * sim.BytesF64,
		// The constant operands come from the constant cache: near-free
		// broadcast instead of global traffic — the Quadrant II advantage.
		ConstBytes: nb * 3 * 64 * sim.BytesF64,
		L1Bytes:    nb * 3 * 512, // X in, result out, inter-stage staging
		Launches:   1,
		SyncSteps:  float64((s + 63) / 64), // per-segment carry chain
		Overlap:    0.90,
		Eff: sim.Efficiency{
			// Constant operands stay register-resident: near-peak issue.
			Tensor: 0.70,
			DRAM:   sim.EffLibrary,
			L1:     0.9,
		},
	}
}

func ccProfile(s int) sim.Profile {
	p := tcProfile(s)
	p.VectorFLOPs, p.TensorFLOPs = p.TensorFLOPs, 0
	// Without the tensor path the constant matrices are loaded as regular
	// shared-memory operands for every scalar FMA chain (Section 6.2:
	// "CUDA cores do not leverage these constant operands as much").
	p.ConstBytes = 0
	p.L1Bytes += blocks(s) * 6 * 1024
	p.Overlap = 0.30
	p.Eff = sim.Efficiency{Vector: 0.22, DRAM: sim.EffLibrary, L1: 0.9}
	return p
}

func cceProfile(s int) sim.Profile {
	elems := float64(s) * Batch
	return sim.Profile{
		// Work-efficient scan: ~2 adds per element over two tree sweeps.
		VectorFLOPs: 2 * elems,
		// Up-sweep and down-sweep each stream the data: two full passes.
		DRAMBytes: 4 * elems * sim.BytesF64,
		L1Bytes:   2 * elems * sim.BytesF64 * logish(s),
		Launches:  1,
		SyncSteps: 2 * logish(s),
		Overlap:   0.70,
		Eff: sim.Efficiency{
			Vector: 0.40,
			DRAM:   0.60, // strided tree access
			L1:     0.7,
		},
	}
}

func baselineProfile(s int) sim.Profile {
	elems := float64(s) * Batch
	return sim.Profile{
		// Hillis–Steele: log₂(s) adds per element.
		VectorFLOPs: elems * logish(s),
		DRAMBytes:   2 * elems * sim.BytesF64,
		// CUB's doubling passes run on warp shuffles; shared memory only
		// carries the per-warp aggregates.
		L1Bytes:   elems * 24,
		Launches:  1,
		SyncSteps: logish(s),
		Overlap:   0.60,
		Eff: sim.Efficiency{
			Vector: sim.EffModerate,
			DRAM:   0.62,
			L1:     0.6,
		},
	}
}

func logish(s int) float64 {
	l := 0.0
	for v := 1; v < s; v *= 2 {
		l++
	}
	return l
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
