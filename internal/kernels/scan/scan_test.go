package scan

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Scan" || w.Quadrant() != 2 {
		t.Fatal("bad metadata")
	}
	cs := w.Cases()
	if len(cs) != 5 || cs[0].Name != "64" || cs[4].Dims[0] != 1024 {
		t.Fatal("Table 2 sizes wrong")
	}
	if w.Repeats() != 25000 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestConstantMatrices(t *testing.T) {
	// U upper-triangular ones, Lₛ strictly-lower ones, E₇ row-7 ones.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			u, l, e := upperOnes[i*8+j], lowerStrict[i*8+j], broadcast7[i*8+j]
			if (i <= j) != (u == 1) || (i > j) != (l == 1) || (i == 7) != (e == 1) {
				t.Fatalf("constant matrices wrong at (%d,%d): %v %v %v", i, j, u, l, e)
			}
		}
	}
}

func TestAllVariantsNearReference(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		ref, err := w.Reference(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants() {
			res, err := w.Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) != len(ref) {
				t.Fatalf("%s/%s: length %d want %d", c.Name, v, len(res.Output), len(ref))
			}
			for i := range ref {
				// Prefix sums over long segments accumulate; compare
				// relative to the running magnitude.
				scale := math.Abs(ref[i]) + 10
				if d := math.Abs(res.Output[i]-ref[i]) / scale; d > 1e-13 {
					t.Fatalf("%s/%s: rel error %v at %d", c.Name, v, d, i)
				}
			}
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		for i := range tc.Output {
			if tc.Output[i] != cc.Output[i] {
				t.Fatalf("%s: TC and CC differ at %d", c.Name, i)
			}
		}
	}
}

func TestVariantOrdersDiverge(t *testing.T) {
	w := New()
	c := w.Representative()
	tc, _ := w.Run(c, workload.TC)
	cce, _ := w.Run(c, workload.CCE)
	bl, _ := w.Run(c, workload.Baseline)
	differs := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !differs(tc.Output, cce.Output) {
		t.Error("CC-E bit-identical to TC")
	}
	if !differs(tc.Output, bl.Output) {
		t.Error("baseline bit-identical to TC")
	}
}

func TestQuadrantIIUtilization(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	if tc.InputUtil != 0.5 || tc.OutputUtil != 1 {
		t.Errorf("Quadrant II utilization: in %v out %v, want 0.5 / 1",
			tc.InputUtil, tc.OutputUtil)
	}
}

func TestPerformanceShape(t *testing.T) {
	// Paper: TC beats CUB (1.3–1.8×); CC delivers <45% of TC; CC-E lands
	// at 0.34–0.45× of TC.
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		cce, _ := w.Run(c, workload.CCE)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tCCE := sim.Run(spec, cce.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			if sp := tBL / tTC; sp < 1.15 || sp > 2.4 {
				t.Errorf("%s/%s: TC speedup %v outside [1.15, 2.4]", c.Name, spec.Name, sp)
			}
			if r := tTC / tCC; r > 0.55 {
				t.Errorf("%s/%s: CC/TC %v should be well below TC", c.Name, spec.Name, r)
			}
			if r := tTC / tCCE; r < 0.28 || r > 0.60 {
				t.Errorf("%s/%s: CC-E/TC %v outside [0.28, 0.60]", c.Name, spec.Name, r)
			}
		}
	}
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "bad"}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
}
