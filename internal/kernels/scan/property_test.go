package scan

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lcg"
)

// TestScanLastElementIsSum: the final prefix equals the segment total.
func TestScanLastElementIsSum(t *testing.T) {
	f := func(seed int64) bool {
		g := lcg.New(seed)
		const s = 192
		data := make([]float64, s)
		g.Fill(data)
		out := computeMMAScan(data, s)
		var sum float64
		for _, v := range data {
			sum += v
		}
		return math.Abs(out[s-1]-sum) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestScanMonotoneForPositiveInput: prefixes of positive values increase.
func TestScanMonotoneForPositiveInput(t *testing.T) {
	g := lcg.New(3)
	const s = 256
	data := make([]float64, s)
	for i := range data {
		data[i] = g.Uniform() + 0.01
	}
	out := computeMMAScan(data, s)
	for i := 1; i < s; i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("prefix not increasing at %d: %v ≤ %v", i, out[i], out[i-1])
		}
	}
}

// TestScanLinearity: scan(αx) = α·scan(x).
func TestScanLinearity(t *testing.T) {
	g := lcg.New(11)
	const s, alpha = 128, 2.5
	data := make([]float64, s)
	g.Fill(data)
	scaled := make([]float64, s)
	for i := range data {
		scaled[i] = alpha * data[i]
	}
	a := computeMMAScan(data, s)
	b := computeMMAScan(scaled, s)
	for i := 0; i < s; i++ {
		if math.Abs(b[i]-alpha*a[i]) > 1e-11*(math.Abs(a[i])+1) {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

// TestScanDifferenceRecoversInput: out[i] − out[i−1] = x[i].
func TestScanDifferenceRecoversInput(t *testing.T) {
	g := lcg.New(19)
	const s = 320
	data := make([]float64, s)
	g.Fill(data)
	out := computeMMAScan(data, s)
	prev := 0.0
	for i := 0; i < s; i++ {
		if math.Abs((out[i]-prev)-data[i]) > 1e-10 {
			t.Fatalf("difference at %d = %v, want %v", i, out[i]-prev, data[i])
		}
		prev = out[i]
	}
}

// TestAllScanImplementationsAgree cross-checks the four algorithms on a
// non-power-of-64 segment length.
func TestAllScanImplementationsAgree(t *testing.T) {
	g := lcg.New(23)
	const s = 96
	data := make([]float64, 4*s)
	g.Fill(data)
	mma := computeMMAScan(data, s)
	bl := computeBlelloch(data, s)
	hs := computeHillisSteele(data, s)
	for i := range mma {
		if math.Abs(mma[i]-bl[i]) > 1e-10 || math.Abs(mma[i]-hs[i]) > 1e-10 {
			t.Fatalf("scan algorithms disagree at %d: %v %v %v", i, mma[i], bl[i], hs[i])
		}
	}
}
