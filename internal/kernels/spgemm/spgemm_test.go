package spgemm

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "SpGEMM" || w.Quadrant() != 4 {
		t.Fatal("bad metadata")
	}
	if len(w.Cases()) != 5 || w.Repeats() != 5000 {
		t.Fatal("cases / repeats wrong")
	}
}

func TestVariantsNearReference(t *testing.T) {
	w := New()
	c := w.Representative() // spmsrts: within compute budget
	ref, err := w.Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w.Variants() {
		res, err := w.Run(c, v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output == nil {
			t.Fatalf("%s: representative case should compute", v)
		}
		var maxRel float64
		for i := range ref {
			d := math.Abs(res.Output[i] - ref[i])
			scale := math.Abs(ref[i]) + 1
			if r := d / scale; r > maxRel {
				maxRel = r
			}
		}
		if maxRel > 1e-10 {
			t.Errorf("%s: max relative error %v vs reference", v, maxRel)
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	c := w.Representative()
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			t.Fatalf("TC and CC differ at %d", i)
		}
	}
}

func TestVariantOrdersDiverge(t *testing.T) {
	w := New()
	c := w.Representative()
	tc, _ := w.Run(c, workload.TC)
	cce, _ := w.Run(c, workload.CCE)
	bl, _ := w.Run(c, workload.Baseline)
	differs := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !differs(tc.Output, cce.Output) {
		t.Error("CC-E bit-identical to TC")
	}
	if !differs(tc.Output, bl.Output) {
		t.Error("baseline bit-identical to TC")
	}
}

func TestSymbolicStatsConsistent(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	s := d.stat
	if s.flopsNNZ <= 0 || s.blockProducts <= 0 || s.cBlocks <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.mmas < s.blockProducts/2 || s.mmas > s.blockProducts/2+float64(d.bsr.BlockRows) {
		t.Errorf("mma count %v inconsistent with %v products", s.mmas, s.blockProducts)
	}
	// Essential multiplies can't exceed dense block products.
	if s.flopsNNZ > s.blockProducts*64 {
		t.Errorf("flopsNNZ %v exceeds block-product capacity", s.flopsNNZ)
	}
}

func TestHalfOutputUtilization(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	if tc.OutputUtil != 0.5 {
		t.Errorf("output utilization %v, want 0.5 (Section 6.1)", tc.OutputUtil)
	}
	if tc.InputUtil <= 0 || tc.InputUtil > 1 {
		t.Errorf("input utilization %v invalid", tc.InputUtil)
	}
}

func TestLargeCaseProfileOnly(t *testing.T) {
	w := New()
	res, err := w.Run(w.Cases()[3], workload.TC) // conf5: over budget
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != nil {
		t.Error("over-budget case should not compute")
	}
	if res.Profile.TensorFLOPs <= 0 {
		t.Error("profile missing")
	}
	if _, err := w.Reference(w.Cases()[3]); err == nil {
		t.Error("over-budget reference should fail")
	}
}

func TestPerformanceShape(t *testing.T) {
	// Paper: 2.5–3.2× over cuSPARSE; CC-E ≈ TC; CC below TC.
	w := New()
	speedups := map[string][]float64{}
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		cce, _ := w.Run(c, workload.CCE)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tCCE := sim.Run(spec, cce.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			speedups[spec.Name] = append(speedups[spec.Name], tBL/tTC)
			// Per-case TC must at least tie the baseline (conf5 on the
			// 8 TB/s B200 compresses to a near-tie); averages must win.
			if tBL < tTC*0.98 {
				t.Errorf("%s/%s: TC materially slower than baseline", c.Name, spec.Name)
			}
			if r := tTC / tCC; r < 0.35 || r > 0.95 {
				t.Errorf("%s/%s: CC/TC %v outside [0.35, 0.95]", c.Name, spec.Name, r)
			}
			if r := tTC / tCCE; r < 0.7 || r > 1.25 {
				t.Errorf("%s/%s: CC-E/TC %v outside [0.7, 1.25] (should be ≈1)",
					c.Name, spec.Name, r)
			}
		}
	}
	for dev, sps := range speedups {
		var sum float64
		for _, s := range sps {
			sum += s
		}
		avg := sum / float64(len(sps))
		if avg < 1.8 || avg > 3.6 {
			t.Errorf("%s: average TC speedup %v outside [1.8, 3.6]", dev, avg)
		}
	}
}

func TestUnknownVariantAndCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Dataset: "zzz"}, workload.TC); err == nil {
		t.Error("unknown dataset accepted")
	}
}
