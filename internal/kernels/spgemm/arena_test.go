package spgemm

import (
	"math"
	"testing"

	"repro/internal/par"
)

// forceMode runs fn under the given accumulator regime and restores the
// previous one.
func forceMode(t *testing.T, m AccumMode, fn func()) {
	t.Helper()
	prev := SetAccumMode(m)
	defer SetAccumMode(prev)
	fn()
}

// TestAccumModesBitIdentical pins the arena's central contract: the dense
// stamped directory, the hash directory, and the adaptive switch produce
// bit-identical numeric-phase outputs — the directory only routes each tile
// to its arena slot, it never touches the addition order.
func TestAccumModesBitIdentical(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	for _, compute := range []struct {
		name string
		fn   func(*caseData) []float64
	}{{"mma", computeMMA}, {"essential", computeEssential}} {
		var dense, hash, adaptive []float64
		forceMode(t, AccumDense, func() { dense = compute.fn(d) })
		forceMode(t, AccumHash, func() { hash = compute.fn(d) })
		forceMode(t, AccumAdaptive, func() { adaptive = compute.fn(d) })
		if len(dense) != len(hash) || len(dense) != len(adaptive) {
			t.Fatalf("%s: output lengths differ: %d/%d/%d",
				compute.name, len(dense), len(hash), len(adaptive))
		}
		for i := range dense {
			if math.Float64bits(dense[i]) != math.Float64bits(hash[i]) {
				t.Fatalf("%s: dense and hash outputs differ bitwise at %d: %v vs %v",
					compute.name, i, dense[i], hash[i])
			}
			if math.Float64bits(dense[i]) != math.Float64bits(adaptive[i]) {
				t.Fatalf("%s: dense and adaptive outputs differ bitwise at %d: %v vs %v",
					compute.name, i, dense[i], adaptive[i])
			}
		}
	}
}

// TestAccumModesBitIdenticalParallel crosses the regime switch with the
// worker-count axis: forced-dense at 8 workers must equal forced-hash at 1
// worker bitwise.
func TestAccumModesBitIdenticalParallel(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	var serialHash, parallelDense []float64
	forceMode(t, AccumHash, func() {
		prev := par.SetWorkers(1)
		defer par.SetWorkers(prev)
		serialHash = computeMMA(d)
	})
	forceMode(t, AccumDense, func() {
		prev := par.SetWorkers(8)
		defer par.SetWorkers(prev)
		parallelDense = computeMMA(d)
	})
	for i := range serialHash {
		if math.Float64bits(serialHash[i]) != math.Float64bits(parallelDense[i]) {
			t.Fatalf("outputs differ bitwise at %d: %v vs %v",
				i, serialHash[i], parallelDense[i])
		}
	}
}

// allocsBudget is the steady-state allocation ceiling per numeric-phase
// call: the output vector plus ForTiles bookkeeping, never anything
// per-block-row. A sync.Pool can be drained by a GC between runs, so the
// budget leaves room for a handful of arena re-allocations — the pre-arena
// implementation sat at ~45k per call, three orders of magnitude above it.
const allocsBudget = 64

// TestComputeMMASteadyStateAllocs is the zero-alloc-per-row contract of the
// arena path: once pools are warm, computeMMA allocates only its output.
func TestComputeMMASteadyStateAllocs(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []AccumMode{AccumAdaptive, AccumDense, AccumHash} {
		forceMode(t, mode, func() {
			computeMMA(d) // warm the scratch pools
			if n := testing.AllocsPerRun(5, func() { computeMMA(d) }); n > allocsBudget {
				t.Errorf("mode %d: %v allocs/run, want ≤ %d (zero per block-row)",
					mode, n, allocsBudget)
			}
		})
	}
}

// TestEssentialAndScalarSteadyStateAllocs extends the contract to the CC-E
// sweep and the pooled scalar (Reference / baseline-hash) sweeps.
func TestEssentialAndScalarSteadyStateAllocs(t *testing.T) {
	w := New()
	c := w.Representative()
	d, err := w.data(c)
	if err != nil {
		t.Fatal(err)
	}
	computeEssential(d)
	if n := testing.AllocsPerRun(5, func() { computeEssential(d) }); n > allocsBudget {
		t.Errorf("computeEssential: %v allocs/run, want ≤ %d", n, allocsBudget)
	}
	computeBaseline(d)
	if n := testing.AllocsPerRun(5, func() { computeBaseline(d) }); n > allocsBudget {
		t.Errorf("computeBaseline: %v allocs/run, want ≤ %d", n, allocsBudget)
	}
	if _, err := w.Reference(c); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(5, func() { w.Reference(c) }); n > allocsBudget {
		t.Errorf("Reference: %v allocs/run, want ≤ %d", n, allocsBudget)
	}
}

// TestBlockAccumRegimes unit-tests the arena directory in both regimes:
// claim-on-first-touch, slot stability within a row, epoch invalidation
// across rows, and zeroed tiles on claim.
func TestBlockAccumRegimes(t *testing.T) {
	for _, dense := range []bool{true, false} {
		var a blockAccum
		mode := AccumHash
		if dense {
			mode = AccumDense
		}
		const blockCols = 64
		// Row 1: touch columns out of order, write marks.
		a.beginRow(8, blockCols, mode)
		if a.dense != dense {
			t.Fatalf("dense=%v: regime not forced", dense)
		}
		for _, j := range []int32{7, 3, 7, 63, 0, 3} {
			tl := a.tile(j)
			tl[0]++
		}
		if got := len(a.cols); got != 4 {
			t.Fatalf("dense=%v: %d distinct tiles, want 4", dense, got)
		}
		// Revisits accumulate in place.
		if tl := a.tile(7); tl[0] != 2 {
			t.Fatalf("dense=%v: tile 7 count %v, want 2", dense, tl[0])
		}
		// Row 2: every previous entry is invalid; tiles come back zeroed.
		a.beginRow(8, blockCols, mode)
		if len(a.cols) != 0 {
			t.Fatalf("dense=%v: cols not reset", dense)
		}
		for _, j := range []int32{7, 3} {
			if tl := a.tile(j); tl[0] != 0 {
				t.Fatalf("dense=%v: stale tile %d content %v", dense, j, tl[0])
			}
		}
	}
}

// TestBlockAccumAdaptiveSwitch checks the fill-ratio decision: sparse rows
// hash, high-fill rows go dense.
func TestBlockAccumAdaptiveSwitch(t *testing.T) {
	var a blockAccum
	a.beginRow(4, 1024, AccumAdaptive) // fill 4/1024 < 1/8
	if a.dense {
		t.Error("sparse row chose the dense directory")
	}
	a.beginRow(512, 1024, AccumAdaptive) // fill 1/2 ≥ 1/8
	if !a.dense {
		t.Error("high-fill row chose the hash directory")
	}
}

// TestBlockAccumEpochWrap forces the epoch counter to its wrap point and
// checks stale entries cannot leak through a reissued epoch.
func TestBlockAccumEpochWrap(t *testing.T) {
	var a blockAccum
	a.epoch = 1<<31 - 2
	a.beginRow(4, 16, AccumDense)
	a.tile(5)[0] = 99
	a.beginRow(4, 16, AccumDense) // triggers the wrap reset
	if a.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", a.epoch)
	}
	if tl := a.tile(5); tl[0] != 0 {
		t.Fatalf("stale tile survived the epoch wrap: %v", tl[0])
	}
}

// TestSetAccumMode checks the knob round-trips and reports the previous
// mode, mirroring mmu.SetPanelEnabled.
func TestSetAccumMode(t *testing.T) {
	orig := CurrentAccumMode()
	defer SetAccumMode(orig)
	if prev := SetAccumMode(AccumDense); prev != orig {
		t.Fatalf("SetAccumMode returned %d, want %d", prev, orig)
	}
	if CurrentAccumMode() != AccumDense {
		t.Fatal("mode not applied")
	}
	if prev := SetAccumMode(AccumHash); prev != AccumDense {
		t.Fatalf("SetAccumMode returned %d, want AccumDense", prev)
	}
}

// TestSortInt32 pins both the insertion-sort and pdqsort paths.
func TestSortInt32(t *testing.T) {
	small := []int32{5, 1, 4, 2, 3}
	sortInt32(small)
	for i := range small {
		if small[i] != int32(i+1) {
			t.Fatalf("small sort: %v", small)
		}
	}
	big := make([]int32, 100)
	for i := range big {
		big[i] = int32(99 - i)
	}
	sortInt32(big)
	for i := range big {
		if big[i] != int32(i) {
			t.Fatalf("big sort broken at %d: %v", i, big[i])
		}
	}
}
