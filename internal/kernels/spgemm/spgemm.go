// Package spgemm implements the SpGEMM workload following AmgT (Lu et al.,
// SC '24): both operands are partitioned into 4×4 mBSR blocks, and the FP64
// m8n8k4 MMA executes two independent 4×4×4 block products per instruction
// (A blocks stacked vertically, B blocks side by side), with only the two
// diagonal 4×4 quadrants of the 8×8 output consumed — Quadrant IV, with the
// paper noting SpGEMM "leverages half of the 8-by-8 output tiles".
package spgemm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mmu"
	"repro/internal/packcache"
	"repro/internal/par"
	"repro/internal/prestage"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// computeBudget caps the scalar multiply count of cases executed for real.
const computeBudget = 1 << 23

// Workload is the SpGEMM kernel, computing C = A·A for the Table 4 matrices.
type Workload struct {
	mu    sync.Mutex
	cache map[string]*caseData
}

type caseData struct {
	name string
	mat  *sparse.CSR
	bsr  *sparse.MBSR
	stat symbolicStats
	// pairOff[bi] is the cumulative paired-product MMA count of block rows
	// before bi (length BlockRows+1): block row bi's prestaged operand tiles
	// start at MMA index pairOff[bi] in the pair slab built by pairSlab.
	pairOff []int32
}

// symbolicStats are the structure-only counts behind the profiles.
type symbolicStats struct {
	flopsNNZ      float64 // scalar multiplies of the essential computation
	blockProducts float64 // 4×4×4 block products
	mmas          float64 // MMAs after pairing two products per instruction
	cBlocks       float64 // distinct 4×4 blocks in the output
}

// New returns the SpGEMM workload.
func New() *Workload { return &Workload{cache: map[string]*caseData{}} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "SpGEMM" }

// Quadrant implements workload.Workload (Figure 2, Quadrant IV).
func (*Workload) Quadrant() int { return 4 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Sparse linear algebra" }

// Cases returns the five Table 4 matrices.
func (*Workload) Cases() []workload.Case {
	var cs []workload.Case
	for _, d := range sparse.Table4() {
		cs = append(cs, workload.Case{Name: d.Name, Dataset: d.Name})
	}
	return cs
}

// Variants implements workload.Workload.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC, workload.CCE}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 5000 }

func (w *Workload) data(c workload.Case) (*caseData, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.cache[c.Dataset]; ok {
		return d, nil
	}
	m, err := sparse.SynthesizeShared(c.Dataset)
	if err != nil {
		return nil, err
	}
	d := &caseData{name: c.Dataset, mat: m, bsr: sparse.ToMBSR(m)}
	d.stat = symbolic(d)
	b := d.bsr
	d.pairOff = make([]int32, b.BlockRows+1)
	total := 0
	for bi := 0; bi < b.BlockRows; bi++ {
		d.pairOff[bi] = int32(total)
		total += (rowProducts(b, bi) + 1) / 2
	}
	d.pairOff[b.BlockRows] = int32(total)
	w.cache[c.Dataset] = d
	return d, nil
}

// symbolicGrain is the fixed chunk size of the parallel symbolic pass;
// chunk boundaries are worker-count independent, so the accumulated stats
// are reproducible for any pool size (par.ReduceTiles contract).
const symbolicGrain = 512

// symbolic runs the structure-only pass: essential multiply count, block
// product count, MMA count under pairing, and output block count. Both
// sweeps fan out on the par engine with per-worker partial stats merged at
// join — the counters are integer-valued, so the merge is exact.
func symbolic(d *caseData) symbolicStats {
	m, b := d.mat, d.bsr
	s := par.ReduceTiles(m.Rows, symbolicGrain,
		func(lo, hi int, acc *symbolicStats) {
			for i := lo; i < hi; i++ {
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					acc.flopsNNZ += float64(m.RowNNZ(int(m.ColIdx[k])))
				}
			}
		},
		func(dst, src *symbolicStats) { dst.flopsNNZ += src.flopsNNZ })
	blk := par.ReduceTiles(b.BlockRows, symbolicGrain,
		func(lo, hi int, acc *symbolicStats) {
			// Epoch-stamped block-column directory, pooled through
			// par.TypedScratch: element 0 carries the buffer's epoch across
			// pool round-trips (fresh TypedScratch buffers are zeroed, recycled
			// ones keep their contents), so a stamp is valid iff it equals the
			// current row's epoch and neither chunks nor rows pay the
			// O(BlockCols) wipe the pre-arena version did — it only happens on
			// the (2³¹-row) epoch wrap.
			buf := symStampScratch.Get(b.BlockCols + 1)
			defer symStampScratch.Put(buf)
			epoch, stamp := buf[0], buf[1:]
			for bi := lo; bi < hi; bi++ {
				if epoch == math.MaxInt32 {
					clear(stamp)
					epoch = 0
				}
				epoch++
				var rowProducts, rowCBlocks float64
				for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
					k := int(b.Blocks[p].BlockCol)
					n := float64(b.RowPtr[k+1] - b.RowPtr[k])
					rowProducts += n
					for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
						j := b.Blocks[q].BlockCol
						if stamp[j] != epoch {
							stamp[j] = epoch
							rowCBlocks++
						}
					}
				}
				acc.blockProducts += rowProducts
				acc.mmas += float64(int(rowProducts+1) / 2)
				acc.cBlocks += rowCBlocks
			}
			buf[0] = epoch
		},
		func(dst, src *symbolicStats) {
			dst.blockProducts += src.blockProducts
			dst.mmas += src.mmas
			dst.cBlocks += src.cBlocks
		})
	s.blockProducts, s.mmas, s.cBlocks = blk.blockProducts, blk.mmas, blk.cBlocks
	return s
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	res := &workload.Result{Work: 2 * d.stat.flopsNNZ, MetricName: "GFLOPS"}
	switch v {
	case workload.TC, workload.CC:
		if v == workload.TC {
			res.Profile = tcProfile(d)
		} else {
			res.Profile = ccProfile(d)
		}
		// Two independent products per MMA: half the output tile carries
		// payload; inputs are dense 4×4 blocks at the mBSR fill ratio.
		res.InputUtil = d.bsr.FillRatio(d.mat.NNZ())
		res.OutputUtil = 0.5
	case workload.CCE:
		res.Profile = cceProfile(d)
	case workload.Baseline:
		res.Profile = baselineProfile(d)
	default:
		return nil, fmt.Errorf("spgemm: unknown variant %q", v)
	}
	if d.stat.flopsNNZ <= computeBudget {
		switch v {
		case workload.TC, workload.CC:
			res.Output = computeMMA(d)
		case workload.CCE:
			res.Output = computeEssential(d)
		case workload.Baseline:
			res.Output = computeBaseline(d)
		}
	}
	return res, nil
}

// Reference implements workload.Workload: serial row-wise CSR SpGEMM with a
// dense accumulator, separate multiply and add, ascending traversal. The
// canonical output is the vector of C row sums accumulated in ascending
// column order.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	if d.stat.flopsNNZ > computeBudget {
		return nil, fmt.Errorf("spgemm: case %q exceeds the compute budget", c.Name)
	}
	m := d.mat
	out := make([]float64, m.Rows)
	par.ForTiles(m.Rows, func(lo, hi int) {
		acc := scalarAccScratch.Get(m.Cols)
		clear(acc) // pooled contents are unspecified; rows restore zeros
		touched := scalarTouchedScratch.Get(0)
		defer func() {
			scalarAccScratch.Put(acc)
			scalarTouchedScratch.Put(touched)
		}()
		for i := lo; i < hi; i++ {
			touched = growTouched(touched, scalarRowUpperBound(m, i))
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				a := m.Vals[k]
				kr := int(m.ColIdx[k])
				for q := m.RowPtr[kr]; q < m.RowPtr[kr+1]; q++ {
					j := m.ColIdx[q]
					if acc[j] == 0 {
						touched = append(touched, j)
					}
					acc[j] += a * m.Vals[q]
				}
			}
			sortInt32(touched)
			var sum float64
			for _, j := range touched {
				sum += acc[j]
				acc[j] = 0
			}
			out[i] = sum
		}
	})
	return out, nil
}

// Pools of the scalar (element-wise CSR) sweeps: the dense element
// accumulator and the touched/sort-column list that Reference and
// computeBaseline previously allocated per tile range, plus the symbolic
// pass's epoch-stamped directory (one per ReduceTiles chunk before pooling,
// one full wipe per chunk before the epoch arena).
var (
	scalarAccScratch     = par.NewSizedScratch()
	scalarTouchedScratch = par.NewTypedScratch[int32]()
	symStampScratch      = par.NewTypedScratch[int32]()
)

// growTouched returns the touched list emptied, with capacity grown once to
// the row's upper bound so no append inside the row can reallocate (the old
// fixed cap-256 guess reallocated mid-row on wide rows). The undersized
// buffer goes back to the pool for smaller consumers.
func growTouched(touched []int32, ub int) []int32 {
	if cap(touched) < ub {
		scalarTouchedScratch.Put(touched)
		touched = scalarTouchedScratch.Get(ub)
	}
	return touched[:0]
}

// scalarRowUpperBound bounds the distinct output columns of element row i:
// the row's scalar product count, capped at the column dimension.
func scalarRowUpperBound(m *sparse.CSR, i int) int {
	ub := 0
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		ub += m.RowNNZ(int(m.ColIdx[k]))
	}
	if ub > m.Cols {
		ub = m.Cols
	}
	return ub
}

// pendingProduct is one queued 4×4×4 block product.
type pendingProduct struct {
	a, b *sparse.MBSRBlock
	cRow int // 0 or 1: which stacked A half
	jDst int32
}

// spgemmBatchDefault is the default number of paired-product MMAs staged per
// DMMABatch call: enough to amortize the batch's single metrics update
// without growing the per-worker staging buffer past L1. `cubie tune` can
// override it through SetBatch for hosts where a different chunk wins.
const spgemmBatchDefault = 16

var batchSize atomic.Int32

func init() { batchSize.Store(spgemmBatchDefault) }

// SetBatch sets the paired-product MMA batch size (clamped to ≥ 1) and
// returns the previous value. The batch only chunks the per-row queue — the
// queue-order accumulation sequence is unchanged, so every batch size yields
// bit-identical output (pinned by TestComputeMMABatchSizesBitIdentical).
func SetBatch(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	return int(batchSize.Swap(int32(n)))
}

// Batch reports the active paired-product MMA batch size.
func Batch() int { return int(batchSize.Load()) }

// pairTile is the per-MMA float count of each prestaged operand side: the
// stacked A halves form one M×K tile, the side-by-side B halves one K×N tile,
// and M·K == K·N == 32, so one offset scale addresses both slab halves.
const pairTile = mmu.M * mmu.K

// rowProducts counts the 4×4×4 block products of block-row bi — the
// grow-once upper bound on the row's queue length and distinct C blocks.
func rowProducts(b *sparse.MBSR, bi int) int {
	n := 0
	for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
		k := int(b.Blocks[p].BlockCol)
		n += b.RowPtr[k+1] - b.RowPtr[k]
	}
	return n
}

// pairSlab builds (or fetches from packcache) the prestaged operand slab of
// the whole paired-product sweep: for every MMA of every block row, the
// stacked A halves and the transposed side-by-side B halves, exactly the
// bytes the per-call chunk staging packs from the mBSR block values. The slab
// is split in two contiguous runs — MMA i's A tile at A-half offset
// i·pairTile, its B tile at the same offset in the B half — so the hot loop
// feeds mmu.DMMABatch straight slab slices with no staging copies at all.
// The content hash covers the mBSR structure (RowPtr, block columns) and
// every block value, so a mutated dataset is repacked, never served stale.
func (d *caseData) pairSlab() packcache.Lease {
	b := d.bsr
	total := int(d.pairOff[b.BlockRows])
	h := packcache.HashOffset
	for _, p := range b.RowPtr {
		h = packcache.HashMix(h, uint64(uint32(p)))
	}
	for i := range b.Blocks {
		blk := &b.Blocks[i]
		h = packcache.HashMix(h, uint64(uint32(blk.BlockCol)))
		for _, v := range blk.Vals {
			h = packcache.HashMix(h, math.Float64bits(v))
		}
	}
	size := total * 2 * pairTile
	return packcache.PackedSlab(d.name, 'P', b.Rows, b.Cols, total, h, size, func(dst []float64) {
		clear(dst) // pooled slabs are dirty; odd final pairs keep a zero half
		slabA, slabB := dst[:total*pairTile], dst[total*pairTile:]
		for bi := 0; bi < b.BlockRows; bi++ {
			mma := int(d.pairOff[bi])
			idx := 0
			for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
				ab := &b.Blocks[p]
				k := int(ab.BlockCol)
				for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
					bb := &b.Blocks[q]
					off := (mma + idx/2) * pairTile
					half := idx % 2
					// A halves stack vertically: a straight 16-float move.
					*(*[16]float64)(slabA[off+half*16:]) = ab.Vals
					// B halves sit side by side: four 4-wide strided moves.
					tensor.Pack4Stride(slabB[off+half*4:], mmu.N,
						bb.Vals[:], sparse.BlockSize, sparse.BlockSize)
					idx++
				}
			}
		}
		prestage.CountSlab(size * 8)
	})
}

// computeMMA executes the paired-block SpGEMM on the MMA semantics: two
// queued products per m8n8k4 instruction, diagonal quadrants extracted and
// added into the block accumulators. Returns C row sums (ascending order).
//
// Block rows own disjoint output rows (blockAccum.flush writes rows
// [4·bi, 4·bi+4) only), so the block-row sweep runs on the par worker pool
// with the per-row accumulation order unchanged. All per-row state — the
// product queue, the tile arena, the MMA staging panels — lives in one
// pooled numericScratch per tile range, so the steady-state sweep performs
// no heap allocation (see arena.go and the AllocsPerRun contracts).
//
// With prestaging active (the default) the static operand tiles come out of
// the shared pair slab built by pairSlab: the hot loop clears only the C
// panel and calls DMMABatch on slab slices directly. CUBIE_NO_PRESTAGE=1
// falls back to the per-chunk copy staging, which packs the identical bytes,
// so both modes are bit-identical (determinism_test.go pins this).
func computeMMA(d *caseData) []float64 {
	b := d.bsr
	mode := CurrentAccumMode()
	batch := Batch()
	out := make([]float64, d.mat.Rows)
	pre := prestage.Enabled()
	var lease packcache.Lease
	var slabA, slabB []float64
	if pre {
		lease = d.pairSlab()
		half := int(d.pairOff[b.BlockRows]) * pairTile
		slabA, slabB = lease.Data[:half], lease.Data[half:]
	}
	par.ForTiles(b.BlockRows, func(lo, hi int) {
		ns := getNumericScratch()
		defer putNumericScratch(ns)
		ns.ensurePanels(batch)
		aPanel := ns.panels[0 : batch*mmu.M*mmu.K]
		bPanel := ns.panels[batch*mmu.M*mmu.K : batch*(mmu.M*mmu.K+mmu.K*mmu.N)]
		cPanel := ns.panels[batch*(mmu.M*mmu.K+mmu.K*mmu.N) : batch*(mmu.M*mmu.K+mmu.K*mmu.N+mmu.M*mmu.N)]
		denseRows, hashRows := uint64(0), uint64(0)
		for bi := lo; bi < hi; bi++ {
			products := rowProducts(b, bi)
			ns.growQueue(products)
			ns.acc.beginRow(products, b.BlockCols, mode)
			if ns.acc.dense {
				denseRows++
			} else {
				hashRows++
			}
			queue := ns.queue
			acc := &ns.acc
			for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
				ab := &b.Blocks[p]
				k := int(ab.BlockCol)
				for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
					bb := &b.Blocks[q]
					queue = append(queue, pendingProduct{a: ab, b: bb, jDst: bb.BlockCol})
				}
			}
			// The pair queue runs in chunks of batch independent MMAs: source
			// the chunk's operands (from the prestaged slab, or by staging the
			// chunk when prestaging is off), execute it with one DMMABatch call
			// (one metrics update, bounds-check-free inner loops), then scatter
			// the diagonal quadrants in the original queue order so every block
			// accumulator sees the exact tile-at-a-time addition sequence.
			mmaBase := int(d.pairOff[bi])
			for s := 0; s < len(queue); s += 2 * batch {
				n := (min(s+2*batch, len(queue)) - s + 1) / 2
				clear(cPanel[:n*mmu.M*mmu.N])
				if pre {
					off := (mmaBase + s/2) * pairTile
					mmu.DMMABatch(cPanel[:n*mmu.M*mmu.N], slabA[off:], slabB[off:], n)
				} else {
					clear(aPanel[:n*mmu.M*mmu.K])
					clear(bPanel[:n*mmu.K*mmu.N])
					for i := 0; i < n; i++ {
						base := s + 2*i
						pair := queue[base:min(base+2, len(queue))]
						aT := aPanel[i*mmu.M*mmu.K:]
						bT := bPanel[i*mmu.K*mmu.N:]
						for h, pr := range pair {
							for r := 0; r < sparse.BlockSize; r++ {
								copy(aT[(h*4+r)*mmu.K:(h*4+r)*mmu.K+4], pr.a.Vals[r*4:r*4+4])
								copy(bT[r*mmu.N+h*4:r*mmu.N+h*4+4], pr.b.Vals[r*4:r*4+4])
							}
						}
					}
					mmu.DMMABatch(cPanel[:n*mmu.M*mmu.N], aPanel, bPanel, n)
				}
				for i := 0; i < n; i++ {
					base := s + 2*i
					pair := queue[base:min(base+2, len(queue))]
					cT := cPanel[i*mmu.M*mmu.N:]
					for h, pr := range pair {
						t := acc.tile(pr.jDst)
						for r := 0; r < 4; r++ {
							for cc := 0; cc < 4; cc++ {
								t[r*4+cc] += cT[(h*4+r)*mmu.N+h*4+cc]
							}
						}
					}
				}
			}
			ns.queue = queue
			acc.flush(d, bi, out)
		}
		metDenseRows.Add(denseRows)
		metHashRows.Add(hashRows)
	})
	if pre {
		lease.Release()
	}
	return out
}

// CalibrationRunner returns a closure executing one numeric-phase MMA sweep
// over the named dataset — the unit of work `cubie tune` times when sweeping
// SetBatch candidates. The data (and prestaged slab) are built before the
// closure is returned, so repeated invocations measure only the sweep.
func (w *Workload) CalibrationRunner(dataset string) (func(), error) {
	d, err := w.data(workload.Case{Name: dataset, Dataset: dataset})
	if err != nil {
		return nil, err
	}
	return func() { computeMMA(d) }, nil
}

// computeEssential is the CC-E path: the same mBSR traversal but each block
// product executed as essential scalar FMAs chained directly into the block
// accumulator — a different rounding order than the MMA's
// compute-then-add (Table 6).
func computeEssential(d *caseData) []float64 {
	b := d.bsr
	mode := CurrentAccumMode()
	out := make([]float64, d.mat.Rows)
	par.ForTiles(b.BlockRows, func(lo, hi int) {
		ns := getNumericScratch()
		defer putNumericScratch(ns)
		denseRows, hashRows := uint64(0), uint64(0)
		for bi := lo; bi < hi; bi++ {
			acc := &ns.acc
			acc.beginRow(rowProducts(b, bi), b.BlockCols, mode)
			if acc.dense {
				denseRows++
			} else {
				hashRows++
			}
			for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
				ab := &b.Blocks[p]
				k := int(ab.BlockCol)
				for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
					bb := &b.Blocks[q]
					t := acc.tile(bb.BlockCol)
					for r := 0; r < 4; r++ {
						for cc := 0; cc < 4; cc++ {
							v := t[r*4+cc]
							for kk := 0; kk < 4; kk++ {
								v = mmu.FMA(ab.Vals[r*4+kk], bb.Vals[kk*4+cc], v)
							}
							t[r*4+cc] = v
						}
					}
				}
			}
			acc.flush(d, bi, out)
		}
		metDenseRows.Add(denseRows)
		metHashRows.Add(hashRows)
	})
	return out
}

// computeBaseline is the cuSPARSE-class hash SpGEMM: row-wise with a dense
// accumulator but traversing the row's products in reverse order (hash
// insertion order differs from the ascending merge), FMA-contracted.
func computeBaseline(d *caseData) []float64 {
	m := d.mat
	out := make([]float64, m.Rows)
	par.ForTiles(m.Rows, func(lo, hi int) {
		acc := scalarAccScratch.Get(m.Cols)
		clear(acc) // pooled contents are unspecified; rows restore zeros
		touched := scalarTouchedScratch.Get(0)
		defer func() {
			scalarAccScratch.Put(acc)
			scalarTouchedScratch.Put(touched)
		}()
		for i := lo; i < hi; i++ {
			touched = growTouched(touched, scalarRowUpperBound(m, i))
			for k := m.RowPtr[i+1] - 1; k >= m.RowPtr[i]; k-- {
				a := m.Vals[k]
				kr := int(m.ColIdx[k])
				for q := m.RowPtr[kr+1] - 1; q >= m.RowPtr[kr]; q-- {
					j := m.ColIdx[q]
					if acc[j] == 0 {
						touched = append(touched, j)
					}
					acc[j] = mmu.FMA(a, m.Vals[q], acc[j])
				}
			}
			sortInt32(touched)
			var sum float64
			for _, j := range touched {
				sum += acc[j]
				acc[j] = 0
			}
			out[i] = sum
		}
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Profiles.

const blockBytes = sparse.BlockSize*sparse.BlockSize*sim.BytesF64 + sim.BytesIdx

// l2HitRate is the fraction of B-block re-reads served by L2 for the
// blocked (mBSR) traversal: every A block in a block row walks the same B
// block rows, so re-reads hit on chip.
const l2HitRate = 0.82

func tcProfile(d *caseData) sim.Profile {
	s := d.stat
	return sim.Profile{
		TensorFLOPs: s.mmas * mmu.FLOPsPerDMMA,
		IntOps:      s.blockProducts * 8, // pairing, indexing, accumulation control
		DRAMBytes: s.blockProducts*blockBytes*(1-l2HitRate) +
			s.cBlocks*blockBytes*2, // C accumulate + write back
		L2Bytes: s.blockProducts * blockBytes * l2HitRate,
		// B fragment + quadrant extraction per MMA; the A fragment stays
		// resident across the B sweep of its block row.
		L1Bytes:  s.mmas * 1024,
		Launches: 2, // symbolic + numeric phases
		Overlap:  0.85,
		Eff: sim.Efficiency{
			Tensor: sim.EffModerate,
			DRAM:   0.80,
			L2:     0.60,
			L1:     0.85,
		},
	}
}

func ccProfile(d *caseData) sim.Profile {
	p := tcProfile(d)
	p.VectorFLOPs, p.TensorFLOPs = p.TensorFLOPs, 0
	p.Overlap = 0.35
	p.Eff = sim.Efficiency{Vector: 0.30, DRAM: 0.80, L2: 0.60, L1: 0.85}
	return p
}

func cceProfile(d *caseData) sim.Profile {
	s := d.stat
	return sim.Profile{
		// Essential: 128 FLOPs per 4×4×4 block product, no pair padding.
		VectorFLOPs: s.blockProducts * 128,
		IntOps:      s.blockProducts * 8,
		DRAMBytes: s.blockProducts*blockBytes*(1-l2HitRate) +
			s.cBlocks*blockBytes*2,
		L2Bytes:  s.blockProducts * blockBytes * l2HitRate,
		L1Bytes:  s.blockProducts * 384,
		Launches: 2,
		Overlap:  0.60,
		Eff: sim.Efficiency{
			Vector: 0.35,
			DRAM:   0.80,
			L2:     0.60,
			L1:     0.85,
		},
	}
}

func baselineProfile(d *caseData) sim.Profile {
	s := d.stat
	nnz := float64(d.mat.NNZ())
	return sim.Profile{
		VectorFLOPs: 2 * s.flopsNNZ,
		IntOps:      3 * s.flopsNNZ, // hashing and insertion control
		// Row-wise hash SpGEMM re-reads B rows element-wise: most traffic
		// hits L2, the DRAM share is the cold footprint plus C.
		DRAMBytes: nnz*(sim.BytesF64+sim.BytesIdx)*2 +
			s.flopsNNZ*(sim.BytesF64+sim.BytesIdx)*0.12 +
			s.cBlocks*blockBytes,
		L2Bytes:  s.flopsNNZ * (sim.BytesF64 + sim.BytesIdx) * 0.65,
		L1Bytes:  s.flopsNNZ * 24, // hash-table probes
		Launches: 3,               // count, fill, compact
		Overlap:  0.55,
		Eff: sim.Efficiency{
			Vector: 0.35,
			DRAM:   0.45, // irregular hash traffic
			L2:     0.50,
			L1:     0.60,
		},
	}
}
