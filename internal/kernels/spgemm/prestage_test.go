package spgemm

import (
	"math"
	"testing"

	"repro/internal/packcache"
	"repro/internal/prestage"
)

// TestComputeMMAPrestageBitIdentical pins the tentpole contract on the
// SpGEMM side: executing MMAs straight off the prestaged pair slab is
// bitwise indistinguishable from the per-chunk copy staging, across the
// prestage × packcache knob grid (the slab rides the packcache, so both
// routes through it must match too).
func TestComputeMMAPrestageBitIdentical(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	prevPre := prestage.SetEnabled(false)
	want := computeMMA(d)
	prestage.SetEnabled(prevPre)
	for _, cache := range []bool{true, false} {
		prevCache := packcache.SetEnabled(cache)
		packcache.Flush()
		prestage.SetEnabled(true)
		got := computeMMA(d)
		prestage.SetEnabled(prevPre)
		packcache.SetEnabled(prevCache)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("cache=%v: differs bitwise at %d: %v vs %v",
					cache, i, got[i], want[i])
			}
		}
	}
}

// TestComputeMMABatchSizesBitIdentical pins SetBatch as performance-only:
// the batch merely chunks the per-row pair queue, never reordering the
// queue-order accumulation, so every size matches the default bitwise —
// with and without the prestaged slab.
func TestComputeMMABatchSizesBitIdentical(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	base := computeMMA(d)
	for _, pre := range []bool{true, false} {
		prevPre := prestage.SetEnabled(pre)
		for _, batch := range []int{1, 2, 7, 16, 64} {
			prevBatch := SetBatch(batch)
			got := computeMMA(d)
			SetBatch(prevBatch)
			for i := range base {
				if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
					t.Fatalf("prestage=%v batch=%d: differs bitwise at %d: %v vs %v",
						pre, batch, i, got[i], base[i])
				}
			}
		}
		prestage.SetEnabled(prevPre)
	}
}

// TestSetBatch checks the knob round-trips, reports the previous value, and
// clamps below 1.
func TestSetBatch(t *testing.T) {
	orig := Batch()
	defer SetBatch(orig)
	if prev := SetBatch(32); prev != orig {
		t.Fatalf("SetBatch returned %d, want %d", prev, orig)
	}
	if Batch() != 32 {
		t.Fatal("batch not applied")
	}
	SetBatch(0)
	if Batch() != 1 {
		t.Fatalf("batch clamped to %d, want 1", Batch())
	}
}

// TestPairOffMatchesQueue pins the pair-slab index table against the actual
// queue lengths: pairOff[bi+1]-pairOff[bi] must equal ceil(rowProducts/2)
// for every block row — the invariant that lets the hot loop address the
// shared slab by (pairOff[bi] + s/2) with no per-row bookkeeping.
func TestPairOffMatchesQueue(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	b := d.bsr
	if len(d.pairOff) != b.BlockRows+1 {
		t.Fatalf("len(pairOff) = %d, want %d", len(d.pairOff), b.BlockRows+1)
	}
	for bi := 0; bi < b.BlockRows; bi++ {
		want := (rowProducts(b, bi) + 1) / 2
		if got := int(d.pairOff[bi+1] - d.pairOff[bi]); got != want {
			t.Fatalf("block row %d: pairOff span %d, want %d", bi, got, want)
		}
	}
}

// TestPairSlabMatchesStaging cross-checks the prestaged slab bytes against
// the per-call staging loop's packing rules for a few MMAs: A halves are the
// straight 16-float flatten of the A block, B halves the 4×4 block packed at
// stride 8 with a half-column offset.
func TestPairSlabMatchesStaging(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	b := d.bsr
	lease := d.pairSlab()
	defer lease.Release()
	total := int(d.pairOff[b.BlockRows])
	slabA, slabB := lease.Data[:total*pairTile], lease.Data[total*pairTile:]
	checked := 0
	for bi := 0; bi < b.BlockRows && checked < 64; bi++ {
		mma := int(d.pairOff[bi])
		idx := 0
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			ab := &b.Blocks[p]
			k := int(ab.BlockCol)
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				bb := &b.Blocks[q]
				off := (mma + idx/2) * pairTile
				half := idx % 2
				for r := 0; r < 4; r++ {
					for c := 0; c < 4; c++ {
						if got := slabA[off+half*16+r*4+c]; got != ab.Vals[r*4+c] {
							t.Fatalf("block row %d product %d: A[%d,%d] = %v, want %v",
								bi, idx, r, c, got, ab.Vals[r*4+c])
						}
						if got := slabB[off+r*8+half*4+c]; got != bb.Vals[r*4+c] {
							t.Fatalf("block row %d product %d: B[%d,%d] = %v, want %v",
								bi, idx, r, c, got, bb.Vals[r*4+c])
						}
					}
				}
				idx++
				checked++
			}
		}
		// An odd product count leaves the final MMA's second half zeroed.
		if idx%2 == 1 {
			off := (mma + idx/2) * pairTile
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					if slabA[off+16+r*4+c] != 0 || slabB[off+r*8+4+c] != 0 {
						t.Fatalf("block row %d: odd-tail second half not zeroed", bi)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("representative produced no block products")
	}
}
