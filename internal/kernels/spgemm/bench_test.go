package spgemm

import "testing"

func BenchmarkComputeMMASpmsrts(b *testing.B) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		computeMMA(d)
	}
}

func BenchmarkSymbolicBcsstk39(b *testing.B) {
	w := New()
	d, err := w.data(w.Cases()[4])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symbolic(d)
	}
}
