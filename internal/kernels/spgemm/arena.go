// Accumulator arena for the SpGEMM numeric phase.
//
// The numeric sweeps previously materialized a fresh Go map of heap-allocated
// 4×4 tiles per block-row (the hash-accumulator pattern the paper's Quadrant
// IV characterization measures 3× IntOps overhead for) — which made SpGEMM
// the allocation outlier of the whole suite: every map insert, bucket growth,
// and tile was a heap object, ~45k allocations per representative run. This
// file replaces that with a per-worker arena checked out of a sync.Pool once
// per tile range and reused across every block-row the range owns:
//
//   - tile values live in one flat slice (slot s at vals[16s:16s+16]),
//     grow-once sized per row from the row's product-count upper bound;
//   - the block-column → slot directory comes in two regimes, switched per
//     block-row by fill ratio: a dense stamped directory (stamp/slot arrays
//     indexed by block column; O(1), BlockCols footprint) for high-fill
//     rows, and an epoch-validated open-addressing hash table (compact,
//     L1-resident for band matrices) for sparse ones;
//   - validity is an epoch stamp, never a clear: bumping the row epoch
//     invalidates every directory entry at once, so neither regime pays a
//     per-row wipe, and a pooled arena is safe to hand to any matrix.
//
// Both regimes feed each tile the identical queue-order addition sequence
// and flush in ascending block-column order, so outputs are bit-identical
// across regimes, worker counts, and the pre-arena implementation
// (determinism_test.go and the spgemm tests pin all three).
package spgemm

import (
	"os"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/mmu"
	"repro/internal/sparse"
)

// DenseEnv is the environment variable that forces the accumulator regime:
// "1" uses the dense stamped directory for every block-row, "0" the hash
// table for every block-row. Unset (or any other value) keeps the adaptive
// fill-ratio switch. Outputs are bit-identical in all three modes — the
// knob exists so the equivalence stays testable end to end, mirroring
// CUBIE_NO_PANEL.
const DenseEnv = "CUBIE_SPGEMM_DENSE"

// AccumMode selects the numeric-phase accumulator regime.
type AccumMode int32

const (
	// AccumAdaptive switches per block-row on fill ratio (the default).
	AccumAdaptive AccumMode = iota
	// AccumDense uses the dense stamped directory for every block-row.
	AccumDense
	// AccumHash uses the open-addressing hash table for every block-row.
	AccumHash
)

var accumMode atomic.Int32

func init() {
	switch os.Getenv(DenseEnv) {
	case "1":
		accumMode.Store(int32(AccumDense))
	case "0":
		accumMode.Store(int32(AccumHash))
	}
}

// SetAccumMode sets the accumulator regime and returns the previous one.
// Tests use it to pin the dense and hash paths bit-identical without
// re-execing the process.
func SetAccumMode(m AccumMode) (prev AccumMode) {
	return AccumMode(accumMode.Swap(int32(m)))
}

// CurrentAccumMode reports the active accumulator regime.
func CurrentAccumMode() AccumMode { return AccumMode(accumMode.Load()) }

// denseFillShift: adaptive rows go dense when the distinct-column upper
// bound is at least BlockCols>>denseFillShift (fill ratio ≥ 1/8). Below
// that the BlockCols-wide directory walk is mostly cache misses and the
// compact hash table wins; above it the O(1) direct index does.
const denseFillShift = 3

// Arena metrics (documented in docs/OBSERVABILITY.md). Counters are batched
// per tile range — the hot loops accumulate plain ints and flush once.
var (
	metArenaGets = metrics.NewCounter("cubie_spgemm_arena_gets_total",
		"Numeric-phase arenas checked out of the worker pool.")
	metArenaMisses = metrics.NewCounter("cubie_spgemm_arena_misses_total",
		"Arena checkouts that allocated a fresh arena (pool empty).")
	metArenaGrows = metrics.NewCounter("cubie_spgemm_arena_grows_total",
		"Capacity growths inside checked-out arenas (tile slots, directories, hash table, product queue).")
	metDenseRows = metrics.NewCounter("cubie_spgemm_dense_rows_total",
		"Block-rows accumulated through the dense stamped directory.")
	metHashRows = metrics.NewCounter("cubie_spgemm_hash_rows_total",
		"Block-rows accumulated through the open-addressing hash directory.")
)

// hashEntry is one open-addressing slot: valid iff epoch matches the
// arena's current row epoch, so stale entries (prior rows, prior matrices,
// prior table sizes) need no clearing.
type hashEntry struct {
	epoch int32
	col   int32
	slot  int32
}

// blockAccum accumulates the 4×4 C tiles of one block-row.
type blockAccum struct {
	vals  []float64   // tile arena: slot s occupies vals[16s : 16s+16]
	cols  []int32     // block column of slot s, insertion order
	stamp []int32     // dense directory: stamp[j] == epoch ⇒ slot[j] valid
	slot  []int32     // dense directory payload
	htab  []hashEntry // hash directory, power-of-two length
	epoch int32
	dense bool // regime of the current row
	grows int  // capacity growths since checkout (flushed to metArenaGrows)
}

// beginRow prepares the accumulator for one block-row: bumps the epoch
// (invalidating every directory entry at once), picks the regime from the
// row's distinct-column upper bound ub, and grow-once sizes the tile arena
// and directory so no mid-row reallocation can occur.
func (a *blockAccum) beginRow(ub, blockCols int, mode AccumMode) {
	if a.epoch == 1<<31-1 {
		// Epoch wrap (once per 2^31 rows): wipe the stamps so no stale
		// entry can collide with a reissued epoch, then restart at 0.
		clear(a.stamp)
		for i := range a.htab {
			a.htab[i] = hashEntry{}
		}
		a.epoch = 0
	}
	a.epoch++
	a.cols = a.cols[:0]
	if ub > blockCols {
		ub = blockCols
	}
	if need := ub * sparse.BlockSize * sparse.BlockSize; cap(a.vals) < need {
		a.vals = make([]float64, 0, ceilPow2(need))
		a.grows++
	}
	a.vals = a.vals[:0]
	if cap(a.cols) < ub {
		a.cols = make([]int32, 0, ceilPow2(ub))
		a.grows++
	}
	a.dense = mode == AccumDense ||
		(mode == AccumAdaptive && ub >= blockCols>>denseFillShift)
	if a.dense {
		if len(a.stamp) < blockCols {
			// Fresh arrays are zero-valued; epoch is ≥ 1, so every entry
			// is born invalid.
			a.stamp = make([]int32, blockCols)
			a.slot = make([]int32, blockCols)
			a.grows++
		}
		return
	}
	// ≤ 50% load factor: capacity ≥ 2× the distinct-column upper bound.
	if need := ceilPow2(2 * ub); len(a.htab) < need {
		if need < 16 {
			need = 16
		}
		a.htab = make([]hashEntry, need)
		a.grows++
	}
}

// tile returns the accumulator tile for block column j, claiming (and
// zeroing) a fresh arena slot on first touch. The claim order — and thus
// the slot order in cols — is the queue traversal order, identical in both
// regimes.
func (a *blockAccum) tile(j int32) *[sparse.BlockSize * sparse.BlockSize]float64 {
	var s int32
	if a.dense {
		if a.stamp[j] == a.epoch {
			s = a.slot[j]
		} else {
			s = a.claim(j)
			a.stamp[j] = a.epoch
			a.slot[j] = s
		}
	} else {
		mask := uint32(len(a.htab) - 1)
		// Fibonacci multiplicative hash, linear probing.
		h := (uint32(j) * 0x9E3779B1) & mask
		for {
			e := &a.htab[h]
			if e.epoch == a.epoch && e.col == j {
				s = e.slot
				break
			}
			if e.epoch != a.epoch {
				s = a.claim(j)
				*e = hashEntry{epoch: a.epoch, col: j, slot: s}
				break
			}
			h = (h + 1) & mask
		}
	}
	return (*[16]float64)(a.vals[s*16 : s*16+16])
}

// claim appends a zeroed tile slot for block column j. beginRow sized the
// arena from the row's upper bound, so the appends never reallocate.
func (a *blockAccum) claim(j int32) int32 {
	s := int32(len(a.cols))
	a.cols = append(a.cols, j)
	a.vals = a.vals[:len(a.vals)+16]
	clear(a.vals[s*16 : s*16+16])
	return s
}

// flush adds the accumulated block-row bi into the per-row canonical sums
// (ascending block column, ascending column within the block) — the same
// order the pre-arena map implementation flushed in.
func (a *blockAccum) flush(d *caseData, bi int, out []float64) {
	sortInt32(a.cols)
	for _, j := range a.cols {
		t := a.tile(j) // directory hit: slot was claimed this row
		for r := 0; r < sparse.BlockSize; r++ {
			row := bi*sparse.BlockSize + r
			if row >= d.mat.Rows {
				break
			}
			var sum float64
			for cc := 0; cc < sparse.BlockSize; cc++ {
				sum += t[r*sparse.BlockSize+cc]
			}
			out[row] += sum
		}
	}
}

// numericScratch is the per-worker state of the numeric sweeps: the
// accumulator arena, the pending-product queue, and the batched MMA staging
// panels, checked out once per tile range.
type numericScratch struct {
	acc   blockAccum
	queue []pendingProduct
	// Staging for one DMMABatch call: batch consecutive A, B, C tiles,
	// grow-once sized by ensurePanels for the active batch geometry (the
	// batch was a compile-time constant before `cubie tune` made it a knob).
	panels []float64
}

// ensurePanels grow-once sizes the staging panels for a batch of n MMAs.
// Pooled scratches sized for an older, larger batch keep their capacity.
func (ns *numericScratch) ensurePanels(n int) {
	need := n * (mmu.M*mmu.K + mmu.K*mmu.N + mmu.M*mmu.N)
	if cap(ns.panels) < need {
		ns.panels = make([]float64, ceilPow2(need))
		ns.acc.grows++
	}
	ns.panels = ns.panels[:cap(ns.panels)]
}

var numericPool sync.Pool

func getNumericScratch() *numericScratch {
	metArenaGets.Inc()
	if v := numericPool.Get(); v != nil {
		return v.(*numericScratch)
	}
	metArenaMisses.Inc()
	return &numericScratch{}
}

func putNumericScratch(ns *numericScratch) {
	if ns.acc.grows > 0 {
		metArenaGrows.Add(uint64(ns.acc.grows))
		ns.acc.grows = 0
	}
	numericPool.Put(ns)
}

// growQueue grow-once sizes the product queue for a row of n products.
func (ns *numericScratch) growQueue(n int) {
	if cap(ns.queue) < n {
		ns.queue = make([]pendingProduct, 0, ceilPow2(n))
		ns.acc.grows++
	}
	ns.queue = ns.queue[:0]
}

// sortInt32 sorts ascending: insertion sort for the short lists band
// matrices produce, pdqsort for the wide rows of the dense regime. The
// algorithm choice cannot affect results — the lists are duplicate-free, so
// every path yields the same permutation.
func sortInt32(a []int32) {
	if len(a) > 48 {
		slices.Sort(a)
		return
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func ceilPow2(n int) int {
	c := 1
	for c < n {
		c *= 2
	}
	return c
}
