package gemm

import (
	"testing"

	"repro/internal/lcg"
	"repro/internal/tensor"
)

func benchGEMM(b *testing.B, n int, f func(a, bb *tensor.Matrix) *tensor.Matrix) {
	g := lcg.New(1)
	a := tensor.NewMatrix(n, n)
	bb := tensor.NewMatrix(n, n)
	g.Fill(a.Data)
	g.Fill(bb.Data)
	b.SetBytes(int64(2 * n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, bb)
	}
}

func BenchmarkMultiplyMMA128(b *testing.B)      { benchGEMM(b, 128, multiplyMMA) }
func BenchmarkMultiplyBaseline128(b *testing.B) { benchGEMM(b, 128, multiplyBaseline) }
