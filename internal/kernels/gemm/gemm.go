// Package gemm implements the dense GEMM workload of the Cubie suite: the
// cudaSample dmmaTensorCoreGEMM routine (64×64 thread-block tiles over the
// FP64 wmma m8n8k4 instruction), its CUDA-core MMA replacement, and the
// cudaSample matrixMul-class vector baseline. Quadrant I: full input, full
// output, inputs repeatedly loaded into one accumulated result (Figure 2).
package gemm

import (
	"fmt"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/packcache"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// computeBudget caps the number of multiply-accumulates a case executes for
// real; larger cases are profiled in closed form and report no Output.
const computeBudget = 1 << 25

// blockTile is the thread-block tile edge of the cudaSample TC kernel.
const blockTile = 64

// Workload is the GEMM kernel.
type Workload struct{}

// New returns the GEMM workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "GEMM" }

// Quadrant implements workload.Workload (Figure 2, Quadrant I).
func (*Workload) Quadrant() int { return 1 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Dense linear algebra" }

// Cases returns the five M×N×K test cases of Table 2.
func (*Workload) Cases() []workload.Case {
	mk := func(n int, name string) workload.Case {
		return workload.Case{Name: name, Dims: []int{n, n, n}}
	}
	return []workload.Case{
		mk(256, "256x256x256"),
		mk(512, "512x512x512"),
		mk(1024, "1Kx1Kx1K"),
		mk(2048, "2Kx2Kx2K"),
		mk(4096, "4Kx4Kx4K"),
	}
}

// Variants implements workload.Workload. CC-E ≡ CC for Quadrant I.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC}
}

// Representative implements workload.Workload: the mid case is used for the
// single-case power and accuracy experiments.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 500 }

func dims(c workload.Case) (m, n, k int, err error) {
	if len(c.Dims) != 3 {
		return 0, 0, 0, fmt.Errorf("gemm: case %q needs 3 dims", c.Name)
	}
	return c.Dims[0], c.Dims[1], c.Dims[2], nil
}

// inputs deterministically generates the A and B operands for a case.
func inputs(m, n, k int) (*tensor.Matrix, *tensor.Matrix) {
	g := lcg.New(int64(m)*1_000_003 + int64(k))
	a := tensor.NewMatrix(m, k)
	b := tensor.NewMatrix(k, n)
	g.Fill(a.Data)
	g.Fill(b.Data)
	return a, b
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	m, n, k, err := dims(c)
	if err != nil {
		return nil, err
	}
	res := &workload.Result{
		Work:       2 * float64(m) * float64(n) * float64(k),
		MetricName: "GFLOPS",
	}
	switch v {
	case workload.TC:
		res.Profile = tcProfile(m, n, k)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.CC, workload.CCE:
		res.Profile = ccProfile(m, n, k)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.Baseline:
		res.Profile = baselineProfile(m, n, k)
	default:
		return nil, fmt.Errorf("gemm: unknown variant %q", v)
	}
	if float64(m)*float64(n)*float64(k) <= computeBudget {
		a, b := inputs(m, n, k)
		var out *tensor.Matrix
		switch v {
		case workload.TC, workload.CC, workload.CCE:
			// CC replays the TC algorithm exactly (same FMA chains on the
			// vector unit), so both variants share this compute path and
			// produce bit-identical results (Table 6).
			out = multiplyMMA(a, b)
		case workload.Baseline:
			out = multiplyBaseline(a, b)
		}
		res.Output = out.Data
	}
	return res, nil
}

// Reference implements workload.Workload: a naive CPU serial triple loop
// with separate multiply and add (no FMA contraction), ascending k.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	m, n, k, err := dims(c)
	if err != nil {
		return nil, err
	}
	if float64(m)*float64(n)*float64(k) > computeBudget {
		return nil, fmt.Errorf("gemm: case %q exceeds the compute budget", c.Name)
	}
	a, b := inputs(m, n, k)
	out := tensor.NewMatrix(m, n)
	par.ForTiles(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				for kk := 0; kk < k; kk++ {
					acc += a.At(i, kk) * b.At(kk, j)
				}
				out.Set(i, j, acc)
			}
		}
	})
	return out.Data, nil
}

// mmaAccScratch pools the per-sweep even/odd C accumulators of multiplyMMA.
var mmaAccScratch = par.NewScratch(2 * mmu.M * mmu.N)

// multiplyMMA executes the tiled tensor-core GEMM: 64×64 block tiles, each
// built from 8×8 MMA accumulator fragments swept over k in steps of 4. Like
// the software-pipelined cudaSample kernel, it keeps two accumulators (even
// and odd k-tiles) per fragment and sums them at the end — this double
// buffering is what makes the MMA result differ in rounding from the
// single-accumulator baseline (Table 6: GEMM TC error exceeds baseline).
//
// The k-sweep runs on the panel engine over packcache-staged operands: both
// whole operands are packed once per dataset (and on repeat runs — sweep
// repetitions, TC/CC variant pairs, bench iterations — served straight from
// the hash-validated cache), where the per-call version re-packed the full
// B operand once per row tile (m/8 redundant passes over B).
// mmu.DMMAPanelPair executes the whole sweep with both accumulators
// register-resident. Packed bytes and accumulation order per element are
// unchanged, so the result stays bit-identical to the per-call staging path
// and to the tile loop (CUBIE_NO_PACKCACHE=1 / CUBIE_NO_PANEL=1 verify).
//
// The output-tile grid is executed on the par worker pool: each 8×8 output
// tile's FMA chains run whole on one worker in the fixed k order, so the
// result is bit-identical for every worker count (the tile-independence
// property the paper's MMA semantics guarantee). Workers share the packed
// slabs read-only.
func multiplyMMA(a, b *tensor.Matrix) *tensor.Matrix {
	m, k, n := a.Rows, a.Cols, b.Cols
	out := tensor.NewMatrix(m, n)
	rowTiles := (m + mmu.M - 1) / mmu.M
	kTiles := (k + mmu.K - 1) / mmu.K
	aLease := packcache.PackedA("gemm:A", a, kTiles)
	bLease := packcache.PackedB("gemm:B", b, kTiles)
	defer aLease.Release()
	defer bLease.Release()
	aAll, bAll := aLease.Data, bLease.Data
	aStride := kTiles * mmu.M * mmu.K
	bStride := kTiles * mmu.K * mmu.N
	par.ForTiles(rowTiles, func(lo, hi int) {
		acc := mmaAccScratch.Get()
		defer mmaAccScratch.Put(acc)
		cEven := acc[0 : mmu.M*mmu.N]
		cOdd := acc[mmu.M*mmu.N:]
		for ti := lo; ti < hi; ti++ {
			i0 := ti * mmu.M
			aPanel := aAll[ti*aStride : (ti+1)*aStride]
			for j0, tj := 0, 0; j0 < n; j0, tj = j0+mmu.N, tj+1 {
				bPanel := bAll[tj*bStride : (tj+1)*bStride]
				for i := range cEven {
					cEven[i], cOdd[i] = 0, 0
				}
				mmu.DMMAPanelPair(cEven, cOdd, aPanel, bPanel, kTiles)
				// Fused epilogue: one add per element straight into the
				// output tile — no separate summing pass or staging buffer.
				out.SetTileSum(cEven, cOdd, i0, j0, mmu.M, mmu.N)
			}
		}
	})
	return out
}

// multiplyBaseline is the cudaSample matrixMul-class vector GEMM: one FMA
// chain per output element over the full k extent, parallelized over output
// rows (each element's chain stays on one worker).
func multiplyBaseline(a, b *tensor.Matrix) *tensor.Matrix {
	m, k, n := a.Rows, a.Cols, b.Cols
	out := tensor.NewMatrix(m, n)
	par.ForTiles(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				for kk := 0; kk < k; kk++ {
					acc = mmu.FMA(a.At(i, kk), b.At(kk, j), acc)
				}
				out.Set(i, j, acc)
			}
		}
	})
	return out
}

// Closed-form execution profiles. Byte counts model the tiling each variant
// uses; efficiency factors are calibrated (see sim/calibration.go).

func sharedTraffic(m, n, k, reuse int) (dram, l1 float64) {
	fm, fn, fk := float64(m), float64(n), float64(k)
	rdA := fm * fk * float64((n+reuse-1)/reuse) * sim.BytesF64
	rdB := fk * fn * float64((m+reuse-1)/reuse) * sim.BytesF64
	wrC := fm * fn * sim.BytesF64
	// Each 8×8×4 MMA (or its scalar replacement) pulls the 32-element A and
	// B fragments from shared memory: 512 B per 512 FLOPs.
	l1 = 2 * fm * fn * fk
	return rdA + rdB + wrC, l1
}

func tcProfile(m, n, k int) sim.Profile {
	dram, l1 := sharedTraffic(m, n, k, 8*blockTile)
	return sim.Profile{
		TensorFLOPs: 2 * float64(m) * float64(n) * float64(k),
		DRAMBytes:   dram,
		L1Bytes:     l1,
		Launches:    1,
		Overlap:     0.90,
		Eff: sim.Efficiency{
			// The paper notes Cubie's GEMM omits cuBLAS/CUTLASS-grade
			// optimizations and does not reach tensor peak (Section 9).
			Tensor: 0.62,
			DRAM:   sim.EffLibrary,
			L1:     1.0,
		},
	}
}

func ccProfile(m, n, k int) sim.Profile {
	dram, l1 := sharedTraffic(m, n, k, 8*blockTile)
	return sim.Profile{
		VectorFLOPs: 2 * float64(m) * float64(n) * float64(k),
		DRAMBytes:   dram,
		L1Bytes:     l1,
		Launches:    1,
		// Scalar MMA emulation issues 16 dependent FMAs per lane and loses
		// the cooperative-load overlap of the tensor path.
		Overlap: 0.60,
		Eff: sim.Efficiency{
			Vector: sim.EffModerate,
			DRAM:   sim.EffLibrary,
			L1:     0.9,
		},
	}
}

func baselineProfile(m, n, k int) sim.Profile {
	dram, l1 := sharedTraffic(m, n, k, 32) // 32×32 shared tiles
	return sim.Profile{
		VectorFLOPs: 2 * float64(m) * float64(n) * float64(k),
		DRAMBytes:   dram,
		L1Bytes:     l1,
		Launches:    1,
		Overlap:     0.70,
		Eff: sim.Efficiency{
			Vector: 0.45,
			DRAM:   sim.EffLibrary,
			L1:     0.9,
		},
	}
}
