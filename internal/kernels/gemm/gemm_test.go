package gemm

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lcg"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "GEMM" || w.Quadrant() != 1 {
		t.Fatal("bad metadata")
	}
	cases := w.Cases()
	if len(cases) != 5 {
		t.Fatalf("%d cases, want 5", len(cases))
	}
	if cases[0].Name != "256x256x256" || cases[4].Dims[0] != 4096 {
		t.Fatal("Table 2 cases wrong")
	}
	if w.Repeats() != 500 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestCorrectnessAgainstReference(t *testing.T) {
	w := New()
	c := w.Cases()[0]
	ref, err := w.Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []workload.Variant{workload.TC, workload.CC, workload.Baseline} {
		res, err := w.Run(c, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != len(ref) {
			t.Fatalf("%s: output length %d, want %d", v, len(res.Output), len(ref))
		}
		var maxErr float64
		for i := range ref {
			if d := math.Abs(res.Output[i] - ref[i]); d > maxErr {
				maxErr = d
			}
		}
		// k = 256 dot products of (-2,2) values: errors stay tiny.
		if maxErr > 1e-11 {
			t.Errorf("%s: max error %v vs reference", v, maxErr)
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	c := w.Cases()[0]
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			t.Fatalf("TC and CC outputs differ at %d", i)
		}
	}
}

func TestTCDiffersFromBaselineInRounding(t *testing.T) {
	// The double-buffered MMA accumulation must produce at least some
	// elements with different last-bit rounding than the single-chain
	// baseline — the mechanism behind Table 6's GEMM row.
	w := New()
	tc, _ := w.Run(w.Cases()[0], workload.TC)
	bl, _ := w.Run(w.Cases()[0], workload.Baseline)
	same := true
	for i := range tc.Output {
		if tc.Output[i] != bl.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("TC and Baseline outputs are bit-identical; accumulation orders should differ")
	}
}

func TestLargeCaseProfileOnly(t *testing.T) {
	w := New()
	c := w.Cases()[4] // 4K³
	res, err := w.Run(c, workload.TC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != nil {
		t.Error("4K case should not execute arithmetic")
	}
	wantFLOPs := 2.0 * 4096 * 4096 * 4096
	if res.Profile.TensorFLOPs != wantFLOPs {
		t.Errorf("TensorFLOPs = %v, want %v", res.Profile.TensorFLOPs, wantFLOPs)
	}
	if res.Work != wantFLOPs {
		t.Error("essential work should equal 2MNK")
	}
}

func TestVariantProfilesDisjointUnits(t *testing.T) {
	w := New()
	c := w.Cases()[2]
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	bl, _ := w.Run(c, workload.Baseline)
	if tc.Profile.TensorFLOPs == 0 || tc.Profile.VectorFLOPs != 0 {
		t.Error("TC must issue tensor FLOPs only")
	}
	if cc.Profile.VectorFLOPs == 0 || cc.Profile.TensorFLOPs != 0 {
		t.Error("CC must issue vector FLOPs only")
	}
	if bl.Profile.VectorFLOPs != cc.Profile.VectorFLOPs {
		t.Error("baseline and CC share the same essential FLOPs for GEMM")
	}
}

func TestPerformanceShape(t *testing.T) {
	// Figure 4/5 shape: TC beats baseline on every GPU; CC lands around
	// 0.4–0.8× of TC.
	w := New()
	c := w.Cases()[4]
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	bl, _ := w.Run(c, workload.Baseline)
	for _, spec := range device.All() {
		tTC := sim.Run(spec, tc.Profile).Time
		tCC := sim.Run(spec, cc.Profile).Time
		tBL := sim.Run(spec, bl.Profile).Time
		if tTC >= tBL {
			t.Errorf("%s: TC (%v) not faster than baseline (%v)", spec.Name, tTC, tBL)
		}
		ratio := tTC / tCC // CC speedup over TC, < 1
		if ratio < 0.3 || ratio > 0.85 {
			t.Errorf("%s: CC/TC perf ratio %v outside [0.3, 0.85]", spec.Name, ratio)
		}
	}
}

func TestThroughputBelowPeak(t *testing.T) {
	w := New()
	c := w.Cases()[4]
	tc, _ := w.Run(c, workload.TC)
	for _, spec := range device.All() {
		r := sim.Run(spec, tc.Profile)
		tflops := tc.Work / r.Time / 1e12
		if tflops >= spec.TensorFP64 {
			t.Errorf("%s: modeled %v TFLOPS exceeds tensor peak %v",
				spec.Name, tflops, spec.TensorFP64)
		}
		if tflops < spec.TensorFP64*0.2 {
			t.Errorf("%s: modeled %v TFLOPS implausibly low", spec.Name, tflops)
		}
	}
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Cases()[0], "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "bad"}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
	if _, err := w.Reference(w.Cases()[4]); err == nil {
		t.Error("reference for over-budget case should fail")
	}
}

func TestMultiplyMMARectangular(t *testing.T) {
	// The tiled MMA path must handle non-square and non-multiple-of-8
	// shapes via zero padding.
	for _, shape := range [][3]int{{24, 40, 16}, {17, 9, 33}, {8, 8, 4}, {1, 1, 1}} {
		m, n, k := shape[0], shape[1], shape[2]
		g := lcg.New(int64(m*1000 + n*10 + k))
		a := tensor.NewMatrix(m, k)
		bm := tensor.NewMatrix(k, n)
		g.Fill(a.Data)
		g.Fill(bm.Data)
		got := multiplyMMA(a, bm)
		if got.Rows != m || got.Cols != n {
			t.Fatalf("%v: output %dx%d", shape, got.Rows, got.Cols)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for kk := 0; kk < k; kk++ {
					want += a.At(i, kk) * bm.At(kk, j)
				}
				if d := math.Abs(got.At(i, j) - want); d > 1e-12 {
					t.Fatalf("%v: C(%d,%d) = %v, want ≈%v", shape, i, j, got.At(i, j), want)
				}
			}
		}
	}
}
