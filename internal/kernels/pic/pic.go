// Package pic implements the Particle-in-Cell workload following PiCTC
// (Mehta, 2019) adapted to FP64: the Boris push advances charged particles
// in uniform electromagnetic fields, with the velocity rotation and field
// kicks of eight-particle batches mapped onto 8×4 · 4×8 FP64 MMAs whose
// operand matrices are built from the field tensors — Quadrant I: full
// input and output, inputs repeatedly loaded into one accumulated result.
//
// PiC has no external baseline in Table 2; its variants are TC and CC.
package pic

import (
	"fmt"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// computeBudget caps the number of particles a case pushes for real.
const computeBudget = 1 << 18

// Simulation constants (uniform fields, normalized charge/mass).
const (
	dt = 0.01
	ex = 0.3
	ey = -0.2
	ez = 0.1
	bx = 0.0
	by = 0.0
	bz = 1.0
)

// Workload is the PiC kernel.
type Workload struct{}

// New returns the PiC workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "PiC" }

// Quadrant implements workload.Workload (Figure 2, Quadrant I).
func (*Workload) Quadrant() int { return 1 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "N-Body" }

// Cases returns the five particle counts of Table 2.
func (*Workload) Cases() []workload.Case {
	mk := func(n int, name string) workload.Case {
		return workload.Case{Name: name, Dims: []int{n}}
	}
	return []workload.Case{
		mk(64<<10, "64K"),
		mk(128<<10, "128K"),
		mk(256<<10, "256K"),
		mk(512<<10, "512K"),
		mk(1<<20, "1M"),
	}
}

// Variants implements workload.Workload: PiC has no library baseline
// (Table 2 lists "-"); CC-E ≡ CC in Quadrant I.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.TC, workload.CC}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 60 }

func particles(c workload.Case) (int, error) {
	if len(c.Dims) != 1 || c.Dims[0] < 1 {
		return 0, fmt.Errorf("pic: case %q needs one positive dim", c.Name)
	}
	return c.Dims[0], nil
}

// state is the flattened particle state: x, y, z, vx, vy, vz per particle.
func initState(n int) []float64 {
	s := make([]float64, 6*n)
	lcg.New(int64(n)).Fill(s)
	return s
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	n, err := particles(c)
	if err != nil {
		return nil, err
	}
	res := &workload.Result{
		Work:       float64(n),
		MetricName: "Gpart/s",
	}
	switch v {
	case workload.TC:
		res.Profile = tcProfile(n)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.CC, workload.CCE:
		res.Profile = ccProfile(n)
		res.InputUtil, res.OutputUtil = 1, 1
	default:
		return nil, fmt.Errorf("pic: unknown variant %q", v)
	}
	if n <= computeBudget {
		st := initState(n)
		pushMMA(st)
		res.Output = st
	}
	return res, nil
}

// Reference implements workload.Workload: a serial Boris push with separate
// multiplies and adds.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	n, err := particles(c)
	if err != nil {
		return nil, err
	}
	if n > computeBudget {
		return nil, fmt.Errorf("pic: case %q exceeds the compute budget", c.Name)
	}
	st := initState(n)
	hx, hy, hz := 0.5*dt*bx, 0.5*dt*by, 0.5*dt*bz
	h2 := hx*hx + hy*hy + hz*hz
	sx, sy, sz := 2*hx/(1+h2), 2*hy/(1+h2), 2*hz/(1+h2)
	for p := 0; p < n; p++ {
		v := st[6*p+3 : 6*p+6]
		// Half electric kick.
		vx := v[0] + 0.5*dt*ex
		vy := v[1] + 0.5*dt*ey
		vz := v[2] + 0.5*dt*ez
		// Rotation: v' = v + (v + v×h)×s.
		tx := vx + vy*hz - vz*hy
		ty := vy + vz*hx - vx*hz
		tz := vz + vx*hy - vy*hx
		vx2 := vx + ty*sz - tz*sy
		vy2 := vy + tz*sx - tx*sz
		vz2 := vz + tx*sy - ty*sx
		// Second half kick.
		vx2 += 0.5 * dt * ex
		vy2 += 0.5 * dt * ey
		vz2 += 0.5 * dt * ez
		v[0], v[1], v[2] = vx2, vy2, vz2
		st[6*p+0] += dt * vx2
		st[6*p+1] += dt * vy2
		st[6*p+2] += dt * vz2
	}
	return st, nil
}

// rotationOperand builds the 4×8 B operand whose first four columns apply a
// linear map M to the velocity 4-vectors stacked in the A operand rows:
// (V·B)[p][j] = Σ_k V[p][k]·M[k][j]. Columns 4–7 are zero.
func rotationOperand(m [4][4]float64) []float64 {
	b := make([]float64, mmu.K*mmu.N)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			b[k*mmu.N+j] = m[k][j]
		}
	}
	return b
}

// pushMMA advances the state one Boris step with the PiCTC mapping: eight
// particles per batch, velocities as 8×4 blocks (vx, vy, vz, 1 — the
// homogeneous column carries the electric kick), transformed by two MMA
// applications (v → t, then the rotation/kick map), and a final MMA for the
// position update. TC and CC share this exact code path (the CC variant
// executes the same FMA chains on the vector unit), so they are
// bit-identical (Table 6: PiC TC/CC agree).
func pushMMA(st []float64) {
	hx, hy, hz := 0.5*dt*bx, 0.5*dt*by, 0.5*dt*bz
	h2 := hx*hx + hy*hy + hz*hz
	sx, sy, sz := 2*hx/(1+h2), 2*hy/(1+h2), 2*hz/(1+h2)

	// Map 1: homogeneous half-kick — v' = v + (dt/2)E, last column kept 1.
	kick := [4][4]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0.5 * dt * ex, 0.5 * dt * ey, 0.5 * dt * ez, 1},
	}
	// Map 2: t = v + v×h (homogeneous, h constant).
	cross1 := [4][4]float64{
		{1, -hz, hy, 0},
		{hz, 1, -hx, 0},
		{-hy, hx, 1, 0},
		{0, 0, 0, 1},
	}
	// Map 3: rotation completion applied to t: r = t×s (pure cross term).
	cross2 := [4][4]float64{
		{0, -sz, sy, 0},
		{sz, 0, -sx, 0},
		{-sy, sx, 0, 0},
		{0, 0, 0, 0},
	}

	bKick := rotationOperand(kick)
	bCross1 := rotationOperand(cross1)
	bCross2 := rotationOperand(cross2)

	n := len(st) / 6
	batches := (n + mmu.M - 1) / mmu.M
	// Eight-particle batches touch disjoint state slices, so the batch grid
	// runs on the par worker pool; each batch's four-MMA chain keeps its
	// fixed order, so TC and CC stay bit-identical at any worker count.
	par.ForTiles(batches, func(lo, hi int) {
		buf := picScratch.Get()
		defer picScratch.Put(buf)
		vBlk := buf[0 : mmu.M*mmu.K]
		c1 := buf[mmu.M*mmu.K : mmu.M*mmu.K+mmu.M*mmu.N]
		c2 := buf[mmu.M*mmu.K+mmu.M*mmu.N:]
		for b := lo; b < hi; b++ {
			p0 := b * mmu.M
			cnt := min(mmu.M, n-p0)
			for r := 0; r < mmu.M; r++ {
				if r < cnt {
					p := p0 + r
					vBlk[r*4+0] = st[6*p+3]
					vBlk[r*4+1] = st[6*p+4]
					vBlk[r*4+2] = st[6*p+5]
					vBlk[r*4+3] = 1
				} else {
					vBlk[r*4+0], vBlk[r*4+1], vBlk[r*4+2], vBlk[r*4+3] = 0, 0, 0, 0
				}
			}
			// Half kick: V1 = V·Kick.
			for i := range c1 {
				c1[i] = 0
			}
			mmu.DMMAPanel(c1, vBlk, bKick, 1)
			// t = v1·Cross1.
			for r := 0; r < mmu.M; r++ {
				copy(vBlk[r*4:], c1[r*mmu.N:r*mmu.N+4])
			}
			for i := range c2 {
				c2[i] = 0
			}
			mmu.DMMAPanel(c2, vBlk, bCross1, 1)
			// v2 = v1 + t·Cross2: c1 already holds v1 and serves as the MMA
			// accumulator while t (in c2) multiplies the second cross map.
			for r := 0; r < mmu.M; r++ {
				copy(vBlk[r*4:], c2[r*mmu.N:r*mmu.N+4])
			}
			mmu.DMMAPanel(c1, vBlk, bCross2, 1)
			// Second half kick: V3 = V2·Kick (reload rows into the A block).
			for r := 0; r < mmu.M; r++ {
				copy(vBlk[r*4:], c1[r*mmu.N:r*mmu.N+4])
				vBlk[r*4+3] = 1
			}
			for i := range c2 {
				c2[i] = 0
			}
			mmu.DMMAPanel(c2, vBlk, bKick, 1)
			// Write back velocities and advance positions.
			for r := 0; r < cnt; r++ {
				p := p0 + r
				vx := c2[r*mmu.N+0]
				vy := c2[r*mmu.N+1]
				vz := c2[r*mmu.N+2]
				st[6*p+3], st[6*p+4], st[6*p+5] = vx, vy, vz
				st[6*p+0] = mmu.FMA(dt, vx, st[6*p+0])
				st[6*p+1] = mmu.FMA(dt, vy, st[6*p+1])
				st[6*p+2] = mmu.FMA(dt, vz, st[6*p+2])
			}
		}
	})
}

// picScratch pools the per-batch staging of pushMMA: the velocity A block
// (32) and two C accumulators (64 each).
var picScratch = par.NewScratch(mmu.M*mmu.K + 2*mmu.M*mmu.N)

// Profiles: four MMAs per eight-particle batch (256 MMA FLOPs per
// particle) against ~60 essential FLOPs; particle state is streamed.

func tcProfile(n int) sim.Profile {
	fn := float64(n)
	return sim.Profile{
		TensorFLOPs: fn * 256,
		DRAMBytes:   fn * 12 * sim.BytesF64, // x, v read + write
		ConstBytes:  fn * 2,                 // field maps broadcast
		L1Bytes:     fn * 4 * 128,           // block staging per MMA
		Launches:    1,
		Overlap:     0.90,
		Eff: sim.Efficiency{
			Tensor: 0.55,
			DRAM:   sim.EffLibrary,
			L1:     0.9,
		},
	}
}

func ccProfile(n int) sim.Profile {
	p := tcProfile(n)
	p.VectorFLOPs, p.TensorFLOPs = p.TensorFLOPs, 0
	p.ConstBytes = 0
	p.L1Bytes *= 1.5 // operand maps staged per scalar chain
	p.Overlap = 0.30
	p.Eff = sim.Efficiency{Vector: 0.22, DRAM: sim.EffLibrary, L1: 0.9}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
