package pic

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "PiC" || w.Quadrant() != 1 {
		t.Fatal("bad metadata")
	}
	cs := w.Cases()
	if len(cs) != 5 || cs[0].Dims[0] != 64<<10 || cs[4].Dims[0] != 1<<20 {
		t.Fatal("Table 2 cases wrong")
	}
	// Table 2 lists no baseline for PiC.
	for _, v := range w.Variants() {
		if v == workload.Baseline {
			t.Fatal("PiC must not expose a baseline variant")
		}
	}
	if w.Repeats() != 60 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestPushMatchesBorisReference(t *testing.T) {
	w := New()
	c := w.Representative()
	ref, err := w.Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(c, workload.TC)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(ref) {
		t.Fatalf("state length %d, want %d", len(res.Output), len(ref))
	}
	var maxErr float64
	for i := range ref {
		if d := math.Abs(res.Output[i] - ref[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-14 {
		t.Errorf("max deviation from Boris reference %v", maxErr)
	}
	if maxErr == 0 {
		t.Log("note: MMA push bit-identical to serial reference on this input")
	}
}

func TestEnergyConservationUnderPureRotation(t *testing.T) {
	// With E = 0 the Boris rotation preserves |v| exactly up to rounding;
	// verify the MMA push respects this physical invariant.
	st := initState(1 << 10)
	before := make([]float64, 0, 1<<10)
	for p := 0; p < 1<<10; p++ {
		v := st[6*p+3 : 6*p+6]
		before = append(before, v[0]*v[0]+v[1]*v[1]+v[2]*v[2])
	}
	// The package constants include E ≠ 0, so emulate a pure rotation by
	// applying the inverse kicks around the push: push then compare the
	// rotated |v| against the reference push, which shares the same kicks.
	w := New()
	refSt, _ := w.Reference(w.Cases()[0])
	_ = refSt
	pushMMA(st)
	for p := 0; p < 1<<10; p++ {
		v := st[6*p+3 : 6*p+6]
		after := v[0]*v[0] + v[1]*v[1] + v[2]*v[2]
		// The electric kick changes |v| by at most (dt·|E|)² + cross terms;
		// bound the change loosely to catch gross rotation errors.
		if math.Abs(after-before[p]) > 0.1 {
			t.Fatalf("particle %d: |v|² jumped %v → %v", p, before[p], after)
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	cc, _ := w.Run(w.Representative(), workload.CC)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			t.Fatalf("TC and CC differ at %d", i)
		}
	}
}

func TestPerformanceShape(t *testing.T) {
	// Figure 5: the PiC CC replacement achieves only ≈0.4× of TC — the
	// largest Quadrant I gap.
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			if r := tTC / tCC; r < 0.25 || r > 0.65 {
				t.Errorf("%s/%s: CC/TC %v outside [0.25, 0.65]", c.Name, spec.Name, r)
			}
		}
	}
}

func TestLargeCaseProfileOnly(t *testing.T) {
	w := New()
	res, err := w.Run(w.Cases()[4], workload.TC) // 1M particles, over budget
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != nil {
		t.Error("1M case should be profile-only")
	}
	if res.Profile.TensorFLOPs != float64(1<<20)*256 {
		t.Error("profile FLOPs wrong")
	}
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), workload.Baseline); err == nil {
		t.Error("baseline should be rejected for PiC")
	}
	if _, err := w.Run(workload.Case{Name: "bad"}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
}
