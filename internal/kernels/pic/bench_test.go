package pic

import "testing"

func BenchmarkPushMMA(b *testing.B) {
	st := initState(1 << 14)
	b.SetBytes(int64(len(st) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pushMMA(st)
	}
}
