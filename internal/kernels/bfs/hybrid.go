package bfs

import (
	"repro/internal/graph"
	"repro/internal/mmu"
	"repro/internal/workload"
)

// Direction-optimized traversal: an extension beyond the paper's BerryBees
// reproduction. The bitmap pull sweep is efficient when the frontier is
// large (most blocks intersect it) but wasteful for the first and last
// levels, where a top-down push over the few frontier vertices touches far
// fewer edges. The hybrid switches Beamer-style: push while the frontier's
// outgoing edges are below |E|/alpha, pull otherwise.

// pushThresholdAlpha is the Beamer switching constant.
const pushThresholdAlpha = 14

// HybridResult reports a direction-optimized traversal and its work
// relative to the pull-only BerryBees sweep.
type HybridResult struct {
	Levels     []int32
	PushLevels int     // levels run top-down
	PullLevels int     // levels run as bitmap pull sweeps
	PushEdges  float64 // edges relaxed in push levels
	PullBMMA   float64 // bit MMAs issued in pull levels

	// PullOnlyBMMA is the bit-MMA count of the plain pull traversal on the
	// same graph, for comparison.
	PullOnlyBMMA float64
}

// RunHybrid executes the direction-optimized traversal for one Table 3
// case and compares its work against the pull-only sweep.
func (w *Workload) RunHybrid(c workload.Case) (*HybridResult, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	res := hybridBFS(d)
	_, pullCt := bitmapBFS(d)
	res.PullOnlyBMMA = pullCt.bmma
	return res, nil
}

func hybridBFS(d *caseData) *HybridResult {
	g, s := d.g, d.slices
	out := &HybridResult{Levels: make([]int32, g.N)}
	for i := range out.Levels {
		out.Levels[i] = -1
	}
	out.Levels[d.source] = 0

	frontierList := []int32{int32(d.source)}
	frontier := graph.NewFrontier(g.N)
	frontier.Set(d.source)
	threshold := g.Edges() / pushThresholdAlpha

	for level := int32(1); len(frontierList) > 0; level++ {
		// Outgoing edges of the current frontier decide the direction.
		frontierEdges := 0
		for _, v := range frontierList {
			frontierEdges += g.Degree(int(v))
		}

		var next []int32
		if frontierEdges < threshold {
			// Top-down push.
			out.PushLevels++
			out.PushEdges += float64(frontierEdges)
			for _, v := range frontierList {
				for _, u := range g.Adj(int(v)) {
					if out.Levels[u] < 0 {
						out.Levels[u] = level
						next = append(next, u)
					}
				}
			}
		} else {
			// Bitmap pull sweep (the BerryBees kernel).
			out.PullLevels++
			for si := 0; si < s.RowSlices; si++ {
				allVisited := true
				for r := 0; r < 8; r++ {
					v := si*8 + r
					if v < g.N && out.Levels[v] < 0 {
						allVisited = false
						break
					}
				}
				if allVisited {
					continue
				}
				p0, p1 := s.SlicePtr[si], s.SlicePtr[si+1]
				var rowHits [8]int32
				out.PullBMMA += float64(mmu.BMMAPanel(&rowHits,
					s.Bits[p0:p1], s.ColSegs[p0:p1], frontier.Words))
				for r := 0; r < 8; r++ {
					v := si*8 + r
					if v < g.N && rowHits[r] > 0 && out.Levels[v] < 0 {
						out.Levels[v] = level
						next = append(next, int32(v))
					}
				}
			}
		}
		frontierList = next
		frontier = graph.NewFrontier(g.N)
		for _, v := range next {
			frontier.Set(int(v))
		}
	}
	return out
}
