package bfs

import (
	"testing"
)

func TestComponentsLabelEveryVertex(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		res, err := w.ConnectedComponents(c)
		if err != nil {
			t.Fatal(err)
		}
		for v, l := range res.Labels {
			if l < 0 || int(l) >= res.Count {
				t.Fatalf("%s: vertex %d has label %d of %d components",
					c.Name, v, l, res.Count)
			}
		}
		if res.Count < 1 {
			t.Fatalf("%s: no components", c.Name)
		}
		if res.BMMA <= 0 {
			t.Fatalf("%s: no bit MMAs issued", c.Name)
		}
	}
}

func TestComponentsRespectEdges(t *testing.T) {
	// Every edge must connect vertices with the same label.
	w := New()
	c := w.Representative()
	res, err := w.ConnectedComponents(c)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.data(c)
	for v := 0; v < d.g.N; v++ {
		for _, u := range d.g.Adj(v) {
			if res.Labels[v] != res.Labels[u] {
				t.Fatalf("edge (%d,%d) crosses components %d/%d",
					v, u, res.Labels[v], res.Labels[u])
			}
		}
	}
}

func TestComponentsMatchUnionFind(t *testing.T) {
	// Cross-check against a classic union-find on the same graph.
	w := New()
	c := w.Cases()[1] // mycielskian: dense, single component
	res, err := w.ConnectedComponents(c)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := w.data(c)
	parent := make([]int32, d.g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < d.g.N; v++ {
		for _, u := range d.g.Adj(v) {
			rv, ru := find(int32(v)), find(u)
			if rv != ru {
				parent[rv] = ru
			}
		}
	}
	roots := map[int32]bool{}
	for v := 0; v < d.g.N; v++ {
		roots[find(int32(v))] = true
	}
	if len(roots) != res.Count {
		t.Fatalf("bitmap CC found %d components, union-find %d", res.Count, len(roots))
	}
	// And labels must partition identically: same root ⇔ same label.
	seen := map[int32]int32{}
	for v := 0; v < d.g.N; v++ {
		root := find(int32(v))
		if want, ok := seen[root]; ok {
			if res.Labels[v] != want {
				t.Fatalf("vertex %d label %d, expected %d (same union-find root)",
					v, res.Labels[v], want)
			}
		} else {
			seen[root] = res.Labels[v]
		}
	}
}

func TestLargestComponentDominates(t *testing.T) {
	// The synthesized social/web graphs have a giant component.
	w := New()
	res, err := w.ConnectedComponents(w.Cases()[4]) // com-Orkut
	if err != nil {
		t.Fatal(err)
	}
	if res.LargestPct < 0.5 {
		t.Errorf("giant component only %.0f%% of vertices", res.LargestPct*100)
	}
}
