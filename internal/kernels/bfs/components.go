package bfs

import (
	"repro/internal/graph"
	"repro/internal/mmu"
	"repro/internal/workload"
)

// Connected components via repeated bitmap traversals: a combinatorial
// extension built on the same 8×128 bit-MMA machinery — the GraphBLAS-style
// direction the paper's BFS citations ([37, 56]) motivate.

// ComponentsResult labels every vertex with its component id and reports
// the bit-MMA work of the labeling.
type ComponentsResult struct {
	Labels     []int32 // component id per vertex (0-based, dense)
	Count      int
	BMMA       float64 // bit MMAs issued across all traversals
	LargestPct float64 // share of vertices in the biggest component
}

// ConnectedComponents labels the (undirected) Table 3 graph of case c by
// running the bitmap pull traversal from each still-unlabeled vertex.
func (w *Workload) ConnectedComponents(c workload.Case) (*ComponentsResult, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	return componentsOf(d), nil
}

func componentsOf(d *caseData) *ComponentsResult {
	g, s := d.g, d.slices
	res := &ComponentsResult{Labels: make([]int32, g.N), Count: 0}
	for i := range res.Labels {
		res.Labels[i] = -1
	}

	sizes := []int{}
	for start := 0; start < g.N; start++ {
		if res.Labels[start] >= 0 {
			continue
		}
		id := int32(res.Count)
		res.Count++
		res.Labels[start] = id
		size := 1

		frontier := graph.NewFrontier(g.N)
		frontier.Set(start)
		for !frontier.Empty() {
			next := graph.NewFrontier(g.N)
			for si := 0; si < s.RowSlices; si++ {
				allLabeled := true
				for r := 0; r < 8; r++ {
					v := si*8 + r
					if v < g.N && res.Labels[v] < 0 {
						allLabeled = false
						break
					}
				}
				if allLabeled {
					continue
				}
				p0, p1 := s.SlicePtr[si], s.SlicePtr[si+1]
				var rowHits [8]int32
				res.BMMA += float64(mmu.BMMAPanel(&rowHits,
					s.Bits[p0:p1], s.ColSegs[p0:p1], frontier.Words))
				for r := 0; r < 8; r++ {
					v := si*8 + r
					if v < g.N && rowHits[r] > 0 && res.Labels[v] < 0 {
						res.Labels[v] = id
						next.Set(v)
						size++
					}
				}
			}
			frontier = next
		}
		sizes = append(sizes, size)
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	if g.N > 0 {
		res.LargestPct = float64(largest) / float64(g.N)
	}
	return res
}
