// Package bfs implements the BFS workload following BerryBees (Niu &
// Casas, PPoPP '25): the graph is stored as 8×128 bitmap block slices and
// each level intersects adjacency blocks with the frontier bitmap using the
// single-bit m8n8k128 MMA (AND+POPC) — Quadrant IV: full input operands,
// with only one column of each output tile consumed. BFS performs no
// floating-point work and is excluded from the Table 6 accuracy study.
//
// Unlike the FP kernels, the BFS profiles are measured, not closed-form:
// the traversal counts every bit-MMA, block load, and frontier word it
// actually touches on the synthesized Table 3 graphs.
package bfs

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Workload is the BFS kernel.
type Workload struct {
	mu    sync.Mutex
	cache map[string]*caseData
}

type caseData struct {
	g      *graph.Graph
	slices *graph.SliceSet
	source int
}

// New returns the BFS workload.
func New() *Workload { return &Workload{cache: map[string]*caseData{}} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "BFS" }

// Quadrant implements workload.Workload (Figure 2, Quadrant IV).
func (*Workload) Quadrant() int { return 4 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Graph traversal" }

// Cases returns the five Table 3 graphs.
func (*Workload) Cases() []workload.Case {
	var cs []workload.Case
	for _, d := range graph.Table3() {
		cs = append(cs, workload.Case{Name: d.Name, Dataset: d.Name})
	}
	return cs
}

// Variants implements workload.Workload.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC, workload.CCE}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[3] } // kron

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 2000 }

func (w *Workload) data(c workload.Case) (*caseData, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.cache[c.Dataset]; ok {
		return d, nil
	}
	g0, err := graph.SynthesizeShared(c.Dataset)
	if err != nil {
		return nil, err
	}
	// Start from the highest-degree vertex for a substantial traversal.
	src, best := 0, -1
	for v := 0; v < g0.N; v++ {
		if d := g0.Degree(v); d > best {
			src, best = v, d
		}
	}
	// BerryBees-style preprocessing: relabel vertices in BFS order from the
	// hub so neighborhoods pack into nearby bitmap columns, raising the
	// 8×128 block fill (part of the format construction, done once).
	g, src := Relabel(g0, src)
	d := &caseData{g: g, slices: graph.ToSliceSet(g), source: src}
	w.cache[c.Dataset] = d
	return d, nil
}

// counters accumulates the measured work of one traversal.
type counters struct {
	bmma       float64 // bit MMAs (or their scalar replacements)
	blockLoads float64 // 8×128 bitmap blocks fetched
	segChecks  float64 // frontier-segment emptiness tests
	frontierW  float64 // frontier words read + written
	edges      float64 // baseline: edges relaxed
	statusOps  float64 // baseline: status-array accesses
	levels     float64
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	res := &workload.Result{
		Work:       float64(d.g.Edges()),
		MetricName: "GTEPS",
	}
	var levels []int32
	var ct counters
	switch v {
	case workload.TC, workload.CC:
		levels, ct = bitmapBFS(d)
		res.InputUtil = d.slices.FillRatio(d.g.Edges())
		res.OutputUtil = 1.0 / mmu.BitN // one output column consumed
	case workload.CCE:
		// The traversal (including settled-slice skipping) is identical;
		// CC-E only replaces the bit MMA with essential scalar word ops,
		// which is why it performs like TC for BFS (Section 6.3).
		levels, ct = bitmapBFS(d)
	case workload.Baseline:
		levels, ct = topDownBFS(d)
	default:
		return nil, fmt.Errorf("bfs: unknown variant %q", v)
	}
	switch v {
	case workload.TC:
		res.Profile = tcProfile(ct)
	case workload.CC:
		res.Profile = ccProfile(ct)
	case workload.CCE:
		res.Profile = cceProfile(ct)
	case workload.Baseline:
		res.Profile = baselineProfile(ct, d)
	}
	out := make([]float64, len(levels))
	for i, l := range levels {
		out[i] = float64(l)
	}
	res.Output = out
	return res, nil
}

// Reference implements workload.Workload: a serial queue-based BFS.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	levels := make([]float64, d.g.N)
	for i := range levels {
		levels[i] = -1
	}
	queue := []int32{int32(d.source)}
	levels[d.source] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range d.g.Adj(int(v)) {
			if levels[u] < 0 {
				levels[u] = levels[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return levels, nil
}

// Relabel renumbers vertices by BFS visit order from src (unreached
// vertices keep their relative order at the end) and returns the relabeled
// graph plus the new source id (always 0). Exported for the ablation study
// of the BerryBees preprocessing step.
func Relabel(g *graph.Graph, src int) (*graph.Graph, int) {
	order := make([]int32, 0, g.N)
	newID := make([]int32, g.N)
	for i := range newID {
		newID[i] = -1
	}
	queue := []int32{int32(src)}
	newID[src] = 0
	order = append(order, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Adj(int(v)) {
			if newID[u] < 0 {
				newID[u] = int32(len(order))
				order = append(order, u)
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < g.N; v++ {
		if newID[v] < 0 {
			newID[v] = int32(len(order))
			order = append(order, int32(v))
		}
	}
	edges := make([][2]int32, 0, g.Edges())
	for v := 0; v < g.N; v++ {
		for _, u := range g.Adj(v) {
			edges = append(edges, [2]int32{newID[v], newID[u]})
		}
	}
	return graph.FromEdges(g.N, edges), 0
}

// bitmapBFS is the BerryBees pull traversal: each level, every slice with
// unvisited rows intersects its adjacency blocks with the frontier bitmap
// via the bit MMA; rows with a nonzero popcount join the next frontier.
// Settled slices are skipped (part of the BerryBees algorithm).
func bitmapBFS(d *caseData) ([]int32, counters) {
	g, s := d.g, d.slices
	var ct counters
	levels := make([]int32, g.N)
	for i := range levels {
		levels[i] = -1
	}
	levels[d.source] = 0
	frontier := graph.NewFrontier(g.N)
	frontier.Set(d.source)
	visited := graph.NewFrontier(g.N)
	visited.Set(d.source)

	for level := int32(1); !frontier.Empty(); level++ {
		ct.levels++
		ct.frontierW += float64(len(frontier.Words)) * 2
		next := graph.NewFrontier(g.N)
		for si := 0; si < s.RowSlices; si++ {
			// Skip slices whose eight vertices are all settled.
			allVisited := true
			for r := 0; r < 8; r++ {
				v := si*8 + r
				if v < g.N && levels[v] < 0 {
					allVisited = false
					break
				}
			}
			if allVisited {
				continue
			}
			// The slice's whole block run executes as one BMMAPanel sweep:
			// the SoA layout hands the packed bit payloads and column
			// segments over directly, blocks whose frontier segment is empty
			// are skipped inside the sweep, and the executed count comes
			// back for the measured-work profiles.
			p0, p1 := s.SlicePtr[si], s.SlicePtr[si+1]
			var rowHits [8]int32
			n := mmu.BMMAPanel(&rowHits, s.Bits[p0:p1], s.ColSegs[p0:p1], frontier.Words)
			ct.segChecks += float64(p1 - p0)
			ct.blockLoads += float64(n)
			ct.bmma += float64(n)
			for r := 0; r < 8; r++ {
				v := si*8 + r
				if v < g.N && rowHits[r] > 0 && levels[v] < 0 {
					levels[v] = level
					next.Set(v)
				}
			}
		}
		visited.Or(next)
		frontier = next
	}
	return levels, ct
}

// topDownBFS is the Gunrock-class baseline: frontier expansion over CSR
// neighbor lists with a status array.
func topDownBFS(d *caseData) ([]int32, counters) {
	g := d.g
	var ct counters
	levels := make([]int32, g.N)
	for i := range levels {
		levels[i] = -1
	}
	levels[d.source] = 0
	frontier := []int32{int32(d.source)}
	for level := int32(1); len(frontier) > 0; level++ {
		ct.levels++
		var next []int32
		for _, v := range frontier {
			adj := g.Adj(int(v))
			ct.edges += float64(len(adj))
			for _, u := range adj {
				ct.statusOps++
				if levels[u] < 0 {
					levels[u] = level
					next = append(next, u)
				}
			}
		}
		ct.frontierW += float64(len(next))
		frontier = next
	}
	return levels, ct
}

// Profiles, built from the measured traversal counters.

const blockBytes = 8*2*sim.BytesWord + sim.BytesIdx // 8 rows × 2 words + seg id

func tcProfile(ct counters) sim.Profile {
	return sim.Profile{
		BitOps: ct.bmma * mmu.OpsPerBMMA,
		IntOps: ct.segChecks*2 + ct.bmma*16, // segment tests + hit extraction
		// Bitmap blocks are re-read across levels; L2 holds the hot set.
		DRAMBytes: ct.blockLoads*blockBytes*0.6 + ct.frontierW*sim.BytesWord,
		L2Bytes:   ct.blockLoads * blockBytes * 0.4,
		L1Bytes:   ct.bmma * 160, // A block + broadcast B staging
		Launches:  int(ct.levels),
		SyncSteps: ct.levels,
		Overlap:   0.85,
		Eff: sim.Efficiency{
			Bit:  sim.EffModerate,
			DRAM: 0.85, // regularized block-slice streaming
			L2:   0.7,
			L1:   0.9,
		},
	}
}

func ccProfile(ct counters) sim.Profile {
	p := tcProfile(ct)
	// Each 8×128 AND+POPC becomes 16 scalar word ops per row set.
	p.IntOps += ct.bmma * 128
	p.BitOps = 0
	p.Overlap = 0.45
	p.Eff = sim.Efficiency{Vector: 0.4, DRAM: 0.85, L2: 0.7, L1: 0.9}
	return p
}

func cceProfile(ct counters) sim.Profile {
	p := tcProfile(ct)
	// Same traversal with the skipped all-visited slices already reflected
	// in the measured counters; scalar ops replace the bit MMA.
	p.IntOps += ct.bmma * 128
	p.BitOps = 0
	p.Overlap = 0.50
	p.Eff = sim.Efficiency{Vector: 0.4, DRAM: 0.85, L2: 0.7, L1: 0.9}
	return p
}

func baselineProfile(ct counters, d *caseData) sim.Profile {
	return sim.Profile{
		IntOps: ct.edges*4 + ct.statusOps*2,
		// Neighbor lists stream, but the status array is hit at random:
		// one 32-byte transaction class per miss.
		DRAMBytes: ct.edges*sim.BytesIdx + ct.statusOps*sim.BytesIdx*2 +
			ct.frontierW*sim.BytesIdx*2,
		L2Bytes:   ct.statusOps * sim.BytesIdx * 2,
		L1Bytes:   ct.edges * 8,
		Launches:  int(ct.levels) * 2, // expand + contract per level
		SyncSteps: ct.levels,
		Overlap:   0.55,
		Eff: sim.Efficiency{
			Vector: 0.4,
			DRAM:   0.35, // scattered status-array traffic
			L2:     0.5,
			L1:     0.7,
		},
	}
}
