package bfs

import (
	"testing"
)

func TestHybridLevelsMatchReference(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		ref, err := w.Reference(c)
		if err != nil {
			t.Fatal(err)
		}
		h, err := w.RunHybrid(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Levels) != len(ref) {
			t.Fatalf("%s: level count mismatch", c.Name)
		}
		for i := range ref {
			if float64(h.Levels[i]) != ref[i] {
				t.Fatalf("%s: vertex %d level %d, want %v", c.Name, i, h.Levels[i], ref[i])
			}
		}
	}
}

func TestHybridUsesBothDirections(t *testing.T) {
	// On the scale-free graphs the first level (hub's neighbors) is already
	// large, but the tail levels are tiny: both directions should fire for
	// at least some graphs.
	w := New()
	sawPush, sawPull := false, false
	for _, c := range w.Cases() {
		h, err := w.RunHybrid(c)
		if err != nil {
			t.Fatal(err)
		}
		if h.PushLevels > 0 {
			sawPush = true
		}
		if h.PullLevels > 0 {
			sawPull = true
		}
		if h.PushLevels+h.PullLevels == 0 {
			t.Fatalf("%s: no levels traversed", c.Name)
		}
	}
	if !sawPush || !sawPull {
		t.Errorf("hybrid never used both directions (push=%v pull=%v)", sawPush, sawPull)
	}
}

func TestHybridReducesBitMMAs(t *testing.T) {
	// Direction optimization must not increase the bit-MMA count, and must
	// strictly reduce it on at least half the graphs (the tail levels stop
	// paying for full pull sweeps).
	w := New()
	reduced := 0
	for _, c := range w.Cases() {
		h, err := w.RunHybrid(c)
		if err != nil {
			t.Fatal(err)
		}
		if h.PullBMMA > h.PullOnlyBMMA {
			t.Errorf("%s: hybrid issued MORE bit MMAs (%v vs %v)",
				c.Name, h.PullBMMA, h.PullOnlyBMMA)
		}
		if h.PullBMMA < h.PullOnlyBMMA {
			reduced++
		}
	}
	if reduced < 3 {
		t.Errorf("hybrid reduced bit MMAs on only %d/5 graphs", reduced)
	}
}
