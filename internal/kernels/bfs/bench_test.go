package bfs

import "testing"

func BenchmarkBitmapBFSKron(b *testing.B) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.g.Edges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitmapBFS(d)
	}
}

func BenchmarkTopDownBFSKron(b *testing.B) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.g.Edges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topDownBFS(d)
	}
}

func BenchmarkHybridBFSKron(b *testing.B) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.g.Edges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hybridBFS(d)
	}
}
