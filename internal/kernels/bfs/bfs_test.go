package bfs

import (
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "BFS" || w.Quadrant() != 4 {
		t.Fatal("bad metadata")
	}
	if len(w.Cases()) != 5 || w.Repeats() != 2000 {
		t.Fatal("cases / repeats wrong")
	}
	if w.Dwarf() != "Graph traversal" {
		t.Fatal("dwarf wrong")
	}
}

func TestLevelsMatchSerialReference(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		ref, err := w.Reference(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range w.Variants() {
			res, err := w.Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) != len(ref) {
				t.Fatalf("%s/%s: %d levels, want %d", c.Name, v, len(res.Output), len(ref))
			}
			for i := range ref {
				if res.Output[i] != ref[i] {
					t.Fatalf("%s/%s: level of %d = %v, want %v",
						c.Name, v, i, res.Output[i], ref[i])
				}
			}
		}
	}
}

func TestTraversalReachesMostVertices(t *testing.T) {
	w := New()
	for _, c := range w.Cases() {
		res, err := w.Run(c, workload.TC)
		if err != nil {
			t.Fatal(err)
		}
		reached := 0
		for _, l := range res.Output {
			if l >= 0 {
				reached++
			}
		}
		if reached < len(res.Output)/3 {
			t.Errorf("%s: traversal reached only %d/%d vertices",
				c.Name, reached, len(res.Output))
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	w := New()
	d, err := w.data(w.Representative())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.source != 0 {
		t.Errorf("relabeled source = %d, want 0", d.source)
	}
}

func TestBitMMAOnlyOnTC(t *testing.T) {
	w := New()
	c := w.Representative()
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	bl, _ := w.Run(c, workload.Baseline)
	if tc.Profile.BitOps <= 0 {
		t.Error("TC must issue bit MMAs")
	}
	if cc.Profile.BitOps != 0 || bl.Profile.BitOps != 0 {
		t.Error("CC/baseline must not issue bit MMAs")
	}
	if tc.OutputUtil != 0.125 {
		t.Errorf("output utilization %v, want 1/8", tc.OutputUtil)
	}
	if tc.InputUtil <= 0 || tc.InputUtil > 1 {
		t.Errorf("input utilization %v invalid", tc.InputUtil)
	}
}

func TestPerformanceShape(t *testing.T) {
	// Paper: 2.6×, 3.0×, 2.7× over Gunrock on A100/H200/B200 (averaged);
	// CC and CC-E stay close to TC (Quadrant IV, Sections 6.2–6.3).
	w := New()
	speedups := map[string][]float64{}
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		cce, _ := w.Run(c, workload.CCE)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tCCE := sim.Run(spec, cce.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			speedups[spec.Name] = append(speedups[spec.Name], tBL/tTC)
			if tBL <= tTC {
				t.Errorf("%s/%s: TC not faster than Gunrock-class baseline",
					c.Name, spec.Name)
			}
			if r := tTC / tCC; r < 0.8 || r > 1.0 {
				t.Errorf("%s/%s: CC/TC %v outside [0.8, 1.0]", c.Name, spec.Name, r)
			}
			if r := tTC / tCCE; r < 0.8 || r > 1.05 {
				t.Errorf("%s/%s: CC-E/TC %v outside [0.8, 1.05]", c.Name, spec.Name, r)
			}
		}
	}
	for dev, sps := range speedups {
		var sum float64
		for _, s := range sps {
			sum += s
		}
		avg := sum / float64(len(sps))
		if avg < 1.8 || avg > 4.5 {
			t.Errorf("%s: average TC speedup %v outside [1.8, 4.5]", dev, avg)
		}
	}
}

func TestUnknownVariantAndCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Dataset: "zzz"}, workload.TC); err == nil {
		t.Error("unknown dataset accepted")
	}
}
