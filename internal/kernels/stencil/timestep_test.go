package stencil

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lcg"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func randomGrid(n int, seed int64) *tensor.Matrix {
	m := tensor.NewMatrix(n, n)
	lcg.New(seed).Fill(m.Data)
	return m
}

func TestSweepNZeroStepsIsIdentity(t *testing.T) {
	u := randomGrid(32, 1)
	out, err := SweepN(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(u) {
		t.Fatal("zero steps changed the grid")
	}
	if out == u {
		t.Fatal("SweepN must not alias its input")
	}
}

func TestSweepNMatchesIteratedSweep(t *testing.T) {
	u := randomGrid(40, 2)
	three, err := SweepN(u, 3)
	if err != nil {
		t.Fatal(err)
	}
	step := sweepMMA(sweepMMA(sweepMMA(u.Clone())))
	if !three.Equal(step) {
		t.Fatal("SweepN(3) differs from three manual sweeps")
	}
}

func TestDiffusionSmooths(t *testing.T) {
	// The stencil weights form a (sub-stochastic) averaging operator:
	// repeated application must shrink the grid's variance — the physical
	// invariant of a diffusion step.
	u := randomGrid(64, 3)
	variance := func(m *tensor.Matrix) float64 {
		var sum, sumSq float64
		for _, v := range m.Data {
			sum += v
			sumSq += v * v
		}
		n := float64(len(m.Data))
		mean := sum / n
		return sumSq/n - mean*mean
	}
	v0 := variance(u)
	out, err := SweepN(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	v10 := variance(out)
	if v10 >= v0*0.5 {
		t.Fatalf("diffusion did not smooth: variance %v → %v", v0, v10)
	}
	// And the field must decay toward zero with the absorbing boundary.
	var maxAbs float64
	for _, v := range out.Data {
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
	}
	if maxAbs >= 2 {
		t.Fatalf("field grew: max %v", maxAbs)
	}
}

func TestSweepNRejectsNegative(t *testing.T) {
	if _, err := SweepN(randomGrid(8, 4), -1); err == nil {
		t.Fatal("negative steps accepted")
	}
}

func TestSweepNProfileScales(t *testing.T) {
	p1 := SweepNProfile(1024, 1024, 1)
	p100 := SweepNProfile(1024, 1024, 100)
	if p100.TensorFLOPs != 100*p1.TensorFLOPs {
		t.Error("FLOPs do not scale with steps")
	}
	if p100.SyncSteps != 100 {
		t.Error("steps must serialize")
	}
	r := sim.Run(device.H200(), p100)
	if r.Time <= sim.Run(device.H200(), p1).Time*50 {
		t.Error("100 steps should cost ≈100 sweeps")
	}
}
