package stencil

import (
	"fmt"

	"repro/internal/mmu"
	"repro/internal/par"
)

// Grid3D is a dense nx×ny×nz field stored z-major within rows (index
// (i·ny + j)·nz + k).
type Grid3D struct {
	NX, NY, NZ int
	Data       []float64
}

// NewGrid3D allocates a zeroed grid.
func NewGrid3D(nx, ny, nz int) *Grid3D {
	return &Grid3D{NX: nx, NY: ny, NZ: nz, Data: make([]float64, nx*ny*nz)}
}

// At returns the value at (i, j, k), zero outside the grid (the absorbing
// boundary the 2D path uses too).
func (g *Grid3D) At(i, j, k int) float64 {
	if i < 0 || i >= g.NX || j < 0 || j >= g.NY || k < 0 || k >= g.NZ {
		return 0
	}
	return g.Data[(i*g.NY+j)*g.NZ+k]
}

// Set assigns the value at (i, j, k); out-of-range writes are dropped.
func (g *Grid3D) Set(i, j, k int, v float64) {
	if i < 0 || i >= g.NX || j < 0 || j >= g.NY || k < 0 || k >= g.NZ {
		return
	}
	g.Data[(i*g.NY+j)*g.NZ+k] = v
}

// Sweep3DMMA applies one star3d1r (7-point) sweep on the MMA path: three
// band passes — along z, along y, along x — each computed as chains of
// m8n8k4 MMAs against a constant band operand, with the center weight
// carried only by the first pass. Mirrors the 2D LoRaStencil structure.
func Sweep3DMMA(u *Grid3D) (*Grid3D, error) {
	if u.NX < 1 || u.NY < 1 || u.NZ < 1 {
		return nil, fmt.Errorf("stencil: empty 3D grid %dx%dx%d", u.NX, u.NY, u.NZ)
	}
	out := NewGrid3D(u.NX, u.NY, u.NZ)
	bandC := bandMatrixB(wCenter) // 12×8, center weight included
	band0 := bandMatrixB(0)       // 12×8, neighbors only

	// pass applies a 1D band along the fastest-varying axis of an
	// (outer, lines, points) view: gather takes (line, point) to a value,
	// scatter accumulates the result. Each 8-line tile row scatters to a
	// disjoint set of grid elements within the pass, so the line-tile grid
	// runs on the par worker pool (passes themselves stay sequential).
	pass := func(lines, points int, band []float64,
		gather func(line, pt int) float64, scatter func(line, pt int, v float64)) {
		lineTiles := (lines + 7) / 8
		par.ForTiles(lineTiles, func(tlo, thi int) {
			buf := sweepScratch.Get()
			defer sweepScratch.Put(buf)
			lineExt := buf[0:96] // 8 lines × (8 points + halo)
			acc := buf[96:160]
			aPanel := buf[160:256] // lineExt repacked as 3 MMA A tiles
			for lt := tlo; lt < thi; lt++ {
				l0 := lt * 8
				for p0 := 0; p0 < points; p0 += 8 {
					for r := 0; r < 8; r++ {
						for c := 0; c < 12; c++ {
							if l0+r < lines {
								lineExt[r*12+c] = gatherSafe(gather, l0+r, p0+c-1, points)
							} else {
								lineExt[r*12+c] = 0
							}
						}
					}
					for i := range acc {
						acc[i] = 0
					}
					// The 12×8 band operand is already a 3-tile B panel;
					// repack the gathered lines as the matching A panel and
					// run the band product as one fused k-sweep.
					mmu.PackA(aPanel, lineExt, 12, 3)
					mmu.DMMAPanel(acc, aPanel, band, 3)
					for r := 0; r < 8 && l0+r < lines; r++ {
						for c := 0; c < 8 && p0+c < points; c++ {
							scatter(l0+r, p0+c, acc[r*8+c])
						}
					}
				}
			}
		})
	}

	nx, ny, nz := u.NX, u.NY, u.NZ
	// Pass 1 (z axis, with the center weight): out = band_z(u).
	pass(nx*ny, nz, bandC,
		func(line, pt int) float64 { return u.Data[line*nz+pt] },
		func(line, pt int, v float64) { out.Data[line*nz+pt] = v })
	// Pass 2 (y axis, neighbors only): out += band_y(u).
	pass(nx*nz, ny, band0,
		func(line, pt int) float64 { i, k := line/nz, line%nz; return u.At(i, pt, k) },
		func(line, pt int, v float64) {
			i, k := line/nz, line%nz
			out.Data[(i*ny+pt)*nz+k] += v
		})
	// Pass 3 (x axis, neighbors only): out += band_x(u).
	pass(ny*nz, nx, band0,
		func(line, pt int) float64 { j, k := line/nz, line%nz; return u.At(pt, j, k) },
		func(line, pt int, v float64) {
			j, k := line/nz, line%nz
			out.Data[(pt*ny+j)*nz+k] += v
		})
	return out, nil
}

// gatherSafe pads the one-point halo with zeros.
func gatherSafe(gather func(line, pt int) float64, line, pt, points int) float64 {
	if pt < 0 || pt >= points {
		return 0
	}
	return gather(line, pt)
}

// Sweep3DDirect is the direct 7-point reference with separate multiply and
// add, x-planes executed on the par worker pool.
func Sweep3DDirect(u *Grid3D) *Grid3D {
	out := NewGrid3D(u.NX, u.NY, u.NZ)
	par.ForTiles(u.NX, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < u.NY; j++ {
				for k := 0; k < u.NZ; k++ {
					v := wCenter * u.At(i, j, k)
					v += wSide * u.At(i-1, j, k)
					v += wSide * u.At(i+1, j, k)
					v += wSide * u.At(i, j-1, k)
					v += wSide * u.At(i, j+1, k)
					v += wSide * u.At(i, j, k-1)
					v += wSide * u.At(i, j, k+1)
					out.Set(i, j, k, v)
				}
			}
		}
	})
	return out
}
