package stencil

import (
	"math"
	"testing"

	"repro/internal/lcg"
)

func randomGrid3D(nx, ny, nz int, seed int64) *Grid3D {
	g := NewGrid3D(nx, ny, nz)
	lcg.New(seed).Fill(g.Data)
	return g
}

func TestSweep3DMatchesDirect(t *testing.T) {
	for _, dims := range [][3]int{{16, 16, 16}, {8, 24, 10}, {3, 5, 7}, {1, 1, 1}} {
		u := randomGrid3D(dims[0], dims[1], dims[2], int64(dims[0]*100+dims[1]))
		mma, err := Sweep3DMMA(u)
		if err != nil {
			t.Fatal(err)
		}
		direct := Sweep3DDirect(u)
		var maxErr float64
		for i := range mma.Data {
			if d := math.Abs(mma.Data[i] - direct.Data[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > 1e-14 {
			t.Errorf("%v: MMA sweep deviates by %v from the direct 7-point", dims, maxErr)
		}
	}
}

func TestSweep3DConstantField(t *testing.T) {
	// Interior of a field of ones: center + 6·side = 0.52 + 0.72 = 1.24.
	u := NewGrid3D(12, 12, 12)
	for i := range u.Data {
		u.Data[i] = 1
	}
	out, err := Sweep3DMMA(u)
	if err != nil {
		t.Fatal(err)
	}
	want := wCenter + 6*wSide
	if v := out.At(6, 6, 6); math.Abs(v-want) > 1e-14 {
		t.Errorf("interior = %v, want %v", v, want)
	}
	// A corner loses three neighbors.
	wantCorner := wCenter + 3*wSide
	if v := out.At(0, 0, 0); math.Abs(v-wantCorner) > 1e-14 {
		t.Errorf("corner = %v, want %v", v, wantCorner)
	}
}

func TestSweep3DInputUntouched(t *testing.T) {
	u := randomGrid3D(10, 10, 10, 5)
	orig := append([]float64(nil), u.Data...)
	if _, err := Sweep3DMMA(u); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if u.Data[i] != orig[i] {
			t.Fatal("sweep modified its input")
		}
	}
}

func TestSweep3DRejectsEmpty(t *testing.T) {
	if _, err := Sweep3DMMA(&Grid3D{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestGrid3DBoundary(t *testing.T) {
	g := NewGrid3D(2, 2, 2)
	g.Set(1, 1, 1, 5)
	if g.At(1, 1, 1) != 5 || g.At(-1, 0, 0) != 0 || g.At(0, 0, 2) != 0 {
		t.Fatal("boundary semantics wrong")
	}
	g.Set(5, 5, 5, 1) // dropped silently
	for _, v := range g.Data {
		if v != 0 && v != 5 {
			t.Fatal("out-of-range write leaked")
		}
	}
}
