package stencil

import (
	"testing"

	"repro/internal/lcg"
	"repro/internal/tensor"
)

func benchSweep(b *testing.B, f func(*tensor.Matrix) *tensor.Matrix) {
	u := tensor.NewMatrix(512, 512)
	lcg.New(1).Fill(u.Data)
	b.SetBytes(int64(len(u.Data) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(u)
	}
}

func BenchmarkSweepMMA512(b *testing.B)    { benchSweep(b, sweepMMA) }
func BenchmarkSweepDirect512(b *testing.B) { benchSweep(b, sweepDirect) }
