package stencil

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Time-stepped diffusion: an application-level extension beyond the
// single-sweep Table 2 benchmark. Real stencil applications iterate the
// sweep (heat diffusion, wave propagation); this runs the LoRaStencil-style
// MMA sweep for many steps with double buffering and exposes the aggregate
// execution profile.

// SweepN advances u by steps applications of the star2d1r stencil on the
// MMA path, returning the final grid. The input is not modified.
func SweepN(u *tensor.Matrix, steps int) (*tensor.Matrix, error) {
	if steps < 0 {
		return nil, fmt.Errorf("stencil: negative step count %d", steps)
	}
	cur := u.Clone()
	for s := 0; s < steps; s++ {
		cur = sweepMMA(cur)
	}
	return cur, nil
}

// SweepNProfile returns the execution profile of a steps-long 2D diffusion
// run on an nx×ny grid: one TC sweep per step, launched back to back.
func SweepNProfile(nx, ny, steps int) sim.Profile {
	p := profileFor(float64(nx)*float64(ny), false, workload.TC)
	p.Scale(float64(steps))
	p.SyncSteps = float64(steps) // steps are serially dependent
	return p
}
