package stencil

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Stencil" || w.Quadrant() != 1 {
		t.Fatal("bad metadata")
	}
	cs := w.Cases()
	if len(cs) != 5 || len(cs[0].Dims) != 2 || len(cs[4].Dims) != 3 {
		t.Fatal("Table 2 cases wrong")
	}
	if w.Repeats() != 5000 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestVariantsNearReference(t *testing.T) {
	w := New()
	c := w.Representative()
	ref, err := w.Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w.Variants() {
		res, err := w.Run(c, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != len(ref) {
			t.Fatalf("%s: output length %d want %d", v, len(res.Output), len(ref))
		}
		for i := range ref {
			if d := math.Abs(res.Output[i] - ref[i]); d > 1e-14 {
				t.Fatalf("%s: error %v at %d", v, d, i)
			}
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	cc, _ := w.Run(w.Representative(), workload.CC)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			t.Fatalf("TC and CC differ at %d", i)
		}
	}
}

func TestTCDiffersFromBaselineInRounding(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	bl, _ := w.Run(w.Representative(), workload.Baseline)
	same := true
	for i := range tc.Output {
		if tc.Output[i] != bl.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("band-pass and direct sweeps are bit-identical; orders should differ")
	}
}

func TestSweepOnConstantField(t *testing.T) {
	// On a field of ones: interior points map to center + 4·side = 1.0,
	// corners lose two neighbors (0.76), edges one (0.88).
	u := onesGrid(32, 32)
	for name, sweep := range map[string]func() []float64{
		"mma":    func() []float64 { return sweepMMA(u).Data },
		"direct": func() []float64 { return sweepDirect(u).Data },
	} {
		out := sweep()
		if v := out[16*32+16]; math.Abs(v-1.0) > 1e-15 {
			t.Errorf("%s: interior = %v, want 1", name, v)
		}
		if v := out[0]; math.Abs(v-(wCenter+2*wSide)) > 1e-15 {
			t.Errorf("%s: corner = %v, want %v", name, v, wCenter+2*wSide)
		}
		if v := out[16]; math.Abs(v-(wCenter+3*wSide)) > 1e-15 {
			t.Errorf("%s: edge = %v, want %v", name, v, wCenter+3*wSide)
		}
	}
}

func TestLargeCasesProfileOnly(t *testing.T) {
	w := New()
	for _, c := range w.Cases()[1:] {
		res, err := w.Run(c, workload.TC)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != nil {
			t.Errorf("%s: should be profile-only", c.Name)
		}
		if res.Profile.TensorFLOPs <= 0 {
			t.Errorf("%s: missing profile", c.Name)
		}
	}
	// 3D cases carry the 7-point essential work.
	res, _ := w.Run(w.Cases()[3], workload.TC)
	want := 14.0 * 512 * 512 * 512
	if res.Work != want {
		t.Errorf("3D essential work %v, want %v", res.Work, want)
	}
}

func TestPerformanceShape(t *testing.T) {
	// Paper: strong TC acceleration over DRStencil (≈2.4–2.7×); CC drops to
	// roughly half of TC (Figure 5, Quadrant I).
	w := New()
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			if sp := tBL / tTC; sp < 1.5 || sp > 3.2 {
				t.Errorf("%s/%s: TC speedup %v outside [1.5, 3.2]", c.Name, spec.Name, sp)
			}
			if r := tTC / tCC; r < 0.35 || r > 0.75 {
				t.Errorf("%s/%s: CC/TC %v outside [0.35, 0.75]", c.Name, spec.Name, r)
			}
		}
	}
}

func TestMemoryBoundTC(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Cases()[2], workload.TC)
	r := sim.Run(device.H200(), tc.Profile)
	if r.Bottleneck != "DRAM" {
		t.Errorf("bottleneck = %s, want DRAM (streaming stencil)", r.Bottleneck)
	}
}

func onesGrid(nx, ny int) *tensor.Matrix {
	m := tensor.NewMatrix(nx, ny)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}

func TestUnknownVariantAndBadCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "bad", Dims: []int{4}}, workload.TC); err == nil {
		t.Error("malformed case accepted")
	}
	if _, err := w.Reference(w.Cases()[4]); err == nil {
		t.Error("3D reference should exceed budget")
	}
}
