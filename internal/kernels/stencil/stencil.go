// Package stencil implements the Stencil workload following LoRaStencil
// (Zhang et al., SC '24) at FP64: star stencils are decomposed into 1D band
// passes, each executed as small matrix products against a constant band
// matrix held in constant memory — Quadrant I: full input and output, with
// the B operand loaded once and reused (Figure 2).
//
// Cases are star2d1r (5-point) on 1K², 5K², and 10K² grids and star3d1r
// (7-point) on 512³ and 1K³ grids (Table 2).
package stencil

import (
	"fmt"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// computeBudget caps the number of grid points a case executes for real.
const computeBudget = 1 << 21

// Star weights for the radius-1 star stencils. Deliberately non-dyadic so
// every multiply rounds (dyadic weights would make all products exact and
// hide the accumulation-order effects Table 6 studies).
const (
	wCenter = 0.52
	wSide   = 0.12 // each of the 4 (2D) or 6 (3D) neighbors
)

// Workload is the Stencil kernel.
type Workload struct{}

// New returns the Stencil workload.
func New() *Workload { return &Workload{} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "Stencil" }

// Quadrant implements workload.Workload (Figure 2, Quadrant I).
func (*Workload) Quadrant() int { return 1 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Structured grids" }

// Cases returns the five Table 2 grids. Dims is [nx, ny] for star2d1r and
// [nx, ny, nz] for star3d1r.
func (*Workload) Cases() []workload.Case {
	return []workload.Case{
		{Name: "star2d1r-1Kx1K", Dims: []int{1024, 1024}},
		{Name: "star2d1r-5Kx5K", Dims: []int{5120, 5120}},
		{Name: "star2d1r-10Kx10K", Dims: []int{10240, 10240}},
		{Name: "star3d1r-512", Dims: []int{512, 512, 512}},
		{Name: "star3d1r-1K", Dims: []int{1024, 1024, 1024}},
	}
}

// Variants implements workload.Workload. CC-E ≡ CC for Quadrant I.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC}
}

// Representative implements workload.Workload.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 5000 }

func points(c workload.Case) (float64, error) {
	if len(c.Dims) != 2 && len(c.Dims) != 3 {
		return 0, fmt.Errorf("stencil: case %q needs 2 or 3 dims", c.Name)
	}
	p := 1.0
	for _, d := range c.Dims {
		p *= float64(d)
	}
	return p, nil
}

func input2D(nx, ny int) *tensor.Matrix {
	g := lcg.New(int64(nx)*13 + int64(ny))
	m := tensor.NewMatrix(nx, ny)
	g.Fill(m.Data)
	return m
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	pts, err := points(c)
	if err != nil {
		return nil, err
	}
	threeD := len(c.Dims) == 3
	flopsPerPoint := 10.0 // 5-point star: 5 multiply-adds
	if threeD {
		flopsPerPoint = 14 // 7-point star
	}
	res := &workload.Result{
		Work:       pts * flopsPerPoint,
		MetricName: "GFLOPS",
	}
	switch v {
	case workload.TC:
		res.Profile = profileFor(pts, threeD, workload.TC)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.CC, workload.CCE:
		res.Profile = profileFor(pts, threeD, workload.CC)
		res.InputUtil, res.OutputUtil = 1, 1
	case workload.Baseline:
		res.Profile = profileFor(pts, threeD, workload.Baseline)
	default:
		return nil, fmt.Errorf("stencil: unknown variant %q", v)
	}
	if !threeD && pts <= computeBudget {
		u := input2D(c.Dims[0], c.Dims[1])
		switch v {
		case workload.TC, workload.CC, workload.CCE:
			res.Output = sweepMMA(u).Data
		case workload.Baseline:
			res.Output = sweepDirect(u).Data
		}
	}
	return res, nil
}

// Reference implements workload.Workload: a direct 5-point sweep with
// separate multiply and add.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	pts, err := points(c)
	if err != nil {
		return nil, err
	}
	if len(c.Dims) != 2 || pts > computeBudget {
		return nil, fmt.Errorf("stencil: case %q exceeds the compute budget", c.Name)
	}
	u := input2D(c.Dims[0], c.Dims[1])
	out := tensor.NewMatrix(u.Rows, u.Cols)
	at := func(i, j int) float64 {
		if i < 0 || i >= u.Rows || j < 0 || j >= u.Cols {
			return 0
		}
		return u.At(i, j)
	}
	par.ForTiles(u.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < u.Cols; j++ {
				v := wCenter * at(i, j)
				v += wSide * at(i-1, j)
				v += wSide * at(i+1, j)
				v += wSide * at(i, j-1)
				v += wSide * at(i, j+1)
				out.Set(i, j, v)
			}
		}
	})
	return out.Data, nil
}

// bandMatrixB builds the 12×8 horizontal band operand: column j of the
// output pulls inputs j-1, j, j+1 (offset by the one-column halo), weighted
// (side, center, side). centerWeight lets the vertical pass zero the center
// to avoid double-counting it.
func bandMatrixB(centerWeight float64) []float64 {
	b := make([]float64, 12*8)
	for j := 0; j < 8; j++ {
		b[j*8+j] = wSide // input col j-1 (halo offset)
		b[(j+1)*8+j] = centerWeight
		b[(j+2)*8+j] = wSide
	}
	return b
}

// bandMatrixA is the 8×12 vertical band operand: row i of the output pulls
// input rows i-1, i, i+1 with weights (side, centerWeight, side).
func bandMatrixA(centerWeight float64) []float64 {
	a := make([]float64, 8*12)
	for i := 0; i < 8; i++ {
		a[i*12+i] = wSide
		a[i*12+i+1] = centerWeight
		a[i*12+i+2] = wSide
	}
	return a
}

// sweepScratch pools the per-sweep staging of sweepMMA and the Sweep3DMMA
// band passes: one haloed line/operand panel (96), the 8×8 accumulator, and
// a second 3-tile operand panel (96).
var sweepScratch = par.NewScratch(96 + 64 + 96)

// sweepMMA executes one star2d1r sweep in the LoRaStencil style: per 8×8
// tile, a horizontal band product X_ext(8×12)·B(12×8) plus a vertical band
// product A(8×12)·X_ext(12×8) with a zeroed center weight, each run as one
// fused 3-tile k-sweep on the panel engine. The constant 12×8 band matrix is
// already a 3-tile B panel (row-major 4×8 tiles), the constant 8×12 vertical
// A operand is packed once per sweep, and the haloed grid tiles pack
// straight from u via PackAPanel/PackBPanel — no per-k-step segment copies.
// The per-element FMA chains keep the ascending-k order of the old loops, so
// results are bit-identical (CUBIE_NO_PANEL=1 verifies). Output tiles are
// disjoint, so the tile-row grid runs on the par worker pool.
func sweepMMA(u *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(u.Rows, u.Cols)
	bH := bandMatrixB(wCenter) // 12×8 row-major ≡ 3-tile B panel
	aVPanel := make([]float64, 3*mmu.M*mmu.K)
	mmu.PackA(aVPanel, bandMatrixA(0), 12, 3)
	rowTiles := (u.Rows + 7) / 8
	par.ForTiles(rowTiles, func(lo, hi int) {
		buf := sweepScratch.Get()
		defer sweepScratch.Put(buf)
		aPanelH := buf[0:96]    // horizontal pass: haloed tile as 3 A tiles
		acc := buf[96:160]      // accumulates both passes
		bPanelV := buf[160:256] // vertical pass: haloed tile as 3 B tiles
		for ti := lo; ti < hi; ti++ {
			i0 := ti * 8
			for j0 := 0; j0 < u.Cols; j0 += 8 {
				u.PackAPanel(aPanelH, i0, j0-1, 3)
				u.PackBPanel(bPanelV, i0-1, j0, 3)
				for i := range acc {
					acc[i] = 0
				}
				// Horizontal: acc += X_ext · B, fused 3-tile k-sweep.
				mmu.DMMAPanel(acc, aPanelH, bH, 3)
				// Vertical: acc += A · X_ext, center weight zero.
				mmu.DMMAPanel(acc, aVPanel, bPanelV, 3)
				out.SetTile(acc, i0, j0, 8, 8)
			}
		}
	})
	return out
}

// sweepDirect is the DRStencil-class vector baseline: a direct 5-point
// gather per point with FMA contraction in fixed neighbor order, rows
// executed on the par worker pool.
func sweepDirect(u *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(u.Rows, u.Cols)
	at := func(i, j int) float64 {
		if i < 0 || i >= u.Rows || j < 0 || j >= u.Cols {
			return 0
		}
		return u.At(i, j)
	}
	par.ForTiles(u.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < u.Cols; j++ {
				v := mmu.FMA(wCenter, at(i, j), 0)
				v = mmu.FMA(wSide, at(i-1, j), v)
				v = mmu.FMA(wSide, at(i+1, j), v)
				v = mmu.FMA(wSide, at(i, j-1), v)
				v = mmu.FMA(wSide, at(i, j+1), v)
				out.Set(i, j, v)
			}
		}
	})
	return out
}

// Profiles. Per point, the TC version issues 6 MMAs per 8×8 tile in 2D
// (48 FLOPs/point) and 9 per tile in 3D (72 FLOPs/point); the band operands
// come from constant memory.

func profileFor(pts float64, threeD bool, v workload.Variant) sim.Profile {
	mmaFLOPs := 48.0
	passes := 2.0
	if threeD {
		mmaFLOPs = 72
		passes = 3
	}
	switch v {
	case workload.TC:
		return sim.Profile{
			TensorFLOPs: pts * mmaFLOPs,
			DRAMBytes:   2 * pts * sim.BytesF64, // streamed read + write
			ConstBytes:  pts * passes,           // band matrices, broadcast
			L1Bytes:     pts * 24,               // halo tiles staged in shared memory
			Launches:    1,
			Overlap:     0.90,
			Eff: sim.Efficiency{
				Tensor: 0.55,
				DRAM:   0.92, // block layout streams the grid
				L1:     0.9,
			},
		}
	case workload.CC, workload.CCE:
		return sim.Profile{
			VectorFLOPs: pts * mmaFLOPs,
			DRAMBytes:   2 * pts * sim.BytesF64,
			L1Bytes:     pts * 48, // band operands now staged per FMA chain
			Launches:    1,
			Overlap:     0.35,
			Eff: sim.Efficiency{
				Vector: 0.35,
				// Scalar loads lose the MMA's cooperative coalescing.
				DRAM: 0.68,
				L1:   0.9,
			},
		}
	default: // Baseline: DRStencil-class direct gather
		flops := 10.0
		if threeD {
			flops = 14
		}
		return sim.Profile{
			VectorFLOPs: pts * flops,
			// Imperfect halo reuse: ~30% extra neighbor traffic.
			DRAMBytes: 2.6 * pts * sim.BytesF64,
			L1Bytes:   pts * 5 * sim.BytesF64,
			Launches:  1,
			Overlap:   0.70,
			Eff: sim.Efficiency{
				Vector: sim.EffModerate,
				DRAM:   sim.EffModerate,
				L1:     0.8,
			},
		}
	}
}
