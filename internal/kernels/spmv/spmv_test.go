package spmv

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "SpMV" || w.Quadrant() != 4 {
		t.Fatal("bad metadata")
	}
	if len(w.Cases()) != 5 {
		t.Fatal("want 5 Table 4 cases")
	}
	if w.Repeats() != 1_000_000 {
		t.Fatal("Figure 7 repeat count wrong")
	}
}

func TestAllVariantsNearReference(t *testing.T) {
	w := New()
	c := w.Representative()
	ref, err := w.Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w.Variants() {
		res, err := w.Run(c, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) != len(ref) {
			t.Fatalf("%s: length %d want %d", v, len(res.Output), len(ref))
		}
		var maxErr float64
		for i := range ref {
			if d := math.Abs(res.Output[i] - ref[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > 1e-10 {
			t.Errorf("%s: max error %v vs serial reference", v, maxErr)
		}
	}
}

func TestTCIdenticalToCC(t *testing.T) {
	w := New()
	c := w.Representative()
	tc, _ := w.Run(c, workload.TC)
	cc, _ := w.Run(c, workload.CC)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			t.Fatalf("TC and CC differ at %d", i)
		}
	}
}

func TestCCEDeviatesFromTC(t *testing.T) {
	// Section 8: CC-E's reordered accumulation deviates from TC/CC.
	w := New()
	c := w.Representative()
	tc, _ := w.Run(c, workload.TC)
	cce, _ := w.Run(c, workload.CCE)
	same := true
	for i := range tc.Output {
		if tc.Output[i] != cce.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("CC-E output bit-identical to TC; orders should differ")
	}
}

func TestUtilizationPartialOutput(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Representative(), workload.TC)
	if tc.OutputUtil != 0.125 {
		t.Errorf("output utilization %v, want 1/8 (diagonal)", tc.OutputUtil)
	}
	if tc.InputUtil <= 0.5 || tc.InputUtil > 1 {
		t.Errorf("DASP input utilization %v implausible", tc.InputUtil)
	}
}

func TestPerformanceShape(t *testing.T) {
	// Paper targets: TC/baseline 1.7–2.8×; CC retains 60–80% of TC;
	// CC-E outperforms TC by 1.0–1.2× (the SpMV exception, Observation 5).
	w := New()
	speedups := map[string][]float64{}
	for _, c := range w.Cases() {
		tc, _ := w.Run(c, workload.TC)
		cc, _ := w.Run(c, workload.CC)
		cce, _ := w.Run(c, workload.CCE)
		bl, _ := w.Run(c, workload.Baseline)
		for _, spec := range device.All() {
			tTC := sim.Run(spec, tc.Profile).Time
			tCC := sim.Run(spec, cc.Profile).Time
			tCCE := sim.Run(spec, cce.Profile).Time
			tBL := sim.Run(spec, bl.Profile).Time
			sp := tBL / tTC
			speedups[spec.Name] = append(speedups[spec.Name], sp)
			// Per-case: TC always wins; small matrices on the 8 TB/s B200
			// compress toward 1 as launch latency dominates.
			if sp < 1.15 || sp > 3.5 {
				t.Errorf("%s/%s: TC speedup over baseline %v outside [1.15, 3.5]",
					c.Name, spec.Name, sp)
			}
			if r := tTC / tCC; r < 0.5 || r > 0.9 {
				t.Errorf("%s/%s: CC/TC %v outside [0.5, 0.9]", c.Name, spec.Name, r)
			}
			if r := tTC / tCCE; r < 0.95 || r > 1.35 {
				t.Errorf("%s/%s: CC-E speedup over TC %v outside [0.95, 1.35]",
					c.Name, spec.Name, r)
			}
		}
	}
	// Figure 4 reports the case-averaged speedup; the paper's SpMV range is
	// 1.7–2.8× across GPUs.
	for dev, sps := range speedups {
		var sum float64
		for _, s := range sps {
			sum += s
		}
		avg := sum / float64(len(sps))
		if avg < 1.4 || avg > 3.0 {
			t.Errorf("%s: average TC speedup %v outside [1.4, 3.0]", dev, avg)
		}
	}
}

func TestMemoryBound(t *testing.T) {
	w := New()
	tc, _ := w.Run(w.Cases()[3], workload.TC) // conf5: largest regular
	r := sim.Run(device.H200(), tc.Profile)
	if r.Bottleneck != "DRAM" {
		t.Errorf("SpMV TC bottleneck = %s, want DRAM", r.Bottleneck)
	}
	if ai := tc.Profile.ArithmeticIntensity(); ai > 3 {
		t.Errorf("SpMV arithmetic intensity %v, Figure 9 places it below 3", ai)
	}
}

func TestCacheReuse(t *testing.T) {
	w := New()
	c := w.Representative()
	if _, err := w.Run(c, workload.TC); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	n := len(w.cache)
	w.mu.Unlock()
	if n != 1 {
		t.Fatalf("cache has %d entries, want 1", n)
	}
	if _, err := w.Run(c, workload.CC); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	n = len(w.cache)
	w.mu.Unlock()
	if n != 1 {
		t.Fatal("second run should reuse cached data")
	}
}

func TestUnknownVariantAndCase(t *testing.T) {
	w := New()
	if _, err := w.Run(w.Representative(), "nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := w.Run(workload.Case{Name: "zzz", Dataset: "zzz"}, workload.TC); err == nil {
		t.Error("unknown dataset accepted")
	}
}
