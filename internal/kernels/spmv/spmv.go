// Package spmv implements the SpMV workload using the DASP layout (Lu &
// Liu, SC '23): rows grouped by length into 8-lane blocks of 8×4 nonzero
// segments, each segment executed as one FP64 m8n8k4 MMA whose diagonal
// accumulates the per-row partial dot products. Quadrant IV: full input,
// partial (diagonal) output.
package spmv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/prestage"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Workload is the SpMV kernel. It caches the synthesized Table 4 matrices
// and their DASP layouts across runs.
type Workload struct {
	mu    sync.Mutex
	cache map[string]*caseData
}

type caseData struct {
	mat  *sparse.CSR
	dasp *sparse.DASP
	x    []float64
}

// New returns the SpMV workload.
func New() *Workload { return &Workload{cache: map[string]*caseData{}} }

// Name implements workload.Workload.
func (*Workload) Name() string { return "SpMV" }

// Quadrant implements workload.Workload (Figure 2, Quadrant IV).
func (*Workload) Quadrant() int { return 4 }

// Dwarf implements workload.Workload.
func (*Workload) Dwarf() string { return "Sparse linear algebra" }

// Cases returns the five Table 4 matrices.
func (*Workload) Cases() []workload.Case {
	var cs []workload.Case
	for _, d := range sparse.Table4() {
		cs = append(cs, workload.Case{Name: d.Name, Dataset: d.Name})
	}
	return cs
}

// Variants implements workload.Workload.
func (*Workload) Variants() []workload.Variant {
	return []workload.Variant{workload.Baseline, workload.TC, workload.CC, workload.CCE}
}

// Representative implements workload.Workload: spmsrts, the smallest matrix.
func (w *Workload) Representative() workload.Case { return w.Cases()[0] }

// Repeats implements workload.Workload (Figure 7 loop count).
func (*Workload) Repeats() int { return 1_000_000 }

func (w *Workload) data(c workload.Case) (*caseData, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.cache[c.Dataset]; ok {
		return d, nil
	}
	m, err := sparse.SynthesizeShared(c.Dataset)
	if err != nil {
		return nil, err
	}
	x := make([]float64, m.Cols)
	lcg.New(int64(m.Cols)).Fill(x)
	d := &caseData{mat: m, dasp: sparse.ToDASP(m), x: x}
	w.cache[c.Dataset] = d
	return d, nil
}

// Run implements workload.Workload.
func (w *Workload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	nnz := float64(d.mat.NNZ())
	res := &workload.Result{Work: 2 * nnz, MetricName: "GFLOPS"}
	switch v {
	case workload.TC:
		res.Profile = tcProfile(d)
		res.Output = computeDASPMMA(d)
		res.InputUtil = d.dasp.InputUtilization()
		res.OutputUtil = 1.0 / mmu.N // diagonal of each 8×8 tile
	case workload.CC:
		res.Profile = ccProfile(d)
		res.Output = computeDASPMMA(d) // same algorithm on the vector unit
		res.InputUtil = d.dasp.InputUtilization()
		res.OutputUtil = 1.0 / mmu.N
	case workload.CCE:
		res.Profile = cceProfile(d)
		res.Output = computeEssential(d)
	case workload.Baseline:
		res.Profile = baselineProfile(d)
		res.Output = computeBaseline(d)
	default:
		return nil, fmt.Errorf("spmv: unknown variant %q", v)
	}
	return res, nil
}

// Reference implements workload.Workload: serial CSR SpMV with separate
// multiply and add, ascending column order — the paper's CPU ground truth.
func (w *Workload) Reference(c workload.Case) ([]float64, error) {
	d, err := w.data(c)
	if err != nil {
		return nil, err
	}
	m := d.mat
	y := make([]float64, m.Rows)
	par.ForTiles(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc float64
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				acc += m.Vals[k] * d.x[int(m.ColIdx[k])]
			}
			y[i] = acc
		}
	})
	return y, nil
}

// computeDASPMMA executes the DASP SpMV on the MMA semantics for one case.
func computeDASPMMA(d *caseData) []float64 {
	return ApplyDASP(d.dasp, d.x)
}

// CalibrationRunner returns a closure executing one DASP apply over the named
// dataset — the unit of work `cubie tune` times when sweeping SetSegChunk
// candidates. The layout (and prestaged slabs) are built before the closure
// is returned, so repeated invocations measure only the apply.
func (w *Workload) CalibrationRunner(dataset string) (func(), error) {
	d, err := w.data(workload.Case{Name: dataset, Dataset: dataset})
	if err != nil {
		return nil, err
	}
	d.dasp.Prestage()
	return func() { ApplyDASP(d.dasp, d.x) }, nil
}

// daspScratch pools the per-block C accumulator of ApplyDASP.
var daspScratch = par.NewScratch(mmu.M * mmu.N)

// daspPanelScratch pools the packed operand panels: with the prestaged
// slabs active only the gathered B panel, on the CUBIE_NO_PRESTAGE fallback
// both A and B, sized to the layout's longest block (DASP.MaxSegs).
var daspPanelScratch = par.NewSizedScratch()

// segChunk caps how many segments one DMMAPanel call sweeps (0 = the whole
// block in one call). Splitting the k-sweep keeps the gathered B panel
// inside a chosen cache footprint on long blocks; the accumulator carries
// across chunks, so every chunk size runs the identical ascending-k FMA
// chain per element and the choice is performance-only — `cubie tune`
// calibrates it per host.
var segChunk atomic.Int32

// SetSegChunk sets the DASP segment-chunk size (0 restores the unchunked
// sweep; negative values clamp to 0) and returns the previous value.
func SetSegChunk(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(segChunk.Swap(int32(n)))
}

// SegChunk reports the active DASP segment-chunk size.
func SegChunk() int { return int(segChunk.Load()) }

// segTile is the element count of one packed 8×4 (or 4×8) operand tile.
const segTile = mmu.M * mmu.K

// ApplyDASP computes y = A·x with the DASP tensor-core algorithm: per
// block, the C tile accumulates over all segments (one MMA each, gathering
// x into the per-lane B columns); the diagonal is then extracted. Long-row
// blocks sum their eight lane partials pairwise in lane order. Exported so
// applications (e.g. iterative solvers) can reuse the MMU SpMV as a linear
// operator.
//
// The static A operand comes prepacked from the layout (DASP.APanels, built
// once on the first prestaged apply via DASP.Prestage), and the B gather
// runs 4-wide off the flat prestaged index slab — the hot loop stages no A
// bytes at all and allocates nothing but y. CUBIE_NO_PRESTAGE=1 (prestage.SetEnabled(false)) falls back to
// packing both operands per call from Segments, bit-identical by
// construction since the slab holds exactly the bytes that staging packed.
//
// Blocks are independent — ToDASP assigns each output row to exactly one
// block (long rows occupy all eight lanes of a single block) — so the block
// sweep runs on the par worker pool with bit-identical results for every
// worker count.
func ApplyDASP(dasp *sparse.DASP, x []float64) []float64 {
	y := make([]float64, dasp.Rows)
	if !prestage.Enabled() {
		applyDASPStaged(dasp, x, y)
		return y
	}
	dasp.Prestage()
	chunk := SegChunk()
	par.ForTiles(len(dasp.Blocks), func(lo, hi int) {
		cT := daspScratch.Get()
		defer daspScratch.Put(cT)
		maxB := dasp.MaxSegs
		if chunk > 0 && chunk < maxB {
			maxB = chunk
		}
		bPanel := daspPanelScratch.Get(maxB * segTile)
		defer daspPanelScratch.Put(bPanel)
		for bi := lo; bi < hi; bi++ {
			blk := &dasp.Blocks[bi]
			for i := range cT {
				cT[i] = 0
			}
			segs := int(dasp.SegOff[bi+1] - dasp.SegOff[bi])
			base := int(dasp.SegOff[bi]) * segTile
			// Sweep the prestaged segments in chunks: gather the B panel
			// 4-wide off the flat index slab, run the chunk fused with the
			// prepacked A tiles. The C tile accumulates across chunks, so
			// the per-element FMA chain is the full ascending-k sweep for
			// every chunk size.
			for s0 := 0; s0 < segs; {
				n := segs - s0
				if chunk > 0 && n > chunk {
					n = chunk
				}
				off := base + s0*segTile
				tensor.Gather4(bPanel[:n*segTile], x, dasp.BCols[off:])
				mmu.DMMAPanel(cT, dasp.APanels[off:], bPanel, n)
				s0 += n
			}
			finishDASPBlock(blk, cT, y)
		}
	})
	return y
}

// applyDASPStaged is the CUBIE_NO_PRESTAGE reference route: the per-call
// staging loop the kernel ran before the prestaged slabs, packing both the
// A tiles and the gathered B tiles from Segments on every apply. The panel
// sizing bound comes from DASP.MaxSegs (computed once in ToDASP) rather
// than a per-apply rescan of the blocks.
func applyDASPStaged(dasp *sparse.DASP, x, y []float64) {
	par.ForTiles(len(dasp.Blocks), func(lo, hi int) {
		cT := daspScratch.Get()
		defer daspScratch.Put(cT)
		maxSegs := dasp.MaxSegs
		panels := daspPanelScratch.Get(maxSegs * (mmu.M*mmu.K + mmu.K*mmu.N))
		defer daspPanelScratch.Put(panels)
		aPanel := panels[0 : maxSegs*mmu.M*mmu.K]
		bPanel := panels[maxSegs*mmu.M*mmu.K:]
		for bi := lo; bi < hi; bi++ {
			blk := &dasp.Blocks[bi]
			for i := range cT {
				cT[i] = 0
			}
			for si := range blk.Segments {
				seg := &blk.Segments[si]
				aT := aPanel[si*mmu.M*mmu.K:]
				bT := bPanel[si*mmu.K*mmu.N:]
				for l := 0; l < mmu.M; l++ {
					for k := 0; k < mmu.K; k++ {
						aT[l*mmu.K+k] = seg.Vals[l][k]
						bT[k*mmu.N+l] = x[seg.Cols[l][k]]
					}
				}
			}
			mmu.DMMAPanel(cT, aPanel, bPanel, len(blk.Segments))
			finishDASPBlock(blk, cT, y)
		}
	})
}

// finishDASPBlock extracts the block's diagonal results into y: long-row
// blocks sum their eight lane partials pairwise in lane order, short/medium
// blocks write each live lane's diagonal element.
func finishDASPBlock(blk *sparse.DASPBlock, cT, y []float64) {
	if blk.Category == sparse.LongRow {
		r := blk.RowOf[0]
		var partial [mmu.M]float64
		for l := 0; l < mmu.M; l++ {
			partial[l] = cT[l*mmu.N+l]
		}
		s01 := partial[0] + partial[1]
		s23 := partial[2] + partial[3]
		s45 := partial[4] + partial[5]
		s67 := partial[6] + partial[7]
		y[r] += (s01 + s23) + (s45 + s67)
		return
	}
	for l := 0; l < mmu.M; l++ {
		if r := blk.RowOf[l]; r >= 0 {
			y[r] = cT[l*mmu.N+l]
		}
	}
}

// Operator wraps a sparse matrix in its DASP layout as a reusable y = A·x
// linear operator on the MMU semantics.
type Operator struct {
	dasp *sparse.DASP
}

// NewOperator builds the DASP layout for m once.
func NewOperator(m *sparse.CSR) *Operator {
	return &Operator{dasp: sparse.ToDASP(m)}
}

// Apply computes y = A·x. It panics if len(x) does not match the operator.
func (o *Operator) Apply(x []float64) []float64 {
	if len(x) != o.dasp.Cols {
		panic("spmv: operator dimension mismatch")
	}
	return ApplyDASP(o.dasp, x)
}

// Rows returns the operator's output dimension.
func (o *Operator) Rows() int { return o.dasp.Rows }

// computeEssential is the CC-E path: the DASP layout is kept (its row
// reordering and streaming loads remain beneficial — Observation 5) but only
// the real payload slots are multiplied, with per-slot partial accumulators
// combined at the end. The different accumulation order is what makes CC-E
// deviate numerically from TC/CC (Table 6).
func computeEssential(d *caseData) []float64 {
	y := make([]float64, d.mat.Rows)
	par.ForTiles(len(d.dasp.Blocks), func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			blk := &d.dasp.Blocks[bi]
			var part [mmu.M][sparse.DASPSegWidth]float64
			for si := range blk.Segments {
				seg := &blk.Segments[si]
				for l := 0; l < mmu.M; l++ {
					for k := 0; k < sparse.DASPSegWidth; k++ {
						if seg.Vals[l][k] != 0 {
							part[l][k] = mmu.FMA(seg.Vals[l][k], d.x[seg.Cols[l][k]], part[l][k])
						}
					}
				}
			}
			lane := func(l int) float64 {
				return (part[l][0] + part[l][1]) + (part[l][2] + part[l][3])
			}
			if blk.Category == sparse.LongRow {
				var acc float64
				for l := 0; l < mmu.M; l++ {
					acc += lane(l)
				}
				y[blk.RowOf[0]] += acc
				continue
			}
			for l := 0; l < mmu.M; l++ {
				if r := blk.RowOf[l]; r >= 0 {
					y[r] = lane(l)
				}
			}
		}
	})
	return y
}

// computeBaseline is the cuSPARSE-class CSR SpMV: a warp of 32 lanes per
// row, strided partial sums, binary-tree lane reduction. Rows are
// independent, so the sweep runs on the par worker pool.
func computeBaseline(d *caseData) []float64 {
	m := d.mat
	y := make([]float64, m.Rows)
	par.ForTiles(m.Rows, func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			var part [32]float64
			lo, hi := m.RowPtr[i], m.RowPtr[i+1]
			for k := lo; k < hi; k++ {
				l := (k - lo) % 32
				part[l] = mmu.FMA(m.Vals[k], d.x[int(m.ColIdx[k])], part[l])
			}
			for stride := 16; stride >= 1; stride /= 2 {
				for l := 0; l < stride; l++ {
					part[l] += part[l+stride]
				}
			}
			y[i] = part[0]
		}
	})
	return y
}

// Profiles. All variants are DRAM-bound (Section 6.1: Quadrant IV kernels
// strongly benefit from memory bandwidth).

func segments(d *caseData) float64 {
	return float64(d.dasp.PaddedSlots) / (mmu.M * mmu.K)
}

// gatherMissRate is the fraction of x-vector gathers that miss L2 and pay
// DRAM bandwidth; the rest are served on chip.
const gatherMissRate = 0.3

func tcProfile(d *caseData) sim.Profile {
	nnz := float64(d.mat.NNZ())
	slots := float64(d.dasp.PaddedSlots)
	rows := float64(d.mat.Rows)
	segs := segments(d)
	return sim.Profile{
		TensorFLOPs: segs * mmu.FLOPsPerDMMA,
		IntOps:      slots, // column-index decode for the x gathers
		DRAMBytes: slots*(sim.BytesF64+sim.BytesIdx) +
			nnz*sim.BytesF64*gatherMissRate + rows*sim.BytesF64,
		L2Bytes:  nnz * sim.BytesF64 * (1 - gatherMissRate),
		L1Bytes:  segs * 1024, // A, B, C fragment staging per MMA
		Launches: 1,
		Overlap:  0.88,
		Eff: sim.Efficiency{
			Tensor: sim.EffModerate,
			DRAM:   0.88, // DASP's packed layout streams
			L2:     0.7,
			L1:     0.9,
		},
	}
}

func ccProfile(d *caseData) sim.Profile {
	p := tcProfile(d)
	p.VectorFLOPs, p.TensorFLOPs = p.TensorFLOPs, 0
	p.Overlap = 0.30
	p.Eff = sim.Efficiency{Vector: 0.30, DRAM: 0.88, L2: 0.7, L1: 0.9}
	return p
}

func cceProfile(d *caseData) sim.Profile {
	nnz := float64(d.mat.NNZ())
	rows := float64(d.mat.Rows)
	return sim.Profile{
		VectorFLOPs: 2 * nnz,
		IntOps:      nnz,
		DRAMBytes: nnz*(sim.BytesF64+sim.BytesIdx) +
			nnz*sim.BytesF64*gatherMissRate + rows*sim.BytesF64,
		L2Bytes:  nnz * sim.BytesF64 * (1 - gatherMissRate),
		L1Bytes:  2 * nnz * sim.BytesF64,
		Launches: 1,
		Overlap:  0.70,
		Eff: sim.Efficiency{
			Vector: sim.EffModerate,
			DRAM:   0.88, // keeps DASP's streaming layout (Observation 5)
			L2:     0.7,
			L1:     0.9,
		},
	}
}

func baselineProfile(d *caseData) sim.Profile {
	nnz := float64(d.mat.NNZ())
	rows := float64(d.mat.Rows)
	return sim.Profile{
		VectorFLOPs: 2 * nnz,
		IntOps:      nnz,
		// CSR gathers hit DRAM harder: no packing, irregular x access.
		DRAMBytes: nnz*(sim.BytesF64+sim.BytesIdx) +
			nnz*sim.BytesF64*0.5 + rows*sim.BytesF64,
		L2Bytes:  nnz * sim.BytesF64 * 0.5,
		L1Bytes:  2 * nnz * sim.BytesF64,
		Launches: 1,
		Overlap:  0.60,
		Eff: sim.Efficiency{
			Vector: sim.EffModerate,
			DRAM:   sim.EffModerate, // divergent row lengths underuse BW
			L2:     0.6,
			L1:     0.9,
		},
	}
}
