package spmv

import (
	"math"
	"testing"

	"repro/internal/prestage"
	"repro/internal/sparse"
)

// mixedCSR builds a matrix with short, medium, and long DASP rows so every
// prestage code path (including the lane-split long-row finish) executes.
func mixedCSR(t *testing.T) (*sparse.CSR, []float64) {
	t.Helper()
	const rows, cols = 48, 160
	coo := sparse.NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		var nnz int
		switch {
		case i%12 == 0:
			nnz = 90 // long
		case i%3 == 0:
			nnz = 24 // medium
		default:
			nnz = 1 + i%4 // short
		}
		for k := 0; k < nnz; k++ {
			coo.Add(i, (i*29+k*7)%cols, float64(i+1)+float64(k)*0.0625)
		}
	}
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, cols)
	for j := range x {
		x[j] = 1.0 + float64(j)*0.03125
	}
	return m, x
}

func bitEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: differs bitwise at %d: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestApplyDASPPrestageBitIdentical pins the tentpole contract: consuming
// the prestaged APanels/BCols slabs is bitwise indistinguishable from the
// CUBIE_NO_PRESTAGE per-call staging route, on a matrix covering all three
// row categories.
func TestApplyDASPPrestageBitIdentical(t *testing.T) {
	m, x := mixedCSR(t)
	dasp := sparse.ToDASP(m)
	on := ApplyDASP(dasp, x)
	prev := prestage.SetEnabled(false)
	off := ApplyDASP(dasp, x)
	prestage.SetEnabled(prev)
	bitEqual(t, "prestage on vs off", on, off)

	// Both must also be the true product, not merely mutually consistent.
	for i := 0; i < m.Rows; i++ {
		var acc float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			acc += m.Vals[k] * x[m.ColIdx[k]]
		}
		if d := math.Abs(on[i] - acc); d > 1e-9 {
			t.Fatalf("row %d: prestaged result %v vs scalar %v", i, on[i], acc)
		}
	}
}

// TestApplyDASPChunkSizesBitIdentical pins SetSegChunk as performance-only:
// every chunk size runs the same per-element ascending-k FMA chain (the C
// tile accumulates across chunks), so outputs match the unchunked sweep
// bitwise.
func TestApplyDASPChunkSizesBitIdentical(t *testing.T) {
	m, x := mixedCSR(t)
	dasp := sparse.ToDASP(m)
	base := ApplyDASP(dasp, x)
	for _, chunk := range []int{1, 2, 3, 5, 8, 64} {
		prev := SetSegChunk(chunk)
		got := ApplyDASP(dasp, x)
		SetSegChunk(prev)
		bitEqual(t, "chunked sweep", got, base)
	}
}

// TestSetSegChunk checks the knob round-trips, reports the previous value,
// and clamps negatives to 0.
func TestSetSegChunk(t *testing.T) {
	orig := SegChunk()
	defer SetSegChunk(orig)
	if prev := SetSegChunk(7); prev != orig {
		t.Fatalf("SetSegChunk returned %d, want %d", prev, orig)
	}
	if SegChunk() != 7 {
		t.Fatal("chunk not applied")
	}
	SetSegChunk(-3)
	if SegChunk() != 0 {
		t.Fatalf("negative chunk clamped to %d, want 0", SegChunk())
	}
}

// applyAllocsBudget bounds a warm ApplyDASP call: the output vector plus
// ForTiles bookkeeping; the staging scratch must come from the pools.
const applyAllocsBudget = 64

// TestApplyDASPWarmAllocs is the steady-state allocation contract of the
// prestaged apply: once the pools are warm, no per-block staging allocation
// remains in either mode.
func TestApplyDASPWarmAllocs(t *testing.T) {
	m, x := mixedCSR(t)
	dasp := sparse.ToDASP(m)
	for _, pre := range []bool{true, false} {
		prev := prestage.SetEnabled(pre)
		ApplyDASP(dasp, x) // warm the pools
		n := testing.AllocsPerRun(5, func() { ApplyDASP(dasp, x) })
		prestage.SetEnabled(prev)
		if n > applyAllocsBudget {
			t.Errorf("prestage=%v: %v allocs/run, want ≤ %d", pre, n, applyAllocsBudget)
		}
	}
}

// TestPrestageKnob checks prestage.SetEnabled round-trips and reports the
// previous state, mirroring the CUBIE_NO_PANEL knob idiom.
func TestPrestageKnob(t *testing.T) {
	orig := prestage.Enabled()
	defer prestage.SetEnabled(orig)
	if was := prestage.SetEnabled(false); was != orig {
		t.Fatalf("SetEnabled returned %v, want %v", was, orig)
	}
	if prestage.Enabled() {
		t.Fatal("prestage still enabled")
	}
	if was := prestage.SetEnabled(true); was != false {
		t.Fatal("SetEnabled did not report the disabled state")
	}
}
