package spmv

import (
	"testing"

	"repro/internal/lcg"
	"repro/internal/sparse"
)

func benchOperator(b *testing.B, dataset string) {
	m, err := sparse.Synthesize(dataset)
	if err != nil {
		b.Fatal(err)
	}
	op := NewOperator(m)
	x := make([]float64, m.Cols)
	lcg.New(1).Fill(x)
	b.SetBytes(int64(m.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(x)
	}
}

func BenchmarkOperatorSpmsrts(b *testing.B) { benchOperator(b, "spmsrts") }

func BenchmarkOperatorQCD(b *testing.B) { benchOperator(b, "conf5_4-8x8-10") }

func TestOperatorMatchesWorkload(t *testing.T) {
	w := New()
	c := w.Representative()
	res, err := w.Run(c, "TC")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sparse.Synthesize(c.Dataset)
	op := NewOperator(m)
	x := make([]float64, m.Cols)
	lcg.New(int64(m.Cols)).Fill(x) // the workload's input convention
	y := op.Apply(x)
	for i := range y {
		if y[i] != res.Output[i] {
			t.Fatalf("operator deviates from workload at %d", i)
		}
	}
}

func TestOperatorPanicsOnDimensionMismatch(t *testing.T) {
	m, _ := sparse.Synthesize("spmsrts")
	op := NewOperator(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong input length")
		}
	}()
	op.Apply(make([]float64, 3))
}
