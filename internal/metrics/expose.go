package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): `# HELP` / `# TYPE` headers once per family, then
// one line per series, with histograms expanded into cumulative
// `_bucket{le=...}` / `_sum` / `_count` lines. Zero-valued series are
// included, so the output doubles as an inventory of every instrument the
// process registered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, s := range r.snapshot() {
		if s.name != lastFamily {
			lastFamily = s.name
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.promType()); err != nil {
				return err
			}
		}
		if err := s.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

// promType maps the instrument kind to a Prometheus metric type.
func (s *series) promType() string {
	switch s.kind {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// promLabels renders the label block, optionally with an extra trailing
// label (used for histogram `le`).
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeProm renders one series' sample lines.
func (s *series) writeProm(w io.Writer) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, promLabels(s.labels, "", ""), s.counter.Value())
		return err
	case kindSharded:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, promLabels(s.labels, "", ""), s.sharded.Value())
		return err
	case kindFloatCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.name, promLabels(s.labels, "", ""), formatFloat(s.fcounter.Value()))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.name, promLabels(s.labels, "", ""), formatFloat(s.gauge.Value()))
		return err
	case kindHistogram:
		h := s.hist
		counts := h.BucketCounts()
		var cum uint64
		for i, bound := range h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.name, promLabels(s.labels, "le", formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.name, promLabels(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			s.name, promLabels(s.labels, "", ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			s.name, promLabels(s.labels, "", ""), h.Count())
		return err
	}
	return nil
}

// JSONBucket is one histogram bucket in the JSON exposition. Le is the
// upper bound rendered as a string so "+Inf" stays representable.
type JSONBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"` // cumulative, Prometheus semantics
}

// JSONSeries is one instrument in the JSON exposition.
type JSONSeries struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"` // counters and gauges
	Count   *uint64           `json:"count,omitempty"` // histograms
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []JSONBucket      `json:"buckets,omitempty"`
}

// WriteJSON renders the registry as a JSON document {"series": [...]}, the
// machine-diffable twin of WritePrometheus.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out struct {
		Series []JSONSeries `json:"series"`
	}
	for _, s := range r.snapshot() {
		js := JSONSeries{Name: s.name, Type: s.promType(), Help: s.help}
		if len(s.labels) > 0 {
			js.Labels = map[string]string{}
			for _, l := range s.labels {
				js.Labels[l.Key] = l.Value
			}
		}
		switch s.kind {
		case kindCounter:
			v := float64(s.counter.Value())
			js.Value = &v
		case kindSharded:
			v := float64(s.sharded.Value())
			js.Value = &v
		case kindFloatCounter:
			v := s.fcounter.Value()
			js.Value = &v
		case kindGauge:
			v := s.gauge.Value()
			js.Value = &v
		case kindHistogram:
			h := s.hist
			n := h.Count()
			sum := h.Sum()
			js.Count = &n
			js.Sum = &sum
			counts := h.BucketCounts()
			var cum uint64
			for i, bound := range h.bounds {
				cum += counts[i]
				js.Buckets = append(js.Buckets, JSONBucket{Le: formatFloat(bound), Count: cum})
			}
			cum += counts[len(counts)-1]
			js.Buckets = append(js.Buckets, JSONBucket{Le: "+Inf", Count: cum})
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WritePrometheus renders the default registry (see Registry.WritePrometheus).
func WritePrometheus(w io.Writer) error { return Default().WritePrometheus(w) }

// WriteJSON renders the default registry (see Registry.WriteJSON).
func WriteJSON(w io.Writer) error { return Default().WriteJSON(w) }
