package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTestRegistry assembles one instrument of every kind with known
// values, for the exposition golden tests.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("cubie_demo_tasks_total", "Tasks executed.")
	c.Add(42)
	r.Counter("cubie_demo_empty_total", "Never incremented.")
	f := r.FloatCounter("cubie_demo_busy_seconds_total", "Busy time.")
	f.Add(1.5)
	g := r.Gauge("cubie_demo_workers", "Pool size.")
	g.Set(8)
	h := r.Histogram("cubie_demo_run_seconds", "Run latency.",
		[]float64{0.1, 1},
		Label{Key: "workload", Value: "SpMV"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	lc := r.Counter("cubie_demo_labeled_total", "Labeled counter.",
		Label{Key: "variant", Value: "TC"})
	lc.Inc()
	return r
}

// TestWritePrometheusGolden pins the exact text exposition output.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cubie_demo_busy_seconds_total Busy time.
# TYPE cubie_demo_busy_seconds_total counter
cubie_demo_busy_seconds_total 1.5
# HELP cubie_demo_empty_total Never incremented.
# TYPE cubie_demo_empty_total counter
cubie_demo_empty_total 0
# HELP cubie_demo_labeled_total Labeled counter.
# TYPE cubie_demo_labeled_total counter
cubie_demo_labeled_total{variant="TC"} 1
# HELP cubie_demo_run_seconds Run latency.
# TYPE cubie_demo_run_seconds histogram
cubie_demo_run_seconds_bucket{workload="SpMV",le="0.1"} 1
cubie_demo_run_seconds_bucket{workload="SpMV",le="1"} 2
cubie_demo_run_seconds_bucket{workload="SpMV",le="+Inf"} 3
cubie_demo_run_seconds_sum{workload="SpMV"} 2.55
cubie_demo_run_seconds_count{workload="SpMV"} 3
# HELP cubie_demo_tasks_total Tasks executed.
# TYPE cubie_demo_tasks_total counter
cubie_demo_tasks_total 42
# HELP cubie_demo_workers Pool size.
# TYPE cubie_demo_workers gauge
cubie_demo_workers 8
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSON checks the JSON exposition is valid and carries the same
// values as the text form.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []JSONSeries `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]JSONSeries{}
	for _, s := range doc.Series {
		byName[s.Name+seriesSuffix(s.Labels)] = s
	}
	if s := byName["cubie_demo_tasks_total"]; s.Value == nil || *s.Value != 42 {
		t.Errorf("tasks_total = %+v, want value 42", s)
	}
	if s := byName["cubie_demo_empty_total"]; s.Value == nil || *s.Value != 0 {
		t.Errorf("zero-valued counters must still be present: %+v", s)
	}
	hist := byName["cubie_demo_run_seconds{workload=SpMV}"]
	if hist.Count == nil || *hist.Count != 3 || hist.Sum == nil || *hist.Sum != 2.55 {
		t.Fatalf("histogram JSON = %+v, want count 3 sum 2.55", hist)
	}
	if len(hist.Buckets) != 3 || hist.Buckets[2].Le != "+Inf" || hist.Buckets[2].Count != 3 {
		t.Errorf("histogram buckets = %+v", hist.Buckets)
	}
}

func seriesSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"="+v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// TestDefaultRegistryExposition smoke-tests the package-level writers.
func TestDefaultRegistryExposition(t *testing.T) {
	NewCounter("cubie_metrics_selftest_total", "Registered by the metrics test.").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cubie_metrics_selftest_total 1") {
		t.Error("default registry exposition missing the selftest counter")
	}
	buf.Reset()
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("default registry JSON exposition is invalid")
	}
}
