// Package metrics is the dependency-free observability registry of the
// Cubie runtime. The paper is a measurement campaign over a GPU's counters;
// this package gives the *emulator itself* the same kind of counters, so the
// parallel engine (internal/par), the experiment harness
// (internal/harness), and the MMA layer (internal/mmu) can be characterized
// rather than guessed at.
//
// Four instrument kinds are provided, all safe for concurrent use and all
// allocation-free on their update paths (asserted by TestCounterFastPathAllocs):
//
//   - Counter: monotonically increasing uint64 (atomic add).
//   - FloatCounter: monotonically increasing float64 (CAS add) — for
//     accumulated durations such as worker busy seconds.
//   - Gauge: settable float64 (atomic bit store).
//   - Histogram: fixed-bound bucketed distribution with count and sum.
//
// ShardedCounter is a Counter specialization for extremely hot call sites
// (per-MMA-tile increments): updates land on one of 64 cache-line-padded
// shards chosen from a caller-supplied address hint, so concurrent workers
// do not serialize on a single cache line.
//
// Instruments are registered on a Registry — usually the process-wide
// Default() — under a Prometheus-style name plus optional constant labels,
// with get-or-create semantics: calling a constructor twice with the same
// name and labels returns the same instrument, so package-level `var`
// declarations across the codebase compose into one coherent snapshot.
// Exposition (expose.go) renders the registry in the Prometheus text format
// or as JSON; zero-valued series are included, so a snapshot always shows
// the full instrument inventory.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key/value pair attached to an instrument at
// registration time (e.g. {workload="SpMV"}).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 counter (use for
// accumulated seconds). Add is a CAS loop; callers should batch updates on
// very hot paths.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds v (v must be >= 0 to keep the counter monotone).
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the accumulated total.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// numShards is the shard count of ShardedCounter (power of two).
const numShards = 64

// shard is one cache-line-padded counter cell.
type shard struct {
	v atomic.Uint64
	_ [7]uint64 // pad to 64 bytes: adjacent shards never share a line
}

// ShardedCounter is a Counter whose increments are spread across
// cache-line-padded shards. It is meant for per-tile hot paths executed
// concurrently by many workers, where a single atomic cell would make every
// worker bounce the same cache line.
type ShardedCounter struct {
	shards [numShards]shard
}

// IncAt adds 1 to the shard selected by hint. Callers pass a cheap
// quasi-random address (e.g. the address of the tile being processed); the
// low six bits are discarded so addresses within one cache line map to the
// same shard.
func (s *ShardedCounter) IncAt(hint uintptr) {
	s.shards[(hint>>6)%numShards].v.Add(1)
}

// Add adds n to shard 0 (cold-path bulk updates).
func (s *ShardedCounter) Add(n uint64) { s.shards[0].v.Add(n) }

// AddAt adds n to the shard selected by hint — the batched form of IncAt,
// used by panel-level hot paths that account a whole k-sweep with one update.
func (s *ShardedCounter) AddAt(hint uintptr, n uint64) {
	s.shards[(hint>>6)%numShards].v.Add(n)
}

// Value returns the sum over all shards.
func (s *ShardedCounter) Value() uint64 {
	var sum uint64
	for i := range s.shards {
		sum += s.shards[i].v.Load()
	}
	return sum
}

// Histogram is a fixed-bound bucketed distribution. Observe is lock-free:
// one atomic add on the matching bucket, one on the count, one CAS on the
// sum. Bounds are upper-inclusive (Prometheus `le` semantics) with an
// implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     FloatCounter
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts, one entry
// per bound plus the final +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor: {start, start·factor, …}.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefTimeBuckets are the default latency bounds (seconds): decades from
// 10 µs to 10 s. They cover everything from a single small-kernel call to a
// full figure regeneration.
var DefTimeBuckets = ExponentialBuckets(1e-5, 10, 7)

// kind discriminates the instrument union inside a series.
type kind uint8

const (
	kindCounter kind = iota
	kindFloatCounter
	kindGauge
	kindHistogram
	kindSharded
)

// series is one registered instrument with its identity.
type series struct {
	name   string
	help   string
	labels []Label
	kind   kind

	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	hist     *Histogram
	sharded  *ShardedCounter
}

// Registry holds a set of named instruments. The zero value is not usable;
// use NewRegistry (tests) or Default (the process registry).
type Registry struct {
	mu   sync.Mutex
	byID map[string]*series
}

// NewRegistry returns an empty registry (tests use private registries so
// they do not see the process-wide counters).
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*series{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level instrument
// registers on.
func Default() *Registry { return defaultRegistry }

// seriesID renders the unique identity of (name, labels). Labels are sorted
// by key so registration order does not matter.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns a copy of labels sorted by key.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register get-or-creates a series. A name+label collision with a different
// instrument kind is a programming error and panics.
func (r *Registry) register(name, help string, k kind, labels []Label, mk func(*series)) *series {
	labels = sortLabels(labels)
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byID[id]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("metrics: %s re-registered with a different kind", id))
		}
		return s
	}
	s := &series{name: name, help: help, labels: labels, kind: k}
	mk(s)
	r.byID[id] = s
	return s
}

// Counter get-or-creates a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels,
		func(s *series) { s.counter = &Counter{} }).counter
}

// FloatCounter get-or-creates a float counter.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	return r.register(name, help, kindFloatCounter, labels,
		func(s *series) { s.fcounter = &FloatCounter{} }).fcounter
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels,
		func(s *series) { s.gauge = &Gauge{} }).gauge
}

// Histogram get-or-creates a histogram with the given bucket upper bounds.
// Bounds are fixed at first registration; later calls with the same
// name+labels return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels, func(s *series) {
		s.hist = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}).hist
}

// ShardedCounter get-or-creates a sharded counter (exposed as a counter).
func (r *Registry) ShardedCounter(name, help string, labels ...Label) *ShardedCounter {
	return r.register(name, help, kindSharded, labels,
		func(s *series) { s.sharded = &ShardedCounter{} }).sharded
}

// snapshot returns the registered series sorted by (name, label identity).
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.byID))
	ids := make([]string, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool {
		ni, nj := familyOf(ids[i]), familyOf(ids[j])
		if ni != nj {
			return ni < nj
		}
		return ids[i] < ids[j]
	})
	r.mu.Lock()
	for _, id := range ids {
		if s, ok := r.byID[id]; ok {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	return out
}

// familyOf strips the label suffix from a series id.
func familyOf(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// Package-level constructors on the Default registry. These are what the
// instrumented packages use in their `var` blocks.

// NewCounter get-or-creates a counter on the default registry.
func NewCounter(name, help string, labels ...Label) *Counter {
	return Default().Counter(name, help, labels...)
}

// NewFloatCounter get-or-creates a float counter on the default registry.
func NewFloatCounter(name, help string, labels ...Label) *FloatCounter {
	return Default().FloatCounter(name, help, labels...)
}

// NewGauge get-or-creates a gauge on the default registry.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return Default().Gauge(name, help, labels...)
}

// NewHistogram get-or-creates a histogram on the default registry.
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return Default().Histogram(name, help, bounds, labels...)
}

// NewShardedCounter get-or-creates a sharded counter on the default registry.
func NewShardedCounter(name, help string, labels ...Label) *ShardedCounter {
	return Default().ShardedCounter(name, help, labels...)
}
