package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers every instrument kind from many
// goroutines; the exact totals prove no update was lost, and `go test
// -race` proves the paths are data-race free.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	f := r.FloatCounter("f_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	s := r.ShardedCounter("s_total", "")

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				f.Add(0.5)
				g.Set(float64(w))
				h.Observe(float64(i % 6))
				s.IncAt(uintptr(w<<12 + i<<6))
			}
		}(w)
	}
	wg.Wait()

	const n = workers * perWorker
	if got := c.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := f.Value(); got != n*0.5 {
		t.Errorf("float counter = %g, want %g", got, n*0.5)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	if got := s.Value(); got != n {
		t.Errorf("sharded counter = %d, want %d", got, n)
	}
	if g.Value() < 0 || g.Value() >= workers {
		t.Errorf("gauge = %g, want one of the worker ids", g.Value())
	}
}

// TestGetOrCreate verifies that re-registering the same name+labels returns
// the identical instrument (the property package-level vars rely on).
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Label{Key: "k", Value: "v"})
	b := r.Counter("x_total", "", Label{Key: "k", Value: "v"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x_total", "", Label{Key: "k", Value: "w"})
	if a == other {
		t.Fatal("different label values must return distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "", Label{Key: "k", Value: "v"})
}

// TestHistogramBuckets pins the le (upper-inclusive) bucketing semantics.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // le=1: {0.5,1}; le=2: {1.5,2}; le=4: {3,4}; +Inf: {5,100}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Sum() != 117 {
		t.Errorf("sum = %g, want 117", h.Sum())
	}
}

// TestCounterFastPathAllocs asserts the acceptance criterion that the
// update fast paths allocate nothing.
func TestCounterFastPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	f := r.FloatCounter("f_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefTimeBuckets)
	s := r.ShardedCounter("s_total", "")
	cases := map[string]func(){
		"Counter.Inc":          func() { c.Inc() },
		"Counter.Add":          func() { c.Add(3) },
		"FloatCounter.Add":     func() { f.Add(0.25) },
		"Gauge.Set":            func() { g.Set(1) },
		"Histogram.Observe":    func() { h.Observe(0.001) },
		"ShardedCounter.IncAt": func() { s.IncAt(0xdeadbeef) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1e-5, 10, 7)
	if len(got) != 7 || got[0] != 1e-5 || got[6] != 10 {
		t.Fatalf("unexpected buckets: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("bounds not ascending: %v", got)
		}
	}
}

// TestSeriesIDLabelOrder checks label order does not split series.
func TestSeriesIDLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("y_total", "",
		Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	b := r.Counter("y_total", "",
		Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if a != b {
		t.Fatal("label registration order must not create a new series")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "y_total{") != 1 {
		t.Fatalf("expected exactly one y_total series:\n%s", sb.String())
	}
}
