package benchjson

import (
	"fmt"
	"io"
	"sort"
)

// Delta is the movement of one benchmark between two snapshots, on both
// gated axes: ns/op (speed) and allocs/op (steady-state allocation count).
type Delta struct {
	Name    string  `json:"name"`
	Package string  `json:"package,omitempty"`
	OldNs   float64 `json:"old_ns_per_op"`
	NewNs   float64 `json:"new_ns_per_op"`
	// Ratio is NewNs/OldNs: < 1 is a speedup, > 1 a slowdown.
	Ratio     float64 `json:"ratio"`
	OldAllocs float64 `json:"old_allocs_per_op"`
	NewAllocs float64 `json:"new_allocs_per_op"`
	// AllocRatio is NewAllocs/OldAllocs, 0 when the old side was 0 — the
	// zero-to-nonzero case is gated separately (see AllocRegressions):
	// a kernel that was allocation-free must not silently start allocating,
	// no matter how few objects.
	AllocRatio float64 `json:"alloc_ratio"`
}

// Pct returns the signed ns/op percentage change (+ is slower, − is faster).
func (d Delta) Pct() float64 { return (d.Ratio - 1) * 100 }

// AllocRegressed reports whether the delta fails the allocation gate at the
// given tolerance: allocs/op grew by more than tolerance, or an
// allocation-free benchmark (old 0 allocs/op) started allocating at all.
func (d Delta) AllocRegressed(tolerance float64) bool {
	if d.OldAllocs == 0 {
		return d.NewAllocs > 0
	}
	return d.AllocRatio > 1+tolerance
}

// Comparison is the matched diff of two snapshots.
type Comparison struct {
	Deltas  []Delta  `json:"deltas"`
	OldOnly []string `json:"old_only,omitempty"` // benchmarks missing from the new run
	NewOnly []string `json:"new_only,omitempty"` // benchmarks added by the new run
}

// key identifies a benchmark across runs: package + name (the name already
// carries the -GOMAXPROCS suffix, which we keep — comparing across different
// parallelism would be meaningless anyway).
func key(b Benchmark) string { return b.Package + "." + b.Name }

// best collapses repeated samples of one benchmark (a -count=N run) into a
// per-metric best-of: minimum ns/op, minimum allocs/op, and minimum B/op,
// each taken independently (benchstat's best-of rule — the lowest sample is
// the least-disturbed measurement of each metric; everything above it is
// scheduler/GC noise, and the metrics need not bottom out on the same
// sample).
func best(acc Benchmark, b Benchmark, first bool) Benchmark {
	if first {
		return b
	}
	if b.NsPerOp < acc.NsPerOp {
		acc.NsPerOp = b.NsPerOp
		acc.Iterations = b.Iterations
	}
	if b.AllocsPerOp < acc.AllocsPerOp {
		acc.AllocsPerOp = b.AllocsPerOp
	}
	if b.BytesPerOp < acc.BytesPerOp {
		acc.BytesPerOp = b.BytesPerOp
	}
	return acc
}

// collapse folds a snapshot's benchmarks into per-key best-of entries,
// preserving first-seen order in the returned key slice.
func collapse(s *Snapshot) (map[string]Benchmark, []string) {
	by := map[string]Benchmark{}
	var order []string
	for _, b := range s.Benchmarks {
		k := key(b)
		prev, ok := by[k]
		if !ok {
			order = append(order, k)
		}
		by[k] = best(prev, b, !ok)
	}
	return by, order
}

// Compare matches the benchmarks of two snapshots by package and name and
// reports the ns/op and allocs/op movement of each pair, sorted worst ns/op
// regression first. Snapshots captured with `go test -count=N` carry N
// samples per benchmark; Compare collapses each side per-metric best-of
// (see best). Benchmarks present in only one snapshot are listed but not
// treated as failures — suites grow and shrink between commits.
func Compare(old, new *Snapshot) *Comparison {
	oldBy, _ := collapse(old)
	newBy, order := collapse(new)
	cmp := &Comparison{}
	seen := map[string]bool{}
	for _, k := range order {
		nb := newBy[k]
		seen[k] = true
		ob, ok := oldBy[k]
		if !ok {
			cmp.NewOnly = append(cmp.NewOnly, k)
			continue
		}
		d := Delta{
			Name:      nb.Name,
			Package:   nb.Package,
			OldNs:     ob.NsPerOp,
			NewNs:     nb.NsPerOp,
			OldAllocs: ob.AllocsPerOp,
			NewAllocs: nb.AllocsPerOp,
		}
		if ob.NsPerOp > 0 {
			d.Ratio = nb.NsPerOp / ob.NsPerOp
		}
		if ob.AllocsPerOp > 0 {
			d.AllocRatio = nb.AllocsPerOp / ob.AllocsPerOp
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for k := range oldBy {
		if !seen[k] {
			cmp.OldOnly = append(cmp.OldOnly, k)
		}
	}
	sort.Strings(cmp.OldOnly)
	sort.Slice(cmp.Deltas, func(i, j int) bool {
		if cmp.Deltas[i].Ratio != cmp.Deltas[j].Ratio {
			return cmp.Deltas[i].Ratio > cmp.Deltas[j].Ratio
		}
		return key(Benchmark{Name: cmp.Deltas[i].Name, Package: cmp.Deltas[i].Package}) <
			key(Benchmark{Name: cmp.Deltas[j].Name, Package: cmp.Deltas[j].Package})
	})
	return cmp
}

// Regressions returns the deltas whose ns/op slowdown exceeds tolerance
// (e.g. 0.10 flags benchmarks that got more than 10% slower).
func (c *Comparison) Regressions(tolerance float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Ratio > 1+tolerance {
			out = append(out, d)
		}
	}
	return out
}

// AllocRegressions returns the deltas that fail the allocation gate: more
// than tolerance growth in allocs/op, or any allocation appearing in a
// benchmark that was allocation-free in the old snapshot (0 → >0 is always
// a failure — those zeros are contracts, not accidents).
func (c *Comparison) AllocRegressions(tolerance float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.AllocRegressed(tolerance) {
			out = append(out, d)
		}
	}
	return out
}

// Envelope merges snapshots into one per-metric best-of snapshot: for every
// benchmark, the minimum ns/op, allocs/op, and B/op seen across all inputs.
// make bench-compare ROLLING=K uses the envelope of the last K committed
// snapshots as its baseline, so a single historically-noisy capture can
// neither hide a real regression (the envelope keeps the best samples ever
// seen) nor flag a phantom one (a slow baseline run is subsumed by faster
// ones). Benchmark order is first-seen across the inputs in the given
// order; Date and machine headers come from the last (newest) snapshot.
func Envelope(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	by := map[string]Benchmark{}
	var order []string
	for _, s := range snaps {
		if s == nil {
			continue
		}
		out.Date, out.GOOS, out.GOARCH, out.CPU = s.Date, s.GOOS, s.GOARCH, s.CPU
		for _, b := range s.Benchmarks {
			k := key(b)
			prev, ok := by[k]
			if !ok {
				order = append(order, k)
			}
			by[k] = best(prev, b, !ok)
		}
	}
	for _, k := range order {
		out.Benchmarks = append(out.Benchmarks, by[k])
	}
	return out
}

// Render writes the comparison as an aligned table, worst ns/op regression
// first, marking every delta beyond the two tolerances (ns/op and
// allocs/op).
func (c *Comparison) Render(w io.Writer, tolerance, allocTolerance float64) {
	fmt.Fprintf(w, "%-52s %14s %14s %9s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, d := range c.Deltas {
		mark := ""
		switch {
		case d.Ratio > 1+tolerance:
			mark = "  << REGRESSION"
		case d.Ratio < 1-tolerance:
			mark = "  (faster)"
		}
		if d.AllocRegressed(allocTolerance) {
			mark += "  << ALLOC REGRESSION"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%% %12.0f %12.0f%s\n",
			d.Name, d.OldNs, d.NewNs, d.Pct(), d.OldAllocs, d.NewAllocs, mark)
	}
	for _, k := range c.OldOnly {
		fmt.Fprintf(w, "%-52s   removed in new run\n", k)
	}
	for _, k := range c.NewOnly {
		fmt.Fprintf(w, "%-52s   new benchmark\n", k)
	}
}
