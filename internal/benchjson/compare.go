package benchjson

import (
	"fmt"
	"io"
	"sort"
)

// Delta is the ns/op movement of one benchmark between two snapshots.
type Delta struct {
	Name    string  `json:"name"`
	Package string  `json:"package,omitempty"`
	OldNs   float64 `json:"old_ns_per_op"`
	NewNs   float64 `json:"new_ns_per_op"`
	// Ratio is NewNs/OldNs: < 1 is a speedup, > 1 a slowdown.
	Ratio float64 `json:"ratio"`
}

// Pct returns the signed percentage change (+ is slower, − is faster).
func (d Delta) Pct() float64 { return (d.Ratio - 1) * 100 }

// Comparison is the matched diff of two snapshots.
type Comparison struct {
	Deltas  []Delta  `json:"deltas"`
	OldOnly []string `json:"old_only,omitempty"` // benchmarks missing from the new run
	NewOnly []string `json:"new_only,omitempty"` // benchmarks added by the new run
}

// key identifies a benchmark across runs: package + name (the name already
// carries the -GOMAXPROCS suffix, which we keep — comparing across different
// parallelism would be meaningless anyway).
func key(b Benchmark) string { return b.Package + "." + b.Name }

// Compare matches the benchmarks of two snapshots by package and name and
// reports the ns/op ratio of each pair, sorted worst regression first.
// Snapshots captured with `go test -count=N` carry N samples per
// benchmark; Compare takes the minimum ns/op of each side (benchstat's
// best-of rule: the fastest sample is the least-disturbed measurement of
// the code, everything above it is scheduler/GC noise). Benchmarks
// present in only one snapshot are listed but not treated as failures —
// suites grow and shrink between commits.
func Compare(old, new *Snapshot) *Comparison {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		if prev, ok := oldBy[key(b)]; !ok || b.NsPerOp < prev.NsPerOp {
			oldBy[key(b)] = b
		}
	}
	newBy := map[string]Benchmark{}
	var order []string
	for _, b := range new.Benchmarks {
		k := key(b)
		if prev, ok := newBy[k]; !ok || b.NsPerOp < prev.NsPerOp {
			if _, ok := newBy[k]; !ok {
				order = append(order, k)
			}
			newBy[k] = b
		}
	}
	cmp := &Comparison{}
	seen := map[string]bool{}
	for _, k := range order {
		nb := newBy[k]
		seen[k] = true
		ob, ok := oldBy[k]
		if !ok {
			cmp.NewOnly = append(cmp.NewOnly, k)
			continue
		}
		d := Delta{
			Name:    nb.Name,
			Package: nb.Package,
			OldNs:   ob.NsPerOp,
			NewNs:   nb.NsPerOp,
		}
		if ob.NsPerOp > 0 {
			d.Ratio = nb.NsPerOp / ob.NsPerOp
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for k := range oldBy {
		if !seen[k] {
			cmp.OldOnly = append(cmp.OldOnly, k)
		}
	}
	sort.Strings(cmp.OldOnly)
	sort.Slice(cmp.Deltas, func(i, j int) bool {
		if cmp.Deltas[i].Ratio != cmp.Deltas[j].Ratio {
			return cmp.Deltas[i].Ratio > cmp.Deltas[j].Ratio
		}
		return key(Benchmark{Name: cmp.Deltas[i].Name, Package: cmp.Deltas[i].Package}) <
			key(Benchmark{Name: cmp.Deltas[j].Name, Package: cmp.Deltas[j].Package})
	})
	return cmp
}

// Regressions returns the deltas whose slowdown exceeds tolerance (e.g. 0.10
// flags benchmarks that got more than 10% slower).
func (c *Comparison) Regressions(tolerance float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Ratio > 1+tolerance {
			out = append(out, d)
		}
	}
	return out
}

// Render writes the comparison as an aligned table, worst regression first,
// marking every delta beyond tolerance.
func (c *Comparison) Render(w io.Writer, tolerance float64) {
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range c.Deltas {
		mark := ""
		switch {
		case d.Ratio > 1+tolerance:
			mark = "  << REGRESSION"
		case d.Ratio < 1-tolerance:
			mark = "  (faster)"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%%%s\n",
			d.Name, d.OldNs, d.NewNs, d.Pct(), mark)
	}
	for _, k := range c.OldOnly {
		fmt.Fprintf(w, "%-52s   removed in new run\n", k)
	}
	for _, k := range c.NewOnly {
		fmt.Fprintf(w, "%-52s   new benchmark\n", k)
	}
}
