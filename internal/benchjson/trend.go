package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Trend rendering: every committed benchmark snapshot becomes one x-axis
// position of a static HTML dashboard (benchdata/trend.html, built by make
// bench-trend). The page is fully self-contained — the snapshot series is
// embedded as JSON and a small inline script draws one card per benchmark
// with two single-axis sparkline charts (ns/op and allocs/op; two measures
// of different scale never share an axis). Rendering is deterministic for a
// given snapshot sequence: no timestamps, map iteration sorted — so `make
// test` can regenerate the page and byte-compare it against the committed
// one to catch stale dashboards (see TrendUpToDate in cmd/benchjson).

// trendPoint is one benchmark's best-of sample in one snapshot. Ns < 0
// marks "absent from this snapshot" (JSON has no NaN) — the chart breaks
// the line there instead of interpolating through a gap.
type trendPoint struct {
	Ns     float64 `json:"ns"`
	Allocs float64 `json:"allocs"`
	Bytes  float64 `json:"bytes"`
}

// trendSeries is one benchmark across every snapshot, aligned with the
// top-level label slice.
type trendSeries struct {
	Name    string       `json:"name"`
	Package string       `json:"package,omitempty"`
	Points  []trendPoint `json:"points"`
}

// trendData is the embedded payload of the dashboard.
type trendData struct {
	Labels []string      `json:"labels"`
	Series []trendSeries `json:"series"`
}

// RenderTrend writes the self-contained trend dashboard for the given
// snapshot sequence. labels[i] names snaps[i] on the x-axis (usually the
// snapshot file's base name); both slices must have equal length and be in
// oldest-first order. Each snapshot is collapsed per-metric best-of first
// (repeated -count samples fold to their minimum, the same rule Compare
// uses), so the trend line tracks the least-disturbed measurement per
// commit rather than scheduler noise.
func RenderTrend(w io.Writer, snaps []*Snapshot, labels []string) error {
	if len(snaps) == 0 {
		return fmt.Errorf("benchjson: no snapshots to render")
	}
	if len(snaps) != len(labels) {
		return fmt.Errorf("benchjson: %d snapshots but %d labels", len(snaps), len(labels))
	}

	collapsed := make([]map[string]Benchmark, len(snaps))
	keys := map[string]Benchmark{}
	for i, s := range snaps {
		by, _ := collapse(s)
		collapsed[i] = by
		for k, b := range by {
			if _, ok := keys[k]; !ok {
				keys[k] = b
			}
		}
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)

	data := trendData{Labels: labels}
	for _, k := range ordered {
		b := keys[k]
		s := trendSeries{Name: b.Name, Package: b.Package}
		for i := range snaps {
			if bb, ok := collapsed[i][k]; ok {
				s.Points = append(s.Points, trendPoint{
					Ns: bb.NsPerOp, Allocs: bb.AllocsPerOp, Bytes: bb.BytesPerOp,
				})
			} else {
				s.Points = append(s.Points, trendPoint{Ns: -1, Allocs: -1, Bytes: -1})
			}
		}
		data.Series = append(data.Series, s)
	}

	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	// "</" cannot appear inside an inline <script> block; benchmark names
	// are Go identifiers so this never fires in practice, but stay safe.
	safe := strings.ReplaceAll(string(payload), "</", `<\/`)
	_, err = io.WriteString(w, strings.Replace(trendHTML, "__TREND_DATA__", safe, 1))
	return err
}

// trendHTML is the dashboard shell. Design notes (kept in sync with
// docs/PERFORMANCE.md):
//   - one card per benchmark, two single-series mini charts (ns/op, allocs/op)
//     — separate axes, never a dual-axis chart;
//   - series colors are fixed by metric (blue = ns/op, orange = allocs/op),
//     validated for CVD separation and surface contrast in both light and
//     dark mode; chart titles carry the identity in text so color is never
//     the only channel;
//   - 2px lines, 8px hover targets, tooltip + crosshair per chart, last
//     point direct-labeled; grid recessive;
//   - a table view lists every embedded value (also the screen-reader and
//     print path);
//   - dark mode: selected steps for the dark surface behind a
//     prefers-color-scheme block plus a manual toggle.
const trendHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Benchmark trends</title>
<style>
  :root {
    color-scheme: light;
    --surface: #fcfcfb; --card: #ffffff; --border: #e4e2dd;
    --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #878580;
    --grid: #eceae5; --ns: #2a78d6; --allocs: #eb6834;
  }
  @media (prefers-color-scheme: dark) {
    :root:not([data-theme="light"]) {
      color-scheme: dark;
      --surface: #1a1a19; --card: #232322; --border: #3a3936;
      --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8b8a82;
      --grid: #2e2d2b; --ns: #3987e5; --allocs: #d95926;
    }
  }
  :root[data-theme="dark"] {
    color-scheme: dark;
    --surface: #1a1a19; --card: #232322; --border: #3a3936;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8b8a82;
    --grid: #2e2d2b; --ns: #3987e5; --allocs: #d95926;
  }
  body { margin: 0; padding: 24px; background: var(--surface); color: var(--text-primary);
         font: 14px/1.45 system-ui, -apple-system, sans-serif; }
  h1 { font-size: 18px; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin: 0 0 16px; }
  .controls { display: flex; gap: 8px; margin-bottom: 20px; }
  button { font: inherit; color: var(--text-primary); background: var(--card);
           border: 1px solid var(--border); border-radius: 6px; padding: 4px 12px; cursor: pointer; }
  button[aria-pressed="true"] { border-color: var(--text-secondary); }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(420px, 1fr)); gap: 16px; }
  .card { background: var(--card); border: 1px solid var(--border); border-radius: 8px; padding: 12px 16px; }
  .card h2 { font-size: 13px; margin: 0 0 2px; word-break: break-all; }
  .card .pkg { color: var(--text-muted); font-size: 11px; margin: 0 0 8px; }
  .charts { display: flex; gap: 16px; flex-wrap: wrap; }
  .chart { flex: 1 1 180px; min-width: 180px; }
  .chart .label { font-size: 11px; color: var(--text-secondary); margin-bottom: 2px; }
  .chart .label .swatch { display: inline-block; width: 8px; height: 8px; border-radius: 2px;
                          margin-right: 4px; vertical-align: baseline; }
  svg { display: block; width: 100%; height: 72px; overflow: visible; }
  .gridline { stroke: var(--grid); stroke-width: 1; }
  .trend-line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
  .endlabel { font-size: 10px; fill: var(--text-secondary); }
  .hover-dot { stroke: var(--card); stroke-width: 2; }
  #tooltip { position: fixed; pointer-events: none; background: var(--card); color: var(--text-primary);
             border: 1px solid var(--border); border-radius: 6px; padding: 6px 10px; font-size: 12px;
             box-shadow: 0 2px 8px rgba(0,0,0,.15); display: none; z-index: 10; max-width: 320px; }
  #tooltip .tl { color: var(--text-muted); }
  table { border-collapse: collapse; width: 100%; font-size: 12px; }
  th, td { text-align: right; padding: 3px 10px; border-bottom: 1px solid var(--border); }
  th:first-child, td:first-child { text-align: left; }
  th { color: var(--text-secondary); font-weight: 600; position: sticky; top: 0; background: var(--surface); }
  #table-view { display: none; overflow-x: auto; }
  body.show-table #table-view { display: block; }
  body.show-table .grid { display: none; }
</style>
</head>
<body>
<h1>Benchmark trends</h1>
<p class="sub">Best-of ns/op and allocs/op per committed snapshot, oldest → newest.
Rebuild with <code>make bench-trend</code>.</p>
<div class="controls">
  <button id="toggle-table" aria-pressed="false">Table view</button>
  <button id="toggle-theme" aria-pressed="false">Dark mode</button>
</div>
<div class="grid" id="cards"></div>
<div id="table-view"></div>
<div id="tooltip" role="status"></div>
<script type="application/json" id="trend-data">__TREND_DATA__</script>
<script>
(function () {
  "use strict";
  var data = JSON.parse(document.getElementById("trend-data").textContent);
  var tooltip = document.getElementById("tooltip");
  var SVGNS = "http://www.w3.org/2000/svg";
  var W = 400, H = 72, PADX = 4, PADY = 8;

  function fmt(v) {
    if (v >= 1e9) return (v / 1e9).toFixed(2) + "G";
    if (v >= 1e6) return (v / 1e6).toFixed(2) + "M";
    if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
    return (Math.round(v * 100) / 100).toString();
  }
  function el(tag, attrs, parent) {
    var n = document.createElementNS(SVGNS, tag);
    for (var k in attrs) n.setAttribute(k, attrs[k]);
    if (parent) parent.appendChild(n);
    return n;
  }

  // One single-series sparkline: metric is "ns" or "allocs"; cssVar names
  // the series color custom property.
  function sparkline(series, metric, cssVar, unit) {
    var pts = series.points.map(function (p) { return p[metric]; });
    var present = pts.filter(function (v) { return v >= 0; });
    var max = Math.max.apply(null, present.concat([1e-9]));
    var min = Math.min.apply(null, present.concat([max]));
    if (max === min) { max = min + 1; }
    var n = pts.length;
    var x = function (i) { return n === 1 ? W / 2 : PADX + (W - 2 * PADX) * i / (n - 1); };
    var y = function (v) { return H - PADY - (H - 2 * PADY) * (v - min) / (max - min); };

    var svg = el("svg", { viewBox: "0 0 " + W + " " + H, role: "img",
      "aria-label": series.name + " " + unit + " trend" });
    [min, max].forEach(function (v) {
      el("line", { x1: 0, x2: W, y1: y(v), y2: y(v), "class": "gridline" }, svg);
    });
    var color = "var(--" + cssVar + ")";
    // Break the polyline at gaps (absent snapshots) instead of bridging.
    var run = [];
    function flush() {
      if (run.length > 1) {
        el("polyline", { points: run.join(" "), "class": "trend-line", stroke: color }, svg);
      } else if (run.length === 1) {
        var xy = run[0].split(",");
        el("circle", { cx: xy[0], cy: xy[1], r: 3, fill: color }, svg);
      }
      run = [];
    }
    pts.forEach(function (v, i) {
      if (v < 0) { flush(); return; }
      run.push(x(i) + "," + y(v));
    });
    flush();
    var crosshair = el("line", { y1: PADY, y2: H - PADY, "class": "gridline",
      visibility: "hidden" }, svg);
    var hoverDot = el("circle", { r: 4, fill: color, "class": "hover-dot",
      visibility: "hidden" }, svg);
    // Last present point gets the direct label.
    for (var last = n - 1; last >= 0 && pts[last] < 0; last--) {}
    if (last >= 0) {
      el("text", { x: Math.min(x(last) + 6, W - 2), y: y(pts[last]) - 6,
        "text-anchor": "end", "class": "endlabel" }, svg).textContent = fmt(pts[last]);
    }
    // Hover targets: one ≥8px-wide column band per point.
    pts.forEach(function (v, i) {
      if (v < 0) return;
      var band = el("rect", { x: x(i) - Math.max(8, (W - 2 * PADX) / (2 * n)),
        y: 0, width: 2 * Math.max(8, (W - 2 * PADX) / (2 * n)), height: H,
        fill: "transparent" }, svg);
      band.addEventListener("mousemove", function (ev) {
        crosshair.setAttribute("x1", x(i)); crosshair.setAttribute("x2", x(i));
        crosshair.setAttribute("visibility", "visible");
        hoverDot.setAttribute("cx", x(i)); hoverDot.setAttribute("cy", y(v));
        hoverDot.setAttribute("visibility", "visible");
        tooltip.innerHTML = "<span class=\"tl\">" + data.labels[i] + "</span><br>" +
          series.name + "<br>" + fmt(v) + " " + unit;
        tooltip.style.display = "block";
        tooltip.style.left = Math.min(ev.clientX + 12, window.innerWidth - 200) + "px";
        tooltip.style.top = (ev.clientY + 12) + "px";
      });
      band.addEventListener("mouseleave", function () {
        crosshair.setAttribute("visibility", "hidden");
        hoverDot.setAttribute("visibility", "hidden");
        tooltip.style.display = "none";
      });
    });
    return svg;
  }

  var cards = document.getElementById("cards");
  data.series.forEach(function (s) {
    var card = document.createElement("div");
    card.className = "card";
    var h = document.createElement("h2");
    h.textContent = s.name;
    card.appendChild(h);
    if (s.package) {
      var pkg = document.createElement("div");
      pkg.className = "pkg";
      pkg.textContent = s.package;
      card.appendChild(pkg);
    }
    var charts = document.createElement("div");
    charts.className = "charts";
    [["ns", "ns", "ns/op"], ["allocs", "allocs", "allocs/op"]].forEach(function (m) {
      var wrap = document.createElement("div");
      wrap.className = "chart";
      var label = document.createElement("div");
      label.className = "label";
      var sw = document.createElement("span");
      sw.className = "swatch";
      sw.style.background = "var(--" + m[1] + ")";
      label.appendChild(sw);
      label.appendChild(document.createTextNode(m[2]));
      wrap.appendChild(label);
      wrap.appendChild(sparkline(s, m[0], m[1], m[2]));
      charts.appendChild(wrap);
    });
    card.appendChild(charts);
    cards.appendChild(card);
  });

  // Table view: the full embedded dataset, one row per benchmark × snapshot.
  var tv = document.getElementById("table-view");
  var table = document.createElement("table");
  var thead = document.createElement("thead");
  thead.innerHTML = "<tr><th>benchmark</th><th>snapshot</th><th>ns/op</th>" +
    "<th>allocs/op</th><th>B/op</th></tr>";
  table.appendChild(thead);
  var tbody = document.createElement("tbody");
  data.series.forEach(function (s) {
    s.points.forEach(function (p, i) {
      if (p.ns < 0) return;
      var tr = document.createElement("tr");
      [s.name, data.labels[i], p.ns, p.allocs, p.bytes].forEach(function (c, j) {
        var td = document.createElement("td");
        td.textContent = j < 2 ? c : fmt(c);
        tr.appendChild(td);
      });
      tbody.appendChild(tr);
    });
  });
  table.appendChild(tbody);
  tv.appendChild(table);

  document.getElementById("toggle-table").addEventListener("click", function () {
    var on = document.body.classList.toggle("show-table");
    this.setAttribute("aria-pressed", on ? "true" : "false");
  });
  document.getElementById("toggle-theme").addEventListener("click", function () {
    var root = document.documentElement;
    var dark = root.getAttribute("data-theme") !== "dark";
    root.setAttribute("data-theme", dark ? "dark" : "light");
    this.setAttribute("aria-pressed", dark ? "true" : "false");
  });
})();
</script>
</body>
</html>
`
