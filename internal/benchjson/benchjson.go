// Package benchjson parses the text output of `go test -bench` into a
// structured snapshot, so benchmark runs can be stored and diffed as JSON
// (see docs/PERFORMANCE.md for the workflow; cmd/benchjson is the CLI
// wrapper that make bench invokes).
//
// Parsing is deterministic: a given input byte stream always yields the
// same Snapshot, with benchmarks in input order and custom metrics keyed
// by their literal unit strings. The package keeps no state — Parse only
// touches its arguments — so concurrent calls are safe, and a returned
// Snapshot is plain data, safe to share once callers treat it as
// read-only.
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one full `go test -bench` run.
type Snapshot struct {
	Date       string      `json:"date"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output and extracts every benchmark
// result line, along with the goos/goarch/cpu/pkg headers. Lines that are
// not benchmark results (PASS, ok, test logs) are skipped.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				b.Package = pkg
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines found")
	}
	return snap, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  120  9876 ns/op  24 B/op  3 allocs/op  1.5 widgets
//
// The fields after the iteration count come in (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			sawNs = true
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, sawNs
}
