package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func snap(benches ...Benchmark) *Snapshot { return &Snapshot{Benchmarks: benches} }

func bench(pkg, name string, ns float64) Benchmark {
	return Benchmark{Name: name, Package: pkg, Iterations: 1, NsPerOp: ns}
}

func TestCompareMatchesAndSorts(t *testing.T) {
	old := snap(
		bench("repro/a", "BenchmarkFast-8", 1000),
		bench("repro/a", "BenchmarkSlow-8", 1000),
		bench("repro/a", "BenchmarkGone-8", 500),
	)
	new := snap(
		bench("repro/a", "BenchmarkFast-8", 600),  // 40% faster
		bench("repro/a", "BenchmarkSlow-8", 1500), // 50% slower
		bench("repro/a", "BenchmarkNew-8", 123),
	)
	c := Compare(old, new)
	if len(c.Deltas) != 2 {
		t.Fatalf("%d deltas, want 2", len(c.Deltas))
	}
	// Worst regression first.
	if c.Deltas[0].Name != "BenchmarkSlow-8" || c.Deltas[0].Ratio != 1.5 {
		t.Fatalf("first delta: %+v", c.Deltas[0])
	}
	if c.Deltas[1].Ratio != 0.6 {
		t.Fatalf("second delta: %+v", c.Deltas[1])
	}
	if got := c.Deltas[0].Pct(); got < 49.9 || got > 50.1 {
		t.Fatalf("Pct = %v", got)
	}
	if len(c.OldOnly) != 1 || c.OldOnly[0] != "repro/a.BenchmarkGone-8" {
		t.Fatalf("old-only: %v", c.OldOnly)
	}
	if len(c.NewOnly) != 1 || c.NewOnly[0] != "repro/a.BenchmarkNew-8" {
		t.Fatalf("new-only: %v", c.NewOnly)
	}
}

func TestCompareDistinguishesPackages(t *testing.T) {
	// The same benchmark name in two packages must not cross-match.
	old := snap(bench("repro/a", "BenchmarkX-8", 100), bench("repro/b", "BenchmarkX-8", 200))
	new := snap(bench("repro/a", "BenchmarkX-8", 100), bench("repro/b", "BenchmarkX-8", 400))
	c := Compare(old, new)
	if len(c.Deltas) != 2 {
		t.Fatalf("%d deltas, want 2", len(c.Deltas))
	}
	if c.Deltas[0].Package != "repro/b" || c.Deltas[0].Ratio != 2 {
		t.Fatalf("first delta: %+v", c.Deltas[0])
	}
}

func TestRegressionsTolerance(t *testing.T) {
	old := snap(
		bench("p", "BenchmarkA-8", 1000),
		bench("p", "BenchmarkB-8", 1000),
		bench("p", "BenchmarkC-8", 1000),
	)
	new := snap(
		bench("p", "BenchmarkA-8", 1050), // +5%: within tolerance
		bench("p", "BenchmarkB-8", 1200), // +20%: regression
		bench("p", "BenchmarkC-8", 700),  // faster
	)
	regs := Compare(old, new).Regressions(0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkB-8" {
		t.Fatalf("regressions: %+v", regs)
	}
	if regs = Compare(old, new).Regressions(0.01); len(regs) != 2 {
		t.Fatalf("tight tolerance regressions: %+v", regs)
	}
}

func TestRenderTable(t *testing.T) {
	old := snap(bench("p", "BenchmarkA-8", 1000), bench("p", "BenchmarkDrop-8", 10))
	new := snap(bench("p", "BenchmarkA-8", 2000), bench("p", "BenchmarkAdd-8", 10))
	var buf bytes.Buffer
	Compare(old, new).Render(&buf, 0.10, 0.10)
	out := buf.String()
	for _, want := range []string{"REGRESSION", "+100.0%", "removed in new run", "new benchmark"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func benchAlloc(pkg, name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Package: pkg, Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestAllocRegressions(t *testing.T) {
	old := snap(
		benchAlloc("p", "BenchmarkGrew-8", 1000, 100),
		benchAlloc("p", "BenchmarkHeld-8", 1000, 100),
		benchAlloc("p", "BenchmarkWasZero-8", 1000, 0),
		benchAlloc("p", "BenchmarkStaysZero-8", 1000, 0),
		benchAlloc("p", "BenchmarkShrank-8", 1000, 45000),
	)
	new := snap(
		benchAlloc("p", "BenchmarkGrew-8", 1000, 120),     // +20% allocs: fails
		benchAlloc("p", "BenchmarkHeld-8", 1000, 105),     // +5%: within tolerance
		benchAlloc("p", "BenchmarkWasZero-8", 1000, 1),    // 0 → 1: always fails
		benchAlloc("p", "BenchmarkStaysZero-8", 1000, 0),  // stays clean
		benchAlloc("p", "BenchmarkShrank-8", 1000, 7),     // the arena win
	)
	regs := Compare(old, new).AllocRegressions(0.10)
	if len(regs) != 2 {
		t.Fatalf("alloc regressions: %+v", regs)
	}
	got := map[string]bool{}
	for _, d := range regs {
		got[d.Name] = true
	}
	if !got["BenchmarkGrew-8"] || !got["BenchmarkWasZero-8"] {
		t.Fatalf("wrong benchmarks flagged: %+v", regs)
	}
	// The render marks alloc failures distinctly from ns/op failures.
	var buf bytes.Buffer
	Compare(old, new).Render(&buf, 0.10, 0.10)
	if !strings.Contains(buf.String(), "ALLOC REGRESSION") {
		t.Fatalf("render missing alloc marker:\n%s", buf.String())
	}
}

func TestBestOfCollapsesMetricsIndependently(t *testing.T) {
	// The fastest sample need not be the lowest-allocating one; each metric
	// takes its own minimum.
	old := snap(
		benchAlloc("p", "BenchmarkA-8", 1500, 10),
		benchAlloc("p", "BenchmarkA-8", 1000, 30),
	)
	new := snap(benchAlloc("p", "BenchmarkA-8", 1100, 9))
	c := Compare(old, new)
	if len(c.Deltas) != 1 {
		t.Fatalf("%d deltas, want 1", len(c.Deltas))
	}
	d := c.Deltas[0]
	if d.OldNs != 1000 || d.OldAllocs != 10 {
		t.Fatalf("old best-of = %v ns / %v allocs, want 1000 / 10", d.OldNs, d.OldAllocs)
	}
	if len(c.AllocRegressions(0.10)) != 0 {
		t.Fatal("9 vs best-of 10 allocs must pass the gate")
	}
}

func TestEnvelope(t *testing.T) {
	s1 := &Snapshot{Date: "2026-08-01", Benchmarks: []Benchmark{
		benchAlloc("p", "BenchmarkA-8", 1200, 50),
		benchAlloc("p", "BenchmarkOldOnly-8", 10, 1),
	}}
	s2 := &Snapshot{Date: "2026-08-02", GOOS: "linux", Benchmarks: []Benchmark{
		benchAlloc("p", "BenchmarkA-8", 1000, 70),
		benchAlloc("p", "BenchmarkNewOnly-8", 20, 2),
	}}
	env := Envelope(s1, s2)
	if env.Date != "2026-08-02" || env.GOOS != "linux" {
		t.Fatalf("envelope headers: %+v", env)
	}
	if len(env.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(env.Benchmarks))
	}
	// First-seen order, per-metric minima.
	a := env.Benchmarks[0]
	if a.Name != "BenchmarkA-8" || a.NsPerOp != 1000 || a.AllocsPerOp != 50 {
		t.Fatalf("envelope best-of: %+v", a)
	}
}

func TestCompareZeroOldNs(t *testing.T) {
	c := Compare(snap(bench("p", "BenchmarkZ-8", 0)), snap(bench("p", "BenchmarkZ-8", 5)))
	if len(c.Deltas) != 1 || c.Deltas[0].Ratio != 0 {
		t.Fatalf("zero-baseline delta: %+v", c.Deltas)
	}
	if len(c.Regressions(0.1)) != 0 {
		t.Fatal("zero-baseline must not be flagged as regression")
	}
}

func TestCompareTakesMinOfRepeatedSamples(t *testing.T) {
	// -count=N runs leave N lines per benchmark; Compare must use the
	// fastest sample on each side (benchstat's best-of rule).
	old := snap(
		bench("p", "BenchmarkA-8", 1500),
		bench("p", "BenchmarkA-8", 1000), // old best
		bench("p", "BenchmarkA-8", 1300),
	)
	new := snap(
		bench("p", "BenchmarkA-8", 1100), // new best
		bench("p", "BenchmarkA-8", 1900),
	)
	c := Compare(old, new)
	if len(c.Deltas) != 1 {
		t.Fatalf("%d deltas, want 1 (samples must collapse)", len(c.Deltas))
	}
	if d := c.Deltas[0]; d.OldNs != 1000 || d.NewNs != 1100 {
		t.Fatalf("delta uses %v/%v, want best-of 1000/1100", d.OldNs, d.NewNs)
	}
	// A benchmark repeated only in old must appear once in OldOnly.
	old2 := snap(bench("p", "BenchmarkGone-8", 5), bench("p", "BenchmarkGone-8", 6),
		bench("p", "BenchmarkA-8", 1))
	c2 := Compare(old2, snap(bench("p", "BenchmarkA-8", 1)))
	if len(c2.OldOnly) != 1 {
		t.Fatalf("OldOnly = %v, want one entry", c2.OldOnly)
	}
}
