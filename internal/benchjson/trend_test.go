package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func trendSnaps() ([]*Snapshot, []string) {
	s1 := &Snapshot{Date: "2026-08-01", Benchmarks: []Benchmark{
		{Name: "BenchmarkSpGEMM", Package: "repro", Iterations: 100, NsPerOp: 16558124, AllocsPerOp: 45001, BytesPerOp: 5226471},
		{Name: "BenchmarkSpMV", Package: "repro", Iterations: 100, NsPerOp: 300000, AllocsPerOp: 2},
	}}
	s2 := &Snapshot{Date: "2026-08-02", Benchmarks: []Benchmark{
		{Name: "BenchmarkSpGEMM", Package: "repro", Iterations: 100, NsPerOp: 12516602, AllocsPerOp: 7, BytesPerOp: 246883},
		{Name: "BenchmarkNew", Package: "repro", Iterations: 100, NsPerOp: 42},
	}}
	return []*Snapshot{s1, s2}, []string{"BENCH_pre", "BENCH_post"}
}

func TestRenderTrendIsDeterministicAndComplete(t *testing.T) {
	snaps, labels := trendSnaps()
	var a, b bytes.Buffer
	if err := RenderTrend(&a, snaps, labels); err != nil {
		t.Fatal(err)
	}
	if err := RenderTrend(&b, snaps, labels); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trend render is not deterministic — the freshness gate would flap")
	}
	out := a.String()
	// Every benchmark and label is embedded; benchmarks absent from a
	// snapshot are marked with the -1 gap sentinel, not interpolated.
	for _, want := range []string{
		"BenchmarkSpGEMM", "BenchmarkSpMV", "BenchmarkNew",
		"BENCH_pre", "BENCH_post",
		`"ns":-1`, // gap sentinel for SpMV in snapshot 2 / New in snapshot 1
		"<!DOCTYPE html>",
		"prefers-color-scheme: dark", // dark mode is selected, not flipped
		"Table view",                 // accessibility: full data table exists
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trend output missing %q", want)
		}
	}
	// Self-contained: no external scripts or stylesheets.
	for _, banned := range []string{"<script src=", "<link "} {
		if strings.Contains(out, banned) {
			t.Fatalf("trend output references external resource %q", banned)
		}
	}
}

func TestRenderTrendCollapsesRepeatedSamples(t *testing.T) {
	// A -count=3 snapshot carries three lines per benchmark; the trend
	// point is the per-metric best-of, matching Compare.
	s := &Snapshot{Date: "2026-08-01", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Package: "p", Iterations: 1, NsPerOp: 1500, AllocsPerOp: 10},
		{Name: "BenchmarkA", Package: "p", Iterations: 1, NsPerOp: 1000, AllocsPerOp: 30},
	}}
	var buf bytes.Buffer
	if err := RenderTrend(&buf, []*Snapshot{s}, []string{"only"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ns":1000`) || !strings.Contains(out, `"allocs":10`) {
		t.Fatalf("trend did not take per-metric best-of:\n%s", out[:min(len(out), 400)])
	}
	if strings.Contains(out, `"ns":1500`) {
		t.Fatal("trend kept a non-minimal sample")
	}
}

func TestRenderTrendErrors(t *testing.T) {
	if err := RenderTrend(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("empty snapshot list must error")
	}
	s, _ := trendSnaps()
	if err := RenderTrend(&bytes.Buffer{}, s, []string{"one"}); err == nil {
		t.Fatal("label/snapshot length mismatch must error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
