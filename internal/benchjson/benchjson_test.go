package benchjson

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Imaginary CPU @ 2.40GHz
BenchmarkFigure3-8   	       2	 512345678 ns/op	        42.50 cells	  123456 B/op	     789 allocs/op
BenchmarkTable6-8    	       5	 104857600 ns/op
PASS
ok  	repro	3.456s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" {
		t.Errorf("headers: %q/%q", snap.GOOS, snap.GOARCH)
	}
	if snap.CPU != "Imaginary CPU @ 2.40GHz" {
		t.Errorf("cpu: %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks, want 2", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkFigure3-8" || b.Package != "repro" {
		t.Errorf("first: %+v", b)
	}
	if b.Iterations != 2 || b.NsPerOp != 512345678 {
		t.Errorf("timing: %+v", b)
	}
	if b.BytesPerOp != 123456 || b.AllocsPerOp != 789 {
		t.Errorf("memstats: %+v", b)
	}
	if b.Metrics["cells"] != 42.5 {
		t.Errorf("custom metric: %+v", b.Metrics)
	}
	if snap.Benchmarks[1].AllocsPerOp != 0 || snap.Benchmarks[1].NsPerOp != 104857600 {
		t.Errorf("second: %+v", snap.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("want error for output without benchmark lines")
	}
}
