package sim

// Calibrated achievable-efficiency presets. These are the only free
// parameters of the execution model; everything else (FLOPs, bytes,
// launches) is measured from the kernels' real data structures.
//
// The presets encode well-established GPU efficiency classes:
//
//   - EffLibrary: vendor-library code paths (cuBLAS, cuFFT, CUB, cuSPARSE
//     dense paths) that ship with years of tuning.
//   - EffTuned: carefully hand-tuned research kernels (the Cubie TC
//     implementations from DASP, tcFFT, LoRaStencil, BerryBees, ...).
//   - EffModerate: straightforward but regular code.
//   - EffIrregular: divergent control flow or scattered access (CC-E
//     essential-only replacements, sparse baselines).
//   - EffPoor: latency-bound or heavily divergent paths.
//
// Individual kernels combine these with small documented adjustments in
// their profile constructors; grep for "Eff" in internal/kernels to audit
// every calibration decision.
const (
	EffLibrary   = 0.85
	EffTuned     = 0.70
	EffModerate  = 0.50
	EffIrregular = 0.32
	EffPoor      = 0.20
)

// Common byte-accounting constants.
const (
	BytesF64   = 8
	BytesF32   = 4
	BytesIdx   = 4 // 32-bit indices in sparse formats
	BytesWord  = 8 // one uint64 bitmap word
	CachelineB = 128
)
