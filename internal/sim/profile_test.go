package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func TestRunComputeBound(t *testing.T) {
	s := device.H200()
	p := Profile{
		TensorFLOPs: 1e12,
		DRAMBytes:   1e9, // tiny memory traffic
		Launches:    1,
		Eff:         Efficiency{Tensor: 1, DRAM: 1},
	}
	r := Run(s, p)
	want := 1e12 / (66.9 * 1e12)
	if math.Abs(r.Breakdown.Tensor-want)/want > 1e-12 {
		t.Errorf("tensor time = %v, want %v", r.Breakdown.Tensor, want)
	}
	if r.Bottleneck != "TensorCore" {
		t.Errorf("bottleneck = %s, want TensorCore", r.Bottleneck)
	}
	if r.Time <= r.Breakdown.Tensor {
		t.Error("total time should include launch overhead")
	}
}

func TestRunMemoryBound(t *testing.T) {
	s := device.A100()
	p := Profile{
		VectorFLOPs: 1e9,
		DRAMBytes:   1e12,
		Launches:    1,
		Eff:         Efficiency{Vector: 1, DRAM: 0.8},
	}
	r := Run(s, p)
	if r.Bottleneck != "DRAM" {
		t.Errorf("bottleneck = %s, want DRAM", r.Bottleneck)
	}
	want := 1e12 / (1.555 * 1e12 * 0.8)
	if math.Abs(r.Breakdown.DRAM-want)/want > 1e-12 {
		t.Errorf("DRAM time = %v, want %v", r.Breakdown.DRAM, want)
	}
}

func TestTensorTwiceAsFastAsVector(t *testing.T) {
	// Same FLOPs, same efficiency: tensor path should be ~2× faster on
	// H200 and equal on B200 (Table 5 ratio).
	pT := Profile{TensorFLOPs: 1e13, Launches: 1, Eff: Efficiency{Tensor: 0.7}}
	pV := Profile{VectorFLOPs: 1e13, Launches: 1, Eff: Efficiency{Vector: 0.7}}

	h := device.H200()
	ratioH := Run(h, pV).Time / Run(h, pT).Time
	if ratioH < 1.9 || ratioH > 2.1 {
		t.Errorf("H200 vector/tensor time ratio = %v, want ≈2", ratioH)
	}
	b := device.B200()
	ratioB := Run(b, pV).Time / Run(b, pT).Time
	if ratioB < 0.95 || ratioB > 1.05 {
		t.Errorf("B200 vector/tensor time ratio = %v, want ≈1", ratioB)
	}
}

func TestLaunchOverheadDominatesTinyKernels(t *testing.T) {
	s := device.H200()
	p := Profile{TensorFLOPs: 1e3, DRAMBytes: 1e3, Launches: 1,
		Eff: Efficiency{Tensor: 1, DRAM: 1}}
	r := Run(s, p)
	if r.Bottleneck != "Latency" {
		t.Errorf("bottleneck = %s, want Latency", r.Bottleneck)
	}
	if r.Time < s.LaunchOverheadUS*1e-6 {
		t.Error("time below launch overhead")
	}
}

func TestOverlapHidesSecondaryResources(t *testing.T) {
	s := device.H200()
	base := Profile{
		TensorFLOPs: 1e11, // secondary
		DRAMBytes:   1e12, // bottleneck
		Eff:         Efficiency{Tensor: 1, DRAM: 1},
	}
	good, poor := base, base
	good.Overlap = 1.0
	poor.Overlap = 0.999 // distinguish explicitly-set from unset
	poor.Overlap = 0.2
	tGood := Run(s, good).Time
	tPoor := Run(s, poor).Time
	if tPoor <= tGood {
		t.Fatalf("poor overlap (%v) should be slower than good (%v)", tPoor, tGood)
	}
	// Perfect overlap = pure bottleneck time.
	want := 1e12 / (4.0 * 1e12)
	if math.Abs(tGood-want)/want > 1e-9 {
		t.Errorf("fully-overlapped time %v, want %v", tGood, want)
	}
	// Zero overlap = sum of resource times.
	zero := base
	zero.Overlap = 1e-12 // effectively 0 but not "unset"
	tZero := Run(s, zero).Time
	wantZero := 1e12/(4.0*1e12) + 1e11/(66.9*1e12)
	if math.Abs(tZero-wantZero)/wantZero > 1e-6 {
		t.Errorf("unoverlapped time %v, want %v", tZero, wantZero)
	}
}

func TestSyncStepsCharged(t *testing.T) {
	s := device.A100()
	p := Profile{VectorFLOPs: 1e6, SyncSteps: 100}
	r := Run(s, p)
	if r.Breakdown.Sync <= 0 {
		t.Fatal("sync time not charged")
	}
	if r.Time < r.Breakdown.Sync {
		t.Fatal("total time below sync time")
	}
	// Sync latency is cheaper on newer architectures.
	rh := Run(device.H200(), p)
	if rh.Breakdown.Sync >= r.Breakdown.Sync {
		t.Error("H200 sync should be cheaper than A100")
	}
}

func TestZeroProfileStillHasTime(t *testing.T) {
	r := Run(device.A100(), Profile{})
	if r.Time <= 0 {
		t.Fatal("zero profile must still take positive time")
	}
}

func TestDefaultEfficiencySubstitution(t *testing.T) {
	s := device.H200()
	p := Profile{TensorFLOPs: 1e12, Launches: 1} // Eff all zero
	r := Run(s, p)
	want := 1e12 / (66.9 * 1e12 * DefaultEfficiency)
	if math.Abs(r.Breakdown.Tensor-want)/want > 1e-12 {
		t.Errorf("default efficiency not applied: %v vs %v", r.Breakdown.Tensor, want)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{TensorFLOPs: -1},
		{DRAMBytes: math.NaN()},
		{Launches: -1},
		{Eff: Efficiency{Tensor: 1.5}},
		{Eff: Efficiency{DRAM: -0.1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := (Profile{TensorFLOPs: 1, Launches: 2}).Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestRunPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not panic on invalid profile")
		}
	}()
	Run(device.A100(), Profile{TensorFLOPs: -5})
}

func TestAddAndScale(t *testing.T) {
	p := Profile{TensorFLOPs: 1, VectorFLOPs: 2, BitOps: 3, IntOps: 4,
		DRAMBytes: 5, L2Bytes: 6, L1Bytes: 7, ConstBytes: 8, Launches: 1}
	q := p
	p.Add(q)
	if p.TensorFLOPs != 2 || p.ConstBytes != 16 || p.Launches != 2 {
		t.Fatalf("Add wrong: %+v", p)
	}
	p.Scale(0.5)
	if p.TensorFLOPs != 1 || p.DRAMBytes != 5 || p.Launches != 1 {
		t.Fatalf("Scale wrong: %+v", p)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	p := Profile{TensorFLOPs: 100, VectorFLOPs: 50, DRAMBytes: 75, L1Bytes: 300}
	if ai := p.ArithmeticIntensity(); ai != 2 {
		t.Errorf("AI = %v, want 2", ai)
	}
	if l1 := p.L1Intensity(); l1 != 0.5 {
		t.Errorf("L1 intensity = %v, want 0.5", l1)
	}
	if !math.IsInf(Profile{TensorFLOPs: 1}.ArithmeticIntensity(), 1) {
		t.Error("zero-byte AI should be +Inf")
	}
}

func TestPowerModelBounds(t *testing.T) {
	for _, s := range device.All() {
		if p := PowerAt(s, 0, 0, 0, 0, 0); p != s.IdleWatts {
			t.Errorf("%s: idle power = %v, want %v", s.Name, p, s.IdleWatts)
		}
		if p := PowerAt(s, 1, 1, 1, 1, 1); p > s.TDPWatts {
			t.Errorf("%s: power %v exceeds TDP %v", s.Name, p, s.TDPWatts)
		}
		if p := PowerAt(s, 0.7, 0, 0, 0.5, 0.2); p <= s.IdleWatts || p >= s.TDPWatts {
			t.Errorf("%s: mid-utilization power %v not between idle and TDP", s.Name, p)
		}
	}
}

func TestPowerMonotonicInUtilization(t *testing.T) {
	s := device.H200()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		p := PowerAt(s, u, 0, 0, u/2, 0)
		if p < prev {
			t.Fatalf("power not monotone at u=%v", u)
		}
		prev = p
	}
}

func TestEDPDefinition(t *testing.T) {
	r := Run(device.H200(), Profile{TensorFLOPs: 1e13, DRAMBytes: 1e10, Launches: 1,
		Eff: Efficiency{Tensor: 0.7, DRAM: 0.7}})
	if math.Abs(r.EDP-r.AvgPower*r.Time*r.Time) > 1e-15 {
		t.Errorf("EDP %v != P·t² %v", r.EDP, r.AvgPower*r.Time*r.Time)
	}
	if math.Abs(r.Energy-r.AvgPower*r.Time) > 1e-15 {
		t.Error("Energy != P·t")
	}
}

func TestUtilizationInRange(t *testing.T) {
	r := Run(device.B200(), Profile{
		TensorFLOPs: 1e12, VectorFLOPs: 1e11, BitOps: 1e10,
		DRAMBytes: 1e11, L1Bytes: 1e12, Launches: 10,
	})
	for name, u := range map[string]float64{
		"tensor": r.UtilTensor, "vector": r.UtilVector, "bit": r.UtilBit,
		"dram": r.UtilDRAM, "l1": r.UtilL1,
	} {
		if u < 0 || u > 1 {
			t.Errorf("%s utilization %v out of range", name, u)
		}
	}
}

func TestHigherBandwidthDeviceFasterOnMemoryBound(t *testing.T) {
	p := Profile{VectorFLOPs: 1e9, DRAMBytes: 1e12, Launches: 1,
		Eff: Efficiency{DRAM: 0.8, Vector: 0.8}}
	tA := Run(device.A100(), p).Time
	tH := Run(device.H200(), p).Time
	tB := Run(device.B200(), p).Time
	if !(tB < tH && tH < tA) {
		t.Errorf("memory-bound ordering wrong: A100 %v, H200 %v, B200 %v", tA, tH, tB)
	}
}

func TestTimeMonotoneInWork(t *testing.T) {
	// Property: adding work never reduces modeled time.
	f := func(flops, bytes uint32) bool {
		s := device.H200()
		base := Profile{TensorFLOPs: 1e9, DRAMBytes: 1e9, Launches: 1,
			Eff: Efficiency{Tensor: 0.6, DRAM: 0.8}}
		more := base
		more.TensorFLOPs += float64(flops)
		more.DRAMBytes += float64(bytes)
		return Run(s, more).Time >= Run(s, base).Time-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeMonotoneInEfficiency(t *testing.T) {
	s := device.A100()
	prev := math.Inf(1)
	for eff := 0.1; eff <= 1.0; eff += 0.1 {
		p := Profile{TensorFLOPs: 1e12, Launches: 1,
			Eff: Efficiency{Tensor: eff, DRAM: 1}}
		tm := Run(s, p).Time
		if tm > prev+1e-15 {
			t.Fatalf("time not monotone in efficiency at %v", eff)
		}
		prev = tm
	}
}

func TestOverlapMonotone(t *testing.T) {
	s := device.H200()
	prev := math.Inf(1)
	for ov := 0.1; ov <= 1.0; ov += 0.1 {
		p := Profile{TensorFLOPs: 1e12, DRAMBytes: 1e11, Launches: 1,
			Overlap: ov, Eff: Efficiency{Tensor: 0.5, DRAM: 0.5}}
		tm := Run(s, p).Time
		if tm > prev+1e-15 {
			t.Fatalf("time not monotone in overlap at %v", ov)
		}
		prev = tm
	}
}
