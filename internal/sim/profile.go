// Package sim provides the analytical GPU execution model that converts a
// kernel's execution profile (operations issued, bytes moved) into time,
// power, energy, and energy-delay product on a simulated device.
//
// The model is the paper's own roofline methodology (Section 9) used as a
// forward model: execution time is the maximum over per-resource service
// times (tensor unit, vector unit, bit unit, DRAM, L2, L1, constant cache)
// plus per-launch overhead. Per-variant achievable-efficiency factors are
// calibrated once (see calibration.go) against the relative results the
// paper reports; all other quantities — FLOP counts, byte counts, launch
// counts — are measured from the real data structures the kernels traverse.
package sim

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Profile records the work one kernel invocation performs. Kernels fill it
// while they execute their real arithmetic.
type Profile struct {
	// Floating-point and bit work.
	TensorFLOPs float64 // FP64 FLOPs issued as tensor-core MMA instructions
	VectorFLOPs float64 // FP64 FLOPs issued as CUDA-core (vector) instructions
	BitOps      float64 // single-bit MMA operations (AND+POPC)
	IntOps      float64 // integer/address arithmetic on the vector unit

	// Memory traffic in bytes.
	DRAMBytes  float64 // global-memory traffic that misses all caches
	L2Bytes    float64 // traffic served by L2
	L1Bytes    float64 // traffic served by L1/shared memory
	ConstBytes float64 // constant-cache broadcasts (near-free operand reuse)

	// Launches is the number of kernel launches this invocation needs.
	Launches int

	// SyncSteps is the length of the kernel's serial dependency chain
	// (barriers, carry propagation, BFS levels) charged at the device's
	// per-step synchronization cost. It dominates micro-kernels such as the
	// Scan/Reduction block primitives.
	SyncSteps float64

	// Overlap in [0, 1] is how well the variant overlaps its non-bottleneck
	// resources with the bottleneck (software pipelining, async copies).
	// Tensor-core kernels with cooperative block loads overlap well; scalar
	// MMA-replacement code overlaps poorly, which is why the paper's CC
	// variants lose even on memory-bound kernels (Section 6.2: the gap
	// "exceeds the ratio between the peak performances"). Zero means
	// DefaultOverlap.
	Overlap float64

	// Eff holds the achievable-efficiency factors for this kernel variant.
	Eff Efficiency
}

// DefaultOverlap is substituted when Profile.Overlap is unset.
const DefaultOverlap = 0.85

// Efficiency captures what fraction of each resource's peak a kernel variant
// can sustain. Values are in (0, 1]; zeros are replaced by DefaultEfficiency
// at Run time.
type Efficiency struct {
	Tensor float64
	Vector float64
	Bit    float64
	DRAM   float64
	L2     float64
	L1     float64
}

// DefaultEfficiency is substituted for unset (zero) efficiency fields.
const DefaultEfficiency = 0.5

// Add accumulates another profile's work into p (used when a workload is
// composed of several sub-kernels). Efficiency fields are not summed; the
// caller owns them.
func (p *Profile) Add(q Profile) {
	p.TensorFLOPs += q.TensorFLOPs
	p.VectorFLOPs += q.VectorFLOPs
	p.BitOps += q.BitOps
	p.IntOps += q.IntOps
	p.DRAMBytes += q.DRAMBytes
	p.L2Bytes += q.L2Bytes
	p.L1Bytes += q.L1Bytes
	p.ConstBytes += q.ConstBytes
	p.Launches += q.Launches
	p.SyncSteps += q.SyncSteps
}

// Scale multiplies all work fields by f (used to extrapolate a measured
// block to the full problem when a kernel samples representative blocks).
func (p *Profile) Scale(f float64) {
	p.TensorFLOPs *= f
	p.VectorFLOPs *= f
	p.BitOps *= f
	p.IntOps *= f
	p.DRAMBytes *= f
	p.L2Bytes *= f
	p.L1Bytes *= f
	p.ConstBytes *= f
	p.SyncSteps *= f
	p.Launches = int(math.Ceil(float64(p.Launches) * f))
}

// ArithmeticIntensity returns FP64 FLOPs per DRAM byte, the x-axis of the
// cache-aware roofline (Figure 9).
func (p Profile) ArithmeticIntensity() float64 {
	if p.DRAMBytes == 0 {
		return math.Inf(1)
	}
	return (p.TensorFLOPs + p.VectorFLOPs) / p.DRAMBytes
}

// L1Intensity returns FP64 FLOPs per L1 byte, the cache-level intensity used
// by the cache-aware roofline.
func (p Profile) L1Intensity() float64 {
	if p.L1Bytes == 0 {
		return math.Inf(1)
	}
	return (p.TensorFLOPs + p.VectorFLOPs) / p.L1Bytes
}

// Validate reports an error if the profile is structurally impossible.
func (p Profile) Validate() error {
	for name, v := range map[string]float64{
		"TensorFLOPs": p.TensorFLOPs, "VectorFLOPs": p.VectorFLOPs,
		"BitOps": p.BitOps, "IntOps": p.IntOps,
		"DRAMBytes": p.DRAMBytes, "L2Bytes": p.L2Bytes,
		"L1Bytes": p.L1Bytes, "ConstBytes": p.ConstBytes,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sim: profile field %s = %v is invalid", name, v)
		}
	}
	if p.Launches < 0 {
		return fmt.Errorf("sim: negative launch count %d", p.Launches)
	}
	if p.SyncSteps < 0 || math.IsNaN(p.SyncSteps) {
		return fmt.Errorf("sim: invalid sync steps %v", p.SyncSteps)
	}
	if p.Overlap < 0 || p.Overlap > 1 {
		return fmt.Errorf("sim: overlap %v outside [0,1]", p.Overlap)
	}
	for name, v := range map[string]float64{
		"Tensor": p.Eff.Tensor, "Vector": p.Eff.Vector, "Bit": p.Eff.Bit,
		"DRAM": p.Eff.DRAM, "L2": p.Eff.L2, "L1": p.Eff.L1,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("sim: efficiency %s = %v outside [0,1]", name, v)
		}
	}
	return nil
}

// Breakdown holds the per-resource service times (seconds) behind a Report.
type Breakdown struct {
	Tensor, Vector, Bit float64
	DRAM, L2, L1, Const float64
	Launch, Sync        float64
}

// Report is the simulated outcome of executing a profile on a device.
type Report struct {
	Device     string
	Time       float64 // seconds for one invocation
	Breakdown  Breakdown
	Bottleneck string  // name of the dominant resource
	AvgPower   float64 // watts, steady-state while the kernel runs
	Energy     float64 // joules for one invocation
	EDP        float64 // energy-delay product: AvgPower × Time² (J·s)

	// Utilization per resource in [0, 1] (service time / total time).
	UtilTensor, UtilVector, UtilBit, UtilDRAM, UtilL1 float64
}

// Run executes the analytical model for one kernel invocation of profile p
// on device spec s.
func Run(s device.Spec, p Profile) Report {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	eff := p.Eff
	for _, f := range []*float64{&eff.Tensor, &eff.Vector, &eff.Bit, &eff.DRAM, &eff.L2, &eff.L1} {
		if *f == 0 {
			*f = DefaultEfficiency
		}
	}

	overlap := p.Overlap
	if overlap == 0 {
		overlap = DefaultOverlap
	}

	const tera = 1e12
	b := Breakdown{
		Tensor: p.TensorFLOPs / (s.TensorFP64 * tera * eff.Tensor),
		Bit:    p.BitOps / (s.TensorBit * tera * eff.Bit),
		DRAM:   p.DRAMBytes / (s.DRAMBWTBs * tera * eff.DRAM),
		L2:     p.L2Bytes / (s.L2BWTBs * tera * eff.L2),
		L1:     p.L1Bytes / (s.L1BWTBs * tera * eff.L1),
		Const:  p.ConstBytes / (s.ConstBWTBs * tera),
		Launch: float64(p.Launches) * s.LaunchOverheadUS * 1e-6,
		Sync:   p.SyncSteps * syncCostUS(s) * 1e-6,
	}
	// Integer work shares the vector pipes with FP64 vector work but at the
	// (higher) FP32-rate; model it at 2× the FP64 CUDA peak.
	b.Vector = p.VectorFLOPs/(s.CUDAFP64*tera*eff.Vector) +
		p.IntOps/(2*s.CUDAFP64*tera*eff.Vector)

	type rt struct {
		name string
		t    float64
	}
	resources := []rt{
		{"TensorCore", b.Tensor}, {"CUDACore", b.Vector}, {"BitMMA", b.Bit},
		{"DRAM", b.DRAM}, {"L2", b.L2}, {"L1", b.L1}, {"Const", b.Const},
	}
	busy, sum, bottleneck := 0.0, 0.0, "Launch"
	for _, r := range resources {
		sum += r.t
		if r.t > busy {
			busy, bottleneck = r.t, r.name
		}
	}
	// The bottleneck resource sets the floor; the remainder of the other
	// resources' service time is hidden only to the extent the variant
	// overlaps well.
	total := busy + (1-overlap)*(sum-busy) + b.Launch + b.Sync
	if total <= 0 {
		total = s.LaunchOverheadUS * 1e-6
	}
	if b.Launch+b.Sync > busy {
		bottleneck = "Latency"
	}

	r := Report{
		Device:     s.Name,
		Time:       total,
		Breakdown:  b,
		Bottleneck: bottleneck,
		UtilTensor: clamp01(b.Tensor / total),
		UtilVector: clamp01(b.Vector / total),
		UtilBit:    clamp01(b.Bit / total),
		UtilDRAM:   clamp01(b.DRAM / total),
		UtilL1:     clamp01(b.L1 / total),
	}
	r.AvgPower = PowerAt(s, r.UtilTensor, r.UtilVector, r.UtilBit, r.UtilDRAM, r.UtilL1)
	r.Energy = r.AvgPower * r.Time
	r.EDP = r.AvgPower * r.Time * r.Time
	return r
}

// Power-model weights: the share of the dynamic power envelope (TDP − idle)
// each fully-utilized resource consumes. Calibrated against the paper's
// Figure 8 power traces on H200 (e.g. Stencil TC ≈ 450 W, Scan TC ≈ 244 W,
// BFS TC ≈ 375 W on a 750 W part).
const (
	powerTensorShare = 0.58
	powerVectorShare = 0.46
	powerBitShare    = 0.40
	powerDRAMShare   = 0.34
	powerL1Share     = 0.10
)

// PowerAt returns the modeled board power for the given resource
// utilizations on device s, clamped to the TDP.
func PowerAt(s device.Spec, uT, uV, uB, uM, uL1 float64) float64 {
	dyn := powerTensorShare*uT + powerVectorShare*uV + powerBitShare*uB +
		powerDRAMShare*uM + powerL1Share*uL1
	p := s.IdleWatts + (s.TDPWatts-s.IdleWatts)*dyn
	return math.Min(p, s.TDPWatts)
}

// syncCostUS is the per-dependency-step synchronization latency in
// microseconds: a barrier plus a shared-memory round trip, cheaper on the
// newer parts with faster clocks and improved barrier hardware.
func syncCostUS(s device.Spec) float64 {
	switch s.Arch {
	case device.Ampere:
		return 0.085
	case device.Hopper:
		return 0.055
	default: // Blackwell
		return 0.050
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
