// Package pca implements the principal component analysis pipeline of
// Section 10 (Figures 10 and 11): feature standardization, covariance
// computation, eigendecomposition via the cyclic Jacobi method, and
// projection onto the top two components.
package pca

import (
	"fmt"
	"math"
	"sort"
)

// Result holds a fitted PCA.
type Result struct {
	Mean, Std  []float64   // standardization parameters
	Components [][]float64 // top components, each length = #features
	Explained  []float64   // fraction of variance per component
	Projected  [][]float64 // input data projected onto the components
}

// Fit standardizes data (rows = samples, columns = features), computes the
// covariance matrix, extracts the top k principal components, and projects
// the samples. Constant features are left centered with unit divisor.
func Fit(data [][]float64, k int) (*Result, error) {
	n := len(data)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 samples, got %d", n)
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("pca: row %d has %d features, want %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("pca: non-finite feature at row %d, column %d", i, j)
			}
		}
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k = %d outside [1, %d]", k, d)
	}

	r := &Result{Mean: make([]float64, d), Std: make([]float64, d)}
	for j := 0; j < d; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += data[i][j]
		}
		r.Mean[j] = sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			dv := data[i][j] - r.Mean[j]
			ss += dv * dv
		}
		r.Std[j] = math.Sqrt(ss / float64(n))
		if r.Std[j] == 0 {
			r.Std[j] = 1
		}
	}
	z := make([][]float64, n)
	for i := range z {
		z[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			z[i][j] = (data[i][j] - r.Mean[j]) / r.Std[j]
		}
	}

	// Covariance of the standardized data.
	cov := make([][]float64, d)
	for a := range cov {
		cov[a] = make([]float64, d)
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += z[i][a] * z[i][b]
			}
			s /= float64(n - 1)
			cov[a][b], cov[b][a] = s, s
		}
	}

	vals, vecs := jacobiEigen(cov)
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	for c := 0; c < k; c++ {
		idx := order[c]
		comp := make([]float64, d)
		for j := 0; j < d; j++ {
			comp[j] = vecs[j][idx]
		}
		// Deterministic sign: largest-magnitude coefficient positive.
		maxJ := 0
		for j := 1; j < d; j++ {
			if math.Abs(comp[j]) > math.Abs(comp[maxJ]) {
				maxJ = j
			}
		}
		if comp[maxJ] < 0 {
			for j := range comp {
				comp[j] = -comp[j]
			}
		}
		r.Components = append(r.Components, comp)
		if total > 0 {
			r.Explained = append(r.Explained, math.Max(vals[idx], 0)/total)
		} else {
			r.Explained = append(r.Explained, 0)
		}
	}

	r.Projected = make([][]float64, n)
	for i := 0; i < n; i++ {
		r.Projected[i] = r.project(z[i])
	}
	return r, nil
}

// Transform projects a new raw sample with the fitted standardization.
func (r *Result) Transform(sample []float64) ([]float64, error) {
	if len(sample) != len(r.Mean) {
		return nil, fmt.Errorf("pca: sample has %d features, want %d", len(sample), len(r.Mean))
	}
	z := make([]float64, len(sample))
	for j := range sample {
		z[j] = (sample[j] - r.Mean[j]) / r.Std[j]
	}
	return r.project(z), nil
}

func (r *Result) project(z []float64) []float64 {
	out := make([]float64, len(r.Components))
	for c, comp := range r.Components {
		var s float64
		for j := range z {
			s += z[j] * comp[j]
		}
		out[c] = s
	}
	return out
}

// jacobiEigen computes all eigenvalues and eigenvectors of a symmetric
// matrix with the cyclic Jacobi rotation method. vecs columns are the
// eigenvectors (vecs[row][col]).
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	d := len(a)
	m := make([][]float64, d)
	vecs = make([][]float64, d)
	for i := 0; i < d; i++ {
		m[i] = append([]float64(nil), a[i]...)
		vecs[i] = make([]float64, d)
		vecs[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < d-1; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(m[p][q]) < 1e-30 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < d; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for j := 0; j < d; j++ {
					mpj, mqj := m[p][j], m[q][j]
					m[p][j] = c*mpj - s*mqj
					m[q][j] = s*mpj + c*mqj
				}
				for i := 0; i < d; i++ {
					vip, viq := vecs[i][p], vecs[i][q]
					vecs[i][p] = c*vip - s*viq
					vecs[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, d)
	for i := 0; i < d; i++ {
		vals[i] = m[i][i]
	}
	return vals, vecs
}

// Dispersion returns the mean pairwise Euclidean distance between projected
// points — the spread measure Section 10 uses to compare the five selected
// representatives against the full collection.
func Dispersion(points [][]float64) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d2 float64
			for k := range points[i] {
				dv := points[i][k] - points[j][k]
				d2 += dv * dv
			}
			sum += math.Sqrt(d2)
			cnt++
		}
	}
	return sum / float64(cnt)
}

// CoverageNearest returns the fraction of points whose nearest
// representative lies within radius — the "94.6% of all graphs lying close
// to at least one representative" measure of Section 10.
func CoverageNearest(points, reps [][]float64, radius float64) float64 {
	if len(points) == 0 || len(reps) == 0 {
		return 0
	}
	covered := 0
	for _, p := range points {
		best := math.Inf(1)
		for _, r := range reps {
			var d2 float64
			for k := range p {
				dv := p[k] - r[k]
				d2 += dv * dv
			}
			if d := math.Sqrt(d2); d < best {
				best = d
			}
		}
		if best <= radius {
			covered++
		}
	}
	return float64(covered) / float64(len(points))
}
