package pca

import (
	"math"
	"testing"

	"repro/internal/lcg"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Points along y = 2x with small noise: PC1 must align with (1, 2)/√5.
	g := lcg.New(7)
	var data [][]float64
	for i := 0; i < 500; i++ {
		x := g.Symmetric()
		data = append(data, []float64{x, 2*x + 0.01*g.Symmetric()})
	}
	r, err := Fit(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Components) != 2 {
		t.Fatalf("%d components", len(r.Components))
	}
	// After standardization both features have unit variance, so PC1 is
	// (1,1)/√2 for perfectly correlated features.
	c := r.Components[0]
	if math.Abs(math.Abs(c[0])-math.Abs(c[1])) > 0.02 {
		t.Errorf("PC1 = %v, want ≈ (±0.707, ±0.707)", c)
	}
	if r.Explained[0] < 0.95 {
		t.Errorf("PC1 explains %v, want >0.95", r.Explained[0])
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	g := lcg.New(11)
	var data [][]float64
	for i := 0; i < 200; i++ {
		row := make([]float64, 5)
		g.Fill(row)
		row[3] = row[0] + 0.5*row[1] // correlation structure
		data = append(data, row)
	}
	r, err := Fit(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		var norm float64
		for _, v := range r.Components[a] {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Errorf("component %d norm² = %v", a, norm)
		}
		for b := a + 1; b < 3; b++ {
			var dot float64
			for j := range r.Components[a] {
				dot += r.Components[a][j] * r.Components[b][j]
			}
			if math.Abs(dot) > 1e-9 {
				t.Errorf("components %d,%d not orthogonal: %v", a, b, dot)
			}
		}
	}
}

func TestProjectionVarianceOrdered(t *testing.T) {
	g := lcg.New(13)
	var data [][]float64
	for i := 0; i < 300; i++ {
		row := make([]float64, 4)
		g.Fill(row)
		row[1] *= 3 // dominant raw variance (standardized away)
		row[2] = row[0] * 0.9
		data = append(data, row)
	}
	r, err := Fit(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < 4; c++ {
		if r.Explained[c] > r.Explained[c-1]+1e-12 {
			t.Errorf("explained variance not sorted: %v", r.Explained)
		}
	}
	var sum float64
	for _, e := range r.Explained {
		sum += e
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("explained variance sums to %v", sum)
	}
}

func TestTransformMatchesProjected(t *testing.T) {
	g := lcg.New(17)
	var data [][]float64
	for i := 0; i < 100; i++ {
		row := make([]float64, 3)
		g.Fill(row)
		data = append(data, row)
	}
	r, err := Fit(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Transform(data[5])
	if err != nil {
		t.Fatal(err)
	}
	for k := range p {
		if math.Abs(p[k]-r.Projected[5][k]) > 1e-12 {
			t.Fatalf("Transform disagrees with Projected: %v vs %v", p, r.Projected[5])
		}
	}
	if _, err := r.Transform([]float64{1}); err == nil {
		t.Error("wrong-width sample accepted")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}}, 1); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3, 4}}, 3); err == nil {
		t.Error("k > d accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3, 4}}, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	data := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	r, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Projected {
		if math.IsNaN(p[0]) {
			t.Fatal("constant feature produced NaN")
		}
	}
}

func TestDeterministicSigns(t *testing.T) {
	g := lcg.New(23)
	var data [][]float64
	for i := 0; i < 50; i++ {
		row := make([]float64, 3)
		g.Fill(row)
		data = append(data, row)
	}
	a, _ := Fit(data, 2)
	b, _ := Fit(data, 2)
	for c := range a.Components {
		for j := range a.Components[c] {
			if a.Components[c][j] != b.Components[c][j] {
				t.Fatal("nondeterministic components")
			}
		}
	}
}

func TestDispersion(t *testing.T) {
	if d := Dispersion([][]float64{{0, 0}, {3, 4}}); math.Abs(d-5) > 1e-12 {
		t.Errorf("dispersion = %v, want 5", d)
	}
	if d := Dispersion([][]float64{{1, 1}}); d != 0 {
		t.Errorf("single-point dispersion = %v", d)
	}
	// Spread-out representatives disperse more than clustered ones.
	tight := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}}
	wide := [][]float64{{0, 0}, {5, 0}, {0, 5}}
	if Dispersion(wide) <= Dispersion(tight) {
		t.Error("wide set should disperse more")
	}
}

func TestCoverageNearest(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 0}, {10, 10}}
	reps := [][]float64{{0, 0}}
	if c := CoverageNearest(points, reps, 1.5); math.Abs(c-2.0/3) > 1e-12 {
		t.Errorf("coverage = %v, want 2/3", c)
	}
	if c := CoverageNearest(points, reps, 100); c != 1 {
		t.Errorf("coverage = %v, want 1", c)
	}
	if c := CoverageNearest(nil, reps, 1); c != 0 {
		t.Error("empty points should cover 0")
	}
}

func TestFitRejectsNonFinite(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}, {math.NaN(), 4}}, 1); err == nil {
		t.Error("NaN feature accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {math.Inf(1), 4}}, 1); err == nil {
		t.Error("Inf feature accepted")
	}
}
