package httputil

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep is the test policy: real backoff math, no real waiting.
func noSleep(p Policy) (Policy, *[]time.Duration) {
	var slept []time.Duration
	p.Sleep = func(d time.Duration) { slept = append(slept, d) }
	return p, &slept
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 1 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // capped
		1 * time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second, Jitter: 0.25}
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r := r
		p.Rand = func() float64 { return r }
		for retry := 0; retry < 5; retry++ {
			base := float64(100*time.Millisecond) * float64(int(1)<<retry)
			lo := time.Duration(base * (1 - p.Jitter))
			hi := time.Duration(base * (1 + p.Jitter))
			got := p.Backoff(retry)
			if got < lo || got > hi {
				t.Errorf("Backoff(%d) with rand=%v = %v, outside [%v, %v]", retry, r, got, lo, hi)
			}
		}
	}
	// Jitter must actually move the value: the extremes of the rand range
	// land on the extremes of the band.
	p.Rand = func() float64 { return 0 }
	if got := p.Backoff(0); got != 75*time.Millisecond {
		t.Errorf("rand=0 Backoff(0) = %v, want 75ms", got)
	}
	p.Rand = func() float64 { return 1 }
	if got := p.Backoff(0); got != 125*time.Millisecond {
		t.Errorf("rand=1 Backoff(0) = %v, want 125ms", got)
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		200: false, 204: false, 301: false,
		400: false, 404: false, 409: false,
		429: true,
		500: true, 501: false, 502: true, 503: true, 504: true,
	} {
		if got := RetryableStatus(code); got != want {
			t.Errorf("RetryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "payload")
	}))
	defer srv.Close()

	p, slept := noSleep(DefaultPolicy())
	resp, err := Do(srv.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, srv.URL, nil)
	}, p)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (one backoff per retry)", len(*slept))
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	p, slept := noSleep(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	resp, err := Do(srv.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, srv.URL, nil)
	}, p)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want the final 500 surfaced", resp.StatusCode)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d requests, want exactly MaxAttempts=4", got)
	}
	if len(*slept) != 3 {
		t.Errorf("slept %d times, want 3", len(*slept))
	}
}

func TestDoNonRetryableShortCircuits(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such entry", http.StatusNotFound)
	}))
	defer srv.Close()

	p, slept := noSleep(DefaultPolicy())
	resp, err := Do(srv.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, srv.URL, nil)
	}, p)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 — a 404 must not be retried", got)
	}
	if len(*slept) != 0 {
		t.Errorf("slept %d times, want 0", len(*slept))
	}
}

func TestDoConnectionErrorRetriesThenFails(t *testing.T) {
	// A listener that is already closed: every attempt is a connection
	// refusal, so Do must exhaust its budget and return the dial error.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	p, slept := noSleep(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	resp, err := Do(nil, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}, p)
	if err == nil {
		resp.Body.Close()
		t.Fatal("Do succeeded against a closed listener")
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (MaxAttempts-1)", len(*slept))
	}
}

func TestDoRebuildsRequestPerAttempt(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	var builds atomic.Int64
	p, _ := noSleep(DefaultPolicy())
	resp, err := Do(srv.Client(), func() (*http.Request, error) {
		builds.Add(1)
		return http.NewRequest(http.MethodGet, srv.URL, nil)
	}, p)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if builds.Load() != 2 {
		t.Errorf("build called %d times, want once per attempt (2)", builds.Load())
	}
}
