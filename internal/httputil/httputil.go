// Package httputil is the shared HTTP retry/backoff discipline: every
// client in this repository that talks to a peer daemon — the runcache
// remote tier, the serve control-API client, the distributed-campaign
// workers — retries transient failures through one Policy instead of
// growing its own ad-hoc loop. The shape follows soci-snapshotter's
// util/http/retry.go: capped exponential backoff with multiplicative
// jitter, a bounded attempt budget, and an explicit status-code contract
// for what is worth retrying.
//
// Retryable means "trying again can plausibly succeed without anyone
// fixing anything": connection-level errors, 429 (the peer shed load and
// told us when to come back), and 5xx server errors except 501. A 4xx is
// returned to the caller on the first attempt — a malformed request or a
// missing entry does not become well-formed by waiting.
package httputil

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"time"
)

// Policy bounds one retry loop. The zero value is not useful; start from
// DefaultPolicy and override fields.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 behave as 1.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// Jitter is the multiplicative jitter fraction: each delay is scaled
	// by a uniform factor in [1-Jitter, 1+Jitter], so a fleet of workers
	// retrying against one coordinator does not thunder in lockstep.
	Jitter float64

	// Sleep and Rand are test seams; nil means time.Sleep and
	// math/rand.Float64.
	Sleep func(time.Duration)
	Rand  func() float64
}

// DefaultPolicy is the client-facing default: 5 attempts spanning roughly
// 100ms + 200ms + 400ms + 800ms (±25%) of backoff before giving up.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    3 * time.Second,
		Jitter:      0.25,
	}
}

// Backoff returns the jittered delay before retry number retry (0 is the
// delay after the first failed attempt).
func (p Policy) Backoff(retry int) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(2, float64(retry))
	if max := float64(p.MaxDelay); p.MaxDelay > 0 && d > max {
		d = max
	}
	if p.Jitter > 0 {
		r := rand.Float64
		if p.Rand != nil {
			r = p.Rand
		}
		d *= 1 - p.Jitter + 2*p.Jitter*r()
	}
	return time.Duration(d)
}

// RetryableStatus reports whether an HTTP status code signals a transient
// condition: 429 (load shed; come back later) and the 5xx server errors,
// except 501 Not Implemented, which no amount of retrying fixes.
func RetryableStatus(code int) bool {
	if code == http.StatusTooManyRequests {
		return true
	}
	return code >= 500 && code != http.StatusNotImplemented
}

// Do runs one request through the retry loop. build is called once per
// attempt — a request body cannot be replayed after a failed send, so the
// caller rebuilds the request (and its body reader) each time. Connection
// errors and RetryableStatus responses are retried with Backoff between
// attempts; any other response is returned immediately, whatever its
// status — interpreting a 404 or a 400 is the caller's business. When the
// budget runs out, Do returns the last response (or the last error if the
// final attempt never produced one). The caller owns resp.Body.
func Do(c *http.Client, build func() (*http.Request, error), p Policy) (*http.Response, error) {
	if c == nil {
		c = http.DefaultClient
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var resp *http.Response
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			sleep(p.Backoff(attempt - 1))
		}
		var req *http.Request
		req, err = build()
		if err != nil {
			return nil, err // a request we cannot build will not build next time either
		}
		resp, err = c.Do(req)
		if err != nil {
			resp = nil
			continue // connection-level failure: transient by contract
		}
		if !RetryableStatus(resp.StatusCode) {
			return resp, nil
		}
		// Drain (bounded) so the connection is reusable, then retry.
		if attempt+1 < attempts {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
			resp.Body.Close()
			resp = nil
		}
	}
	return resp, err
}
