// Package factor implements a blocked dense Cholesky factorization whose
// trailing-matrix updates run on the FP64 MMA semantics — the tensor-core
// dense-factorization line of work the paper cites (Householder QR,
// tridiagonalization, eigensolvers) distilled to its core building block.
// It extends the reproduction beyond the ten Cubie kernels with a Dense
// Linear Algebra workload whose MMU utilization is Quadrant I-like for the
// update and essentially scalar for the panel.
package factor

import (
	"fmt"
	"math"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// nb is the panel width: one MMA tile edge.
const nb = 8

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix, using the right-looking blocked algorithm:
// scalar panel factorization and triangular solves, MMA trailing updates
// (C -= L_ik · L_jkᵀ as chains of m8n8k4 instructions). A is not modified.
// It returns an error if A is not square or not positive definite.
func Cholesky(a *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("factor: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	n := a.Rows
	l := a.Clone()

	negTile := make([]float64, nb*nb)
	bT := make([]float64, nb*nb)
	cT := make([]float64, nb*nb)

	for k0 := 0; k0 < n; k0 += nb {
		kw := min(nb, n-k0)
		// Unblocked Cholesky of the diagonal block.
		if err := factorDiagonal(l, k0, kw); err != nil {
			return nil, err
		}
		// Panel: L[i, k0:k0+kw] = A[i, ...] · L_kk⁻ᵀ (row-wise forward
		// substitution against the freshly factored diagonal block).
		for i := k0 + kw; i < n; i++ {
			for j := k0; j < k0+kw; j++ {
				s := l.At(i, j)
				for p := k0; p < j; p++ {
					s -= l.At(i, p) * l.At(j, p)
				}
				l.Set(i, j, s/l.At(j, j))
			}
		}
		// Trailing update on the MMA path: for each 8×8 tile (i0, j0) of
		// the lower-triangular remainder, C += (−L_i·panel) · L_jᵀ as two
		// chained m8n8k4 MMAs over the 8-wide k extent.
		for i0 := k0 + kw; i0 < n; i0 += nb {
			for j0 := k0 + kw; j0 <= i0; j0 += nb {
				ih := min(nb, n-i0)
				jh := min(nb, n-j0)
				// Load the negated row panel of i and the transposed row
				// panel of j.
				for r := 0; r < nb; r++ {
					for c := 0; c < nb; c++ {
						if r < ih && c < kw {
							negTile[r*nb+c] = -l.At(i0+r, k0+c)
						} else {
							negTile[r*nb+c] = 0
						}
						if c < jh && r < kw {
							bT[r*nb+c] = l.At(j0+c, k0+r) // L_jᵀ
						} else {
							bT[r*nb+c] = 0
						}
					}
				}
				l.Tile(cT, i0, j0, nb, nb)
				mma8x8(cT, negTile, bT)
				l.SetTile(cT, i0, j0, nb, nb)
			}
		}
	}
	// Zero the strictly-upper part.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	return l, nil
}

// factorDiagonal runs the scalar unblocked Cholesky on the kw×kw block at
// (k0, k0).
func factorDiagonal(l *tensor.Matrix, k0, kw int) error {
	for j := k0; j < k0+kw; j++ {
		d := l.At(j, j)
		for p := k0; p < j; p++ {
			d -= l.At(j, p) * l.At(j, p)
		}
		if d <= 0 {
			return fmt.Errorf("factor: not positive definite at pivot %d (d = %v)", j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < k0+kw; i++ {
			s := l.At(i, j)
			for p := k0; p < j; p++ {
				s -= l.At(i, p) * l.At(j, p)
			}
			l.Set(i, j, s/d)
		}
	}
	return nil
}

// mma8x8 accumulates c += a·b for 8×8 row-major tiles as two chained
// m8n8k4 MMAs.
func mma8x8(c, a, b []float64) {
	var a0, a1 [mmu.M * mmu.K]float64
	var b0, b1 [mmu.K * mmu.N]float64
	for i := 0; i < nb; i++ {
		copy(a0[i*4:], a[i*nb:i*nb+4])
		copy(a1[i*4:], a[i*nb+4:i*nb+8])
	}
	copy(b0[:], b[:32])
	copy(b1[:], b[32:])
	mmu.DMMATile(c, a0[:], b0[:])
	mmu.DMMATile(c, a1[:], b1[:])
}

// RandomSPD builds a deterministic symmetric positive-definite test matrix:
// B·Bᵀ + n·I for a random B.
func RandomSPD(n int, seed int64) *tensor.Matrix {
	g := lcg.New(seed)
	b := tensor.NewMatrix(n, n)
	g.Fill(b.Data)
	a := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// Profile returns the execution profile of an n×n blocked Cholesky on the
// MMA path: n³/3 essential FLOPs, the trailing updates (the dominant
// O(n³) term) on the tensor unit and the panel work on the vector unit.
func Profile(n int) sim.Profile {
	fn := float64(n)
	total := fn * fn * fn / 3
	panel := fn * fn * nb // O(n²·nb) panel + diagonal work
	return sim.Profile{
		TensorFLOPs: total,
		VectorFLOPs: panel,
		DRAMBytes:   3 * fn * fn * sim.BytesF64, // blocked reads + write-back
		L1Bytes:     total,                      // fragment staging, as in GEMM
		Launches:    (n + nb - 1) / nb,          // one launch chain per panel
		SyncSteps:   float64((n + nb - 1) / nb), // panels are sequential
		Overlap:     0.85,
		Eff: sim.Efficiency{
			Tensor: 0.55, // below GEMM: the panel serializes the pipeline
			Vector: 0.4,
			DRAM:   sim.EffLibrary,
			L1:     0.95,
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
