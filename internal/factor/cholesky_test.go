package factor

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func reconstructError(t *testing.T, a, l *tensor.Matrix) float64 {
	t.Helper()
	n := a.Rows
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(s - a.At(i, j)); d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr
}

func TestCholeskyReconstructs(t *testing.T) {
	for _, n := range []int{1, 7, 8, 16, 33, 64, 100} {
		a := RandomSPD(n, int64(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// SPD entries scale with n; tolerate a relative bound.
		if e := reconstructError(t, a, l); e > 1e-9*float64(n) {
			t.Errorf("n=%d: reconstruction error %v", n, e)
		}
		// L must be lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Fatalf("n=%d: non-positive diagonal at %d", n, i)
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: upper entry (%d,%d) not zero", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyInputUntouched(t *testing.T) {
	a := RandomSPD(24, 3)
	orig := a.Clone()
	if _, err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig) {
		t.Fatal("Cholesky modified its input")
	}
}

func TestCholeskyRejectsBadInput(t *testing.T) {
	if _, err := Cholesky(tensor.NewMatrix(3, 4)); err == nil {
		t.Error("non-square accepted")
	}
	// Indefinite matrix: diag(1, -1).
	m := tensor.NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	if _, err := Cholesky(m); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestCholeskyIdentity(t *testing.T) {
	n := 16
	a := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 4)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(l.At(i, i)-2) > 1e-15 {
			t.Fatalf("diag %d = %v, want 2", i, l.At(i, i))
		}
	}
}

func TestProfileShape(t *testing.T) {
	p := Profile(4096)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 4096.0 * 4096 * 4096 / 3
	if p.TensorFLOPs != want {
		t.Errorf("tensor FLOPs %v, want %v", p.TensorFLOPs, want)
	}
	// On H200 the factorization should land compute-bound below GEMM's
	// efficiency (the panel serializes).
	r := sim.Run(device.H200(), p)
	tflops := p.TensorFLOPs / r.Time / 1e12
	if tflops >= 66.9*0.62 {
		t.Errorf("Cholesky at %v TFLOPS should sit below the GEMM efficiency", tflops)
	}
	if tflops < 5 {
		t.Errorf("Cholesky at %v TFLOPS implausibly slow", tflops)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	a := RandomSPD(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
