package harness

// Distributed campaign execution: the coordinator-side work queue behind
// `cubie dist` / `cubie all --workers N`. The coordinator enumerates a
// plan's run keys once, then serves them to workers over a lease/steal
// protocol (internal/server's /api/v1/work endpoints): a worker leases the
// longest-estimated pending key, executes it through its own harness, and
// publishes the result to the shared cache store before completing the
// lease. Work-stealing is implicit — whichever worker asks next gets the
// next-longest key, so a fast worker drains what a slow one never claims.
//
// Fault model: leases expire. A worker that dies (or stalls) mid-key
// simply never completes its lease; after the lease timeout the key is
// re-issued to the next asker. Re-execution is always safe — every run is
// deterministic and the cache is content-addressed, so a double execution
// publishes identical bytes. A completion for an expired (re-issued)
// lease is ignored as stale. Keys whose execution *fails* (the worker
// reports an error) are retried a bounded number of times before the
// whole queue fails; keys that expire too many times fail it too, so a
// plan wedged on a crashing key terminates instead of spinning.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Distributed-queue metrics (see docs/OBSERVABILITY.md).
var (
	metDistLeases = metrics.NewCounter("cubie_dist_leases_total",
		"Work leases granted to distributed-campaign workers.")
	metDistReissued = metrics.NewCounter("cubie_dist_leases_reissued_total",
		"Leases that expired (worker death or stall) and whose key was returned to the queue.")
	metDistStale = metrics.NewCounter("cubie_dist_completions_stale_total",
		"Completions that arrived for an expired, re-issued lease and were ignored.")
	metDistCompleted = metrics.NewCounter("cubie_dist_keys_completed_total",
		"Run keys completed successfully by distributed-campaign workers.")
	metDistFailed = metrics.NewCounter("cubie_dist_key_failures_total",
		"Run-key executions reported failed by a worker (bounded retries before the queue fails).")
)

// Queue lifecycle / lease-grant states, as they appear on the wire.
const (
	LeaseGranted = "ok"     // a key was leased; execute it and complete the lease
	LeaseWait    = "wait"   // nothing pending right now (all keys leased); ask again
	LeaseDone    = "done"   // the plan completed; the worker should exit
	LeaseFailed  = "failed" // the plan failed; the worker should exit
)

// Retry bounds. maxKeyAttempts bounds *reported* execution failures per
// key; maxKeyReissues bounds lease expiries per key (a worker-killing key
// must not crash workers forever).
const (
	maxKeyAttempts = 3
	maxKeyReissues = 5
)

// DefaultLeaseTimeout is how long a worker may sit on a leased key before
// the coordinator assumes it died and re-issues the key. Generous on
// purpose: the longest single keys (CPU-serial references of the largest
// cases) run minutes on a loaded box, and a premature re-issue only wastes
// work, it never corrupts anything.
const DefaultLeaseTimeout = 5 * time.Minute

// distItem is one queued key with its scheduling estimate.
type distItem struct {
	key RunKey
	est float64
}

// distLease is one outstanding grant.
type distLease struct {
	item     distItem
	worker   string
	deadline time.Time
}

// Grant is one lease decision, as returned to a polling worker.
type Grant struct {
	State string // LeaseGranted, LeaseWait, LeaseDone, LeaseFailed
	Key   RunKey // set when State == LeaseGranted
	Lease string // opaque lease id; echo it back on completion
	Err   string // set when State == LeaseFailed
}

// QueueStatus is a point-in-time snapshot (GET /api/v1/work).
type QueueStatus struct {
	State     string // "running", "done", "failed"
	Total     int
	Completed int
	Pending   int
	Leased    int
	Reissued  int
	Err       string
}

// WorkQueue is the coordinator's lease/steal queue over one plan's keys.
// All methods are safe for concurrent use.
type WorkQueue struct {
	mu       sync.Mutex
	pending  []distItem           // unleased keys, sorted longest-estimated-first
	leases   map[string]*distLease
	attempts map[RunKey]int // reported execution failures per key
	reissues map[RunKey]int // expired leases per key
	total    int
	complete int
	reissued int
	seq      int
	state    string // "running", "done", "failed"
	err      error
	timeout  time.Duration
	done     chan struct{}

	now func() time.Time // test seam
}

// NewWorkQueue builds the queue for a key set: deduplicate, resolve each
// key against the suite (unknown keys are coordinator-side errors — a
// worker should never discover them), and order longest-estimated-first
// using the same estimate the in-process executor schedules by. A
// leaseTimeout of 0 selects DefaultLeaseTimeout.
func (h *Harness) NewWorkQueue(keys []RunKey, leaseTimeout time.Duration) (*WorkQueue, error) {
	if leaseTimeout <= 0 {
		leaseTimeout = DefaultLeaseTimeout
	}
	seen := map[RunKey]bool{}
	var items []distItem
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		w, c, err := h.resolveKey(k)
		if err != nil {
			return nil, err
		}
		items = append(items, distItem{key: k, est: estimate(planJob{key: k, w: w, c: c})})
	}
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].est != items[b].est {
			return items[a].est > items[b].est
		}
		return items[a].key.String() < items[b].key.String()
	})
	q := &WorkQueue{
		pending:  items,
		leases:   map[string]*distLease{},
		attempts: map[RunKey]int{},
		reissues: map[RunKey]int{},
		total:    len(items),
		state:    "running",
		timeout:  leaseTimeout,
		done:     make(chan struct{}),
		now:      time.Now,
	}
	if q.total == 0 {
		q.state = "done"
		close(q.done)
	}
	return q, nil
}

// Lease grants the longest-estimated pending key to worker, after
// sweeping expired leases back into the pending set. With nothing pending
// but leases outstanding it returns LeaseWait — the worker polls again; a
// stalled lease will expire into its hands.
func (q *WorkQueue) Lease(worker string) Grant {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked()
	switch q.state {
	case "done":
		return Grant{State: LeaseDone}
	case "failed":
		return Grant{State: LeaseFailed, Err: q.err.Error()}
	}
	if len(q.pending) == 0 {
		return Grant{State: LeaseWait}
	}
	item := q.pending[0]
	q.pending = q.pending[1:]
	q.seq++
	id := fmt.Sprintf("l%d", q.seq)
	q.leases[id] = &distLease{item: item, worker: worker, deadline: q.now().Add(q.timeout)}
	metDistLeases.Inc()
	return Grant{State: LeaseGranted, Key: item.key, Lease: id}
}

// Complete reports a leased key's outcome ("" = success) and returns what
// happened: "ok", "requeued" (failed, will retry), "failed" (the queue
// gave up), or "stale" (the lease had already expired and been re-issued
// — the re-issued execution owns the key now; ignoring the straggler is
// safe because runs are deterministic and the store content-addressed).
func (q *WorkQueue) Complete(leaseID, errMsg string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked()
	l, ok := q.leases[leaseID]
	if !ok {
		metDistStale.Inc()
		return "stale"
	}
	delete(q.leases, leaseID)
	if errMsg == "" {
		q.complete++
		metDistCompleted.Inc()
		if q.complete == q.total && q.state == "running" {
			q.state = "done"
			close(q.done)
		}
		return "ok"
	}
	metDistFailed.Inc()
	q.attempts[l.item.key]++
	if q.attempts[l.item.key] >= maxKeyAttempts {
		q.failLocked(fmt.Errorf("dist: %s failed %d times, last: %s", l.item.key, maxKeyAttempts, errMsg))
		return "failed"
	}
	q.requeueLocked(l.item)
	return "requeued"
}

// sweepLocked returns expired leases to the pending set, failing the
// queue when one key has expired too many times.
func (q *WorkQueue) sweepLocked() {
	if q.state != "running" {
		return
	}
	now := q.now()
	for id, l := range q.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(q.leases, id)
		metDistReissued.Inc()
		q.reissued++
		q.reissues[l.item.key]++
		if q.reissues[l.item.key] > maxKeyReissues {
			q.failLocked(fmt.Errorf("dist: %s expired its lease %d times (workers keep dying on it); giving up",
				l.item.key, q.reissues[l.item.key]))
			return
		}
		q.requeueLocked(l.item)
	}
}

// requeueLocked re-inserts an item in estimate order.
func (q *WorkQueue) requeueLocked(item distItem) {
	i := sort.Search(len(q.pending), func(i int) bool {
		if q.pending[i].est != item.est {
			return q.pending[i].est < item.est
		}
		return q.pending[i].key.String() >= item.key.String()
	})
	q.pending = append(q.pending, distItem{})
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = item
}

// failLocked moves the queue to its terminal failed state.
func (q *WorkQueue) failLocked(err error) {
	if q.state != "running" {
		return
	}
	q.state = "failed"
	q.err = err
	q.pending = nil
	close(q.done)
}

// Done reports whether the queue reached a terminal state.
func (q *WorkQueue) Done() bool {
	select {
	case <-q.done:
		return true
	default:
		return false
	}
}

// Err returns the terminal error (nil while running or when done).
func (q *WorkQueue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Wait blocks until the queue reaches a terminal state or ctx is
// cancelled, ticking the expiry sweep while it waits — leases must expire
// even when no worker is polling (they all died).
func (q *WorkQueue) Wait(ctx context.Context) error {
	tick := time.NewTicker(q.sweepInterval())
	defer tick.Stop()
	for {
		select {
		case <-q.done:
			return q.Err()
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			q.mu.Lock()
			q.sweepLocked()
			q.mu.Unlock()
		}
	}
}

// sweepInterval paces Wait's expiry sweeps: a quarter of the lease
// timeout, clamped to [50ms, 10s].
func (q *WorkQueue) sweepInterval() time.Duration {
	d := q.timeout / 4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// Status snapshots the queue.
func (q *WorkQueue) Status() QueueStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStatus{
		State:     q.state,
		Total:     q.total,
		Completed: q.complete,
		Pending:   len(q.pending),
		Leased:    len(q.leases),
		Reissued:  q.reissued,
	}
	if q.err != nil {
		st.Err = q.err.Error()
	}
	return st
}
