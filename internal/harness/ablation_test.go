package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/device"
)

func TestAblateOverlap(t *testing.T) {
	h := New()
	rows, err := h.AblateOverlap(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	faster := 0
	for _, r := range rows {
		// A pure bottleneck model can only speed kernels up.
		if r.Ablated > r.Baseline*1.0001 {
			t.Errorf("%s: removing the overlap term slowed it down (%v → %v)",
				r.Subject, r.Baseline, r.Ablated)
		}
		if r.Ablated < r.Baseline*0.999 {
			faster++
		}
	}
	// The term must matter for most CC variants (it is what creates the
	// Figure 5 gaps on memory-bound kernels).
	if faster < 6 {
		t.Errorf("overlap term only affected %d/10 CC kernels", faster)
	}
}

func TestAblateConstCache(t *testing.T) {
	h := New()
	rows, err := h.AblateConstCache(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ablated <= r.Baseline {
			t.Errorf("%s: losing the constant cache should cost time (%v → %v)",
				r.Subject, r.Baseline, r.Ablated)
		}
	}
}

func TestAblateDASPPadding(t *testing.T) {
	rows, err := AblateDASPPadding()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		ratio := r.Ratio()
		// DASP issues 16 FLOPs per payload slot vs 2 essential: at least
		// 8× and at most ~9× (padding adds a little more).
		if ratio < 7.9 || ratio > 12 {
			t.Errorf("%s: redundancy ratio %v outside [7.9, 12]", r.Subject, ratio)
		}
	}
}

func TestAblateBFSRelabel(t *testing.T) {
	rows, err := AblateBFSRelabel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.Ratio() > 1.05 {
			improved++
		}
	}
	// Relabeling must shrink the bitmap footprint for most graph classes
	// (the Mycielskian's dense wiring gains little).
	if improved < 3 {
		t.Errorf("relabeling only helped %d/5 graphs", improved)
	}
}

func TestAblateSpGEMMPairing(t *testing.T) {
	h := New()
	rows, err := AblateSpGEMMPairing(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio() < 1.9 || r.Ratio() > 2.1 {
			t.Errorf("%s: pairing ratio %v, want ≈2", r.Subject, r.Ratio())
		}
	}
}

func TestRenderAblations(t *testing.T) {
	rows, err := AblateDASPPadding()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAblations(&buf, rows)
	if !strings.Contains(buf.String(), "dasp-padding") {
		t.Error("render missing study header")
	}
}
