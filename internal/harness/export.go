package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/accuracy"
	"repro/internal/power"
)

// WriteTable6CSV emits the accuracy table in the layout of the paper
// artifact's all_error.csv: workload, variant, Average_Error, Max_Error.
// TC and CC are grouped as in the artifact ("they are empirically
// identical; thus, they are grouped and reported together").
func WriteTable6CSV(w io.Writer, rows []accuracy.Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "variant", "Average_Error", "Max_Error"}); err != nil {
		return err
	}
	fmtE := func(v float64) string { return strconv.FormatFloat(v, 'E', 6, 64) }
	for _, r := range rows {
		if r.Baseline != nil {
			if err := cw.Write([]string{r.Workload, "Baseline",
				fmtE(r.Baseline.Avg), fmtE(r.Baseline.Max)}); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{r.Workload, "TC/CC",
			fmtE(r.TCCC.Avg), fmtE(r.TCCC.Max)}); err != nil {
			return err
		}
		if r.CCE != nil {
			if err := cw.Write([]string{r.Workload, "CC-E",
				fmtE(r.CCE.Avg), fmtE(r.CCE.Max)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePerfCSV emits the Figure 3 grid as CSV.
func WritePerfCSV(w io.Writer, cells []PerfCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "quadrant", "case", "variant",
		"device", "time_s", "throughput", "metric", "bottleneck"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Workload, strconv.Itoa(c.Quadrant), c.Case, string(c.Variant),
			c.Device, strconv.FormatFloat(c.TimeS, 'g', 9, 64),
			strconv.FormatFloat(c.Throughput, 'g', 9, 64),
			c.Metric, c.Bottleneck,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePowerCSV emits Figure 8's power traces as long-form CSV:
// workload, variant, time_s, watts — one row per sample.
func WritePowerCSV(w io.Writer, traces []power.Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "variant", "time_s", "watts"}); err != nil {
		return err
	}
	for _, t := range traces {
		for _, s := range t.Samples {
			if err := cw.Write([]string{t.Workload, t.Variant,
				strconv.FormatFloat(s.TimeS, 'g', 6, 64),
				strconv.FormatFloat(s.Watts, 'f', 1, 64)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON marshals any experiment result set with indentation.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("harness: encoding results: %w", err)
	}
	return nil
}
