package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestExecuteDedupsAndRunsOnce: a plan with duplicate keys executes each
// distinct key exactly once, and re-executing the same plan starts nothing.
func TestExecuteDedupsAndRunsOnce(t *testing.T) {
	h := New()
	w, err := h.Suite.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Cases()[0].Name
	keys := []RunKey{
		{"GEMV", small, workload.TC},
		{"GEMV", small, workload.TC}, // duplicate
		{"GEMV", small, workload.Baseline},
	}

	started := metRunsStarted.Value()
	dups := metPlanDuplicates.Value()
	planned := metPlanKeys.Value()

	if err := h.Execute(keys); err != nil {
		t.Fatal(err)
	}
	if got := metRunsStarted.Value() - started; got != 2 {
		t.Fatalf("started %d runs, want 2 (one per distinct key)", got)
	}
	if got := metPlanDuplicates.Value() - dups; got != 1 {
		t.Fatalf("counted %d duplicates, want 1", got)
	}
	if got := metPlanKeys.Value() - planned; got != 2 {
		t.Fatalf("planned %d keys, want 2", got)
	}

	// The whole plan is already in the singleflight cache: a second Execute
	// must start zero runs.
	if err := h.Execute(keys); err != nil {
		t.Fatal(err)
	}
	if got := metRunsStarted.Value() - started; got != 2 {
		t.Fatalf("re-Execute started %d extra runs, want 0", got-2)
	}

	// And the figure assembly path joins the same flights.
	res, err := h.run(w, w.Cases()[0], workload.TC)
	if err != nil || res == nil {
		t.Fatalf("post-plan run: %+v, %v", res, err)
	}
	if got := metRunsStarted.Value() - started; got != 2 {
		t.Fatal("assembly pull after Execute must not start a run")
	}
}

// TestExecuteReferenceKeys: RefVariant keys compute the CPU-serial
// reference through the same cache, shared with h.reference.
func TestExecuteReferenceKeys(t *testing.T) {
	h := New()
	w, err := h.Suite.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Cases()[0]

	started := metRunsStarted.Value()
	if err := h.Execute([]RunKey{{"GEMV", small.Name, RefVariant}}); err != nil {
		t.Fatal(err)
	}
	if got := metRunsStarted.Value() - started; got != 1 {
		t.Fatalf("reference plan started %d runs, want 1", got)
	}
	out, err := h.reference(w, small)
	if err != nil || len(out) == 0 {
		t.Fatalf("reference after plan: len=%d err=%v", len(out), err)
	}
	if got := metRunsStarted.Value() - started; got != 1 {
		t.Fatal("h.reference after Execute must join the cached flight")
	}
}

func TestExecuteRejectsUnknownKeys(t *testing.T) {
	h := New()
	err := h.Execute([]RunKey{{"NoSuchKernel", "x", workload.TC}})
	if err == nil || !strings.Contains(err.Error(), "plan NoSuchKernel|x|TC") {
		t.Fatalf("unknown workload: %v", err)
	}
	err = h.Execute([]RunKey{{"GEMV", "no-such-case", workload.TC}})
	if err == nil || !strings.Contains(err.Error(), "plan GEMV|no-such-case|TC") {
		t.Fatalf("unknown case: %v", err)
	}
}

// TestPlanAllCoversCampaign: the whole-campaign plan resolves cleanly and
// contains the full Figure 3 grid plus the Table 6 references.
func TestPlanAllCoversCampaign(t *testing.T) {
	h := New()
	keys := h.PlanAll()

	seen := map[RunKey]bool{}
	refs := 0
	for _, k := range keys {
		seen[k] = true
		if k.Variant == RefVariant {
			refs++
		}
		w, err := h.Suite.ByName(k.Workload)
		if err != nil {
			t.Fatalf("plan key %s: %v", k, err)
		}
		if _, err := workload.FindCase(w, k.Case); err != nil {
			t.Fatalf("plan key %s: %v", k, err)
		}
		if k.Variant != RefVariant && !workload.HasVariant(w, k.Variant) {
			t.Fatalf("plan key %s: variant not implemented", k)
		}
	}
	if refs == 0 {
		t.Fatal("PlanAll must include the Table 6 reference keys")
	}
	for _, k := range h.keysFigure3() {
		if !seen[k] {
			t.Fatalf("PlanAll missing Figure 3 key %s", k)
		}
	}
	for _, k := range h.keysTable6() {
		if !seen[k] {
			t.Fatalf("PlanAll missing Table 6 key %s", k)
		}
	}
}

// TestEstimateOrdering: references are scheduled ahead of same-case variant
// runs, and dimensioned cases rank by volume — the longest-first heuristic
// the pool relies on to keep the tail short.
func TestEstimateOrdering(t *testing.T) {
	h := New()
	w, err := h.Suite.ByName("GEMM")
	if err != nil {
		t.Fatal(err)
	}
	cases := w.Cases()
	first, last := cases[0], cases[len(cases)-1]

	jSmall := planJob{key: RunKey{"GEMM", first.Name, workload.TC}, w: w, c: first}
	jLarge := planJob{key: RunKey{"GEMM", last.Name, workload.TC}, w: w, c: last}
	jRef := planJob{key: RunKey{"GEMM", last.Name, RefVariant}, w: w, c: last}

	if estimate(jLarge) <= estimate(jSmall) {
		t.Fatalf("largest case must outrank smallest: %v <= %v", estimate(jLarge), estimate(jSmall))
	}
	if estimate(jRef) <= estimate(jLarge) {
		t.Fatalf("reference must outrank its variant run: %v <= %v", estimate(jRef), estimate(jLarge))
	}
}
