package harness

import (
	"fmt"
	"io"

	"repro/internal/device"
	graphpkg "repro/internal/graph"
	"repro/internal/kernels/bfs"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// AblationRow is one measurement of an ablation study: a design choice
// toggled off, and the metric movement that justifies keeping it on.
type AblationRow struct {
	Study    string
	Subject  string  // workload / dataset the row measures
	Baseline float64 // metric with the design choice enabled
	Ablated  float64 // metric with it disabled
	Metric   string
}

// Ratio returns Ablated/Baseline.
func (r AblationRow) Ratio() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return r.Ablated / r.Baseline
}

// AblateOverlap quantifies the compute/memory overlap term of the execution
// model (sim.Profile.Overlap): CC-variant times with the calibrated overlap
// versus a pure bottleneck (overlap = 1) model. Without the term, the
// memory-bound CC variants collapse onto their TC counterparts and the
// paper's Figure 5 gaps (Section 6.2) disappear.
func (h *Harness) AblateOverlap(spec device.Spec) ([]AblationRow, error) {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		keys = append(keys, RunKey{w.Name(), w.Representative().Name, workload.CC})
	}
	if err := h.Execute(keys); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, w := range h.Suite.Workloads() {
		res, err := h.run(w, w.Representative(), workload.CC)
		if err != nil {
			return nil, err
		}
		withOverlap := sim.Run(spec, res.Profile).Time
		p := res.Profile
		p.Overlap = 1 // perfect overlap: pure max-of-resources
		pure := sim.Run(spec, p).Time
		rows = append(rows, AblationRow{
			Study:    "overlap-model",
			Subject:  w.Name() + "/CC",
			Baseline: withOverlap,
			Ablated:  pure,
			Metric:   "time (s)",
		})
	}
	return rows, nil
}

// AblateConstCache quantifies the constant-memory broadcast of the
// Quadrant II/III kernels: the Scan and Reduction TC profiles with their
// constant operands served by the constant cache versus re-fetched through
// L1 per MMA (what the CC replacement effectively pays — Section 6.2's
// "CUDA cores do not leverage these constant operands as much").
func (h *Harness) AblateConstCache(spec device.Spec) ([]AblationRow, error) {
	var rows []AblationRow
	for _, name := range []string{"Scan", "Reduction"} {
		w, err := h.Suite.ByName(name)
		if err != nil {
			return nil, err
		}
		res, err := h.run(w, w.Representative(), workload.TC)
		if err != nil {
			return nil, err
		}
		withConst := sim.Run(spec, res.Profile).Time
		p := res.Profile
		// Serve the constant operands through L1 at fragment granularity
		// (each 64-element constant matrix re-staged per MMA: 16× the
		// broadcast traffic).
		p.L1Bytes += p.ConstBytes * 16
		p.ConstBytes = 0
		ablated := sim.Run(spec, p).Time
		rows = append(rows, AblationRow{
			Study:    "const-cache",
			Subject:  name + "/TC",
			Baseline: withConst,
			Ablated:  ablated,
			Metric:   "time (s)",
		})
	}
	return rows, nil
}

// AblateDASPPadding measures the redundancy the DASP layout introduces per
// Table 4 matrix: MMA-issued FLOPs versus essential FLOPs (2·nnz). This is
// the quantity Observation 5 weighs against the layout's streaming wins.
func AblateDASPPadding() ([]AblationRow, error) {
	var rows []AblationRow
	for _, d := range sparse.Table4() {
		m, err := sparse.SynthesizeShared(d.Name)
		if err != nil {
			return nil, err
		}
		dasp := sparse.ToDASP(m)
		essential := 2 * float64(m.NNZ())
		issued := float64(dasp.PaddedSlots) * 16 // 512 FLOPs per 32-slot MMA
		rows = append(rows, AblationRow{
			Study:    "dasp-padding",
			Subject:  d.Name,
			Baseline: essential,
			Ablated:  issued,
			Metric:   "FP64 FLOPs",
		})
	}
	return rows, nil
}

// AblateBFSRelabel measures the BerryBees BFS-order relabeling: the number
// of 8×128 bitmap blocks (the traversal's memory footprint) with and
// without the preprocessing, per Table 3 graph. Without relabeling the
// scattered neighborhoods inflate the slice set several-fold.
func AblateBFSRelabel() ([]AblationRow, error) {
	var rows []AblationRow
	for _, d := range graphpkg.Table3() {
		g, err := graphpkg.SynthesizeShared(d.Name)
		if err != nil {
			return nil, err
		}
		raw := graphpkg.ToSliceSet(g)
		src, best := 0, -1
		for v := 0; v < g.N; v++ {
			if dg := g.Degree(v); dg > best {
				src, best = v, dg
			}
		}
		rl, _ := bfs.Relabel(g, src)
		packed := graphpkg.ToSliceSet(rl)
		rows = append(rows, AblationRow{
			Study:    "bfs-relabel",
			Subject:  d.Name,
			Baseline: float64(packed.BlockCount()),
			Ablated:  float64(raw.BlockCount()),
			Metric:   "8x128 bitmap blocks",
		})
	}
	return rows, nil
}

// AblateSpGEMMPairing measures the AmgT pairing of two 4×4×4 block
// products per m8n8k4 MMA: instruction counts with pairing versus one
// product per MMA, per Table 4 matrix.
func AblateSpGEMMPairing(h *Harness) ([]AblationRow, error) {
	spg, err := h.Suite.ByName("SpGEMM")
	if err != nil {
		return nil, err
	}
	var keys []RunKey
	for _, c := range spg.Cases() {
		keys = append(keys, RunKey{spg.Name(), c.Name, workload.TC})
	}
	if err := h.Execute(keys); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, c := range spg.Cases() {
		res, err := h.run(spg, c, workload.TC)
		if err != nil {
			return nil, err
		}
		paired := res.Profile.TensorFLOPs / 512 // MMAs issued with pairing
		rows = append(rows, AblationRow{
			Study:    "spgemm-pairing",
			Subject:  c.Name,
			Baseline: paired,
			Ablated:  paired * 2, // one block product per MMA
			Metric:   "MMA instructions",
		})
	}
	return rows, nil
}

// RenderAblations prints ablation rows grouped by study.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation studies — design choices toggled off")
	last := ""
	for _, r := range rows {
		if r.Study != last {
			fmt.Fprintf(w, "\n[%s] (%s)\n", r.Study, r.Metric)
			last = r.Study
		}
		fmt.Fprintf(w, "  %-24s enabled %12.4g   ablated %12.4g   ratio %6.2fx\n",
			r.Subject, r.Baseline, r.Ablated, r.Ratio())
	}
}
