// Warm-run equality: a harness replaying a populated run cache must start
// zero workload executions and still emit bitwise-identical figure output.
// This is the process-level contract behind warm `cubie all`; it lives in
// an external test package because it exercises the exported surface the
// CLI uses (New, AttachCache, Figure3, Table6, the CSV writers).
package harness_test

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/runcache"
	"repro/internal/workload"
)

// runsStarted reads the global execution counter (get-or-create returns
// the instrument the harness increments).
func runsStarted() uint64 {
	return metrics.NewCounter("cubie_harness_runs_started_total",
		"Workload executions the harness actually started (cache misses).").Value()
}

func figure3CSV(t *testing.T, h *harness.Harness) []byte {
	t.Helper()
	cells, err := h.Figure3(device.All())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WritePerfCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func table6CSV(t *testing.T, h *harness.Harness) []byte {
	t.Helper()
	rows, err := h.Table6()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteTable6CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmHarnessBitIdenticalZeroRuns runs Figure 3 and Table 6 cold into a
// fresh cache, then replays them on a brand-new harness: zero executions,
// byte-identical CSV.
func TestWarmHarnessBitIdenticalZeroRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 3 grid + Table 6 references")
	}
	cache, err := runcache.OpenWithFingerprint(t.TempDir(), "warm-equality-test")
	if err != nil {
		t.Fatal(err)
	}

	cold := harness.New().AttachCache(cache)
	coldF3 := figure3CSV(t, cold)
	coldT6 := table6CSV(t, cold)

	before := runsStarted()
	warm := harness.New().AttachCache(cache)
	warmF3 := figure3CSV(t, warm)
	warmT6 := table6CSV(t, warm)
	if started := runsStarted() - before; started != 0 {
		t.Fatalf("warm harness started %d executions, want 0", started)
	}

	if !bytes.Equal(coldF3, warmF3) {
		t.Error("warm Figure 3 CSV differs from cold run")
	}
	if !bytes.Equal(coldT6, warmT6) {
		t.Error("warm Table 6 CSV differs from cold run")
	}
}

// TestCacheOffBypasses: CUBIE_CACHE=off yields a nil cache; a harness with
// it executes every request (no reads) and persists nothing (no writes).
func TestCacheOffBypasses(t *testing.T) {
	t.Setenv(runcache.Env, "off")
	cache := runcache.FromEnv()
	if cache != nil {
		t.Fatalf("CUBIE_CACHE=off must disable the cache, got dir %q", cache.Dir())
	}

	before := runsStarted()
	h := harness.New().AttachCache(cache)
	if _, _, err := h.RunOne("Reduction", "", workload.TC); err != nil {
		t.Fatal(err)
	}
	if started := runsStarted() - before; started != 1 {
		t.Fatalf("disabled cache: started %d executions, want 1", started)
	}

	// A second harness (fresh in-memory cache, same nil disk cache) must
	// execute again: nothing was written anywhere.
	h2 := harness.New().AttachCache(runcache.FromEnv())
	if _, _, err := h2.RunOne("Reduction", "", workload.TC); err != nil {
		t.Fatal(err)
	}
	if started := runsStarted() - before; started != 2 {
		t.Fatalf("disabled cache must not persist across harnesses: %d executions, want 2", started)
	}
}
