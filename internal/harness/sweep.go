package harness

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Section 1 lists the architecture-researcher questions the suite should
// answer; among them "the appropriate memory bandwidth to avoid underuse or
// waste" and the power/performance balance. These sweeps vary one device
// parameter around a base spec and locate each workload's knee — the point
// past which more of the resource stops paying.

// SweepPoint is one sample of a parameter sweep for one workload.
type SweepPoint struct {
	Workload string
	Quadrant int
	Factor   float64 // parameter multiplier vs. the base spec
	TimeS    float64
	Speedup  float64 // time(base) / time(this point)
	EDP      float64
}

// SweepResult aggregates a sweep for one workload.
type SweepResult struct {
	Workload string
	Quadrant int
	Points   []SweepPoint
	// Knee is the smallest factor achieving ≥95% of the speedup available
	// at the sweep's maximum — "enough of this resource".
	Knee float64
}

// kneeThreshold defines "enough": 95% of the maximum attainable speedup.
const kneeThreshold = 0.95

// sweep runs the TC variant of every workload across specs produced by
// mutate(baseSpec, factor) for each factor. The per-workload runs execute
// as one parallel plan up front (Execute); the factor grid itself is pure
// arithmetic on the cached profiles and stays serial.
func (h *Harness) sweep(base device.Spec, factors []float64,
	mutate func(device.Spec, float64) device.Spec) ([]SweepResult, error) {

	if err := h.Execute(h.keysTC()); err != nil {
		return nil, err
	}
	var out []SweepResult
	for _, w := range h.Suite.Workloads() {
		res, err := h.run(w, powerCase(w), workload.TC)
		if err != nil {
			return nil, err
		}
		baseTime := sim.Run(base, res.Profile).Time
		sr := SweepResult{Workload: w.Name(), Quadrant: w.Quadrant()}
		var maxSpeedup float64
		for _, f := range factors {
			spec := mutate(base, f)
			r := sim.Run(spec, res.Profile)
			p := SweepPoint{
				Workload: w.Name(),
				Quadrant: w.Quadrant(),
				Factor:   f,
				TimeS:    r.Time,
				Speedup:  baseTime / r.Time,
				EDP:      r.EDP,
			}
			sr.Points = append(sr.Points, p)
			if p.Speedup > maxSpeedup {
				maxSpeedup = p.Speedup
			}
		}
		for _, p := range sr.Points {
			if p.Speedup >= kneeThreshold*maxSpeedup {
				sr.Knee = p.Factor
				break
			}
		}
		out = append(out, sr)
	}
	return out, nil
}

// SweepBandwidth varies the DRAM bandwidth of the base device from 0.25×
// to 4× and reports each workload's bandwidth knee — the §1 "appropriate
// memory bandwidth" question.
func (h *Harness) SweepBandwidth(base device.Spec) ([]SweepResult, error) {
	return h.sweep(base,
		[]float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4},
		func(s device.Spec, f float64) device.Spec {
			s.DRAMBWTBs *= f
			s.Name = fmt.Sprintf("%s-bw%.2gx", s.Name, f)
			return s
		})
}

// SweepTensorPeak varies the FP64 tensor peak from 0.25× to 4× — the
// MMU-provisioning counterpart (how much FP64 MMA throughput the suite can
// actually consume at a fixed memory system).
func (h *Harness) SweepTensorPeak(base device.Spec) ([]SweepResult, error) {
	return h.sweep(base,
		[]float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4},
		func(s device.Spec, f float64) device.Spec {
			s.TensorFP64 *= f
			s.Name = fmt.Sprintf("%s-tc%.2gx", s.Name, f)
			return s
		})
}

// RenderSweep prints a sweep with its knees.
func RenderSweep(w io.Writer, title, param string, rows []SweepResult) {
	fmt.Fprintln(w, title)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s %-4s", "workload", "quad")
	for _, p := range rows[0].Points {
		fmt.Fprintf(w, " %7.2gx", p.Factor)
	}
	fmt.Fprintf(w, " %8s\n", "knee")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-4s", r.Workload, roman(r.Quadrant))
		for _, p := range r.Points {
			fmt.Fprintf(w, " %8.2f", p.Speedup)
		}
		fmt.Fprintf(w, " %7.2gx\n", r.Knee)
	}
	fmt.Fprintf(w, "\n(entries are speedups over the 1x %s; the knee is the smallest\n", param)
	fmt.Fprintf(w, "factor reaching 95%% of the sweep's best — '%s provisioned beyond\n", param)
	fmt.Fprintln(w, "the knee is wasted' for that workload.)")
}
