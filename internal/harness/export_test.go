package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/device"
	"repro/internal/kernels/gemv"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestWriteTable6CSV(t *testing.T) {
	row, err := accuracy.MeasureWorkload(gemv.New())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable6CSV(&buf, []accuracy.Row{row}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + Baseline + TC/CC + CC-E.
	if len(records) != 4 {
		t.Fatalf("%d records, want 4", len(records))
	}
	if records[0][2] != "Average_Error" || records[0][3] != "Max_Error" {
		t.Fatalf("header wrong: %v", records[0])
	}
	if records[2][1] != "TC/CC" {
		t.Fatalf("grouped variant label wrong: %v", records[2])
	}
	if !strings.Contains(records[2][2], "E") {
		t.Fatalf("error not in scientific notation: %v", records[2][2])
	}
}

func TestWritePerfCSVAndJSON(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	cells := []PerfCell{}
	for _, v := range w.Variants() {
		res, err := h.run(w, w.Representative(), v)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, PerfCell{
			Workload: "GEMV", Quadrant: 4, Case: "4Kx16", Variant: v,
			Device: "H200", TimeS: 1e-6, Throughput: res.Work / 1e-6 / 1e9,
			Metric: res.MetricName, Bottleneck: "DRAM",
		})
	}
	var buf bytes.Buffer
	if err := WritePerfCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(cells)+1 {
		t.Fatalf("%d records", len(records))
	}

	buf.Reset()
	if err := WriteJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	var back []PerfCell
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cells) || back[0].Workload != "GEMV" {
		t.Fatal("JSON round trip failed")
	}
	_ = device.All()
}

func TestWritePowerCSV(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	res, err := h.run(w, w.Representative(), workload.TC)
	if err != nil {
		t.Fatal(err)
	}
	spec := device.H200()
	tr := power.Record(spec, simRunFor(spec, res), 100000)
	tr.Workload, tr.Variant = "GEMV", "TC"
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, []power.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(tr.Samples)+1 {
		t.Fatalf("%d records, want %d", len(records), len(tr.Samples)+1)
	}
	if records[1][0] != "GEMV" || records[1][1] != "TC" {
		t.Fatalf("labels wrong: %v", records[1])
	}
}

func simRunFor(spec device.Spec, res *workload.Result) sim.Report {
	return sim.Run(spec, res.Profile)
}
