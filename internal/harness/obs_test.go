package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestRunOne exercises the cubie-run entry point: case resolution, variant
// validation, singleflight reuse, and the run metrics.
func TestRunOne(t *testing.T) {
	h := New()
	w, err := h.Suite.ByName("Reduction")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Cases()[0].Name

	started := metRunsStarted.Value()
	deduped := metRunsDeduped.Value()
	histBefore := runSeconds("Reduction").Count()

	c, res, err := h.RunOne("Reduction", small, workload.TC)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != small || res == nil || res.Work <= 0 {
		t.Fatalf("RunOne returned case %q, res %+v", c.Name, res)
	}
	if metRunsStarted.Value() != started+1 {
		t.Errorf("runs_started did not advance")
	}
	if runSeconds("Reduction").Count() != histBefore+1 {
		t.Errorf("per-workload latency histogram not observed")
	}

	// Second request for the same key must be served by the cache.
	if _, res2, err := h.RunOne("Reduction", small, workload.TC); err != nil || res2 != res {
		t.Fatalf("cached RunOne: res2=%p res=%p err=%v", res2, res, err)
	}
	if metRunsDeduped.Value() != deduped+1 {
		t.Errorf("runs_deduped did not advance on the cached request")
	}
	if metRunsStarted.Value() != started+1 {
		t.Errorf("cached request must not start a new run")
	}

	// Empty case name selects the representative case.
	if c, _, err := h.RunOne("Reduction", "", workload.TC); err != nil || c.Name != w.Representative().Name {
		t.Errorf("empty case resolved to %q (err %v), want representative %q",
			c.Name, err, w.Representative().Name)
	}

	if _, _, err := h.RunOne("NoSuchKernel", "", workload.TC); err == nil {
		t.Error("unknown workload must error")
	}
	if _, _, err := h.RunOne("Reduction", "no-such-case", workload.TC); err == nil {
		t.Error("unknown case must error")
	}
	if _, _, err := h.RunOne("GEMM", "", workload.Variant("bogus")); err == nil ||
		!strings.Contains(err.Error(), "not implemented") {
		t.Errorf("bad variant error = %v", err)
	}
}
