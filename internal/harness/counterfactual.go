package harness

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Section 11 argues that Blackwell's FP64 tensor regression (66.9 → 40
// TFLOPS) "may directly undermine FP64 MMU adoption for scientific
// computing" and that future roadmaps should preserve FP64 MMU capability.
// This counterfactual experiment makes the argument quantitative: it
// re-runs the suite on a hypothetical Blackwell whose FP64 tensor peak had
// continued Hopper's scaling, and reports what the regression costs each
// workload.

// HypotheticalB200 returns the B200 spec with its FP64 tensor peak scaled
// as if the Ampere→Hopper growth (≈3.4×) had continued at half rate: about
// 115 TFLOPS. All other parameters (bandwidth, power, vector peak) stay at
// the shipped B200's values.
func HypotheticalB200() device.Spec {
	s := device.B200()
	s.Name = "B200-cf"
	// Hopper grew 19.5 → 66.9; continuing at half that growth rate gives
	// 66.9 · √(66.9/19.5) ≈ 124; round conservatively.
	s.TensorFP64 = 115
	return s
}

// CounterfactualRow compares one workload's TC variant on the shipped and
// hypothetical Blackwell.
type CounterfactualRow struct {
	Workload   string
	Quadrant   int
	ShippedS   float64 // TC time on the real B200
	RestoredS  float64 // TC time on the hypothetical part
	SpeedupCF  float64 // ShippedS / RestoredS: what the regression costs
	Bottleneck string  // on the shipped part
}

// Counterfactual runs the comparison over the suite's largest cases. The
// TC runs execute as one parallel plan; the device comparison is serial
// arithmetic on the cached profiles.
func (h *Harness) Counterfactual() ([]CounterfactualRow, error) {
	if err := h.Execute(h.keysTC()); err != nil {
		return nil, err
	}
	shipped := device.B200()
	restored := HypotheticalB200()
	var rows []CounterfactualRow
	for _, w := range h.Suite.Workloads() {
		res, err := h.run(w, powerCase(w), workload.TC)
		if err != nil {
			return nil, err
		}
		rs := sim.Run(shipped, res.Profile)
		rr := sim.Run(restored, res.Profile)
		rows = append(rows, CounterfactualRow{
			Workload:   w.Name(),
			Quadrant:   w.Quadrant(),
			ShippedS:   rs.Time,
			RestoredS:  rr.Time,
			SpeedupCF:  rs.Time / rr.Time,
			Bottleneck: rs.Bottleneck,
		})
	}
	return rows, nil
}

// RenderCounterfactual prints the Section 11 counterfactual.
func RenderCounterfactual(w io.Writer, rows []CounterfactualRow) {
	fmt.Fprintln(w, "Section 11 counterfactual — Blackwell with FP64 tensor scaling preserved")
	fmt.Fprintf(w, "(shipped B200: 40 TFLOPS FP64 TC; hypothetical: %g TFLOPS)\n\n",
		HypotheticalB200().TensorFP64)
	fmt.Fprintf(w, "%-10s %-4s %12s %12s %10s %10s\n",
		"workload", "quad", "shipped(ms)", "restored(ms)", "cost", "bottleneck")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-4s %12.3f %12.3f %9.2fx %10s\n",
			r.Workload, roman(r.Quadrant), r.ShippedS*1e3, r.RestoredS*1e3,
			r.SpeedupCF, r.Bottleneck)
	}
	fmt.Fprintln(w, "\nMemory-bound kernels (cost ≈ 1.0x) ride the 8 TB/s memory system;")
	fmt.Fprintln(w, "the compute-bound ones pay for the regression — the paper's point")
	fmt.Fprintln(w, "that FP64 MMU capability should not be treated as secondary.")
}

// Explain prints the resource-level breakdown of one workload variant on a
// device — the model's view of where the time goes.
func (h *Harness) Explain(w io.Writer, name, caseName string, v workload.Variant, spec device.Spec) error {
	wl, err := h.Suite.ByName(name)
	if err != nil {
		return err
	}
	var c workload.Case
	if caseName == "" {
		c = wl.Representative()
	} else if c, err = workload.FindCase(wl, caseName); err != nil {
		return err
	}
	res, err := h.run(wl, c, v)
	if err != nil {
		return err
	}
	r := sim.Run(spec, res.Profile)
	p := res.Profile
	fmt.Fprintf(w, "%s / %s / %s on %s\n\n", name, c.Name, v, spec.Name)
	fmt.Fprintf(w, "issued work:   %.4g tensor FLOPs, %.4g vector FLOPs, %.4g bit ops\n",
		p.TensorFLOPs, p.VectorFLOPs, p.BitOps)
	fmt.Fprintf(w, "memory:        %.4g DRAM B, %.4g L2 B, %.4g L1 B, %.4g const B\n",
		p.DRAMBytes, p.L2Bytes, p.L1Bytes, p.ConstBytes)
	fmt.Fprintf(w, "intensity:     %.3f FLOP/B (DRAM), ridge %.2f\n",
		p.ArithmeticIntensity(), spec.TensorFP64/spec.DRAMBWTBs)
	b := r.Breakdown
	fmt.Fprintf(w, "\nservice times (µs): tensor %.3f  vector %.3f  bit %.3f\n",
		b.Tensor*1e6, b.Vector*1e6, b.Bit*1e6)
	fmt.Fprintf(w, "                    dram %.3f  l2 %.3f  l1 %.3f  const %.3f\n",
		b.DRAM*1e6, b.L2*1e6, b.L1*1e6, b.Const*1e6)
	fmt.Fprintf(w, "                    launch %.3f  sync %.3f\n", b.Launch*1e6, b.Sync*1e6)
	fmt.Fprintf(w, "\ntotal %.3f µs — bottleneck %s (overlap %.2f)\n",
		r.Time*1e6, r.Bottleneck, effectiveOverlap(p))
	fmt.Fprintf(w, "power %.1f W, energy %.4g J, throughput %.2f %s\n",
		r.AvgPower, r.Energy, res.Work/r.Time/1e9, res.MetricName)
	return nil
}

func effectiveOverlap(p sim.Profile) float64 {
	if p.Overlap == 0 {
		return sim.DefaultOverlap
	}
	return p.Overlap
}
