package harness

// Plan-ahead scheduling. Each experiment (figure, table, sweep) can state
// up front exactly which (workload, case, variant) executions it needs —
// the run grid is static. Instead of pulling runs on demand one figure at
// a time, the harness enumerates the full key set, deduplicates it,
// orders it longest-estimated-first, and executes it on a bounded worker
// pool (Execute). Figures then assemble their rows from the cache in
// deterministic paper order. `cubie all` goes one step further: it unions
// every experiment's keys into one whole-campaign plan (PlanAll) and
// prefetches it in the background (Prefetch), so the runs a later figure
// needs execute while an earlier figure renders.
//
// Because each key lands in the singleflight cache, planner execution and
// on-demand figure pulls compose: whichever path reaches a key first runs
// it, the other joins. Output stays byte-identical regardless of
// scheduling — assembly order is fixed, and every run is deterministic.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/runcache"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RefVariant is the pseudo-variant under which a plan schedules the
// CPU-serial reference computation of a case (the Table 6 ground truth).
const RefVariant workload.Variant = "__reference"

// Planner metrics (see docs/OBSERVABILITY.md).
var (
	metPlanKeys = metrics.NewCounter("cubie_harness_plan_keys_total",
		"Distinct run keys submitted to the plan executor (after deduplication).")
	metPlanDuplicates = metrics.NewCounter("cubie_harness_plan_duplicates_total",
		"Run keys dropped by plan deduplication (requested by more than one experiment).")
	metPlanPrewarmed = metrics.NewCounter("cubie_harness_plan_prewarmed_datasets_total",
		"Table 3/4 dataset syntheses started ahead of the runs that need them.")
)

// RunKey identifies one workload execution a plan needs: a (workload,
// case, variant) triple, with RefVariant selecting the case's CPU-serial
// reference computation.
type RunKey struct {
	Workload string
	Case     string
	Variant  workload.Variant
}

func (k RunKey) String() string {
	return k.Workload + "|" + k.Case + "|" + string(k.Variant)
}

// keysMemo returns the named plan's memoized key slice, building it on
// first use. The suite is immutable, so every enumeration is a constant
// of the harness — re-planning figures (and their benchmarks) should not
// pay the Cases()/Variants() allocations on each call. The returned slice
// is read-only by contract; concurrent first callers may build twice,
// identically.
func (h *Harness) keysMemo(name string, build func() []RunKey) []RunKey {
	h.keysMu.Lock()
	ks, ok := h.keyCache[name]
	h.keysMu.Unlock()
	if ok {
		return ks
	}
	ks = build()
	h.keysMu.Lock()
	h.keyCache[name] = ks
	h.keysMu.Unlock()
	return ks
}

// keysFigure3 is the full performance grid: every workload × case ×
// variant. It is a superset of what Figures 4–9, 11, the sweeps, the
// counterfactual, and the run-backed ablations need.
func (h *Harness) keysFigure3() []RunKey {
	return h.keysMemo("figure3", h.buildKeysFigure3)
}

func (h *Harness) buildKeysFigure3() []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		for _, c := range w.Cases() {
			for _, v := range w.Variants() {
				keys = append(keys, RunKey{w.Name(), c.Name, v})
			}
		}
	}
	return keys
}

// keysSpeedups covers one Figure 4/5/6 variant pair across all cases.
func (h *Harness) keysSpeedups(num, den workload.Variant) []RunKey {
	return h.keysMemo("speedups|"+string(num)+"|"+string(den), func() []RunKey {
		return h.buildKeysSpeedups(num, den)
	})
}

func (h *Harness) buildKeysSpeedups(num, den workload.Variant) []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		if !workload.HasVariant(w, num) || !workload.HasVariant(w, den) {
			continue
		}
		for _, c := range w.Cases() {
			keys = append(keys, RunKey{w.Name(), c.Name, num}, RunKey{w.Name(), c.Name, den})
		}
	}
	return keys
}

// keysPower covers Figures 7 and 8: every variant on the power case.
func (h *Harness) keysPower() []RunKey {
	return h.keysMemo("power", h.buildKeysPower)
}

func (h *Harness) buildKeysPower() []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		for _, v := range w.Variants() {
			keys = append(keys, RunKey{w.Name(), powerCase(w).Name, v})
		}
	}
	return keys
}

// keysTable6 covers the accuracy table: every variant of each
// floating-point workload on its representative case, plus the CPU-serial
// reference of that case.
func (h *Harness) keysTable6() []RunKey {
	return h.keysMemo("table6", h.buildKeysTable6)
}

func (h *Harness) buildKeysTable6() []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		if w.Name() == "BFS" {
			continue
		}
		c := w.Representative().Name
		for _, v := range w.Variants() {
			keys = append(keys, RunKey{w.Name(), c, v})
		}
		keys = append(keys, RunKey{w.Name(), c, RefVariant})
	}
	return keys
}

// keysFigure9 covers the roofline: representative case, every variant,
// floating-point workloads only.
func (h *Harness) keysFigure9() []RunKey {
	return h.keysMemo("figure9", h.buildKeysFigure9)
}

func (h *Harness) buildKeysFigure9() []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		if w.Name() == "BFS" {
			continue
		}
		for _, v := range w.Variants() {
			keys = append(keys, RunKey{w.Name(), w.Representative().Name, v})
		}
	}
	return keys
}

// keysRepresentative covers one variant-complete pass over the
// representative cases (Figure 11's architectural metrics).
func (h *Harness) keysRepresentative() []RunKey {
	return h.keysMemo("representative", h.buildKeysRepresentative)
}

func (h *Harness) buildKeysRepresentative() []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		for _, v := range w.Variants() {
			keys = append(keys, RunKey{w.Name(), w.Representative().Name, v})
		}
	}
	return keys
}

// keysTC covers one variant on the power (largest) case of every workload
// — the sweeps and the Section 11 counterfactual.
func (h *Harness) keysTC() []RunKey {
	return h.keysMemo("tc", h.buildKeysTC)
}

func (h *Harness) buildKeysTC() []RunKey {
	var keys []RunKey
	for _, w := range h.Suite.Workloads() {
		keys = append(keys, RunKey{w.Name(), powerCase(w).Name, workload.TC})
	}
	return keys
}

// PlanAll returns the whole-campaign plan: the union of every experiment
// `cubie all` renders. Figure 3's grid already subsumes the speedup,
// power, roofline, coverage, sweep, counterfactual, and ablation runs;
// Table 6 adds the CPU-serial references.
func (h *Harness) PlanAll() []RunKey {
	return h.keysMemo("all", h.buildPlanAll)
}

func (h *Harness) buildPlanAll() []RunKey {
	var keys []RunKey
	keys = append(keys, h.keysFigure3()...)
	keys = append(keys, h.keysPower()...)
	keys = append(keys, h.keysTable6()...)
	keys = append(keys, h.keysFigure9()...)
	keys = append(keys, h.keysRepresentative()...)
	keys = append(keys, h.keysTC()...)
	return keys
}

// PlanNames lists the named plans PlanByName resolves, in campaign order.
// These are the sweep/campaign granularities the serve API exposes.
func PlanNames() []string {
	return []string{"all", "figure3", "power", "table6", "figure9", "representative", "sweep"}
}

// PlanByName resolves a named plan to its run-key set: "all" is the
// whole-campaign union, "figure3" the full performance grid, "power" the
// Figure 7/8 runs, "table6" the accuracy runs plus CPU-serial references,
// "figure9" the roofline runs, "representative" one variant-complete pass
// over the representative cases, and "sweep" the largest-case TC runs the
// provisioning sweeps and the counterfactual reuse.
func (h *Harness) PlanByName(name string) ([]RunKey, error) {
	switch name {
	case "all":
		return h.PlanAll(), nil
	case "figure3":
		return h.keysFigure3(), nil
	case "power":
		return h.keysPower(), nil
	case "table6":
		return h.keysTable6(), nil
	case "figure9":
		return h.keysFigure9(), nil
	case "representative":
		return h.keysRepresentative(), nil
	case "sweep":
		return h.keysTC(), nil
	}
	return nil, fmt.Errorf("unknown plan %q (have %v)", name, PlanNames())
}

// Progress reports how many of keys have completed successfully so far —
// the serve API's campaign progress counter. Keys whose execution is still
// in flight, failed, or not yet started do not count.
func (h *Harness) Progress(keys []RunKey) int {
	done := 0
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, k := range keys {
		f, ok := h.cache[k.String()]
		if !ok {
			continue
		}
		select {
		case <-f.done:
			if f.err == nil {
				done++
			}
		default:
		}
	}
	return done
}

// Prefetch starts executing a plan in the background and returns
// immediately. Errors are dropped here on purpose: a figure that needs a
// failed key will retry it (failed runs are evicted) and surface the
// error with full context on its own pull path.
func (h *Harness) Prefetch(keys []RunKey) {
	go func() { _ = h.Execute(keys) }()
}

// resolveKey resolves one run key against the suite.
func (h *Harness) resolveKey(k RunKey) (workload.Workload, workload.Case, error) {
	w, err := h.Suite.ByName(k.Workload)
	if err != nil {
		return nil, workload.Case{}, fmt.Errorf("plan %s: %w", k, err)
	}
	c, err := workload.FindCase(w, k.Case)
	if err != nil {
		return nil, workload.Case{}, fmt.Errorf("plan %s: %w", k, err)
	}
	return w, c, nil
}

// ExecuteKey runs one plan key through the harness caches — the unit of
// work a distributed worker executes. A RefVariant key computes the case's
// CPU-serial reference; every other key is a workload-variant execution.
// The result lands in the in-memory singleflight cache and, when a run
// cache is attached, in its persistent tiers (the local directory, then
// the remote store) — which is how a `cubie work` worker publishes results
// back to its coordinator.
func (h *Harness) ExecuteKey(k RunKey) error {
	w, c, err := h.resolveKey(k)
	if err != nil {
		return err
	}
	if k.Variant == RefVariant {
		_, err = h.reference(w, c)
	} else {
		_, err = h.run(w, c, k.Variant)
	}
	if err != nil {
		return fmt.Errorf("%s/%s/%s: %w", k.Workload, k.Case, k.Variant, err)
	}
	return nil
}

// planJob is one resolved plan entry.
type planJob struct {
	key RunKey
	w   workload.Workload
	c   workload.Case
	est float64 // cost estimate for longest-first ordering
}

// estimate scores a job for scheduling: the product of the case dimensions
// when present, the 1-based case position otherwise (Table 2 orders cases
// small to large), with CPU-serial references weighted heavily — they run
// single-threaded and tend to dominate the tail. Only the relative order
// matters; results never depend on it.
func estimate(j planJob) float64 {
	e := 1.0
	for _, d := range j.c.Dims {
		if d > 1 {
			e *= float64(d)
		}
	}
	if e == 1 {
		for i, c := range j.w.Cases() {
			if c.Name == j.c.Name {
				e = float64(i + 1)
				break
			}
		}
	}
	if j.key.Variant == RefVariant {
		e *= 64
	}
	return e
}

// Execute runs a plan: deduplicate the keys, drop the ones whose flight
// already exists in memory (in flight or completed — the assembly pull
// joins those), order the rest longest-estimated-first, pre-warm the
// Table 3/4 datasets the executing keys will touch, and run everything on
// a worker pool bounded by the host's cores. The first error in plan
// order is returned with its key context. Execute composes with
// concurrent figure pulls through the singleflight cache, and re-executing
// an already-satisfied plan costs one map lookup per key.
func (h *Harness) Execute(keys []RunKey) error {
	// Fast path: a plan whose every key already completed an Execute costs
	// one allocation-free map lookup per key — figure drivers re-plan on
	// every call, and a warm driver should pay assembly cost only.
	h.mu.Lock()
	done := true
	for _, k := range keys {
		if !h.planned[k] {
			done = false
			break
		}
	}
	if done {
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()

	// Deduplicate, preserving first-seen order (error reporting is
	// deterministic in plan order, independent of pool scheduling).
	seen := map[RunKey]bool{}
	var jobs []planJob
	h.mu.Lock()
	for _, k := range keys {
		if seen[k] {
			metPlanDuplicates.Inc()
			continue
		}
		seen[k] = true
		if _, ok := h.cache[k.String()]; ok {
			continue // in flight or done; a failed flight is evicted
		}
		jobs = append(jobs, planJob{key: k})
	}
	h.mu.Unlock()
	for i := range jobs {
		w, c, err := h.resolveKey(jobs[i].key)
		if err != nil {
			return err
		}
		jobs[i].w, jobs[i].c = w, c
	}
	if len(jobs) == 0 {
		h.markPlanned(keys)
		return nil
	}
	metPlanKeys.Add(uint64(len(jobs)))
	endSpan := trace.HostSpan("harness-plan", fmt.Sprintf("execute %d keys", len(jobs)))
	defer endSpan()

	for i := range jobs {
		jobs[i].est = estimate(jobs[i])
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := jobs[order[a]], jobs[order[b]]
		if ja.est != jb.est {
			return ja.est > jb.est // longest first
		}
		return ja.key.String() < jb.key.String()
	})

	h.prewarmDatasets(jobs)

	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, idx := range order {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := jobs[i]
			if j.key.Variant == RefVariant {
				_, errs[i] = h.reference(j.w, j.c)
			} else {
				_, errs[i] = h.run(j.w, j.c, j.key.Variant)
			}
		}(idx)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", jobs[i].key.Workload, jobs[i].key.Case, jobs[i].key.Variant, err)
		}
	}
	h.markPlanned(keys)
	return nil
}

// markPlanned records a plan's keys as executed, enabling Execute's
// allocation-free fast path for the re-plans every figure driver issues.
// Keys joined from a still-running prefetch flight are marked optimistically;
// if that flight later fails, the figure's assembly pull retries and
// surfaces the error.
func (h *Harness) markPlanned(keys []RunKey) {
	h.mu.Lock()
	for _, k := range keys {
		h.planned[k] = true
	}
	h.mu.Unlock()
}

// prewarmDatasets kicks off the Table 3/4 dataset syntheses the plan's
// to-be-executed keys depend on, so first-touch synthesis overlaps with
// unrelated runs instead of serializing inside the first kernel that
// needs each dataset. Keys already satisfied by the in-memory or
// persistent cache are skipped — a warm process synthesizes nothing. The
// dataset caches are per-entry singleflight, so the kernel that needs a
// dataset joins the pre-warm instead of re-synthesizing.
func (h *Harness) prewarmDatasets(jobs []planJob) {
	graphs := map[string]bool{}
	matrices := map[string]bool{}
	for _, j := range jobs {
		name := j.c.Dataset
		if name == "" || h.satisfied(j) {
			continue
		}
		if j.w.Name() == "BFS" {
			graphs[name] = true
		} else {
			matrices[name] = true
		}
	}
	for name := range graphs {
		metPlanPrewarmed.Inc()
		go func(name string) { _, _ = graph.SynthesizeShared(name) }(name)
	}
	for name := range matrices {
		metPlanPrewarmed.Inc()
		go func(name string) { _, _ = sparse.SynthesizeShared(name) }(name)
	}
}

// satisfied reports whether a job will complete without executing: its
// flight already exists in memory, or the persistent cache has an entry
// file for it (a cheap stat — a corrupt entry just costs one wasted
// pre-warm skip).
func (h *Harness) satisfied(j planJob) bool {
	h.mu.Lock()
	_, inMem := h.cache[j.key.String()]
	h.mu.Unlock()
	if inMem {
		return true
	}
	kind := runcache.KindResult
	if j.key.Variant == RefVariant {
		kind = runcache.KindReference
	}
	return h.rc.Has(kind, runcache.ResultKey(j.key.Workload, j.key.Case, string(j.key.Variant)))
}
