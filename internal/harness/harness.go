// Package harness drives the paper's experiments end to end: it runs every
// workload variant on the simulated devices and assembles the exact rows
// and series behind Figures 3–12 and Tables 6–7. The cmd/cubie CLI and the
// top-level benchmarks print these structures.
//
// # Concurrency and observability
//
// A Harness is safe for concurrent use. Workload executions are cached
// per (workload, case, variant) key with singleflight semantics: the first
// caller runs the kernel, concurrent callers for the same key block on its
// completion and share the outcome, and a failed run is evicted so a later
// caller can retry. Every figure driver first enumerates the run keys it
// needs (plan.go), executes the deduplicated plan on a bounded worker set
// in longest-estimated-first order, then assembles its rows serially in
// deterministic grid order — harness output is independent of scheduling
// (the same property internal/par guarantees one level down).
//
// # Persistent run cache
//
// When a runcache.Cache is attached (AttachCache; the cubie CLI attaches
// the CUBIE_CACHE-selected cache), completed executions are persisted on
// disk and later processes load them instead of re-running: a warm
// `cubie all` starts zero workload executions
// (cubie_harness_runs_started_total stays 0) yet emits byte-identical
// output, because every run is deterministic (determinism_test.go).
//
// Every execution is instrumented (docs/OBSERVABILITY.md): runs started /
// deduplicated / cached / failed / retried counters, a per-workload
// wall-time histogram (cubie_harness_run_seconds{workload=...}) resolved
// once per workload at construction, runtime/pprof labels {workload,
// variant, phase} via par.DoLabeled so CPU profiles attribute samples to
// kernels, and — when host tracing is active — one trace.HostSpan per
// kernel execution.
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/roofline"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Harness execution metrics (see docs/OBSERVABILITY.md).
var (
	metRunsStarted = metrics.NewCounter("cubie_harness_runs_started_total",
		"Workload executions the harness actually started (cache misses).")
	metRunsDeduped = metrics.NewCounter("cubie_harness_runs_deduped_total",
		"Run requests served by the singleflight cache (joined an in-flight execution or reused a completed one).")
	metRunsCached = metrics.NewCounter("cubie_harness_runs_cached_total",
		"Run requests served by the persistent run cache (loaded from disk, no execution).")
	metRunsFailed = metrics.NewCounter("cubie_harness_runs_failed_total",
		"Workload executions that returned an error (evicted for retry).")
	metRunsRetried = metrics.NewCounter("cubie_harness_runs_retried_total",
		"Executions re-started for a key whose previous run failed.")
)

// runSeconds returns the per-workload wall-time histogram. The Harness
// resolves it once per workload (New / runSecondsFor) instead of paying
// the registry lookup on every execution.
func runSeconds(workloadName string) *metrics.Histogram {
	return metrics.NewHistogram("cubie_harness_run_seconds",
		"Host wall-clock seconds of one workload-variant execution (Go arithmetic, not simulated device time).",
		metrics.DefTimeBuckets, metrics.Label{Key: "workload", Value: workloadName})
}

// Harness caches workload runs so each (workload, case, variant) executes
// once across all experiments — in memory within the process, and on disk
// across processes when a run cache is attached.
type Harness struct {
	Suite *core.Suite

	mu      sync.Mutex
	cache   map[string]*flight
	failed  map[string]bool // keys whose last execution errored
	planned map[RunKey]bool // plans fully executed (Execute's fast path)

	keysMu   sync.Mutex
	keyCache map[string][]RunKey // memoized plan enumerations (keysMemo)

	rc *runcache.Cache // persistent run cache; nil = in-memory only

	histMu sync.Mutex
	hist   map[string]*metrics.Histogram // per-workload run_seconds, resolved once
}

// flight is one singleflight cache entry: the first caller for a key owns
// the execution; later callers block on done and share the outcome.
type flight struct {
	done chan struct{}
	res  *workload.Result
	err  error
}

// New creates a harness over a fresh suite, without a persistent cache
// (AttachCache opts in).
func New() *Harness {
	h := &Harness{
		Suite:    core.NewSuite(),
		cache:    map[string]*flight{},
		failed:   map[string]bool{},
		planned:  map[RunKey]bool{},
		keyCache: map[string][]RunKey{},
		hist:     map[string]*metrics.Histogram{},
	}
	// Resolve the per-workload latency histograms once, up front: the run
	// path then observes into a cached pointer instead of re-resolving the
	// instrument through the registry on every execution.
	for _, w := range h.Suite.Workloads() {
		h.hist[w.Name()] = runSeconds(w.Name())
	}
	return h
}

// AttachCache binds a persistent run cache (nil detaches) and returns h.
// Completed executions are written through; later runs — in this process
// or any other with the same code fingerprint — load them instead of
// executing.
func (h *Harness) AttachCache(c *runcache.Cache) *Harness {
	h.rc = c
	return h
}

// RunCache returns the attached persistent run cache (nil when detached).
// The serve daemon's cache-store endpoints read and write entries through
// it.
func (h *Harness) RunCache() *runcache.Cache {
	return h.rc
}

// runSecondsFor returns the cached per-workload histogram, resolving and
// memoizing it for workloads outside the suite (tests inject those).
func (h *Harness) runSecondsFor(workloadName string) *metrics.Histogram {
	h.histMu.Lock()
	hg := h.hist[workloadName]
	if hg == nil {
		hg = runSeconds(workloadName)
		h.hist[workloadName] = hg
	}
	h.histMu.Unlock()
	return hg
}

// run executes (or returns the cached) result for one workload/case/variant.
// Concurrent callers with the same key are deduplicated: exactly one
// executes w.Run, the rest wait for it (the old check-then-run pattern let
// Figure3's fan-out and a concurrent speedups walk both execute the same
// case). A failed run is evicted so a later caller may retry. With a
// persistent cache attached, a key is first looked up on disk — a hit is
// not an execution — and a completed execution is written through.
func (h *Harness) run(w workload.Workload, c workload.Case, v workload.Variant) (*workload.Result, error) {
	key := w.Name() + "|" + c.Name + "|" + string(v)
	h.mu.Lock()
	if f, ok := h.cache[key]; ok {
		h.mu.Unlock()
		metRunsDeduped.Inc()
		<-f.done
		return f.res, f.err
	}
	f := &flight{done: make(chan struct{})}
	h.cache[key] = f
	retry := h.failed[key]
	delete(h.failed, key)
	h.mu.Unlock()

	if res, ok := h.rc.GetResult(w.Name(), c.Name, string(v)); ok {
		metRunsCached.Inc()
		f.res = res
		close(f.done)
		return f.res, nil
	}

	metRunsStarted.Inc()
	if retry {
		metRunsRetried.Inc()
	}
	endSpan := trace.HostSpan("harness-run", key)
	t0 := time.Now()
	par.DoLabeled(w.Name(), string(v), "run", func() {
		f.res, f.err = w.Run(c, v)
	})
	h.runSecondsFor(w.Name()).Observe(time.Since(t0).Seconds())
	endSpan()
	if f.err != nil {
		metRunsFailed.Inc()
		h.mu.Lock()
		delete(h.cache, key)
		h.failed[key] = true
		h.mu.Unlock()
	} else {
		h.rc.PutResult(w.Name(), c.Name, string(v), cacheable(w, c, f.res))
	}
	close(f.done)
	return f.res, f.err
}

// cacheable returns the result to persist for one execution. Only the
// accuracy analysis (Table 6) ever reads Output, and it replays just the
// representative case — every figure consumes Profile, Work, and the
// utilization fields. Dropping the other cases' output arrays keeps the
// cache (and the cold run's write cost) at megabytes instead of the
// ~800 MB the full grid's outputs occupy.
func cacheable(w workload.Workload, c workload.Case, res *workload.Result) *workload.Result {
	if res == nil || res.Output == nil || c.Name == w.Representative().Name {
		return res
	}
	trimmed := *res
	trimmed.Output = nil
	return &trimmed
}

// reference computes (or returns the cached) CPU-serial ground truth of
// one workload case — the Table 6 baseline. References run through the
// same singleflight cache as variant executions, under the pseudo-variant
// RefVariant, and persist to the run cache: a warm Table 6 re-runs
// nothing, not even the serial CPU references.
func (h *Harness) reference(w workload.Workload, c workload.Case) ([]float64, error) {
	key := w.Name() + "|" + c.Name + "|" + string(RefVariant)
	h.mu.Lock()
	if f, ok := h.cache[key]; ok {
		h.mu.Unlock()
		metRunsDeduped.Inc()
		<-f.done
		return refOutput(f)
	}
	f := &flight{done: make(chan struct{})}
	h.cache[key] = f
	retry := h.failed[key]
	delete(h.failed, key)
	h.mu.Unlock()

	rcKey := runcache.ResultKey(w.Name(), c.Name, string(RefVariant))
	if out, ok := h.rc.GetFloats(runcache.KindReference, rcKey); ok {
		metRunsCached.Inc()
		f.res = &workload.Result{Output: out}
		close(f.done)
		return out, nil
	}

	metRunsStarted.Inc()
	if retry {
		metRunsRetried.Inc()
	}
	endSpan := trace.HostSpan("harness-run", key)
	t0 := time.Now()
	var out []float64
	var err error
	par.DoLabeled(w.Name(), string(RefVariant), "run", func() {
		out, err = w.Reference(c)
	})
	h.runSecondsFor(w.Name()).Observe(time.Since(t0).Seconds())
	endSpan()
	if err != nil {
		f.err = err
		metRunsFailed.Inc()
		h.mu.Lock()
		delete(h.cache, key)
		h.failed[key] = true
		h.mu.Unlock()
	} else {
		f.res = &workload.Result{Output: out}
		h.rc.PutFloats(runcache.KindReference, rcKey, out)
	}
	close(f.done)
	return out, err
}

// refOutput unwraps a reference flight.
func refOutput(f *flight) ([]float64, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.res.Output, nil
}

// RunOne executes a single (workload, case, variant) through the harness
// cache — the entry point behind `cubie run`. An empty caseName selects the
// workload's representative case. The returned Case reports what actually
// ran.
func (h *Harness) RunOne(workloadName, caseName string, v workload.Variant) (workload.Case, *workload.Result, error) {
	w, err := h.Suite.ByName(workloadName)
	if err != nil {
		return workload.Case{}, nil, err
	}
	c := w.Representative()
	if caseName != "" {
		if c, err = workload.FindCase(w, caseName); err != nil {
			return workload.Case{}, nil, err
		}
	}
	if !workload.HasVariant(w, v) {
		return workload.Case{}, nil, fmt.Errorf("workload %s: variant %q not implemented (have %v)",
			w.Name(), v, w.Variants())
	}
	res, err := h.run(w, c, v)
	return c, res, err
}

// PerfCell is one marker of Figure 3: absolute performance of one workload
// variant on one test case and device.
type PerfCell struct {
	Workload   string
	Quadrant   int
	Case       string
	Variant    workload.Variant
	Device     string
	TimeS      float64
	Throughput float64 // Work / time, in Metric units ×1e9
	Metric     string
	Bottleneck string
}

// Figure3 produces the full performance grid: every workload × five cases ×
// all variants × the given devices. The deduplicated run plan executes on
// a worker pool sized to the host's cores (Execute); the rows are then
// assembled in deterministic grid order regardless of scheduling.
func (h *Harness) Figure3(devices []device.Spec) ([]PerfCell, error) {
	if err := h.Execute(h.keysFigure3()); err != nil {
		return nil, err
	}
	var out []PerfCell
	for _, w := range h.Suite.Workloads() {
		for _, c := range w.Cases() {
			for _, v := range w.Variants() {
				res, err := h.run(w, c, v)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", w.Name(), c.Name, v, err)
				}
				for _, spec := range devices {
					r := sim.Run(spec, res.Profile)
					out = append(out, PerfCell{
						Workload:   w.Name(),
						Quadrant:   w.Quadrant(),
						Case:       c.Name,
						Variant:    v,
						Device:     spec.Name,
						TimeS:      r.Time,
						Throughput: res.Work / r.Time / 1e9,
						Metric:     res.MetricName,
						Bottleneck: r.Bottleneck,
					})
				}
			}
		}
	}
	return out, nil
}

// SpeedupRow is one bar of Figures 4–6: the case-averaged speedup of one
// variant pair for one workload on one device.
type SpeedupRow struct {
	Workload string
	Quadrant int
	Device   string
	Speedup  float64 // averaged across the five test cases
}

// speedups computes time(den)/time(num) averaged over the cases, for
// workloads implementing both variants. The runs execute as one parallel
// plan; the averages are assembled serially from the cache.
func (h *Harness) speedups(num, den workload.Variant, devices []device.Spec) ([]SpeedupRow, error) {
	if err := h.Execute(h.keysSpeedups(num, den)); err != nil {
		return nil, err
	}
	var out []SpeedupRow
	for _, w := range h.Suite.Workloads() {
		if !workload.HasVariant(w, num) || !workload.HasVariant(w, den) {
			continue
		}
		for _, spec := range devices {
			var sum float64
			var n int
			for _, c := range w.Cases() {
				rNum, err := h.run(w, c, num)
				if err != nil {
					return nil, err
				}
				rDen, err := h.run(w, c, den)
				if err != nil {
					return nil, err
				}
				tNum := sim.Run(spec, rNum.Profile).Time
				tDen := sim.Run(spec, rDen.Profile).Time
				sum += tDen / tNum
				n++
			}
			out = append(out, SpeedupRow{
				Workload: w.Name(),
				Quadrant: w.Quadrant(),
				Device:   spec.Name,
				Speedup:  sum / float64(n),
			})
		}
	}
	return out, nil
}

// Figure4 returns the TC-over-baseline speedups (grouped by quadrant).
func (h *Harness) Figure4(devices []device.Spec) ([]SpeedupRow, error) {
	return h.speedups(workload.TC, workload.Baseline, devices)
}

// Figure5 returns the CC-over-TC speedups.
func (h *Harness) Figure5(devices []device.Spec) ([]SpeedupRow, error) {
	return h.speedups(workload.CC, workload.TC, devices)
}

// Figure6 returns the CC-E-over-TC speedups (Quadrants II–IV only, since
// CC-E ≡ CC in Quadrant I).
func (h *Harness) Figure6(devices []device.Spec) ([]SpeedupRow, error) {
	return h.speedups(workload.CCE, workload.TC, devices)
}

// EDPRow is one bar of Figure 7: the energy-delay product of one variant's
// representative-case measurement loop.
type EDPRow struct {
	Workload string
	Quadrant int
	Variant  workload.Variant
	Repeats  int
	TimeS    float64 // full measurement loop
	AvgPower float64
	EnergyJ  float64
	EDP      float64 // AvgPower × TimeS² (kernel-only window)
}

// powerCase returns the test case used for the power and EDP experiments:
// the workload's largest case, so the measurement loops run for seconds at
// realistic utilization (the paper's Figure 8 traces span 1–15 s).
func powerCase(w workload.Workload) workload.Case {
	cs := w.Cases()
	return cs[len(cs)-1]
}

// Figure7 computes the EDP comparison on one device (the paper uses H200)
// with the per-workload repeat counts from its caption, plus the
// per-quadrant geomeans of the TC-vs-baseline EDP ratio.
func (h *Harness) Figure7(spec device.Spec) ([]EDPRow, map[int]float64, error) {
	if err := h.Execute(h.keysPower()); err != nil {
		return nil, nil, err
	}
	var rows []EDPRow
	byWQ := map[string]map[workload.Variant]float64{}
	for _, w := range h.Suite.Workloads() {
		byWQ[w.Name()] = map[workload.Variant]float64{}
		for _, v := range w.Variants() {
			res, err := h.run(w, powerCase(w), v)
			if err != nil {
				return nil, nil, err
			}
			r := sim.Run(spec, res.Profile)
			tr := power.Record(spec, r, w.Repeats())
			row := EDPRow{
				Workload: w.Name(),
				Quadrant: w.Quadrant(),
				Variant:  v,
				Repeats:  w.Repeats(),
				TimeS:    tr.TotalTimeS,
				AvgPower: tr.AveragePower(),
				EnergyJ:  tr.Energy(),
				EDP:      tr.EDP(),
			}
			rows = append(rows, row)
			byWQ[w.Name()][v] = row.EDP
		}
	}
	// Geomean of TC/baseline EDP ratios per quadrant.
	ratios := map[int][]float64{}
	for _, w := range h.Suite.Workloads() {
		m := byWQ[w.Name()]
		bl, okB := m[workload.Baseline]
		tc, okT := m[workload.TC]
		if okB && okT && bl > 0 {
			ratios[w.Quadrant()] = append(ratios[w.Quadrant()], tc/bl)
		}
	}
	geo := map[int]float64{}
	for q, rs := range ratios {
		geo[q] = power.Geomean(rs)
	}
	return rows, geo, nil
}

// Figure8 records the power-over-time traces of every workload variant's
// representative measurement loop on one device.
func (h *Harness) Figure8(spec device.Spec) ([]power.Trace, error) {
	if err := h.Execute(h.keysPower()); err != nil {
		return nil, err
	}
	var traces []power.Trace
	for _, w := range h.Suite.Workloads() {
		for _, v := range w.Variants() {
			res, err := h.run(w, powerCase(w), v)
			if err != nil {
				return nil, err
			}
			r := sim.Run(spec, res.Profile)
			tr := power.Record(spec, r, w.Repeats())
			tr.Workload = w.Name()
			tr.Variant = string(v)
			traces = append(traces, tr)
		}
	}
	return traces, nil
}

// Table6 measures the FP64 numerical errors of every floating-point
// workload against the CPU serial reference. The arithmetic in this
// reproduction is device-independent (the MMA semantics are exact), so one
// table stands for both the H200 and B200 columns of the paper. Variant
// runs and the serial references route through the harness cache: the
// parallel plan executes first, and a warm table re-runs nothing.
func (h *Harness) Table6() ([]accuracy.Row, error) {
	if err := h.Execute(h.keysTable6()); err != nil {
		return nil, err
	}
	var rows []accuracy.Row
	for _, w := range h.Suite.Workloads() {
		if w.Name() == "BFS" {
			continue // no floating-point computation (Section 8)
		}
		w := w
		row, err := accuracy.MeasureWorkloadWith(w,
			func(c workload.Case, v workload.Variant) (*workload.Result, error) {
				return h.run(w, c, v)
			},
			func(c workload.Case) ([]float64, error) {
				return h.reference(w, c)
			})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name(), err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9 places every floating-point workload variant on the cache-aware
// roofline of one device (the paper plots H200). BFS is excluded — it
// performs bit-wise operations.
func (h *Harness) Figure9(spec device.Spec) (roofline.Model, []roofline.Point, error) {
	m := roofline.New(spec)
	if err := h.Execute(h.keysFigure9()); err != nil {
		return m, nil, err
	}
	var pts []roofline.Point
	for _, w := range h.Suite.Workloads() {
		if w.Name() == "BFS" {
			continue
		}
		for _, v := range w.Variants() {
			res, err := h.run(w, w.Representative(), v)
			if err != nil {
				return m, nil, err
			}
			pts = append(pts, m.Place(w.Name(), string(v), res.Profile))
		}
	}
	return m, pts, nil
}
