package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/device"
)

func TestSweepBandwidth(t *testing.T) {
	h := New()
	rows, err := h.SweepBandwidth(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Points) != 8 {
			t.Fatalf("%s: %d points", r.Workload, len(r.Points))
		}
		// Speedup must be monotone non-decreasing in bandwidth.
		prev := 0.0
		for _, p := range r.Points {
			if p.Speedup < prev-1e-9 {
				t.Errorf("%s: speedup not monotone at %gx", r.Workload, p.Factor)
			}
			prev = p.Speedup
		}
		if r.Knee < 0.25 || r.Knee > 4 {
			t.Errorf("%s: knee %v outside the sweep", r.Workload, r.Knee)
		}
	}
	// The memory-bound Quadrant IV kernels must have higher bandwidth knees
	// than the compute-bound GEMM (§6.1: QIV "strongly benefit from high
	// memory bandwidth").
	knee := map[string]float64{}
	for _, r := range rows {
		knee[r.Workload] = r.Knee
	}
	if !(knee["SpMV"] > knee["GEMM"]) {
		t.Errorf("SpMV knee %v should exceed GEMM's %v", knee["SpMV"], knee["GEMM"])
	}
}

func TestSweepTensorPeak(t *testing.T) {
	h := New()
	rows, err := h.SweepTensorPeak(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	knee := map[string]float64{}
	gain := map[string]float64{}
	for _, r := range rows {
		knee[r.Workload] = r.Knee
		gain[r.Workload] = r.Points[len(r.Points)-1].Speedup
	}
	// GEMM consumes extra FP64 MMA throughput; SpMV cannot.
	if !(gain["GEMM"] > gain["SpMV"]) {
		t.Errorf("GEMM tensor-peak gain %v should exceed SpMV's %v",
			gain["GEMM"], gain["SpMV"])
	}
	if gain["SpMV"] > 1.3 {
		t.Errorf("SpMV should barely benefit from more tensor peak (got %v)", gain["SpMV"])
	}
}

func TestRenderSweep(t *testing.T) {
	h := New()
	rows, err := h.SweepBandwidth(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderSweep(&buf, "Bandwidth sweep", "bandwidth", rows)
	out := buf.String()
	if !strings.Contains(out, "knee") || !strings.Contains(out, "GEMM") {
		t.Error("sweep render malformed")
	}
}
