package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/roofline"
	"repro/internal/workload"
)

// RenderFigure3 prints the absolute-performance grid grouped by workload
// and device, one row per test case.
func RenderFigure3(w io.Writer, cells []PerfCell) {
	fmt.Fprintln(w, "Figure 3 — absolute performance of all workloads and variants")
	type key struct{ wl, dev string }
	groups := map[key][]PerfCell{}
	var order []key
	for _, c := range cells {
		k := key{c.Workload, c.Device}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		fmt.Fprintf(w, "\n%s on %s (%s)\n", k.wl, k.dev, groups[k][0].Metric)
		byCase := map[string]map[workload.Variant]PerfCell{}
		var caseOrder []string
		for _, c := range groups[k] {
			if _, ok := byCase[c.Case]; !ok {
				byCase[c.Case] = map[workload.Variant]PerfCell{}
				caseOrder = append(caseOrder, c.Case)
			}
			byCase[c.Case][c.Variant] = c
		}
		fmt.Fprintf(w, "  %-18s %12s %12s %12s %12s\n",
			"case", "Baseline", "TC", "CC", "CC-E")
		for _, cs := range caseOrder {
			row := byCase[cs]
			cell := func(v workload.Variant) string {
				c, ok := row[v]
				if !ok {
					return "-"
				}
				return fmt.Sprintf("%.1f", c.Throughput)
			}
			fmt.Fprintf(w, "  %-18s %12s %12s %12s %12s\n",
				cs, cell(workload.Baseline), cell(workload.TC),
				cell(workload.CC), cell(workload.CCE))
		}
	}
}

// RenderSpeedups prints a Figures 4–6 style bar list grouped by quadrant.
func RenderSpeedups(w io.Writer, title string, rows []SpeedupRow) {
	fmt.Fprintln(w, title)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Quadrant != rows[j].Quadrant {
			return rows[i].Quadrant < rows[j].Quadrant
		}
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Device < rows[j].Device
	})
	lastQ := 0
	for _, r := range rows {
		if r.Quadrant != lastQ {
			fmt.Fprintf(w, "Quadrant %s\n", roman(r.Quadrant))
			lastQ = r.Quadrant
		}
		bar := strings.Repeat("#", int(r.Speedup*10))
		if len(bar) > 40 {
			bar = bar[:40] + "+"
		}
		fmt.Fprintf(w, "  %-10s %-5s %6.2fx %s\n", r.Workload, r.Device, r.Speedup, bar)
	}
}

// RenderFigure7 prints the EDP table with quadrant geomeans.
func RenderFigure7(w io.Writer, rows []EDPRow, geo map[int]float64) {
	fmt.Fprintln(w, "Figure 7 — energy-delay product (representative case, measurement loop)")
	fmt.Fprintf(w, "%-10s %-4s %-9s %9s %10s %10s %12s\n",
		"workload", "quad", "variant", "time(s)", "power(W)", "energy(kJ)", "EDP(kJ·s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-4s %-9s %9.3f %10.1f %10.2f %12.2f\n",
			r.Workload, roman(r.Quadrant), r.Variant, r.TimeS, r.AvgPower,
			r.EnergyJ/1e3, r.EDP/1e3)
	}
	fmt.Fprintln(w, "\nGeomean TC/Baseline EDP ratio per quadrant:")
	for q := 1; q <= 4; q++ {
		if g, ok := geo[q]; ok {
			fmt.Fprintf(w, "  Quadrant %-4s %.2f (%.0f%% reduction)\n",
				roman(q), g, (1-g)*100)
		}
	}
}

// RenderFigure8 prints compact summaries of the power traces.
func RenderFigure8(w io.Writer, traces []power.Trace) {
	fmt.Fprintln(w, "Figure 8 — power over time (representative case, measurement loop)")
	fmt.Fprintf(w, "%-10s %-9s %10s %10s %10s %10s\n",
		"workload", "variant", "time(s)", "avg(W)", "peak(W)", "energy(kJ)")
	for _, t := range traces {
		fmt.Fprintf(w, "%-10s %-9s %10.3f %10.1f %10.1f %10.2f\n",
			t.Workload, t.Variant, t.TotalTimeS, t.AveragePower(),
			t.PeakPower(), t.Energy()/1e3)
	}
}

// RenderTable6 prints the FP64 numerical-error table.
func RenderTable6(w io.Writer, rows []accuracy.Row) {
	fmt.Fprintln(w, "Table 6 — FP64 numerical errors vs CPU serial reference")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s %12s %6s\n",
		"workload", "BL avg", "BL max", "TC/CC avg", "TC/CC max", "CC-E avg", "CC-E max", "TC≡CC")
	for _, r := range rows {
		f := func(e *accuracy.Errors, max bool) string {
			if e == nil {
				return "-"
			}
			if max {
				return fmt.Sprintf("%.2e", e.Max)
			}
			return fmt.Sprintf("%.2e", e.Avg)
		}
		fmt.Fprintf(w, "%-10s %12s %12s %12.2e %12.2e %12s %12s %6v\n",
			r.Workload, f(r.Baseline, false), f(r.Baseline, true),
			r.TCCC.Avg, r.TCCC.Max, f(r.CCE, false), f(r.CCE, true), r.TCEqualsCC)
	}
}

// RenderFigure9 prints the roofline model and workload points.
func RenderFigure9(w io.Writer, m roofline.Model, pts []roofline.Point) {
	fmt.Fprintf(w, "Figure 9 — cache-aware roofline on %s\n", m.Spec.Name)
	fmt.Fprintf(w, "  tensor peak %.1f TFLOPS, CUDA peak %.1f TFLOPS, DRAM %.2f TB/s, L1 %.1f TB/s\n",
		m.Spec.TensorFP64, m.Spec.CUDAFP64, m.Spec.DRAMBWTBs, m.Spec.L1BWTBs)
	fmt.Fprintf(w, "  ridge points: CUDA %.2f, tensor %.2f FLOP/B\n",
		m.RidgeCUDA(), m.RidgeTensor())
	fmt.Fprintf(w, "%-10s %-9s %12s %12s %10s %8s\n",
		"workload", "variant", "AI(FLOP/B)", "L1 AI", "TFLOPS", "bound")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %-9s %12.3f %12.3f %10.2f %8s\n",
			p.Workload, p.Variant, p.Intensity, p.L1Int, p.TFLOPS, p.Bound)
	}
}

// RenderCoverage prints a Figure 10 style coverage report.
func RenderCoverage(w io.Writer, title string, r *CoverageReport) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  corpus points: %d; explained variance: PC1 %.0f%%, PC2 %.0f%%\n",
		len(r.Background), r.Explained[0]*100, r.Explained[1]*100)
	fmt.Fprintf(w, "  representative dispersion %.3f vs corpus nearest-neighbor scale %.3f\n",
		r.DispersionSelected, r.DispersionNeighbors)
	fmt.Fprintf(w, "  coverage: %.1f%% of the corpus lies close to a representative\n",
		r.Coverage*100)
	for _, s := range r.Selected {
		fmt.Fprintf(w, "  * %-22s (%7.3f, %7.3f)\n", s.Label, s.X, s.Y)
	}
}

// RenderFigure11 prints the suite-comparison PCA with per-suite dispersion.
func RenderFigure11(w io.Writer, pts []CoveragePoint, disp map[string]float64) {
	fmt.Fprintln(w, "Figure 11 — PCA of architectural metrics: Rodinia vs SHOC vs Cubie")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-24s (%7.3f, %7.3f)\n", p.Label, p.X, p.Y)
	}
	fmt.Fprintln(w, "per-suite dispersion (Cubie spans the widest area, Observation 9):")
	for _, s := range []string{"Rodinia", "SHOC", "Cubie"} {
		fmt.Fprintf(w, "  %-8s %.3f\n", s, disp[s])
	}
}

// RenderFigure12 prints the peak-throughput evolution chart data.
func RenderFigure12(w io.Writer) {
	fmt.Fprintln(w, "Figure 12 — peak throughput across GPU generations (TFLOPS)")
	fmt.Fprintf(w, "%-6s %-10s %-12s %10s\n", "GPU", "precision", "unit", "TFLOPS")
	for _, p := range device.Figure12Peaks() {
		fmt.Fprintf(w, "%-6s %-10s %-12s %10.1f\n", p.GPU, p.Precision, p.Unit, p.TFLOPS)
	}
	fmt.Fprintln(w, "\nNote the FP64 tensor regression: H200 66.9 → B200 40.0 TFLOPS (Section 11).")
}

func roman(q int) string {
	return [...]string{"", "I", "II", "III", "IV"}[q]
}
