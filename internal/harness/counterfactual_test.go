package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/workload"
)

func TestCounterfactualShape(t *testing.T) {
	h := New()
	rows, err := h.Counterfactual()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	computeBoundCost := 0
	for _, r := range rows {
		// Restoring FP64 tensor throughput can only help.
		if r.SpeedupCF < 0.999 {
			t.Errorf("%s: restored part slower (%v)", r.Workload, r.SpeedupCF)
		}
		if r.SpeedupCF > 1.2 {
			computeBoundCost++
		}
	}
	// Section 11's argument needs at least some workloads to pay for the
	// regression (the compute-bound Quadrant I ones).
	if computeBoundCost < 2 {
		t.Errorf("only %d workloads pay for the regression; expected the compute-bound QI set", computeBoundCost)
	}
	var buf bytes.Buffer
	RenderCounterfactual(&buf, rows)
	if !strings.Contains(buf.String(), "counterfactual") {
		t.Error("render malformed")
	}
}

func TestHypotheticalB200OnlyChangesTensorPeak(t *testing.T) {
	real, cf := device.B200(), HypotheticalB200()
	if cf.TensorFP64 <= real.TensorFP64 {
		t.Fatal("hypothetical part must restore FP64 tensor throughput")
	}
	if cf.DRAMBWTBs != real.DRAMBWTBs || cf.CUDAFP64 != real.CUDAFP64 ||
		cf.TDPWatts != real.TDPWatts {
		t.Fatal("counterfactual must only vary the FP64 tensor peak")
	}
}

func TestExplain(t *testing.T) {
	h := New()
	var buf bytes.Buffer
	if err := h.Explain(&buf, "SpMV", "", workload.TC, device.H200()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bottleneck", "tensor FLOPs", "intensity", "GFLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
	if err := h.Explain(&buf, "nope", "", workload.TC, device.H200()); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := h.Explain(&buf, "SpMV", "nope", workload.TC, device.H200()); err == nil {
		t.Error("unknown case accepted")
	}
}
