package harness

// The figure catalog: every renderable figure/table of the reproduction,
// addressable by a stable name. The catalog is the single source of truth
// for what a "figure" is — `cubie all` renders the InAll entries in paper
// order, `cubie <figure>` commands render single entries, and the
// `cubie serve` HTTP API (internal/server) serves them at
// /api/v1/figures/{name}. Because the CLI and the server run the exact
// same Render function, a daemon's figure bytes are identical to the CLI's
// stdout for that figure by construction (internal/server tests pin this).
//
// Render functions write the complete text artifact, with no leading or
// trailing blank line; RenderAll joins the InAll entries with one blank
// line, reproducing the historical `cubie all` output byte for byte.

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Figure is one catalog entry: a named, parameter-free text artifact.
// Entries that take CLI parameters (a device, a corpus size, a speedup
// pair) are frozen at the values `cubie all` uses; the parameterized
// forms remain available as harness methods for the CLI flags.
type Figure struct {
	Name   string // stable endpoint / CLI name
	Title  string // one-line human description
	InAll  bool   // rendered by RenderAll (`cubie all`), in catalog order
	Render func(h *Harness, w io.Writer) error
}

// catalog lists every figure in `cubie all` paper order, followed by the
// entries `cubie all` does not print (datasets, sweep). The order and the
// InAll flags are load-bearing: RenderAll replays them verbatim.
var catalog = []Figure{
	{"suite", "Table 2 — the ten workloads, cases, and variants", true, renderSuite},
	{"specs", "Table 5 — simulated GPU specifications", true, renderSpecs},
	{"quadrants", "Figure 2 — four-quadrant MMU utilization categorization", true, renderQuadrants},
	{"figure3", "Figure 3 — absolute performance grid (all devices)", true, renderFigure3},
	{"figure4", "Figure 4 — TC-over-baseline speedups", true,
		func(h *Harness, w io.Writer) error { return h.RenderSpeedupPair(w, "tc-vs-baseline") }},
	{"figure5", "Figure 5 — CC-over-TC speedups", true,
		func(h *Harness, w io.Writer) error { return h.RenderSpeedupPair(w, "cc-vs-tc") }},
	{"figure6", "Figure 6 — CC-E-over-TC speedups (Quadrants II–IV)", true,
		func(h *Harness, w io.Writer) error { return h.RenderSpeedupPair(w, "cce-vs-tc") }},
	{"figure7", "Figure 7 — energy-delay products on H200", true, renderFigure7},
	{"figure8", "Figure 8 — power-trace summaries on H200", true, renderFigure8},
	{"table6", "Table 6 — FP64 numerical errors vs CPU serial reference", true, renderTable6},
	{"figure9", "Figure 9 — cache-aware roofline on H200", true, renderFigure9},
	{"coverage", "Figures 10–11 — PCA coverage analyses", true,
		func(h *Harness, w io.Writer) error { return h.RenderCoverageSection(w, 199, device.H200()) }},
	{"whatif", "Section 11 counterfactual — Blackwell with FP64 scaling preserved", true, renderWhatif},
	{"ablate", "Ablation studies of the model's design choices", true,
		func(h *Harness, w io.Writer) error { return h.RenderAblationSection(w, device.H200()) }},
	{"dwarfs", "Table 7 — Berkeley-dwarf coverage comparison", true, renderDwarfs},
	{"figure12", "Figure 12 — peak-throughput evolution across generations", true,
		func(h *Harness, w io.Writer) error { RenderFigure12(w); return nil }},
	{"observe", "The nine key observations with Table 1's mapping", true, renderObserve},
	{"datasets", "Tables 3–4 — the synthesized graphs and matrices", false, renderDatasets},
	{"sweep", "Bandwidth / tensor-peak provisioning sweeps on H200", false,
		func(h *Harness, w io.Writer) error { return h.RenderSweepSection(w, device.H200()) }},
}

// Catalog returns the figure catalog in render order. The returned slice
// is shared and read-only by contract.
func Catalog() []Figure { return catalog }

// FigureByName resolves one catalog entry.
func FigureByName(name string) (Figure, bool) {
	for _, f := range catalog {
		if f.Name == name {
			return f, true
		}
	}
	return Figure{}, false
}

// RenderAll renders the whole campaign in paper order — the body of
// `cubie all`. It prefetches the whole-campaign plan first, so the runs a
// later figure needs execute while an earlier figure renders.
func (h *Harness) RenderAll(w io.Writer) error {
	h.Prefetch(h.PlanAll())
	first := true
	for _, f := range catalog {
		if !f.InAll {
			continue
		}
		if !first {
			fmt.Fprintln(w)
		}
		first = false
		if err := f.Render(h, w); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return nil
}

// RenderFigure renders one catalog entry by name.
func (h *Harness) RenderFigure(w io.Writer, name string) error {
	f, ok := FigureByName(name)
	if !ok {
		return fmt.Errorf("unknown figure %q", name)
	}
	return f.Render(h, w)
}

func renderSuite(h *Harness, w io.Writer) error {
	fmt.Fprintln(w, "The Cubie benchmark suite (Table 2)")
	for _, wl := range h.Suite.Workloads() {
		fmt.Fprintf(w, "\n%-10s quadrant %d, dwarf: %s\n", wl.Name(), wl.Quadrant(), wl.Dwarf())
		fmt.Fprint(w, "  cases:   ")
		for i, c := range wl.Cases() {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprint(w, c.Name)
		}
		fmt.Fprint(w, "\n  variants:")
		for _, v := range wl.Variants() {
			fmt.Fprintf(w, " %s", v)
		}
		fmt.Fprintf(w, "\n  figure-7 repeats: %d\n", wl.Repeats())
	}
	return nil
}

func renderSpecs(h *Harness, w io.Writer) error {
	fmt.Fprintln(w, "Simulated GPUs (Table 5)")
	fmt.Fprintf(w, "%-6s %-10s %12s %12s %10s %8s %8s\n",
		"GPU", "arch", "TC FP64(TF)", "CC FP64(TF)", "BW(TB/s)", "mem(GB)", "TDP(W)")
	for _, d := range device.All() {
		fmt.Fprintf(w, "%-6s %-10s %12.1f %12.1f %10.2f %8.0f %8.0f\n",
			d.Name, d.Arch, d.TensorFP64, d.CUDAFP64, d.DRAMBWTBs, d.MemoryGB, d.TDPWatts)
	}
	return nil
}

func renderQuadrants(h *Harness, w io.Writer) error {
	fmt.Fprintln(w, "MMU utilization quadrants (Section 4, Figure 2)")
	mark := func(full bool) string {
		if full {
			return "full"
		}
		return "partial"
	}
	for _, q := range h.Suite.Quadrants() {
		fmt.Fprintf(w, "\nQuadrant %d — input %s, output %s\n",
			q.Quadrant, mark(q.InputFull), mark(q.OutputFull))
		fmt.Fprintf(w, "  %s\n  workloads: %v\n", q.Description, q.Workloads)
	}
	return nil
}

func renderDwarfs(h *Harness, w io.Writer) error {
	fmt.Fprintln(w, "Berkeley-dwarf coverage (Table 7)")
	fmt.Fprintf(w, "%-24s %8s %6s %6s\n", "dwarf", "Rodinia", "SHOC", "Cubie")
	for _, r := range h.Suite.DwarfCoverage() {
		fmt.Fprintf(w, "%-24s %8d %6d %6d\n", r.Dwarf, r.Rodinia, r.SHOC, r.Cubie)
	}
	fmt.Fprintf(w, "\nCubie covers %d dwarfs (Rodinia and SHOC cover 5 each).\n",
		h.Suite.DwarfsCovered())
	return nil
}

func renderObserve(h *Harness, w io.Writer) error {
	fmt.Fprintln(w, "The nine key observations")
	for _, o := range core.Observations() {
		fmt.Fprintf(w, "\nO%d (%s): %s\n", o.ID, o.Sections, o.Statement)
	}
	fmt.Fprintln(w, "\nConcern-to-observation mapping (Table 1):")
	for _, r := range core.Table1() {
		aud := ""
		if r.Architecture {
			aud += " Arch"
		}
		if r.Algorithm {
			aud += " Alg"
		}
		if r.Application {
			aud += " App"
		}
		fmt.Fprintf(w, "  %-26s%-14s O%v\n", r.Concern, aud, r.Observations)
	}
	return nil
}

func renderDatasets(h *Harness, w io.Writer) error {
	fmt.Fprintln(w, "BFS graphs (Table 3; synthesized at reduced scale, see DESIGN.md)")
	fmt.Fprintf(w, "%-20s %10s %12s %-10s %s\n", "graph", "#vertices", "#edges", "group", "synthesis")
	for _, d := range graph.Table3() {
		fmt.Fprintf(w, "%-20s %10d %12d %-10s %s\n", d.Name, d.Vertices, d.Edges, d.Group, d.ScaleNote)
	}
	fmt.Fprintln(w, "\nSpMV/SpGEMM matrices (Table 4; synthesized to structural class)")
	fmt.Fprintf(w, "%-16s %8s %10s %-10s %s\n", "matrix", "#rows", "#nonzeros", "group", "class")
	for _, d := range sparse.Table4() {
		fmt.Fprintf(w, "%-16s %8d %10d %-10s %s\n", d.Name, d.Rows, d.Nonzeros, d.Group, d.Class)
	}
	return nil
}

func renderFigure3(h *Harness, w io.Writer) error {
	cells, err := h.Figure3(device.All())
	if err != nil {
		return err
	}
	RenderFigure3(w, cells)
	return nil
}

// RenderSpeedupPair renders one Figure 4/5/6 speedup comparison, selected
// by the CLI's --of vocabulary.
func (h *Harness) RenderSpeedupPair(w io.Writer, pair string) error {
	var rows []SpeedupRow
	var err error
	var title string
	switch pair {
	case "tc-vs-baseline":
		title = "Figure 4 — speedups of TC over baselines (avg of five cases)"
		rows, err = h.Figure4(device.All())
	case "cc-vs-tc":
		title = "Figure 5 — speedups of CC over TC"
		rows, err = h.Figure5(device.All())
	case "cce-vs-tc":
		title = "Figure 6 — speedups of CC-E over TC (Quadrants II–IV)"
		rows, err = h.Figure6(device.All())
	default:
		return fmt.Errorf("unknown speedup pair %q", pair)
	}
	if err != nil {
		return err
	}
	RenderSpeedups(w, title, rows)
	return nil
}

func renderFigure7(h *Harness, w io.Writer) error {
	rows, geo, err := h.Figure7(device.H200())
	if err != nil {
		return err
	}
	RenderFigure7(w, rows, geo)
	return nil
}

func renderFigure8(h *Harness, w io.Writer) error {
	traces, err := h.Figure8(device.H200())
	if err != nil {
		return err
	}
	RenderFigure8(w, traces)
	return nil
}

func renderTable6(h *Harness, w io.Writer) error {
	rows, err := h.Table6()
	if err != nil {
		return err
	}
	RenderTable6(w, rows)
	return nil
}

func renderFigure9(h *Harness, w io.Writer) error {
	m, pts, err := h.Figure9(device.H200())
	if err != nil {
		return err
	}
	RenderFigure9(w, m, pts)
	return nil
}

// RenderCoverageSection renders Figures 10a, 10b, and 11 — the PCA
// coverage analyses — at the given corpus size (the CLI default is 499;
// `cubie all` uses 199).
func (h *Harness) RenderCoverageSection(w io.Writer, corpus int, spec device.Spec) error {
	gr, err := h.Figure10Graphs(corpus, 1)
	if err != nil {
		return err
	}
	RenderCoverage(w, "Figure 10a — graph coverage (PCA)", gr)
	mr, err := h.Figure10Matrices(corpus, 2)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	RenderCoverage(w, "Figure 10b — matrix coverage (PCA)", mr)
	pts, disp, err := h.Figure11(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	RenderFigure11(w, pts, disp)
	return nil
}

func renderWhatif(h *Harness, w io.Writer) error {
	rows, err := h.Counterfactual()
	if err != nil {
		return err
	}
	RenderCounterfactual(w, rows)
	return nil
}

// RenderAblationSection renders every ablation study on one device.
func (h *Harness) RenderAblationSection(w io.Writer, spec device.Spec) error {
	var all []AblationRow
	rows, err := h.AblateOverlap(spec)
	if err != nil {
		return err
	}
	all = append(all, rows...)
	if rows, err = h.AblateConstCache(spec); err != nil {
		return err
	}
	all = append(all, rows...)
	if rows, err = AblateDASPPadding(); err != nil {
		return err
	}
	all = append(all, rows...)
	if rows, err = AblateBFSRelabel(); err != nil {
		return err
	}
	all = append(all, rows...)
	if rows, err = AblateSpGEMMPairing(h); err != nil {
		return err
	}
	all = append(all, rows...)
	RenderAblations(w, all)
	return nil
}

// RenderSweepSection renders the bandwidth and tensor-peak provisioning
// sweeps on one device.
func (h *Harness) RenderSweepSection(w io.Writer, spec device.Spec) error {
	bw, err := h.SweepBandwidth(spec)
	if err != nil {
		return err
	}
	RenderSweep(w,
		"DRAM bandwidth sweep on "+spec.Name+" (TC variants, largest cases)",
		"bandwidth", bw)
	fmt.Fprintln(w)
	tc, err := h.SweepTensorPeak(spec)
	if err != nil {
		return err
	}
	RenderSweep(w,
		"FP64 tensor-peak sweep on "+spec.Name,
		"tensor peak", tc)
	return nil
}
