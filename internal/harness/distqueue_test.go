package harness

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httputil"
	"repro/internal/runcache"
	"repro/internal/workload"
)

// queueClock is the test seam for lease expiry.
type queueClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *queueClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *queueClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestQueue(t *testing.T, keys []RunKey, timeout time.Duration) (*WorkQueue, *queueClock) {
	t.Helper()
	q, err := New().NewWorkQueue(keys, timeout)
	if err != nil {
		t.Fatal(err)
	}
	clk := &queueClock{now: time.Unix(1000, 0)}
	q.now = clk.Now
	return q, clk
}

func TestWorkQueueOrdersLongestFirst(t *testing.T) {
	h := New()
	w, err := h.Suite.ByName("GEMM")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Cases()[0].Name
	large := w.Cases()[len(w.Cases())-1].Name
	keys := []RunKey{
		{"GEMM", small, workload.TC},
		{"GEMM", large, RefVariant}, // est ×64: must lease first
		{"GEMM", large, workload.TC},
		{"GEMM", small, workload.TC}, // duplicate: dropped
	}
	q, err := h.NewWorkQueue(keys, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st := q.Status(); st.Total != 3 {
		t.Fatalf("total = %d, want 3 after dedup", st.Total)
	}
	want := []RunKey{
		{"GEMM", large, RefVariant},
		{"GEMM", large, workload.TC},
		{"GEMM", small, workload.TC},
	}
	for i, wk := range want {
		g := q.Lease("w1")
		if g.State != LeaseGranted || g.Key != wk {
			t.Fatalf("lease %d = %+v, want key %v", i, g, wk)
		}
	}
	if g := q.Lease("w1"); g.State != LeaseWait {
		t.Fatalf("exhausted queue must answer wait, got %+v", g)
	}
}

func TestWorkQueueRejectsUnknownKeys(t *testing.T) {
	_, err := New().NewWorkQueue([]RunKey{{"NoSuchKernel", "x", workload.TC}}, time.Minute)
	if err == nil || !strings.Contains(err.Error(), "NoSuchKernel") {
		t.Fatalf("unknown workload must fail queue construction: %v", err)
	}
}

func TestWorkQueueEmptyPlanIsDone(t *testing.T) {
	q, _ := newTestQueue(t, nil, time.Minute)
	if g := q.Lease("w1"); g.State != LeaseDone {
		t.Fatalf("empty plan must be done, got %+v", g)
	}
	if err := q.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestWorkQueueDrainsToDone(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	var keys []RunKey
	for _, c := range w.Cases() {
		for _, v := range w.Variants() {
			keys = append(keys, RunKey{"GEMV", c.Name, v})
		}
	}
	q, err := h.NewWorkQueue(keys, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Two "workers" race to drain the queue (no real execution — the queue
	// does not care what completing a lease cost).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			for {
				g := q.Lease(worker)
				switch g.State {
				case LeaseGranted:
					q.Complete(g.Lease, "")
				case LeaseWait:
					time.Sleep(time.Millisecond)
				default:
					return
				}
			}
		}("w" + string(rune('1'+i)))
	}
	wg.Wait()
	if err := q.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := q.Status()
	if st.State != "done" || st.Completed != len(keys) || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("drained status = %+v", st)
	}
}

// TestWorkQueueReissuesOnWorkerDeath is the coordinator fault path: a
// worker leases a key and dies without completing; after the lease
// timeout the key is re-issued to a live worker and the campaign
// completes. The dead worker's late completion is ignored as stale.
func TestWorkQueueReissuesOnWorkerDeath(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	small := w.Cases()[0].Name
	keys := []RunKey{
		{"GEMV", small, workload.TC},
		{"GEMV", small, workload.Baseline},
	}
	q, err := h.NewWorkQueue(keys, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clk := &queueClock{now: time.Unix(1000, 0)}
	q.now = clk.Now

	dead := q.Lease("dying-worker")
	if dead.State != LeaseGranted {
		t.Fatalf("first lease: %+v", dead)
	}
	// The worker dies. Its lease expires...
	clk.Advance(2 * time.Minute)

	// ...and the surviving worker receives the re-issued key along with
	// the rest of the plan.
	got := map[RunKey]bool{}
	for i := 0; i < len(keys); i++ {
		g := q.Lease("survivor")
		if g.State != LeaseGranted {
			t.Fatalf("survivor lease %d: %+v", i, g)
		}
		got[g.Key] = true
		if r := q.Complete(g.Lease, ""); r != "ok" {
			t.Fatalf("survivor complete: %q", r)
		}
	}
	for _, k := range keys {
		if !got[k] {
			t.Fatalf("key %v never re-issued to the survivor", k)
		}
	}
	if st := q.Status(); st.State != "done" || st.Reissued != 1 {
		t.Fatalf("status after recovery = %+v, want done with 1 reissue", st)
	}

	// The dead worker's completion arrives late: stale, and it must not
	// disturb the terminal state.
	if r := q.Complete(dead.Lease, ""); r != "stale" {
		t.Fatalf("late completion = %q, want stale", r)
	}
	if st := q.Status(); st.Completed != 2 {
		t.Fatalf("stale completion must not double-count: %+v", st)
	}
	if err := q.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestWorkQueueFailsAfterRepeatedExecutionFailures(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	keys := []RunKey{{"GEMV", w.Cases()[0].Name, workload.TC}}
	q, err := h.NewWorkQueue(keys, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= maxKeyAttempts; attempt++ {
		g := q.Lease("w1")
		if g.State != LeaseGranted {
			t.Fatalf("attempt %d lease: %+v", attempt, g)
		}
		r := q.Complete(g.Lease, "kernel exploded")
		if attempt < maxKeyAttempts && r != "requeued" {
			t.Fatalf("attempt %d = %q, want requeued", attempt, r)
		}
		if attempt == maxKeyAttempts && r != "failed" {
			t.Fatalf("final attempt = %q, want failed", r)
		}
	}
	if g := q.Lease("w2"); g.State != LeaseFailed || !strings.Contains(g.Err, "kernel exploded") {
		t.Fatalf("post-failure lease = %+v", g)
	}
	if err := q.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("Wait = %v, want the failure", err)
	}
}

func TestWorkQueueGivesUpOnLeaseThrasher(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	keys := []RunKey{{"GEMV", w.Cases()[0].Name, workload.TC}}
	q, err := h.NewWorkQueue(keys, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clk := &queueClock{now: time.Unix(1000, 0)}
	q.now = clk.Now
	// A key that kills every worker that touches it: lease, expire, repeat.
	for i := 0; ; i++ {
		g := q.Lease("w1")
		if g.State == LeaseFailed {
			if !strings.Contains(g.Err, "expired its lease") {
				t.Fatalf("failure reason: %q", g.Err)
			}
			break
		}
		if g.State != LeaseGranted {
			t.Fatalf("iteration %d: %+v", i, g)
		}
		if i > maxKeyReissues+2 {
			t.Fatal("queue never gave up on the thrashing key")
		}
		clk.Advance(2 * time.Minute)
	}
}

func TestWorkQueueWaitHonorsContext(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	q, err := h.NewWorkQueue([]RunKey{{"GEMV", w.Cases()[0].Name, workload.TC}}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

// --- ExecuteKey through the remote tier (the worker's data path) ---

// distStore is a minimal map-backed cache store (the daemon surface the
// remote tier speaks), with a corruption switch for the fault-path test.
type distStore struct {
	mu      sync.Mutex
	entries map[string][]byte
	mangle  bool // serve truncated bytes for every entry
}

func (s *distStore) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, runcache.RemotePathPrefix)
		s.mu.Lock()
		defer s.mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			data, ok := s.entries[name]
			if !ok {
				http.Error(w, "no entry", http.StatusNotFound)
				return
			}
			if s.mangle {
				data = data[:len(data)/2]
			}
			_, _ = w.Write(data)
		case http.MethodPut:
			data, _ := io.ReadAll(r.Body)
			s.entries[name] = data
			w.WriteHeader(http.StatusNoContent)
		}
	})
}

func fastRemote(t *testing.T, url string) *runcache.Remote {
	t.Helper()
	return runcache.NewRemote(url).WithPolicy(httputil.Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
}

// TestExecuteKeyThroughSharedStore is the distributed data path end to
// end at the harness level: worker 1 executes and publishes; a fresh
// worker with an empty local cache completes the same key off the store
// executing nothing; a store serving corrupt bytes forces a third fresh
// worker to re-execute locally and re-publish a good entry.
func TestExecuteKeyThroughSharedStore(t *testing.T) {
	store := &distStore{entries: map[string][]byte{}}
	srv := httptest.NewServer(store.handler())
	defer srv.Close()

	newWorker := func() *Harness {
		rc, err := runcache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return New().AttachCache(rc.AttachRemote(fastRemote(t, srv.URL)))
	}

	w1 := newWorker()
	wl, _ := w1.Suite.ByName("GEMV")
	key := RunKey{"GEMV", wl.Cases()[0].Name, workload.TC}

	started := metRunsStarted.Value()
	if err := w1.ExecuteKey(key); err != nil {
		t.Fatal(err)
	}
	if got := metRunsStarted.Value() - started; got != 1 {
		t.Fatalf("cold worker started %d runs, want 1", got)
	}
	store.mu.Lock()
	published := len(store.entries)
	store.mu.Unlock()
	if published != 1 {
		t.Fatalf("worker published %d entries, want 1", published)
	}

	// A fresh worker with an empty local cache warms entirely off the
	// peer store: zero executions.
	w2 := newWorker()
	started = metRunsStarted.Value()
	if err := w2.ExecuteKey(key); err != nil {
		t.Fatal(err)
	}
	if got := metRunsStarted.Value() - started; got != 0 {
		t.Fatalf("warm peer started %d runs, want 0", got)
	}

	// The store turns rotten: every GET serves truncated bytes. A third
	// fresh worker must silently miss, re-execute locally, and re-publish.
	store.mu.Lock()
	store.mangle = true
	before := map[string]int{}
	for name, data := range store.entries {
		before[name] = len(data)
	}
	store.mu.Unlock()

	w3 := newWorker()
	started = metRunsStarted.Value()
	if err := w3.ExecuteKey(key); err != nil {
		t.Fatalf("corrupt store must not fail the run: %v", err)
	}
	if got := metRunsStarted.Value() - started; got != 1 {
		t.Fatalf("worker facing a corrupt store started %d runs, want 1 (re-execute locally)", got)
	}
	store.mu.Lock()
	store.mangle = false
	repub := len(store.entries) == 1
	for name, data := range store.entries {
		if len(data) != before[name] {
			repub = false
		}
	}
	store.mu.Unlock()
	if !repub {
		t.Fatal("re-execution must re-publish the full entry to the store")
	}

	// With the store healed, a fourth fresh worker is warm again.
	w4 := newWorker()
	started = metRunsStarted.Value()
	if err := w4.ExecuteKey(key); err != nil {
		t.Fatal(err)
	}
	if got := metRunsStarted.Value() - started; got != 0 {
		t.Fatalf("post-heal peer started %d runs, want 0", got)
	}
}
