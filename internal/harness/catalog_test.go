package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestCatalogNamesUniqueAndResolvable: every catalog entry has a distinct
// name, a title, a renderer, and FigureByName finds it.
func TestCatalogNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	inAll := 0
	for _, f := range Catalog() {
		if f.Name == "" || f.Title == "" || f.Render == nil {
			t.Fatalf("catalog entry %+v incomplete", f)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate catalog name %q", f.Name)
		}
		seen[f.Name] = true
		got, ok := FigureByName(f.Name)
		if !ok || got.Name != f.Name {
			t.Fatalf("FigureByName(%q) = %+v, %v", f.Name, got, ok)
		}
		if f.InAll {
			inAll++
		}
	}
	if inAll != 17 {
		t.Fatalf("catalog has %d InAll entries, want 17 (the `cubie all` sections)", inAll)
	}
	if _, ok := FigureByName("no-such-figure"); ok {
		t.Fatal("FigureByName accepted an unknown name")
	}
}

// TestRenderFigureCheapSections: the run-free sections render standalone
// with their expected content.
func TestRenderFigureCheapSections(t *testing.T) {
	h := New()
	for name, want := range map[string]string{
		"suite":     "figure-7 repeats",
		"specs":     "H200",
		"quadrants": "Quadrant 1",
		"dwarfs":    "Sparse linear algebra",
		"observe":   "O9",
		"datasets":  "mycielskian17",
		"figure12":  "Figure 12",
	} {
		var sb strings.Builder
		if err := h.RenderFigure(&sb, name); err != nil {
			t.Fatalf("RenderFigure(%q): %v", name, err)
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("RenderFigure(%q) output missing %q", name, want)
		}
	}
	if err := h.RenderFigure(&strings.Builder{}, "no-such-figure"); err == nil {
		t.Fatal("RenderFigure accepted an unknown name")
	}
}

// TestPlanByName: every advertised plan name resolves to a non-empty key
// set, unknown names error, and "all" subsumes every other plan.
func TestPlanByName(t *testing.T) {
	h := New()
	all := map[RunKey]bool{}
	keys, err := h.PlanByName("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		all[k] = true
	}
	for _, name := range PlanNames() {
		keys, err := h.PlanByName(name)
		if err != nil {
			t.Fatalf("PlanByName(%q): %v", name, err)
		}
		if len(keys) == 0 {
			t.Fatalf("PlanByName(%q) returned no keys", name)
		}
		for _, k := range keys {
			if !all[k] {
				t.Fatalf("plan %q key %s not in the whole-campaign plan", name, k)
			}
		}
	}
	if _, err := h.PlanByName("no-such-plan"); err == nil {
		t.Fatal("PlanByName accepted an unknown plan")
	}
}

// TestProgressCountsCompletedKeys: Progress is zero before execution and
// counts exactly the completed keys afterwards.
func TestProgressCountsCompletedKeys(t *testing.T) {
	h := New()
	w, err := h.Suite.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Cases()[0].Name
	keys := []RunKey{
		{"GEMV", small, workload.TC},
		{"GEMV", small, workload.Baseline},
	}
	if got := h.Progress(keys); got != 0 {
		t.Fatalf("Progress before execution = %d, want 0", got)
	}
	if err := h.Execute(keys[:1]); err != nil {
		t.Fatal(err)
	}
	if got := h.Progress(keys); got != 1 {
		t.Fatalf("Progress after one key = %d, want 1", got)
	}
	if err := h.Execute(keys); err != nil {
		t.Fatal(err)
	}
	if got := h.Progress(keys); got != 2 {
		t.Fatalf("Progress after both keys = %d, want 2", got)
	}
}
