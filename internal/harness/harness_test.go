package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/workload"
)

func TestFigure3Grid(t *testing.T) {
	h := New()
	cells, err := h.Figure3([]device.Spec{device.H200()})
	if err != nil {
		t.Fatal(err)
	}
	// 10 workloads × 5 cases × (3 or 4 variants): PiC has 2, GEMM/FFT/
	// Stencil have 3, the rest 4 → (2+3·3+4·6)·5 = 175 cells.
	if len(cells) != 175 {
		t.Fatalf("%d cells, want 175", len(cells))
	}
	for _, c := range cells {
		if c.TimeS <= 0 || c.Throughput <= 0 {
			t.Fatalf("%s/%s/%s: degenerate cell %+v", c.Workload, c.Case, c.Variant, c)
		}
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, cells)
	if !strings.Contains(buf.String(), "GEMM on H200") {
		t.Error("render missing workload header")
	}
}

func TestRunCaching(t *testing.T) {
	h := New()
	w, _ := h.Suite.ByName("GEMV")
	c := w.Representative()
	a, err := h.run(w, c, workload.TC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.run(w, c, workload.TC)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss on identical run")
	}
}

func TestFigure4Observation3(t *testing.T) {
	// Observation 3: TC outperforms the baseline for (nearly) all
	// workloads on all three GPUs; FFT is the documented exception.
	h := New()
	rows, err := h.Figure4(device.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9*3 { // 9 workloads with baselines × 3 devices
		t.Fatalf("%d rows, want 27", len(rows))
	}
	for _, r := range rows {
		if r.Workload == "FFT" {
			if r.Speedup >= 1 {
				t.Errorf("FFT on %s: speedup %v, cuFFT should win", r.Device, r.Speedup)
			}
			continue
		}
		if r.Speedup <= 1 {
			t.Errorf("%s on %s: TC speedup %v ≤ 1", r.Workload, r.Device, r.Speedup)
		}
	}
}

func TestFigure5Observation4(t *testing.T) {
	// Observation 4: CC runs slower than TC everywhere — MMUs contribute
	// 10%–200% of the gains (CC speedup over TC between ~0.33 and ~0.91).
	h := New()
	rows, err := h.Figure5(device.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10*3 {
		t.Fatalf("%d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if r.Speedup >= 1.0 {
			t.Errorf("%s on %s: CC speedup over TC %v ≥ 1", r.Workload, r.Device, r.Speedup)
		}
		if r.Speedup < 0.15 {
			t.Errorf("%s on %s: CC/TC %v implausibly low", r.Workload, r.Device, r.Speedup)
		}
	}
}

func TestFigure6Observation5(t *testing.T) {
	// Observation 5: redundancy removal does not pay off — except SpMV,
	// where CC-E gains up to ~20% over TC.
	h := New()
	rows, err := h.Figure6(device.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*3 { // six Quadrant II–IV workloads expose CC-E
		t.Fatalf("%d rows, want 18", len(rows))
	}
	for _, r := range rows {
		switch r.Workload {
		case "SpMV":
			if r.Speedup < 1.0 || r.Speedup > 1.35 {
				t.Errorf("SpMV on %s: CC-E speedup %v outside [1.0, 1.35]",
					r.Device, r.Speedup)
			}
		case "Scan":
			if r.Speedup > 0.6 {
				t.Errorf("Scan on %s: CC-E speedup %v, want well below 1",
					r.Device, r.Speedup)
			}
		case "Reduction":
			if r.Speedup < 0.5 || r.Speedup > 0.95 {
				t.Errorf("Reduction on %s: CC-E speedup %v outside [0.5, 0.95]",
					r.Device, r.Speedup)
			}
		case "BFS", "SpGEMM", "GEMV":
			if r.Speedup < 0.7 || r.Speedup > 1.15 {
				t.Errorf("%s on %s: CC-E speedup %v, want ≈1",
					r.Workload, r.Device, r.Speedup)
			}
		}
	}
}

func TestFigure7Observation6(t *testing.T) {
	// Observation 6: the TC variants cut geomean EDP by 30–80% in every
	// quadrant... except where no baseline exists; FFT drags Quadrant I.
	h := New()
	rows, geo, err := h.Figure7(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no EDP rows")
	}
	for _, r := range rows {
		if r.EDP <= 0 || r.AvgPower <= 0 {
			t.Fatalf("%s/%s: degenerate EDP row", r.Workload, r.Variant)
		}
		if r.AvgPower > device.H200().TDPWatts {
			t.Fatalf("%s/%s: power above TDP", r.Workload, r.Variant)
		}
	}
	for q := 1; q <= 4; q++ {
		g, ok := geo[q]
		if !ok {
			t.Fatalf("missing geomean for quadrant %d", q)
		}
		if g >= 1 {
			t.Errorf("quadrant %d: TC geomean EDP ratio %v ≥ 1", q, g)
		}
		if g < 0.05 {
			t.Errorf("quadrant %d: EDP ratio %v implausibly low", q, g)
		}
	}
	// Quadrant IV shows the largest reduction in the paper (~80%).
	if !(geo[4] < geo[2]) {
		t.Errorf("quadrant IV ratio %v should beat quadrant II %v", geo[4], geo[2])
	}
	var buf bytes.Buffer
	RenderFigure7(&buf, rows, geo)
	if !strings.Contains(buf.String(), "Geomean") {
		t.Error("render missing geomeans")
	}
}

func TestFigure8Traces(t *testing.T) {
	h := New()
	traces, err := h.Figure8(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) < 30 {
		t.Fatalf("%d traces", len(traces))
	}
	for _, tr := range traces {
		if tr.Workload == "" || tr.Variant == "" {
			t.Fatal("unlabeled trace")
		}
		if tr.PeakPower() > device.H200().TDPWatts {
			t.Errorf("%s/%s: peak above TDP", tr.Workload, tr.Variant)
		}
		if tr.AveragePower() < device.H200().IdleWatts/2 {
			t.Errorf("%s/%s: average power below idle", tr.Workload, tr.Variant)
		}
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, traces)
	if !strings.Contains(buf.String(), "Stencil") {
		t.Error("render missing workloads")
	}
}

func TestTable6Observation7(t *testing.T) {
	h := New()
	rows, err := h.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // ten workloads minus BFS
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if !r.TCEqualsCC {
			t.Errorf("%s: TC and CC outputs must be bit-identical", r.Workload)
		}
		if r.TCCC.Max > 1e-9 {
			t.Errorf("%s: TC error %v too large for FP64", r.Workload, r.TCCC.Max)
		}
	}
	var buf bytes.Buffer
	RenderTable6(&buf, rows)
	if !strings.Contains(buf.String(), "TC≡CC") {
		t.Error("render missing identity column")
	}
}

func TestFigure9Observation8(t *testing.T) {
	h := New()
	m, pts, err := h.Figure9(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 25 {
		t.Fatalf("%d roofline points", len(pts))
	}
	foundCompute, foundMemory := false, false
	for _, p := range pts {
		if p.TFLOPS <= 0 {
			t.Fatalf("%s/%s: zero throughput", p.Workload, p.Variant)
		}
		switch p.Bound {
		case "compute":
			foundCompute = true
		case "memory":
			foundMemory = true
		}
	}
	if !foundMemory {
		t.Error("no memory-bound kernels — Quadrant IV should be there")
	}
	_ = foundCompute // GEMM's representative case is small; large cases are compute-bound
	var buf bytes.Buffer
	RenderFigure9(&buf, m, pts)
	if !strings.Contains(buf.String(), "ridge") {
		t.Error("render missing ridge info")
	}
}

func TestFigure10Coverage(t *testing.T) {
	gr, err := Figure10Graphs(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Background) != 40 || len(gr.Selected) != 5 {
		t.Fatalf("graph coverage sizes wrong: %d/%d", len(gr.Background), len(gr.Selected))
	}
	// Section 10's claim: the representatives spread much wider than the
	// collection's local scale, and most of the corpus lies near one.
	if gr.DispersionSelected <= gr.DispersionNeighbors {
		t.Errorf("graph reps dispersion %v not above neighbor scale %v",
			gr.DispersionSelected, gr.DispersionNeighbors)
	}
	if gr.Coverage < 0.5 {
		t.Errorf("graph coverage %v too low", gr.Coverage)
	}

	mr, err := Figure10Matrices(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mr.DispersionSelected <= mr.DispersionNeighbors {
		t.Errorf("matrix reps dispersion %v not above neighbor scale %v",
			mr.DispersionSelected, mr.DispersionNeighbors)
	}
	var buf bytes.Buffer
	RenderCoverage(&buf, "Figure 10a", gr)
	if !strings.Contains(buf.String(), "mycielskian17") {
		t.Error("render missing representative labels")
	}
}

func TestFigure11Observation9(t *testing.T) {
	h := New()
	pts, disp, err := h.Figure11(device.H200())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 55 { // 10 Rodinia + 10 SHOC + 35 Cubie variant kernels
		t.Fatalf("%d points, want 55", len(pts))
	}
	// Observation 9: Cubie spans the widest area.
	if !(disp["Cubie"] > disp["Rodinia"]) || !(disp["Cubie"] > disp["SHOC"]) {
		t.Errorf("Cubie dispersion %v not widest (Rodinia %v, SHOC %v)",
			disp["Cubie"], disp["Rodinia"], disp["SHOC"])
	}
	var buf bytes.Buffer
	RenderFigure11(&buf, pts, disp)
	if !strings.Contains(buf.String(), "Cubie") {
		t.Error("render missing suites")
	}
}

func TestRenderSpeedupsAndFigure12(t *testing.T) {
	h := New()
	rows, err := h.Figure4([]device.Spec{device.A100()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderSpeedups(&buf, "Figure 4", rows)
	out := buf.String()
	if !strings.Contains(out, "Quadrant I") || !strings.Contains(out, "x ") {
		t.Error("speedup render malformed")
	}
	buf.Reset()
	RenderFigure12(&buf)
	if !strings.Contains(buf.String(), "1800.0") {
		t.Error("Figure 12 missing B200 FP16 peak")
	}
}
