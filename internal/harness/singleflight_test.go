package harness

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// countingWorkload records how many times Run executes and can be told to
// fail the first few attempts.
type countingWorkload struct {
	runs     atomic.Int64
	failures atomic.Int64  // remaining runs that should error
	block    chan struct{} // if non-nil, Run waits on it (to pile up callers)
}

func (w *countingWorkload) Name() string                 { return "counting" }
func (w *countingWorkload) Quadrant() int                { return 1 }
func (w *countingWorkload) Dwarf() string                { return "test" }
func (w *countingWorkload) Cases() []workload.Case       { return []workload.Case{{Name: "only"}} }
func (w *countingWorkload) Variants() []workload.Variant { return []workload.Variant{workload.TC} }
func (w *countingWorkload) Representative() workload.Case {
	return w.Cases()[0]
}
func (w *countingWorkload) Repeats() int { return 1 }

func (w *countingWorkload) Run(c workload.Case, v workload.Variant) (*workload.Result, error) {
	w.runs.Add(1)
	if w.block != nil {
		<-w.block
	}
	if w.failures.Add(-1) >= 0 {
		return nil, errors.New("counting: injected failure")
	}
	return &workload.Result{Work: 1, MetricName: "ops", Output: []float64{42}}, nil
}

func (w *countingWorkload) Reference(c workload.Case) ([]float64, error) {
	return []float64{42}, nil
}

// TestRunSingleflight is the regression test for the duplicate-execution
// race: N goroutines requesting the same key while the first run is still
// in flight must share one execution. The old check-then-run cache let all
// of them miss the cache and call Run.
func TestRunSingleflight(t *testing.T) {
	w := &countingWorkload{block: make(chan struct{})}
	h := New()
	c := w.Representative()

	const callers = 16
	var wg sync.WaitGroup
	results := make([]*workload.Result, callers)
	errs := make([]error, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			results[i], errs[i] = h.run(w, c, workload.TC)
		}(i)
	}
	// Wait until every caller goroutine is launched, then release the one
	// Run execution that should be in flight.
	for i := 0; i < callers; i++ {
		<-started
	}
	close(w.block)
	wg.Wait()

	if got := w.runs.Load(); got != 1 {
		t.Fatalf("Run executed %d times, want exactly 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
}

// TestRunRetriesAfterError checks that a failed run is evicted from the
// cache so a later caller retries instead of reusing the error forever.
func TestRunRetriesAfterError(t *testing.T) {
	w := &countingWorkload{}
	w.failures.Store(1)
	h := New()
	c := w.Representative()

	if _, err := h.run(w, c, workload.TC); err == nil {
		t.Fatal("first run: want injected failure")
	}
	r, err := h.run(w, c, workload.TC)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r == nil || len(r.Output) != 1 || r.Output[0] != 42 {
		t.Fatalf("second run: unexpected result %+v", r)
	}
	if got := w.runs.Load(); got != 2 {
		t.Fatalf("Run executed %d times, want 2 (fail, then retry)", got)
	}
	// Third call must now hit the cache.
	if _, err := h.run(w, c, workload.TC); err != nil {
		t.Fatalf("third run: %v", err)
	}
	if got := w.runs.Load(); got != 2 {
		t.Fatalf("Run executed %d times after cached call, want 2", got)
	}
}
