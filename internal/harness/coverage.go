package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/pca"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// CoveragePoint is one projected sample of a Figure 10/11 scatter.
type CoveragePoint struct {
	Label string // instance or suite name; "" for corpus background points
	X, Y  float64
}

// CoverageReport summarizes one PCA coverage analysis.
type CoverageReport struct {
	Background []CoveragePoint // the collection sweep
	Selected   []CoveragePoint // the five representatives (Fig 10) or suites (Fig 11)
	// DispersionSelected / DispersionNeighbors reproduce Section 10's
	// "0.18 vs 0.05" spread comparison: the representatives' mean pairwise
	// distance vs the typical nearest-neighbor distance of the collection.
	DispersionSelected  float64
	DispersionNeighbors float64
	// Coverage is the fraction of collection points within the median
	// selected-pair distance of some representative (the "94.6% lie close
	// to a representative" measure).
	Coverage  float64
	Explained []float64
}

// Figure10Graphs runs the PCA coverage analysis of the BFS graphs: a
// corpus of synthetic graphs standing in for the 499-graph SuiteSparse
// sweep, with the five Table 3 instances highlighted.
func Figure10Graphs(corpusSize int, seed int64) (*CoverageReport, error) {
	return figure10Graphs(corpusSize, seed, nil)
}

// Figure10Graphs is the cached form: with a run cache attached, the
// corpus and representative feature matrices persist across processes —
// a warm process skips synthesizing the corpus entirely.
func (h *Harness) Figure10Graphs(corpusSize int, seed int64) (*CoverageReport, error) {
	return figure10Graphs(corpusSize, seed, h.rc)
}

func figure10Graphs(corpusSize int, seed int64, rc *runcache.Cache) (*CoverageReport, error) {
	feats, err := cachedFeatures(rc, fmt.Sprintf("graph-corpus|%d|%d", corpusSize, seed),
		func() ([][]float64, error) {
			var feats [][]float64
			for _, g := range graph.Corpus(corpusSize, seed) {
				feats = append(feats, graph.ExtractFeatures(g).Vector())
			}
			return feats, nil
		})
	if err != nil {
		return nil, err
	}
	var repNames []string
	for _, d := range graph.Table3() {
		repNames = append(repNames, d.Name)
	}
	repFeats, err := cachedFeatures(rc, "graph-reps", func() ([][]float64, error) {
		var feats [][]float64
		for _, d := range graph.Table3() {
			g, err := graph.SynthesizeShared(d.Name)
			if err != nil {
				return nil, err
			}
			feats = append(feats, graph.ExtractFeatures(g).Vector())
		}
		return feats, nil
	})
	if err != nil {
		return nil, err
	}
	return coverageReport(feats, repFeats, repNames)
}

// Figure10Matrices runs the PCA coverage analysis of the SpMV/SpGEMM
// matrices: a synthetic corpus standing in for the 2893-matrix SuiteSparse
// sweep, with the five Table 4 instances highlighted.
func Figure10Matrices(corpusSize int, seed int64) (*CoverageReport, error) {
	return figure10Matrices(corpusSize, seed, nil)
}

// Figure10Matrices is the cached form of the package-level function (see
// Harness.Figure10Graphs).
func (h *Harness) Figure10Matrices(corpusSize int, seed int64) (*CoverageReport, error) {
	return figure10Matrices(corpusSize, seed, h.rc)
}

func figure10Matrices(corpusSize int, seed int64, rc *runcache.Cache) (*CoverageReport, error) {
	feats, err := cachedFeatures(rc, fmt.Sprintf("matrix-corpus|%d|%d", corpusSize, seed),
		func() ([][]float64, error) {
			var feats [][]float64
			for _, m := range sparse.Corpus(corpusSize, seed) {
				feats = append(feats, sparse.ExtractFeatures(m).Vector())
			}
			return feats, nil
		})
	if err != nil {
		return nil, err
	}
	var repNames []string
	for _, d := range sparse.Table4() {
		repNames = append(repNames, d.Name)
	}
	repFeats, err := cachedFeatures(rc, "matrix-reps", func() ([][]float64, error) {
		var feats [][]float64
		for _, d := range sparse.Table4() {
			m, err := sparse.SynthesizeShared(d.Name)
			if err != nil {
				return nil, err
			}
			feats = append(feats, sparse.ExtractFeatures(m).Vector())
		}
		return feats, nil
	})
	if err != nil {
		return nil, err
	}
	return coverageReport(feats, repFeats, repNames)
}

// cachedFeatures memoizes a feature matrix in the run cache. Feature
// extraction is deterministic (synthesis is seeded), so a cached matrix is
// bit-identical to a recomputed one; with no cache attached the compute
// function just runs.
func cachedFeatures(rc *runcache.Cache, key string, compute func() ([][]float64, error)) ([][]float64, error) {
	var feats [][]float64
	if rc.Get(runcache.KindFeatures, key, &feats) {
		return feats, nil
	}
	feats, err := compute()
	if err != nil {
		return nil, err
	}
	rc.Put(runcache.KindFeatures, key, feats)
	return feats, nil
}

func coverageReport(feats, repFeats [][]float64, repNames []string) (*CoverageReport, error) {
	fit, err := pca.Fit(feats, 2)
	if err != nil {
		return nil, err
	}
	rep := &CoverageReport{Explained: fit.Explained}
	for _, p := range fit.Projected {
		rep.Background = append(rep.Background, CoveragePoint{X: p[0], Y: p[1]})
	}
	var repPts [][]float64
	for i, f := range repFeats {
		p, err := fit.Transform(f)
		if err != nil {
			return nil, err
		}
		repPts = append(repPts, p)
		rep.Selected = append(rep.Selected, CoveragePoint{Label: repNames[i], X: p[0], Y: p[1]})
	}
	rep.DispersionSelected = pca.Dispersion(repPts)
	rep.DispersionNeighbors = nearestNeighborScale(fit.Projected)
	rep.Coverage = pca.CoverageNearest(fit.Projected, repPts, rep.DispersionSelected)
	return rep, nil
}

// nearestNeighborScale returns the mean nearest-neighbor distance of the
// projected collection — the local spread the paper compares the
// representatives' dispersion against.
func nearestNeighborScale(points [][]float64) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		best := -1.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := points[i][0] - points[j][0]
			dy := points[i][1] - points[j][1]
			d2 := dx*dx + dy*dy
			if best < 0 || d2 < best {
				best = d2
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(n)
}

// SuiteMetric is one architectural-metric sample of Figure 11: a kernel or
// application characterized by the NCU-class metrics the paper collects —
// memory-pipe efficiency, compute throughput, FMA-pipe utilization, and
// tensor-pipe utilization.
type SuiteMetric struct {
	Suite    string // "Rodinia", "SHOC", "Cubie"
	Workload string
	Vector   []float64 // [memEff, compute, fmaPipe, tensorPipe, l1Pressure]
}

// Figure11Metrics assembles the architectural-metric samples: Cubie's from
// running each workload's TC variant on the given device, Rodinia's and
// SHOC's from archived characteristic values representative of those
// suites' published (vector-only) behavior — see DESIGN.md, substitutions.
func (h *Harness) Figure11Metrics(spec device.Spec) ([]SuiteMetric, error) {
	if err := h.Execute(h.keysRepresentative()); err != nil {
		return nil, err
	}
	// Archived Rodinia/SHOC profiles: (memEff, compute, fma, tensor, l1).
	rodinia := map[string][5]float64{
		"backprop":      {0.55, 0.30, 0.45, 0, 0.35},
		"bfs":           {0.35, 0.10, 0.15, 0, 0.20},
		"hotspot":       {0.60, 0.40, 0.55, 0, 0.45},
		"kmeans":        {0.50, 0.35, 0.50, 0, 0.30},
		"lavaMD":        {0.30, 0.60, 0.70, 0, 0.55},
		"lud":           {0.45, 0.45, 0.60, 0, 0.50},
		"nw":            {0.40, 0.20, 0.25, 0, 0.40},
		"pathfinder":    {0.55, 0.25, 0.35, 0, 0.30},
		"srad":          {0.58, 0.35, 0.50, 0, 0.40},
		"streamcluster": {0.62, 0.20, 0.30, 0, 0.25},
	}
	shoc := map[string][5]float64{
		"DeviceMemory": {0.67, 0.135, 0.151, 0.0, 0.175},
		"MaxFlops":     {0.259, 0.654, 0.698, 0.0, 0.247},
		"FFT":          {0.547, 0.452, 0.54, 0.0, 0.449},
		"GEMM":         {0.475, 0.596, 0.72, 0.0, 0.521},
		"MD":           {0.403, 0.488, 0.576, 0.0, 0.449},
		"Reduction":    {0.655, 0.164, 0.216, 0.0, 0.197},
		"Scan":         {0.619, 0.179, 0.238, 0.0, 0.269},
		"Sort":         {0.511, 0.272, 0.252, 0.0, 0.413},
		"Spmv":         {0.547, 0.2, 0.288, 0.0, 0.305},
		"Triad":        {0.713, 0.15, 0.18, 0.0, 0.146},
	}
	var out []SuiteMetric
	for _, name := range sortedKeys(rodinia) {
		v := rodinia[name]
		out = append(out, SuiteMetric{Suite: "Rodinia", Workload: name, Vector: v[:]})
	}
	for _, name := range sortedKeys(shoc) {
		v := shoc[name]
		out = append(out, SuiteMetric{Suite: "SHOC", Workload: name, Vector: v[:]})
	}
	// Cubie ships every variant as a kernel of the suite; all of them are
	// profiled, mirroring the paper's "complete kernel execution" sweep.
	for _, w := range h.Suite.Workloads() {
		for _, v := range w.Variants() {
			res, err := h.run(w, w.Representative(), v)
			if err != nil {
				return nil, err
			}
			r := sim.Run(spec, res.Profile)
			out = append(out, SuiteMetric{
				Suite:    "Cubie",
				Workload: w.Name() + "-" + string(v),
				Vector: []float64{
					r.UtilDRAM,
					r.UtilTensor + r.UtilVector + r.UtilBit,
					r.UtilVector,
					r.UtilTensor + r.UtilBit,
					r.UtilL1,
				},
			})
		}
	}
	return out, nil
}

func sortedKeys(m map[string][5]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Figure11 projects the suite metrics onto two principal components and
// reports each suite's dispersion — Cubie spans the widest area
// (Observation 9).
func (h *Harness) Figure11(spec device.Spec) ([]CoveragePoint, map[string]float64, error) {
	metrics, err := h.Figure11Metrics(spec)
	if err != nil {
		return nil, nil, err
	}
	var data [][]float64
	for _, m := range metrics {
		data = append(data, m.Vector)
	}
	fit, err := pca.Fit(data, 2)
	if err != nil {
		return nil, nil, err
	}
	var pts []CoveragePoint
	bySuite := map[string][][]float64{}
	for i, m := range metrics {
		p := fit.Projected[i]
		pts = append(pts, CoveragePoint{Label: m.Suite + "/" + m.Workload, X: p[0], Y: p[1]})
		bySuite[m.Suite] = append(bySuite[m.Suite], p)
	}
	disp := map[string]float64{}
	for s, ps := range bySuite {
		disp[s] = pca.Dispersion(ps)
	}
	return pts, disp, nil
}
