// Package device defines the simulated GPU targets of the study: NVIDIA
// A100 (Ampere), H200 (Hopper), and B200 (Blackwell), with the peak numbers
// the paper reports in Table 5 and Figure 12. These specs parameterize the
// analytical execution model in package sim.
package device

import "fmt"

// Arch identifies a GPU architecture generation.
type Arch string

// The three architectures evaluated in the paper.
const (
	Ampere    Arch = "Ampere"
	Hopper    Arch = "Hopper"
	Blackwell Arch = "Blackwell"
)

// Spec describes one simulated GPU.
type Spec struct {
	Name string // marketing name, e.g. "A100"
	Arch Arch

	// FP64 peak throughput in TFLOPS (Table 5).
	TensorFP64 float64 // FP64 tensor core (MMU) peak
	CUDAFP64   float64 // FP64 CUDA core (vector unit) peak

	// FP16 tensor core peak in TFLOPS (Figure 12).
	TensorFP16 float64

	// Bit-MMA peak in Tera bit-ops/s for the b1 m8n8k128 path. Derived from
	// the INT1 tensor throughput of each generation.
	TensorBit float64

	// Memory system.
	MemoryGB    float64
	DRAMBWTBs   float64 // HBM bandwidth, TB/s (Table 5)
	L2BWTBs     float64 // aggregate L2 bandwidth, TB/s
	L1BWTBs     float64 // aggregate L1/shared bandwidth, TB/s (Fig. 9 model)
	ConstBWTBs  float64 // constant-cache broadcast bandwidth, TB/s
	DRAMLatency float64 // µs-scale latency floor per dependent round trip

	// Execution resources.
	SMs      int
	ClockGHz float64

	// Power model parameters.
	TDPWatts  float64 // board power limit
	IdleWatts float64 // static + idle power while a kernel is resident

	// LaunchOverheadUS is the per-kernel-launch fixed cost in microseconds.
	LaunchOverheadUS float64
}

// A100 is the NVIDIA A100 PCIe 40 GB (Ampere) spec from Table 5.
func A100() Spec {
	return Spec{
		Name:       "A100",
		Arch:       Ampere,
		TensorFP64: 19.5,
		CUDAFP64:   9.7,
		TensorFP16: 312,
		TensorBit:  4992, // INT1 tensor TOPS class for GA100
		MemoryGB:   40,
		DRAMBWTBs:  1.555,
		L2BWTBs:    7.0,
		// L1 BW = SMs × LSUs × access width × clock (Fig. 9 formula).
		L1BWTBs:          19.5,
		ConstBWTBs:       28.0,
		DRAMLatency:      0.6,
		SMs:              108,
		ClockGHz:         1.41,
		TDPWatts:         250,
		IdleWatts:        55,
		LaunchOverheadUS: 1.2,
	}
}

// H200 is the NVIDIA H200 SXM (GH200 platform, Hopper) spec from Table 5.
// The paper quotes a 750 W thermal design power for this part (§7).
func H200() Spec {
	return Spec{
		Name:             "H200",
		Arch:             Hopper,
		TensorFP64:       66.9,
		CUDAFP64:         33.5,
		TensorFP16:       989.5,
		TensorBit:        7920,
		MemoryGB:         96,
		DRAMBWTBs:        4.0,
		L2BWTBs:          12.0,
		L1BWTBs:          33.0,
		ConstBWTBs:       48.0,
		DRAMLatency:      0.5,
		SMs:              132,
		ClockGHz:         1.83,
		TDPWatts:         750,
		IdleWatts:        90,
		LaunchOverheadUS: 1.0,
	}
}

// B200 is the NVIDIA B200 SXM (Blackwell) spec from Table 5. Note the FP64
// tensor peak regression relative to Hopper that Section 11 highlights.
func B200() Spec {
	return Spec{
		Name:             "B200",
		Arch:             Blackwell,
		TensorFP64:       40.0,
		CUDAFP64:         40.0,
		TensorFP16:       1800,
		TensorBit:        14000,
		MemoryGB:         180,
		DRAMBWTBs:        8.0,
		L2BWTBs:          18.0,
		L1BWTBs:          42.0,
		ConstBWTBs:       60.0,
		DRAMLatency:      0.45,
		SMs:              148,
		ClockGHz:         1.8,
		TDPWatts:         1000,
		IdleWatts:        120,
		LaunchOverheadUS: 1.0,
	}
}

// All returns the three evaluated GPUs in paper order (A100, H200, B200).
func All() []Spec { return []Spec{A100(), H200(), B200()} }

// ByName returns the spec for a GPU name ("A100", "H200", "B200"),
// case-sensitively, or an error.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("device: unknown GPU %q (want A100, H200, or B200)", name)
}

// TensorToCUDARatio returns the FP64 tensor-to-CUDA peak ratio — 2.0 on
// Ampere and Hopper, 1.0 on Blackwell (Fig. 12).
func (s Spec) TensorToCUDARatio() float64 { return s.TensorFP64 / s.CUDAFP64 }

// PeakEntry is one bar of Figure 12's peak-throughput comparison.
type PeakEntry struct {
	GPU       string
	Arch      Arch
	Precision string // "FP16" or "FP64"
	Unit      string // "TensorCore" or "CUDACore"
	TFLOPS    float64
}

// Figure12Peaks returns the peak-throughput series of Figure 12: FP16 and
// FP64 performance on CUDA cores and tensor cores across the three
// generations.
func Figure12Peaks() []PeakEntry {
	// FP16 CUDA-core peaks (2× FP32 vector rate per the whitepapers).
	cudaFP16 := map[string]float64{"A100": 78, "H200": 134, "B200": 160}
	var out []PeakEntry
	for _, s := range All() {
		out = append(out,
			PeakEntry{s.Name, s.Arch, "FP16", "TensorCore", s.TensorFP16},
			PeakEntry{s.Name, s.Arch, "FP16", "CUDACore", cudaFP16[s.Name]},
			PeakEntry{s.Name, s.Arch, "FP64", "TensorCore", s.TensorFP64},
			PeakEntry{s.Name, s.Arch, "FP64", "CUDACore", s.CUDAFP64},
		)
	}
	return out
}
