package device

import "testing"

func TestTable5Specs(t *testing.T) {
	// Pin the exact Table 5 numbers.
	cases := []struct {
		spec           Spec
		tc, cc, bw, gb float64
		arch           Arch
	}{
		{A100(), 19.5, 9.7, 1.555, 40, Ampere},
		{H200(), 66.9, 33.5, 4.0, 96, Hopper},
		{B200(), 40.0, 40.0, 8.0, 180, Blackwell},
	}
	for _, c := range cases {
		if c.spec.TensorFP64 != c.tc {
			t.Errorf("%s tensor FP64 = %v, want %v", c.spec.Name, c.spec.TensorFP64, c.tc)
		}
		if c.spec.CUDAFP64 != c.cc {
			t.Errorf("%s CUDA FP64 = %v, want %v", c.spec.Name, c.spec.CUDAFP64, c.cc)
		}
		if c.spec.DRAMBWTBs != c.bw {
			t.Errorf("%s bandwidth = %v, want %v", c.spec.Name, c.spec.DRAMBWTBs, c.bw)
		}
		if c.spec.MemoryGB != c.gb {
			t.Errorf("%s memory = %v, want %v", c.spec.Name, c.spec.MemoryGB, c.gb)
		}
		if c.spec.Arch != c.arch {
			t.Errorf("%s arch = %v, want %v", c.spec.Name, c.spec.Arch, c.arch)
		}
	}
}

func TestTensorToCUDARatio(t *testing.T) {
	if r := A100().TensorToCUDARatio(); r < 2.0 || r > 2.02 {
		t.Errorf("A100 ratio = %v, want ≈2", r)
	}
	if r := H200().TensorToCUDARatio(); r < 1.99 || r > 2.0 {
		t.Errorf("H200 ratio = %v, want ≈2", r)
	}
	if r := B200().TensorToCUDARatio(); r != 1.0 {
		t.Errorf("B200 ratio = %v, want 1", r)
	}
}

func TestAllOrderAndByName(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "A100" || all[1].Name != "H200" || all[2].Name != "B200" {
		t.Fatalf("All() order wrong: %v", all)
	}
	for _, name := range []string{"A100", "H200", "B200"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, s.Name, err)
		}
	}
	if _, err := ByName("V100"); err == nil {
		t.Error("ByName(V100) should fail")
	}
}

func TestFigure12Peaks(t *testing.T) {
	peaks := Figure12Peaks()
	if len(peaks) != 12 {
		t.Fatalf("expected 12 entries, got %d", len(peaks))
	}
	find := func(gpu, prec, unit string) float64 {
		for _, p := range peaks {
			if p.GPU == gpu && p.Precision == prec && p.Unit == unit {
				return p.TFLOPS
			}
		}
		t.Fatalf("missing entry %s/%s/%s", gpu, prec, unit)
		return 0
	}
	// FP16 tensor scaling 312 → 989.5 → 1800 (§11).
	if find("A100", "FP16", "TensorCore") != 312 ||
		find("H200", "FP16", "TensorCore") != 989.5 ||
		find("B200", "FP16", "TensorCore") != 1800 {
		t.Error("FP16 tensor peaks do not match Figure 12")
	}
	// FP64 tensor regression on Blackwell: B200 < half of H200.
	h, b := find("H200", "FP64", "TensorCore"), find("B200", "FP64", "TensorCore")
	if !(b < h) {
		t.Errorf("Blackwell FP64 tensor (%v) should regress below Hopper (%v)", b, h)
	}
}

func TestSanityOfModelParameters(t *testing.T) {
	for _, s := range All() {
		if s.IdleWatts <= 0 || s.IdleWatts >= s.TDPWatts {
			t.Errorf("%s: idle power %v out of range (TDP %v)", s.Name, s.IdleWatts, s.TDPWatts)
		}
		if s.L1BWTBs <= s.DRAMBWTBs {
			t.Errorf("%s: L1 bandwidth should exceed DRAM bandwidth", s.Name)
		}
		if s.L2BWTBs <= s.DRAMBWTBs || s.L1BWTBs <= s.L2BWTBs {
			t.Errorf("%s: bandwidth hierarchy should be DRAM < L2 < L1", s.Name)
		}
		if s.SMs <= 0 || s.ClockGHz <= 0 || s.LaunchOverheadUS <= 0 {
			t.Errorf("%s: non-positive resource parameter", s.Name)
		}
	}
}
