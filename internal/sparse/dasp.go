package sparse

import (
	"sync"

	"repro/internal/prestage"
)

// DASP row-group layout (Lu & Liu, SC '23): rows are classified by nonzero
// count into long / medium / short categories and packed into 8-row blocks
// whose nonzeros are organized as 8×4 segments — the A operand of the FP64
// m8n8k4 MMA. The companion 4×8 B operand is built at SpMV time by gathering
// x values so that row i's partial dot product lands on the diagonal C(i,i).
const (
	DASPRowsPerBlock = 8 // lanes (matrix rows) per block
	DASPSegWidth     = 4 // nonzeros consumed per row per MMA
)

// RowCategory classifies a row by its nonzero count.
type RowCategory int

// DASP's three row categories.
const (
	ShortRow  RowCategory = iota // ≤ 4 nonzeros: one segment
	MediumRow                    // ≤ 64 nonzeros: a few segments
	LongRow                      // split across lanes and reduced
)

// Categorize returns the DASP category for a row with nnz nonzeros.
func Categorize(nnz int) RowCategory {
	switch {
	case nnz <= DASPSegWidth:
		return ShortRow
	case nnz <= 64:
		return MediumRow
	default:
		return LongRow
	}
}

// DASPSegment is one 8×4 slice of packed nonzeros: Vals[i][k] is the k-th
// payload of lane i, drawn from column Cols[i][k]. Padding entries have
// value 0 and column 0 (a harmless gather).
type DASPSegment struct {
	Vals [DASPRowsPerBlock][DASPSegWidth]float64
	Cols [DASPRowsPerBlock][DASPSegWidth]int32
}

// DASPBlock packs 8 lanes of work. For short/medium blocks each lane is one
// matrix row; for long blocks all 8 lanes are chunks of the same row and the
// diagonal results are summed at the end.
type DASPBlock struct {
	Category RowCategory
	// RowOf maps lane → original matrix row (-1 for an unused lane).
	RowOf    [DASPRowsPerBlock]int32
	Segments []DASPSegment
}

// segFloats is the element count of one packed 8×4 tile — and, because the
// A tile is M×K and the B tile K×N with M = N = 8, also of one 4×8 tile, so
// SegOff scales both the APanels and BCols slabs.
const segFloats = DASPRowsPerBlock * DASPSegWidth

// DASP is the complete packed layout for one sparse matrix.
type DASP struct {
	Rows, Cols int
	NNZ        int
	Blocks     []DASPBlock
	// PaddedSlots counts total lane-slot payload positions including padding
	// (8·4·segments·blocks); NNZ/PaddedSlots is the MMA input utilization.
	PaddedSlots int

	// MaxSegs is the longest Segments length over all blocks — the per-apply
	// operand-panel sizing bound, hoisted here so ApplyDASP does not rescan
	// the blocks on every call.
	MaxSegs int
	// SegOff[bi] is the cumulative segment count of blocks before bi
	// (length len(Blocks)+1): block bi's prestaged tiles live at element
	// offset 32·SegOff[bi] in both slabs below. Built by Prestage.
	SegOff []int32
	// APanels is the prestaged static A operand: every block's segments as
	// consecutive row-major 8×4 MMA tiles, exactly the bytes the per-call
	// staging packed from Segments[si].Vals — built once by Prestage (lazily,
	// on the first prestaged apply) so the SpMV hot loop only gathers the B
	// side, while layout-only consumers (padding ablations, utilization
	// metrics) never pay for the slabs.
	APanels []float64
	// BCols is the B-side gather index slab in packed B-tile layout:
	// BCols[32·(SegOff[bi]+si) + k·8 + l] = Segments[si].Cols[l][k], so the
	// apply-time gather is the flat 4-wide loop bT[i] = x[BCols[i]].
	BCols []int32

	slabOnce sync.Once
}

// ToDASP builds the DASP layout from a CSR matrix. The prestaged operand
// slabs (APanels/BCols) the SpMV hot loop consumes are materialized on the
// first Prestage call, not here.
func ToDASP(m *CSR) *DASP {
	d := &DASP{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}

	var short, medium, long []int32
	for i := 0; i < m.Rows; i++ {
		switch Categorize(m.RowNNZ(i)) {
		case ShortRow:
			short = append(short, int32(i))
		case MediumRow:
			medium = append(medium, int32(i))
		default:
			long = append(long, int32(i))
		}
	}

	packGroup := func(rows []int32, cat RowCategory) {
		for start := 0; start < len(rows); start += DASPRowsPerBlock {
			end := start + DASPRowsPerBlock
			if end > len(rows) {
				end = len(rows)
			}
			blk := DASPBlock{Category: cat}
			maxSegs := 0
			for l := range blk.RowOf {
				blk.RowOf[l] = -1
			}
			for l, r := range rows[start:end] {
				blk.RowOf[l] = r
				segs := (m.RowNNZ(int(r)) + DASPSegWidth - 1) / DASPSegWidth
				if segs > maxSegs {
					maxSegs = segs
				}
			}
			blk.Segments = make([]DASPSegment, maxSegs)
			for l, r := range rows[start:end] {
				lo := m.RowPtr[r]
				n := m.RowNNZ(int(r))
				// Full segments move 4-wide: the row's nonzeros are contiguous
				// in the CSR arrays and land in consecutive slots of lane l, so
				// the slice→array conversions compile to register moves (the
				// PackARows idiom) instead of a per-element div/mod loop.
				full := n / DASPSegWidth
				for s := 0; s < full; s++ {
					blk.Segments[s].Vals[l] = [DASPSegWidth]float64(m.Vals[lo+s*DASPSegWidth:])
					blk.Segments[s].Cols[l] = [DASPSegWidth]int32(m.ColIdx[lo+s*DASPSegWidth:])
				}
				for k := full * DASPSegWidth; k < n; k++ {
					blk.Segments[full].Vals[l][k%DASPSegWidth] = m.Vals[lo+k]
					blk.Segments[full].Cols[l][k%DASPSegWidth] = m.ColIdx[lo+k]
				}
			}
			d.Blocks = append(d.Blocks, blk)
			d.PaddedSlots += maxSegs * DASPRowsPerBlock * DASPSegWidth
		}
	}
	packGroup(short, ShortRow)
	packGroup(medium, MediumRow)

	// Long rows: all 8 lanes carry disjoint chunks of one row.
	for _, r := range long {
		lo, n := m.RowPtr[r], m.RowNNZ(int(r))
		chunk := (n + DASPRowsPerBlock - 1) / DASPRowsPerBlock
		segs := (chunk + DASPSegWidth - 1) / DASPSegWidth
		blk := DASPBlock{Category: LongRow, Segments: make([]DASPSegment, segs)}
		for l := 0; l < DASPRowsPerBlock; l++ {
			blk.RowOf[l] = r
			end := chunk
			if l*chunk+end > n {
				end = n - l*chunk
			}
			if end <= 0 {
				continue
			}
			base := lo + l*chunk
			full := end / DASPSegWidth
			for s := 0; s < full; s++ {
				blk.Segments[s].Vals[l] = [DASPSegWidth]float64(m.Vals[base+s*DASPSegWidth:])
				blk.Segments[s].Cols[l] = [DASPSegWidth]int32(m.ColIdx[base+s*DASPSegWidth:])
			}
			for k := full * DASPSegWidth; k < end; k++ {
				blk.Segments[k/DASPSegWidth].Vals[l][k%DASPSegWidth] = m.Vals[base+k]
				blk.Segments[k/DASPSegWidth].Cols[l][k%DASPSegWidth] = m.ColIdx[base+k]
			}
		}
		d.Blocks = append(d.Blocks, blk)
		d.PaddedSlots += segs * DASPRowsPerBlock * DASPSegWidth
	}

	for bi := range d.Blocks {
		if s := len(d.Blocks[bi].Segments); s > d.MaxSegs {
			d.MaxSegs = s
		}
	}
	return d
}

// Prestage materializes the prestaged operand slabs (SegOff, APanels,
// BCols), once; subsequent calls are free. ApplyDASP invokes it on the
// prestaged route, so layout-only consumers never allocate the slabs.
// Safe for concurrent use.
func (d *DASP) Prestage() { d.slabOnce.Do(d.buildSlabs) }

// buildSlabs emits the prestaged operand slabs from the assembled blocks:
// the segment offset table, the prepacked A tiles, and the flat B-layout
// gather indices. The A bytes are exactly what the per-call staging loop
// packed (aT[l·4+k] = Vals[l][k] is the row-major flatten of the segment),
// so consuming the slab is bit-invisible; CUBIE_NO_PRESTAGE falls back to
// packing from Segments and must match bitwise.
func (d *DASP) buildSlabs() {
	d.SegOff = make([]int32, len(d.Blocks)+1)
	total := 0
	for bi := range d.Blocks {
		d.SegOff[bi] = int32(total)
		total += len(d.Blocks[bi].Segments)
	}
	d.SegOff[len(d.Blocks)] = int32(total)
	d.APanels = make([]float64, total*segFloats)
	d.BCols = make([]int32, total*segFloats)
	for bi := range d.Blocks {
		base := int(d.SegOff[bi]) * segFloats
		for si := range d.Blocks[bi].Segments {
			seg := &d.Blocks[bi].Segments[si]
			ap := d.APanels[base+si*segFloats : base+(si+1)*segFloats]
			bc := d.BCols[base+si*segFloats : base+(si+1)*segFloats]
			for l := 0; l < DASPRowsPerBlock; l++ {
				*(*[DASPSegWidth]float64)(ap[l*DASPSegWidth:]) = seg.Vals[l]
				c := &seg.Cols[l]
				// Transposed scatter into B-tile layout, 4-wide unrolled.
				bc[l] = c[0]
				bc[DASPRowsPerBlock+l] = c[1]
				bc[2*DASPRowsPerBlock+l] = c[2]
				bc[3*DASPRowsPerBlock+l] = c[3]
			}
		}
	}
	prestage.CountSlab(len(d.APanels)*8 + len(d.BCols)*4)
}

// InputUtilization returns the fraction of MMA A-operand slots carrying real
// nonzeros (Observation 2's input-density measure for SpMV).
func (d *DASP) InputUtilization() float64 {
	if d.PaddedSlots == 0 {
		return 0
	}
	return float64(d.NNZ) / float64(d.PaddedSlots)
}
