package sparse

// DASP row-group layout (Lu & Liu, SC '23): rows are classified by nonzero
// count into long / medium / short categories and packed into 8-row blocks
// whose nonzeros are organized as 8×4 segments — the A operand of the FP64
// m8n8k4 MMA. The companion 4×8 B operand is built at SpMV time by gathering
// x values so that row i's partial dot product lands on the diagonal C(i,i).
const (
	DASPRowsPerBlock = 8 // lanes (matrix rows) per block
	DASPSegWidth     = 4 // nonzeros consumed per row per MMA
)

// RowCategory classifies a row by its nonzero count.
type RowCategory int

// DASP's three row categories.
const (
	ShortRow  RowCategory = iota // ≤ 4 nonzeros: one segment
	MediumRow                    // ≤ 64 nonzeros: a few segments
	LongRow                      // split across lanes and reduced
)

// Categorize returns the DASP category for a row with nnz nonzeros.
func Categorize(nnz int) RowCategory {
	switch {
	case nnz <= DASPSegWidth:
		return ShortRow
	case nnz <= 64:
		return MediumRow
	default:
		return LongRow
	}
}

// DASPSegment is one 8×4 slice of packed nonzeros: Vals[i][k] is the k-th
// payload of lane i, drawn from column Cols[i][k]. Padding entries have
// value 0 and column 0 (a harmless gather).
type DASPSegment struct {
	Vals [DASPRowsPerBlock][DASPSegWidth]float64
	Cols [DASPRowsPerBlock][DASPSegWidth]int32
}

// DASPBlock packs 8 lanes of work. For short/medium blocks each lane is one
// matrix row; for long blocks all 8 lanes are chunks of the same row and the
// diagonal results are summed at the end.
type DASPBlock struct {
	Category RowCategory
	// RowOf maps lane → original matrix row (-1 for an unused lane).
	RowOf    [DASPRowsPerBlock]int32
	Segments []DASPSegment
}

// DASP is the complete packed layout for one sparse matrix.
type DASP struct {
	Rows, Cols int
	NNZ        int
	Blocks     []DASPBlock
	// PaddedSlots counts total lane-slot payload positions including padding
	// (8·4·segments·blocks); NNZ/PaddedSlots is the MMA input utilization.
	PaddedSlots int
}

// ToDASP builds the DASP layout from a CSR matrix.
func ToDASP(m *CSR) *DASP {
	d := &DASP{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}

	var short, medium, long []int32
	for i := 0; i < m.Rows; i++ {
		switch Categorize(m.RowNNZ(i)) {
		case ShortRow:
			short = append(short, int32(i))
		case MediumRow:
			medium = append(medium, int32(i))
		default:
			long = append(long, int32(i))
		}
	}

	packGroup := func(rows []int32, cat RowCategory) {
		for start := 0; start < len(rows); start += DASPRowsPerBlock {
			end := start + DASPRowsPerBlock
			if end > len(rows) {
				end = len(rows)
			}
			blk := DASPBlock{Category: cat}
			maxSegs := 0
			for l := range blk.RowOf {
				blk.RowOf[l] = -1
			}
			for l, r := range rows[start:end] {
				blk.RowOf[l] = r
				segs := (m.RowNNZ(int(r)) + DASPSegWidth - 1) / DASPSegWidth
				if segs > maxSegs {
					maxSegs = segs
				}
			}
			blk.Segments = make([]DASPSegment, maxSegs)
			for l, r := range rows[start:end] {
				lo := m.RowPtr[r]
				n := m.RowNNZ(int(r))
				for k := 0; k < n; k++ {
					seg, slot := k/DASPSegWidth, k%DASPSegWidth
					blk.Segments[seg].Vals[l][slot] = m.Vals[lo+k]
					blk.Segments[seg].Cols[l][slot] = m.ColIdx[lo+k]
				}
			}
			d.Blocks = append(d.Blocks, blk)
			d.PaddedSlots += maxSegs * DASPRowsPerBlock * DASPSegWidth
		}
	}
	packGroup(short, ShortRow)
	packGroup(medium, MediumRow)

	// Long rows: all 8 lanes carry disjoint chunks of one row.
	for _, r := range long {
		lo, n := m.RowPtr[r], m.RowNNZ(int(r))
		chunk := (n + DASPRowsPerBlock - 1) / DASPRowsPerBlock
		segs := (chunk + DASPSegWidth - 1) / DASPSegWidth
		blk := DASPBlock{Category: LongRow, Segments: make([]DASPSegment, segs)}
		for l := 0; l < DASPRowsPerBlock; l++ {
			blk.RowOf[l] = r
			for k := 0; k < chunk; k++ {
				idx := l*chunk + k
				if idx >= n {
					break
				}
				seg, slot := k/DASPSegWidth, k%DASPSegWidth
				blk.Segments[seg].Vals[l][slot] = m.Vals[lo+idx]
				blk.Segments[seg].Cols[l][slot] = m.ColIdx[lo+idx]
			}
		}
		d.Blocks = append(d.Blocks, blk)
		d.PaddedSlots += segs * DASPRowsPerBlock * DASPSegWidth
	}
	return d
}

// InputUtilization returns the fraction of MMA A-operand slots carrying real
// nonzeros (Observation 2's input-density measure for SpMV).
func (d *DASP) InputUtilization() float64 {
	if d.PaddedSlots == 0 {
		return 0
	}
	return float64(d.NNZ) / float64(d.PaddedSlots)
}
