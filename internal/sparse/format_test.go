package sparse

import (
	"testing"

	"repro/internal/lcg"
)

func randomCSR(t *testing.T, rows, cols, nnz int, seed int64) *CSR {
	t.Helper()
	g := lcg.New(seed)
	coo := NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		coo.Add(g.Intn(rows), g.Intn(cols), g.Symmetric())
	}
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMBSRRoundTrip(t *testing.T) {
	m := randomCSR(t, 30, 30, 120, 9)
	b := ToMBSR(m)
	back := b.ToCSR()
	if back.Rows != m.Rows || back.Cols != m.Cols {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if back.At(i, j) != m.At(i, j) {
				t.Fatalf("round trip changed (%d,%d): %v vs %v",
					i, j, back.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestMBSRBlockStructure(t *testing.T) {
	// One dense 4×4 block at block (1,2).
	coo := NewCOO(8, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			coo.Add(4+i, 8+j, float64(i*4+j+1))
		}
	}
	b := ToMBSR(coo.ToCSR())
	if b.BlockNNZ() != 1 {
		t.Fatalf("BlockNNZ = %d, want 1", b.BlockNNZ())
	}
	blk := b.Blocks[0]
	if blk.BlockCol != 2 {
		t.Fatalf("block col = %d, want 2", blk.BlockCol)
	}
	if blk.Vals[0] != 1 || blk.Vals[15] != 16 {
		t.Fatal("block payload misplaced")
	}
	if fr := b.FillRatio(16); fr != 1 {
		t.Fatalf("fill ratio = %v, want 1", fr)
	}
}

func TestMBSRFillRatioPartial(t *testing.T) {
	coo := NewCOO(4, 4)
	coo.Add(0, 0, 1) // one nonzero in one 4×4 block
	b := ToMBSR(coo.ToCSR())
	if fr := b.FillRatio(1); fr != 1.0/16 {
		t.Fatalf("fill ratio = %v, want 1/16", fr)
	}
}

func TestMBSRBlockColsSorted(t *testing.T) {
	m := randomCSR(t, 64, 64, 400, 17)
	b := ToMBSR(m)
	for i := 0; i < b.BlockRows; i++ {
		for p := b.RowPtr[i] + 1; p < b.RowPtr[i+1]; p++ {
			if b.Blocks[p].BlockCol <= b.Blocks[p-1].BlockCol {
				t.Fatalf("block row %d not sorted", i)
			}
		}
	}
}

func TestCategorize(t *testing.T) {
	cases := []struct {
		nnz  int
		want RowCategory
	}{
		{0, ShortRow}, {4, ShortRow}, {5, MediumRow}, {64, MediumRow},
		{65, LongRow}, {1000, LongRow},
	}
	for _, c := range cases {
		if got := Categorize(c.nnz); got != c.want {
			t.Errorf("Categorize(%d) = %v, want %v", c.nnz, got, c.want)
		}
	}
}

func TestToDASPCoversAllNonzeros(t *testing.T) {
	m := randomCSR(t, 100, 100, 900, 23)
	d := ToDASP(m)
	if d.NNZ != m.NNZ() {
		t.Fatalf("DASP NNZ %d, want %d", d.NNZ, m.NNZ())
	}
	// Reconstruct y = A·1 via DASP and compare to CSR.
	ones := make([]float64, m.Cols)
	for i := range ones {
		ones[i] = 1
	}
	got := make([]float64, m.Rows)
	for _, blk := range d.Blocks {
		for _, seg := range blk.Segments {
			for l := 0; l < DASPRowsPerBlock; l++ {
				r := blk.RowOf[l]
				if r < 0 {
					continue
				}
				for k := 0; k < DASPSegWidth; k++ {
					got[r] += seg.Vals[l][k] * ones[seg.Cols[l][k]]
				}
			}
		}
	}
	for i := 0; i < m.Rows; i++ {
		var want float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			want += m.Vals[k]
		}
		if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %d: DASP sum %v, CSR sum %v", i, got[i], want)
		}
	}
}

func TestDASPLongRowSplit(t *testing.T) {
	// One row with 100 nonzeros must be classified long and split over lanes.
	coo := NewCOO(2, 128)
	for j := 0; j < 100; j++ {
		coo.Add(0, j, 1)
	}
	coo.Add(1, 0, 5)
	d := ToDASP(coo.ToCSR())
	foundLong := false
	for _, blk := range d.Blocks {
		if blk.Category == LongRow {
			foundLong = true
			for l := 0; l < DASPRowsPerBlock; l++ {
				if blk.RowOf[l] != 0 {
					t.Fatal("long block lanes should all map to row 0")
				}
			}
		}
	}
	if !foundLong {
		t.Fatal("no long block generated")
	}
}

func TestDASPUtilizationBounds(t *testing.T) {
	m := randomCSR(t, 200, 200, 2000, 31)
	d := ToDASP(m)
	u := d.InputUtilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of (0,1]", u)
	}
}

func TestDASPEmptyMatrix(t *testing.T) {
	m := NewCOO(10, 10).ToCSR()
	d := ToDASP(m)
	if d.NNZ != 0 {
		t.Fatal("empty matrix should have 0 nnz")
	}
	if u := d.InputUtilization(); u < 0 || u > 1 {
		t.Fatalf("utilization %v invalid for empty matrix", u)
	}
}
