package sparse

import (
	"sync"

	"repro/internal/metrics"
)

// Shared-cache metrics: hits are requests served from the process-wide
// cache; misses ran the (expensive) synthesis.
var (
	metCacheHits = metrics.NewCounter("cubie_sparse_synthesize_hits_total",
		"Table 4 matrix requests served from the shared cache.")
	metCacheMisses = metrics.NewCounter("cubie_sparse_synthesize_misses_total",
		"Table 4 matrix requests that synthesized a new instance.")
)

// shared caches synthesized Table 4 matrices process-wide. Synthesis is
// deterministic, so every consumer sees identical structure and values.
var shared = struct {
	mu sync.Mutex
	m  map[string]*CSR
}{m: map[string]*CSR{}}

// SynthesizeShared returns the process-wide shared instance of the named
// Table 4 matrix, synthesizing it on first use. The returned CSR must be
// treated as read-only: SpMV, SpGEMM, and the harness coverage/ablation
// studies all hold the same pointer (previously each synthesized its own
// copy — raefsky3 alone is ~1.5 M nonzeros built three times over). The
// lock is held across synthesis so concurrent first callers do the work
// exactly once.
func SynthesizeShared(name string) (*CSR, error) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if m, ok := shared.m[name]; ok {
		metCacheHits.Inc()
		return m, nil
	}
	metCacheMisses.Inc()
	m, err := Synthesize(name)
	if err != nil {
		return nil, err
	}
	shared.m[name] = m
	return m, nil
}
