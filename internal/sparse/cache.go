package sparse

import (
	"sync"

	"repro/internal/metrics"
)

// Shared-cache metrics: hits are requests served from the process-wide
// cache (including callers that joined an in-flight synthesis); misses ran
// the (expensive) synthesis.
var (
	metCacheHits = metrics.NewCounter("cubie_sparse_synthesize_hits_total",
		"Table 4 matrix requests served from the shared cache.")
	metCacheMisses = metrics.NewCounter("cubie_sparse_synthesize_misses_total",
		"Table 4 matrix requests that synthesized a new instance.")
)

// csrFlight is one per-name synthesis: the first requester owns it, later
// requesters block on done and share the outcome.
type csrFlight struct {
	done chan struct{}
	m    *CSR
	err  error
}

// shared caches synthesized Table 4 matrices process-wide. Synthesis is
// deterministic, so every consumer sees identical structure and values.
// Entries are per-name singleflights rather than a lock held across
// synthesis, so distinct matrices synthesize concurrently — the harness
// planner pre-warms them in parallel while the kernel that needs one joins
// its flight.
var shared = struct {
	mu sync.Mutex
	m  map[string]*csrFlight
}{m: map[string]*csrFlight{}}

// SynthesizeShared returns the process-wide shared instance of the named
// Table 4 matrix, synthesizing it on first use. The returned CSR must be
// treated as read-only: SpMV, SpGEMM, and the harness coverage/ablation
// studies all hold the same pointer (previously each synthesized its own
// copy — raefsky3 alone is ~1.5 M nonzeros built three times over).
// Concurrent first callers for one name do the work exactly once; a failed
// synthesis is evicted so a later caller can retry.
func SynthesizeShared(name string) (*CSR, error) {
	shared.mu.Lock()
	if f, ok := shared.m[name]; ok {
		shared.mu.Unlock()
		<-f.done
		if f.err == nil {
			metCacheHits.Inc()
		}
		return f.m, f.err
	}
	f := &csrFlight{done: make(chan struct{})}
	shared.m[name] = f
	shared.mu.Unlock()

	metCacheMisses.Inc()
	f.m, f.err = Synthesize(name)
	if f.err != nil {
		shared.mu.Lock()
		delete(shared.m, name)
		shared.mu.Unlock()
	}
	close(f.done)
	return f.m, f.err
}
