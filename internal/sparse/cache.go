package sparse

import "sync"

// shared caches synthesized Table 4 matrices process-wide. Synthesis is
// deterministic, so every consumer sees identical structure and values.
var shared = struct {
	mu sync.Mutex
	m  map[string]*CSR
}{m: map[string]*CSR{}}

// SynthesizeShared returns the process-wide shared instance of the named
// Table 4 matrix, synthesizing it on first use. The returned CSR must be
// treated as read-only: SpMV, SpGEMM, and the harness coverage/ablation
// studies all hold the same pointer (previously each synthesized its own
// copy — raefsky3 alone is ~1.5 M nonzeros built three times over). The
// lock is held across synthesis so concurrent first callers do the work
// exactly once.
func SynthesizeShared(name string) (*CSR, error) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if m, ok := shared.m[name]; ok {
		return m, nil
	}
	m, err := Synthesize(name)
	if err != nil {
		return nil, err
	}
	shared.m[name] = m
	return m, nil
}
