package sparse

import (
	"sync"
	"testing"
)

// TestSynthesizeSharedEvictsFailures: a failed synthesis must not poison
// the cache — each later request retries (misses again) instead of joining
// a dead flight.
func TestSynthesizeSharedEvictsFailures(t *testing.T) {
	misses := metCacheMisses.Value()
	if _, err := SynthesizeShared("no-such-matrix"); err == nil {
		t.Fatal("unknown matrix must error")
	}
	if _, err := SynthesizeShared("no-such-matrix"); err == nil {
		t.Fatal("unknown matrix must error on retry too")
	}
	if got := metCacheMisses.Value() - misses; got != 2 {
		t.Fatalf("failed synthesis must be evicted and retried: %d misses, want 2", got)
	}
}

// TestSynthesizeSharedConcurrent: concurrent requesters of one name share
// a single synthesis and the identical instance.
func TestSynthesizeSharedConcurrent(t *testing.T) {
	name := Table4()[0].Name
	const callers = 8
	out := make([]*CSR, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := SynthesizeShared(name)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if out[i] != out[0] {
			t.Fatalf("caller %d got a different instance", i)
		}
	}
}
