package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/lcg"
)

func smallCSR(t *testing.T) *CSR {
	t.Helper()
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(0, 3, 4)
	coo.Add(1, 0, 1)
	coo.Add(2, 2, 3)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCOOToCSR(t *testing.T) {
	m := smallCSR(t)
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(0, 3) != 4 || m.At(1, 0) != 1 || m.At(2, 2) != 3 {
		t.Fatal("values misplaced")
	}
	if m.At(0, 0) != 0 || m.At(2, 3) != 0 {
		t.Fatal("missing entries should read 0")
	}
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 1 || m.RowNNZ(2) != 1 {
		t.Fatal("row counts wrong")
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(1, 1, 1.5)
	coo.Add(1, 1, 2.5)
	coo.Add(0, 0, 1)
	m := coo.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after duplicate merge", m.NNZ())
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v, want 4", m.At(1, 1))
	}
}

func TestCOOUnsortedInput(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(2, 0, 1)
	coo.Add(0, 2, 2)
	coo.Add(1, 1, 3)
	coo.Add(0, 0, 4)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 4 || m.At(0, 2) != 2 || m.At(1, 1) != 3 || m.At(2, 0) != 1 {
		t.Fatal("unsorted COO converted wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := smallCSR(t)
	m.ColIdx[0] = 99 // out of range
	if err := m.Validate(); err == nil {
		t.Error("out-of-range column not caught")
	}
	m = smallCSR(t)
	m.RowPtr[1] = 5 // non-monotone / bad endpoint
	if err := m.Validate(); err == nil {
		t.Error("bad RowPtr not caught")
	}
	m = smallCSR(t)
	m.Vals = m.Vals[:2]
	if err := m.Validate(); err == nil {
		t.Error("val/idx length mismatch not caught")
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := lcg.New(5)
	coo := NewCOO(16, 12)
	for k := 0; k < 60; k++ {
		coo.Add(g.Intn(16), g.Intn(12), g.Symmetric())
	}
	m := coo.ToCSR()
	tt := m.Transpose().Transpose()
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
		t.Fatal("double transpose changed shape")
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := int(m.ColIdx[k])
			if tt.At(i, j) != m.Vals[k] {
				t.Fatalf("double transpose changed (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeMovesEntries(t *testing.T) {
	m := smallCSR(t)
	tr := m.Transpose()
	if tr.Rows != 4 || tr.Cols != 3 {
		t.Fatal("transpose shape wrong")
	}
	if tr.At(1, 0) != 2 || tr.At(3, 0) != 4 || tr.At(0, 1) != 1 {
		t.Fatal("transpose values wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposePreservesNNZProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := lcg.New(seed)
		coo := NewCOO(20, 20)
		n := 1 + g.Intn(100)
		for k := 0; k < n; k++ {
			coo.Add(g.Intn(20), g.Intn(20), 1)
		}
		m := coo.ToCSR()
		return m.Transpose().NNZ() == m.NNZ() && m.Transpose().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestToCSRSteadyStateAllocs pins the counted two-pass build allocation-free
// beyond its outputs: once the pooled row-cursor and sort-key arenas are
// warm, a build costs exactly the CSR struct, RowPtr, ColIdx, and Vals plus
// the two pool-return headers — never per-row or per-entry scratch.
func TestToCSRSteadyStateAllocs(t *testing.T) {
	g := lcg.New(11)
	c := NewCOO(64, 64)
	for k := 0; k < 600; k++ {
		c.Add(g.Intn(64), g.Intn(64), g.Uniform())
	}
	c.ToCSR() // warm the pooled arenas
	avg := testing.AllocsPerRun(200, func() { c.ToCSR() })
	if avg > 6 {
		t.Fatalf("ToCSR steady state allocates %.1f objects per build, want ≤ 6 (outputs only)", avg)
	}
}

// TestToMBSRSteadyStateAllocs is the same contract for the blocked format:
// the stamp/slot/column arenas are pooled, so a warm build is the MBSR
// struct, RowPtr, and the single exact Blocks slab plus pool-return headers.
// The map-of-heap-blocks builder this replaced allocated per block row.
func TestToMBSRSteadyStateAllocs(t *testing.T) {
	g := lcg.New(13)
	c := NewCOO(96, 96)
	for k := 0; k < 900; k++ {
		c.Add(g.Intn(96), g.Intn(96), g.Uniform())
	}
	m := c.ToCSR()
	ToMBSR(m) // warm the pooled arenas
	avg := testing.AllocsPerRun(200, func() { ToMBSR(m) })
	if avg > 6 {
		t.Fatalf("ToMBSR steady state allocates %.1f objects per build, want ≤ 6 (outputs only)", avg)
	}
}
