package sparse

// BlockSize is the mBSR block edge: AmgT partitions sparse matrices into
// 4×4 dense blocks and pairs vertically adjacent blocks into the 8×4 A
// operand of the FP64 m8n8k4 MMA.
const BlockSize = 4

// MBSRBlock is one dense 4×4 block with its block-column coordinate.
type MBSRBlock struct {
	BlockCol int32
	Vals     [BlockSize * BlockSize]float64 // row-major
}

// MBSR is the modified block-sparse-row format of AmgT: block rows of dense
// 4×4 blocks, compressed like CSR at block granularity.
type MBSR struct {
	Rows, Cols           int // element dimensions
	BlockRows, BlockCols int
	RowPtr               []int // length BlockRows+1, indexes Blocks
	Blocks               []MBSRBlock
}

// ToMBSR converts a CSR matrix into mBSR with 4×4 blocks. Zero-padding is
// introduced for elements outside the matrix or absent from the pattern —
// the data-structure change Key Observation 1 describes.
func ToMBSR(m *CSR) *MBSR {
	br := (m.Rows + BlockSize - 1) / BlockSize
	bc := (m.Cols + BlockSize - 1) / BlockSize
	out := &MBSR{
		Rows: m.Rows, Cols: m.Cols,
		BlockRows: br, BlockCols: bc,
		RowPtr: make([]int, br+1),
	}
	for i := 0; i < br; i++ {
		// Gather the set of block columns touched by the 4 element rows.
		touched := map[int32]*MBSRBlock{}
		var order []int32
		for di := 0; di < BlockSize; di++ {
			r := i*BlockSize + di
			if r >= m.Rows {
				break
			}
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				j := m.ColIdx[k]
				b := j / BlockSize
				blk, ok := touched[b]
				if !ok {
					blk = &MBSRBlock{BlockCol: b}
					touched[b] = blk
					order = append(order, b)
				}
				blk.Vals[di*BlockSize+int(j%BlockSize)] = m.Vals[k]
			}
		}
		// Keep block columns sorted for deterministic iteration.
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && order[b] < order[b-1]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		for _, b := range order {
			out.Blocks = append(out.Blocks, *touched[b])
		}
		out.RowPtr[i+1] = len(out.Blocks)
	}
	return out
}

// BlockNNZ returns the number of stored 4×4 blocks.
func (m *MBSR) BlockNNZ() int { return len(m.Blocks) }

// FillRatio returns stored-nonzero density inside the stored blocks — the
// fraction of MMA input actually carrying payload (Observation 2's partial
// utilization measure for SpGEMM).
func (m *MBSR) FillRatio(nnz int) float64 {
	if len(m.Blocks) == 0 {
		return 0
	}
	return float64(nnz) / float64(len(m.Blocks)*BlockSize*BlockSize)
}

// ToCSR expands the mBSR matrix back to CSR (explicit zeros dropped).
func (m *MBSR) ToCSR() *CSR {
	coo := NewCOO(m.Rows, m.Cols)
	for i := 0; i < m.BlockRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			b := &m.Blocks[p]
			for di := 0; di < BlockSize; di++ {
				for dj := 0; dj < BlockSize; dj++ {
					v := b.Vals[di*BlockSize+dj]
					if v == 0 {
						continue
					}
					r := i*BlockSize + di
					c := int(b.BlockCol)*BlockSize + dj
					if r < m.Rows && c < m.Cols {
						coo.Add(r, c, v)
					}
				}
			}
		}
	}
	return coo.ToCSR()
}
