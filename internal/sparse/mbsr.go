package sparse

import (
	"slices"

	"repro/internal/par"
)

// BlockSize is the mBSR block edge: AmgT partitions sparse matrices into
// 4×4 dense blocks and pairs vertically adjacent blocks into the 8×4 A
// operand of the FP64 m8n8k4 MMA.
const BlockSize = 4

// MBSRBlock is one dense 4×4 block with its block-column coordinate.
type MBSRBlock struct {
	BlockCol int32
	Vals     [BlockSize * BlockSize]float64 // row-major
}

// MBSR is the modified block-sparse-row format of AmgT: block rows of dense
// 4×4 blocks, compressed like CSR at block granularity.
type MBSR struct {
	Rows, Cols           int // element dimensions
	BlockRows, BlockCols int
	RowPtr               []int // length BlockRows+1, indexes Blocks
	Blocks               []MBSRBlock
}

// Pooled arenas for the counted two-pass ToMBSR: a block-column stamp
// directory, the block-col → output-slot map, and the per-block-row
// distinct-column list.
var (
	mbsrStampScratch = par.NewTypedScratch[int32]()
	mbsrSlotScratch  = par.NewTypedScratch[int32]()
	mbsrColsScratch  = par.NewTypedScratch[int32]()
)

// ToMBSR converts a CSR matrix into mBSR with 4×4 blocks. Zero-padding is
// introduced for elements outside the matrix or absent from the pattern —
// the data-structure change Key Observation 1 describes.
//
// The build is a counted two-pass: pass 1 counts distinct block columns per
// block row against a pooled stamp directory (stamp i+1 for block row i),
// sizing RowPtr and one exact Blocks allocation; pass 2 re-discovers each
// row's columns under a fresh stamp (-(i+1), so the passes never collide),
// sorts them, and scatters values straight into the assigned slots. The
// map-of-heap-blocks version this replaces allocated a map, a block, and
// repeated slice growth per block row — ~37k objects per Mycielskian build.
func ToMBSR(m *CSR) *MBSR {
	br := (m.Rows + BlockSize - 1) / BlockSize
	bc := (m.Cols + BlockSize - 1) / BlockSize
	out := &MBSR{
		Rows: m.Rows, Cols: m.Cols,
		BlockRows: br, BlockCols: bc,
		RowPtr: make([]int, br+1),
	}
	stamp := mbsrStampScratch.Get(bc)
	defer mbsrStampScratch.Put(stamp)
	clear(stamp)
	// Pass 1: count distinct block columns per block row.
	total := 0
	for i := 0; i < br; i++ {
		g := int32(i + 1)
		for di := 0; di < BlockSize; di++ {
			r := i*BlockSize + di
			if r >= m.Rows {
				break
			}
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				b := m.ColIdx[k] / BlockSize
				if stamp[b] != g {
					stamp[b] = g
					total++
				}
			}
		}
		out.RowPtr[i+1] = total
	}
	// Pass 2: fill the exactly-sized block slab (fresh allocation, so block
	// values start zeroed).
	out.Blocks = make([]MBSRBlock, total)
	slot := mbsrSlotScratch.Get(bc)
	defer mbsrSlotScratch.Put(slot)
	cols := mbsrColsScratch.Get(bc)
	defer mbsrColsScratch.Put(cols)
	for i := 0; i < br; i++ {
		g := int32(-(i + 1))
		base := out.RowPtr[i]
		n := 0
		for di := 0; di < BlockSize; di++ {
			r := i*BlockSize + di
			if r >= m.Rows {
				break
			}
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				b := m.ColIdx[k] / BlockSize
				if stamp[b] != g {
					stamp[b] = g
					cols[n] = b
					n++
				}
			}
		}
		// Keep block columns sorted for deterministic iteration.
		seg := cols[:n]
		slices.Sort(seg)
		for idx, b := range seg {
			out.Blocks[base+idx].BlockCol = b
			slot[b] = int32(idx)
		}
		for di := 0; di < BlockSize; di++ {
			r := i*BlockSize + di
			if r >= m.Rows {
				break
			}
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				j := m.ColIdx[k]
				b := j / BlockSize
				out.Blocks[base+int(slot[b])].Vals[di*BlockSize+int(j%BlockSize)] = m.Vals[k]
			}
		}
	}
	return out
}

// BlockNNZ returns the number of stored 4×4 blocks.
func (m *MBSR) BlockNNZ() int { return len(m.Blocks) }

// FillRatio returns stored-nonzero density inside the stored blocks — the
// fraction of MMA input actually carrying payload (Observation 2's partial
// utilization measure for SpGEMM).
func (m *MBSR) FillRatio(nnz int) float64 {
	if len(m.Blocks) == 0 {
		return 0
	}
	return float64(nnz) / float64(len(m.Blocks)*BlockSize*BlockSize)
}

// ToCSR expands the mBSR matrix back to CSR (explicit zeros dropped).
func (m *MBSR) ToCSR() *CSR {
	coo := NewCOO(m.Rows, m.Cols)
	for i := 0; i < m.BlockRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			b := &m.Blocks[p]
			for di := 0; di < BlockSize; di++ {
				for dj := 0; dj < BlockSize; dj++ {
					v := b.Vals[di*BlockSize+dj]
					if v == 0 {
						continue
					}
					r := i*BlockSize + di
					c := int(b.BlockCol)*BlockSize + dj
					if r < m.Rows && c < m.Cols {
						coo.Add(r, c, v)
					}
				}
			}
		}
	}
	return coo.ToCSR()
}
