package sparse

import (
	"math"
	"testing"
)

func TestTable4Metadata(t *testing.T) {
	ds := Table4()
	if len(ds) != 5 {
		t.Fatalf("Table 4 has %d entries, want 5", len(ds))
	}
	want := map[string][2]int{
		"spmsrts":        {29995, 229947},
		"Chevron1":       {37365, 330633},
		"raefsky3":       {21200, 1488768},
		"conf5_4-8x8-10": {49152, 1916928},
		"bcsstk39":       {46772, 2089294},
	}
	for _, d := range ds {
		w, ok := want[d.Name]
		if !ok {
			t.Errorf("unexpected matrix %q", d.Name)
			continue
		}
		if d.Rows != w[0] || d.Nonzeros != w[1] {
			t.Errorf("%s: %d rows / %d nnz, want %d / %d",
				d.Name, d.Rows, d.Nonzeros, w[0], w[1])
		}
	}
}

func TestSynthesizeMatchesPublishedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 4 synthesis in -short mode")
	}
	for _, d := range Table4() {
		m, err := Synthesize(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if m.Rows != d.Rows {
			t.Errorf("%s: %d rows, want exactly %d", d.Name, m.Rows, d.Rows)
		}
		rel := math.Abs(float64(m.NNZ()-d.Nonzeros)) / float64(d.Nonzeros)
		if rel > 0.30 {
			t.Errorf("%s: %d nnz, want within 30%% of %d (off by %.0f%%)",
				d.Name, m.NNZ(), d.Nonzeros, rel*100)
		}
	}
}

func TestSynthesizeQCDExact(t *testing.T) {
	if testing.Short() {
		t.Skip("QCD synthesis in -short mode")
	}
	m, err := Synthesize("conf5_4-8x8-10")
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1916928 {
		t.Fatalf("QCD nnz = %d, want exactly 1916928", m.NNZ())
	}
	for i := 0; i < m.Rows; i += 1000 {
		if m.RowNNZ(i) != 39 {
			t.Fatalf("QCD row %d has %d nnz, want 39", i, m.RowNNZ(i))
		}
	}
}

func TestSynthesizeUnknown(t *testing.T) {
	if _, err := Synthesize("nope"); err == nil {
		t.Fatal("expected error for unknown matrix")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, _ := Synthesize("spmsrts")
	b, _ := Synthesize("spmsrts")
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic synthesis")
	}
	for k := 0; k < a.NNZ(); k += 997 {
		if a.Vals[k] != b.Vals[k] || a.ColIdx[k] != b.ColIdx[k] {
			t.Fatal("nondeterministic values")
		}
	}
}

func TestExtractFeatures(t *testing.T) {
	m := randomCSR(t, 500, 500, 5000, 41)
	f := ExtractFeatures(m)
	if math.Abs(f.AvgRowDegree-float64(m.NNZ())/500) > 1e-12 {
		t.Errorf("avg degree = %v", f.AvgRowDegree)
	}
	if f.LogRows < 2.69 || f.LogRows > 2.71 {
		t.Errorf("logRows = %v, want ≈2.7", f.LogRows)
	}
	if f.RowDegreeCV < 0 {
		t.Error("negative CV")
	}
	if f.MaxAvgRatio < 1 {
		t.Errorf("max/avg ratio %v < 1", f.MaxAvgRatio)
	}
	if f.BandFraction < 0 || f.BandFraction > 1 {
		t.Errorf("band fraction %v out of [0,1]", f.BandFraction)
	}
	if f.BlockFill <= 0 || f.BlockFill > 1 {
		t.Errorf("block fill %v out of (0,1]", f.BlockFill)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("Vector / FeatureNames length mismatch")
	}
}

func TestFeatureContrast(t *testing.T) {
	// A banded matrix must show a much smaller band fraction than a random
	// one, and a block matrix a higher block fill than a scattered one.
	g := bandedForTest(t)
	r := randomCSR(t, 1000, 1000, 8000, 7)
	fb, fr := ExtractFeatures(g), ExtractFeatures(r)
	if fb.BandFraction >= fr.BandFraction/4 {
		t.Errorf("banded band fraction %v not ≪ random %v", fb.BandFraction, fr.BandFraction)
	}
}

func bandedForTest(t *testing.T) *CSR {
	t.Helper()
	coo := NewCOO(1000, 1000)
	for i := 0; i < 1000; i++ {
		for j := i - 2; j <= i+2; j++ {
			if j >= 0 && j < 1000 {
				coo.Add(i, j, 1)
			}
		}
	}
	return coo.ToCSR()
}

func TestCorpus(t *testing.T) {
	c := Corpus(12, 1)
	if len(c) != 12 {
		t.Fatalf("corpus size %d, want 12", len(c))
	}
	for i, m := range c {
		if err := m.Validate(); err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
		if m.NNZ() == 0 {
			t.Fatalf("corpus[%d] empty", i)
		}
	}
}

func TestCorpusDiversity(t *testing.T) {
	c := Corpus(8, 2)
	// Band fractions should differ across classes.
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, m := range c {
		f := ExtractFeatures(m)
		if f.BandFraction < min {
			min = f.BandFraction
		}
		if f.BandFraction > max {
			max = f.BandFraction
		}
	}
	if max < 4*min {
		t.Errorf("corpus band fractions too uniform: [%v, %v]", min, max)
	}
}
