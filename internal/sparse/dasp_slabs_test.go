package sparse

import "testing"

// mixedDASPCSR builds a matrix exercising all three DASP row categories:
// short (≤4 nnz), medium (≤64), and long (>64, lane-split) rows, with enough
// rows to produce multiple blocks per category.
func mixedDASPCSR(t *testing.T) *CSR {
	t.Helper()
	const rows, cols = 40, 150
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		var nnz int
		switch {
		case i%10 == 0:
			nnz = 100 // long
		case i%3 == 0:
			nnz = 20 // medium
		default:
			nnz = 1 + i%4 // short
		}
		for k := 0; k < nnz; k++ {
			j := (i*31 + k*7) % cols
			coo.Add(i, j, float64(i+1)+float64(k)*0.125)
		}
	}
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDASPPrestagedSlabs pins the prestaged operand slabs against the
// segment structure they were flattened from: SegOff is the exact cumulative
// segment count, MaxSegs the true maximum, APanels the row-major flatten of
// every segment's Vals, and BCols the transposed (B-tile layout) flatten of
// every segment's Cols.
func TestDASPPrestagedSlabs(t *testing.T) {
	d := ToDASP(mixedDASPCSR(t))
	if d.SegOff != nil || d.APanels != nil || d.BCols != nil {
		t.Fatal("ToDASP materialized slabs eagerly; they must be lazy (Prestage)")
	}
	d.Prestage()
	d.Prestage() // idempotent

	if len(d.SegOff) != len(d.Blocks)+1 {
		t.Fatalf("len(SegOff) = %d, want %d", len(d.SegOff), len(d.Blocks)+1)
	}
	total, maxSegs := 0, 0
	for bi := range d.Blocks {
		if int(d.SegOff[bi]) != total {
			t.Fatalf("SegOff[%d] = %d, want %d", bi, d.SegOff[bi], total)
		}
		s := len(d.Blocks[bi].Segments)
		total += s
		if s > maxSegs {
			maxSegs = s
		}
	}
	if int(d.SegOff[len(d.Blocks)]) != total {
		t.Fatalf("SegOff tail = %d, want %d", d.SegOff[len(d.Blocks)], total)
	}
	if d.MaxSegs != maxSegs {
		t.Fatalf("MaxSegs = %d, want %d", d.MaxSegs, maxSegs)
	}
	if len(d.APanels) != total*segFloats || len(d.BCols) != total*segFloats {
		t.Fatalf("slab sizes %d/%d, want %d", len(d.APanels), len(d.BCols), total*segFloats)
	}

	for bi := range d.Blocks {
		base := int(d.SegOff[bi]) * segFloats
		for si := range d.Blocks[bi].Segments {
			seg := &d.Blocks[bi].Segments[si]
			off := base + si*segFloats
			for l := 0; l < DASPRowsPerBlock; l++ {
				for k := 0; k < DASPSegWidth; k++ {
					if got := d.APanels[off+l*DASPSegWidth+k]; got != seg.Vals[l][k] {
						t.Fatalf("block %d seg %d: APanels[l=%d,k=%d] = %v, want %v",
							bi, si, l, k, got, seg.Vals[l][k])
					}
					if got := d.BCols[off+k*DASPRowsPerBlock+l]; got != seg.Cols[l][k] {
						t.Fatalf("block %d seg %d: BCols[k=%d,l=%d] = %d, want %d",
							bi, si, k, l, got, seg.Cols[l][k])
					}
				}
			}
		}
	}
}

// TestDASPSlabsCoverAllCategories guards the fixture itself: the slab test
// is only meaningful if short, medium, and long blocks are all present.
func TestDASPSlabsCoverAllCategories(t *testing.T) {
	d := ToDASP(mixedDASPCSR(t))
	seen := map[RowCategory]bool{}
	for _, blk := range d.Blocks {
		seen[blk.Category] = true
	}
	for _, cat := range []RowCategory{ShortRow, MediumRow, LongRow} {
		if !seen[cat] {
			t.Fatalf("fixture produced no category-%d block", cat)
		}
	}
}
