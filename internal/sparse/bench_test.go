package sparse

import "testing"

func BenchmarkToDASP(b *testing.B) {
	m, err := Synthesize("spmsrts")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ToDASP(m)
	}
}

func BenchmarkToMBSR(b *testing.B) {
	m, err := Synthesize("spmsrts")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ToMBSR(m)
	}
}

func BenchmarkSynthesizeQCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize("conf5_4-8x8-10"); err != nil {
			b.Fatal(err)
		}
	}
}
