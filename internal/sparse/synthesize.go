package sparse

import (
	"fmt"
	"math"

	"repro/internal/lcg"
)

// Dataset describes one Table 4 matrix: the published SuiteSparse metadata
// and the synthesis recipe that reproduces its structural class. The paper's
// inputs come from the SuiteSparse collection; this repo has no network or
// dataset access, so each instance is synthesized with matching row count,
// matching (or near-matching) nonzero count, and the structural character of
// its group (see DESIGN.md, substitutions table).
type Dataset struct {
	Name      string
	Group     string
	Rows      int // published row count (reproduced exactly)
	Nonzeros  int // published nonzero count (reproduced within tolerance)
	Class     string
	Symmetric bool
}

// Table4 lists the five SpMV/SpGEMM matrices of the paper's Table 4.
func Table4() []Dataset {
	return []Dataset{
		{Name: "spmsrts", Group: "GHS_indef", Rows: 29995, Nonzeros: 229947,
			Class: "banded-indefinite", Symmetric: true},
		{Name: "Chevron1", Group: "Chevron", Rows: 37365, Nonzeros: 330633,
			Class: "banded-seismic", Symmetric: false},
		{Name: "raefsky3", Group: "Simon", Rows: 21200, Nonzeros: 1488768,
			Class: "block-fluid", Symmetric: false},
		{Name: "conf5_4-8x8-10", Group: "QCD", Rows: 49152, Nonzeros: 1916928,
			Class: "lattice-qcd", Symmetric: false},
		{Name: "bcsstk39", Group: "Boeing", Rows: 46772, Nonzeros: 2089294,
			Class: "block-stiffness", Symmetric: true},
	}
}

// Synthesize materializes the named Table 4 matrix (deterministically).
func Synthesize(name string) (*CSR, error) {
	for _, d := range Table4() {
		if d.Name == name {
			return synthesizeClass(d, lcg.New(int64(len(d.Name))*7919+int64(d.Rows))), nil
		}
	}
	return nil, fmt.Errorf("sparse: unknown Table 4 matrix %q", name)
}

func synthesizeClass(d Dataset, g *lcg.Generator) *CSR {
	switch d.Class {
	case "banded-indefinite":
		// Narrow band, ~7.7 nnz/row, indefinite values (sign-mixed).
		return banded(d.Rows, 3, 0.96, true, g)
	case "banded-seismic":
		// Slightly wider band, ~8.9 nnz/row.
		return banded(d.Rows, 4, 0.93, false, g)
	case "block-fluid":
		// Dense 8×8 blocks along a block band: ~70 nnz/row.
		return blockBanded(d.Rows, 8, 9, g)
	case "lattice-qcd":
		// 4D periodic lattice of 16·16·8·8 = 16384 sites with 3 spin
		// degrees of freedom per site and 13 couplings (self + 8 axis
		// neighbors + 4 planar diagonals), each a dense 3×3 spin block:
		// exactly 13·3 = 39 nnz per row → 49152·39 = 1,916,928 nonzeros,
		// matching conf5_4-8x8-10 exactly — including the dense small-block
		// structure of Wilson-Dirac operators that blocked formats exploit.
		return latticeQCD([4]int{16, 16, 8, 8}, 3, g)
	case "block-stiffness":
		// 6×6 element blocks on a wider band: ~45 nnz/row, symmetric.
		return blockBanded(d.Rows, 6, 8, g)
	default:
		panic("sparse: unknown synthesis class " + d.Class)
	}
}

// banded generates a symmetric-pattern band matrix with half-bandwidth hb.
// Each in-band entry is kept with probability keep; mixedSign makes the
// matrix indefinite.
func banded(rows, hb int, keep float64, mixedSign bool, g *lcg.Generator) *CSR {
	coo := NewCOO(rows, rows)
	for i := 0; i < rows; i++ {
		for j := i - hb; j <= i+hb; j++ {
			if j < 0 || j >= rows {
				continue
			}
			if j != i && g.Uniform() > keep {
				continue
			}
			v := g.Symmetric()
			if !mixedSign && v < 0 {
				v = -v
			}
			if j == i {
				v += float64(2 * hb) // diagonal weight for realism
			}
			coo.Add(i, j, v)
		}
	}
	return coo.ToCSR()
}

// blockBanded generates a block-banded matrix of dense bs×bs blocks with
// blocksPerRow block-columns per block-row centered on the diagonal.
func blockBanded(rows, bs, blocksPerRow int, g *lcg.Generator) *CSR {
	coo := NewCOO(rows, rows)
	brows := (rows + bs - 1) / bs
	half := blocksPerRow / 2
	for bi := 0; bi < brows; bi++ {
		for bj := bi - half; bj <= bi+half; bj++ {
			if bj < 0 || bj >= brows {
				continue
			}
			for di := 0; di < bs; di++ {
				for dj := 0; dj < bs; dj++ {
					i, j := bi*bs+di, bj*bs+dj
					if i >= rows || j >= rows {
						continue
					}
					v := g.Symmetric()
					if i == j {
						v += float64(bs * blocksPerRow)
					}
					coo.Add(i, j, v)
				}
			}
		}
	}
	return coo.ToCSR()
}

// latticeQCD generates a Wilson-Dirac-style matrix: a 4D periodic lattice
// where each site carries dof spin components and couples to itself, its 8
// axis neighbors, and 4 planar diagonal neighbors with dense dof×dof spin
// blocks.
func latticeQCD(dims [4]int, dof int, g *lcg.Generator) *CSR {
	sites := dims[0] * dims[1] * dims[2] * dims[3]
	n := sites * dof
	idx := func(c [4]int) int {
		return ((c[0]*dims[1]+c[1])*dims[2]+c[2])*dims[3] + c[3]
	}
	offsets := [][4]int{
		{0, 0, 0, 0},
		{1, 0, 0, 0}, {-1, 0, 0, 0}, {0, 1, 0, 0}, {0, -1, 0, 0},
		{0, 0, 1, 0}, {0, 0, -1, 0}, {0, 0, 0, 1}, {0, 0, 0, -1},
		{1, 1, 0, 0}, {-1, -1, 0, 0}, {0, 0, 1, 1}, {0, 0, -1, -1},
	}
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	m.ColIdx = make([]int32, 0, n*len(offsets)*dof)
	m.Vals = make([]float64, 0, n*len(offsets)*dof)
	var c [4]int
	nbrs := make([]int32, 0, len(offsets))
	for c[0] = 0; c[0] < dims[0]; c[0]++ {
		for c[1] = 0; c[1] < dims[1]; c[1]++ {
			for c[2] = 0; c[2] < dims[2]; c[2]++ {
				for c[3] = 0; c[3] < dims[3]; c[3]++ {
					site := idx(c)
					nbrs = nbrs[:0]
					for _, o := range offsets {
						var nb [4]int
						for d := 0; d < 4; d++ {
							nb[d] = ((c[d]+o[d])%dims[d] + dims[d]) % dims[d]
						}
						nbrs = append(nbrs, int32(idx(nb)))
					}
					insertionSortInt32(nbrs)
					nbrs = dedupeSortedInt32(nbrs)
					for s := 0; s < dof; s++ {
						row := site*dof + s
						for _, nb := range nbrs {
							for ss := 0; ss < dof; ss++ {
								v := g.Symmetric()
								col := int(nb)*dof + ss
								if col == row {
									v += 8
								}
								m.ColIdx = append(m.ColIdx, int32(col))
								m.Vals = append(m.Vals, v)
							}
						}
						m.RowPtr[row+1] = len(m.ColIdx)
					}
				}
			}
		}
	}
	return m
}

// lattice4D generates a matrix on a 4D periodic lattice where each site
// couples to itself and to 38 fixed torus offsets (±eᵢ, ±2eᵢ with 3-spin
// structure folded in), giving exactly 39 nonzeros per row — the regular
// Wilson-Dirac structure of QCD matrices such as conf5_4-8x8-10.
func lattice4D(dims [4]int, g *lcg.Generator) *CSR {
	n := dims[0] * dims[1] * dims[2] * dims[3]
	idx := func(c [4]int) int {
		return ((c[0]*dims[1]+c[1])*dims[2]+c[2])*dims[3] + c[3]
	}
	// 38 distinct nonzero offsets + the diagonal = 39 per row.
	var offsets [][4]int
	for d := 0; d < 4; d++ {
		for _, s := range []int{1, -1, 2, -2} {
			var o [4]int
			o[d] = s
			offsets = append(offsets, o)
		}
	}
	// 16 so far; add the 22 nearest diagonal couplings (pairs of axes).
	for a := 0; a < 4 && len(offsets) < 38; a++ {
		for b := a + 1; b < 4 && len(offsets) < 38; b++ {
			for _, sa := range []int{1, -1} {
				for _, sb := range []int{1, -1} {
					if len(offsets) == 38 {
						break
					}
					var o [4]int
					o[a], o[b] = sa, sb
					offsets = append(offsets, o)
				}
			}
		}
	}
	// Still short? extend with ±3 axis offsets.
	for d := 0; len(offsets) < 38; d++ {
		var o [4]int
		o[d%4] = 3 * (1 - 2*(d/4))
		offsets = append(offsets, o)
	}

	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	m.ColIdx = make([]int32, 0, n*39)
	m.Vals = make([]float64, 0, n*39)
	var c [4]int
	for c[0] = 0; c[0] < dims[0]; c[0]++ {
		for c[1] = 0; c[1] < dims[1]; c[1]++ {
			for c[2] = 0; c[2] < dims[2]; c[2]++ {
				for c[3] = 0; c[3] < dims[3]; c[3]++ {
					i := idx(c)
					cols := make([]int32, 0, 39)
					cols = append(cols, int32(i))
					for _, o := range offsets {
						var nb [4]int
						for d := 0; d < 4; d++ {
							nb[d] = ((c[d]+o[d])%dims[d] + dims[d]) % dims[d]
						}
						cols = append(cols, int32(idx(nb)))
					}
					// On small lattices distinct offsets can wrap onto the
					// same site, so sort and dedupe for CSR validity. The
					// Table 4 instance (16×16×16×12) never collides and
					// keeps exactly 39 nonzeros per row.
					insertionSortInt32(cols)
					cols = dedupeSortedInt32(cols)
					for _, j := range cols {
						v := g.Symmetric()
						if int(j) == i {
							v += 8
						}
						m.ColIdx = append(m.ColIdx, j)
						m.Vals = append(m.Vals, v)
					}
					m.RowPtr[i+1] = len(m.ColIdx)
				}
			}
		}
	}
	// RowPtr was filled in lattice order, which is already ascending row
	// order because idx enumerates rows in sequence.
	return m
}

func dedupeSortedInt32(a []int32) []int32 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Features is the structural feature vector used for the Figure 10b PCA
// coverage analysis: the paper standardizes sparsity, row/column degree
// statistics and block structure before projecting.
type Features struct {
	LogRows      float64
	LogNNZ       float64
	AvgRowDegree float64
	RowDegreeCV  float64 // coefficient of variation of row degrees
	MaxAvgRatio  float64 // max degree / average degree
	BandFraction float64 // mean normalized |i-j| distance of nonzeros
	BlockFill    float64 // density inside touched 4×4 blocks
}

// ExtractFeatures computes the Figure 10b feature vector for a matrix.
func ExtractFeatures(m *CSR) Features {
	n := float64(m.Rows)
	nnz := float64(m.NNZ())
	var f Features
	f.LogRows = log10(n)
	f.LogNNZ = log10(nnz)
	f.AvgRowDegree = nnz / n

	var sumSq, maxDeg float64
	for i := 0; i < m.Rows; i++ {
		d := float64(m.RowNNZ(i))
		sumSq += d * d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := f.AvgRowDegree
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		f.RowDegreeCV = math.Sqrt(variance) / mean
		f.MaxAvgRatio = maxDeg / mean
	}

	var distSum float64
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d := float64(int(m.ColIdx[k]) - i)
			if d < 0 {
				d = -d
			}
			distSum += d
		}
	}
	if nnz > 0 && n > 1 {
		f.BandFraction = distSum / nnz / (n - 1)
	}
	f.BlockFill = ToMBSR(m).FillRatio(m.NNZ())
	return f
}

// Vector flattens the features in a fixed order for PCA.
func (f Features) Vector() []float64 {
	return []float64{f.LogRows, f.LogNNZ, f.AvgRowDegree, f.RowDegreeCV,
		f.MaxAvgRatio, f.BandFraction, f.BlockFill}
}

// FeatureNames labels the Vector components.
func FeatureNames() []string {
	return []string{"logRows", "logNNZ", "avgDeg", "degCV", "maxAvg", "band", "blockFill"}
}

// Corpus generates n synthetic matrices spanning the structural classes
// above (banded, block, lattice, scale-free rows) across a log-uniform size
// range, standing in for the 2893-matrix SuiteSparse sweep of Figure 10b.
func Corpus(n int, seed int64) []*CSR {
	g := lcg.New(seed)
	out := make([]*CSR, 0, n)
	for i := 0; i < n; i++ {
		// Log-uniform rows in [256, 64Ki], mirroring the collection's
		// size spread so the Table 4 instances land inside the cloud.
		rows := 256 << g.Intn(9)
		rows += g.Intn(rows)
		// Composition mirrors the SuiteSparse collection: mostly banded
		// and blocked FEM-style matrices, some lattices, a tail of
		// scattered (power-law) patterns.
		switch i % 8 {
		case 0, 1, 2:
			out = append(out, banded(rows, 1+g.Intn(6), 0.6+0.4*g.Uniform(), i%6 == 0, g))
		case 3, 4, 5:
			bs := 2 + g.Intn(7)
			out = append(out, blockBanded(rows, bs, 3+g.Intn(7), g))
		case 6:
			d := 4 + g.Intn(13)
			out = append(out, lattice4D([4]int{d, d, d, 2 + g.Intn(5)}, g))
		default:
			out = append(out, powerLawRows(min(rows, 16384), 2+g.Intn(12), g))
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// powerLawRows generates a matrix whose row degrees follow a heavy-tailed
// distribution (scale-free-like), the structure of web/social matrices.
func powerLawRows(rows, avgDeg int, g *lcg.Generator) *CSR {
	coo := NewCOO(rows, rows)
	for i := 0; i < rows; i++ {
		// Pareto-ish degree: avg/u with a cap.
		deg := int(float64(avgDeg) * 0.5 / (0.02 + 0.98*g.Uniform()))
		if deg > rows/2 {
			deg = rows / 2
		}
		if deg < 1 {
			deg = 1
		}
		seen := map[int]bool{i: true}
		coo.Add(i, i, g.Symmetric()+4)
		for len(seen) <= deg {
			j := g.Intn(rows)
			if !seen[j] {
				seen[j] = true
				coo.Add(i, j, g.Symmetric())
			}
		}
	}
	return coo.ToCSR()
}

func log10(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log10(x)
}
