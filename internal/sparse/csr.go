// Package sparse provides the sparse-matrix formats the Cubie kernels use —
// CSR, COO, the mBSR blocked format of AmgT SpGEMM, and the DASP row-grouping
// layout — together with synthetic generators that reproduce the structural
// classes of the SuiteSparse matrices in the paper's Table 4.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row FP64 matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // length Rows+1
	ColIdx     []int32   // length NNZ, ascending within each row
	Vals       []float64 // length NNZ
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of nonzeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Validate checks structural invariants: monotone row pointers, in-range and
// sorted column indices.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.ColIdx) {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d, want 0..%d",
			m.RowPtr[0], m.RowPtr[m.Rows], len(m.ColIdx))
	}
	if len(m.Vals) != len(m.ColIdx) {
		return fmt.Errorf("sparse: %d values for %d indices", len(m.Vals), len(m.ColIdx))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := int(m.ColIdx[k])
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: row %d col %d out of range", i, c)
			}
			if k > m.RowPtr[i] && m.ColIdx[k] <= m.ColIdx[k-1] {
				return fmt.Errorf("sparse: row %d columns not strictly ascending", i)
			}
		}
	}
	return nil
}

// At returns element (i, j), or 0 if it is not stored.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.Search(hi-lo, func(k int) bool { return m.ColIdx[lo+k] >= int32(j) })
	if k < hi && m.ColIdx[k] == int32(j) {
		return m.Vals[k]
	}
	return 0
}

// COO is a coordinate-format builder for sparse matrices.
type COO struct {
	Rows, Cols int
	I, J       []int32
	V          []float64
}

// NewCOO returns an empty builder for a Rows×Cols matrix.
func NewCOO(rows, cols int) *COO { return &COO{Rows: rows, Cols: cols} }

// Add appends entry (i, j, v). Duplicate coordinates are summed by ToCSR.
func (c *COO) Add(i, j int, v float64) {
	c.I = append(c.I, int32(i))
	c.J = append(c.J, int32(j))
	c.V = append(c.V, v)
}

// ToCSR converts to CSR, sorting entries and summing duplicates.
func (c *COO) ToCSR() *CSR {
	type key struct{ i, j int32 }
	// Sort by (row, col) via index permutation.
	perm := make([]int, len(c.I))
	for k := range perm {
		perm[k] = k
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		if c.I[ka] != c.I[kb] {
			return c.I[ka] < c.I[kb]
		}
		return c.J[ka] < c.J[kb]
	})
	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	var last key
	first := true
	for _, k := range perm {
		cur := key{c.I[k], c.J[k]}
		if !first && cur == last {
			m.Vals[len(m.Vals)-1] += c.V[k]
			continue
		}
		first, last = false, cur
		m.ColIdx = append(m.ColIdx, c.J[k])
		m.Vals = append(m.Vals, c.V[k])
		m.RowPtr[cur.i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// Transpose returns mᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	t.ColIdx = make([]int32, m.NNZ())
	t.Vals = make([]float64, m.NNZ())
	next := append([]int(nil), t.RowPtr[:t.Rows]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			next[j]++
			t.ColIdx[p] = int32(i)
			t.Vals[p] = m.Vals[k]
		}
	}
	return t
}
