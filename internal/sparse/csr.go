// Package sparse provides the sparse-matrix formats the Cubie kernels use —
// CSR, COO, the mBSR blocked format of AmgT SpGEMM, and the DASP row-grouping
// layout — together with synthetic generators that reproduce the structural
// classes of the SuiteSparse matrices in the paper's Table 4.
package sparse

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/par"
)

// CSR is a compressed-sparse-row FP64 matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // length Rows+1
	ColIdx     []int32   // length NNZ, ascending within each row
	Vals       []float64 // length NNZ
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of nonzeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Validate checks structural invariants: monotone row pointers, in-range and
// sorted column indices.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.ColIdx) {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d, want 0..%d",
			m.RowPtr[0], m.RowPtr[m.Rows], len(m.ColIdx))
	}
	if len(m.Vals) != len(m.ColIdx) {
		return fmt.Errorf("sparse: %d values for %d indices", len(m.Vals), len(m.ColIdx))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := int(m.ColIdx[k])
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: row %d col %d out of range", i, c)
			}
			if k > m.RowPtr[i] && m.ColIdx[k] <= m.ColIdx[k-1] {
				return fmt.Errorf("sparse: row %d columns not strictly ascending", i)
			}
		}
	}
	return nil
}

// At returns element (i, j), or 0 if it is not stored.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.Search(hi-lo, func(k int) bool { return m.ColIdx[lo+k] >= int32(j) })
	if k < hi && m.ColIdx[k] == int32(j) {
		return m.Vals[k]
	}
	return 0
}

// COO is a coordinate-format builder for sparse matrices.
type COO struct {
	Rows, Cols int
	I, J       []int32
	V          []float64
}

// NewCOO returns an empty builder for a Rows×Cols matrix.
func NewCOO(rows, cols int) *COO { return &COO{Rows: rows, Cols: cols} }

// Add appends entry (i, j, v). Duplicate coordinates are summed by ToCSR.
func (c *COO) Add(i, j int, v float64) {
	c.I = append(c.I, int32(i))
	c.J = append(c.J, int32(j))
	c.V = append(c.V, v)
}

// Pooled arenas for the counted two-pass ToCSR: the row-bucket cursor
// directory and the per-row (col, insertion-index) sort keys.
var (
	csrRowScratch = par.NewTypedScratch[int]()
	csrKeyScratch = par.NewTypedScratch[uint64]()
)

// ToCSR converts to CSR, sorting entries and summing duplicates. It is a
// counted two-pass build: entries are bucketed by row with a counting pass,
// scattered as (col, insertion-index) keys into a pooled slab, and each row
// segment is sorted and deduplicated straight into exactly-sized output
// slices — three output allocations total, where the append-as-you-go
// version paid a permutation sort plus O(log NNZ) slice regrowths per
// build. Encoding the insertion index in the low key bits keeps the sort
// stable, so duplicate coordinates sum in Add order deterministically.
func (c *COO) ToCSR() *CSR {
	nnz := len(c.I)
	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	if nnz == 0 {
		return m
	}
	// Pass 1: count entries per row, then turn counts into segment cursors.
	next := csrRowScratch.Get(c.Rows)
	defer csrRowScratch.Put(next)
	clear(next)
	for _, i := range c.I {
		next[i]++
	}
	sum := 0
	for i := range next {
		n := next[i]
		next[i] = sum
		sum += n
	}
	// Pass 2: scatter keys row-bucketed; next[i] ends as row i's segment end.
	keys := csrKeyScratch.Get(nnz)
	defer csrKeyScratch.Put(keys)
	for k := 0; k < nnz; k++ {
		i := c.I[k]
		keys[next[i]] = uint64(uint32(c.J[k]))<<32 | uint64(uint32(k))
		next[i]++
	}
	colIdx := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	start := 0
	for i := 0; i < c.Rows; i++ {
		end := next[i]
		seg := keys[start:end]
		slices.Sort(seg)
		prev := int32(-1)
		for _, kk := range seg {
			j := int32(kk >> 32)
			v := c.V[uint32(kk)]
			if j == prev {
				vals[len(vals)-1] += v
				continue
			}
			prev = j
			colIdx = append(colIdx, j)
			vals = append(vals, v)
		}
		m.RowPtr[i+1] = len(colIdx)
		start = end
	}
	m.ColIdx, m.Vals = colIdx, vals
	return m
}

// Transpose returns mᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	t.ColIdx = make([]int32, m.NNZ())
	t.Vals = make([]float64, m.NNZ())
	next := append([]int(nil), t.RowPtr[:t.Rows]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			next[j]++
			t.ColIdx[p] = int32(i)
			t.Vals[p] = m.Vals[k]
		}
	}
	return t
}
