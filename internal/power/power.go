// Package power reproduces the paper's power-measurement methodology
// (Section 7): a monitor samples board power over the wall-clock window of a
// repeated-kernel measurement loop (the paper uses nvmlDeviceGetPowerUsage
// at fixed cadence), integrates the trace into energy, and computes the
// energy-delay product EDP = AveragePower × ExecutionTime².
package power

import (
	"math"

	"repro/internal/device"
	"repro/internal/sim"
)

// SampleIntervalS is the monitor's sampling cadence (10 ms, the NVML-class
// polling rate the paper's monitoring process uses).
const SampleIntervalS = 0.010

// Sample is one point of a power trace.
type Sample struct {
	TimeS float64 // seconds since kernel launch
	Watts float64
}

// Trace is a sampled power-over-time curve for one measurement loop, the
// unit plotted in Figure 8.
type Trace struct {
	Workload string
	Variant  string
	Device   string
	Samples  []Sample
	// TotalTimeS is the wall-clock length of the measurement loop.
	TotalTimeS float64
}

// rampTimeS models how long the GPU takes to ramp from idle power to the
// kernel's steady-state draw (clock boost + thermal response).
const rampTimeS = 0.35

// Record produces the power trace of executing the kernel described by
// report r on device s `repeats` times back-to-back — the repeated-loop
// methodology Figure 8 uses to capture stable power values. The trace ramps
// exponentially from idle to the kernel's steady-state power and holds there
// (with a small deterministic sampling ripple) until the loop finishes.
func Record(s device.Spec, r sim.Report, repeats int) Trace {
	if repeats < 1 {
		repeats = 1
	}
	total := r.Time * float64(repeats)
	steady := r.AvgPower
	n := int(total/SampleIntervalS) + 1
	const maxSamples = 20000
	step := SampleIntervalS
	if n > maxSamples {
		n = maxSamples
		step = total / float64(n)
	}
	tr := Trace{Device: s.Name, TotalTimeS: total, Samples: make([]Sample, 0, n+1)}
	for i := 0; i <= n; i++ {
		t := float64(i) * step
		if t > total {
			t = total
		}
		// First-order ramp from idle to steady.
		p := steady - (steady-s.IdleWatts)*math.Exp(-t/rampTimeS*3)
		// Deterministic ±1.5 % ripple so traces look like sampled telemetry
		// while remaining exactly reproducible.
		p *= 1 + 0.015*math.Sin(2*math.Pi*t/0.9)
		if p > s.TDPWatts {
			p = s.TDPWatts
		}
		tr.Samples = append(tr.Samples, Sample{TimeS: t, Watts: p})
	}
	return tr
}

// Energy integrates the trace (trapezoidal rule) into joules.
func (t Trace) Energy() float64 {
	var e float64
	for i := 1; i < len(t.Samples); i++ {
		dt := t.Samples[i].TimeS - t.Samples[i-1].TimeS
		e += dt * (t.Samples[i].Watts + t.Samples[i-1].Watts) / 2
	}
	return e
}

// AveragePower returns the time-averaged power of the trace in watts.
func (t Trace) AveragePower() float64 {
	if t.TotalTimeS == 0 {
		return 0
	}
	return t.Energy() / t.TotalTimeS
}

// PeakPower returns the maximum sampled power.
func (t Trace) PeakPower() float64 {
	var p float64
	for _, s := range t.Samples {
		if s.Watts > p {
			p = s.Watts
		}
	}
	return p
}

// EDP returns the energy-delay product of the trace:
// AveragePower × TotalTime² (J·s), the Figure 7 metric.
func (t Trace) EDP() float64 {
	return t.AveragePower() * t.TotalTimeS * t.TotalTimeS
}

// Geomean returns the geometric mean of positive values, the aggregation
// Figure 7 applies within each quadrant. It returns 0 for an empty input.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}
