package power

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

func steadyReport(t *testing.T) sim.Report {
	t.Helper()
	return sim.Run(device.H200(), sim.Profile{
		TensorFLOPs: 5e12,
		DRAMBytes:   5e10,
		Launches:    1,
		Eff:         sim.Efficiency{Tensor: 0.7, DRAM: 0.7},
	})
}

func TestRecordBasics(t *testing.T) {
	s := device.H200()
	r := steadyReport(t)
	tr := Record(s, r, 10000)
	if tr.TotalTimeS <= 0 || len(tr.Samples) < 10 {
		t.Fatalf("trace too short: %v s, %d samples", tr.TotalTimeS, len(tr.Samples))
	}
	if tr.Samples[0].TimeS != 0 {
		t.Error("trace should start at t=0")
	}
	last := tr.Samples[len(tr.Samples)-1]
	if math.Abs(last.TimeS-tr.TotalTimeS) > 1e-9 {
		t.Errorf("last sample at %v, total %v", last.TimeS, tr.TotalTimeS)
	}
}

func TestRampFromIdle(t *testing.T) {
	s := device.H200()
	r := steadyReport(t)
	tr := Record(s, r, 100000)
	first := tr.Samples[0].Watts
	if math.Abs(first-s.IdleWatts) > s.IdleWatts*0.05 {
		t.Errorf("trace starts at %v W, want ≈ idle %v W", first, s.IdleWatts)
	}
	// Steady state approaches the report's average power within the ripple.
	mid := tr.Samples[len(tr.Samples)/2].Watts
	if math.Abs(mid-r.AvgPower) > r.AvgPower*0.05 {
		t.Errorf("steady power %v, want ≈ %v", mid, r.AvgPower)
	}
}

func TestPowerNeverExceedsTDP(t *testing.T) {
	for _, s := range device.All() {
		rep := sim.Run(s, sim.Profile{
			TensorFLOPs: 1e13, VectorFLOPs: 1e13, DRAMBytes: 1e12,
			L1Bytes: 1e13, Launches: 1,
			Eff: sim.Efficiency{Tensor: 1, Vector: 1, DRAM: 1, L1: 1},
		})
		tr := Record(s, rep, 50000)
		if tr.PeakPower() > s.TDPWatts {
			t.Errorf("%s: peak %v exceeds TDP %v", s.Name, tr.PeakPower(), s.TDPWatts)
		}
	}
}

func TestEnergyAndAverageConsistent(t *testing.T) {
	s := device.H200()
	tr := Record(s, steadyReport(t), 50000)
	e := tr.Energy()
	avg := tr.AveragePower()
	if math.Abs(e-avg*tr.TotalTimeS) > 1e-9*e {
		t.Error("Energy != AvgPower × time")
	}
	if avg < s.IdleWatts*0.9 || avg > s.TDPWatts {
		t.Errorf("average power %v implausible", avg)
	}
}

func TestEDPDefinition(t *testing.T) {
	tr := Record(device.H200(), steadyReport(t), 20000)
	want := tr.AveragePower() * tr.TotalTimeS * tr.TotalTimeS
	if math.Abs(tr.EDP()-want) > 1e-9*want {
		t.Errorf("EDP %v != %v", tr.EDP(), want)
	}
}

func TestRecordDeterministic(t *testing.T) {
	s := device.A100()
	r := sim.Run(s, sim.Profile{VectorFLOPs: 1e12, DRAMBytes: 1e11, Launches: 1})
	a := Record(s, r, 1000)
	b := Record(s, r, 1000)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("nondeterministic sample count")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("nondeterministic trace")
		}
	}
}

func TestRecordCapsSampleCount(t *testing.T) {
	s := device.H200()
	r := steadyReport(t)
	tr := Record(s, r, 100000000) // enormous loop
	if len(tr.Samples) > 20002 {
		t.Fatalf("sample cap not applied: %d samples", len(tr.Samples))
	}
}

func TestRecordMinimumOneRepeat(t *testing.T) {
	s := device.H200()
	r := steadyReport(t)
	tr := Record(s, r, 0)
	if tr.TotalTimeS != r.Time {
		t.Errorf("repeats<1 should clamp to 1: total %v, want %v", tr.TotalTimeS, r.Time)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{1, 0, 2}); g != 0 {
		t.Errorf("Geomean with zero = %v, want 0", g)
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Errorf("Geomean(5) = %v, want 5", g)
	}
}
