// Package advisor implements the forward-looking analysis Section 4 closes
// with: predicting MMU suitability from algorithm-level characteristics,
// before any MMA transformation is written. The paper notes this requires
// "linking algorithmic structure to MMU execution semantics" and calls its
// categorization "a first step toward the algorithm level reasoning about
// MMU suitability" — this package takes that step mechanically, using the
// quadrant taxonomy and the characterization results as the knowledge base.
package advisor

import (
	"fmt"

	"repro/internal/device"
)

// AlgorithmTraits describes a kernel at the algorithm level, before any
// MMU-oriented transformation.
type AlgorithmTraits struct {
	Name string

	// EssentialFLOPs and DRAMBytes describe one invocation's useful work
	// and unavoidable traffic (the CC-E view).
	EssentialFLOPs float64
	DRAMBytes      float64

	// GEMMFraction is the share of the essential FLOPs already expressible
	// as dense matrix products of size ≥ the MMA tile.
	GEMMFraction float64

	// OperandReuse is how often a loaded operand participates in distinct
	// multiply-accumulates (k-dimension reuse): ≥8 suits the MMA shape.
	OperandReuse float64

	// ConstantOperand reports whether one multiplicand is a compile-time
	// constant (the Quadrant II/III pattern — triangular/ones matrices).
	ConstantOperand bool

	// OutputDensity is the fraction of a natural output tile the algorithm
	// consumes (1 = dense result, 1/8 = diagonal, 1/64 = scalar).
	OutputDensity float64

	// Irregularity in [0,1]: 0 = fully regular strides, 1 = pointer-chasing.
	Irregularity float64

	// BaselineEfficiency in (0,1] is how close the best available vector
	// implementation already runs to its roofline (vendor libraries ≈0.9,
	// straightforward kernels ≈0.5, irregular ones ≈0.35). Zero defaults
	// to 0.5.
	BaselineEfficiency float64
}

// Quadrant predicts the Figure 2 quadrant the MMU-adapted kernel will land
// in, from the input (constant operand?) and output densities.
func (t AlgorithmTraits) Quadrant() int {
	inFull := !t.ConstantOperand
	outFull := t.OutputDensity > 0.5
	switch {
	case inFull && outFull:
		return 1
	case !inFull && outFull:
		return 2
	case !inFull && !outFull:
		return 3
	default:
		return 4
	}
}

// ArithmeticIntensity is the essential FLOP/byte ratio.
func (t AlgorithmTraits) ArithmeticIntensity() float64 {
	if t.DRAMBytes == 0 {
		return 0
	}
	return t.EssentialFLOPs / t.DRAMBytes
}

// Verdict summarizes the advisor's prediction.
type Verdict struct {
	Quadrant int
	// Suitable is the headline recommendation.
	Suitable bool
	// ExpectedSpeedup is a coarse band against a tuned vector baseline,
	// derived from the characterization (Figure 4's observed ranges).
	ExpectedSpeedupLow, ExpectedSpeedupHigh float64
	// RedundancyFactor estimates issued-vs-essential MMA FLOPs from the
	// predicted utilization (Observation 5's cost side).
	RedundancyFactor float64
	// Reasons explains the prediction.
	Reasons []string
}

// Advise predicts MMU suitability of the algorithm on a device.
func Advise(t AlgorithmTraits, spec device.Spec) Verdict {
	v := Verdict{Quadrant: t.Quadrant()}
	ai := t.ArithmeticIntensity()
	ridge := spec.TensorFP64 / (spec.DRAMBWTBs) // FLOP/B where compute matters

	// Redundancy: inverse of how much of the MMA tile the algorithm fills.
	inputUtil := t.GEMMFraction
	if t.ConstantOperand {
		// Constant operands are free (register/const-cache resident): only
		// the data operand's fill matters.
		inputUtil = 1
	}
	if inputUtil <= 0 {
		inputUtil = minf(1, t.OperandReuse/8)
	}
	if inputUtil <= 0 {
		inputUtil = 0.05
	}
	outUtil := maxf(t.OutputDensity, 1.0/64)
	v.RedundancyFactor = 1 / (inputUtil * outUtil)

	baseEff := t.BaselineEfficiency
	if baseEff == 0 {
		baseEff = 0.5
	}
	memoryBound := ai < ridge
	switch {
	case memoryBound && t.Irregularity > 0.75:
		v.Suitable = false
		v.ExpectedSpeedupLow, v.ExpectedSpeedupHigh = 0.7, 1.1
		v.Reasons = append(v.Reasons,
			"memory-bound with highly irregular access: the MMU cannot regularize pointer-chasing traffic")
	case memoryBound:
		// The win is layout regularization, not FLOPs — bounded by how far
		// the baseline already sits from the bandwidth roof.
		headroom := 0.92 / baseEff
		v.Suitable = headroom >= 1.25
		v.ExpectedSpeedupLow = maxf(0.6, 0.6*headroom)
		v.ExpectedSpeedupHigh = minf(3.2, headroom*1.6)
		if v.Suitable {
			v.Reasons = append(v.Reasons,
				"memory-bound: gains come from regularized block layouts (Observation 8), bounded by bandwidth")
		} else {
			v.Reasons = append(v.Reasons,
				"memory-bound but the baseline already saturates the memory system (the FFT-vs-cuFFT situation, Section 6.1)")
		}
	case t.GEMMFraction >= 0.8:
		v.Suitable = true
		v.ExpectedSpeedupLow = 0.9 * spec.TensorToCUDARatio()
		v.ExpectedSpeedupHigh = 2.2 * spec.TensorToCUDARatio()
		v.Reasons = append(v.Reasons,
			"compute-bound and already GEMM-shaped: near-direct MMA mapping (Quadrant I)")
	case t.OperandReuse >= 4 || t.ConstantOperand:
		v.Suitable = true
		v.ExpectedSpeedupLow, v.ExpectedSpeedupHigh = 1.2, 2.0
		v.Reasons = append(v.Reasons,
			"compute-bound with enough operand reuse to amortize the MMA shape after restructuring (Observation 1)")
	default:
		v.Suitable = v.RedundancyFactor <= 8
		v.ExpectedSpeedupLow, v.ExpectedSpeedupHigh = 0.6, 1.4
		v.Reasons = append(v.Reasons,
			fmt.Sprintf("low reuse: the MMA shape forces %.0fx redundant FLOPs", v.RedundancyFactor))
	}

	if t.ConstantOperand {
		v.Reasons = append(v.Reasons,
			"constant operand stays register-resident: no extra operand bandwidth (Quadrant II/III advantage)")
	}
	if v.RedundancyFactor > 1.5 && v.Suitable {
		v.Reasons = append(v.Reasons, fmt.Sprintf(
			"accept the %.1fx issued-FLOP redundancy: removing it rarely pays (Observation 5)",
			v.RedundancyFactor))
	}
	if spec.TensorToCUDARatio() <= 1 && !memoryBound {
		v.ExpectedSpeedupLow = minf(v.ExpectedSpeedupLow, 1.0)
		v.Reasons = append(v.Reasons, fmt.Sprintf(
			"%s has no FP64 tensor peak advantage (Figure 12 regression): compute-bound gains are efficiency-only",
			spec.Name))
	}
	return v
}

// KnownTraits returns the algorithm-level trait vectors of the ten Cubie
// workloads — the advisor's regression set (each should predict its own
// quadrant and the Figure 4 outcome).
func KnownTraits() []AlgorithmTraits {
	return []AlgorithmTraits{
		{Name: "GEMM", EssentialFLOPs: 2 * 1 << 30, DRAMBytes: 64 << 20,
			GEMMFraction: 1, OperandReuse: 1024, OutputDensity: 1, Irregularity: 0},
		{Name: "PiC", EssentialFLOPs: 60 << 20, DRAMBytes: 96 << 20,
			GEMMFraction: 0.7, OperandReuse: 4, OutputDensity: 1, Irregularity: 0.2},
		{Name: "FFT", EssentialFLOPs: 80 << 20, DRAMBytes: 64 << 20,
			GEMMFraction: 0.5, OperandReuse: 16, OutputDensity: 1, Irregularity: 0.3,
			BaselineEfficiency: 0.9}, // cuFFT already saturates the memory system
		{Name: "Stencil", EssentialFLOPs: 10 << 20, DRAMBytes: 16 << 20,
			GEMMFraction: 0.3, OperandReuse: 3, OutputDensity: 1, Irregularity: 0.1},
		{Name: "Scan", EssentialFLOPs: 2 << 20, DRAMBytes: 16 << 20,
			ConstantOperand: true, OperandReuse: 8, OutputDensity: 1, Irregularity: 0.1,
			BaselineEfficiency: 0.62},
		{Name: "Reduction", EssentialFLOPs: 1 << 20, DRAMBytes: 8 << 20,
			ConstantOperand: true, OperandReuse: 8, OutputDensity: 1.0 / 64, Irregularity: 0.1,
			BaselineEfficiency: 0.65},
		{Name: "BFS", EssentialFLOPs: 2 << 20, DRAMBytes: 24 << 20,
			GEMMFraction: 0.2, OperandReuse: 8, OutputDensity: 1.0 / 8, Irregularity: 0.6,
			BaselineEfficiency: 0.35}, // frontier expansion scatters
		{Name: "GEMV", EssentialFLOPs: 2 << 20, DRAMBytes: 8 << 20,
			GEMMFraction: 0.25, OperandReuse: 1, OutputDensity: 1.0 / 8, Irregularity: 0,
			BaselineEfficiency: 0.7},
		{Name: "SpMV", EssentialFLOPs: 4 << 20, DRAMBytes: 24 << 20,
			GEMMFraction: 0.1, OperandReuse: 1, OutputDensity: 1.0 / 8, Irregularity: 0.5,
			BaselineEfficiency: 0.5},
		{Name: "SpGEMM", EssentialFLOPs: 100 << 20, DRAMBytes: 100 << 20,
			GEMMFraction: 0.3, OperandReuse: 4, OutputDensity: 0.5, Irregularity: 0.5,
			BaselineEfficiency: 0.35}, // hash SpGEMM overhead
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
