package advisor

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

func TestQuadrantPredictionsMatchFigure2(t *testing.T) {
	// The advisor must recover the paper's quadrant assignment for all ten
	// workloads from algorithm-level traits alone.
	s := core.NewSuite()
	for _, tr := range KnownTraits() {
		w, err := s.ByName(tr.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Quadrant(); got != w.Quadrant() {
			t.Errorf("%s: predicted quadrant %d, paper says %d", tr.Name, got, w.Quadrant())
		}
	}
}

func TestSuitabilityMatchesFigure4(t *testing.T) {
	// FFT is the one workload where the baseline wins; the advisor must
	// reject it and accept the other nine on H200.
	for _, tr := range KnownTraits() {
		v := Advise(tr, device.H200())
		if tr.Name == "FFT" {
			if v.Suitable {
				t.Error("FFT should be rejected (cuFFT wins, Section 6.1)")
			}
			continue
		}
		if !v.Suitable {
			t.Errorf("%s: advisor rejected a workload the paper accelerates", tr.Name)
		}
	}
}

func TestSpeedupBandsContainMeasuredFigure4(t *testing.T) {
	// The predicted bands must contain this repo's measured Figure 4
	// speedups on H200.
	measured := map[string]float64{
		"GEMM": 2.90, "Stencil": 2.36, "Scan": 1.44, "Reduction": 1.40,
		"BFS": 3.01, "GEMV": 1.09, "SpMV": 1.55, "SpGEMM": 3.50,
	}
	for _, tr := range KnownTraits() {
		sp, ok := measured[tr.Name]
		if !ok {
			continue
		}
		v := Advise(tr, device.H200())
		if sp < v.ExpectedSpeedupLow*0.9 || sp > v.ExpectedSpeedupHigh*1.15 {
			t.Errorf("%s: measured %.2fx outside predicted band [%.2f, %.2f]",
				tr.Name, sp, v.ExpectedSpeedupLow, v.ExpectedSpeedupHigh)
		}
	}
}

func TestRedundancyFactors(t *testing.T) {
	for _, tr := range KnownTraits() {
		v := Advise(tr, device.H200())
		if v.RedundancyFactor < 1 {
			t.Errorf("%s: redundancy %v below 1", tr.Name, v.RedundancyFactor)
		}
		switch tr.Name {
		case "GEMM":
			if v.RedundancyFactor != 1 {
				t.Errorf("GEMM redundancy %v, want 1 (direct mapping)", v.RedundancyFactor)
			}
		case "Reduction":
			if v.RedundancyFactor < 32 {
				t.Errorf("Reduction redundancy %v, want ≥32 (single output element)",
					v.RedundancyFactor)
			}
		}
	}
}

func TestBlackwellRegressionCaveat(t *testing.T) {
	// On B200 (no FP64 tensor peak advantage) a compute-bound GEMM-shaped
	// kernel must carry the Figure 12 caveat and a lower floor.
	tr := AlgorithmTraits{
		Name: "dense-solver", EssentialFLOPs: 1e12, DRAMBytes: 1e9,
		GEMMFraction: 1, OperandReuse: 512, OutputDensity: 1,
	}
	vb := Advise(tr, device.B200())
	vh := Advise(tr, device.H200())
	if vb.ExpectedSpeedupHigh >= vh.ExpectedSpeedupHigh {
		t.Errorf("B200 band top %v should sit below H200's %v",
			vb.ExpectedSpeedupHigh, vh.ExpectedSpeedupHigh)
	}
	found := false
	for _, r := range vb.Reasons {
		if len(r) > 0 && (contains(r, "regression") || contains(r, "B200")) {
			found = true
		}
	}
	if !found {
		t.Error("B200 verdict missing the Figure 12 regression caveat")
	}
}

func TestIrregularMemoryBoundRejected(t *testing.T) {
	tr := AlgorithmTraits{
		Name: "pointer-chase", EssentialFLOPs: 1e6, DRAMBytes: 1e9,
		GEMMFraction: 0, OperandReuse: 1, OutputDensity: 1.0 / 64,
		Irregularity: 0.9,
	}
	if v := Advise(tr, device.H200()); v.Suitable {
		t.Error("highly irregular memory-bound kernel should be rejected")
	}
}

func TestConstantOperandReasonAttached(t *testing.T) {
	for _, tr := range KnownTraits() {
		if !tr.ConstantOperand {
			continue
		}
		v := Advise(tr, device.H200())
		found := false
		for _, r := range v.Reasons {
			if contains(r, "constant operand") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: missing constant-operand reasoning", tr.Name)
		}
	}
}

func TestZeroTrafficIntensity(t *testing.T) {
	tr := AlgorithmTraits{EssentialFLOPs: 100}
	if tr.ArithmeticIntensity() != 0 {
		t.Error("zero-byte intensity should report 0")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
