// Package packcache is the packed-operand reuse layer of the panel engine:
// a process-wide cache of fully packed A/B MMA operand panels keyed by
// (dataset name, operand side, panel geometry) and validated by a content
// hash of the source matrix. Sweep repetitions, TC/CC variant pairs, and the
// Table-6 reference runs all regenerate bit-identical operands; without the
// cache every one of those runs re-stages the same panels (and the GEMM
// inner loop re-packed the same B column panel once per row tile). A hit
// returns the previously packed slab after a read-only hash sweep — no
// memmove traffic at all.
//
// Safety model:
//
//   - Invalidation is by content: every lookup re-hashes the source matrix
//     (FNV-1a over the IEEE-754 bit patterns plus the shape), so a mutated
//     dataset can never be served stale panels — the hash changes, the stale
//     entry is dropped, and the operand is re-packed. The hash sweep reads
//     each element once, strictly cheaper than the pack it replaces (which
//     reads and writes every element, plus zero-fill edge handling).
//   - Concurrent readers hold leases. An entry's slab is only recycled into
//     the backing par.TypedScratch pool when its refcount reaches zero;
//     eviction of a leased entry just detaches it and the last Release
//     returns the slab. Readers therefore never observe a slab being
//     repacked underneath them.
//   - Capacity is bounded (SetByteCap, default 128 MiB) with
//     least-recently-used eviction over unleased entries.
//
// CUBIE_NO_PACKCACHE=1 (or SetEnabled(false)) bypasses the cache: operands
// are packed into pooled scratch per call, exactly the staging the kernels
// did before. Packed bytes are identical either way — the cache stores what
// tensor.PackAPanel/PackBPanel produce — so results are bit-identical in
// both modes; the knob exists so the equivalence stays testable end to end
// (and it is folded into the runcache fingerprint like CUBIE_NO_PANEL).
package packcache

import (
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/mmu"
	"repro/internal/par"
	"repro/internal/tensor"
)

// DisableEnv is the environment variable that, when set to "1", bypasses the
// packed-panel cache: every lookup packs into pooled scratch instead.
const DisableEnv = "CUBIE_NO_PACKCACHE"

var disabled atomic.Bool

func init() {
	disabled.Store(os.Getenv(DisableEnv) == "1")
}

// SetEnabled enables or disables the cache and reports whether it was
// previously enabled. Tests use it to pin the cached and per-call staging
// paths bit-identical without re-execing the process.
func SetEnabled(on bool) (was bool) {
	return !disabled.Swap(!on)
}

// Enabled reports whether the packed-panel cache is active.
func Enabled() bool { return !disabled.Load() }

var (
	metHits = metrics.NewCounter("cubie_packcache_hits_total",
		"Packed-panel lookups served from the cache (hash-validated).")
	metMisses = metrics.NewCounter("cubie_packcache_misses_total",
		"Packed-panel lookups that had to pack (cold, stale, or resized).")
	metEvictions = metrics.NewCounter("cubie_packcache_evictions_total",
		"Packed-panel entries evicted to stay under the byte cap.")
	metBytes = metrics.NewGauge("cubie_packcache_bytes",
		"Bytes of packed operand panels currently cached.")
)

// key identifies one packed operand: which dataset, which side of the
// product, and the panel geometry it was packed for. Same name with a
// different shape or k-extent is a different entry, so kernels can use fixed
// name strings without formatting per-case keys.
type key struct {
	name       string
	side       byte // 'A' or 'B'
	rows, cols int
	kTiles     int
}

type entry struct {
	key     key
	hash    uint64
	data    []float64
	refs    int
	lastUse uint64
	live    bool // still indexed; false once dropped/evicted while leased
}

var (
	mu          sync.Mutex
	entries     = map[key]*entry{}
	totalFloats int
	useClock    uint64
	byteCap     = 128 << 20
)

// slabScratch pools the panel slabs for both cached entries and the
// cache-disabled per-call staging path.
var slabScratch = par.NewSizedScratch()

// SetByteCap sets the cache capacity in bytes and returns the previous cap,
// evicting immediately if the cache is over the new cap. Tests use small
// caps to exercise eviction.
func SetByteCap(n int) (old int) {
	mu.Lock()
	defer mu.Unlock()
	old = byteCap
	byteCap = n
	evictLocked()
	metBytes.Set(float64(totalFloats * 8))
	return old
}

// Flush drops every unleased entry (leased ones are detached and recycled on
// their final Release). Tests use it to reset the cache between modes.
func Flush() {
	mu.Lock()
	defer mu.Unlock()
	for _, e := range entries {
		removeLocked(e)
	}
	metBytes.Set(float64(totalFloats * 8))
}

// HashOffset is the FNV-1a offset basis; PackedSlab callers seed their
// content hash with it and fold every source word through HashMix, so all
// cache entries share one invalidation-hash family.
const HashOffset uint64 = 14695981039346656037

// HashMix folds one 64-bit word into an FNV-1a hash (IEEE-754 bit patterns
// for floats, widened integers for coordinates).
func HashMix(h, word uint64) uint64 { return (h ^ word) * 1099511628211 }

// hashMatrix is FNV-1a over the shape and the IEEE-754 bit patterns of the
// elements: any single-bit change to the data (or a reshape) changes the
// hash, which is what makes serving a cached slab invalidation-safe.
func hashMatrix(m *tensor.Matrix) uint64 {
	h := HashOffset
	h = HashMix(h, uint64(m.Rows))
	h = HashMix(h, uint64(m.Cols))
	for _, v := range m.Data {
		h = HashMix(h, math.Float64bits(v))
	}
	return h
}

// Lease is a checked-out packed operand. Data holds the packed panels;
// Release returns the reference (callers must not touch Data afterwards).
// The zero Lease is inert.
type Lease struct {
	// Data is the packed panel slab. For an A-side lease it is rowTiles
	// consecutive packed row-panels of kTiles·32 floats each; for a B-side
	// lease, colTiles consecutive packed column-panels of kTiles·32 floats.
	Data []float64

	e      *entry
	pooled bool
}

// Release returns the lease. Cached slabs drop their refcount (recycling the
// slab if the entry was evicted while leased); bypass-mode slabs go straight
// back to the scratch pool.
func (l *Lease) Release() {
	if l.e != nil {
		mu.Lock()
		l.e.refs--
		if l.e.refs == 0 && !l.e.live {
			slabScratch.Put(l.e.data)
		}
		mu.Unlock()
	} else if l.pooled && l.Data != nil {
		slabScratch.Put(l.Data)
	}
	l.e, l.Data, l.pooled = nil, nil, false
}

// PackedA returns the whole A operand of m packed for a k-sweep of kTiles:
// ceil(Rows/8) row-panels back to back, row tile ti at offset
// ti·kTiles·32. Partial edge tiles are zero-filled exactly as
// tensor.PackAPanel pads them.
func PackedA(name string, m *tensor.Matrix, kTiles int) Lease {
	rowTiles := (m.Rows + mmu.M - 1) / mmu.M
	size := rowTiles * kTiles * mmu.M * mmu.K
	return packed(key{name, 'A', m.Rows, m.Cols, kTiles}, hashMatrix(m), size, func(dst []float64) {
		stride := kTiles * mmu.M * mmu.K
		for ti := 0; ti < rowTiles; ti++ {
			m.PackAPanel(dst[ti*stride:(ti+1)*stride], ti*mmu.M, 0, kTiles)
		}
	})
}

// PackedB returns the whole B operand of m packed for a k-sweep of kTiles:
// ceil(Cols/8) column-panels back to back, column tile tj at offset
// tj·kTiles·32, zero-filled at the edges like tensor.PackBPanel.
func PackedB(name string, m *tensor.Matrix, kTiles int) Lease {
	colTiles := (m.Cols + mmu.N - 1) / mmu.N
	size := colTiles * kTiles * mmu.K * mmu.N
	return packed(key{name, 'B', m.Rows, m.Cols, kTiles}, hashMatrix(m), size, func(dst []float64) {
		stride := kTiles * mmu.K * mmu.N
		for tj := 0; tj < colTiles; tj++ {
			m.PackBPanel(dst[tj*stride:(tj+1)*stride], 0, tj*mmu.N, kTiles)
		}
	})
}

// PackedSlab is the generalized cache entry point for operands that are not
// tensor.Matrix values — the SpGEMM prestaged pair slabs pack straight from
// mBSR blocks. The caller supplies the content hash of whatever source the
// pack function reads (recomputed on every lookup, same invalidation-safety
// contract as PackedA/PackedB: a mutated source changes the hash and the
// stale slab is dropped) plus the slab size in floats; side distinguishes
// multiple slab kinds under one dataset name, and shape/kTiles key the
// geometry. With the cache disabled the slab is packed into pooled scratch
// per call.
func PackedSlab(name string, side byte, rows, cols, kTiles int, hash uint64, size int, pack func([]float64)) Lease {
	return packed(key{name, side, rows, cols, kTiles}, hash, size, pack)
}

func packed(k key, h uint64, size int, pack func([]float64)) Lease {
	if !Enabled() {
		buf := slabScratch.Get(size)
		pack(buf)
		return Lease{Data: buf, pooled: true}
	}
	mu.Lock()
	useClock++
	if e, ok := entries[k]; ok {
		if e.hash == h && len(e.data) == size {
			e.refs++
			e.lastUse = useClock
			mu.Unlock()
			metHits.Inc()
			return Lease{Data: e.data, e: e}
		}
		// Same key, different content: the dataset behind this name mutated.
		// Drop the stale entry before repacking.
		removeLocked(e)
	}
	buf := slabScratch.Get(size)
	pack(buf)
	e := &entry{key: k, hash: h, data: buf, refs: 1, lastUse: useClock, live: true}
	entries[k] = e
	totalFloats += size
	evictLocked()
	metBytes.Set(float64(totalFloats * 8))
	mu.Unlock()
	metMisses.Inc()
	return Lease{Data: buf, e: e}
}

// removeLocked drops e from the index. The slab is recycled now if unleased,
// otherwise on the final Release.
func removeLocked(e *entry) {
	if !e.live {
		return
	}
	delete(entries, e.key)
	e.live = false
	totalFloats -= len(e.data)
	if e.refs == 0 {
		slabScratch.Put(e.data)
	}
}

// evictLocked enforces the byte cap by dropping least-recently-used unleased
// entries. Leased entries are skipped — never recycle a slab a reader holds.
func evictLocked() {
	for totalFloats*8 > byteCap {
		var victim *entry
		for _, e := range entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		removeLocked(victim)
		metEvictions.Inc()
	}
}
