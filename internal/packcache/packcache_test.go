package packcache

import (
	"math"
	"testing"

	"repro/internal/lcg"
	"repro/internal/mmu"
	"repro/internal/tensor"
)

func testMatrix(rows, cols int, seed int64) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	g := lcg.New(seed)
	g.Fill(m.Data)
	return m
}

// reset gives each test a clean, enabled cache with the default capacity.
func reset(t *testing.T) {
	t.Helper()
	was := SetEnabled(true)
	oldCap := SetByteCap(128 << 20)
	Flush()
	t.Cleanup(func() {
		Flush()
		SetEnabled(was)
		SetByteCap(oldCap)
	})
}

// packedARef stages the A operand the way the kernels did before the cache:
// one PackAPanel call per row tile into a caller-owned buffer.
func packedARef(m *tensor.Matrix, kTiles int) []float64 {
	rowTiles := (m.Rows + mmu.M - 1) / mmu.M
	stride := kTiles * mmu.M * mmu.K
	dst := make([]float64, rowTiles*stride)
	for ti := 0; ti < rowTiles; ti++ {
		m.PackAPanel(dst[ti*stride:(ti+1)*stride], ti*mmu.M, 0, kTiles)
	}
	return dst
}

func packedBRef(m *tensor.Matrix, kTiles int) []float64 {
	colTiles := (m.Cols + mmu.N - 1) / mmu.N
	stride := kTiles * mmu.K * mmu.N
	dst := make([]float64, colTiles*stride)
	for tj := 0; tj < colTiles; tj++ {
		m.PackBPanel(dst[tj*stride:(tj+1)*stride], 0, tj*mmu.N, kTiles)
	}
	return dst
}

func wantBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %v, want %v (bitwise)", name, i, got[i], want[i])
		}
	}
}

// TestPackedMatchesStaging pins cached slabs bit-identical to the per-call
// staging path, for interior and ragged-edge shapes, on both the cold-miss
// and warm-hit routes and with the cache disabled.
func TestPackedMatchesStaging(t *testing.T) {
	reset(t)
	shapes := []struct{ rows, cols int }{
		{64, 64}, {61, 53}, {8, 4}, {5, 3}, {16, 128},
	}
	for _, sh := range shapes {
		m := testMatrix(sh.rows, sh.cols, int64(sh.rows*1000+sh.cols))
		kTiles := (sh.cols + mmu.K - 1) / mmu.K
		wantA := packedARef(m, kTiles)
		wantB := packedBRef(m, kTiles)

		cold := PackedA("t:A", m, kTiles)
		wantBits(t, "cold A", cold.Data, wantA)
		warm := PackedA("t:A", m, kTiles)
		wantBits(t, "warm A", warm.Data, wantA)
		cold.Release()
		warm.Release()

		b := PackedB("t:B", m, kTiles)
		wantBits(t, "B", b.Data, wantB)
		b.Release()

		SetEnabled(false)
		off := PackedA("t:A", m, kTiles)
		wantBits(t, "disabled A", off.Data, wantA)
		off.Release()
		SetEnabled(true)
	}
}

// TestInvalidationOnMutation is the stale-panel contract: after any
// mutation of the source matrix, a lookup under the same key must repack —
// the content hash changes, so the cache can never serve the old slab.
func TestInvalidationOnMutation(t *testing.T) {
	reset(t)
	m := testMatrix(32, 32, 7)
	kTiles := 8

	l := PackedA("mut:A", m, kTiles)
	before := append([]float64(nil), l.Data...)
	l.Release()

	m.Data[5*32+3] += 1.0 // mutate one element
	want := packedARef(m, kTiles)
	l = PackedA("mut:A", m, kTiles)
	wantBits(t, "after mutation", l.Data, want)
	if math.Float64bits(l.Data[0]) == math.Float64bits(before[0]) &&
		m.Data[0] != 0 && before[0] != l.Data[0] {
		t.Fatalf("stale slab served after mutation")
	}
	l.Release()

	// Flipping the element back must also be picked up (hash is content, not
	// a dirty bit).
	m.Data[5*32+3] -= 1.0
	want = packedARef(m, kTiles)
	l = PackedA("mut:A", m, kTiles)
	wantBits(t, "after revert", l.Data, want)
	l.Release()
}

// TestHitMissAccounting checks the cache actually hits: same name, same
// content, same geometry is one miss then hits; a different kTiles or shape
// under the same name is a distinct entry.
func TestHitMissAccounting(t *testing.T) {
	reset(t)
	m := testMatrix(16, 16, 3)

	a1 := PackedA("acct:A", m, 4)
	a2 := PackedA("acct:A", m, 4)
	if &a1.Data[0] != &a2.Data[0] {
		t.Fatalf("repeat lookup did not share the cached slab")
	}
	lenA := len(a1.Data)
	a1.Release()
	a2.Release()

	b1 := PackedA("acct:A", m, 2) // different geometry → different entry
	if len(b1.Data) == lenA {
		t.Fatalf("geometry change produced same-size slab unexpectedly")
	}
	b1.Release()
}

// TestEvictionRespectsLeases pins the lease contract: an entry evicted for
// capacity while leased stays readable until Release, and leased entries are
// never chosen as victims.
func TestEvictionRespectsLeases(t *testing.T) {
	reset(t)
	m1 := testMatrix(64, 64, 1)
	m2 := testMatrix(64, 64, 2)
	m3 := testMatrix(64, 64, 3)
	kTiles := 16
	slab := 8 * kTiles * mmu.M * mmu.K * 8 // bytes of one packed-A slab

	SetByteCap(slab + slab/2) // room for one entry only

	l1 := PackedA("ev:1", m1, kTiles)
	want1 := append([]float64(nil), l1.Data...)

	// Inserting m2 must evict m1's entry (over cap), but l1 is leased — its
	// slab must stay intact.
	l2 := PackedA("ev:2", m2, kTiles)
	wantBits(t, "leased slab after eviction", l1.Data, want1)
	l2.Release()

	// l1's entry was detached; a fresh lookup repacks rather than crashing.
	l3 := PackedA("ev:1", m3, kTiles) // note: different content under same name
	wantBits(t, "repacked after detach", l3.Data, packedARef(m3, kTiles))
	l3.Release()
	l1.Release()
}

// TestPackedASteadyStateAllocs pins the warm lookup allocation-free: a hit
// is a hash sweep plus a refcount, no packing and no heap growth.
func TestPackedASteadyStateAllocs(t *testing.T) {
	reset(t)
	m := testMatrix(64, 64, 9)
	kTiles := 16
	warm := PackedA("allocs:A", m, kTiles) // populate
	warm.Release()
	avg := testing.AllocsPerRun(100, func() {
		l := PackedA("allocs:A", m, kTiles)
		l.Release()
	})
	if avg > 0 {
		t.Fatalf("warm PackedA allocates %.1f objects per lookup, want 0", avg)
	}
}
