package runcache

// The remote tier: a peer daemon's content-addressed cache store, spoken
// over plain HTTP GET/PUT with the entry file name as the address. The
// protocol is deliberately dumb — the entry envelope already carries and
// the reader already verifies fingerprint/kind/key, so the transport adds
// nothing but bytes. Transient failures retry with jittered backoff
// (internal/httputil, the soci-snapshotter retry idiom); anything still
// failing after that is absorbed as a miss (reads) or a dropped publish
// (writes). The remote store is an accelerator, never a dependency: a
// worker with an unreachable store behaves exactly like one with no store.

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/httputil"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// RemotePathPrefix is the URL path under which a daemon serves the cache
// store: GET/PUT RemotePathPrefix+EntryName(...).
const RemotePathPrefix = "/api/v1/cache/"

// Remote-tier metrics (see docs/OBSERVABILITY.md).
var (
	metRemoteHits = metrics.NewCounter("cubie_runcache_remote_hits_total",
		"Lookups answered by a verified entry from the remote cache store.")
	metRemoteMisses = metrics.NewCounter("cubie_runcache_remote_misses_total",
		"Remote store lookups that found no usable entry (404, or bytes that failed verification).")
	metRemotePuts = metrics.NewCounter("cubie_runcache_remote_puts_total",
		"Entries successfully published to the remote cache store.")
	metRemoteErrors = metrics.NewCounter("cubie_runcache_remote_errors_total",
		"Remote store requests that failed after retries (connection errors or non-2xx, non-404 statuses); absorbed as misses or dropped publishes.")
	metRemoteBytes = metrics.NewCounter("cubie_runcache_remote_bytes_total",
		"Bytes transferred to and from the remote cache store (entry bodies, both directions).")
)

// maxRemoteEntryBytes bounds one remote entry read. The largest real
// entries (reference outputs of the biggest cases) are tens of megabytes;
// 1 GiB is a safety net against a misbehaving peer, not a tuning knob.
const maxRemoteEntryBytes = 1 << 30

// Remote is one cache-store peer.
type Remote struct {
	base   string
	hc     *http.Client
	policy httputil.Policy
}

// NewRemote returns a store client for a peer at addr ("host:port" or an
// http:// base URL), with the default retry policy.
func NewRemote(addr string) *Remote {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Remote{
		base:   strings.TrimRight(base, "/"),
		hc:     &http.Client{Timeout: 2 * time.Minute},
		policy: httputil.DefaultPolicy(),
	}
}

// WithPolicy overrides the retry policy (tests shrink the delays) and
// returns r.
func (r *Remote) WithPolicy(p httputil.Policy) *Remote {
	r.policy = p
	return r
}

// AttachRemote binds a remote store as the L2 tier (nil detaches) and
// returns c.
func (c *Cache) AttachRemote(r *Remote) *Cache {
	if c != nil {
		c.remote = r
	}
	return c
}

// remoteGet fetches one entry's raw bytes from the store. A 404 is a
// plain miss; connection errors and retryable statuses are retried per
// the policy and then absorbed as a miss. The returned bytes are NOT yet
// verified — Get decodes and checks them against (fingerprint, kind, key).
func (c *Cache) remoteGet(name string) ([]byte, bool) {
	r := c.remote
	if r == nil {
		return nil, false
	}
	end := trace.HostSpan("runcache-remote-get", name)
	defer end()
	resp, err := httputil.Do(r.hc, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, r.base+RemotePathPrefix+name, nil)
	}, r.policy)
	if err != nil {
		metRemoteErrors.Inc()
		metRemoteMisses.Inc()
		return nil, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		metRemoteMisses.Inc()
		return nil, false
	case resp.StatusCode/100 != 2:
		metRemoteErrors.Inc()
		metRemoteMisses.Inc()
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntryBytes))
	if err != nil {
		metRemoteErrors.Inc()
		metRemoteMisses.Inc()
		return nil, false
	}
	metRemoteBytes.Add(uint64(len(data)))
	return data, true
}

// remotePut publishes one entry to the store. Failures are counted and
// dropped — publishing is best-effort; the local tier already has the
// entry and a peer that needs it will recompute.
func (c *Cache) remotePut(name string, data []byte) {
	r := c.remote
	if r == nil {
		return
	}
	end := trace.HostSpan("runcache-remote-put", name)
	defer end()
	resp, err := httputil.Do(r.hc, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPut, r.base+RemotePathPrefix+name, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, r.policy)
	if err != nil {
		metRemoteErrors.Inc()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		metRemoteErrors.Inc()
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	metRemotePuts.Inc()
	metRemoteBytes.Add(uint64(len(data)))
}
