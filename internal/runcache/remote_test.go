package runcache

// Remote-tier tests. The fake store is a bare map behind the same
// GET/PUT /api/v1/cache/{key} surface the daemon exposes — deliberately
// not the real server, so tests can serve deliberately corrupt bytes,
// fail transiently, and count requests without dragging in the harness.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httputil"
)

// fastPolicy retries without real sleeping.
func fastPolicy() httputil.Policy {
	return httputil.Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
}

type fakeStore struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int

	// corrupt, when non-nil, replaces every GET body.
	corrupt []byte
	// failNext makes the next N requests fail with 503.
	failNext int
}

func (s *fakeStore) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, RemotePathPrefix)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.failNext > 0 {
			s.failNext--
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.gets++
			data, ok := s.entries[name]
			if s.corrupt != nil {
				data, ok = s.corrupt, true
			}
			if !ok {
				http.Error(w, "no entry", http.StatusNotFound)
				return
			}
			_, _ = w.Write(data)
		case http.MethodPut:
			s.puts++
			data, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			s.entries[name] = data
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
}

func newFakeStore(t *testing.T) (*fakeStore, *Remote) {
	t.Helper()
	s := &fakeStore{entries: map[string][]byte{}}
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)
	return s, NewRemote(srv.URL).WithPolicy(fastPolicy())
}

// wireEntry renders the valid wire bytes of one sample result entry for
// fingerprint fp, plus its content-addressed name, via a scratch cache.
func wireEntry(t *testing.T, fp string) (name string, data []byte) {
	t.Helper()
	scratch := openTest(t, t.TempDir(), fp)
	scratch.PutResult("GEMM", "rep", "TC", sampleResult())
	files := entryFiles(t, scratch.Dir())
	if len(files) != 1 {
		t.Fatalf("want 1 scratch entry, have %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Base(files[0]), data
}

func TestRemoteHitWritesThroughToLocal(t *testing.T) {
	store, remote := newFakeStore(t)
	name, data := wireEntry(t, "fp-a")
	store.entries[name] = data

	c := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
	got, ok := c.GetResult("GEMM", "rep", "TC")
	if !ok || got.Work != 12.5 {
		t.Fatalf("remote entry must hit: ok=%v got=%+v", ok, got)
	}
	if files := entryFiles(t, c.Dir()); len(files) != 1 {
		t.Fatalf("remote hit must write through to L1, have %v", files)
	}
	// The second lookup is served locally: no further store traffic.
	if _, ok := c.GetResult("GEMM", "rep", "TC"); !ok {
		t.Fatal("written-through entry must hit locally")
	}
	store.mu.Lock()
	gets := store.gets
	store.mu.Unlock()
	if gets != 1 {
		t.Fatalf("store saw %d GETs, want 1 (second lookup must be local)", gets)
	}
}

func TestRemoteAbsentIsSilentMiss(t *testing.T) {
	_, remote := newFakeStore(t)
	c := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
	if _, ok := c.GetResult("GEMM", "rep", "TC"); ok {
		t.Fatal("empty store must miss")
	}
}

// TestRemoteBadEntriesAreSilentMisses is the acceptance-criteria matrix:
// corrupt, truncated, and fingerprint-mismatched remote entries must be
// silent misses — never a failure, never wrong bytes.
func TestRemoteBadEntriesAreSilentMisses(t *testing.T) {
	name, data := wireEntry(t, "fp-a")
	_, mismatched := wireEntry(t, "fp-other")

	cases := map[string][]byte{
		"garbage":              []byte("not json at all"),
		"truncated":            data[:len(data)/2],
		"empty":                {},
		"fingerprint-mismatch": mismatched,
		"wrong-key":            mustWireKey(t, "fp-a", "GEMM", "rep", "CC"),
	}
	for label, body := range cases {
		t.Run(label, func(t *testing.T) {
			store, remote := newFakeStore(t)
			store.entries[name] = body
			c := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
			corrupt := corruptCount()
			if got, ok := c.GetResult("GEMM", "rep", "TC"); ok {
				t.Fatalf("%s remote entry must be a silent miss, got %+v", label, got)
			}
			if corruptCount() == corrupt && label != "empty" {
				// empty body fails the envelope decode too; all paths count.
				t.Fatalf("%s remote entry must be counted corrupt", label)
			}
			// The bad bytes must not have been written through.
			if files := entryFiles(t, c.Dir()); len(files) != 0 {
				t.Fatalf("unverified remote bytes must not land in L1: %v", files)
			}
		})
	}
}

// mustWireKey builds a valid envelope for a *different* key, planted at
// the asked-for key's address (the confused-store scenario).
func mustWireKey(t *testing.T, fp, w, cs, v string) []byte {
	t.Helper()
	scratch := openTest(t, t.TempDir(), fp)
	scratch.PutResult(w, cs, v, sampleResult())
	files := entryFiles(t, scratch.Dir())
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPutPublishesAndWarmsPeer(t *testing.T) {
	store, remote := newFakeStore(t)
	writer := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
	writer.PutResult("GEMM", "rep", "TC", sampleResult())

	store.mu.Lock()
	puts := store.puts
	store.mu.Unlock()
	if puts != 1 {
		t.Fatalf("store saw %d PUTs, want 1", puts)
	}

	// A peer with an empty local directory and the same fingerprint warms
	// entirely off the store.
	peer := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
	if got, ok := peer.GetResult("GEMM", "rep", "TC"); !ok || got.Work != 12.5 {
		t.Fatalf("peer must hit via the store: ok=%v got=%+v", ok, got)
	}
}

// TestTornWriteSilentMissAcrossRestartBothTiers is the satellite
// regression: a torn write observed across restart must miss at the local
// tier AND at the remote tier (the same torn bytes served back by a peer),
// and a re-Put must heal both.
func TestTornWriteSilentMissAcrossRestartBothTiers(t *testing.T) {
	store, remote := newFakeStore(t)
	dir := t.TempDir()
	first := openTest(t, dir, "fp-a").AttachRemote(remote)
	first.PutResult("GEMV", "small", "TC", sampleResult())

	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want 1 entry file, have %v", files)
	}
	name := filepath.Base(files[0])
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)*2/3]
	// Tear the write in both tiers, as one interrupted writer would have.
	if err := os.WriteFile(files[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	store.entries[name] = torn
	store.mu.Unlock()

	// "Restart": a fresh handle over the same directory and store.
	second := openTest(t, dir, "fp-a").AttachRemote(remote)
	if _, ok := second.GetResult("GEMV", "small", "TC"); ok {
		t.Fatal("torn entry must miss at both tiers across restart")
	}

	// Re-execution re-publishes; both tiers heal.
	second.PutResult("GEMV", "small", "TC", sampleResult())
	third := openTest(t, dir, "fp-a").AttachRemote(remote)
	if got, ok := third.GetResult("GEMV", "small", "TC"); !ok || got.Work != 12.5 {
		t.Fatalf("healed entry must hit: ok=%v got=%+v", ok, got)
	}
	store.mu.Lock()
	healed := store.entries[name]
	store.mu.Unlock()
	if string(healed) != string(data) {
		t.Fatal("re-Put must re-publish the full entry to the store")
	}
}

func TestRemoteTransientErrorsRetried(t *testing.T) {
	store, remote := newFakeStore(t)
	name, data := wireEntry(t, "fp-a")
	store.entries[name] = data
	store.failNext = 2 // two 503s, then success — inside the 3-attempt budget

	c := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
	if _, ok := c.GetResult("GEMM", "rep", "TC"); !ok {
		t.Fatal("retry budget must absorb two transient failures")
	}
}

func TestRemoteDownDegradesToLocalOnly(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	remote := NewRemote(url).WithPolicy(fastPolicy())

	c := openTest(t, t.TempDir(), "fp-a").AttachRemote(remote)
	if _, ok := c.GetResult("GEMM", "rep", "TC"); ok {
		t.Fatal("unreachable store must miss, not error")
	}
	c.PutResult("GEMM", "rep", "TC", sampleResult()) // must not panic or fail
	if _, ok := c.GetResult("GEMM", "rep", "TC"); !ok {
		t.Fatal("local tier must keep working with the store down")
	}
}

func TestValidEntryName(t *testing.T) {
	name, _ := wireEntry(t, "fp-a")
	if !ValidEntryName(name) {
		t.Fatalf("real entry name %q must validate", name)
	}
	for _, bad := range []string{
		"", "result.json", "../../etc/passwd", "result-XYZ.json",
		"result-0123456789abcdef01234567.json.bak",
		"result-0123456789abcdef0123456.json", // 23 hex chars
		"Result-0123456789abcdef01234567.json",
	} {
		if ValidEntryName(bad) {
			t.Errorf("ValidEntryName(%q) = true, want false", bad)
		}
	}
}

func TestWriteEntryVerifiesAddress(t *testing.T) {
	c := openTest(t, t.TempDir(), "fp-store")
	name, data := wireEntry(t, "fp-a")

	// The store accepts entries for fingerprints other than its own.
	if err := c.WriteEntry(name, data); err != nil {
		t.Fatalf("valid foreign-fingerprint entry must store: %v", err)
	}
	got, err := c.ReadEntry(name)
	if err != nil || string(got) != string(data) {
		t.Fatalf("ReadEntry after WriteEntry: %v", err)
	}

	// Rejections, all flagged as bad-entry (the daemon's 400 class).
	otherName := "result-0123456789abcdef01234567.json"
	for label, err := range map[string]error{
		"bad name":      c.WriteEntry("../escape.json", data),
		"not envelope":  c.WriteEntry(otherName, []byte("garbage")),
		"wrong address": c.WriteEntry(otherName, data),
	} {
		if err == nil || !IsBadEntry(err) {
			t.Errorf("%s: want a bad-entry error, got %v", label, err)
		}
	}

	// Reads of invalid names and absent entries fail distinctly.
	if _, err := c.ReadEntry("../escape.json"); err == nil || !IsBadEntry(err) {
		t.Errorf("ReadEntry of invalid name: want bad-entry error, got %v", err)
	}
	if _, err := c.ReadEntry(otherName); !os.IsNotExist(err) {
		t.Errorf("ReadEntry of absent entry: want IsNotExist, got %v", err)
	}
}

func TestFromEnvAttachesRemote(t *testing.T) {
	store, _ := newFakeStore(t)
	srv := httptest.NewServer(store.handler())
	defer srv.Close()
	name, data := wireEntry(t, Fingerprint()) // FromEnv binds the real fingerprint
	store.mu.Lock()
	store.entries[name] = data
	store.mu.Unlock()

	t.Setenv(Env, filepath.Join(t.TempDir(), "l1"))
	t.Setenv(EnvRemote, srv.URL)
	c := FromEnv()
	if c == nil {
		t.Fatal("FromEnv returned nil with a valid directory")
	}
	if got, ok := c.GetResult("GEMM", "rep", "TC"); !ok || got.Work != 12.5 {
		t.Fatalf("CUBIE_REMOTE_CACHE store must serve the entry: ok=%v got=%+v", ok, got)
	}

	// CUBIE_CACHE=off disables both tiers.
	t.Setenv(Env, "off")
	if c := FromEnv(); c != nil {
		t.Fatal("CUBIE_CACHE=off must disable the cache even with a remote configured")
	}
}
