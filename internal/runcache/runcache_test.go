package runcache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func openTest(t *testing.T, dir, fp string) *Cache {
	t.Helper()
	c, err := OpenWithFingerprint(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sampleResult() *workload.Result {
	return &workload.Result{
		Work:       12.5,
		MetricName: "flops",
		Output:     []float64{1, 0.1, -3.25, 1e-308},
	}
}

func TestResultRoundTrip(t *testing.T) {
	c := openTest(t, t.TempDir(), "fp-a")

	if _, ok := c.GetResult("GEMM", "rep", "TC"); ok {
		t.Fatal("empty cache must miss")
	}
	if c.Has(KindResult, ResultKey("GEMM", "rep", "TC")) {
		t.Fatal("Has must be false before Put")
	}

	want := sampleResult()
	c.PutResult("GEMM", "rep", "TC", want)

	if !c.Has(KindResult, ResultKey("GEMM", "rep", "TC")) {
		t.Fatal("Has must be true after Put")
	}
	got, ok := c.GetResult("GEMM", "rep", "TC")
	if !ok {
		t.Fatal("want hit after Put")
	}
	if got.Work != want.Work || got.MetricName != want.MetricName {
		t.Fatalf("scalar fields differ: got %+v want %+v", got, want)
	}
	if len(got.Output) != len(want.Output) {
		t.Fatalf("output length %d, want %d", len(got.Output), len(want.Output))
	}
	for i := range want.Output {
		if got.Output[i] != want.Output[i] {
			t.Fatalf("output[%d] = %v, want bit-identical %v", i, got.Output[i], want.Output[i])
		}
	}

	// A different key must still miss.
	if _, ok := c.GetResult("GEMM", "rep", "CC"); ok {
		t.Fatal("distinct variant must miss")
	}
}

func TestKindsAreDisjoint(t *testing.T) {
	c := openTest(t, t.TempDir(), "fp-a")
	c.Put(KindReference, "GEMM|rep|__reference", []float64{42})

	var ref []float64
	if !c.Get(KindReference, "GEMM|rep|__reference", &ref) || len(ref) != 1 || ref[0] != 42 {
		t.Fatalf("reference roundtrip failed: %v", ref)
	}
	// Same key under a different kind is a different entry.
	if c.Get(KindResult, "GEMM|rep|__reference", &ref) {
		t.Fatal("kind must partition the key space")
	}

	c.Put(KindFeatures, "graph-corpus|4|1", [][]float64{{1, 2}, {3, 4}})
	var feats [][]float64
	if !c.Get(KindFeatures, "graph-corpus|4|1", &feats) || len(feats) != 2 || feats[1][0] != 3 {
		t.Fatalf("features roundtrip failed: %v", feats)
	}
}

// TestFingerprintChangeMisses is the code-change scenario: an entry written
// by one fingerprint must not be served to another, and each fingerprint
// re-runs into its own entry.
func TestFingerprintChangeMisses(t *testing.T) {
	dir := t.TempDir()
	a := openTest(t, dir, "fp-a")
	b := openTest(t, dir, "fp-b")

	resA := sampleResult()
	a.PutResult("GEMM", "rep", "TC", resA)

	if _, ok := b.GetResult("GEMM", "rep", "TC"); ok {
		t.Fatal("entry from fingerprint a must miss under fingerprint b")
	}
	// The "re-run" stores under b; both fingerprints now coexist.
	resB := sampleResult()
	resB.Work = 99
	b.PutResult("GEMM", "rep", "TC", resB)

	gotA, okA := a.GetResult("GEMM", "rep", "TC")
	gotB, okB := b.GetResult("GEMM", "rep", "TC")
	if !okA || !okB || gotA.Work != 12.5 || gotB.Work != 99 {
		t.Fatalf("fingerprints must not share entries: a=(%v,%+v) b=(%v,%+v)", okA, gotA, okB, gotB)
	}
}

// entryFiles returns the cache's entry files (excluding temp files).
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestCorruptEntryIsMiss covers the robustness contract: truncated or
// garbage entry files are silent misses, never errors, and a re-Put heals
// the entry.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, "fp-a")
	c.PutResult("SpMV", "raefsky3", "TC", sampleResult())

	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want exactly 1 entry file, have %v", files)
	}

	// Truncate mid-JSON.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("SpMV", "raefsky3", "TC"); ok {
		t.Fatal("truncated entry must be a miss")
	}

	// Outright garbage.
	if err := os.WriteFile(files[0], []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("SpMV", "raefsky3", "TC"); ok {
		t.Fatal("garbage entry must be a miss")
	}

	// Valid JSON, wrong payload shape for the target type.
	if err := os.WriteFile(files[0], []byte(`{"fingerprint":"fp-a","kind":"result","key":"SpMV|raefsky3|TC","payload":"zap"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("SpMV", "raefsky3", "TC"); ok {
		t.Fatal("payload type mismatch must be a miss")
	}

	// Re-Put heals it.
	c.PutResult("SpMV", "raefsky3", "TC", sampleResult())
	if _, ok := c.GetResult("SpMV", "raefsky3", "TC"); !ok {
		t.Fatal("re-Put after corruption must hit")
	}
}

// TestEnvelopeKeyVerified plants one key's entry file at another key's path
// (a hash collision stand-in): the envelope's embedded key must reject it.
func TestEnvelopeKeyVerified(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, "fp-a")
	c.PutResult("GEMM", "rep", "TC", sampleResult())

	src := c.path(KindResult, ResultKey("GEMM", "rep", "TC"))
	dst := c.path(KindResult, ResultKey("GEMM", "rep", "CC"))
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("GEMM", "rep", "CC"); ok {
		t.Fatal("entry answering a different key must be rejected")
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, "fp-a")
	for i := 0; i < 4; i++ {
		c.PutResult("GEMM", "rep", "TC", sampleResult())
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
	if files := entryFiles(t, dir); len(files) != 1 {
		t.Fatalf("repeated Put of one key must keep one entry, have %v", files)
	}
}

// TestUnmarshalableValueAbsorbed: NaN/Inf cannot be marshaled to JSON; Put
// must absorb the error (the run still succeeds, just uncached).
func TestUnmarshalableValueAbsorbed(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, "fp-a")
	bad := sampleResult()
	bad.Work = inf()
	c.PutResult("GEMM", "rep", "TC", bad) // must not panic
	if _, ok := c.GetResult("GEMM", "rep", "TC"); ok {
		t.Fatal("unmarshalable value must not produce an entry")
	}
}

func inf() float64 { x := 1.0; return x / (x - 1) }

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Put(KindResult, "k", 1) // no panic
	c.PutResult("GEMM", "rep", "TC", sampleResult())
	if c.Has(KindResult, "k") {
		t.Fatal("nil cache must not report entries")
	}
	var v int
	if c.Get(KindResult, "k", &v) {
		t.Fatal("nil cache must miss")
	}
	if _, ok := c.GetResult("GEMM", "rep", "TC"); ok {
		t.Fatal("nil cache must miss results")
	}
	if c.Dir() != "" {
		t.Fatal("nil cache has no directory")
	}
}

func TestFromEnv(t *testing.T) {
	for _, off := range []string{"off", "OFF", "0", "false", "no"} {
		t.Setenv(Env, off)
		if c := FromEnv(); c != nil {
			t.Fatalf("CUBIE_CACHE=%q must disable the cache, got dir %q", off, c.Dir())
		}
	}

	dir := filepath.Join(t.TempDir(), "explicit")
	t.Setenv(Env, dir)
	c := FromEnv()
	if c == nil || c.Dir() != dir {
		t.Fatalf("CUBIE_CACHE=%q: got %v", dir, c)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("FromEnv must create the directory: %v", err)
	}

	// An uncreatable directory degrades to a disabled cache.
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(Env, filepath.Join(blocker, "sub"))
	if c := FromEnv(); c != nil {
		t.Fatal("uncreatable cache dir must disable the cache")
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Fatalf("fingerprint must be non-empty and stable: %q vs %q", a, b)
	}
}

// TestTruncatedEntrySilentMissAcrossRestart is the mid-write crash
// scenario the serve daemon makes likely: a process dies (or the disk
// fills) while an entry file is being written, leaving a truncated JSON
// envelope on disk. The next startup — a fresh Cache handle over the same
// directory and fingerprint — must treat it as a silent miss, count it as
// corrupt, and let a re-Put heal it. Daemons restart into this state;
// they must never error or serve a partial payload.
func TestTruncatedEntrySilentMissAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	first := openTest(t, dir, "fp-a")
	first.PutResult("GEMV", "small", "TC", sampleResult())

	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want exactly 1 entry file, have %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop the envelope mid-payload, as an interrupted write would.
	if err := os.WriteFile(files[0], data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new handle over the same directory.
	second := openTest(t, dir, "fp-a")
	corrupt := corruptCount()
	if _, ok := second.GetResult("GEMV", "small", "TC"); ok {
		t.Fatal("truncated entry must miss on the next startup")
	}
	if corruptCount() != corrupt+1 {
		t.Fatal("truncated entry must be counted as corrupt")
	}

	// The daemon re-executes and re-Puts; the following startup hits.
	second.PutResult("GEMV", "small", "TC", sampleResult())
	third := openTest(t, dir, "fp-a")
	if got, ok := third.GetResult("GEMV", "small", "TC"); !ok || got.Work != 12.5 {
		t.Fatalf("healed entry must hit on the startup after re-Put: %v %+v", ok, got)
	}
}

func corruptCount() uint64 { return metCorrupt.Value() }
