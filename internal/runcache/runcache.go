// Package runcache is the persistent, content-addressed on-disk cache of
// experiment artifacts. Every workload execution in this reproduction is
// deterministic and bit-pinned (see determinism_test.go at the repo root),
// so a (workload, case, variant) result computed by one process is valid
// for every later process running the same code under the same
// behavior-changing configuration. The harness stores workload.Result
// values here keyed by that triple plus a process fingerprint; a warm
// `cubie all` then re-renders every figure without starting a single
// workload execution.
//
// # Fingerprint
//
// An entry is only served back to a process whose fingerprint matches the
// writer's. The fingerprint hashes (1) the executable image — Go builds
// are reproducible, so the binary's bytes are a content address for the
// code — and (2) the behavior-changing CUBIE_* knobs (currently
// CUBIE_NO_PANEL; CUBIE_WORKERS is excluded because results are
// bit-identical for every worker count). Recompiling changed code or
// toggling a knob therefore misses cleanly and re-runs. When the
// executable cannot be read, runtime/debug build info stands in.
//
// # Robustness
//
// Entries are written atomically (tmp file + rename into place), so a
// crashed or concurrent writer never leaves a half-written entry behind. A
// missing, truncated, corrupt, or fingerprint-mismatched entry is a silent
// miss — the caller just recomputes; the cache never surfaces an error.
//
// # Configuration
//
// The CUBIE_CACHE environment variable controls the cache (FromEnv):
// unset or empty uses the per-user default directory, "off" (also "0",
// "false", "no") disables caching entirely, and any other value is used as
// the cache directory. All Cache methods are nil-receiver safe: a nil
// *Cache reads nothing and writes nothing, so call sites need no guards.
//
// Hits, misses, corrupt entries, writes, and byte volumes are counted in
// internal/metrics, and every disk access is wrapped in an
// internal/trace host span (docs/OBSERVABILITY.md).
package runcache

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Env is the environment variable that selects the cache directory or
// disables the cache ("off").
const Env = "CUBIE_CACHE"

// KindResult is the entry kind under which the harness stores
// workload.Result values.
const KindResult = "result"

// KindReference is the entry kind for CPU-serial reference outputs (the
// Table 6 ground truth), stored as []float64.
const KindReference = "reference"

// KindFeatures is the entry kind for corpus feature matrices (the Figure 10
// PCA inputs), stored as [][]float64.
const KindFeatures = "features"

// Cache metrics (see docs/OBSERVABILITY.md).
var (
	metHits = metrics.NewCounter("cubie_runcache_hits_total",
		"Run-cache lookups served from a valid on-disk entry.")
	metMisses = metrics.NewCounter("cubie_runcache_misses_total",
		"Run-cache lookups that found no usable entry (absent, corrupt, or fingerprint mismatch).")
	metCorrupt = metrics.NewCounter("cubie_runcache_corrupt_total",
		"Run-cache entries dropped because they failed to decode or their fingerprint/key did not match (counted as misses too).")
	metWrites = metrics.NewCounter("cubie_runcache_writes_total",
		"Run-cache entries written (atomic tmp+rename).")
	metWriteErrors = metrics.NewCounter("cubie_runcache_write_errors_total",
		"Run-cache writes abandoned on a marshal or filesystem error (the run still succeeds, uncached).")
	metReadBytes = metrics.NewCounter("cubie_runcache_read_bytes_total",
		"Bytes read from run-cache entry files.")
	metWrittenBytes = metrics.NewCounter("cubie_runcache_written_bytes_total",
		"Bytes written to run-cache entry files.")
)

// Cache is one cache directory bound to one fingerprint. The zero value is
// not usable; nil is (as a disabled cache).
type Cache struct {
	dir string
	fp  string
}

// envelope is the on-disk entry format. Fingerprint, kind, and key are
// stored redundantly with the (hashed) file name so Get can verify an
// entry really answers the question being asked.
type envelope struct {
	Fingerprint string          `json:"fingerprint"`
	Kind        string          `json:"kind"`
	Key         string          `json:"key"`
	Payload     json.RawMessage `json:"payload"`
}

// FromEnv opens the cache selected by CUBIE_CACHE. It returns nil — a
// disabled cache — when the variable is "off" (or "0", "false", "no"), or
// when the directory cannot be created.
func FromEnv() *Cache {
	dir := os.Getenv(Env)
	switch strings.ToLower(dir) {
	case "off", "0", "false", "no":
		return nil
	case "":
		dir = DefaultDir()
	}
	c, err := Open(dir)
	if err != nil {
		return nil
	}
	return c
}

// DefaultDir returns the per-user default cache directory.
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "cubie", "runcache")
}

// Open creates (if needed) and returns the cache rooted at dir, bound to
// the process fingerprint.
func Open(dir string) (*Cache, error) {
	return OpenWithFingerprint(dir, Fingerprint())
}

// OpenWithFingerprint is Open with an explicit fingerprint — tests use it
// to simulate a code change without rebuilding.
func OpenWithFingerprint(dir, fp string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	return &Cache{dir: dir, fp: fp}, nil
}

// Dir returns the cache directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// knobs are the behavior-changing environment variables folded into the
// fingerprint. CUBIE_WORKERS and CUBIE_CACHE itself are deliberately
// absent: neither changes any computed result. CUBIE_SPGEMM_DENSE and
// CUBIE_NO_PACKCACHE are included on the same conservative policy as
// CUBIE_NO_PANEL — all routes are proven bit-identical, but execution-path
// knobs miss cleanly rather than trusting the proof.
var knobs = []string{"CUBIE_NO_PANEL", "CUBIE_NO_PACKCACHE", "CUBIE_SPGEMM_DENSE"}

var (
	fpOnce sync.Once
	fpVal  string
)

// Fingerprint returns the process fingerprint: a hex SHA-256 over the
// executable image and the behavior-changing CUBIE_* knobs, computed once.
func Fingerprint() string {
	fpOnce.Do(func() { fpVal = computeFingerprint() })
	return fpVal
}

func computeFingerprint() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, cpErr := io.Copy(h, f)
			f.Close()
			if cpErr != nil {
				h = sha256.New() // partial hash would be nondeterministic
				writeBuildInfo(h)
			}
		} else {
			writeBuildInfo(h)
		}
	} else {
		writeBuildInfo(h)
	}
	names := append([]string(nil), knobs...)
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(h, "|%s=%s", k, os.Getenv(k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeBuildInfo hashes the module build metadata (module version, VCS
// revision and dirtiness) — the fallback identity when the executable
// image is unreadable.
func writeBuildInfo(w io.Writer) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprint(w, "no-build-info")
		return
	}
	fmt.Fprintf(w, "%s@%s", bi.Main.Path, bi.Main.Version)
	for _, s := range bi.Settings {
		if strings.HasPrefix(s.Key, "vcs.") || s.Key == "-tags" {
			fmt.Fprintf(w, "|%s=%s", s.Key, s.Value)
		}
	}
}

// path returns the entry file for (kind, key): the file name is the
// content address hash(fingerprint | kind | key), so distinct code
// versions never collide and a fingerprint change is an automatic miss.
func (c *Cache) path(kind, key string) string {
	sum := sha256.Sum256([]byte(c.fp + "\x00" + kind + "\x00" + key))
	return filepath.Join(c.dir, kind+"-"+hex.EncodeToString(sum[:12])+".json")
}

// Has reports whether an entry file exists for (kind, key) without reading
// it. It is a cheap scheduling heuristic — the entry may still turn out
// corrupt on Get — used by the harness planner to decide which datasets
// are worth pre-warming.
func (c *Cache) Has(kind, key string) bool {
	if c == nil {
		return false
	}
	_, err := os.Stat(c.path(kind, key))
	return err == nil
}

// Get looks up (kind, key) and decodes the payload into v (a pointer).
// Every failure mode — absent file, truncated or corrupt JSON, fingerprint
// or key mismatch — is a silent miss.
func (c *Cache) Get(kind, key string, v any) bool {
	if c == nil {
		return false
	}
	end := trace.HostSpan("runcache-get", kind+":"+key)
	defer end()
	data, err := os.ReadFile(c.path(kind, key))
	if err != nil {
		metMisses.Inc()
		return false
	}
	metReadBytes.Add(uint64(len(data)))
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Fingerprint != c.fp || e.Kind != kind || e.Key != key {
		metCorrupt.Inc()
		metMisses.Inc()
		return false
	}
	if err := json.Unmarshal(e.Payload, v); err != nil {
		metCorrupt.Inc()
		metMisses.Inc()
		return false
	}
	metHits.Inc()
	return true
}

// Put stores v under (kind, key), atomically: the entry is marshaled to a
// temp file in the cache directory and renamed into place, so readers only
// ever see complete entries. Errors are absorbed (counted, not returned) —
// a cache that cannot write degrades to a cache that misses.
func (c *Cache) Put(kind, key string, v any) {
	if c == nil {
		return
	}
	end := trace.HostSpan("runcache-put", kind+":"+key)
	defer end()
	payload, err := json.Marshal(v)
	if err != nil {
		metWriteErrors.Inc()
		return
	}
	data, err := json.Marshal(envelope{
		Fingerprint: c.fp,
		Kind:        kind,
		Key:         key,
		Payload:     payload,
	})
	if err != nil {
		metWriteErrors.Inc()
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		metWriteErrors.Inc()
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		metWriteErrors.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), c.path(kind, key)); err != nil {
		os.Remove(tmp.Name())
		metWriteErrors.Inc()
		return
	}
	metWrites.Inc()
	metWrittenBytes.Add(uint64(len(data)))
}

// ResultKey renders the canonical key of one workload execution.
func ResultKey(workloadName, caseName, variant string) string {
	return workloadName + "|" + caseName + "|" + variant
}

// floats carries a []float64 payload as base64 of the raw little-endian
// IEEE-754 bits. Compared to a JSON number array this is bit-exact by
// construction (including NaN and ±Inf, which encoding/json rejects) and
// roughly an order of magnitude cheaper to encode and decode — workload
// outputs run to millions of elements, and their strconv formatting cost
// would otherwise dominate a cold run's cache writes and a warm run's
// reads.
type floats []float64

func (f floats) MarshalJSON() ([]byte, error) {
	if f == nil {
		return []byte("null"), nil
	}
	raw := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	out := make([]byte, 2+base64.StdEncoding.EncodedLen(len(raw)))
	out[0] = '"'
	base64.StdEncoding.Encode(out[1:len(out)-1], raw)
	out[len(out)-1] = '"'
	return out, nil
}

func (f *floats) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = nil
		return nil
	}
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("runcache: float payload is not a base64 string")
	}
	raw := make([]byte, base64.StdEncoding.DecodedLen(len(data)-2))
	n, err := base64.StdEncoding.Decode(raw, data[1:len(data)-1])
	if err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("runcache: float payload is %d bytes, not a multiple of 8", n)
	}
	vs := make([]float64, n/8)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	*f = vs
	return nil
}

// storedResult is workload.Result's on-disk shape: identical fields, with
// the (potentially huge) output array in the binary floats encoding.
type storedResult struct {
	Profile    sim.Profile
	Work       float64
	MetricName string
	Output     floats
	InputUtil  float64
	OutputUtil float64
}

// GetResult looks up a cached workload execution.
func (c *Cache) GetResult(workloadName, caseName, variant string) (*workload.Result, bool) {
	var s storedResult
	if !c.Get(KindResult, ResultKey(workloadName, caseName, variant), &s) {
		return nil, false
	}
	return &workload.Result{
		Profile:    s.Profile,
		Work:       s.Work,
		MetricName: s.MetricName,
		Output:     s.Output,
		InputUtil:  s.InputUtil,
		OutputUtil: s.OutputUtil,
	}, true
}

// PutResult stores one workload execution.
func (c *Cache) PutResult(workloadName, caseName, variant string, res *workload.Result) {
	if res == nil {
		return
	}
	c.Put(KindResult, ResultKey(workloadName, caseName, variant), storedResult{
		Profile:    res.Profile,
		Work:       res.Work,
		MetricName: res.MetricName,
		Output:     res.Output,
		InputUtil:  res.InputUtil,
		OutputUtil: res.OutputUtil,
	})
}

// GetFloats looks up a []float64 entry (the reference outputs) stored in
// the binary floats encoding.
func (c *Cache) GetFloats(kind, key string) ([]float64, bool) {
	var f floats
	if !c.Get(kind, key, &f) {
		return nil, false
	}
	return f, true
}

// PutFloats stores a []float64 entry in the binary floats encoding.
func (c *Cache) PutFloats(kind, key string, vs []float64) {
	c.Put(kind, key, floats(vs))
}
