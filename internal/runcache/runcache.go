// Package runcache is the persistent, content-addressed on-disk cache of
// experiment artifacts. Every workload execution in this reproduction is
// deterministic and bit-pinned (see determinism_test.go at the repo root),
// so a (workload, case, variant) result computed by one process is valid
// for every later process running the same code under the same
// behavior-changing configuration. The harness stores workload.Result
// values here keyed by that triple plus a process fingerprint; a warm
// `cubie all` then re-renders every figure without starting a single
// workload execution.
//
// # Fingerprint
//
// An entry is only served back to a process whose fingerprint matches the
// writer's. The fingerprint hashes (1) the executable image — Go builds
// are reproducible, so the binary's bytes are a content address for the
// code — and (2) the behavior-changing CUBIE_* knobs (currently
// CUBIE_NO_PANEL; CUBIE_WORKERS is excluded because results are
// bit-identical for every worker count). Recompiling changed code or
// toggling a knob therefore misses cleanly and re-runs. When the
// executable cannot be read, runtime/debug build info stands in.
//
// # Remote tier
//
// The cache is two-tiered. The local directory is L1; when a remote store
// is attached (AttachRemote, or CUBIE_REMOTE_CACHE via FromEnv) a peer
// daemon's GET/PUT /api/v1/cache/{key} endpoints are L2, addressed by the
// same content address — the entry file name. An L1 miss falls through to
// a remote GET; a verified remote hit is written through to L1 so it is
// served locally from then on. Every Put publishes to the remote store
// after the local write, so any worker's results warm every peer. The
// remote tier inherits the robustness contract: a missing, corrupt,
// truncated, or fingerprint-mismatched remote entry is a silent miss, and
// transient HTTP failures are retried with jittered backoff
// (internal/httputil) before being absorbed as misses.
//
// # Robustness
//
// Entries are written atomically (tmp file + fsync + rename into place),
// so a crashed or concurrent writer never leaves a half-written entry
// behind — the fsync matters: rename is only atomic for data that reached
// the disk, and a torn write replayed across a power cut must decode as a
// miss, not as garbage. A missing, truncated, corrupt, or
// fingerprint-mismatched entry is a silent miss — the caller just
// recomputes; the cache never surfaces an error.
//
// # Configuration
//
// The CUBIE_CACHE environment variable controls the cache (FromEnv):
// unset or empty uses the per-user default directory, "off" (also "0",
// "false", "no") disables caching entirely, and any other value is used as
// the cache directory. CUBIE_REMOTE_CACHE names a peer daemon
// ("host:port" or an http:// base URL) to attach as the remote tier; it
// is ignored when the local cache is off, because L1 is what makes remote
// hits cheap and remote publishes crash-safe. All Cache methods are
// nil-receiver safe: a nil *Cache reads nothing and writes nothing, so
// call sites need no guards.
//
// Hits, misses, corrupt entries, writes, and byte volumes are counted in
// internal/metrics, and every disk access is wrapped in an
// internal/trace host span (docs/OBSERVABILITY.md).
package runcache

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Env is the environment variable that selects the cache directory or
// disables the cache ("off").
const Env = "CUBIE_CACHE"

// EnvRemote is the environment variable naming the remote cache store — a
// peer daemon's base URL or host:port — attached as the L2 tier by
// FromEnv.
const EnvRemote = "CUBIE_REMOTE_CACHE"

// KindResult is the entry kind under which the harness stores
// workload.Result values.
const KindResult = "result"

// KindReference is the entry kind for CPU-serial reference outputs (the
// Table 6 ground truth), stored as []float64.
const KindReference = "reference"

// KindFeatures is the entry kind for corpus feature matrices (the Figure 10
// PCA inputs), stored as [][]float64.
const KindFeatures = "features"

// Cache metrics (see docs/OBSERVABILITY.md).
var (
	metHits = metrics.NewCounter("cubie_runcache_hits_total",
		"Run-cache lookups served from a valid on-disk entry.")
	metMisses = metrics.NewCounter("cubie_runcache_misses_total",
		"Run-cache lookups that found no usable entry (absent, corrupt, or fingerprint mismatch).")
	metCorrupt = metrics.NewCounter("cubie_runcache_corrupt_total",
		"Run-cache entries dropped because they failed to decode or their fingerprint/key did not match (counted as misses too).")
	metWrites = metrics.NewCounter("cubie_runcache_writes_total",
		"Run-cache entries written (atomic tmp+rename).")
	metWriteErrors = metrics.NewCounter("cubie_runcache_write_errors_total",
		"Run-cache writes abandoned on a marshal or filesystem error (the run still succeeds, uncached).")
	metReadBytes = metrics.NewCounter("cubie_runcache_read_bytes_total",
		"Bytes read from run-cache entry files.")
	metWrittenBytes = metrics.NewCounter("cubie_runcache_written_bytes_total",
		"Bytes written to run-cache entry files.")
)

// Cache is one cache directory bound to one fingerprint, with an optional
// remote store behind it. The zero value is not usable; nil is (as a
// disabled cache).
type Cache struct {
	dir    string
	fp     string
	remote *Remote // L2 tier; nil = local only
}

// envelope is the on-disk entry format. Fingerprint, kind, and key are
// stored redundantly with the (hashed) file name so Get can verify an
// entry really answers the question being asked.
type envelope struct {
	Fingerprint string          `json:"fingerprint"`
	Kind        string          `json:"kind"`
	Key         string          `json:"key"`
	Payload     json.RawMessage `json:"payload"`
}

// FromEnv opens the cache selected by CUBIE_CACHE and, when
// CUBIE_REMOTE_CACHE is set, attaches that peer store as the remote tier.
// It returns nil — a disabled cache — when the variable is "off" (or "0",
// "false", "no"), or when the directory cannot be created.
func FromEnv() *Cache {
	dir := os.Getenv(Env)
	switch strings.ToLower(dir) {
	case "off", "0", "false", "no":
		return nil
	case "":
		dir = DefaultDir()
	}
	c, err := Open(dir)
	if err != nil {
		return nil
	}
	if base := os.Getenv(EnvRemote); base != "" {
		c.AttachRemote(NewRemote(base))
	}
	return c
}

// DefaultDir returns the per-user default cache directory.
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "cubie", "runcache")
}

// Open creates (if needed) and returns the cache rooted at dir, bound to
// the process fingerprint.
func Open(dir string) (*Cache, error) {
	return OpenWithFingerprint(dir, Fingerprint())
}

// OpenWithFingerprint is Open with an explicit fingerprint — tests use it
// to simulate a code change without rebuilding.
func OpenWithFingerprint(dir, fp string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	return &Cache{dir: dir, fp: fp}, nil
}

// Dir returns the cache directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// knobs are the behavior-changing environment variables folded into the
// fingerprint. CUBIE_WORKERS and CUBIE_CACHE itself are deliberately
// absent: neither changes any computed result. CUBIE_SPGEMM_DENSE,
// CUBIE_NO_PACKCACHE, and CUBIE_NO_PRESTAGE are included on the same
// conservative policy as CUBIE_NO_PANEL — all routes are proven
// bit-identical, but execution-path knobs miss cleanly rather than trusting
// the proof.
var knobs = []string{"CUBIE_NO_PANEL", "CUBIE_NO_PACKCACHE", "CUBIE_NO_PRESTAGE", "CUBIE_SPGEMM_DENSE"}

var (
	fpOnce sync.Once
	fpVal  string
)

// Fingerprint returns the process fingerprint: a hex SHA-256 over the
// executable image and the behavior-changing CUBIE_* knobs, computed once.
func Fingerprint() string {
	fpOnce.Do(func() { fpVal = computeFingerprint() })
	return fpVal
}

func computeFingerprint() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, cpErr := io.Copy(h, f)
			f.Close()
			if cpErr != nil {
				h = sha256.New() // partial hash would be nondeterministic
				writeBuildInfo(h)
			}
		} else {
			writeBuildInfo(h)
		}
	} else {
		writeBuildInfo(h)
	}
	names := append([]string(nil), knobs...)
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(h, "|%s=%s", k, os.Getenv(k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeBuildInfo hashes the module build metadata (module version, VCS
// revision and dirtiness) — the fallback identity when the executable
// image is unreadable.
func writeBuildInfo(w io.Writer) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprint(w, "no-build-info")
		return
	}
	fmt.Fprintf(w, "%s@%s", bi.Main.Path, bi.Main.Version)
	for _, s := range bi.Settings {
		if strings.HasPrefix(s.Key, "vcs.") || s.Key == "-tags" {
			fmt.Fprintf(w, "|%s=%s", s.Key, s.Value)
		}
	}
}

// EntryName returns the content-addressed entry file name for
// (fingerprint, kind, key): hash(fingerprint | kind | key), so distinct
// code versions never collide and a fingerprint change is an automatic
// miss. The same name addresses the entry in every tier — it is the {key}
// path element of the daemon's GET/PUT /api/v1/cache/{key} endpoints.
func EntryName(fp, kind, key string) string {
	sum := sha256.Sum256([]byte(fp + "\x00" + kind + "\x00" + key))
	return kind + "-" + hex.EncodeToString(sum[:12]) + ".json"
}

// entryNameRe is the shape of every name EntryName can produce. The
// daemon's cache store validates inbound names against it so a request
// path can never escape the cache directory or name a non-entry file.
var entryNameRe = regexp.MustCompile(`^[a-z]+-[0-9a-f]{24}\.json$`)

// ValidEntryName reports whether name is a well-formed entry file name.
func ValidEntryName(name string) bool {
	return entryNameRe.MatchString(name)
}

// path returns the local entry file for (kind, key).
func (c *Cache) path(kind, key string) string {
	return filepath.Join(c.dir, EntryName(c.fp, kind, key))
}

// Has reports whether an entry file exists for (kind, key) without reading
// it. It is a cheap scheduling heuristic — the entry may still turn out
// corrupt on Get — used by the harness planner to decide which datasets
// are worth pre-warming.
func (c *Cache) Has(kind, key string) bool {
	if c == nil {
		return false
	}
	_, err := os.Stat(c.path(kind, key))
	return err == nil
}

// Get looks up (kind, key) in the local tier first, then the remote store,
// and decodes the payload into v (a pointer). Every failure mode — absent
// file, truncated or corrupt JSON, fingerprint or key mismatch, in either
// tier — is a silent miss; a verified remote hit is written through to the
// local tier. cubie_runcache_misses_total counts overall misses (no tier
// could answer), matching its pre-remote meaning.
func (c *Cache) Get(kind, key string, v any) bool {
	if c == nil {
		return false
	}
	end := trace.HostSpan("runcache-get", kind+":"+key)
	defer end()
	name := EntryName(c.fp, kind, key)
	if data, err := os.ReadFile(filepath.Join(c.dir, name)); err == nil {
		metReadBytes.Add(uint64(len(data)))
		if c.decodeEntry(data, kind, key, v) {
			metHits.Inc()
			return true
		}
		metCorrupt.Inc()
		// Fall through: a good peer copy can heal a locally corrupt entry.
	}
	if data, ok := c.remoteGet(name); ok {
		if c.decodeEntry(data, kind, key, v) {
			metRemoteHits.Inc()
			// Write-through so the next lookup is local. The remote bytes
			// were verified above, so L1 only ever gains valid entries.
			if err := c.writeEntryFile(name, data); err == nil {
				metWrites.Inc()
				metWrittenBytes.Add(uint64(len(data)))
			} else {
				metWriteErrors.Inc()
			}
			return true
		}
		// The store handed us bytes that do not answer (kind, key) for our
		// fingerprint: corrupt, truncated, or a mismatched entry. Silent miss.
		metCorrupt.Inc()
		metRemoteMisses.Inc()
	}
	metMisses.Inc()
	return false
}

// decodeEntry verifies one wire/disk entry really answers (kind, key) for
// this cache's fingerprint and decodes its payload into v.
func (c *Cache) decodeEntry(data []byte, kind, key string, v any) bool {
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Fingerprint != c.fp || e.Kind != kind || e.Key != key {
		return false
	}
	return json.Unmarshal(e.Payload, v) == nil
}

// Put stores v under (kind, key), atomically, then publishes the entry to
// the remote store when one is attached. Errors are absorbed (counted,
// not returned) — a cache that cannot write degrades to a cache that
// misses, and an unreachable remote store degrades to a local-only cache.
func (c *Cache) Put(kind, key string, v any) {
	if c == nil {
		return
	}
	end := trace.HostSpan("runcache-put", kind+":"+key)
	defer end()
	payload, err := json.Marshal(v)
	if err != nil {
		metWriteErrors.Inc()
		return
	}
	data, err := json.Marshal(envelope{
		Fingerprint: c.fp,
		Kind:        kind,
		Key:         key,
		Payload:     payload,
	})
	if err != nil {
		metWriteErrors.Inc()
		return
	}
	name := EntryName(c.fp, kind, key)
	if err := c.writeEntryFile(name, data); err != nil {
		metWriteErrors.Inc()
		return
	}
	metWrites.Inc()
	metWrittenBytes.Add(uint64(len(data)))
	c.remotePut(name, data)
}

// writeEntryFile lands one complete entry at dir/name atomically: temp
// file, write, fsync, rename. The fsync before the rename is what makes
// the rename a real commit point — without it a power cut can replay a
// renamed-but-torn entry, which would then have to be caught (and is, by
// decodeEntry) rather than prevented.
func (c *Cache) writeEntryFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		if serr != nil {
			return serr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadEntry returns the raw bytes of one locally stored entry by its
// content-addressed name — the daemon's GET /api/v1/cache/{key} read path.
// The name is validated; the error is os.IsNotExist-able for absent
// entries.
func (c *Cache) ReadEntry(name string) ([]byte, error) {
	if c == nil {
		return nil, os.ErrNotExist
	}
	if !ValidEntryName(name) {
		return nil, fmt.Errorf("%w: invalid entry name %q", errBadEntry, name)
	}
	data, err := os.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		return nil, err
	}
	metReadBytes.Add(uint64(len(data)))
	return data, nil
}

// errBadEntry marks WriteEntry/ReadEntry failures caused by the caller's
// bytes or name, as opposed to local I/O trouble. IsBadEntry exposes it.
var errBadEntry = fmt.Errorf("runcache: bad entry")

// IsBadEntry reports whether err means the submitted entry itself was
// invalid (bad name, not an envelope, or body/name address mismatch) —
// the daemon maps these to 400 and real storage errors to 500.
func IsBadEntry(err error) bool {
	return errors.Is(err, errBadEntry)
}

// WriteEntry stores one wire-format entry under its content-addressed
// name — the daemon's PUT /api/v1/cache/{key} write path. The body must
// be a complete envelope whose computed address matches name: the store
// re-derives EntryName from the envelope's own fingerprint/kind/key and
// refuses a mismatch, so a confused or malicious writer can never park
// bytes under someone else's address. The store does NOT require the
// envelope's fingerprint to match this process's — a daemon serves
// entries for every code version its peers run; readers verify the
// fingerprint on Get.
func (c *Cache) WriteEntry(name string, data []byte) error {
	if c == nil {
		return fmt.Errorf("runcache: no cache attached")
	}
	if !ValidEntryName(name) {
		return fmt.Errorf("%w: invalid entry name %q", errBadEntry, name)
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return fmt.Errorf("%w: not an entry envelope: %v", errBadEntry, err)
	}
	if EntryName(e.Fingerprint, e.Kind, e.Key) != name {
		return fmt.Errorf("%w: body addresses %s, not %s",
			errBadEntry, EntryName(e.Fingerprint, e.Kind, e.Key), name)
	}
	if err := c.writeEntryFile(name, data); err != nil {
		metWriteErrors.Inc()
		return err
	}
	metWrites.Inc()
	metWrittenBytes.Add(uint64(len(data)))
	return nil
}

// ResultKey renders the canonical key of one workload execution.
func ResultKey(workloadName, caseName, variant string) string {
	return workloadName + "|" + caseName + "|" + variant
}

// floats carries a []float64 payload as base64 of the raw little-endian
// IEEE-754 bits. Compared to a JSON number array this is bit-exact by
// construction (including NaN and ±Inf, which encoding/json rejects) and
// roughly an order of magnitude cheaper to encode and decode — workload
// outputs run to millions of elements, and their strconv formatting cost
// would otherwise dominate a cold run's cache writes and a warm run's
// reads.
type floats []float64

func (f floats) MarshalJSON() ([]byte, error) {
	if f == nil {
		return []byte("null"), nil
	}
	raw := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	out := make([]byte, 2+base64.StdEncoding.EncodedLen(len(raw)))
	out[0] = '"'
	base64.StdEncoding.Encode(out[1:len(out)-1], raw)
	out[len(out)-1] = '"'
	return out, nil
}

func (f *floats) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = nil
		return nil
	}
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("runcache: float payload is not a base64 string")
	}
	raw := make([]byte, base64.StdEncoding.DecodedLen(len(data)-2))
	n, err := base64.StdEncoding.Decode(raw, data[1:len(data)-1])
	if err != nil {
		return err
	}
	if n%8 != 0 {
		return fmt.Errorf("runcache: float payload is %d bytes, not a multiple of 8", n)
	}
	vs := make([]float64, n/8)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	*f = vs
	return nil
}

// storedResult is workload.Result's on-disk shape: identical fields, with
// the (potentially huge) output array in the binary floats encoding.
type storedResult struct {
	Profile    sim.Profile
	Work       float64
	MetricName string
	Output     floats
	InputUtil  float64
	OutputUtil float64
}

// GetResult looks up a cached workload execution.
func (c *Cache) GetResult(workloadName, caseName, variant string) (*workload.Result, bool) {
	var s storedResult
	if !c.Get(KindResult, ResultKey(workloadName, caseName, variant), &s) {
		return nil, false
	}
	return &workload.Result{
		Profile:    s.Profile,
		Work:       s.Work,
		MetricName: s.MetricName,
		Output:     s.Output,
		InputUtil:  s.InputUtil,
		OutputUtil: s.OutputUtil,
	}, true
}

// PutResult stores one workload execution.
func (c *Cache) PutResult(workloadName, caseName, variant string, res *workload.Result) {
	if res == nil {
		return
	}
	c.Put(KindResult, ResultKey(workloadName, caseName, variant), storedResult{
		Profile:    res.Profile,
		Work:       res.Work,
		MetricName: res.MetricName,
		Output:     res.Output,
		InputUtil:  res.InputUtil,
		OutputUtil: res.OutputUtil,
	})
}

// GetFloats looks up a []float64 entry (the reference outputs) stored in
// the binary floats encoding.
func (c *Cache) GetFloats(kind, key string) ([]float64, bool) {
	var f floats
	if !c.Get(kind, key, &f) {
		return nil, false
	}
	return f, true
}

// PutFloats stores a []float64 entry in the binary floats encoding.
func (c *Cache) PutFloats(kind, key string, vs []float64) {
	c.Put(kind, key, floats(vs))
}
