package core

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestSuiteDeterminism runs every workload variant twice and requires
// bit-identical outputs and identical profiles — the property that makes
// the whole evaluation reproducible.
func TestSuiteDeterminism(t *testing.T) {
	a, b := NewSuite(), NewSuite()
	for i, w := range a.Workloads() {
		w2 := b.Workloads()[i]
		c := w.Representative()
		for _, v := range w.Variants() {
			r1, err := w.Run(c, v)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name(), v, err)
			}
			r2, err := w2.Run(c, v)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name(), v, err)
			}
			if len(r1.Output) != len(r2.Output) {
				t.Fatalf("%s/%s: output lengths differ", w.Name(), v)
			}
			for j := range r1.Output {
				if r1.Output[j] != r2.Output[j] {
					t.Fatalf("%s/%s: nondeterministic output at %d", w.Name(), v, j)
				}
			}
			if r1.Profile != r2.Profile {
				t.Fatalf("%s/%s: nondeterministic profile", w.Name(), v)
			}
			if r1.Work != r2.Work {
				t.Fatalf("%s/%s: nondeterministic work", w.Name(), v)
			}
		}
	}
}

// TestAllProfilesValidEverywhere validates every profile of the full grid
// and simulates it on every device without panics or degenerate reports.
func TestAllProfilesValidEverywhere(t *testing.T) {
	s := NewSuite()
	for _, w := range s.Workloads() {
		for _, c := range w.Cases() {
			for _, v := range w.Variants() {
				res, err := w.Run(c, v)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", w.Name(), c.Name, v, err)
				}
				if err := res.Profile.Validate(); err != nil {
					t.Fatalf("%s/%s/%s: %v", w.Name(), c.Name, v, err)
				}
				if res.Work <= 0 {
					t.Fatalf("%s/%s/%s: non-positive work", w.Name(), c.Name, v)
				}
				for _, spec := range device.All() {
					r := sim.Run(spec, res.Profile)
					if !(r.Time > 0) || math.IsInf(r.Time, 0) {
						t.Fatalf("%s/%s/%s on %s: time %v",
							w.Name(), c.Name, v, spec.Name, r.Time)
					}
					if r.AvgPower < spec.IdleWatts || r.AvgPower > spec.TDPWatts {
						t.Fatalf("%s/%s/%s on %s: power %v outside [idle, TDP]",
							w.Name(), c.Name, v, spec.Name, r.AvgPower)
					}
				}
			}
		}
	}
}

// TestVariantsIssueTheRightUnits pins the unit split of Section 5.2: TC
// variants put their FP work on the tensor (or bit) unit, CC/CC-E/baseline
// on the vector unit.
func TestVariantsIssueTheRightUnits(t *testing.T) {
	s := NewSuite()
	for _, w := range s.Workloads() {
		for _, v := range w.Variants() {
			res, err := w.Run(w.Representative(), v)
			if err != nil {
				t.Fatal(err)
			}
			p := res.Profile
			switch v {
			case workload.TC:
				if p.TensorFLOPs == 0 && p.BitOps == 0 {
					t.Errorf("%s/TC issues no MMU work", w.Name())
				}
				if p.VectorFLOPs > p.TensorFLOPs && p.BitOps == 0 {
					t.Errorf("%s/TC mostly on the vector unit", w.Name())
				}
			default:
				if p.TensorFLOPs != 0 || p.BitOps != 0 {
					t.Errorf("%s/%s issues MMU work", w.Name(), v)
				}
			}
		}
	}
}

// TestWorkIsVariantInvariant pins that the essential-work metric (the
// numerator of every throughput figure) is identical across variants — the
// variants do different amounts of *issued* work, but the useful work is a
// property of the case.
func TestWorkIsVariantInvariant(t *testing.T) {
	s := NewSuite()
	for _, w := range s.Workloads() {
		var work float64
		for i, v := range w.Variants() {
			res, err := w.Run(w.Representative(), v)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				work = res.Work
				continue
			}
			if res.Work != work {
				t.Errorf("%s: variant %s reports work %v, others %v",
					w.Name(), v, res.Work, work)
			}
		}
	}
}
