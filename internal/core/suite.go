// Package core assembles the Cubie benchmark suite: the ten MMU-optimized
// workloads of Table 2, their four-quadrant utilization categorization
// (Section 4, Figure 2), the Berkeley-dwarf coverage comparison (Table 7),
// and the paper's nine key observations.
package core

import (
	"fmt"

	"repro/internal/kernels/bfs"
	"repro/internal/kernels/fft"
	"repro/internal/kernels/gemm"
	"repro/internal/kernels/gemv"
	"repro/internal/kernels/pic"
	"repro/internal/kernels/reduction"
	"repro/internal/kernels/scan"
	"repro/internal/kernels/spgemm"
	"repro/internal/kernels/spmv"
	"repro/internal/kernels/stencil"
	"repro/internal/workload"
)

// Suite holds instantiated workloads keyed by Table 2 name, in paper order.
type Suite struct {
	workloads []workload.Workload
}

// NewSuite instantiates all ten Cubie workloads in Table 2 order.
func NewSuite() *Suite {
	return &Suite{workloads: []workload.Workload{
		gemm.New(),
		pic.New(),
		fft.New(),
		stencil.New(),
		scan.New(),
		reduction.New(),
		bfs.New(),
		gemv.New(),
		spmv.New(),
		spgemm.New(),
	}}
}

// Workloads returns the suite in Table 2 order.
func (s *Suite) Workloads() []workload.Workload { return s.workloads }

// ByName returns the named workload or an error.
func (s *Suite) ByName(name string) (workload.Workload, error) {
	for _, w := range s.workloads {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("core: unknown workload %q", name)
}

// ByQuadrant returns the workloads of one Figure 2 quadrant, in suite order.
func (s *Suite) ByQuadrant(q int) []workload.Workload {
	var out []workload.Workload
	for _, w := range s.workloads {
		if w.Quadrant() == q {
			out = append(out, w)
		}
	}
	return out
}

// QuadrantInfo describes one quadrant of the Figure 2 categorization.
type QuadrantInfo struct {
	Quadrant    int
	InputFull   bool
	OutputFull  bool
	Description string
	Workloads   []string
}

// Quadrants returns the Figure 2 categorization: input/output matrix
// utilization of the MMA pattern, full (●) or partial (○).
func (s *Suite) Quadrants() []QuadrantInfo {
	infos := []QuadrantInfo{
		{Quadrant: 1, InputFull: true, OutputFull: true,
			Description: "full input and output; differ in which operand is reused"},
		{Quadrant: 2, InputFull: false, OutputFull: true,
			Description: "constant 0/1 operand matrices, full output"},
		{Quadrant: 3, InputFull: false, OutputFull: false,
			Description: "constant operands, single row/element of output used"},
		{Quadrant: 4, InputFull: true, OutputFull: false,
			Description: "full inputs, diagonal or partial output extracted"},
	}
	for i := range infos {
		for _, w := range s.ByQuadrant(infos[i].Quadrant) {
			infos[i].Workloads = append(infos[i].Workloads, w.Name())
		}
	}
	return infos
}

// DwarfRow is one row of the Table 7 Berkeley-dwarf coverage comparison.
type DwarfRow struct {
	Dwarf                string
	Rodinia, SHOC, Cubie int
}

// DwarfCoverage returns Table 7's workload-count-per-dwarf comparison.
// Rodinia and SHOC counts are from the table; Cubie counts are derived from
// the suite itself.
func (s *Suite) DwarfCoverage() []DwarfRow {
	published := []struct {
		dwarf         string
		rodinia, shoc int
	}{
		{"Dense linear algebra", 3, 2},
		{"Sparse linear algebra", 0, 0},
		{"Spectral methods", 0, 1},
		{"N-Body", 0, 1},
		{"Structured grids", 4, 1},
		{"Unstructured grids", 2, 0},
		{"MapReduce", 0, 3},
		{"Graph traversal", 2, 0},
		{"Dynamic programming", 1, 0},
	}
	counts := map[string]int{}
	for _, w := range s.workloads {
		counts[w.Dwarf()]++
	}
	var rows []DwarfRow
	for _, p := range published {
		rows = append(rows, DwarfRow{
			Dwarf:   p.dwarf,
			Rodinia: p.rodinia,
			SHOC:    p.shoc,
			Cubie:   counts[p.dwarf],
		})
	}
	return rows
}

// DwarfsCovered counts the dwarfs with at least one Cubie workload — seven,
// versus five each for Rodinia and SHOC (Table 7).
func (s *Suite) DwarfsCovered() int {
	n := 0
	for _, r := range s.DwarfCoverage() {
		if r.Cubie > 0 {
			n++
		}
	}
	return n
}

// Observation is one of the paper's nine key observations.
type Observation struct {
	ID        int
	Statement string
	Sections  string // where the paper derives it
}

// Observations returns the paper's nine key observations (Section 11,
// Table 1).
func Observations() []Observation {
	return []Observation{
		{1, "To exploit MMUs, non-GEMM algorithms in scientific computing often have to modify data structures and reorganize algorithms.", "§3"},
		{2, "Scientific kernels may not fully utilize the dense input and output matrices of MMUs, exhibiting distinct utilization patterns in four quadrants.", "§4"},
		{3, "MMU-accelerated workloads consistently outperform vector baselines in most cases, and exhibit performance portability across Ampere, Hopper, and Blackwell.", "§6.1"},
		{4, "Removing the impact of data structures and algorithms, MMUs account for 10% to 200% of the performance gains.", "§6.2"},
		{5, "Generally, the redundant computations introduced to enable MMU-friendly patterns should not be removed; the only exception is SpMV (up to 20% gain).", "§6.3"},
		{6, "MMUs exhibit similar power consumption to vector units but complete computations significantly faster, resulting in 30% to 80% lower geomean EDP.", "§7"},
		{7, "MMUs and vector units provide comparable numerical accuracy, but algorithmic transformations for MMU utilization can induce significant numerical deviations.", "§8"},
		{8, "Adapting data layouts and algorithms for MMUs fundamentally alters memory access patterns, often yielding more regular access and significant gains.", "§9"},
		{9, "The Cubie benchmark suite encompasses a wide range of behaviors in scientific programs, positioning it as an effective tool for assessing modern processors.", "§10"},
	}
}

// Table1Row maps one researcher concern to its audiences and observations
// (the paper's Table 1).
type Table1Row struct {
	Concern      string
	Architecture bool
	Algorithm    bool
	Application  bool
	Observations []int
}

// Table1 returns the paper's concern-to-observation mapping.
func Table1() []Table1Row {
	return []Table1Row{
		{"Compute Patterns", true, true, false, []int{1, 2}},
		{"Performance Portability", false, true, true, []int{3}},
		{"Necessity of MMUs", true, true, false, []int{4, 5}},
		{"Power and Energy", true, false, true, []int{6}},
		{"Numerical Precision", true, true, true, []int{7}},
		{"Memory", true, true, false, []int{8}},
		{"Workload Diversity", true, false, true, []int{9}},
	}
}
