package core

import (
	"testing"

	"repro/internal/workload"
)

func TestSuiteHasTenWorkloadsInTable2Order(t *testing.T) {
	s := NewSuite()
	want := []string{"GEMM", "PiC", "FFT", "Stencil", "Scan", "Reduction",
		"BFS", "GEMV", "SpMV", "SpGEMM"}
	ws := s.Workloads()
	if len(ws) != len(want) {
		t.Fatalf("suite has %d workloads, want %d", len(ws), len(want))
	}
	for i, w := range ws {
		if w.Name() != want[i] {
			t.Errorf("position %d: %s, want %s", i, w.Name(), want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s := NewSuite()
	w, err := s.ByName("SpMV")
	if err != nil || w.Name() != "SpMV" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := s.ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestQuadrantAssignment(t *testing.T) {
	// Figure 2: QI = GEMM, PiC, FFT, Stencil; QII = Scan; QIII = Reduction;
	// QIV = BFS, GEMV, SpMV, SpGEMM.
	s := NewSuite()
	want := map[int][]string{
		1: {"GEMM", "PiC", "FFT", "Stencil"},
		2: {"Scan"},
		3: {"Reduction"},
		4: {"BFS", "GEMV", "SpMV", "SpGEMM"},
	}
	for q, names := range want {
		ws := s.ByQuadrant(q)
		if len(ws) != len(names) {
			t.Fatalf("quadrant %d has %d workloads, want %d", q, len(ws), len(names))
		}
		got := map[string]bool{}
		for _, w := range ws {
			got[w.Name()] = true
		}
		for _, n := range names {
			if !got[n] {
				t.Errorf("quadrant %d missing %s", q, n)
			}
		}
	}
}

func TestQuadrantsMetadata(t *testing.T) {
	s := NewSuite()
	qs := s.Quadrants()
	if len(qs) != 4 {
		t.Fatalf("%d quadrants", len(qs))
	}
	// Figure 2's full/partial pattern: (●,●), (○,●), (○,○), (●,○).
	wantIn := []bool{true, false, false, true}
	wantOut := []bool{true, true, false, false}
	for i, q := range qs {
		if q.InputFull != wantIn[i] || q.OutputFull != wantOut[i] {
			t.Errorf("quadrant %d: in/out = %v/%v", q.Quadrant, q.InputFull, q.OutputFull)
		}
		if len(q.Workloads) == 0 {
			t.Errorf("quadrant %d empty", q.Quadrant)
		}
	}
}

func TestMeasuredUtilizationMatchesQuadrant(t *testing.T) {
	// Observation 2 mechanics: the measured MMA utilization of each TC
	// variant must be consistent with its quadrant's full/partial claims.
	s := NewSuite()
	for _, w := range s.Workloads() {
		res, err := w.Run(w.Representative(), workload.TC)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		switch w.Quadrant() {
		case 1:
			if res.InputUtil < 0.7 || res.OutputUtil < 0.7 {
				t.Errorf("%s (QI): utilization in=%v out=%v, want full",
					w.Name(), res.InputUtil, res.OutputUtil)
			}
		case 2:
			if res.InputUtil >= 0.7 || res.OutputUtil < 0.7 {
				t.Errorf("%s (QII): utilization in=%v out=%v, want partial/full",
					w.Name(), res.InputUtil, res.OutputUtil)
			}
		case 3:
			if res.InputUtil >= 0.7 || res.OutputUtil >= 0.7 {
				t.Errorf("%s (QIII): utilization in=%v out=%v, want partial/partial",
					w.Name(), res.InputUtil, res.OutputUtil)
			}
		case 4:
			if res.OutputUtil >= 0.7 {
				t.Errorf("%s (QIV): output utilization %v, want partial",
					w.Name(), res.OutputUtil)
			}
		}
	}
}

func TestAllWorkloadsHaveFiveCases(t *testing.T) {
	for _, w := range NewSuite().Workloads() {
		if len(w.Cases()) != 5 {
			t.Errorf("%s: %d cases, want 5 (Table 2)", w.Name(), len(w.Cases()))
		}
		if w.Repeats() < 1 {
			t.Errorf("%s: repeats %d", w.Name(), w.Repeats())
		}
		rep := w.Representative()
		if _, err := workload.FindCase(w, rep.Name); err != nil {
			t.Errorf("%s: representative %q not among cases", w.Name(), rep.Name)
		}
	}
}

func TestVariantCoverage(t *testing.T) {
	s := NewSuite()
	for _, w := range s.Workloads() {
		if !workload.HasVariant(w, workload.TC) || !workload.HasVariant(w, workload.CC) {
			t.Errorf("%s: must implement TC and CC", w.Name())
		}
		hasBaseline := workload.HasVariant(w, workload.Baseline)
		if w.Name() == "PiC" {
			if hasBaseline {
				t.Error("PiC must not have a baseline (Table 2)")
			}
		} else if !hasBaseline {
			t.Errorf("%s: missing baseline", w.Name())
		}
		// CC-E exists exactly for the Quadrant II–IV workloads.
		hasCCE := workload.HasVariant(w, workload.CCE)
		if w.Quadrant() == 1 && hasCCE {
			t.Errorf("%s (QI): CC-E should be folded into CC", w.Name())
		}
		if w.Quadrant() != 1 && !hasCCE {
			t.Errorf("%s (Q%d): missing CC-E", w.Name(), w.Quadrant())
		}
	}
}

func TestDwarfCoverage(t *testing.T) {
	s := NewSuite()
	rows := s.DwarfCoverage()
	if len(rows) != 9 {
		t.Fatalf("%d dwarf rows, want 9", len(rows))
	}
	want := map[string]int{ // Table 7's Cubie column
		"Dense linear algebra":  2,
		"Sparse linear algebra": 2,
		"Spectral methods":      1,
		"N-Body":                1,
		"Structured grids":      1,
		"Unstructured grids":    0,
		"MapReduce":             2,
		"Graph traversal":       1,
		"Dynamic programming":   0,
	}
	for _, r := range rows {
		if r.Cubie != want[r.Dwarf] {
			t.Errorf("%s: Cubie count %d, want %d", r.Dwarf, r.Cubie, want[r.Dwarf])
		}
	}
	if s.DwarfsCovered() != 7 {
		t.Errorf("Cubie covers %d dwarfs, want 7 (Table 7)", s.DwarfsCovered())
	}
}

func TestObservationsAndTable1(t *testing.T) {
	obs := Observations()
	if len(obs) != 9 {
		t.Fatalf("%d observations, want 9", len(obs))
	}
	for i, o := range obs {
		if o.ID != i+1 || o.Statement == "" || o.Sections == "" {
			t.Errorf("observation %d malformed", i+1)
		}
	}
	t1 := Table1()
	if len(t1) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(t1))
	}
	seen := map[int]bool{}
	for _, r := range t1 {
		for _, id := range r.Observations {
			if id < 1 || id > 9 {
				t.Errorf("row %q references invalid observation %d", r.Concern, id)
			}
			seen[id] = true
		}
	}
	for id := 1; id <= 9; id++ {
		if !seen[id] {
			t.Errorf("observation %d not mapped in Table 1", id)
		}
	}
}
