// Package prestage is the process-wide switch for the prestaged sparse
// operand slabs: the prepacked DASP A panels + flat B-gather indices that
// sparse.ToDASP emits at layout-build time, and the paired-product operand
// slabs SpGEMM stages once per dataset through internal/packcache. With the
// slabs active the sparse hot loops stop re-packing their static operands
// on every call — SpMV only gathers the B side from x, SpGEMM runs
// DMMABatch straight off the slab.
//
// CUBIE_NO_PRESTAGE=1 (or SetEnabled(false)) bypasses the slabs: the
// kernels fall back to the exact per-call staging loops they ran before.
// The slab bytes are identical to what the per-call staging produced, so
// results are bit-identical in both modes; the knob exists so the
// equivalence stays testable end to end, and it is folded into the
// runcache fingerprint like CUBIE_NO_PANEL and CUBIE_NO_PACKCACHE.
package prestage

import (
	"os"
	"sync/atomic"

	"repro/internal/metrics"
)

// DisableEnv is the environment variable that, when set to "1", bypasses
// the prestaged operand slabs: kernels stage per call instead.
const DisableEnv = "CUBIE_NO_PRESTAGE"

var disabled atomic.Bool

func init() {
	disabled.Store(os.Getenv(DisableEnv) == "1")
}

// SetEnabled enables or disables the prestaged slabs and reports whether
// they were previously enabled. Tests use it to pin the prestaged and
// per-call staging paths bit-identical without re-execing the process.
func SetEnabled(on bool) (was bool) {
	return !disabled.Swap(!on)
}

// Enabled reports whether the prestaged operand slabs are consumed.
func Enabled() bool { return !disabled.Load() }

// Slab metrics (documented in docs/OBSERVABILITY.md). Builders count every
// slab they emit — the DASP layout builder counts unconditionally (the
// slab is part of the layout), the SpGEMM pair-slab builder counts once
// per pack (cache hits in packcache do not rebuild).
var (
	metSlabs = metrics.NewCounter("cubie_prestage_slabs_total",
		"Prestaged sparse operand slabs built (DASP A-panel/B-index slabs and SpGEMM pair slabs).")
	metBytes = metrics.NewCounter("cubie_prestage_bytes_total",
		"Total bytes of prestaged sparse operand slabs built.")
)

// CountSlab records one built slab of the given byte size.
func CountSlab(bytes int) {
	metSlabs.Inc()
	metBytes.Add(uint64(bytes))
}
