// Package lcg implements the Lehmer linear congruential generator used by
// the LINPACK benchmark to initialize floating-point inputs. The paper
// (Section 8) generates pseudo-random FP64 values distributed within (-2, 2)
// with this method; reproducing the exact generator keeps the numerical
// accuracy experiments deterministic across runs and platforms.
package lcg

// Parameters of the classic Lehmer / Park–Miller minimal standard generator
// (multiplier 16807 modulo the Mersenne prime 2^31-1), the same family used
// by LINPACK's matgen.
const (
	multiplier = 16807
	modulus    = 2147483647 // 2^31 - 1
)

// Generator is a deterministic Lehmer linear congruential pseudo-random
// number generator. The zero value is not valid; use New.
type Generator struct {
	state int64
}

// New returns a Generator seeded with seed. Seeds are folded into the valid
// range [1, modulus-1]; a seed of 0 is mapped to 1 so the sequence never
// collapses to the fixed point at zero.
func New(seed int64) *Generator {
	s := seed % modulus
	if s < 0 {
		s += modulus
	}
	if s == 0 {
		s = 1
	}
	return &Generator{state: s}
}

// Next advances the generator and returns the raw state in [1, modulus-1].
func (g *Generator) Next() int64 {
	g.state = (g.state * multiplier) % modulus
	return g.state
}

// Uniform returns a float64 uniformly distributed in (0, 1).
func (g *Generator) Uniform() float64 {
	return float64(g.Next()) / float64(modulus)
}

// Symmetric returns a float64 uniformly distributed in (-2, 2), the input
// distribution the paper uses for all pseudo-random kernel inputs.
func (g *Generator) Symmetric() float64 {
	return 4*g.Uniform() - 2
}

// Intn returns a non-negative pseudo-random integer in [0, n). It panics if
// n <= 0.
func (g *Generator) Intn(n int) int {
	if n <= 0 {
		panic("lcg: Intn called with non-positive n")
	}
	return int(g.Next() % int64(n))
}

// Fill fills dst with values from Symmetric.
func (g *Generator) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.Symmetric()
	}
}

// FillUniform fills dst with values from Uniform.
func (g *Generator) FillUniform(dst []float64) {
	for i := range dst {
		dst[i] = g.Uniform()
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *Generator) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
