package lcg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedFolding(t *testing.T) {
	cases := []struct {
		seed int64
		name string
	}{
		{0, "zero"},
		{-1, "negative"},
		{modulus, "modulus"},
		{-modulus, "negative modulus"},
	}
	for _, c := range cases {
		g := New(c.seed)
		if g.state <= 0 || g.state >= modulus {
			t.Errorf("seed %s: state %d outside [1, m-1]", c.name, g.state)
		}
		v := g.Next()
		if v <= 0 || v >= modulus {
			t.Errorf("seed %s: Next %d outside [1, m-1]", c.name, v)
		}
	}
}

func TestKnownSequence(t *testing.T) {
	// Park–Miller with seed 1: after 10000 steps the state must be
	// 1043618065 (the classic validation value from their CACM paper).
	g := New(1)
	var v int64
	for i := 0; i < 10000; i++ {
		v = g.Next()
	}
	if v != 1043618065 {
		t.Fatalf("state after 10000 steps = %d, want 1043618065", v)
	}
}

func TestSymmetricRange(t *testing.T) {
	g := New(7)
	for i := 0; i < 100000; i++ {
		v := g.Symmetric()
		if v <= -2 || v >= 2 {
			t.Fatalf("Symmetric returned %v outside (-2,2)", v)
		}
	}
}

func TestSymmetricMoments(t *testing.T) {
	g := New(12345)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Symmetric()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	// Uniform(-2,2): mean 0, variance 16/12 ≈ 1.333.
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-16.0/12.0) > 0.02 {
		t.Errorf("variance = %v, want ≈1.333", variance)
	}
}

func TestUniformRange(t *testing.T) {
	g := New(3)
	for i := 0; i < 10000; i++ {
		v := g.Uniform()
		if v <= 0 || v >= 1 {
			t.Fatalf("Uniform returned %v outside (0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	g := New(99)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := g.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFill(t *testing.T) {
	g := New(11)
	buf := make([]float64, 64)
	g.Fill(buf)
	for i, v := range buf {
		if v == 0 {
			t.Errorf("Fill left index %d zero (probability ~0)", i)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		p := g.Perm(64)
		seen := make([]bool, 64)
		for _, v := range p {
			if v < 0 || v >= 64 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 matched %d/100 draws", same)
	}
}

func BenchmarkSymmetric(b *testing.B) {
	g := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = g.Symmetric()
	}
	_ = sink
}
