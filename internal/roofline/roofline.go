// Package roofline implements the cache-aware roofline model of Section 9
// (Figure 9): DRAM- and L1-bandwidth ceilings together with the FP64 peak
// lines of the tensor and CUDA cores, and the (arithmetic intensity,
// achieved performance) points of every workload variant.
package roofline

import (
	"math"

	"repro/internal/device"
	"repro/internal/sim"
)

// Model is the cache-aware roofline for one device.
type Model struct {
	Spec device.Spec
}

// New builds the roofline model for a device. The paper computes the L1
// bandwidth as BW_L1 = N_SM × N_LSU × W_access × f_clock and takes the DRAM
// bandwidth from the whitepaper; here both come from the device spec.
func New(s device.Spec) Model { return Model{Spec: s} }

// TensorCeiling returns the attainable FP64 tensor performance (TFLOPS) at
// arithmetic intensity ai (FLOPs per DRAM byte).
func (m Model) TensorCeiling(ai float64) float64 {
	return math.Min(m.Spec.TensorFP64, ai*m.Spec.DRAMBWTBs)
}

// CUDACeiling returns the attainable FP64 CUDA-core performance at ai.
func (m Model) CUDACeiling(ai float64) float64 {
	return math.Min(m.Spec.CUDAFP64, ai*m.Spec.DRAMBWTBs)
}

// L1Ceiling returns the L1-bandwidth roof at L1-level intensity ai
// (FLOPs per L1 byte) — the cache-aware extension of Figure 9.
func (m Model) L1Ceiling(ai float64) float64 {
	return math.Min(m.Spec.TensorFP64, ai*m.Spec.L1BWTBs)
}

// RidgeTensor returns the DRAM arithmetic intensity where the tensor peak
// meets the DRAM roof.
func (m Model) RidgeTensor() float64 { return m.Spec.TensorFP64 / m.Spec.DRAMBWTBs }

// RidgeCUDA returns the DRAM arithmetic intensity where the CUDA peak meets
// the DRAM roof.
func (m Model) RidgeCUDA() float64 { return m.Spec.CUDAFP64 / m.Spec.DRAMBWTBs }

// Point is one workload-variant marker of Figure 9.
type Point struct {
	Workload  string
	Variant   string
	Intensity float64 // FP64 FLOPs per DRAM byte
	L1Int     float64 // FP64 FLOPs per L1 byte
	TFLOPS    float64 // achieved (modeled) performance on issued FLOPs
	Bound     string  // "compute" or "memory" per the model's ridge
}

// Place computes the roofline point of a profile on the model's device. The
// y-coordinate is the issued-FLOP throughput (tensor + vector FLOPs over
// modeled time), matching how the paper plots its kernels.
func (m Model) Place(name, variant string, p sim.Profile) Point {
	r := sim.Run(m.Spec, p)
	flops := p.TensorFLOPs + p.VectorFLOPs
	pt := Point{
		Workload:  name,
		Variant:   variant,
		Intensity: p.ArithmeticIntensity(),
		L1Int:     p.L1Intensity(),
		TFLOPS:    flops / r.Time / 1e12,
	}
	if pt.Intensity >= m.RidgeTensor() {
		pt.Bound = "compute"
	} else {
		pt.Bound = "memory"
	}
	return pt
}

// Ceilings samples the roofline curves over a log-spaced intensity range
// for plotting: returns (intensity, tensorRoof, cudaRoof) triples.
func (m Model) Ceilings(from, to float64, n int) [][3]float64 {
	if n < 2 || from <= 0 || to <= from {
		return nil
	}
	out := make([][3]float64, 0, n)
	logFrom, logTo := math.Log10(from), math.Log10(to)
	for i := 0; i < n; i++ {
		ai := math.Pow(10, logFrom+(logTo-logFrom)*float64(i)/float64(n-1))
		out = append(out, [3]float64{ai, m.TensorCeiling(ai), m.CUDACeiling(ai)})
	}
	return out
}
