package roofline

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

func TestCeilings(t *testing.T) {
	m := New(device.H200())
	// Far right: compute-bound at the peaks.
	if c := m.TensorCeiling(1e6); c != 66.9 {
		t.Errorf("tensor ceiling = %v, want 66.9", c)
	}
	if c := m.CUDACeiling(1e6); c != 33.5 {
		t.Errorf("CUDA ceiling = %v, want 33.5", c)
	}
	// Far left: bandwidth-bound, slope = DRAM BW.
	if c := m.TensorCeiling(1); math.Abs(c-4.0) > 1e-12 {
		t.Errorf("tensor ceiling at AI=1 is %v, want 4.0", c)
	}
	// Ridge points.
	if r := m.RidgeTensor(); math.Abs(r-66.9/4.0) > 1e-12 {
		t.Errorf("tensor ridge = %v", r)
	}
	if m.RidgeCUDA() >= m.RidgeTensor() {
		t.Error("CUDA ridge should sit left of the tensor ridge")
	}
	if c := m.L1Ceiling(1); math.Abs(c-33.0) > 1e-12 {
		t.Errorf("L1 ceiling at AI=1 is %v, want 33.0", c)
	}
}

func TestPlace(t *testing.T) {
	m := New(device.H200())
	memBound := sim.Profile{
		VectorFLOPs: 1e9, DRAMBytes: 1e10, L1Bytes: 1e9, Launches: 1,
		Eff: sim.Efficiency{Vector: 0.5, DRAM: 0.8, L1: 0.8},
	}
	pt := m.Place("SpMV", "Baseline", memBound)
	if pt.Bound != "memory" {
		t.Errorf("AI=0.1 point bound = %s, want memory", pt.Bound)
	}
	if pt.Intensity != 0.1 {
		t.Errorf("intensity = %v", pt.Intensity)
	}
	// Achieved performance must sit below the roof at its intensity.
	if pt.TFLOPS > m.TensorCeiling(pt.Intensity) {
		t.Errorf("point %v TFLOPS above the roof %v", pt.TFLOPS, m.TensorCeiling(pt.Intensity))
	}

	compBound := sim.Profile{
		TensorFLOPs: 1e13, DRAMBytes: 1e10, Launches: 1,
		Eff: sim.Efficiency{Tensor: 0.6, DRAM: 0.8},
	}
	pt2 := m.Place("GEMM", "TC", compBound)
	if pt2.Bound != "compute" {
		t.Errorf("AI=1000 point bound = %s, want compute", pt2.Bound)
	}
	if pt2.TFLOPS > m.Spec.TensorFP64 {
		t.Error("achieved above tensor peak")
	}
}

func TestCeilingsSampling(t *testing.T) {
	m := New(device.A100())
	pts := m.Ceilings(0.01, 100, 50)
	if len(pts) != 50 {
		t.Fatalf("%d samples", len(pts))
	}
	if pts[0][0] != 0.01 || math.Abs(pts[49][0]-100) > 1e-9 {
		t.Errorf("range endpoints wrong: %v .. %v", pts[0][0], pts[49][0])
	}
	prev := -1.0
	for _, p := range pts {
		if p[1] < prev {
			t.Fatal("tensor roof not monotone")
		}
		prev = p[1]
		if p[2] > p[1] {
			t.Fatal("CUDA roof above tensor roof")
		}
	}
	if m.Ceilings(1, 0.5, 10) != nil || m.Ceilings(1, 2, 1) != nil {
		t.Error("invalid ranges should return nil")
	}
}
