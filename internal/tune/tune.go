// Package tune is the profile-guided panel-geometry layer: a small
// calibration harness (`cubie tune`) that sweeps the performance-only
// geometry knobs of the kernel stack — the SpGEMM paired-product batch size,
// the DASP SpMV segment-chunk size, and the DMMA panel blocking depth — on
// the current host, and a loader that installs the persisted winners at
// startup.
//
// Every knob the package touches is proven bit-invisible: chunking and
// batching only re-partition loops whose per-element FMA chains are already
// fixed in ascending-k order, and the blocking depth selects between
// identical-sequence kernel bodies. The determinism suite pins all of them,
// so a tuned host computes exactly what an untuned one does — only faster.
//
// Persistence is one JSON file per host fingerprint under the user cache
// directory (next to the runcache). CUBIE_TUNED=off (or 0) skips loading,
// CUBIE_TUNED=<path> overrides the file location, unset uses the default
// path; a missing file silently keeps the built-in defaults, so fresh
// checkouts behave exactly as before tuning existed.
package tune

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/kernels/spgemm"
	"repro/internal/kernels/spmv"
	"repro/internal/metrics"
	"repro/internal/mmu"
)

// EnvVar selects the tuned-geometry source: "off" or "0" disables loading, a
// path overrides the per-host default file, empty uses the default.
const EnvVar = "CUBIE_TUNED"

var (
	metLoaded = metrics.NewGauge("cubie_tune_loaded",
		"1 when a persisted tuned geometry was loaded and applied at startup, else 0.")
	metSweeps = metrics.NewCounter("cubie_tune_sweeps_total",
		"Candidate geometry configurations timed by tune calibration runs.")
)

// Geometry is one complete panel-geometry configuration. The zero value is
// not meaningful — use Default for the built-in configuration.
type Geometry struct {
	// SpGEMMBatch is the paired-product MMA count per DMMABatch call
	// (spgemm.SetBatch).
	SpGEMMBatch int `json:"spgemm_batch"`
	// DASPChunk caps segments per DMMAPanel call in the SpMV sweep; 0 runs
	// each block un-chunked (spmv.SetSegChunk).
	DASPChunk int `json:"dasp_chunk"`
	// DMMABlock is the panel k-loop blocking depth: 1, 2, or 4 tiles per
	// unrolled step (mmu.SetPanelBlock).
	DMMABlock int `json:"dmma_block"`
}

// Default returns the built-in geometry — the constants the kernels shipped
// with before tuning existed.
func Default() Geometry {
	return Geometry{SpGEMMBatch: 16, DASPChunk: 0, DMMABlock: 2}
}

// normalized clamps g to the ranges the setters accept, replacing
// nonsensical persisted values (hand-edited files, older schemas) with the
// defaults rather than propagating them.
func (g Geometry) normalized() Geometry {
	d := Default()
	if g.SpGEMMBatch < 1 {
		g.SpGEMMBatch = d.SpGEMMBatch
	}
	if g.DASPChunk < 0 {
		g.DASPChunk = d.DASPChunk
	}
	switch g.DMMABlock {
	case 1, 2, 4:
	default:
		g.DMMABlock = d.DMMABlock
	}
	return g
}

// Apply installs g into the kernel knobs and returns the configuration that
// was active before, so callers (tests, the calibration sweeps) can restore.
func Apply(g Geometry) (prev Geometry) {
	g = g.normalized()
	prev.SpGEMMBatch = spgemm.SetBatch(g.SpGEMMBatch)
	prev.DASPChunk = spmv.SetSegChunk(g.DASPChunk)
	prev.DMMABlock = mmu.SetPanelBlock(g.DMMABlock)
	return prev
}

// Current reads the active geometry from the kernel knobs.
func Current() Geometry {
	return Geometry{
		SpGEMMBatch: spgemm.Batch(),
		DASPChunk:   spmv.SegChunk(),
		DMMABlock:   mmu.PanelBlock(),
	}
}

// HostFingerprint identifies the machine class a calibration is valid for:
// platform and logical CPU count. Geometry winners are cache-shape choices,
// so a different core count (or architecture) gets its own file.
func HostFingerprint() string {
	return fmt.Sprintf("%s-%s-c%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// DefaultPath is the per-host persisted geometry location, a sibling of the
// runcache directory: <UserCacheDir>/cubie/tuned-<fingerprint>.json.
func DefaultPath() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tune: no user cache dir: %w", err)
	}
	return filepath.Join(base, "cubie", "tuned-"+HostFingerprint()+".json"), nil
}

// envPath resolves EnvVar to a file path, or "" when loading is disabled.
func envPath() (string, error) {
	switch v := os.Getenv(EnvVar); v {
	case "off", "0":
		return "", nil
	case "":
		return DefaultPath()
	default:
		return v, nil
	}
}

// Load reads the persisted geometry for this host, honoring EnvVar. It
// returns (Default(), false, nil) when loading is disabled or no file exists
// — absence is the normal cold state, not an error.
func Load() (Geometry, bool, error) {
	path, err := envPath()
	if err != nil || path == "" {
		return Default(), false, err
	}
	return LoadFile(path)
}

// LoadFile reads one geometry file. A missing file returns the defaults with
// ok=false; a malformed file is an error (a corrupt calibration should be
// seen, not silently discarded).
func LoadFile(path string) (Geometry, bool, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Default(), false, nil
	}
	if err != nil {
		return Default(), false, fmt.Errorf("tune: %w", err)
	}
	var g Geometry
	if err := json.Unmarshal(raw, &g); err != nil {
		return Default(), false, fmt.Errorf("tune: parse %s: %w", path, err)
	}
	return g.normalized(), true, nil
}

// LoadAndApply is the startup hook: loads the persisted geometry (if any)
// and installs it, reporting what is active. The cubie_tune_loaded gauge
// records whether a tuned file was found.
func LoadAndApply() (Geometry, bool, error) {
	g, ok, err := Load()
	if err != nil {
		return Default(), false, err
	}
	if ok {
		Apply(g)
		metLoaded.Set(1)
	} else {
		metLoaded.Set(0)
	}
	return g, ok, nil
}

// Save persists g to path (creating parent directories), pretty-printed so
// the file is hand-auditable.
func Save(g Geometry, path string) error {
	raw, err := json.MarshalIndent(g.normalized(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	return nil
}

// Sweep is one timed candidate from a calibration run.
type Sweep struct {
	Knob      string        // "spgemm_batch", "dasp_chunk", or "dmma_block"
	Candidate int           // the value timed
	Best      time.Duration // best-of-rounds wall time
	Won       bool          // selected into the calibrated geometry
}

// Candidate sets swept by Calibrate. Exported so the CLI can print what a
// calibration covers.
var (
	SpGEMMBatchCandidates = []int{4, 8, 16, 32, 64}
	DASPChunkCandidates   = []int{0, 4, 8, 16, 32}
	DMMABlockCandidates   = []int{1, 2, 4}
)

// calibrationRounds is the best-of repetition count per candidate: wall-time
// minima are stable under scheduler noise where means are not.
const calibrationRounds = 3

// Calibrate times every candidate of every knob on this host and returns the
// winning geometry plus the full sweep record. Each knob is swept
// independently with the others held at their pre-call values, and all knobs
// are restored before returning — installing the winners is the caller's
// (or Apply's) decision. The timed unit is one real kernel pass over the
// workload's representative dataset (SpMV apply, SpGEMM numeric phase), and
// a synthetic deep-k panel for the blocking depth.
func Calibrate() (Geometry, []Sweep, error) {
	saved := Current()
	defer Apply(saved)

	g := Default()
	var sweeps []Sweep

	spmvRun, err := spmv.New().CalibrationRunner(spmv.New().Representative().Dataset)
	if err != nil {
		return g, nil, fmt.Errorf("tune: spmv calibration: %w", err)
	}
	best, sw := sweepKnob("dasp_chunk", DASPChunkCandidates, spmv.SetSegChunk, spmvRun)
	g.DASPChunk = best
	sweeps = append(sweeps, sw...)

	spgemmRun, err := spgemm.New().CalibrationRunner(spgemm.New().Representative().Dataset)
	if err != nil {
		return g, nil, fmt.Errorf("tune: spgemm calibration: %w", err)
	}
	best, sw = sweepKnob("spgemm_batch", SpGEMMBatchCandidates, spgemm.SetBatch, spgemmRun)
	g.SpGEMMBatch = best
	sweeps = append(sweeps, sw...)

	best, sw = sweepKnob("dmma_block", DMMABlockCandidates, mmu.SetPanelBlock, panelDepthRunner())
	g.DMMABlock = best
	sweeps = append(sweeps, sw...)

	return g, sweeps, nil
}

// sweepKnob times run under every candidate (installed through set) and
// returns the fastest, preferring the earlier candidate on exact ties so the
// result is deterministic given the timings.
func sweepKnob(knob string, candidates []int, set func(int) int, run func()) (int, []Sweep) {
	sweeps := make([]Sweep, 0, len(candidates))
	winner, winnerAt := candidates[0], time.Duration(0)
	for i, cand := range candidates {
		set(cand)
		run() // warm the caches and pools before timing
		best := time.Duration(1<<63 - 1)
		for r := 0; r < calibrationRounds; r++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		metSweeps.Inc()
		sweeps = append(sweeps, Sweep{Knob: knob, Candidate: cand, Best: best})
		if i == 0 || best < winnerAt {
			winner, winnerAt = cand, best
		}
	}
	for i := range sweeps {
		sweeps[i].Won = sweeps[i].Candidate == winner
	}
	return winner, sweeps
}

// panelDepthRunner builds the synthetic deep-k workload for the blocking
// depth sweep: one 64-tile panel accumulation repeated enough to be timeable.
// Values are a fixed recurrence — the depth choice is bit-invisible, so the
// payload only needs to defeat dead-code elimination, which the accumulating
// C tile does.
func panelDepthRunner() func() {
	const kTiles = 64
	aPanel := make([]float64, kTiles*mmu.M*mmu.K)
	bPanel := make([]float64, kTiles*mmu.K*mmu.N)
	v := 0.5
	for i := range aPanel {
		v = v*1.000000059604644775390625 + 1e-9 // stays O(1), never denormal
		aPanel[i] = v
	}
	for i := range bPanel {
		v = v*1.000000059604644775390625 + 1e-9
		bPanel[i] = v
	}
	var c [mmu.M * mmu.N]float64
	return func() {
		for rep := 0; rep < 256; rep++ {
			mmu.DMMAPanel(c[:], aPanel, bPanel, kTiles)
		}
	}
}
