package tune

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kernels/spgemm"
	"repro/internal/kernels/spmv"
	"repro/internal/mmu"
)

func TestDefaultGeometry(t *testing.T) {
	g := Default()
	if g.SpGEMMBatch != 16 || g.DASPChunk != 0 || g.DMMABlock != 2 {
		t.Fatalf("defaults changed: %+v", g)
	}
}

func TestNormalizedClamps(t *testing.T) {
	g := Geometry{SpGEMMBatch: -5, DASPChunk: -1, DMMABlock: 3}.normalized()
	if g != Default() {
		t.Fatalf("nonsense geometry normalized to %+v, want defaults", g)
	}
	g = Geometry{SpGEMMBatch: 8, DASPChunk: 4, DMMABlock: 4}.normalized()
	if g.SpGEMMBatch != 8 || g.DASPChunk != 4 || g.DMMABlock != 4 {
		t.Fatalf("valid geometry mangled: %+v", g)
	}
}

func TestApplyRoundTrip(t *testing.T) {
	saved := Current()
	defer Apply(saved)
	g := Geometry{SpGEMMBatch: 8, DASPChunk: 4, DMMABlock: 4}
	prev := Apply(g)
	if prev != saved {
		t.Fatalf("Apply returned %+v, want prior %+v", prev, saved)
	}
	if got := Current(); got != g {
		t.Fatalf("Current() = %+v, want %+v", got, g)
	}
	if spgemm.Batch() != 8 || spmv.SegChunk() != 4 || mmu.PanelBlock() != 4 {
		t.Fatal("knobs not installed")
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "tuned.json")
	want := Geometry{SpGEMMBatch: 32, DASPChunk: 8, DMMABlock: 1}
	if err := Save(want, path); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadFile(path)
	if err != nil || !ok {
		t.Fatalf("LoadFile: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("round trip: %+v, want %+v", got, want)
	}
}

func TestLoadFileMissingIsNotError(t *testing.T) {
	g, ok, err := LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	if g != Default() {
		t.Fatalf("missing file returned %+v, want defaults", g)
	}
}

func TestLoadFileMalformedIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(path); err == nil {
		t.Fatal("malformed file loaded without error")
	}
}

func TestLoadHonorsEnvOff(t *testing.T) {
	for _, v := range []string{"off", "0"} {
		t.Setenv(EnvVar, v)
		g, ok, err := Load()
		if err != nil || ok {
			t.Fatalf("%s: ok=%v err=%v", v, ok, err)
		}
		if g != Default() {
			t.Fatalf("%s: returned %+v, want defaults", v, g)
		}
	}
}

func TestLoadHonorsEnvPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuned.json")
	want := Geometry{SpGEMMBatch: 4, DASPChunk: 16, DMMABlock: 2}
	if err := Save(want, path); err != nil {
		t.Fatal(err)
	}
	t.Setenv(EnvVar, path)
	g, ok, err := Load()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if g != want {
		t.Fatalf("Load() = %+v, want %+v", g, want)
	}
}

func TestLoadAndApplyInstalls(t *testing.T) {
	saved := Current()
	defer Apply(saved)
	path := filepath.Join(t.TempDir(), "tuned.json")
	want := Geometry{SpGEMMBatch: 64, DASPChunk: 32, DMMABlock: 1}
	if err := Save(want, path); err != nil {
		t.Fatal(err)
	}
	t.Setenv(EnvVar, path)
	g, ok, err := LoadAndApply()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if g != want || Current() != want {
		t.Fatalf("applied %+v / active %+v, want %+v", g, Current(), want)
	}
}

func TestHostFingerprintShape(t *testing.T) {
	fp := HostFingerprint()
	if !strings.Contains(fp, "-c") || strings.ContainsAny(fp, "/ ") {
		t.Fatalf("fingerprint %q not filename-safe", fp)
	}
}

// TestSweepKnobPicksFastest drives the sweep loop with a deterministic fake
// runner: the candidate whose installed value minimizes the simulated work
// must win, and exactly one sweep row is marked as the winner.
func TestSweepKnobPicksFastest(t *testing.T) {
	installed := 0
	set := func(v int) int { prev := installed; installed = v; return prev }
	run := func() {
		// Busy-work proportional to the installed value: candidate 1 wins.
		n := installed * 200_000
		s := 0.0
		for i := 0; i < n; i++ {
			s += float64(i)
		}
		_ = s
	}
	best, sweeps := sweepKnob("fake", []int{4, 1, 8}, set, run)
	if best != 1 {
		t.Fatalf("winner = %d, want 1", best)
	}
	won := 0
	for _, s := range sweeps {
		if s.Won {
			won++
			if s.Candidate != best {
				t.Fatalf("winner flag on %d, want %d", s.Candidate, best)
			}
		}
		if s.Best <= 0 {
			t.Fatalf("candidate %d has non-positive timing", s.Candidate)
		}
	}
	if len(sweeps) != 3 || won != 1 {
		t.Fatalf("%d sweeps, %d winners; want 3 and 1", len(sweeps), won)
	}
}

// TestCalibrateRestoresKnobs runs the real calibration end to end (small
// datasets, a few rounds) and checks it sweeps every candidate, returns a
// geometry drawn from the candidate sets, and leaves the live knobs exactly
// as it found them.
func TestCalibrateRestoresKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	before := Current()
	g, sweeps, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if Current() != before {
		t.Fatalf("knobs left at %+v, want restored %+v", Current(), before)
	}
	wantSweeps := len(SpGEMMBatchCandidates) + len(DASPChunkCandidates) + len(DMMABlockCandidates)
	if len(sweeps) != wantSweeps {
		t.Fatalf("%d sweeps recorded, want %d", len(sweeps), wantSweeps)
	}
	if !contains(SpGEMMBatchCandidates, g.SpGEMMBatch) ||
		!contains(DASPChunkCandidates, g.DASPChunk) ||
		!contains(DMMABlockCandidates, g.DMMABlock) {
		t.Fatalf("calibrated geometry %+v outside the candidate sets", g)
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
