package par

// ReduceTiles fans the index space [0, n) out in fixed-size chunks of grain
// indices, fills one zero-valued accumulator per chunk with fn, and merges
// the chunk accumulators into a single result in ascending chunk order.
//
// Chunk boundaries depend only on n and grain — never on Workers() — and the
// merge order is fixed, so the result is bit-identical for every worker
// count. This is the safe way to accumulate execution-profile statistics
// (sim.Profile partials, symbolic FLOP/byte counts) from a parallel sweep:
// each worker owns private partials, and the join replays a deterministic
// merge. Note the chunked merge order may differ from a plain serial loop's
// element order; for the integer-valued counters the kernels accumulate the
// distinction is invisible, and for floating-point sums the chunked order is
// itself the pinned, reproducible definition.
//
// A panic inside fn propagates as *WorkerPanic (see ForTiles).
func ReduceTiles[T any](n, grain int, fn func(lo, hi int, acc *T), merge func(dst, src *T)) T {
	var out T
	if n <= 0 {
		return out
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	accs := make([]T, chunks)
	ForTiles(chunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*grain, (c+1)*grain
			if hi > n {
				hi = n
			}
			fn(lo, hi, &accs[c])
		}
	})
	for i := range accs {
		merge(&out, &accs[i])
	}
	return out
}
