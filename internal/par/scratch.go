package par

import (
	"sync"

	"repro/internal/metrics"
)

// Scratch-pool metrics: a miss is a Get that had to allocate a fresh buffer
// (the sync.Pool was empty); hits = gets − misses.
var (
	metScratchGets = metrics.NewCounter("cubie_par_scratch_gets_total",
		"Scratch buffers checked out of the sync.Pool-backed pools.")
	metScratchMisses = metrics.NewCounter("cubie_par_scratch_misses_total",
		"Scratch checkouts that allocated a fresh buffer (pool empty).")
)

// Scratch is a sync.Pool-backed pool of fixed-size float64 scratch buffers.
// Kernels use it for the MMA fragment/tile temporaries (A/B operand staging,
// C accumulators) that were previously allocated on every call: one Get per
// worker range amortizes the allocation across the whole tile sweep, and Put
// recycles the buffer for the next call.
//
// Buffers returned by Get have the pool's fixed length but unspecified
// contents — callers must fully initialize (or zero) every region they read.
// GetZeroed returns a cleared buffer for accumulator use.
type Scratch struct {
	n    int
	pool sync.Pool
}

// NewScratch creates a pool of length-n buffers.
func NewScratch(n int) *Scratch {
	s := &Scratch{n: n}
	s.pool.New = func() any {
		metScratchMisses.Inc()
		b := make([]float64, n)
		return &b
	}
	return s
}

// Len returns the buffer length this pool hands out.
func (s *Scratch) Len() int { return s.n }

// Get returns a length-n buffer with unspecified contents.
func (s *Scratch) Get() []float64 {
	metScratchGets.Inc()
	return *s.pool.Get().(*[]float64)
}

// GetZeroed returns a length-n buffer with every element set to zero.
func (s *Scratch) GetZeroed() []float64 {
	b := s.Get()
	for i := range b {
		b[i] = 0
	}
	return b
}

// Put returns a buffer obtained from Get to the pool. Buffers of the wrong
// length are dropped (defensive: never poison the pool).
func (s *Scratch) Put(b []float64) {
	if len(b) != s.n {
		return
	}
	s.pool.Put(&b)
}

// TypedScratch is a sync.Pool-backed pool of variable-capacity buffers of
// any element type. Kernels use it for scratch whose length depends on the
// case (packed operand panels sized by the k extent, SpGEMM accumulator
// directories sized by the block-column count). Capacities are rounded up
// to a power of two so recycled buffers are reusable across nearby sizes.
//
// Buffers returned by Get have unspecified contents — callers must fully
// initialize (or stamp-validate) every region they read.
type TypedScratch[T any] struct {
	pool sync.Pool
}

// NewTypedScratch creates an empty variable-capacity pool of []T buffers.
func NewTypedScratch[T any]() *TypedScratch[T] { return &TypedScratch[T]{} }

// Get returns a length-n buffer with unspecified contents, reusing a pooled
// allocation when its capacity suffices.
func (s *TypedScratch[T]) Get(n int) []T {
	metScratchGets.Inc()
	if p, ok := s.pool.Get().(*[]T); ok && p != nil {
		if cap(*p) >= n {
			return (*p)[:n]
		}
		// Too small for this request: let it go and allocate fresh.
	}
	metScratchMisses.Inc()
	c := 64
	for c < n {
		c *= 2
	}
	return make([]T, n, c)
}

// Put returns a buffer obtained from Get to the pool.
func (s *TypedScratch[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	s.pool.Put(&b)
}

// SizedScratch is the float64 instantiation of TypedScratch, kept as the
// named type the panel-engine kernels stage packed A/B operand panels in.
type SizedScratch = TypedScratch[float64]

// NewSizedScratch creates an empty variable-capacity float64 pool.
func NewSizedScratch() *SizedScratch { return &SizedScratch{} }
