package par

import (
	"runtime/pprof"
	"sync/atomic"
	"testing"
)

// TestForTilesMetrics checks the engine counters advance when grids run,
// and that inline (serial) execution is attributed to the inlined counter.
func TestForTilesMetrics(t *testing.T) {
	withWorkers(t, 1, func() {
		before := metInlined.Value()
		ForTiles(32, func(lo, hi int) {})
		if metInlined.Value() != before+1 {
			t.Fatalf("serial ForTiles did not count as inlined: %d -> %d",
				before, metInlined.Value())
		}
	})
	withWorkers(t, 4, func() {
		tasksBefore := metTasks.Value() + metInlined.Value() + metStolen.Value()
		helpBefore := metHelpDepth.Count()
		ForTiles(64, func(lo, hi int) {})
		tasksAfter := metTasks.Value() + metInlined.Value() + metStolen.Value()
		// A 4-way grid produces at least the caller's range plus one more
		// accounted execution (submitted, inlined, or stolen).
		if tasksAfter < tasksBefore+2 {
			t.Fatalf("parallel ForTiles accounted %d range executions, want >= 2",
				tasksAfter-tasksBefore)
		}
		if metHelpDepth.Count() != helpBefore+1 {
			t.Fatalf("help-depth histogram not observed: %d -> %d",
				helpBefore, metHelpDepth.Count())
		}
	})
}

// TestScratchMetrics checks the hit/miss accounting: a fresh pool misses
// once, and a Get after Put is a hit (gets advance, misses may not).
func TestScratchMetrics(t *testing.T) {
	s := NewScratch(16)
	getsBefore, missesBefore := metScratchGets.Value(), metScratchMisses.Value()
	b := s.Get()
	if metScratchGets.Value() != getsBefore+1 {
		t.Fatal("Get did not count")
	}
	if metScratchMisses.Value() != missesBefore+1 {
		t.Fatal("first Get on a fresh pool must be a miss")
	}
	s.Put(b)
	// The recycled buffer should usually come back without a new miss; we
	// only assert gets advance (sync.Pool may legally drop the buffer).
	_ = s.Get()
	if metScratchGets.Value() != getsBefore+2 {
		t.Fatal("second Get did not count")
	}
}

// TestDoLabeled checks labels are visible on the calling goroutine during
// fn, that the pool advertisement is cleaned up afterwards, and that fn's
// tile ranges still cover the grid.
func TestDoLabeled(t *testing.T) {
	if kernelCtx.Load() != nil {
		t.Fatal("kernelCtx not nil before DoLabeled")
	}
	var covered atomic.Int64
	var sawLabel bool
	DoLabeled("SpMV", "TC", "run", func() {
		if ctxp := kernelCtx.Load(); ctxp != nil {
			if v, ok := pprof.Label(*ctxp, "workload"); ok && v == "SpMV" {
				sawLabel = true
			}
		}
		withWorkers(t, 4, func() {
			ForTiles(100, func(lo, hi int) { covered.Add(int64(hi - lo)) })
		})
	})
	if !sawLabel {
		t.Error("workload label not advertised during DoLabeled")
	}
	if covered.Load() != 100 {
		t.Errorf("covered %d indices, want 100", covered.Load())
	}
	if kernelCtx.Load() != nil {
		t.Error("kernelCtx not restored after DoLabeled")
	}
}

// TestRangeHook checks the hook fires once per executed range with closers
// called, in both serial and parallel modes, and that clearing it stops
// the callbacks.
func TestRangeHook(t *testing.T) {
	var began, ended atomic.Int64
	var coveredByHook atomic.Int64
	SetRangeHook(func(lo, hi int) func() {
		began.Add(1)
		coveredByHook.Add(int64(hi - lo))
		return func() { ended.Add(1) }
	})
	defer SetRangeHook(nil)

	withWorkers(t, 1, func() { ForTiles(10, func(lo, hi int) {}) })
	if began.Load() != 1 || ended.Load() != 1 || coveredByHook.Load() != 10 {
		t.Fatalf("serial: began=%d ended=%d covered=%d, want 1/1/10",
			began.Load(), ended.Load(), coveredByHook.Load())
	}

	began.Store(0)
	ended.Store(0)
	coveredByHook.Store(0)
	withWorkers(t, 4, func() { ForTiles(100, func(lo, hi int) {}) })
	if began.Load() != ended.Load() {
		t.Fatalf("parallel: %d begins but %d ends", began.Load(), ended.Load())
	}
	if coveredByHook.Load() != 100 {
		t.Fatalf("parallel: hook saw %d indices, want 100", coveredByHook.Load())
	}

	SetRangeHook(nil)
	began.Store(0)
	withWorkers(t, 1, func() { ForTiles(10, func(lo, hi int) {}) })
	if began.Load() != 0 {
		t.Fatal("cleared hook still fired")
	}
}
