// Package par is the deterministic parallel tile-grid execution engine of
// the Cubie suite. Every kernel variant really executes its FP64 arithmetic
// through the pure-Go MMA layer (internal/mmu), and the paper's central
// property — MMA semantics are per-tile deterministic and tile-independent
// (Sun et al.; Khattak & Mikaitis) — is exactly what makes output tiles safe
// to compute concurrently: each output element's FMA accumulation chain is
// confined to one tile, so executing tiles on N workers produces the same
// bits as executing them on one.
//
// The engine provides:
//
//   - ForTiles: statically partitions an index space of independent output
//     tiles into contiguous ranges executed by a persistent worker pool.
//     Because a tile never straddles a range boundary, results are
//     bit-identical for every worker count (the Table 6 TC ≡ CC invariant
//     survives parallel execution).
//   - ReduceTiles (reduce.go): chunked fan-out with per-worker partial
//     accumulators merged at join in fixed chunk order. Chunk boundaries
//     depend only on the grid, never on the worker count, so even
//     floating-point reductions are reproducible across pool sizes.
//   - Scratch (scratch.go): sync.Pool-backed fixed-size scratch buffers for
//     the fragment/tile temporaries kernels stage MMA operands in.
//
// The pool is sized from GOMAXPROCS and can be overridden with the
// CUBIE_WORKERS environment variable or SetWorkers. Workers(1) disables
// parallelism entirely (every range runs inline on the caller), which the
// suite-wide determinism test uses as the serial reference.
//
// # Observability
//
// The engine self-reports through internal/metrics (see
// docs/OBSERVABILITY.md for the full metric catalog): tasks submitted to
// the pool, ranges inlined on callers, tasks stolen by waiting callers
// (with a help-depth histogram), cumulative worker busy seconds, and
// scratch-pool traffic. The instrumentation is batched per ForTiles call —
// a handful of atomic adds per grid, never per tile — so it stays well
// under the suite's <2% overhead budget. None of it perturbs scheduling or
// determinism.
//
// DoLabeled attaches runtime/pprof labels (workload, variant, phase) to the
// calling goroutine and advertises them to the pool so worker goroutines
// executing the caller's tile ranges carry the same labels; CPU profiles
// (`cubie run --pprof`) then attribute samples to kernels instead of to an
// anonymous pool. SetRangeHook lets internal/trace record one real
// wall-clock span per executed range when host tracing is enabled.
package par

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// EnvWorkers is the environment variable that overrides the default worker
// count at process start.
const EnvWorkers = "CUBIE_WORKERS"

// Engine metrics (registered on the metrics.Default registry; all names are
// documented in docs/OBSERVABILITY.md).
var (
	metTasks = metrics.NewCounter("cubie_par_tasks_total",
		"Tile-range tasks submitted to the worker pool queue.")
	metInlined = metrics.NewCounter("cubie_par_tasks_inlined_total",
		"Tile ranges executed inline on the calling goroutine (serial path, the caller's own range, or a full queue).")
	metStolen = metrics.NewCounter("cubie_par_tasks_stolen_total",
		"Queued tasks drained by a caller that was waiting for its own grid (help-while-waiting).")
	metHelpDepth = metrics.NewHistogram("cubie_par_help_depth",
		"Tasks a waiting caller helped drain per ForTiles call.",
		[]float64{0, 1, 2, 4, 8, 16, 32})
	metBusy = metrics.NewFloatCounter("cubie_par_worker_busy_seconds_total",
		"Cumulative wall-clock seconds pool workers spent executing tasks.")
	metWorkers = metrics.NewGauge("cubie_par_workers",
		"Current partitioning worker count (SetWorkers / CUBIE_WORKERS).")
	metPoolSize = metrics.NewGauge("cubie_par_pool_goroutines",
		"OS-scheduled goroutines backing the pool (0 until first use).")
)

var workerCount atomic.Int64

func init() {
	n := defaultWorkers()
	workerCount.Store(int64(n))
	metWorkers.Set(float64(n))
}

// defaultWorkers resolves the initial worker count: CUBIE_WORKERS when set
// and valid, GOMAXPROCS otherwise.
func defaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current worker count used to partition tile grids.
func Workers() int { return int(workerCount.Load()) }

// SetWorkers sets the worker count and returns the previous value. n < 1 is
// clamped to 1. The setting only affects how grids are partitioned — results
// are bit-identical for every value (see the package comment).
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	metWorkers.Set(float64(n))
	return int(workerCount.Swap(int64(n)))
}

// WorkerPanic wraps a panic recovered on a pool worker so it can be
// re-raised on the submitting goroutine with the worker's stack attached.
type WorkerPanic struct {
	Value any    // the original panic value
	Stack []byte // stack of the panicking worker
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it is an error.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// pool is the persistent worker pool: a fixed set of goroutines draining a
// shared task queue. Submission never blocks (inline fallback), and waiters
// help drain the queue, so nested ForTiles calls cannot deadlock even when
// every worker is busy.
type pool struct {
	once    sync.Once
	tasks   chan func()
	started int
}

var engine pool

// bgCtx is the label-free context workers reset their pprof labels to after
// running a labeled task.
var bgCtx = context.Background()

// kernelCtx advertises the most recent DoLabeled context so pool workers
// can adopt the caller's pprof labels. It is best-effort by design: under
// concurrent DoLabeled calls (the Figure 3 fan-out) the last writer wins,
// which can momentarily misattribute a worker's samples. Single-kernel
// profiling (`cubie run --pprof`) is exact.
var kernelCtx atomic.Pointer[context.Context]

// rangeHook, when set, is invoked at the start of every executed tile range
// and the returned closer at its end. internal/trace installs it to record
// host-side spans; nil (the default) costs one atomic load per range.
var rangeHook atomic.Pointer[func(lo, hi int) func()]

// SetRangeHook installs h as the per-range observer (nil clears it). The
// hook runs on the goroutine executing the range, around the user fn; it
// must be safe for concurrent use and should be cheap — it fires once per
// contiguous range, not once per tile.
func SetRangeHook(h func(lo, hi int) func()) {
	if h == nil {
		rangeHook.Store(nil)
		return
	}
	rangeHook.Store(&h)
}

// DoLabeled runs fn with runtime/pprof labels {workload, variant, phase}
// applied to the calling goroutine, and advertises the label set to the
// worker pool so tile ranges fanned out by fn are attributed to the same
// kernel in CPU profiles. Labels nest per goroutine (pprof.Do restores the
// previous set); the pool-wide advertisement is last-writer-wins and
// therefore best-effort under concurrent kernels.
func DoLabeled(workload, variant, phase string, fn func()) {
	ctx := pprof.WithLabels(bgCtx, pprof.Labels(
		"workload", workload, "variant", variant, "phase", phase))
	prev := kernelCtx.Swap(&ctx)
	defer kernelCtx.Store(prev)
	pprof.Do(ctx, pprof.Labels(), func(context.Context) { fn() })
}

// start lazily launches the worker goroutines. The pool is sized to the
// machine (GOMAXPROCS, or CUBIE_WORKERS when larger) — SetWorkers only
// changes partitioning, never the number of OS-scheduled workers, so a
// burst of nested calls cannot oversubscribe the host.
func (p *pool) start() {
	p.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if env := defaultWorkers(); env > n {
			n = env
		}
		// A deep queue lets nested calls park tasks without forcing the
		// inline fallback; waiters drain it, so depth only affects scheduling.
		p.tasks = make(chan func(), 4*n)
		p.started = n
		metPoolSize.Set(float64(n))
		for i := 0; i < n; i++ {
			go func() {
				for t := range p.tasks {
					t0 := time.Now()
					t()
					metBusy.Add(time.Since(t0).Seconds())
				}
			}()
		}
	})
}

// submit enqueues t if a queue slot is free and returns true; otherwise the
// caller must run t inline.
func (p *pool) submit(t func()) bool {
	p.start()
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// PoolSize reports how many persistent workers back the engine (zero before
// the first parallel call starts the pool).
func PoolSize() int {
	engine.start()
	return engine.started
}

// ForTiles executes fn over the index space [0, n), statically partitioned
// into at most Workers() contiguous ranges [lo, hi). Each range runs exactly
// once, on one goroutine, with fn free to keep per-range scratch state.
// ForTiles returns when every range has finished; a panic inside fn is
// re-raised on the caller as *WorkerPanic. ForTiles is safe for concurrent
// and nested use.
//
// Determinism contract: callers must ensure each index writes only its own
// output region and that per-index work is independent (the tile property).
// Under that contract the result is bit-identical for every worker count.
func ForTiles(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		metInlined.Inc()
		runRange(0, n, fn)
		return
	}

	var (
		mu       sync.Mutex
		panicked *WorkerPanic
		done     = make(chan struct{}, w)
	)
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				wp := &WorkerPanic{Value: r, Stack: debug.Stack()}
				mu.Lock()
				if panicked == nil {
					panicked = wp
				}
				mu.Unlock()
			}
			done <- struct{}{}
		}()
		runRange(lo, hi, fn)
	}

	ctxp := kernelCtx.Load()

	// Balanced static partition: range i is [i*n/w, (i+1)*n/w).
	// statTasks/statInlined/statStolen batch the engine metrics so the
	// whole grid costs a fixed handful of atomic adds.
	submitted := 0
	statTasks, statInlined := 0, 1 // the caller always runs range 0
	for i := 1; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo == hi {
			continue
		}
		task := func() {
			if ctxp != nil {
				pprof.SetGoroutineLabels(*ctxp)
				defer pprof.SetGoroutineLabels(bgCtx)
			}
			run(lo, hi)
		}
		if engine.submit(task) {
			statTasks++
		} else {
			run(lo, hi) // queue full: run inline rather than block
			statInlined++
		}
		submitted++
	}
	// The caller owns range 0 and then helps drain the queue while waiting,
	// which keeps nested ForTiles deadlock-free.
	run(0, n/w)
	statStolen := 0
	for finished := 0; finished <= submitted; {
		select {
		case <-done:
			finished++
		case t := <-engine.tasks:
			t()
			statStolen++
			if ctxp != nil {
				// The stolen task may belong to another kernel and have
				// reset this goroutine's labels; reinstate ours.
				pprof.SetGoroutineLabels(*ctxp)
			}
		}
	}
	if statTasks > 0 {
		metTasks.Add(uint64(statTasks))
	}
	metInlined.Add(uint64(statInlined))
	if statStolen > 0 {
		metStolen.Add(uint64(statStolen))
	}
	metHelpDepth.Observe(float64(statStolen))
	if panicked != nil {
		panic(panicked)
	}
}

// runRange executes fn on [lo, hi), wrapped in the host-trace range hook
// when one is installed.
func runRange(lo, hi int, fn func(lo, hi int)) {
	if hp := rangeHook.Load(); hp != nil {
		end := (*hp)(lo, hi)
		fn(lo, hi)
		end()
		return
	}
	fn(lo, hi)
}
