// Package par is the deterministic parallel tile-grid execution engine of
// the Cubie suite. Every kernel variant really executes its FP64 arithmetic
// through the pure-Go MMA layer (internal/mmu), and the paper's central
// property — MMA semantics are per-tile deterministic and tile-independent
// (Sun et al.; Khattak & Mikaitis) — is exactly what makes output tiles safe
// to compute concurrently: each output element's FMA accumulation chain is
// confined to one tile, so executing tiles on N workers produces the same
// bits as executing them on one.
//
// The engine provides:
//
//   - ForTiles: statically partitions an index space of independent output
//     tiles into contiguous ranges executed by a persistent worker pool.
//     Because a tile never straddles a range boundary, results are
//     bit-identical for every worker count (the Table 6 TC ≡ CC invariant
//     survives parallel execution).
//   - ReduceTiles (reduce.go): chunked fan-out with per-worker partial
//     accumulators merged at join in fixed chunk order. Chunk boundaries
//     depend only on the grid, never on the worker count, so even
//     floating-point reductions are reproducible across pool sizes.
//   - Scratch (scratch.go): sync.Pool-backed fixed-size scratch buffers for
//     the fragment/tile temporaries kernels stage MMA operands in.
//
// The pool is sized from GOMAXPROCS and can be overridden with the
// CUBIE_WORKERS environment variable or SetWorkers. Workers(1) disables
// parallelism entirely (every range runs inline on the caller), which the
// suite-wide determinism test uses as the serial reference.
package par

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default worker
// count at process start.
const EnvWorkers = "CUBIE_WORKERS"

var workerCount atomic.Int64

func init() {
	workerCount.Store(int64(defaultWorkers()))
}

// defaultWorkers resolves the initial worker count: CUBIE_WORKERS when set
// and valid, GOMAXPROCS otherwise.
func defaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current worker count used to partition tile grids.
func Workers() int { return int(workerCount.Load()) }

// SetWorkers sets the worker count and returns the previous value. n < 1 is
// clamped to 1. The setting only affects how grids are partitioned — results
// are bit-identical for every value (see the package comment).
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workerCount.Swap(int64(n)))
}

// WorkerPanic wraps a panic recovered on a pool worker so it can be
// re-raised on the submitting goroutine with the worker's stack attached.
type WorkerPanic struct {
	Value any    // the original panic value
	Stack []byte // stack of the panicking worker
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it is an error.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// pool is the persistent worker pool: a fixed set of goroutines draining a
// shared task queue. Submission never blocks (inline fallback), and waiters
// help drain the queue, so nested ForTiles calls cannot deadlock even when
// every worker is busy.
type pool struct {
	once    sync.Once
	tasks   chan func()
	started int
}

var engine pool

// start lazily launches the worker goroutines. The pool is sized to the
// machine (GOMAXPROCS, or CUBIE_WORKERS when larger) — SetWorkers only
// changes partitioning, never the number of OS-scheduled workers, so a
// burst of nested calls cannot oversubscribe the host.
func (p *pool) start() {
	p.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if env := defaultWorkers(); env > n {
			n = env
		}
		// A deep queue lets nested calls park tasks without forcing the
		// inline fallback; waiters drain it, so depth only affects scheduling.
		p.tasks = make(chan func(), 4*n)
		p.started = n
		for i := 0; i < n; i++ {
			go func() {
				for t := range p.tasks {
					t()
				}
			}()
		}
	})
}

// submit enqueues t if a queue slot is free and returns true; otherwise the
// caller must run t inline.
func (p *pool) submit(t func()) bool {
	p.start()
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// PoolSize reports how many persistent workers back the engine (zero before
// the first parallel call starts the pool).
func PoolSize() int {
	engine.start()
	return engine.started
}

// ForTiles executes fn over the index space [0, n), statically partitioned
// into at most Workers() contiguous ranges [lo, hi). Each range runs exactly
// once, on one goroutine, with fn free to keep per-range scratch state.
// ForTiles returns when every range has finished; a panic inside fn is
// re-raised on the caller as *WorkerPanic. ForTiles is safe for concurrent
// and nested use.
//
// Determinism contract: callers must ensure each index writes only its own
// output region and that per-index work is independent (the tile property).
// Under that contract the result is bit-identical for every worker count.
func ForTiles(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}

	var (
		mu       sync.Mutex
		panicked *WorkerPanic
		done     = make(chan struct{}, w)
	)
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				wp := &WorkerPanic{Value: r, Stack: debug.Stack()}
				mu.Lock()
				if panicked == nil {
					panicked = wp
				}
				mu.Unlock()
			}
			done <- struct{}{}
		}()
		fn(lo, hi)
	}

	// Balanced static partition: range i is [i*n/w, (i+1)*n/w).
	submitted := 0
	for i := 1; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo == hi {
			continue
		}
		task := func() { run(lo, hi) }
		if !engine.submit(task) {
			task() // queue full: run inline rather than block
		}
		submitted++
	}
	// The caller owns range 0 and then helps drain the queue while waiting,
	// which keeps nested ForTiles deadlock-free.
	run(0, n/w)
	for finished := 0; finished <= submitted; {
		select {
		case <-done:
			finished++
		case t := <-engine.tasks:
			t()
		}
	}
	if panicked != nil {
		panic(panicked)
	}
}
