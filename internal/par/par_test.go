package par

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a temporary worker count.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestWorkersDefaultAndClamp(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
	prev := SetWorkers(0) // clamped
	defer SetWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) left Workers() = %d, want 1", Workers())
	}
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
}

func TestPoolSizing(t *testing.T) {
	if n := PoolSize(); n < 1 {
		t.Fatalf("PoolSize() = %d, want >= 1", n)
	}
	// SetWorkers must not change the persistent pool size.
	withWorkers(t, 64, func() {
		before := PoolSize()
		ForTiles(128, func(lo, hi int) {})
		if PoolSize() != before {
			t.Fatalf("pool resized from %d to %d", before, PoolSize())
		}
	})
}

// TestForTilesCoverage checks every index is visited exactly once, over
// even, uneven, tiny, and degenerate grids and several worker counts.
func TestForTilesCoverage(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 61} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 1023} {
			t.Run(fmt.Sprintf("w%d_n%d", w, n), func(t *testing.T) {
				withWorkers(t, w, func() {
					counts := make([]int32, n)
					ForTiles(n, func(lo, hi int) {
						if lo < 0 || hi > n || lo > hi {
							t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&counts[i], 1)
						}
					})
					for i, c := range counts {
						if c != 1 {
							t.Fatalf("index %d visited %d times", i, c)
						}
					}
				})
			})
		}
	}
}

// TestForTilesBitIdentical pins the core determinism contract: a tiled
// computation produces the same bits at Workers(1) and Workers(N).
func TestForTilesBitIdentical(t *testing.T) {
	const n = 513
	compute := func() []float64 {
		out := make([]float64, n)
		ForTiles(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				acc := 0.0
				for k := 0; k < 17; k++ {
					acc += float64(i+1) / float64(k+3)
				}
				out[i] = acc
			}
		})
		return out
	}
	var serial, parallel []float64
	withWorkers(t, 1, func() { serial = compute() })
	withWorkers(t, 13, func() { parallel = compute() })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("out[%d]: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestForTilesPanicPropagation(t *testing.T) {
	sentinel := errors.New("tile 3 exploded")
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				if w == 1 {
					// Inline path re-raises the original value untouched.
					if !errors.Is(r.(error), sentinel) {
						t.Fatalf("workers=1: got %v", r)
					}
					return
				}
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: got %T (%v), want *WorkerPanic", w, r, r)
				}
				if !errors.Is(wp, sentinel) {
					t.Fatalf("WorkerPanic unwraps to %v, want sentinel", wp.Unwrap())
				}
				if len(wp.Stack) == 0 {
					t.Fatal("WorkerPanic carries no stack")
				}
			}()
			ForTiles(16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 3 {
						panic(sentinel)
					}
				}
			})
		})
	}
}

// TestForTilesNested exercises ForTiles called from inside ForTiles workers:
// the engine must make progress (help-while-waiting) and cover the full 2D
// grid exactly once.
func TestForTilesNested(t *testing.T) {
	withWorkers(t, 4, func() {
		const rows, cols = 37, 29
		var counts [rows * cols]int32
		ForTiles(rows, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				r := r
				ForTiles(cols, func(clo, chi int) {
					for c := clo; c < chi; c++ {
						atomic.AddInt32(&counts[r*cols+c], 1)
					}
				})
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("cell %d visited %d times", i, c)
			}
		}
	})
}

// TestForTilesConcurrent runs many ForTiles calls from independent
// goroutines sharing the pool.
func TestForTilesConcurrent(t *testing.T) {
	withWorkers(t, 3, func() {
		var wg sync.WaitGroup
		var total atomic.Int64
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ForTiles(100, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}()
		}
		wg.Wait()
		if total.Load() != 1600 {
			t.Fatalf("covered %d indices, want 1600", total.Load())
		}
	})
}

// TestReduceTilesDeterministic pins that chunked reduction is bit-identical
// across worker counts, including a floating-point sum whose plain serial
// order would differ.
func TestReduceTilesDeterministic(t *testing.T) {
	sum := func() float64 {
		return ReduceTiles(1000, 64, func(lo, hi int, acc *float64) {
			for i := lo; i < hi; i++ {
				*acc += 1.0 / float64(i+1)
			}
		}, func(dst, src *float64) { *dst += *src })
	}
	var s1, sN float64
	withWorkers(t, 1, func() { s1 = sum() })
	withWorkers(t, 9, func() { sN = sum() })
	if s1 != sN {
		t.Fatalf("ReduceTiles: serial %v != parallel %v", s1, sN)
	}
	if s1 == 0 {
		t.Fatal("ReduceTiles returned zero")
	}
}

func TestReduceTilesCounts(t *testing.T) {
	type stats struct{ n, sum int }
	got := ReduceTiles(101, 7, func(lo, hi int, acc *stats) {
		for i := lo; i < hi; i++ {
			acc.n++
			acc.sum += i
		}
	}, func(dst, src *stats) { dst.n += src.n; dst.sum += src.sum })
	if got.n != 101 || got.sum != 101*100/2 {
		t.Fatalf("got %+v, want n=101 sum=5050", got)
	}
}

func TestScratch(t *testing.T) {
	s := NewScratch(64)
	if s.Len() != 64 {
		t.Fatalf("Len() = %d", s.Len())
	}
	b := s.Get()
	if len(b) != 64 {
		t.Fatalf("Get() len = %d", len(b))
	}
	for i := range b {
		b[i] = 42
	}
	s.Put(b)
	z := s.GetZeroed()
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed()[%d] = %v", i, v)
		}
	}
	s.Put(z)
	s.Put(make([]float64, 3)) // wrong size: must be dropped, not poison
	if got := s.Get(); len(got) != 64 {
		t.Fatalf("pool poisoned: Get() len = %d", len(got))
	}
}

func TestSizedScratch(t *testing.T) {
	s := NewSizedScratch()
	b := s.Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) len = %d", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("Get(100) cap = %d, want power-of-two 128", cap(b))
	}
	s.Put(b)
	// A smaller request must reuse the pooled capacity.
	c := s.Get(70)
	if len(c) != 70 || cap(c) != 128 {
		t.Fatalf("Get(70) after Put: len=%d cap=%d, want reuse of cap 128", len(c), cap(c))
	}
	s.Put(c)
	// A larger request allocates fresh rather than returning a short buffer.
	d := s.Get(300)
	if len(d) != 300 || cap(d) < 300 {
		t.Fatalf("Get(300) len=%d cap=%d", len(d), cap(d))
	}
	s.Put(d)
	// Tiny requests round capacity up to the 64-element floor.
	e := s.Get(1)
	if len(e) != 1 || cap(e) < 64 {
		t.Fatalf("Get(1) len=%d cap=%d", len(e), cap(e))
	}
	s.Put(nil) // must not poison the pool
	if f := s.Get(10); len(f) != 10 {
		t.Fatalf("Get(10) after Put(nil) len = %d", len(f))
	}
}

func TestTypedScratch(t *testing.T) {
	// The reuse assertions below require the Put buffer to survive until
	// the next Get; a GC in that window may legitimately drain the
	// sync.Pool, so hold GC off for the test's duration.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	s := NewTypedScratch[int32]()
	b := s.Get(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Get(100) len=%d cap=%d, want len 100 cap 128", len(b), cap(b))
	}
	for i := range b {
		b[i] = int32(i)
	}
	s.Put(b)
	// A smaller request must reuse the pooled capacity. sync.Pool
	// deliberately drops a fraction of Puts when the race detector is
	// enabled, so reuse cannot be asserted from a single Put/Get pair —
	// refill and retry until the pooled buffer comes back.
	c := s.Get(32)
	for i := 0; cap(c) != 128; i++ {
		if i == 64 {
			t.Fatalf("Get(32) after Put: len=%d cap=%d, want reuse of cap 128", len(c), cap(c))
		}
		s.Put(s.Get(100)) // repool a 128-cap buffer
		c = s.Get(32)
	}
	if len(c) != 32 {
		t.Fatalf("Get(32) len = %d", len(c))
	}
	s.Put(c)
	// A larger request allocates fresh rather than returning a short buffer.
	d := s.Get(1000)
	if len(d) != 1000 || cap(d) != 1024 {
		t.Fatalf("Get(1000) len=%d cap=%d", len(d), cap(d))
	}
	s.Put(nil) // must not poison the pool
	if e := s.Get(10); len(e) != 10 {
		t.Fatalf("Get(10) after Put(nil) len = %d", len(e))
	}
	// Struct element types pool too.
	type pair struct{ a, b int }
	ps := NewTypedScratch[pair]()
	p := ps.Get(10)
	p[3] = pair{1, 2}
	ps.Put(p)
	if q := ps.Get(5); len(q) != 5 || cap(q) < 64 {
		t.Fatalf("pair Get(5) len=%d cap=%d", len(q), cap(q))
	}
}

func BenchmarkForTilesOverhead(b *testing.B) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForTiles(64, func(lo, hi int) {})
	}
}
