// Package fp16 implements IEEE 754 binary16 storage conversion and the
// half-precision tensor-core MMA (HMMA m16n16k16 with FP32 accumulation) —
// the precision path whose generational scaling Figure 12 contrasts with
// the stagnating-then-regressing FP64 MMA. The Cubie kernels are FP64; this
// package supports the mixed-precision comparison experiments
// (examples/mixed-precision, BenchmarkFigure12MixedPrecision).
package fp16

import "math"

// Half is an IEEE 754 binary16 value in its raw bit representation.
type Half uint16

// Bit-layout constants of binary16.
const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	fracBits     = 10
	maxFiniteExp = 30 // biased exponent of the largest finite half
)

// FromFloat converts a float64 to the nearest binary16 (round to nearest,
// ties to even), with overflow to ±Inf and gradual underflow to subnormals.
func FromFloat(f float64) Half {
	b := math.Float64bits(f)
	sign := Half(b>>48) & signMask
	exp := int(b>>52) & 0x7FF
	frac := b & 0x000F_FFFF_FFFF_FFFF

	switch {
	case exp == 0x7FF: // Inf or NaN
		if frac != 0 {
			return sign | expMask | 0x200 // quiet NaN
		}
		return sign | expMask
	case exp == 0 && frac == 0:
		return sign // signed zero
	}

	// Unbiased exponent of the double.
	e := exp - 1023
	switch {
	case e > 15: // overflow → Inf
		return sign | expMask
	case e >= -14: // normal half range
		// 10-bit mantissa from the 52-bit one with round-to-nearest-even.
		mant := frac >> (52 - fracBits)
		rem := frac & ((1 << (52 - fracBits)) - 1)
		half := uint64(1) << (52 - fracBits - 1)
		if rem > half || (rem == half && mant&1 == 1) {
			mant++
			if mant == 1<<fracBits { // mantissa overflow bumps the exponent
				mant = 0
				e++
				if e > 15 {
					return sign | expMask
				}
			}
		}
		return sign | Half((e+expBias)<<fracBits) | Half(mant)
	case e >= -25: // subnormal half (−25 reaches the round-up-to-minimum case)
		// Implicit leading 1 becomes explicit; shift into the subnormal
		// position and round.
		shift := uint(-14 - e + (52 - fracBits))
		full := frac | 1<<52
		mant := full >> shift
		rem := full & ((uint64(1) << shift) - 1)
		half := uint64(1) << (shift - 1)
		if rem > half || (rem == half && mant&1 == 1) {
			mant++
		}
		if mant == 1<<fracBits { // rounded up into the smallest normal
			return sign | 1<<fracBits
		}
		return sign | Half(mant)
	default: // underflow to signed zero
		return sign
	}
}

// Float converts a binary16 back to float64 (exact).
func (h Half) Float() float64 {
	sign := float64(1)
	if h&signMask != 0 {
		sign = -1
	}
	exp := int(h&expMask) >> fracBits
	frac := int(h & fracMask)
	switch {
	case exp == 0x1F:
		if frac != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	case exp == 0:
		return sign * float64(frac) * math.Pow(2, -24)
	default:
		return sign * (1 + float64(frac)/1024) * math.Pow(2, float64(exp-expBias))
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Half) IsNaN() bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether h encodes ±Inf.
func (h Half) IsInf() bool { return h&expMask == expMask && h&fracMask == 0 }

// Shapes of the FP16 HMMA instruction (warp-level m16n16k16).
const (
	M = 16
	N = 16
	K = 16
)

// HMMATile executes one m16n16k16 HMMA on row-major tiles: the FP16
// operands a (16×16) and b (16×16) multiply with products computed exactly
// in FP32 and accumulated into the FP32 accumulator c in ascending-k order —
// the documented mixed-precision behavior of half-precision tensor cores.
func HMMATile(c []float32, a, b []Half) {
	for i := 0; i < M; i++ {
		for j := 0; j < N; j++ {
			acc := c[i*N+j]
			for k := 0; k < K; k++ {
				// FP16 × FP16 is exact in FP32.
				p := float32(a[i*K+k].Float()) * float32(b[k*N+j].Float())
				acc += p
			}
			c[i*N+j] = acc
		}
	}
}

// Quantize converts a float64 slice to halves (rounding each element).
func Quantize(src []float64) []Half {
	out := make([]Half, len(src))
	for i, v := range src {
		out[i] = FromFloat(v)
	}
	return out
}

// Dequantize converts halves back to float64.
func Dequantize(src []Half) []float64 {
	out := make([]float64, len(src))
	for i, h := range src {
		out[i] = h.Float()
	}
	return out
}

// GEMM computes C = A·B for FP16 operands with FP32 accumulation, tiled
// over m16n16k16 HMMAs (zero-padded edges), returning FP32 results widened
// to float64. Dimensions are element counts: A is m×k, B is k×n.
func GEMM(a, b []Half, m, k, n int) []float64 {
	c32 := make([]float32, m*n)
	aT := make([]Half, M*K)
	bT := make([]Half, K*N)
	cT := make([]float32, M*N)
	for i0 := 0; i0 < m; i0 += M {
		for j0 := 0; j0 < n; j0 += N {
			h := minInt(M, m-i0)
			w := minInt(N, n-j0)
			for i := range cT {
				cT[i] = 0
			}
			for k0 := 0; k0 < k; k0 += K {
				kk := minInt(K, k-k0)
				for i := 0; i < M; i++ {
					for x := 0; x < K; x++ {
						if i < h && x < kk {
							aT[i*K+x] = a[(i0+i)*k+k0+x]
						} else {
							aT[i*K+x] = 0
						}
					}
				}
				for x := 0; x < K; x++ {
					for j := 0; j < N; j++ {
						if x < kk && j < w {
							bT[x*N+j] = b[(k0+x)*n+j0+j]
						} else {
							bT[x*N+j] = 0
						}
					}
				}
				HMMATile(cT, aT, bT)
			}
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					c32[(i0+i)*n+j0+j] = cT[i*N+j]
				}
			}
		}
	}
	out := make([]float64, len(c32))
	for i, v := range c32 {
		out[i] = float64(v)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
