package fp16

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lcg"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		f    float64
		bits Half
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},            // largest finite half
		{math.Pow(2, -14), 0x0400}, // smallest normal
		{math.Pow(2, -24), 0x0001}, // smallest subnormal
		{math.Inf(1), 0x7C00},      // +Inf
		{math.Inf(-1), 0xFC00},     // -Inf
		{65520, 0x7C00},            // rounds up past max finite → Inf
		{1e10, 0x7C00},             // overflow
		{math.Pow(2, -26), 0x0000}, // underflow to zero (half of min subnormal rounds to even)
		{1.0009765625, 0x3C01},     // 1 + 2^-10: exactly representable
	}
	for _, c := range cases {
		if got := FromFloat(c.f); got != c.bits {
			t.Errorf("FromFloat(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat(math.NaN())
	if !h.IsNaN() {
		t.Fatalf("NaN not preserved: %#04x", h)
	}
	if !math.IsNaN(h.Float()) {
		t.Fatal("NaN round trip failed")
	}
	if FromFloat(math.Inf(1)).IsNaN() || !FromFloat(math.Inf(1)).IsInf() {
		t.Fatal("Inf classification wrong")
	}
}

func TestRoundTripExactForHalfValues(t *testing.T) {
	// Every finite half value must round-trip bit-exactly.
	for bits := 0; bits < 1<<16; bits++ {
		h := Half(bits)
		if h.IsNaN() {
			continue
		}
		f := h.Float()
		back := FromFloat(f)
		if back != h {
			t.Fatalf("round trip failed for %#04x: Float=%v, back=%#04x", h, f, back)
		}
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 sits exactly between 1.0 (0x3C00) and 1+2^-10 (0x3C01):
	// ties-to-even picks 0x3C00.
	if got := FromFloat(1 + math.Pow(2, -11)); got != 0x3C00 {
		t.Errorf("tie not rounded to even: %#04x", got)
	}
	// 1 + 3·2^-11 sits between 0x3C01 and 0x3C02: even is 0x3C02.
	if got := FromFloat(1 + 3*math.Pow(2, -11)); got != 0x3C02 {
		t.Errorf("tie not rounded to even: %#04x", got)
	}
}

func TestConversionMonotonicProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		// Clamp to finite half range.
		clamp := func(x float64) float64 {
			return math.Max(-65504, math.Min(65504, x))
		}
		a, b = clamp(a), clamp(b)
		if a > b {
			a, b = b, a
		}
		return FromFloat(a).Float() <= FromFloat(b).Float()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// Relative error of binary16 rounding is at most 2^-11 for normals.
	g := lcg.New(5)
	for i := 0; i < 100000; i++ {
		v := g.Symmetric()
		if math.Abs(v) < math.Pow(2, -14) {
			continue
		}
		q := FromFloat(v).Float()
		if rel := math.Abs(q-v) / math.Abs(v); rel > math.Pow(2, -11) {
			t.Fatalf("relative error %v for %v exceeds 2^-11", rel, v)
		}
	}
}

func TestHMMACorrectness(t *testing.T) {
	g := lcg.New(9)
	a64 := make([]float64, M*K)
	b64 := make([]float64, K*N)
	g.Fill(a64)
	g.Fill(b64)
	a := Quantize(a64)
	b := Quantize(b64)
	c := make([]float32, M*N)
	HMMATile(c, a, b)
	for i := 0; i < M; i++ {
		for j := 0; j < N; j++ {
			var want float64
			for k := 0; k < K; k++ {
				want += a[i*K+k].Float() * b[k*N+j].Float()
			}
			if d := math.Abs(float64(c[i*N+j]) - want); d > 1e-4 {
				t.Fatalf("C(%d,%d) = %v, want ≈%v", i, j, c[i*N+j], want)
			}
		}
	}
}

func TestGEMMMatchesNaiveOnQuantizedInputs(t *testing.T) {
	const m, k, n = 24, 40, 19 // non-multiples exercise the padding
	g := lcg.New(13)
	a64 := make([]float64, m*k)
	b64 := make([]float64, k*n)
	g.Fill(a64)
	g.Fill(b64)
	a := Quantize(a64)
	b := Quantize(b64)
	got := GEMM(a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for kk := 0; kk < k; kk++ {
				want += a[i*k+kk].Float() * b[kk*n+j].Float()
			}
			if d := math.Abs(got[i*n+j] - want); d > 1e-3 {
				t.Fatalf("C(%d,%d) = %v, want ≈%v", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestFP16GEMMLessAccurateThanFP64(t *testing.T) {
	// The mixed-precision story behind Figure 12: half-precision inputs
	// lose ~3 decimal digits relative to the FP64 path.
	const m, k, n = 32, 64, 32
	g := lcg.New(17)
	a64 := make([]float64, m*k)
	b64 := make([]float64, k*n)
	g.Fill(a64)
	g.Fill(b64)
	half := GEMM(Quantize(a64), Quantize(b64), m, k, n)
	var maxErr float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for kk := 0; kk < k; kk++ {
				want += a64[i*k+kk] * b64[kk*n+j]
			}
			if d := math.Abs(half[i*n+j] - want); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr < 1e-4 {
		t.Errorf("FP16 error %v suspiciously small — quantization not happening?", maxErr)
	}
	if maxErr > 0.5 {
		t.Errorf("FP16 error %v too large for (-2,2) inputs at k=64", maxErr)
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	g := lcg.New(21)
	src := make([]float64, 256)
	g.Fill(src)
	rt := Dequantize(Quantize(src))
	for i := range src {
		if math.Abs(rt[i]-src[i]) > math.Abs(src[i])*math.Pow(2, -11)+1e-12 {
			t.Fatalf("round trip error at %d: %v vs %v", i, rt[i], src[i])
		}
	}
}

func BenchmarkHMMATile(b *testing.B) {
	g := lcg.New(1)
	a64 := make([]float64, M*K)
	b64 := make([]float64, K*N)
	g.Fill(a64)
	g.Fill(b64)
	a := Quantize(a64)
	bb := Quantize(b64)
	c := make([]float32, M*N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HMMATile(c, a, bb)
	}
}

func BenchmarkFromFloat(b *testing.B) {
	var sink Half
	for i := 0; i < b.N; i++ {
		sink = FromFloat(1.2345 + float64(i&7))
	}
	_ = sink
}
