package fp16

import (
	"math"
	"testing"
)

// FuzzFromFloat checks the conversion's contract on arbitrary doubles:
// never panic, preserve sign and classification, and round to one of the
// two neighboring representable halves.
func FuzzFromFloat(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-65504.0)
	f.Add(math.Pi)
	f.Add(6.1e-5)
	f.Add(5.96e-8)
	f.Add(1e300)
	f.Add(math.Inf(1))
	f.Fuzz(func(t *testing.T, x float64) {
		h := FromFloat(x)
		switch {
		case math.IsNaN(x):
			if !h.IsNaN() {
				t.Fatalf("NaN lost: %#04x", h)
			}
			return
		case math.IsInf(x, 0):
			if !h.IsInf() {
				t.Fatalf("Inf lost: %#04x", h)
			}
		}
		y := h.Float()
		if math.Signbit(y) != math.Signbit(x) && y != 0 {
			t.Fatalf("sign flipped: %v → %v", x, y)
		}
		// The rounding boundary to Inf is 65520 (midpoint between the max
		// finite half 65504 and the next binade step 65536).
		if math.Abs(x) >= 65520 {
			if !h.IsInf() {
				t.Fatalf("overflow not saturated: %v → %v", x, y)
			}
			return
		}
		if h.IsInf() {
			t.Fatalf("premature overflow: %v → Inf", x)
		}
		// Rounding error bounded by half a ULP of the result's binade,
		// or the subnormal quantum.
		ulp := math.Pow(2, -24)
		if e := math.Abs(y); e >= math.Pow(2, -14) {
			_, exp := math.Frexp(y)
			ulp = math.Ldexp(1, exp-11)
		}
		if math.Abs(y-x) > ulp/2*(1+1e-12) {
			t.Fatalf("rounding error too large: %v → %v (ulp %v)", x, y, ulp)
		}
	})
}
