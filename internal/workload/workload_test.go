package workload

import (
	"testing"

	"repro/internal/sim"
)

// fake is a minimal Workload for contract tests.
type fake struct{}

func (fake) Name() string         { return "Fake" }
func (fake) Quadrant() int        { return 1 }
func (fake) Dwarf() string        { return "Test" }
func (fake) Variants() []Variant  { return []Variant{Baseline, TC} }
func (fake) Representative() Case { return Case{Name: "a"} }
func (fake) Repeats() int         { return 1 }
func (fake) Cases() []Case        { return []Case{{Name: "a"}, {Name: "b", Dims: []int{2}}} }
func (fake) Run(Case, Variant) (*Result, error) {
	return &Result{Profile: sim.Profile{VectorFLOPs: 1}, Work: 1, MetricName: "X"}, nil
}
func (fake) Reference(Case) ([]float64, error) { return []float64{1}, nil }

func TestFindCase(t *testing.T) {
	w := fake{}
	c, err := FindCase(w, "b")
	if err != nil || c.Dims[0] != 2 {
		t.Fatalf("FindCase(b) = %v, %v", c, err)
	}
	if _, err := FindCase(w, "zzz"); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestHasVariant(t *testing.T) {
	w := fake{}
	if !HasVariant(w, TC) || !HasVariant(w, Baseline) {
		t.Fatal("declared variants not found")
	}
	if HasVariant(w, CCE) {
		t.Fatal("undeclared variant reported")
	}
}

func TestVariantConstants(t *testing.T) {
	// The paper's Section 5.2 names, pinned.
	if Baseline != "Baseline" || TC != "TC" || CC != "CC" || CCE != "CC-E" {
		t.Fatal("variant names drifted from the paper")
	}
}
