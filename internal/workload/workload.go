// Package workload defines the common contract every Cubie kernel
// implements: the four algorithmic variants of Section 5.2, the per-workload
// test cases of Table 2, and the result type that feeds the performance
// (profile), accuracy (output), and utilization (Observation 2) analyses.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Variant identifies one of the paper's algorithmic implementation variants
// (Section 5.2).
type Variant string

// The four variants.
const (
	// Baseline is the vendor-library or prior-work vector implementation
	// (cuBLAS, cuFFT, CUB, cuSPARSE, Gunrock, DRStencil class).
	Baseline Variant = "Baseline"
	// TC performs the floating-point work with tensor-core MMA instructions.
	TC Variant = "TC"
	// CC replaces every MMA with semantically-equivalent CUDA-core
	// instructions while keeping data structures and algorithm identical.
	CC Variant = "CC"
	// CCE keeps only the mathematically essential CUDA-core operations,
	// dropping the redundancy the MMA shape imposes. For Quadrant I kernels
	// CC-E is defined to equal CC.
	CCE Variant = "CC-E"
)

// Case is one test case of a workload (Table 2 lists five per workload).
type Case struct {
	// Name is the display label, e.g. "1Kx1Kx1K" or "raefsky3".
	Name string
	// Dims carries the numeric parameters (M, N, K / grid dims / sizes).
	Dims []int
	// Dataset names a Table 3/4 input for the sparse and graph workloads.
	Dataset string
}

// Result is the outcome of running one (case, variant) pair.
type Result struct {
	// Profile is the execution profile consumed by the sim timing model.
	Profile sim.Profile
	// Work is the essential (non-redundant) work of the case, in the units
	// MetricName describes; throughput = Work / simulated time.
	Work float64
	// MetricName is the throughput unit: "GFLOPS", "GTEPS", "Mpart/s", ...
	MetricName string
	// Output is the flattened numerical result used by the accuracy
	// analysis (Table 6). It may be a deterministic sample of a large
	// output; all variants of a workload must sample identically. Nil for
	// profile-only runs of cases too large to execute in full.
	Output []float64
	// InputUtil and OutputUtil are the MMA operand utilization fractions
	// behind the Figure 2 quadrant categorization (1 = full). Zero for
	// baseline variants, which do not issue MMAs.
	InputUtil, OutputUtil float64
}

// Workload is one Cubie kernel with all of its variants.
type Workload interface {
	// Name returns the Table 2 kernel name ("GEMM", "SpMV", ...).
	Name() string
	// Quadrant returns the Figure 2 utilization quadrant (1–4).
	Quadrant() int
	// Dwarf returns the Berkeley-dwarf class of Table 7.
	Dwarf() string
	// Cases returns the five Table 2 test cases.
	Cases() []Case
	// Variants returns the variants this workload implements, always
	// including Baseline and TC (except PiC, which has no Baseline).
	Variants() []Variant
	// Representative returns the test case used for the single-case
	// experiments (power, EDP, accuracy).
	Representative() Case
	// Repeats returns the Figure 7 measurement-loop repeat count.
	Repeats() int
	// Run executes the (case, variant) pair: it performs the variant's real
	// arithmetic (or a documented representative subset for very large
	// cases) and returns the profile plus outputs.
	Run(c Case, v Variant) (*Result, error)
	// Reference computes the CPU-serial ground truth (Table 6's baseline
	// for error measurement) for the case, aligned with Result.Output.
	Reference(c Case) ([]float64, error)
}

// FindCase resolves a case by name.
func FindCase(w Workload, name string) (Case, error) {
	for _, c := range w.Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("workload %s: unknown case %q", w.Name(), name)
}

// HasVariant reports whether w implements v.
func HasVariant(w Workload, v Variant) bool {
	for _, x := range w.Variants() {
		if x == v {
			return true
		}
	}
	return false
}
