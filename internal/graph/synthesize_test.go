package graph

import (
	"math"
	"testing"
)

func TestTable3Metadata(t *testing.T) {
	ds := Table3()
	if len(ds) != 5 {
		t.Fatalf("Table 3 has %d entries, want 5", len(ds))
	}
	want := map[string][2]int{
		"wikipedia-20070206": {3566907, 90043704},
		"mycielskian17":      {98303, 100245742},
		"wb-edu":             {9845725, 112468163},
		"kron_g500-logn21":   {2097152, 182082942},
		"com-Orkut":          {3072441, 234370166},
	}
	for _, d := range ds {
		w, ok := want[d.Name]
		if !ok {
			t.Errorf("unexpected graph %q", d.Name)
			continue
		}
		if d.Vertices != w[0] || d.Edges != w[1] {
			t.Errorf("%s: %d/%d, want %d/%d", d.Name, d.Vertices, d.Edges, w[0], w[1])
		}
		if d.ScaleNote == "" {
			t.Errorf("%s: missing scale note documenting the substitution", d.Name)
		}
	}
}

func TestSynthesizeAllValid(t *testing.T) {
	for _, d := range Table3() {
		g, err := Synthesize(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.N < 1000 || g.Edges() < 10000 {
			t.Errorf("%s: synthesized too small (%d vertices, %d edges)",
				d.Name, g.N, g.Edges())
		}
		if g.Edges() > 6_000_000 {
			t.Errorf("%s: synthesized too large (%d edges)", d.Name, g.Edges())
		}
	}
}

func TestSynthesizeUnknown(t *testing.T) {
	if _, err := Synthesize("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, _ := Synthesize("com-Orkut")
	b, _ := Synthesize("com-Orkut")
	if a.Edges() != b.Edges() || a.N != b.N {
		t.Fatal("nondeterministic synthesis")
	}
	for k := 0; k < a.Edges(); k += 10007 {
		if a.Neighbors[k] != b.Neighbors[k] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestMycielskianRecurrence(t *testing.T) {
	// M_k: n = 2n+1 per step from n=2; m = 3m+n from m=1.
	n, m := 2, 1
	for order := 2; order <= 9; order++ {
		g := Mycielskian(order)
		if g.N != n {
			t.Fatalf("M%d has %d vertices, want %d", order, g.N, n)
		}
		if g.Edges() != 2*m {
			t.Fatalf("M%d has %d directed edges, want %d", order, g.Edges(), 2*m)
		}
		n, m = 2*n+1, 3*m+n
	}
}

func TestMycielskianTriangleFree(t *testing.T) {
	// The Mycielski construction preserves triangle-freeness.
	g := Mycielskian(6)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Adj(v) {
			if int(u) <= v {
				continue
			}
			for _, w := range g.Adj(int(u)) {
				if int(w) <= int(u) {
					continue
				}
				// Is (v, w) an edge? Then v-u-w-v is a triangle.
				for _, x := range g.Adj(v) {
					if x == w {
						t.Fatalf("triangle %d-%d-%d", v, u, w)
					}
				}
			}
		}
	}
}

func TestMycielskianPanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for order 1")
		}
	}()
	Mycielskian(1)
}

func TestRMATSkewedDegrees(t *testing.T) {
	g, _ := Synthesize("kron_g500-logn21")
	f := ExtractFeatures(g)
	if f.MaxAvgRatio < 10 {
		t.Errorf("RMAT max/avg degree ratio %v, want heavily skewed (>10)", f.MaxAvgRatio)
	}
	if f.DegreeCV < 1 {
		t.Errorf("RMAT degree CV %v, want > 1", f.DegreeCV)
	}
}

func TestWebGraphLocality(t *testing.T) {
	web, _ := Synthesize("wb-edu")
	soc, _ := Synthesize("com-Orkut")
	fw, fs := ExtractFeatures(web), ExtractFeatures(soc)
	if fw.Locality >= fs.Locality {
		t.Errorf("web locality %v should be below social %v", fw.Locality, fs.Locality)
	}
}

func TestExtractFeaturesSane(t *testing.T) {
	g := Mycielskian(8)
	f := ExtractFeatures(g)
	if math.Abs(f.AvgDegree-float64(g.Edges())/float64(g.N)) > 1e-12 {
		t.Error("avg degree wrong")
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("Vector / FeatureNames mismatch")
	}
	if f.MaxAvgRatio < 1 {
		t.Error("max/avg < 1")
	}
}

func TestCorpus(t *testing.T) {
	c := Corpus(8, 5)
	if len(c) != 8 {
		t.Fatalf("corpus size %d", len(c))
	}
	for i, g := range c {
		if err := g.Validate(); err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
		if g.Edges() == 0 {
			t.Fatalf("corpus[%d] empty", i)
		}
	}
}
