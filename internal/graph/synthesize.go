package graph

import (
	"fmt"
	"math"

	"repro/internal/lcg"
)

// Dataset describes one Table 3 graph: published SuiteSparse metadata plus
// the synthesis recipe reproducing its structural class. The paper's graphs
// total >700 M directed edges; this repo synthesizes each class at reduced
// scale (≈1–2 M edges) with matching degree structure — the performance
// characterization depends on structure, not raw size, and the harness
// reports relative speedups. ScaleNote records the reduction.
type Dataset struct {
	Name      string
	Group     string
	Vertices  int // published
	Edges     int // published (directed nonzero count)
	Class     string
	ScaleNote string
}

// Table3 lists the five BFS graphs of the paper's Table 3.
func Table3() []Dataset {
	return []Dataset{
		{Name: "wikipedia-20070206", Group: "Gleich", Vertices: 3566907,
			Edges: 90043704, Class: "powerlaw-web",
			ScaleNote: "synthesized at 1/56 scale (64Ki vertices)"},
		{Name: "mycielskian17", Group: "Mycielski", Vertices: 98303,
			Edges: 100245742, Class: "mycielskian",
			ScaleNote: "exact Mycielskian construction, order 13 instead of 17"},
		{Name: "wb-edu", Group: "SNAP", Vertices: 9845725,
			Edges: 112468163, Class: "hierarchical-web",
			ScaleNote: "synthesized at 1/150 scale (64Ki vertices)"},
		{Name: "kron_g500-logn21", Group: "DIMACS10", Vertices: 2097152,
			Edges: 182082942, Class: "kronecker",
			ScaleNote: "RMAT scale 15 instead of 21, same edge factor class"},
		{Name: "com-Orkut", Group: "SNAP", Vertices: 3072441,
			Edges: 234370166, Class: "powerlaw-social",
			ScaleNote: "synthesized at 1/94 scale (32Ki vertices)"},
	}
}

// Synthesize materializes the named Table 3 graph class at reduced scale,
// deterministically.
func Synthesize(name string) (*Graph, error) {
	for _, d := range Table3() {
		if d.Name == name {
			g := lcg.New(int64(len(d.Name))*104729 + int64(d.Vertices))
			return synthesizeClass(d, g), nil
		}
	}
	return nil, fmt.Errorf("graph: unknown Table 3 graph %q", name)
}

func synthesizeClass(d Dataset, g *lcg.Generator) *Graph {
	switch d.Class {
	case "powerlaw-web":
		return powerLaw(1<<16, 12, 2.1, g)
	case "mycielskian":
		return Mycielskian(13)
	case "hierarchical-web":
		return hierarchicalWeb(1<<16, 9, g)
	case "kronecker":
		return RMAT(15, 48, g)
	case "powerlaw-social":
		return powerLaw(1<<15, 38, 2.4, g)
	default:
		panic("graph: unknown synthesis class " + d.Class)
	}
}

// Mycielskian builds the order-k Mycielskian graph M_k: M_2 = K_2 and
// M_{k+1} is the Mycielski construction over M_k (n' = 2n+1, m' = 3m+n).
// mycielskian17 in SuiteSparse is M_17; we build the same family at a lower
// order. The graph is triangle-free with growing chromatic number — a
// structure no random generator reproduces.
func Mycielskian(k int) *Graph {
	if k < 2 {
		panic("graph: Mycielskian order must be ≥ 2")
	}
	// Start from K2.
	edges := [][2]int32{{0, 1}}
	n := 2
	for order := 2; order < k; order++ {
		// Vertices: originals v_0..v_{n-1}, copies u_i = n+i, apex w = 2n.
		next := make([][2]int32, 0, 3*len(edges)+n)
		next = append(next, edges...)
		for _, e := range edges {
			v, u := e[0], e[1]
			next = append(next,
				[2]int32{v, int32(n) + u},
				[2]int32{u, int32(n) + v})
		}
		apex := int32(2 * n)
		for i := 0; i < n; i++ {
			next = append(next, [2]int32{int32(n + i), apex})
		}
		edges, n = next, 2*n+1
	}
	return Undirected(n, edges)
}

// RMAT generates a Kronecker (R-MAT) graph of 2^scale vertices with the
// Graph500 partition probabilities (a, b, c) = (0.57, 0.19, 0.19).
func RMAT(scale, edgeFactor int, g *lcg.Generator) *Graph {
	n := 1 << scale
	m := n * edgeFactor / 2 // undirected edge count before symmetrization
	edges := make([][2]int32, 0, m)
	for e := 0; e < m; e++ {
		var src, dst int
		for level := 0; level < scale; level++ {
			r := g.Uniform()
			switch {
			case r < 0.57:
				// quadrant a: no bits set
			case r < 0.76:
				dst |= 1 << level
			case r < 0.95:
				src |= 1 << level
			default:
				src |= 1 << level
				dst |= 1 << level
			}
		}
		edges = append(edges, [2]int32{int32(src), int32(dst)})
	}
	return Undirected(n, edges)
}

// powerLaw generates an undirected graph whose degree sequence follows a
// truncated power law with the given average degree and exponent, wired with
// a configuration-model style stub matching.
func powerLaw(n, avgDeg int, exponent float64, g *lcg.Generator) *Graph {
	// Sample degrees d ∝ u^{-1/(exp-1)}, truncated, then rescale to the
	// requested average.
	deg := make([]float64, n)
	var sum float64
	maxDeg := float64(n) / 8
	for i := range deg {
		d := math.Pow(0.01+0.99*g.Uniform(), -1/(exponent-1))
		if d > maxDeg {
			d = maxDeg
		}
		deg[i] = d
		sum += d
	}
	scaleF := float64(n*avgDeg) / 2 / sum
	// Build a stub list and match stubs pseudo-randomly.
	var stubs []int32
	for i := range deg {
		k := int(deg[i]*scaleF + 0.5)
		if k < 1 {
			k = 1
		}
		for j := 0; j < k; j++ {
			stubs = append(stubs, int32(i))
		}
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	// Fisher–Yates shuffle with the LCG.
	for i := len(stubs) - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	edges := make([][2]int32, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		edges = append(edges, [2]int32{stubs[i], stubs[i+1]})
	}
	return Undirected(n, edges)
}

// hierarchicalWeb generates a web-like graph: dense intra-community links
// (pages within a site) plus sparse inter-community links, giving the high
// locality of .edu web crawls such as wb-edu.
func hierarchicalWeb(n, avgDeg int, g *lcg.Generator) *Graph {
	const community = 64
	edges := make([][2]int32, 0, n*avgDeg/2)
	m := n * avgDeg / 2
	for e := 0; e < m; e++ {
		u := g.Intn(n)
		var v int
		if g.Uniform() < 0.85 {
			// Intra-community edge.
			base := (u / community) * community
			v = base + g.Intn(community)
			if v >= n {
				v = base
			}
		} else {
			v = g.Intn(n)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	return Undirected(n, edges)
}

// Features is the structural feature vector of the Figure 10a PCA.
type Features struct {
	LogVertices float64
	LogEdges    float64
	AvgDegree   float64
	DegreeCV    float64
	MaxAvgRatio float64
	Locality    float64 // mean normalized |u-v| over edges (label locality)
}

// ExtractFeatures computes the Figure 10a feature vector for a graph.
func ExtractFeatures(g *Graph) Features {
	n, m := float64(g.N), float64(g.Edges())
	f := Features{
		LogVertices: math.Log10(math.Max(n, 1)),
		LogEdges:    math.Log10(math.Max(m, 1)),
	}
	if n == 0 {
		return f
	}
	f.AvgDegree = m / n
	var sumSq, maxDeg float64
	for v := 0; v < g.N; v++ {
		d := float64(g.Degree(v))
		sumSq += d * d
		if d > maxDeg {
			maxDeg = d
		}
	}
	variance := sumSq/n - f.AvgDegree*f.AvgDegree
	if variance < 0 {
		variance = 0
	}
	if f.AvgDegree > 0 {
		f.DegreeCV = math.Sqrt(variance) / f.AvgDegree
		f.MaxAvgRatio = maxDeg / f.AvgDegree
	}
	var dist float64
	for v := 0; v < g.N; v++ {
		for _, u := range g.Adj(v) {
			dist += math.Abs(float64(int(u) - v))
		}
	}
	if m > 0 && n > 1 {
		f.Locality = dist / m / (n - 1)
	}
	return f
}

// Vector flattens the features in a fixed order for PCA.
func (f Features) Vector() []float64 {
	return []float64{f.LogVertices, f.LogEdges, f.AvgDegree, f.DegreeCV,
		f.MaxAvgRatio, f.Locality}
}

// FeatureNames labels the Vector components.
func FeatureNames() []string {
	return []string{"logV", "logE", "avgDeg", "degCV", "maxAvg", "locality"}
}

// Corpus generates n small synthetic graphs spanning the classes above,
// standing in for the 499-graph SuiteSparse sweep of Figure 10a.
func Corpus(n int, seed int64) []*Graph {
	g := lcg.New(seed)
	out := make([]*Graph, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, powerLaw(512+g.Intn(1536), 4+g.Intn(24), 2.0+g.Uniform(), g))
		case 1:
			out = append(out, RMAT(9+g.Intn(3), 4+g.Intn(28), g))
		case 2:
			out = append(out, hierarchicalWeb(512+g.Intn(1536), 4+g.Intn(12), g))
		default:
			out = append(out, Mycielskian(7+g.Intn(4)))
		}
	}
	return out
}
