package graph

import (
	"math/bits"
	"slices"

	"repro/internal/mmu"
	"repro/internal/par"
)

// BerryBees represents graphs as 8×128 bitmap block slices: the adjacency
// matrix is cut into slices of 8 consecutive rows; within a slice, columns
// are grouped into 128-wide segments, and only nonempty 8×128 blocks are
// stored. Each block is directly usable as the A operand of the single-bit
// m8n8k128 MMA.

// SliceSet is the bitmap block slice-set encoding of a graph. Blocks are
// stored structure-of-arrays: block i is the pair (ColSegs[i], Bits[i]),
// with a slice's blocks occupying the contiguous index range
// [SlicePtr[si], SlicePtr[si+1]) sorted by column segment. The split layout
// keeps the bit payloads contiguous in memory, so a slice's whole block run
// feeds mmu.BMMAPanel as one packed sweep — the panel-engine equivalent of
// the BLIS operand packing the FP kernels use.
type SliceSet struct {
	N         int
	RowSlices int     // ceil(N/8)
	SlicePtr  []int   // length RowSlices+1, indexes ColSegs/Bits
	ColSegs   []int32 // column segment of block i: columns [128·seg, 128·(seg+1))
	Bits      []mmu.BitFragA
}

// Pooled arenas for the counted two-pass ToSliceSet: a column-segment stamp
// directory, the segment → output-slot map, and the per-slice distinct
// segment list.
var (
	sliceStampScratch = par.NewTypedScratch[int32]()
	sliceSlotScratch  = par.NewTypedScratch[int32]()
	sliceSegsScratch  = par.NewTypedScratch[int32]()
)

// ToSliceSet converts a CSR graph into the 8×128 bitmap slice-set format.
// The restructuring (and its padding) is the data-structure change that Key
// Observation 1 attributes to MMU adoption.
//
// The build is a counted two-pass mirroring sparse.ToMBSR: pass 1 counts
// distinct column segments per slice against a pooled stamp directory
// (stamp si+1), sizing SlicePtr and one exact allocation each for ColSegs
// and Bits; pass 2 re-discovers each slice's segments under the -(si+1)
// stamp, sorts them, and ORs the adjacency bits straight into the assigned
// fragments. The map-of-heap-fragments version this replaced allocated a
// map, a 128-byte fragment, and repeated slice growth per slice.
func ToSliceSet(g *Graph) *SliceSet {
	rs := (g.N + 7) / 8
	segs := (g.N + 127) / 128
	s := &SliceSet{N: g.N, RowSlices: rs, SlicePtr: make([]int, rs+1)}
	stamp := sliceStampScratch.Get(segs)
	defer sliceStampScratch.Put(stamp)
	clear(stamp)
	// Pass 1: count distinct column segments per slice.
	total := 0
	for si := 0; si < rs; si++ {
		gen := int32(si + 1)
		for r := 0; r < 8; r++ {
			v := si*8 + r
			if v >= g.N {
				break
			}
			for _, u := range g.Adj(v) {
				seg := u / 128
				if stamp[seg] != gen {
					stamp[seg] = gen
					total++
				}
			}
		}
		s.SlicePtr[si+1] = total
	}
	// Pass 2: fill the exactly-sized block arrays (fresh allocations, so the
	// bit fragments start zeroed).
	s.ColSegs = make([]int32, total)
	s.Bits = make([]mmu.BitFragA, total)
	slot := sliceSlotScratch.Get(segs)
	defer sliceSlotScratch.Put(slot)
	list := sliceSegsScratch.Get(segs)
	defer sliceSegsScratch.Put(list)
	for si := 0; si < rs; si++ {
		gen := int32(-(si + 1))
		base := s.SlicePtr[si]
		n := 0
		for r := 0; r < 8; r++ {
			v := si*8 + r
			if v >= g.N {
				break
			}
			for _, u := range g.Adj(v) {
				seg := u / 128
				if stamp[seg] != gen {
					stamp[seg] = gen
					list[n] = seg
					n++
				}
			}
		}
		run := list[:n]
		slices.Sort(run)
		for idx, seg := range run {
			s.ColSegs[base+idx] = seg
			slot[seg] = int32(idx)
		}
		for r := 0; r < 8; r++ {
			v := si*8 + r
			if v >= g.N {
				break
			}
			for _, u := range g.Adj(v) {
				seg := u / 128
				s.Bits[base+int(slot[seg])].SetBit(r, int(u%128))
			}
		}
	}
	return s
}

// BlockCount returns the number of stored 8×128 blocks.
func (s *SliceSet) BlockCount() int { return len(s.ColSegs) }

// FillRatio returns edges / (blocks · 8 · 128): the bitmap payload density,
// i.e. the MMU input utilization of the BFS workload.
func (s *SliceSet) FillRatio(edges int) float64 {
	if len(s.ColSegs) == 0 {
		return 0
	}
	return float64(edges) / float64(len(s.ColSegs)*8*128)
}

// Frontier is a vertex bitset used by the bitmap BFS.
type Frontier struct {
	N     int
	Words []uint64
}

// NewFrontier returns an empty frontier over n vertices.
func NewFrontier(n int) *Frontier {
	return &Frontier{N: n, Words: make([]uint64, (n+63)/64)}
}

// Set marks vertex v.
func (f *Frontier) Set(v int) { f.Words[v/64] |= 1 << (v % 64) }

// Has reports whether vertex v is marked.
func (f *Frontier) Has(v int) bool { return f.Words[v/64]>>(v%64)&1 == 1 }

// Count returns the number of marked vertices.
func (f *Frontier) Count() int {
	c := 0
	for _, w := range f.Words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no vertex is marked.
func (f *Frontier) Empty() bool {
	for _, w := range f.Words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Segment extracts the 128-bit column segment seg as the two words the
// B operand of the bit MMA consumes.
func (f *Frontier) Segment(seg int32) [2]uint64 {
	var out [2]uint64
	base := int(seg) * 2
	if base < len(f.Words) {
		out[0] = f.Words[base]
	}
	if base+1 < len(f.Words) {
		out[1] = f.Words[base+1]
	}
	return out
}

// AndNot removes all vertices in g from f in place.
func (f *Frontier) AndNot(g *Frontier) {
	for i := range f.Words {
		f.Words[i] &^= g.Words[i]
	}
}

// Or merges g into f in place.
func (f *Frontier) Or(g *Frontier) {
	for i := range f.Words {
		f.Words[i] |= g.Words[i]
	}
}
