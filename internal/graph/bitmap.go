package graph

import (
	"math/bits"

	"repro/internal/mmu"
)

// BerryBees represents graphs as 8×128 bitmap block slices: the adjacency
// matrix is cut into slices of 8 consecutive rows; within a slice, columns
// are grouped into 128-wide segments, and only nonempty 8×128 blocks are
// stored. Each block is directly usable as the A operand of the single-bit
// m8n8k128 MMA.

// SliceSet is the bitmap block slice-set encoding of a graph. Blocks are
// stored structure-of-arrays: block i is the pair (ColSegs[i], Bits[i]),
// with a slice's blocks occupying the contiguous index range
// [SlicePtr[si], SlicePtr[si+1]) sorted by column segment. The split layout
// keeps the bit payloads contiguous in memory, so a slice's whole block run
// feeds mmu.BMMAPanel as one packed sweep — the panel-engine equivalent of
// the BLIS operand packing the FP kernels use.
type SliceSet struct {
	N         int
	RowSlices int     // ceil(N/8)
	SlicePtr  []int   // length RowSlices+1, indexes ColSegs/Bits
	ColSegs   []int32 // column segment of block i: columns [128·seg, 128·(seg+1))
	Bits      []mmu.BitFragA
}

// ToSliceSet converts a CSR graph into the 8×128 bitmap slice-set format.
// The restructuring (and its padding) is the data-structure change that Key
// Observation 1 attributes to MMU adoption.
func ToSliceSet(g *Graph) *SliceSet {
	rs := (g.N + 7) / 8
	s := &SliceSet{N: g.N, RowSlices: rs, SlicePtr: make([]int, rs+1)}
	for si := 0; si < rs; si++ {
		blocks := map[int32]*mmu.BitFragA{}
		var order []int32
		for r := 0; r < 8; r++ {
			v := si*8 + r
			if v >= g.N {
				break
			}
			for _, u := range g.Adj(v) {
				seg := u / 128
				blk, ok := blocks[seg]
				if !ok {
					blk = new(mmu.BitFragA)
					blocks[seg] = blk
					order = append(order, seg)
				}
				blk.SetBit(r, int(u%128))
			}
		}
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && order[b] < order[b-1]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		for _, seg := range order {
			s.ColSegs = append(s.ColSegs, seg)
			s.Bits = append(s.Bits, *blocks[seg])
		}
		s.SlicePtr[si+1] = len(s.ColSegs)
	}
	return s
}

// BlockCount returns the number of stored 8×128 blocks.
func (s *SliceSet) BlockCount() int { return len(s.ColSegs) }

// FillRatio returns edges / (blocks · 8 · 128): the bitmap payload density,
// i.e. the MMU input utilization of the BFS workload.
func (s *SliceSet) FillRatio(edges int) float64 {
	if len(s.ColSegs) == 0 {
		return 0
	}
	return float64(edges) / float64(len(s.ColSegs)*8*128)
}

// Frontier is a vertex bitset used by the bitmap BFS.
type Frontier struct {
	N     int
	Words []uint64
}

// NewFrontier returns an empty frontier over n vertices.
func NewFrontier(n int) *Frontier {
	return &Frontier{N: n, Words: make([]uint64, (n+63)/64)}
}

// Set marks vertex v.
func (f *Frontier) Set(v int) { f.Words[v/64] |= 1 << (v % 64) }

// Has reports whether vertex v is marked.
func (f *Frontier) Has(v int) bool { return f.Words[v/64]>>(v%64)&1 == 1 }

// Count returns the number of marked vertices.
func (f *Frontier) Count() int {
	c := 0
	for _, w := range f.Words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no vertex is marked.
func (f *Frontier) Empty() bool {
	for _, w := range f.Words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Segment extracts the 128-bit column segment seg as the two words the
// B operand of the bit MMA consumes.
func (f *Frontier) Segment(seg int32) [2]uint64 {
	var out [2]uint64
	base := int(seg) * 2
	if base < len(f.Words) {
		out[0] = f.Words[base]
	}
	if base+1 < len(f.Words) {
		out[1] = f.Words[base+1]
	}
	return out
}

// AndNot removes all vertices in g from f in place.
func (f *Frontier) AndNot(g *Frontier) {
	for i := range f.Words {
		f.Words[i] &^= g.Words[i]
	}
}

// Or merges g into f in place.
func (f *Frontier) Or(g *Frontier) {
	for i := range f.Words {
		f.Words[i] |= g.Words[i]
	}
}
