package graph

import (
	"sync"

	"repro/internal/metrics"
)

// Shared-cache metrics: hits are requests served from the process-wide
// cache (including callers that joined an in-flight synthesis); misses ran
// the (expensive) synthesis.
var (
	metCacheHits = metrics.NewCounter("cubie_graph_synthesize_hits_total",
		"Table 3 graph requests served from the shared cache.")
	metCacheMisses = metrics.NewCounter("cubie_graph_synthesize_misses_total",
		"Table 3 graph requests that synthesized a new instance.")
)

// graphFlight is one per-name synthesis: the first requester owns it,
// later requesters block on done and share the outcome.
type graphFlight struct {
	done chan struct{}
	g    *Graph
	err  error
}

// shared caches synthesized Table 3 graphs process-wide. Synthesis is
// deterministic, so every consumer sees the identical graph. Entries are
// per-name singleflights rather than a lock held across synthesis, so
// distinct graphs synthesize concurrently — the harness planner pre-warms
// them in parallel while the kernel that needs one joins its flight.
var shared = struct {
	mu sync.Mutex
	m  map[string]*graphFlight
}{m: map[string]*graphFlight{}}

// SynthesizeShared returns the process-wide shared instance of the named
// Table 3 graph, synthesizing it on first use. The returned Graph must be
// treated as read-only: BFS and the harness coverage/ablation studies all
// hold the same pointer (BFS's Relabel copies into a fresh graph, so the
// cached instance stays pristine). Concurrent first callers for one name
// do the work exactly once; a failed synthesis is evicted so a later
// caller can retry.
func SynthesizeShared(name string) (*Graph, error) {
	shared.mu.Lock()
	if f, ok := shared.m[name]; ok {
		shared.mu.Unlock()
		<-f.done
		if f.err == nil {
			metCacheHits.Inc()
		}
		return f.g, f.err
	}
	f := &graphFlight{done: make(chan struct{})}
	shared.m[name] = f
	shared.mu.Unlock()

	metCacheMisses.Inc()
	f.g, f.err = Synthesize(name)
	if f.err != nil {
		shared.mu.Lock()
		delete(shared.m, name)
		shared.mu.Unlock()
	}
	close(f.done)
	return f.g, f.err
}
