package graph

import (
	"sync"

	"repro/internal/metrics"
)

// Shared-cache metrics: hits are requests served from the process-wide
// cache; misses ran the (expensive) synthesis.
var (
	metCacheHits = metrics.NewCounter("cubie_graph_synthesize_hits_total",
		"Table 3 graph requests served from the shared cache.")
	metCacheMisses = metrics.NewCounter("cubie_graph_synthesize_misses_total",
		"Table 3 graph requests that synthesized a new instance.")
)

// shared caches synthesized Table 3 graphs process-wide. Synthesis is
// deterministic, so every consumer sees the identical graph.
var shared = struct {
	mu sync.Mutex
	m  map[string]*Graph
}{m: map[string]*Graph{}}

// SynthesizeShared returns the process-wide shared instance of the named
// Table 3 graph, synthesizing it on first use. The returned Graph must be
// treated as read-only: BFS and the harness coverage/ablation studies all
// hold the same pointer (BFS's Relabel copies into a fresh graph, so the
// cached instance stays pristine). The lock is held across synthesis so
// concurrent first callers do the work exactly once.
func SynthesizeShared(name string) (*Graph, error) {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if g, ok := shared.m[name]; ok {
		metCacheHits.Inc()
		return g, nil
	}
	metCacheMisses.Inc()
	g, err := Synthesize(name)
	if err != nil {
		return nil, err
	}
	shared.m[name] = g
	return g, nil
}
