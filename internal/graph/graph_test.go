package graph

import (
	"testing"

	"repro/internal/lcg"
)

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {0, 1}, {2, 2}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 3 {
		t.Fatalf("edges = %d, want 3 (dup and self-loop removed)", g.Edges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
	adj := g.Adj(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 {
		t.Fatalf("Adj(0) = %v", adj)
	}
}

func TestUndirectedSymmetric(t *testing.T) {
	g := Undirected(3, [][2]int32{{0, 1}, {1, 2}})
	if g.Edges() != 4 {
		t.Fatalf("edges = %d, want 4", g.Edges())
	}
	has := func(v, u int32) bool {
		for _, w := range g.Adj(int(v)) {
			if w == u {
				return true
			}
		}
		return false
	}
	if !has(1, 0) || !has(2, 1) || !has(0, 1) || !has(1, 2) {
		t.Fatal("symmetrization incomplete")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	g.Neighbors[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("out-of-range neighbor not caught")
	}
	g = FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	g.Offsets[1] = 3
	if err := g.Validate(); err == nil {
		t.Error("non-monotone offsets not caught")
	}
}

func TestSliceSetRoundTrip(t *testing.T) {
	gen := lcg.New(3)
	var edges [][2]int32
	const n = 300
	for k := 0; k < 900; k++ {
		edges = append(edges, [2]int32{int32(gen.Intn(n)), int32(gen.Intn(n))})
	}
	g := FromEdges(n, edges)
	s := ToSliceSet(g)
	if s.RowSlices != (n+7)/8 {
		t.Fatalf("row slices = %d", s.RowSlices)
	}
	// Every edge must appear as a set bit, and every set bit as an edge.
	count := 0
	for si := 0; si < s.RowSlices; si++ {
		for p := s.SlicePtr[si]; p < s.SlicePtr[si+1]; p++ {
			bits := &s.Bits[p]
			for r := 0; r < 8; r++ {
				for b := 0; b < 128; b++ {
					if bits.Bit(r, b) {
						v := si*8 + r
						u := s.ColSegs[p]*128 + int32(b)
						count++
						found := false
						for _, w := range g.Adj(v) {
							if w == u {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("spurious bit (%d,%d)", v, u)
						}
					}
				}
			}
		}
	}
	if count != g.Edges() {
		t.Fatalf("slice set has %d bits, graph has %d edges", count, g.Edges())
	}
	if fr := s.FillRatio(g.Edges()); fr <= 0 || fr > 1 {
		t.Fatalf("fill ratio %v out of range", fr)
	}
}

func TestSliceSetBlocksSorted(t *testing.T) {
	g, err := Synthesize("kron_g500-logn21")
	if err != nil {
		t.Fatal(err)
	}
	s := ToSliceSet(g)
	for si := 0; si < s.RowSlices; si++ {
		for p := s.SlicePtr[si] + 1; p < s.SlicePtr[si+1]; p++ {
			if s.ColSegs[p] <= s.ColSegs[p-1] {
				t.Fatalf("slice %d blocks not sorted", si)
			}
		}
	}
}

func TestFrontierOps(t *testing.T) {
	f := NewFrontier(200)
	if !f.Empty() || f.Count() != 0 {
		t.Fatal("new frontier not empty")
	}
	f.Set(0)
	f.Set(63)
	f.Set(64)
	f.Set(199)
	if f.Count() != 4 || f.Empty() {
		t.Fatalf("count = %d, want 4", f.Count())
	}
	if !f.Has(63) || f.Has(62) {
		t.Fatal("Has wrong")
	}
	g := NewFrontier(200)
	g.Set(63)
	f.AndNot(g)
	if f.Has(63) || f.Count() != 3 {
		t.Fatal("AndNot wrong")
	}
	g.Or(f)
	if g.Count() != 4 {
		t.Fatal("Or wrong")
	}
}

func TestFrontierSegment(t *testing.T) {
	f := NewFrontier(300)
	f.Set(128) // first bit of segment 1
	f.Set(255) // last bit of segment 1
	seg := f.Segment(1)
	if seg[0] != 1 || seg[1] != 1<<63 {
		t.Fatalf("segment = %x,%x", seg[0], seg[1])
	}
	// Out-of-range segment is zero.
	if s := f.Segment(10); s[0] != 0 || s[1] != 0 {
		t.Fatal("out-of-range segment not zero")
	}
}

// TestToSliceSetSteadyStateAllocs pins the counted two-pass bitmap build
// allocation-free beyond its outputs: with the pooled stamp/slot/segment
// arenas warm, a build costs exactly the SliceSet struct, SlicePtr, and the
// two exact block arrays (ColSegs, Bits) plus the three pool-return headers.
// The map-of-heap-fragments builder this replaced allocated per slice.
func TestToSliceSetSteadyStateAllocs(t *testing.T) {
	g := Mycielskian(8)
	ToSliceSet(g) // warm the pooled arenas
	avg := testing.AllocsPerRun(100, func() { ToSliceSet(g) })
	if avg > 7 {
		t.Fatalf("ToSliceSet steady state allocates %.1f objects per build, want ≤ 7 (outputs only)", avg)
	}
}
