// Package graph provides the graph structures used by the BFS workload: a
// CSR adjacency representation, the 8×128 bitmap block slice-set format of
// BerryBees (the paper's TC BFS), and synthetic generators reproducing the
// structural classes of the SuiteSparse graphs in Table 3.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph in CSR adjacency form. For the (symmetric)
// Table 3 graphs every edge is stored in both directions, matching how
// SuiteSparse counts nonzeros.
type Graph struct {
	N         int
	Offsets   []int   // length N+1
	Neighbors []int32 // sorted within each vertex
}

// Edges returns the number of stored directed edges.
func (g *Graph) Edges() int { return len(g.Neighbors) }

// Degree returns the out-degree of vertex v.
func (g *Graph) Degree(v int) int { return g.Offsets[v+1] - g.Offsets[v] }

// Adj returns the neighbor list of v (shared storage).
func (g *Graph) Adj(v int) []int32 { return g.Neighbors[g.Offsets[v]:g.Offsets[v+1]] }

// Validate checks the CSR invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != len(g.Neighbors) {
		return fmt.Errorf("graph: offset endpoints wrong")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		if g.Offsets[v] < 0 || g.Offsets[v+1] > len(g.Neighbors) {
			return fmt.Errorf("graph: offsets of %d outside neighbor storage", v)
		}
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			u := int(g.Neighbors[k])
			if u < 0 || u >= g.N {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if k > g.Offsets[v] && g.Neighbors[k] <= g.Neighbors[k-1] {
				return fmt.Errorf("graph: neighbors of %d not strictly ascending", v)
			}
		}
	}
	return nil
}

// FromEdges builds a graph from a directed edge list, sorting and removing
// duplicates and self-loops.
func FromEdges(n int, edges [][2]int32) *Graph {
	adj := make([][]int32, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	g := &Graph{N: n, Offsets: make([]int, n+1)}
	for v := 0; v < n; v++ {
		a := adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		last := int32(-1)
		for _, u := range a {
			if u != last {
				g.Neighbors = append(g.Neighbors, u)
				last = u
			}
		}
		g.Offsets[v+1] = len(g.Neighbors)
	}
	return g
}

// Undirected symmetrizes an edge list before building the graph.
func Undirected(n int, edges [][2]int32) *Graph {
	sym := make([][2]int32, 0, 2*len(edges))
	for _, e := range edges {
		sym = append(sym, e, [2]int32{e[1], e[0]})
	}
	return FromEdges(n, sym)
}
