package graph

import "testing"

func BenchmarkToSliceSet(b *testing.B) {
	g, err := Synthesize("kron_g500-logn21")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(g.Edges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ToSliceSet(g)
	}
}

func BenchmarkMycielskian12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Mycielskian(12)
	}
}
