// Package accuracy reproduces the paper's FP64 numerical-error methodology
// (Section 8, Table 6): each GPU variant's output is compared element-wise
// against a naive CPU serial implementation, reporting
// Average_Error = (1/n)·Σ|gpu_i − cpu_i| and Max_Error = max|gpu_i − cpu_i|.
package accuracy

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// Errors holds the Table 6 metrics for one (workload, variant) pair.
type Errors struct {
	Workload string
	Variant  workload.Variant
	Avg, Max float64
	Samples  int
}

// Measure computes the error metrics of output against the serial
// reference.
func Measure(name string, v workload.Variant, output, reference []float64) (Errors, error) {
	if len(output) != len(reference) {
		return Errors{}, fmt.Errorf("accuracy: %s/%s: %d outputs vs %d references",
			name, v, len(output), len(reference))
	}
	if len(output) == 0 {
		return Errors{}, fmt.Errorf("accuracy: %s/%s: empty output", name, v)
	}
	e := Errors{Workload: name, Variant: v, Samples: len(output)}
	var sum float64
	for i := range output {
		d := math.Abs(output[i] - reference[i])
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return Errors{}, fmt.Errorf("accuracy: %s/%s: non-finite error at %d", name, v, i)
		}
		sum += d
		if d > e.Max {
			e.Max = d
		}
	}
	e.Avg = sum / float64(len(output))
	return e, nil
}

// Row is one Table 6 row: one workload's errors per variant, with TC and CC
// grouped (they are empirically identical, as the table notes).
type Row struct {
	Workload   string
	Baseline   *Errors // nil for PiC (no baseline)
	TCCC       Errors  // TC and CC grouped
	CCE        *Errors // nil for Quadrant I workloads
	TCEqualsCC bool    // bit-identity check between TC and CC outputs
}

// Runner executes one (case, variant) pair — either Workload.Run itself or
// a caching layer wrapped around it (the harness passes its run cache).
type Runner func(workload.Case, workload.Variant) (*workload.Result, error)

// Referencer computes the CPU-serial ground truth of a case — either
// Workload.Reference or a caching layer around it.
type Referencer func(workload.Case) ([]float64, error)

// MeasureWorkload runs the representative case of w for every variant and
// assembles its Table 6 row. BFS is rejected: it performs no floating-point
// computation.
func MeasureWorkload(w workload.Workload) (Row, error) {
	return MeasureWorkloadWith(w, w.Run, w.Reference)
}

// MeasureWorkloadWith is MeasureWorkload with the executions routed
// through the given runner and referencer, so callers with a run cache
// (internal/harness) measure the table without re-running anything
// already computed.
func MeasureWorkloadWith(w workload.Workload, run Runner, reference Referencer) (Row, error) {
	if w.Name() == "BFS" {
		return Row{}, fmt.Errorf("accuracy: BFS performs no floating-point computation")
	}
	c := w.Representative()
	ref, err := reference(c)
	if err != nil {
		return Row{}, err
	}
	row := Row{Workload: w.Name()}

	tc, err := run(c, workload.TC)
	if err != nil {
		return Row{}, err
	}
	row.TCCC, err = Measure(w.Name(), workload.TC, tc.Output, ref)
	if err != nil {
		return Row{}, err
	}

	cc, err := run(c, workload.CC)
	if err != nil {
		return Row{}, err
	}
	row.TCEqualsCC = len(tc.Output) == len(cc.Output)
	for i := range tc.Output {
		if tc.Output[i] != cc.Output[i] {
			row.TCEqualsCC = false
			break
		}
	}

	if workload.HasVariant(w, workload.Baseline) {
		bl, err := run(c, workload.Baseline)
		if err != nil {
			return Row{}, err
		}
		e, err := Measure(w.Name(), workload.Baseline, bl.Output, ref)
		if err != nil {
			return Row{}, err
		}
		row.Baseline = &e
	}
	if workload.HasVariant(w, workload.CCE) {
		ce, err := run(c, workload.CCE)
		if err != nil {
			return Row{}, err
		}
		e, err := Measure(w.Name(), workload.CCE, ce.Output, ref)
		if err != nil {
			return Row{}, err
		}
		row.CCE = &e
	}
	return row, nil
}
