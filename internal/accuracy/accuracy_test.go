package accuracy

import (
	"math"
	"testing"

	"repro/internal/kernels/bfs"
	"repro/internal/kernels/gemv"
	"repro/internal/kernels/reduction"
	"repro/internal/workload"
)

func TestMeasureBasics(t *testing.T) {
	e, err := Measure("X", workload.TC,
		[]float64{1, 2, 3}, []float64{1, 2.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Avg-0.5) > 1e-15 {
		t.Errorf("avg = %v, want 0.5", e.Avg)
	}
	if e.Max != 1 {
		t.Errorf("max = %v, want 1", e.Max)
	}
	if e.Samples != 3 {
		t.Errorf("samples = %d", e.Samples)
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := Measure("X", workload.TC, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Measure("X", workload.TC, nil, nil); err == nil {
		t.Error("empty output accepted")
	}
	if _, err := Measure("X", workload.TC, []float64{math.NaN()}, []float64{0}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Measure("X", workload.TC, []float64{math.Inf(1)}, []float64{0}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestMeasureWorkloadGEMV(t *testing.T) {
	row, err := MeasureWorkload(gemv.New())
	if err != nil {
		t.Fatal(err)
	}
	if row.Workload != "GEMV" {
		t.Fatal("wrong workload")
	}
	if !row.TCEqualsCC {
		t.Error("TC and CC must be bit-identical (Table 6)")
	}
	if row.Baseline == nil || row.CCE == nil {
		t.Fatal("GEMV has baseline and CC-E variants")
	}
	// FP64 errors on (-2,2) inputs are tiny across the board.
	for _, e := range []Errors{row.TCCC, *row.Baseline, *row.CCE} {
		if e.Max > 1e-12 {
			t.Errorf("%s error %v too large", e.Variant, e.Max)
		}
	}
}

func TestMeasureWorkloadReductionShape(t *testing.T) {
	row, err := MeasureWorkload(reduction.New())
	if err != nil {
		t.Fatal(err)
	}
	if !row.TCEqualsCC {
		t.Error("Reduction TC ≠ CC")
	}
	if row.CCE == nil {
		t.Fatal("Reduction has CC-E")
	}
}

func TestBFSRejected(t *testing.T) {
	if _, err := MeasureWorkload(bfs.New()); err == nil {
		t.Fatal("BFS must be excluded from the accuracy study")
	}
}
