package measure

import (
	"testing"
	"time"
)

func TestRunCounts(t *testing.T) {
	calls := 0
	s, err := Run(func() { calls++ }, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 {
		t.Fatalf("f called %d times, want 25", calls)
	}
	if s.Iterations != 20 {
		t.Fatalf("iterations = %d", s.Iterations)
	}
	if s.Mean < 0 || s.Min > s.Median || s.Median > s.Max {
		t.Fatalf("ordering violated: %+v", s)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(func() {}, 0, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Run(func() {}, -1, 1); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	samples := []time.Duration{10, 20, 30, 40}
	s := Summarize(samples)
	if s.Mean != 25 {
		t.Errorf("mean = %v, want 25", s.Mean)
	}
	if s.Median != 25 {
		t.Errorf("median = %v, want 25", s.Median)
	}
	if s.Min != 10 || s.Max != 40 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of {10,20,30,40} is ~12.9.
	if s.StdDev < 12 || s.StdDev > 14 {
		t.Errorf("stddev = %v, want ≈12.9", s.StdDev)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.Iterations != 0 || s.Mean != 0 {
		t.Error("empty samples should be zero stats")
	}
	s := Summarize([]time.Duration{7})
	if s.Mean != 7 || s.Median != 7 || s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("single sample stats wrong: %+v", s)
	}
	// Even-length median.
	if m := Summarize([]time.Duration{1, 3}).Median; m != 2 {
		t.Errorf("even median = %v, want 2", m)
	}
}

func TestStable(t *testing.T) {
	tight := Summarize([]time.Duration{100, 100, 100, 101, 99, 100, 100, 100})
	if !tight.Stable(0.05) {
		t.Errorf("tight sample reported unstable: %v", tight)
	}
	loose := Summarize([]time.Duration{1, 1000})
	if loose.Stable(0.05) {
		t.Errorf("loose sample reported stable: %v", loose)
	}
	if (Stats{}).Stable(0.05) {
		t.Error("zero stats reported stable")
	}
}

func TestMedianUnsortedInputPreserved(t *testing.T) {
	in := []time.Duration{30, 10, 20}
	s := Summarize(in)
	if s.Median != 20 {
		t.Errorf("median = %v", s.Median)
	}
	if in[0] != 30 {
		t.Error("Summarize mutated its input")
	}
}
