// Package measure implements the paper's timing methodology (Section 6):
// warm-up runs followed by timed executions with the arithmetic average
// reported — plus the dispersion statistics a careful benchmark harness
// needs (standard deviation, confidence interval, median). It times real Go
// functions; the simulated GPU numbers come from package sim instead.
package measure

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Stats summarizes a timed measurement loop.
type Stats struct {
	Warmups, Iterations int
	Mean                time.Duration
	Median              time.Duration
	Min, Max            time.Duration
	StdDev              time.Duration
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (normal approximation).
	CI95 time.Duration
}

// Run executes f warmup times untimed, then iterations times timed, and
// returns the statistics. It returns an error for non-positive iteration
// counts.
func Run(f func(), warmup, iterations int) (Stats, error) {
	if iterations < 1 {
		return Stats{}, fmt.Errorf("measure: need at least 1 iteration, got %d", iterations)
	}
	if warmup < 0 {
		return Stats{}, fmt.Errorf("measure: negative warmup %d", warmup)
	}
	for i := 0; i < warmup; i++ {
		f()
	}
	samples := make([]time.Duration, iterations)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = time.Since(start)
	}
	return Summarize(samples), nil
}

// Summarize computes the statistics of raw duration samples.
func Summarize(samples []time.Duration) Stats {
	n := len(samples)
	s := Stats{Iterations: n}
	if n == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Min, s.Max = sorted[0], sorted[n-1]
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum float64
	for _, d := range samples {
		sum += float64(d)
	}
	mean := sum / float64(n)
	s.Mean = time.Duration(mean)
	if n > 1 {
		var ss float64
		for _, d := range samples {
			dv := float64(d) - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n-1))
		s.StdDev = time.Duration(sd)
		s.CI95 = time.Duration(1.96 * sd / math.Sqrt(float64(n)))
	}
	return s
}

// Stable reports whether the measurement is tight enough to trust: the 95%
// confidence half-width within tol of the mean (the paper's rationale for
// 1000 timed runs).
func (s Stats) Stable(tol float64) bool {
	if s.Mean <= 0 {
		return false
	}
	return float64(s.CI95)/float64(s.Mean) <= tol
}

// String formats the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("mean %v ±%v (median %v, min %v, max %v, n=%d)",
		s.Mean, s.CI95, s.Median, s.Min, s.Max, s.Iterations)
}
