package mtx

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lcg"
	"repro/internal/sparse"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 1.5
2 3 -2
3 4 0.25
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(0, 0) != 1.5 || m.At(1, 2) != -2 || m.At(2, 3) != 0.25 {
		t.Fatal("values misplaced")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2
2 1 -1
3 2 4
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 { // diagonal stays single, off-diagonals mirrored
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 || m.At(1, 2) != 4 || m.At(2, 1) != 4 {
		t.Fatal("symmetrization wrong")
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != -3 {
		t.Fatal("skew symmetrization wrong")
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Fatal("pattern entries should read as 1")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no banner":        "3 3 1\n1 1 1\n",
		"dense rejected":   "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex rejected": "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":     "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short entry":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"out of range":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"zero index":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"truncated":        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"bad value":        "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
		"bad size":         "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n",
		"huge dims":        "%%MatrixMarket matrix coordinate real general\n999999999 999999999 1\n1 1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := lcg.New(7)
	coo := sparse.NewCOO(50, 40)
	for k := 0; k < 300; k++ {
		coo.Add(g.Intn(50), g.Intn(40), g.Symmetric())
	}
	m := coo.ToCSR()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("round trip shape changed")
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := int(m.ColIdx[k])
			if back.At(i, j) != m.Vals[k] {
				t.Fatalf("value changed at (%d,%d): %v vs %v",
					i, j, back.At(i, j), m.Vals[k])
			}
		}
	}
}

func TestRoundTripSynthesizedTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("large round trip in -short mode")
	}
	m, err := sparse.Synthesize("spmsrts")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() || back.Rows != m.Rows {
		t.Fatalf("spmsrts round trip changed shape: %d/%d vs %d/%d",
			back.Rows, back.NNZ(), m.Rows, m.NNZ())
	}
	// Exact value preservation via %.17g.
	for k := 0; k < m.NNZ(); k += 9973 {
		if m.Vals[k] != back.Vals[k] {
			t.Fatalf("value %d changed: %v vs %v", k, m.Vals[k], back.Vals[k])
		}
	}
}

func TestNoTrailingNewlineHandled(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.5"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2.5 {
		t.Fatal("final entry without newline lost")
	}
}
