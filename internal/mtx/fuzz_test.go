package mtx

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hammers the parser with arbitrary input: it must never panic,
// and anything it accepts must produce a structurally valid CSR matrix
// that survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2\n3 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999 999999999 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Guard against pathological size lines allocating huge RowPtr.
		if len(input) > 1<<16 {
			return
		}
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.Rows > 1<<20 || m.Cols > 1<<20 {
			return // accepted giant header with zero entries; skip round trip
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted matrix fails validation: %v\ninput: %q", verr, input)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, m); werr != nil {
			t.Fatalf("write failed for accepted matrix: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip re-read failed: %v", rerr)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				back.Rows, back.Cols, back.NNZ(), m.Rows, m.Cols, m.NNZ())
		}
	})
}
