// Package mtx reads and writes Matrix Market exchange files — the format
// the SuiteSparse collection distributes (the paper's Table 3/4 inputs).
// The reproduction synthesizes its datasets, but users with access to the
// real files can load them through this package and run the sparse and
// graph workloads' building blocks on genuine inputs.
//
// Supported: `%%MatrixMarket matrix coordinate real|integer|pattern
// general|symmetric|skew-symmetric`. Array (dense) and complex files are
// rejected with a clear error.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// header describes a parsed Matrix Market banner.
type header struct {
	object   string // "matrix"
	format   string // "coordinate"
	field    string // "real", "integer", "pattern"
	symmetry string // "general", "symmetric", "skew-symmetric"
}

// MaxDimension bounds the accepted row/column counts: a coordinate file
// claiming enormous dimensions with few entries would otherwise force an
// O(rows) allocation from attacker-controlled input. Use ReadLimited for
// genuinely larger matrices.
const MaxDimension = 1 << 28

// Read parses a Matrix Market coordinate stream into CSR, rejecting
// dimensions above MaxDimension.
func Read(r io.Reader) (*sparse.CSR, error) {
	return ReadLimited(r, MaxDimension)
}

// ReadLimited parses a Matrix Market coordinate stream with a caller-chosen
// dimension bound.
func ReadLimited(r io.Reader, maxDim int) (*sparse.CSR, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return nil, fmt.Errorf("mtx: empty input: %w", err)
	}
	h, err := parseBanner(line)
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line.
	var rows, cols, nnz int
	for {
		line, err = br.ReadString('\n')
		if line == "" && err != nil {
			return nil, fmt.Errorf("mtx: missing size line: %w", err)
		}
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "%") {
			continue
		}
		if _, serr := fmt.Sscan(s, &rows, &cols, &nnz); serr != nil {
			return nil, fmt.Errorf("mtx: bad size line %q: %w", s, serr)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mtx: negative dimensions %d %d %d", rows, cols, nnz)
	}
	if rows > maxDim || cols > maxDim {
		return nil, fmt.Errorf("mtx: dimensions %dx%d exceed the limit %d", rows, cols, maxDim)
	}

	coo := sparse.NewCOO(rows, cols)
	read := 0
	for read < nnz {
		line, err = br.ReadString('\n')
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "%") {
			if err != nil {
				return nil, fmt.Errorf("mtx: expected %d entries, got %d", nnz, read)
			}
			continue
		}
		fields := strings.Fields(s)
		want := 3
		if h.field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mtx: entry %d malformed: %q", read+1, s)
		}
		i, e1 := strconv.Atoi(fields[0])
		j, e2 := strconv.Atoi(fields[1])
		if e1 != nil || e2 != nil {
			return nil, fmt.Errorf("mtx: entry %d has bad indices: %q", read+1, s)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mtx: entry %d out of range: %q", read+1, s)
		}
		v := 1.0
		if h.field != "pattern" {
			v, e1 = strconv.ParseFloat(fields[2], 64)
			if e1 != nil {
				return nil, fmt.Errorf("mtx: entry %d has bad value: %q", read+1, s)
			}
		}
		coo.Add(i-1, j-1, v)
		switch h.symmetry {
		case "symmetric":
			if i != j {
				coo.Add(j-1, i-1, v)
			}
		case "skew-symmetric":
			if i != j {
				coo.Add(j-1, i-1, -v)
			}
		}
		read++
		if err != nil {
			break
		}
	}
	if read < nnz {
		return nil, fmt.Errorf("mtx: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

func parseBanner(line string) (header, error) {
	var h header
	s := strings.TrimSpace(line)
	if !strings.HasPrefix(s, "%%MatrixMarket") {
		return h, fmt.Errorf("mtx: missing %%%%MatrixMarket banner (got %q)", s)
	}
	fields := strings.Fields(strings.ToLower(s))
	if len(fields) < 5 {
		return h, fmt.Errorf("mtx: short banner %q", s)
	}
	h.object, h.format, h.field, h.symmetry = fields[1], fields[2], fields[3], fields[4]
	if h.object != "matrix" {
		return h, fmt.Errorf("mtx: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return h, fmt.Errorf("mtx: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mtx: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return h, fmt.Errorf("mtx: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// Write emits m as a general real coordinate Matrix Market file.
func Write(w io.Writer, m *sparse.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n",
				i+1, m.ColIdx[k]+1, m.Vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
