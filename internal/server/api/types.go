// Package api defines the wire types of the cubie serve control API: the
// typed request/response structs exchanged over HTTP/JSON between
// internal/server (the daemon) and internal/server/client (the Go
// client). Keeping them in their own leaf package — the cleanroom
// controlapi pattern — lets both sides share one vocabulary without an
// import cycle, and gives cmd/docscheck a single place to cross-reference
// against docs/SERVE.md.
//
// Compatibility contract: fields are only ever added, never renamed or
// repurposed; unknown fields are ignored by both sides. The API version is
// carried in the path (/api/v1/...).
package api

import "fmt"

// Error is the error envelope body every non-2xx API response carries:
//
//	{"error": {"code": "saturated", "message": "..."}}
//
// Code is a stable machine-readable identifier (see the Code* constants);
// Message is human-readable detail. Error implements the error interface,
// so clients can return it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`

	// Status is the HTTP status code the envelope arrived with. It is
	// filled by the client, never serialized.
	Status int `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// ErrorResponse is the envelope wrapper around Error.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// The stable error codes (the HTTP status they accompany in parentheses).
const (
	CodeBadRequest = "bad_request" // (400) malformed body, unknown field value
	CodeNotFound   = "not_found"   // (404) unknown route, figure, or campaign
	CodeSaturated  = "saturated"   // (429) admission control rejected the request; retry after Retry-After seconds
	CodeDraining   = "draining"    // (503) the daemon is shutting down and admits no new work
	CodeTimeout    = "timeout"     // (504) the request exceeded the per-request timeout; the work keeps running and a retry will join it
	CodeInternal   = "internal"    // (500) the run or render failed
)

// Health is the /healthz and /readyz response body.
type Health struct {
	Status string `json:"status"` // "ok", or "draining" on a not-ready /readyz
}

// FigureInfo describes one servable figure (GET /api/v1/figures).
type FigureInfo struct {
	Name  string `json:"name"`  // endpoint name: GET /api/v1/figures/{name}
	Title string `json:"title"` // one-line description
	InAll bool   `json:"in_all"` // rendered by `cubie all`
}

// FiguresResponse lists the figure catalog in render order.
type FiguresResponse struct {
	Figures []FigureInfo `json:"figures"`
}

// RunRequest asks for one (workload, case, variant) execution
// (POST /api/v1/runs). Empty Case selects the workload's representative
// case; empty Variant defaults to "TC"; empty GPU defaults to "H200".
type RunRequest struct {
	Workload string `json:"workload"`
	Case     string `json:"case,omitempty"`
	Variant  string `json:"variant,omitempty"`
	GPU      string `json:"gpu,omitempty"`
}

// RunResponse reports one execution: what actually ran (the resolved
// case/variant/GPU) and the simulated outcome, mirroring one `cubie run`
// table row.
type RunResponse struct {
	Workload   string  `json:"workload"`
	Case       string  `json:"case"`
	Variant    string  `json:"variant"`
	GPU        string  `json:"gpu"`
	Work       float64 `json:"work"`        // the workload's work metric count
	Metric     string  `json:"metric"`      // the metric's unit name
	SimTimeS   float64 `json:"sim_time_s"`  // simulated kernel time on GPU
	Throughput float64 `json:"throughput"`  // Work / SimTimeS / 1e9, Figure 3's unit
	Bottleneck string  `json:"bottleneck"`  // binding resource in the model
}

// CampaignRequest starts a sweep/campaign: the named run plan executes in
// the background (POST /api/v1/campaigns). Plan is one of the harness plan
// names: all, figure3, power, table6, figure9, representative, sweep.
type CampaignRequest struct {
	Plan string `json:"plan"`
}

// CampaignStatus is one campaign's progress snapshot — the POST response,
// the GET /api/v1/campaigns/{id} poll body, and the NDJSON stream element
// of GET /api/v1/campaigns/{id}/events.
type CampaignStatus struct {
	ID        string  `json:"id"`
	Plan      string  `json:"plan"`
	State     string  `json:"state"` // "running", "done", "failed"
	Total     int     `json:"total_keys"`
	Completed int     `json:"completed_keys"`
	ElapsedS  float64 `json:"elapsed_s"`
	Error     string  `json:"error,omitempty"` // set when State is "failed"
}

// CampaignsResponse lists every campaign this daemon has accepted, in
// creation order (GET /api/v1/campaigns).
type CampaignsResponse struct {
	Campaigns []CampaignStatus `json:"campaigns"`
}

// WorkKey identifies one run key on the wire — the distributed-campaign
// unit of work. Variant may be the "__reference" pseudo-variant.
type WorkKey struct {
	Workload string `json:"workload"`
	Case     string `json:"case"`
	Variant  string `json:"variant"`
}

// WorkLeaseRequest asks the coordinator for work
// (POST /api/v1/work/lease). Worker is a free-form identity used for
// diagnostics only.
type WorkLeaseRequest struct {
	Worker string `json:"worker,omitempty"`
}

// WorkLeaseResponse is one lease decision. Status "ok" grants Key under
// Lease; "wait" means everything pending is leased out (poll again);
// "done" and "failed" are terminal — the worker should exit, Error
// carrying the failure in the latter case.
type WorkLeaseResponse struct {
	Status string   `json:"status"` // "ok", "wait", "done", "failed"
	Key    *WorkKey `json:"key,omitempty"`
	Lease  string   `json:"lease,omitempty"`
	Error  string   `json:"error,omitempty"`
}

// WorkCompleteRequest reports a leased key's outcome
// (POST /api/v1/work/complete). Empty Error means success.
type WorkCompleteRequest struct {
	Lease string `json:"lease"`
	Error string `json:"error,omitempty"`
}

// WorkCompleteResponse acknowledges a completion: "ok", "requeued"
// (failed, will retry), "failed" (the queue gave up), or "stale" (the
// lease expired and was re-issued; the report was ignored).
type WorkCompleteResponse struct {
	Status string `json:"status"`
}

// WorkStatusResponse snapshots the coordinator's queue
// (GET /api/v1/work).
type WorkStatusResponse struct {
	State     string `json:"state"` // "running", "done", "failed"
	Total     int    `json:"total_keys"`
	Completed int    `json:"completed_keys"`
	Pending   int    `json:"pending_keys"`
	Leased    int    `json:"leased_keys"`
	Reissued  int    `json:"reissued_leases"`
	Error     string `json:"error,omitempty"`
}
