package server

// Daemon configuration, in the soci-snapshotter style: a defaults struct,
// optionally overlaid by a JSON config file, then by CUBIE_* environment
// variables, then by explicit CLI flags (cmd/cubie applies those last).
// Each field carries its config-file key (`json` tag) and its environment
// variable (`env` tag); cmd/docscheck cross-references both against
// docs/SERVE.md, so the documentation cannot drift from this struct.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"time"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("30s", "1m30s") in JSON config files and environment variables.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"30s\": %w", err)
	}
	return d.parse(s)
}

func (d *Duration) parse(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Config is the complete daemon configuration.
type Config struct {
	// Addr is the listen address. Port 0 picks a free port; the bound
	// address is reported by Server.Addr and written to AddrFile.
	Addr string `json:"addr" env:"CUBIE_ADDR"`

	// AddrFile, when non-empty, receives the actually-bound listen
	// address once the daemon is ready — the handshake `make serve-smoke`
	// and scripts use with port 0.
	AddrFile string `json:"addr_file" env:"CUBIE_ADDR_FILE"`

	// MaxInflightRuns bounds the run-executing requests (single runs,
	// campaigns, cold figure renders) admitted concurrently. Requests
	// beyond the bound receive 429 with a Retry-After header.
	MaxInflightRuns int `json:"max_inflight_runs" env:"CUBIE_MAX_INFLIGHT_RUNS"`

	// RetryAfter is the Retry-After hint attached to 429 responses.
	RetryAfter Duration `json:"retry_after" env:"CUBIE_RETRY_AFTER"`

	// RequestTimeout bounds one run/figure request. A request that
	// exceeds it receives 504; its execution continues in the background
	// (results are cached, so a retry joins or reuses it).
	RequestTimeout Duration `json:"request_timeout" env:"CUBIE_REQUEST_TIMEOUT"`

	// DrainTimeout bounds the graceful shutdown: how long SIGTERM waits
	// for in-flight requests and background campaign work to finish.
	DrainTimeout Duration `json:"drain_timeout" env:"CUBIE_DRAIN_TIMEOUT"`
}

// Defaults returns the built-in configuration: loopback-only listener,
// one admitted run-executing request per core (at least 2), generous
// timeouts sized to a cold whole-campaign render.
func Defaults() Config {
	inflight := runtime.GOMAXPROCS(0)
	if inflight < 2 {
		inflight = 2
	}
	return Config{
		Addr:            "127.0.0.1:8373",
		MaxInflightRuns: inflight,
		RetryAfter:      Duration(2 * time.Second),
		RequestTimeout:  Duration(5 * time.Minute),
		DrainTimeout:    Duration(30 * time.Second),
	}
}

// LoadFile overlays a JSON config file onto c. Unknown keys are rejected,
// so a typoed key fails loudly instead of silently keeping the default.
func (c *Config) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("server config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(c); err != nil {
		return fmt.Errorf("server config %s: %w", path, err)
	}
	return nil
}

// ApplyEnv overlays the CUBIE_* environment variables declared in the
// struct's env tags onto c. Unset and empty variables leave the current
// value; a malformed value is an error naming the variable.
func (c *Config) ApplyEnv() error {
	rv := reflect.ValueOf(c).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Tag.Get("env")
		if name == "" {
			continue
		}
		raw := os.Getenv(name)
		if raw == "" {
			continue
		}
		f := rv.Field(i)
		switch f.Interface().(type) {
		case string:
			f.SetString(raw)
		case int:
			n, err := strconv.Atoi(raw)
			if err != nil {
				return fmt.Errorf("server config: %s=%q: %w", name, raw, err)
			}
			f.SetInt(int64(n))
		case Duration:
			var d Duration
			if err := d.parse(raw); err != nil {
				return fmt.Errorf("server config: %s=%q: %w", name, raw, err)
			}
			f.Set(reflect.ValueOf(d))
		default:
			return fmt.Errorf("server config: unsupported env field type for %s", name)
		}
	}
	return nil
}

// Validate reports the first nonsensical setting.
func (c Config) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("server config: addr must not be empty")
	}
	if c.MaxInflightRuns < 1 {
		return fmt.Errorf("server config: max_inflight_runs must be >= 1 (have %d)", c.MaxInflightRuns)
	}
	if c.RequestTimeout <= 0 {
		return fmt.Errorf("server config: request_timeout must be positive")
	}
	if c.DrainTimeout <= 0 {
		return fmt.Errorf("server config: drain_timeout must be positive")
	}
	if c.RetryAfter <= 0 {
		return fmt.Errorf("server config: retry_after must be positive")
	}
	return nil
}

// retryAfterSeconds renders the Retry-After header value (at least 1).
func (c Config) retryAfterSeconds() string {
	s := int(time.Duration(c.RetryAfter).Round(time.Second) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

