package server

// Campaigns: whole sweeps executed in the background. A campaign is one
// named harness run plan (see harness.PlanNames) submitted through
// POST /api/v1/campaigns; it executes on the harness plan executor while
// the client polls GET /api/v1/campaigns/{id} or streams NDJSON progress
// from GET /api/v1/campaigns/{id}/events. Because every key lands in the
// harness singleflight cache, overlapping campaigns (and figure renders)
// share executions instead of repeating them.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/harness"
	"repro/internal/server/api"
)

// campaign is one accepted plan execution.
type campaign struct {
	id    string
	plan  string
	keys  []harness.RunKey
	start time.Time

	done    chan struct{} // closed when Execute returns
	err     error         // set before done closes
	elapsed float64       // frozen wall-clock seconds, set before done closes
}

// status snapshots a campaign for the wire. Progress is read from the
// harness singleflight cache, so it advances even while Execute is still
// scheduling — and reflects executions a concurrent figure render
// contributed.
func (s *Server) status(c *campaign) api.CampaignStatus {
	st := api.CampaignStatus{
		ID:        c.id,
		Plan:      c.plan,
		State:     "running",
		Total:     len(dedupe(c.keys)),
		Completed: s.h.Progress(dedupe(c.keys)),
		ElapsedS:  time.Since(c.start).Seconds(),
	}
	select {
	case <-c.done:
		st.ElapsedS = c.elapsed
		if c.err != nil {
			st.State = "failed"
			st.Error = c.err.Error()
		} else {
			st.State = "done"
		}
	default:
	}
	return st
}

// dedupe drops repeated keys, preserving first-seen order (plans may list
// a key for several experiments; progress counts executions, not wishes).
func dedupe(keys []harness.RunKey) []harness.RunKey {
	seen := make(map[harness.RunKey]bool, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	s.campMu.Lock()
	list := append([]*campaign(nil), s.campaigns...)
	s.campMu.Unlock()
	out := api.CampaignsResponse{Campaigns: []api.CampaignStatus{}}
	for _, c := range list {
		out.Campaigns = append(out.Campaigns, s.status(c))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCampaignStart(w http.ResponseWriter, r *http.Request) {
	var req api.CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decode request: %v", err)
		return
	}
	keys, err := s.h.PlanByName(req.Plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}

	// A campaign occupies one admission slot for its whole execution: it
	// saturates the harness worker pool internally, so admitting campaigns
	// beyond the slot bound would only stack load the machine cannot absorb.
	release, ok := s.admit(w)
	if !ok {
		return
	}

	s.campMu.Lock()
	s.campSeq++
	c := &campaign{
		id:    fmt.Sprintf("c%d", s.campSeq),
		plan:  req.Plan,
		keys:  keys,
		start: time.Now(),
		done:  make(chan struct{}),
	}
	s.campaigns = append(s.campaigns, c)
	s.campMu.Unlock()
	metCampaignsStarted.Inc()

	s.work.Add(1)
	go func() {
		defer s.work.Done()
		defer release()
		c.err = s.h.Execute(c.keys)
		c.elapsed = time.Since(c.start).Seconds()
		close(c.done)
	}()

	writeJSON(w, http.StatusAccepted, s.status(c))
}

// campaignByID resolves {id}; on miss it writes the 404 envelope and
// returns nil.
func (s *Server) campaignByID(w http.ResponseWriter, r *http.Request) *campaign {
	id := r.PathValue("id")
	s.campMu.Lock()
	defer s.campMu.Unlock()
	for _, c := range s.campaigns {
		if c.id == id {
			return c
		}
	}
	writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown campaign %q", id)
	return nil
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	c := s.campaignByID(w, r)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.status(c))
}

// handleCampaignEvents streams campaign progress as NDJSON: one
// CampaignStatus JSON object per line, a new line whenever progress
// changes (checked every 200ms), a final line when the campaign finishes,
// then EOF. `curl -N` renders it as a live ticker.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaignByID(w, r)
	if c == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emit := func(st api.CampaignStatus) {
		_ = enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
	}
	last := s.status(c)
	emit(last)

	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			emit(s.status(c))
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			st := s.status(c)
			if st.Completed != last.Completed || st.State != last.State {
				last = st
				emit(st)
			}
		}
	}
}
