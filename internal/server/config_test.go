package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

// TestConfigPrecedence: file overrides defaults, environment overrides the
// file, and untouched fields keep their earlier layer's value.
func TestConfigPrecedence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(path, []byte(`{
 "addr": "127.0.0.1:9000",
 "max_inflight_runs": 3,
 "request_timeout": "90s"
}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := Defaults()
	if err := cfg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:9000" || cfg.MaxInflightRuns != 3 {
		t.Fatalf("file overlay not applied: %+v", cfg)
	}
	if time.Duration(cfg.RequestTimeout) != 90*time.Second {
		t.Fatalf("request_timeout = %s, want 90s", time.Duration(cfg.RequestTimeout))
	}
	if time.Duration(cfg.DrainTimeout) != 30*time.Second {
		t.Fatalf("untouched drain_timeout lost its default: %+v", cfg)
	}

	t.Setenv("CUBIE_ADDR", "127.0.0.1:9100")
	t.Setenv("CUBIE_MAX_INFLIGHT_RUNS", "7")
	t.Setenv("CUBIE_DRAIN_TIMEOUT", "5s")
	t.Setenv("CUBIE_REQUEST_TIMEOUT", "") // empty keeps the file's value
	if err := cfg.ApplyEnv(); err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:9100" || cfg.MaxInflightRuns != 7 {
		t.Fatalf("env overlay not applied: %+v", cfg)
	}
	if time.Duration(cfg.DrainTimeout) != 5*time.Second {
		t.Fatalf("CUBIE_DRAIN_TIMEOUT not applied: %+v", cfg)
	}
	if time.Duration(cfg.RequestTimeout) != 90*time.Second {
		t.Fatalf("empty env var clobbered the file value: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigRejectsUnknownKeyAndBadValues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(path, []byte(`{"adr": "oops"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	if err := cfg.LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted an unknown key")
	}

	t.Setenv("CUBIE_MAX_INFLIGHT_RUNS", "many")
	if err := cfg.ApplyEnv(); err == nil {
		t.Fatal("ApplyEnv accepted a non-integer CUBIE_MAX_INFLIGHT_RUNS")
	}
	t.Setenv("CUBIE_MAX_INFLIGHT_RUNS", "")
	t.Setenv("CUBIE_RETRY_AFTER", "soon")
	if err := cfg.ApplyEnv(); err == nil {
		t.Fatal("ApplyEnv accepted a non-duration CUBIE_RETRY_AFTER")
	}

	for _, mutate := range []func(*Config){
		func(c *Config) { c.Addr = "" },
		func(c *Config) { c.MaxInflightRuns = 0 },
		func(c *Config) { c.RequestTimeout = 0 },
		func(c *Config) { c.DrainTimeout = 0 },
		func(c *Config) { c.RetryAfter = 0 },
	} {
		c := Defaults()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", c)
		}
	}
}

func TestRetryAfterSecondsAtLeastOne(t *testing.T) {
	c := Defaults()
	c.RetryAfter = Duration(100 * time.Millisecond)
	if got := c.retryAfterSeconds(); got != "1" {
		t.Fatalf("retryAfterSeconds() = %q, want %q", got, "1")
	}
	c.RetryAfter = Duration(2 * time.Second)
	if got := c.retryAfterSeconds(); got != "2" {
		t.Fatalf("retryAfterSeconds() = %q, want %q", got, "2")
	}
}
