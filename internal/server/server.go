// Package server is the long-lived characterization daemon behind
// `cubie serve`: an HTTP/JSON control API over the existing engine. Every
// figure/table the CLI renders is servable at /api/v1/figures/{name}
// through the same harness catalog renderers, so a daemon's figure bytes
// are identical to `cubie all` stdout for that figure by construction.
// Single (workload, case, variant) runs and whole sweep/campaign plans
// route through the harness plan path, so concurrent identical queries
// dedupe via the singleflight run cache, and — with a runcache attached —
// results persist across daemon restarts.
//
// # Hot layer
//
// Rendered figures are memoized in memory (one singleflight per figure
// name) above the harness's own singleflight run cache, which itself sits
// above the persistent runcache: a warm figure request costs one map
// lookup and one write, no run executions and no disk reads.
//
// # Admission control
//
// Requests that may execute workload runs (POST /api/v1/runs, campaign
// starts, cold figure renders) are admitted through a bounded slot pool
// (Config.MaxInflightRuns). When the pool is saturated the daemon sheds
// load: 429 with a Retry-After header instead of queueing unboundedly.
// Warm figure fetches and the health/metrics endpoints bypass admission
// entirely — a saturated daemon still observes and serves cached output.
//
// # Timeouts and graceful drain
//
// Run and figure requests are bounded by Config.RequestTimeout; on expiry
// the client gets 504 while the execution keeps running in the background
// and lands in the caches, so a retry joins or reuses it. On SIGTERM
// (ctx cancellation in Serve), the daemon stops accepting new work
// (/readyz flips to 503, new API requests get 503 "draining"), waits up to
// Config.DrainTimeout for in-flight requests and background work, then
// exits. See docs/SERVE.md for the full API reference.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/server/api"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// HTTP server metrics (see docs/OBSERVABILITY.md). Per-route request and
// latency series are registered lazily by handle() with a route label.
var (
	metHTTPInFlight = metrics.NewGauge("cubie_http_in_flight",
		"HTTP requests currently being served.")
	metHTTPRejected = metrics.NewCounter("cubie_http_rejected_total",
		"Requests shed by admission control (429 + Retry-After).")
	metHTTPTimeouts = metrics.NewCounter("cubie_http_timeouts_total",
		"Requests that exceeded the per-request timeout (504; the execution continues in the background).")
	metFigureHits = metrics.NewCounter("cubie_server_figure_cache_hits_total",
		"Figure requests served from the in-memory rendered-figure hot layer.")
	metFigureMisses = metrics.NewCounter("cubie_server_figure_cache_misses_total",
		"Figure requests that had to render (and possibly execute runs).")
	metCampaignsStarted = metrics.NewCounter("cubie_server_campaigns_started_total",
		"Campaign plans accepted and started in the background.")
)

// Server is one daemon instance over one harness.
type Server struct {
	cfg Config
	h   *harness.Harness
	mux *http.ServeMux

	// runSlots is the admission pool: one token per concurrently admitted
	// run-executing request.
	runSlots chan struct{}

	// work tracks background executions (campaigns, timed-out requests
	// whose run goroutine is still finishing) for the drain phase.
	work sync.WaitGroup

	inFlight atomic.Int64
	draining atomic.Bool

	figMu   sync.Mutex
	figures map[string]*figFlight

	campMu    sync.Mutex
	campaigns []*campaign
	campSeq   int

	// queue is the distributed-campaign lease queue this daemon
	// coordinates (nil unless SetWorkQueue was called — see work.go).
	queueMu sync.Mutex
	queue   *harness.WorkQueue

	lnMu sync.Mutex
	ln   net.Listener
}

// figFlight is one memoized figure render: the first requester renders,
// concurrent requesters block on done and share the bytes.
type figFlight struct {
	done chan struct{}
	data []byte
	err  error
}

// New creates a server over h with cfg (which must Validate).
func New(h *harness.Harness, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		h:        h,
		mux:      http.NewServeMux(),
		runSlots: make(chan struct{}, cfg.MaxInflightRuns),
		figures:  map[string]*figFlight{},
	}
	s.routes()
	return s, nil
}

// routes registers the full route table. docs/SERVE.md documents exactly
// these patterns; cmd/docscheck cross-references the two (the s.handle
// literal is the anchor it greps for), so adding a route without
// documenting it — or documenting one that does not exist — fails
// `make docs-check`.
func (s *Server) routes() {
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /readyz", s.handleReadyz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /api/v1/figures", s.handleFigures)
	s.handle("GET /api/v1/figures/{name}", s.handleFigure)
	s.handle("POST /api/v1/runs", s.handleRun)
	s.handle("GET /api/v1/campaigns", s.handleCampaigns)
	s.handle("POST /api/v1/campaigns", s.handleCampaignStart)
	s.handle("GET /api/v1/campaigns/{id}", s.handleCampaign)
	s.handle("GET /api/v1/campaigns/{id}/events", s.handleCampaignEvents)
	s.handle("GET /api/v1/cache/{key}", s.handleCacheGet)
	s.handle("PUT /api/v1/cache/{key}", s.handleCachePut)
	s.handle("POST /api/v1/work/lease", s.handleWorkLease)
	s.handle("POST /api/v1/work/complete", s.handleWorkComplete)
	s.handle("GET /api/v1/work", s.handleWorkStatus)
	s.handle("/", s.handleNotFound)
}

// handle registers one route with its instrumentation: a per-route
// request counter and latency histogram, the shared in-flight gauge, and
// a host span per request (category "http", named by the route pattern).
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	reqs := metrics.NewCounter("cubie_http_requests_total",
		"HTTP requests received, by registered route pattern.",
		metrics.Label{Key: "route", Value: pattern})
	lat := metrics.NewHistogram("cubie_http_request_seconds",
		"Wall-clock seconds from request receipt to handler return, by route.",
		metrics.DefTimeBuckets,
		metrics.Label{Key: "route", Value: pattern})
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		metHTTPInFlight.Set(float64(s.inFlight.Add(1)))
		endSpan := trace.HostSpan("http", pattern)
		t0 := time.Now()
		defer func() {
			lat.Observe(time.Since(t0).Seconds())
			endSpan()
			metHTTPInFlight.Set(float64(s.inFlight.Add(-1)))
		}()
		fn(w, r)
	})
}

// Handler returns the daemon's HTTP handler (httptest mounts this).
func (s *Server) Handler() http.Handler { return s.mux }

// Addr returns the bound listen address ("" before Serve binds).
func (s *Server) Addr() string {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Run listens on cfg.Addr, writes cfg.AddrFile if configured, and serves
// until ctx is cancelled (the CLI cancels it on SIGINT/SIGTERM), then
// drains gracefully.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve runs the daemon on an existing listener until ctx is cancelled,
// then drains: the readiness probe flips to 503, new API work is refused,
// in-flight requests get up to DrainTimeout to finish, and background
// campaign work is awaited within the same budget.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	if s.cfg.AddrFile != "" {
		if err := os.WriteFile(s.cfg.AddrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("serve: write addr file: %w", err)
		}
	}
	srv := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Drain: refuse new work, then give in-flight requests and background
	// executions one shared budget to finish.
	s.draining.Store(true)
	deadline := time.Now().Add(time.Duration(s.cfg.DrainTimeout))
	shCtx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	err := srv.Shutdown(shCtx)

	done := make(chan struct{})
	go func() { s.work.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
		if err == nil {
			err = fmt.Errorf("serve: drain timed out with background work still running")
		}
	}
	return err
}

// --- response helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{Error: api.Error{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// admit takes one run slot, or sheds the request. It returns a release
// function and false when the daemon is saturated or draining (the
// response has been written in that case).
func (s *Server) admit(w http.ResponseWriter) (func(), bool) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining,
			"daemon is draining and admits no new work")
		return nil, false
	}
	select {
	case s.runSlots <- struct{}{}:
		return func() { <-s.runSlots }, true
	default:
		metHTTPRejected.Inc()
		w.Header().Set("Retry-After", s.cfg.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, api.CodeSaturated,
			"all %d run slots are busy; retry after %s seconds",
			s.cfg.MaxInflightRuns, s.cfg.retryAfterSeconds())
		return nil, false
	}
}

// await runs fn on a drain-tracked goroutine and waits for it, the
// request timeout, or client disconnect. On timeout/disconnect fn keeps
// running in the background (its outcome lands in the caches) and await
// reports ok=false after writing the 504. release is called when fn
// completes, never earlier — a timed-out execution still occupies its
// admission slot, because it still occupies the machine.
func (s *Server) await(w http.ResponseWriter, r *http.Request, release func(), fn func() error, then func()) {
	done := make(chan error, 1)
	s.work.Add(1)
	go func() {
		defer s.work.Done()
		defer release()
		done <- fn()
	}()
	timeout := time.NewTimer(time.Duration(s.cfg.RequestTimeout))
	defer timeout.Stop()
	select {
	case err := <-done:
		if err != nil {
			writeError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
			return
		}
		then()
	case <-timeout.C:
		metHTTPTimeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout,
			"request exceeded %s; the execution continues and a retry will reuse it",
			time.Duration(s.cfg.RequestTimeout))
	case <-r.Context().Done():
		// Client went away; the execution continues for the next caller.
	}
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Health{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WritePrometheus(w)
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, api.CodeNotFound,
		"no route for %s %s (see docs/SERVE.md)", r.Method, r.URL.Path)
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	var out api.FiguresResponse
	for _, f := range harness.Catalog() {
		out.Figures = append(out.Figures, api.FigureInfo{
			Name: f.Name, Title: f.Title, InAll: f.InAll,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFigure serves one rendered figure as text/plain — byte-identical
// to the `cubie all` section for that figure (same renderer, same
// parameters). Warm figures come from the in-memory hot layer without
// admission; a cold render takes a run slot for its execution phase.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := harness.FigureByName(name); !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown figure %q", name)
		return
	}

	s.figMu.Lock()
	f, hot := s.figures[name]
	if !hot {
		f = &figFlight{done: make(chan struct{})}
		s.figures[name] = f
	}
	s.figMu.Unlock()

	if hot {
		select {
		case <-f.done:
			// Rendered (or failed) already: serve from the hot layer.
			metFigureHits.Inc()
			s.writeFigure(w, name, f)
			return
		default:
			// A concurrent identical request is rendering; fall through and
			// wait on it like a fresh request (no admission slot needed — the
			// renderer holds one).
			metFigureHits.Inc()
			s.awaitFigure(w, r, name, f)
			return
		}
	}

	metFigureMisses.Inc()
	release, ok := s.admit(w)
	if !ok {
		// Evict the placeholder so the next request retries.
		s.evictFigure(name, f)
		return
	}
	s.work.Add(1)
	go func() {
		defer s.work.Done()
		defer release()
		var buf strings.Builder
		err := s.h.RenderFigure(&buf, name)
		f.data, f.err = []byte(buf.String()), err
		if err != nil {
			// Failed renders are evicted so a later request can retry.
			s.evictFigure(name, f)
		}
		close(f.done)
	}()
	s.awaitFigure(w, r, name, f)
}

// awaitFigure waits for a figure flight within the request timeout.
func (s *Server) awaitFigure(w http.ResponseWriter, r *http.Request, name string, f *figFlight) {
	timeout := time.NewTimer(time.Duration(s.cfg.RequestTimeout))
	defer timeout.Stop()
	select {
	case <-f.done:
		s.writeFigure(w, name, f)
	case <-timeout.C:
		metHTTPTimeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, api.CodeTimeout,
			"figure %q exceeded %s; the render continues and a retry will reuse it",
			name, time.Duration(s.cfg.RequestTimeout))
	case <-r.Context().Done():
	}
}

func (s *Server) writeFigure(w http.ResponseWriter, name string, f *figFlight) {
	if f.err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"figure %q: %v", name, f.err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(f.data)
}

// evictFigure removes a flight if it is still the registered one.
func (s *Server) evictFigure(name string, f *figFlight) {
	s.figMu.Lock()
	if s.figures[name] == f {
		delete(s.figures, name)
	}
	s.figMu.Unlock()
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decode request: %v", err)
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "workload must not be empty")
		return
	}
	if req.Variant == "" {
		req.Variant = string(workload.TC)
	}
	if req.GPU == "" {
		req.GPU = "H200"
	}
	spec, err := device.ByName(req.GPU)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}

	release, ok := s.admit(w)
	if !ok {
		return
	}
	var c workload.Case
	var res *workload.Result
	s.await(w, r, release, func() error {
		var runErr error
		c, res, runErr = s.h.RunOne(req.Workload, req.Case, workload.Variant(req.Variant))
		return runErr
	}, func() {
		rep := sim.Run(spec, res.Profile)
		writeJSON(w, http.StatusOK, api.RunResponse{
			Workload:   req.Workload,
			Case:       c.Name,
			Variant:    req.Variant,
			GPU:        spec.Name,
			Work:       res.Work,
			Metric:     res.MetricName,
			SimTimeS:   rep.Time,
			Throughput: res.Work / rep.Time / 1e9,
			Bottleneck: rep.Bottleneck,
		})
	})
}
