package server

// The distributed-campaign surface: the content-addressed cache store
// (GET/PUT /api/v1/cache/{key}) that makes any daemon a runcache remote
// tier for its peers, and the work lease/steal queue
// (POST /api/v1/work/lease, POST /api/v1/work/complete, GET /api/v1/work)
// a coordinator serves its workers. None of these take an admission slot:
// cache traffic is plain disk I/O, and lease bookkeeping is a mutex hop —
// the expensive part (executing the leased key) happens in the *worker's*
// process, not here.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/runcache"
	"repro/internal/server/api"
)

// Cache-store metrics (see docs/OBSERVABILITY.md).
var (
	metStoreServed = metrics.NewCounter("cubie_server_cache_served_total",
		"Cache-store entries served to peers (GET hits).")
	metStoreMisses = metrics.NewCounter("cubie_server_cache_miss_total",
		"Cache-store GETs for entries this daemon does not hold (404).")
	metStoreStored = metrics.NewCounter("cubie_server_cache_stored_total",
		"Cache-store entries accepted from peers (PUT).")
	metStoreRejected = metrics.NewCounter("cubie_server_cache_rejected_total",
		"Cache-store PUTs refused (invalid name, not an envelope, or address mismatch).")
)

// maxStoreEntryBytes bounds one inbound PUT body (matches the remote
// tier's own read bound).
const maxStoreEntryBytes = 1 << 30

// SetWorkQueue attaches the lease queue this daemon coordinates. Without
// one, the /api/v1/work endpoints answer 404 — a plain `cubie serve`
// daemon is a cache server but not a coordinator.
func (s *Server) SetWorkQueue(q *harness.WorkQueue) {
	s.queueMu.Lock()
	s.queue = q
	s.queueMu.Unlock()
}

func (s *Server) workQueue() *harness.WorkQueue {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	return s.queue
}

// store returns the runcache behind the cache endpoints (nil when the
// harness runs cacheless — CUBIE_CACHE=off).
func (s *Server) store() *runcache.Cache {
	return s.h.RunCache()
}

// handleCacheGet serves one entry's raw bytes by content address. The
// daemon does not verify the entry against its own fingerprint — a store
// serves every code version its peers run; the reader verifies.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	rc := s.store()
	if rc == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			"this daemon runs without a cache (CUBIE_CACHE=off) and stores no entries")
		return
	}
	name := r.PathValue("key")
	if !runcache.ValidEntryName(name) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			"%q is not a content-addressed entry name", name)
		return
	}
	data, err := rc.ReadEntry(name)
	if err != nil {
		if os.IsNotExist(err) {
			metStoreMisses.Inc()
			writeError(w, http.StatusNotFound, api.CodeNotFound, "no entry %s", name)
			return
		}
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "read %s: %v", name, err)
		return
	}
	metStoreServed.Inc()
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleCachePut accepts one entry by content address. The store
// re-derives the address from the envelope body and refuses a mismatch
// (runcache.WriteEntry), so peers cannot park bytes under foreign names;
// beyond that the entry is opaque — readers verify payloads.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	rc := s.store()
	if rc == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			"this daemon runs without a cache (CUBIE_CACHE=off) and accepts no entries")
		return
	}
	name := r.PathValue("key")
	data, err := io.ReadAll(io.LimitReader(r.Body, maxStoreEntryBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "read body: %v", err)
		return
	}
	if err := rc.WriteEntry(name, data); err != nil {
		if runcache.IsBadEntry(err) {
			metStoreRejected.Inc()
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "store %s: %v", name, err)
		return
	}
	metStoreStored.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleWorkLease grants one run key to a polling worker.
func (s *Server) handleWorkLease(w http.ResponseWriter, r *http.Request) {
	q := s.workQueue()
	if q == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			"this daemon coordinates no campaign (start one with `cubie dist`)")
		return
	}
	var req api.WorkLeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decode request: %v", err)
		return
	}
	g := q.Lease(req.Worker)
	resp := api.WorkLeaseResponse{Status: g.State, Lease: g.Lease, Error: g.Err}
	if g.State == harness.LeaseGranted {
		resp.Key = &api.WorkKey{
			Workload: g.Key.Workload,
			Case:     g.Key.Case,
			Variant:  string(g.Key.Variant),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkComplete records a leased key's outcome.
func (s *Server) handleWorkComplete(w http.ResponseWriter, r *http.Request) {
	q := s.workQueue()
	if q == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			"this daemon coordinates no campaign")
		return
	}
	var req api.WorkCompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decode request: %v", err)
		return
	}
	if req.Lease == "" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "lease must not be empty")
		return
	}
	writeJSON(w, http.StatusOK, api.WorkCompleteResponse{Status: q.Complete(req.Lease, req.Error)})
}

// handleWorkStatus snapshots the coordinator's queue.
func (s *Server) handleWorkStatus(w http.ResponseWriter, r *http.Request) {
	q := s.workQueue()
	if q == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			"this daemon coordinates no campaign")
		return
	}
	st := q.Status()
	writeJSON(w, http.StatusOK, api.WorkStatusResponse{
		State:     st.State,
		Total:     st.Total,
		Completed: st.Completed,
		Pending:   st.Pending,
		Leased:    st.Leased,
		Reissued:  st.Reissued,
		Error:     st.Err,
	})
}
