// Package client is the thin typed Go client for the cubie serve control
// API (docs/SERVE.md). It speaks the wire types of internal/server/api
// over net/http and is what `cubie fetch` uses; scripts that prefer Go
// over curl can embed it the same way.
//
// Every non-2xx response decodes into *api.Error, so callers can switch on
// the stable code (api.CodeSaturated, api.CodeNotFound, ...) and read the
// HTTP status from Error.Status.
//
// GET requests ride internal/httputil's retry loop (jittered backoff on
// connection errors and retryable statuses), so a transient daemon blip —
// a restart, a dropped connection — heals without the caller noticing.
// Most POSTs are issued exactly once: runs and campaign starts are not
// idempotent from the client's view, and the daemon's own semantics
// (singleflight caches, lease expiry) already cover a lost response. The
// exception is work completion (CompleteWork), which is retried like a GET:
// the coordinator treats a stale or duplicate lease completion as a no-op,
// so the retry is idempotent-safe — and without it a transient 5xx on the
// publish would fail a worker's completion path and force the whole key to
// be re-executed under a fresh lease.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/httputil"
	"repro/internal/server/api"
)

// Client talks to one daemon.
type Client struct {
	base   string
	http   *http.Client
	policy httputil.Policy
}

// New returns a client for a daemon at addr ("host:port" or a full
// http:// base URL).
func New(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base:   strings.TrimRight(base, "/"),
		http:   &http.Client{Timeout: 10 * time.Minute},
		policy: httputil.DefaultPolicy(),
	}
}

// WithPolicy overrides the GET retry policy (tests shrink the delays).
func (c *Client) WithPolicy(p httputil.Policy) *Client {
	c.policy = p
	return c
}

// get issues one retried GET (see the package doc for the retry split).
func (c *Client) get(path string) (*http.Response, error) {
	return httputil.Do(c.http, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+path, nil)
	}, c.policy)
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses return *api.Error.
func (c *Client) do(method, path string, body, out any) error {
	var resp *http.Response
	var err error
	if method == http.MethodGet && body == nil {
		resp, err = c.get(path)
	} else {
		var rd io.Reader
		if body != nil {
			data, merr := json.Marshal(body)
			if merr != nil {
				return fmt.Errorf("client: encode request: %w", merr)
			}
			rd = bytes.NewReader(data)
		}
		var req *http.Request
		req, err = http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err = c.http.Do(req)
	}
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// doRetryPost issues one POST through the same retry loop as GETs, for the
// idempotent-safe endpoints (see the package doc). The body is marshaled
// once and re-wrapped per attempt, so every retry sends identical bytes.
func (c *Client) doRetryPost(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	resp, err := httputil.Do(c.http, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, c.policy)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode POST %s response: %w", path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into *api.Error, synthesizing an
// envelope when the body is not one (a proxy's plain-text error, say).
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.ErrorResponse
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		env.Error.Status = resp.StatusCode
		return &env.Error
	}
	return &api.Error{
		Code:    api.CodeInternal,
		Message: fmt.Sprintf("HTTP %s: %s", resp.Status, strings.TrimSpace(string(data))),
		Status:  resp.StatusCode,
	}
}

// Health fetches GET /healthz.
func (c *Client) Health() (api.Health, error) {
	var out api.Health
	err := c.do(http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Figures fetches the figure catalog (GET /api/v1/figures).
func (c *Client) Figures() ([]api.FigureInfo, error) {
	var out api.FiguresResponse
	err := c.do(http.MethodGet, "/api/v1/figures", nil, &out)
	return out.Figures, err
}

// Figure fetches one rendered figure's bytes — identical to the `cubie all`
// section for that figure (GET /api/v1/figures/{name}).
func (c *Client) Figure(name string) ([]byte, error) {
	resp, err := c.get("/api/v1/figures/" + name)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read figure %q: %w", name, err)
	}
	return data, nil
}

// Run executes one (workload, case, variant) on the daemon
// (POST /api/v1/runs).
func (c *Client) Run(req api.RunRequest) (api.RunResponse, error) {
	var out api.RunResponse
	err := c.do(http.MethodPost, "/api/v1/runs", req, &out)
	return out, err
}

// StartCampaign submits a named plan (POST /api/v1/campaigns) and returns
// its initial status (ID included).
func (c *Client) StartCampaign(plan string) (api.CampaignStatus, error) {
	var out api.CampaignStatus
	err := c.do(http.MethodPost, "/api/v1/campaigns", api.CampaignRequest{Plan: plan}, &out)
	return out, err
}

// Campaign polls one campaign's status (GET /api/v1/campaigns/{id}).
func (c *Client) Campaign(id string) (api.CampaignStatus, error) {
	var out api.CampaignStatus
	err := c.do(http.MethodGet, "/api/v1/campaigns/"+id, nil, &out)
	return out, err
}

// Campaigns lists every campaign (GET /api/v1/campaigns).
func (c *Client) Campaigns() ([]api.CampaignStatus, error) {
	var out api.CampaignsResponse
	err := c.do(http.MethodGet, "/api/v1/campaigns", nil, &out)
	return out.Campaigns, err
}

// CampaignEvents streams a campaign's NDJSON progress
// (GET /api/v1/campaigns/{id}/events), calling fn on each status line
// until the stream ends (campaign finished) or fn returns false.
func (c *Client) CampaignEvents(id string, fn func(api.CampaignStatus) bool) error {
	resp, err := c.get("/api/v1/campaigns/" + id + "/events")
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var st api.CampaignStatus
		if err := dec.Decode(&st); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("client: campaign %s events: %w", id, err)
		}
		if !fn(st) {
			return nil
		}
	}
}

// LeaseWork asks a coordinator for one run key
// (POST /api/v1/work/lease). worker is a free-form identity for
// diagnostics.
func (c *Client) LeaseWork(worker string) (api.WorkLeaseResponse, error) {
	var out api.WorkLeaseResponse
	err := c.do(http.MethodPost, "/api/v1/work/lease", api.WorkLeaseRequest{Worker: worker}, &out)
	return out, err
}

// CompleteWork reports a leased key's outcome (POST /api/v1/work/complete);
// empty errMsg means success. The POST is retried with backoff — completion
// is idempotent at the coordinator (a duplicate or expired lease is a
// no-op), and dropping it over a transient publish error would waste the
// whole executed run.
func (c *Client) CompleteWork(lease, errMsg string) (api.WorkCompleteResponse, error) {
	var out api.WorkCompleteResponse
	err := c.doRetryPost("/api/v1/work/complete", api.WorkCompleteRequest{Lease: lease, Error: errMsg}, &out)
	return out, err
}

// WorkStatus snapshots a coordinator's queue (GET /api/v1/work).
func (c *Client) WorkStatus() (api.WorkStatusResponse, error) {
	var out api.WorkStatusResponse
	err := c.do(http.MethodGet, "/api/v1/work", nil, &out)
	return out, err
}
