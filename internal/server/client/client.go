// Package client is the thin typed Go client for the cubie serve control
// API (docs/SERVE.md). It speaks the wire types of internal/server/api
// over net/http and is what `cubie fetch` uses; scripts that prefer Go
// over curl can embed it the same way.
//
// Every non-2xx response decodes into *api.Error, so callers can switch on
// the stable code (api.CodeSaturated, api.CodeNotFound, ...) and read the
// HTTP status from Error.Status.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server/api"
)

// Client talks to one daemon.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for a daemon at addr ("host:port" or a full
// http:// base URL).
func New(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 10 * time.Minute},
	}
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses return *api.Error.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into *api.Error, synthesizing an
// envelope when the body is not one (a proxy's plain-text error, say).
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.ErrorResponse
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		env.Error.Status = resp.StatusCode
		return &env.Error
	}
	return &api.Error{
		Code:    api.CodeInternal,
		Message: fmt.Sprintf("HTTP %s: %s", resp.Status, strings.TrimSpace(string(data))),
		Status:  resp.StatusCode,
	}
}

// Health fetches GET /healthz.
func (c *Client) Health() (api.Health, error) {
	var out api.Health
	err := c.do(http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Figures fetches the figure catalog (GET /api/v1/figures).
func (c *Client) Figures() ([]api.FigureInfo, error) {
	var out api.FiguresResponse
	err := c.do(http.MethodGet, "/api/v1/figures", nil, &out)
	return out.Figures, err
}

// Figure fetches one rendered figure's bytes — identical to the `cubie all`
// section for that figure (GET /api/v1/figures/{name}).
func (c *Client) Figure(name string) ([]byte, error) {
	resp, err := c.http.Get(c.base + "/api/v1/figures/" + name)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read figure %q: %w", name, err)
	}
	return data, nil
}

// Run executes one (workload, case, variant) on the daemon
// (POST /api/v1/runs).
func (c *Client) Run(req api.RunRequest) (api.RunResponse, error) {
	var out api.RunResponse
	err := c.do(http.MethodPost, "/api/v1/runs", req, &out)
	return out, err
}

// StartCampaign submits a named plan (POST /api/v1/campaigns) and returns
// its initial status (ID included).
func (c *Client) StartCampaign(plan string) (api.CampaignStatus, error) {
	var out api.CampaignStatus
	err := c.do(http.MethodPost, "/api/v1/campaigns", api.CampaignRequest{Plan: plan}, &out)
	return out, err
}

// Campaign polls one campaign's status (GET /api/v1/campaigns/{id}).
func (c *Client) Campaign(id string) (api.CampaignStatus, error) {
	var out api.CampaignStatus
	err := c.do(http.MethodGet, "/api/v1/campaigns/"+id, nil, &out)
	return out, err
}

// Campaigns lists every campaign (GET /api/v1/campaigns).
func (c *Client) Campaigns() ([]api.CampaignStatus, error) {
	var out api.CampaignsResponse
	err := c.do(http.MethodGet, "/api/v1/campaigns", nil, &out)
	return out.Campaigns, err
}

// CampaignEvents streams a campaign's NDJSON progress
// (GET /api/v1/campaigns/{id}/events), calling fn on each status line
// until the stream ends (campaign finished) or fn returns false.
func (c *Client) CampaignEvents(id string, fn func(api.CampaignStatus) bool) error {
	resp, err := c.http.Get(c.base + "/api/v1/campaigns/" + id + "/events")
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var st api.CampaignStatus
		if err := dec.Decode(&st); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("client: campaign %s events: %w", id, err)
		}
		if !fn(st) {
			return nil
		}
	}
}
