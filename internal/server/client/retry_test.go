package client

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httputil"
	"repro/internal/server/api"
)

// fastPolicy keeps retry tests quick.
func fastPolicy() httputil.Policy {
	return httputil.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

// TestCompleteWorkRetriesTransient5xx pins the completion-path satellite: a
// coordinator answering 503 twice before accepting must still see exactly
// one effective completion, with every attempt carrying identical bytes.
func TestCompleteWorkRetriesTransient5xx(t *testing.T) {
	var attempts atomic.Int32
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/api/v1/work/complete" {
			t.Errorf("unexpected request: %s %s", r.Method, r.URL.Path)
		}
		body, _ := io.ReadAll(r.Body)
		bodies = append(bodies, body)
		if attempts.Add(1) <= 2 {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		var req api.WorkCompleteRequest
		if err := json.Unmarshal(body, &req); err != nil || req.Lease != "lease-1" {
			t.Errorf("bad completion body %q: %v", body, err)
		}
		json.NewEncoder(w).Encode(api.WorkCompleteResponse{})
	}))
	defer srv.Close()

	c := New(srv.URL).WithPolicy(fastPolicy())
	if _, err := c.CompleteWork("lease-1", ""); err != nil {
		t.Fatalf("CompleteWork after transient 5xx: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (two 503s then success)", got)
	}
	for i := 1; i < len(bodies); i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("attempt %d sent different bytes: %q vs %q", i, bodies[i], bodies[0])
		}
	}
}

// TestCompleteWorkDoesNotRetryClientErrors pins the other side of the
// policy: a 4xx (expired lease, malformed request) is terminal — retrying
// cannot fix it and would hammer the coordinator.
func TestCompleteWorkDoesNotRetryClientErrors(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{Code: api.CodeNotFound, Message: "unknown lease"}})
	}))
	defer srv.Close()

	c := New(srv.URL).WithPolicy(fastPolicy())
	_, err := c.CompleteWork("stale", "")
	if err == nil {
		t.Fatal("4xx completion reported success")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("%d attempts on a 4xx, want 1", got)
	}
}

// TestRunPostStillSingleShot guards the exactly-once contract of the
// non-idempotent POSTs: a transient 5xx on /api/v1/runs must surface
// immediately, not retry.
func TestRunPostStillSingleShot(t *testing.T) {
	var attempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL).WithPolicy(fastPolicy())
	if _, err := c.Run(api.RunRequest{Workload: "SpMV"}); err == nil {
		t.Fatal("5xx run reported success")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("%d attempts, want 1 (runs are not idempotent)", got)
	}
}
