package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// metRunsStarted is the harness's execution counter — the registry
// get-or-creates by name, so this is the same counter harness.go owns.
var testRunsStarted = metrics.NewCounter("cubie_harness_runs_started_total",
	"Workload executions the harness actually started (cache misses).")

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Defaults()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(harness.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestFigureBytesMatchCLI: every run-free figure endpoint returns exactly
// the bytes the CLI renderer produces — the serve/CLI byte-identity
// contract, checked on the sections that need no workload executions.
// (The run-backed sections share the identical renderer functions; the
// warm `cubie all` diff in the Makefile smoke covers the composition.)
func TestFigureBytesMatchCLI(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for _, name := range []string{"suite", "specs", "quadrants", "dwarfs", "observe", "datasets", "figure12"} {
		var want bytes.Buffer
		if err := s.h.RenderFigure(&want, name); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(ts.URL + "/api/v1/figures/" + name)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("figure %q: HTTP %d: %s", name, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("figure %q bytes differ from the CLI renderer", name)
		}
		// Second fetch must come from the hot layer, byte-identical.
		hits := metFigureHits.Value()
		resp2, err := http.Get(ts.URL + "/api/v1/figures/" + name)
		if err != nil {
			t.Fatal(err)
		}
		got2, _ := io.ReadAll(resp2.Body)
		resp2.Body.Close()
		if !bytes.Equal(got2, want.Bytes()) {
			t.Fatalf("warm figure %q bytes differ", name)
		}
		if metFigureHits.Value() != hits+1 {
			t.Fatalf("warm figure %q missed the hot layer", name)
		}
	}
}

// TestFiguresCatalogListed: the catalog endpoint lists every figure with
// its in-all flag.
func TestFiguresCatalogListed(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var out api.FiguresResponse
	getJSON(t, ts.URL+"/api/v1/figures", &out)
	if len(out.Figures) != len(harness.Catalog()) {
		t.Fatalf("listed %d figures, catalog has %d", len(out.Figures), len(harness.Catalog()))
	}
	names := map[string]bool{}
	for _, f := range out.Figures {
		names[f.Name] = true
	}
	for _, want := range []string{"specs", "figure3", "table6", "sweep"} {
		if !names[want] {
			t.Fatalf("catalog listing missing %q", want)
		}
	}
}

// TestRunRequestsDedupeToOneExecution: concurrent identical run requests
// share one workload execution through the harness singleflight cache,
// observable as exactly one increment of runs_started_total.
func TestRunRequestsDedupeToOneExecution(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxInflightRuns = 16 })
	w, err := s.h.Suite.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(api.RunRequest{
		Workload: "GEMV", Case: w.Cases()[0].Name, Variant: string(workload.TC),
	})

	before := testRunsStarted.Value()
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]api.RunResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := testRunsStarted.Value() - before; got != 1 {
		t.Fatalf("%d identical requests started %d executions, want 1 (singleflight)", n, got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("request %d result %+v differs from %+v", i, results[i], results[0])
		}
	}
	if results[0].SimTimeS <= 0 || results[0].Throughput <= 0 || results[0].GPU != "H200" {
		t.Fatalf("implausible run response: %+v", results[0])
	}
}

// TestSaturationSheds429: with every run slot busy, run-executing requests
// get 429 + Retry-After, while warm figures and health stay servable.
func TestSaturationSheds429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxInflightRuns = 1
		c.RetryAfter = Duration(3 * time.Second)
	})

	// Warm a figure while the slot is free.
	if resp, err := http.Get(ts.URL + "/api/v1/figures/specs"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up figure: %v (%v)", err, resp)
	} else {
		resp.Body.Close()
	}

	// Occupy the only slot.
	s.runSlots <- struct{}{}
	defer func() { <-s.runSlots }()

	body, _ := json.Marshal(api.RunRequest{Workload: "GEMV"})
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorResponse
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != api.CodeSaturated {
		t.Fatalf("saturated run: HTTP %d code %q, want 429 %q", resp.StatusCode, env.Error.Code, api.CodeSaturated)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}

	// A cold figure render needs a slot too.
	resp, err = http.Get(ts.URL + "/api/v1/figures/whatif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated cold figure: HTTP %d, want 429", resp.StatusCode)
	}

	// The warm figure and the probes bypass admission entirely.
	for _, path := range []string{"/api/v1/figures/specs", "/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("saturated %s: HTTP %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestDrainingRefusesNewWork: once draining, readiness flips to 503 and
// new API work is refused with the draining code.
func TestDrainingRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.draining.Store(true)

	var h api.Health
	resp := getJSON(t, ts.URL+"/readyz", &h)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining readyz: HTTP %d %+v", resp.StatusCode, h)
	}

	body, _ := json.Marshal(api.RunRequest{Workload: "GEMV"})
	r2, err := http.Post(ts.URL+"/api/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorResponse
	err = json.NewDecoder(r2.Body).Decode(&env)
	r2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusServiceUnavailable || env.Error.Code != api.CodeDraining {
		t.Fatalf("draining run: HTTP %d code %q", r2.StatusCode, env.Error.Code)
	}

	// Liveness keeps answering ok — the process is healthy, just leaving.
	resp = getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("draining healthz: HTTP %d %+v", resp.StatusCode, h)
	}
}

// TestErrorEnvelopes: unknown routes, figures, campaigns, and malformed
// bodies all answer with the documented JSON error envelope.
func TestErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"GET", "/nope", "", http.StatusNotFound, api.CodeNotFound},
		{"GET", "/api/v1/figures/figure99", "", http.StatusNotFound, api.CodeNotFound},
		{"GET", "/api/v1/campaigns/c99", "", http.StatusNotFound, api.CodeNotFound},
		{"GET", "/api/v1/campaigns/c99/events", "", http.StatusNotFound, api.CodeNotFound},
		{"POST", "/api/v1/runs", `{"workload":""}`, http.StatusBadRequest, api.CodeBadRequest},
		{"POST", "/api/v1/runs", `{"werkload":"GEMM"}`, http.StatusBadRequest, api.CodeBadRequest},
		{"POST", "/api/v1/runs", `{"workload":"GEMM","gpu":"H900"}`, http.StatusBadRequest, api.CodeBadRequest},
		{"POST", "/api/v1/campaigns", `{"plan":"everything"}`, http.StatusBadRequest, api.CodeBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s %s: envelope decode: %v", tc.method, tc.path, err)
		}
		if resp.StatusCode != tc.status || env.Error.Code != tc.code {
			t.Fatalf("%s %s: HTTP %d code %q, want %d %q",
				tc.method, tc.path, resp.StatusCode, env.Error.Code, tc.status, tc.code)
		}
		if env.Error.Message == "" {
			t.Fatalf("%s %s: empty error message", tc.method, tc.path)
		}
	}
}

// TestCampaignLifecycle: a small fabricated campaign (the POST handler's
// exact goroutine shape over hand-picked keys) progresses from running to
// done, is visible in the list, and streams NDJSON events ending with the
// final state.
func TestCampaignLifecycle(t *testing.T) {
	s, ts := newTestServer(t, nil)
	w, err := s.h.Suite.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Cases()[0].Name
	gate := make(chan struct{})
	c := &campaign{
		id:   "c1",
		plan: "test",
		keys: []harness.RunKey{
			{Workload: "GEMV", Case: small, Variant: workload.TC},
			{Workload: "GEMV", Case: small, Variant: workload.TC}, // duplicate: Total must count 1
			{Workload: "GEMV", Case: small, Variant: workload.Baseline},
		},
		start: time.Now(),
		done:  make(chan struct{}),
	}
	s.campMu.Lock()
	s.campaigns = append(s.campaigns, c)
	s.campMu.Unlock()
	go func() {
		<-gate
		c.err = s.h.Execute(c.keys)
		c.elapsed = time.Since(c.start).Seconds()
		close(c.done)
	}()

	var st api.CampaignStatus
	resp := getJSON(t, ts.URL+"/api/v1/campaigns/c1", &st)
	if resp.StatusCode != http.StatusOK || st.State != "running" || st.Total != 2 || st.Completed != 0 {
		t.Fatalf("pre-execution status: HTTP %d %+v", resp.StatusCode, st)
	}

	close(gate)
	// The events stream ends with the terminal state.
	cl := client.New(strings.TrimPrefix(ts.URL, "http://"))
	var lastSt api.CampaignStatus
	if err := cl.CampaignEvents("c1", func(st api.CampaignStatus) bool {
		lastSt = st
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if lastSt.State != "done" || lastSt.Completed != 2 || lastSt.Error != "" {
		t.Fatalf("final event: %+v", lastSt)
	}

	list, err := cl.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "c1" || list[0].State != "done" {
		t.Fatalf("campaign list: %+v", list)
	}
}

// TestServeHandshakeAndGracefulShutdown: Run binds port 0, writes the
// actual address to AddrFile, serves the typed client, and drains cleanly
// on context cancellation (the CLI's SIGTERM path).
func TestServeHandshakeAndGracefulShutdown(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	cfg := Defaults()
	cfg.Addr = "127.0.0.1:0"
	cfg.AddrFile = addrFile
	cfg.DrainTimeout = Duration(10 * time.Second)
	s, err := New(harness.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("addr file never appeared")
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if got := s.Addr(); got != addr {
		t.Fatalf("Addr() = %q, addr file has %q", got, addr)
	}

	cl := client.New(addr)
	if h, err := cl.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("health over the wire: %+v, %v", h, err)
	}
	figs, err := cl.Figures()
	if err != nil || len(figs) == 0 {
		t.Fatalf("figures over the wire: %d, %v", len(figs), err)
	}
	data, err := cl.Figure("specs")
	if err != nil || !bytes.Contains(data, []byte("H200")) {
		t.Fatalf("figure over the wire: %q, %v", data, err)
	}
	// The typed client surfaces the envelope as *api.Error.
	if _, err := cl.Figure("figure99"); err == nil {
		t.Fatal("client accepted an unknown figure")
	} else if apiErr, ok := err.(*api.Error); !ok || apiErr.Code != api.CodeNotFound || apiErr.Status != http.StatusNotFound {
		t.Fatalf("client error = %#v, want *api.Error not_found 404", err)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}
