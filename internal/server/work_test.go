package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/httputil"
	"repro/internal/runcache"
	"repro/internal/server/api"
	"repro/internal/server/client"
)

// fastClientPolicy keeps client retries instant in tests.
func fastClientPolicy() httputil.Policy {
	p := httputil.DefaultPolicy()
	p.MaxAttempts = 2
	p.BaseDelay = time.Millisecond
	p.Sleep = func(time.Duration) {}
	return p
}

// wireEntry produces one valid content-addressed entry (name, bytes) by
// writing a result through a scratch cache and reading the file back.
func wireEntry(t *testing.T, fp string) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	c, err := runcache.OpenWithFingerprint(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	h := harness.New().AttachCache(c)
	if err := h.ExecuteKey(harness.RunKey{Workload: "GEMV", Case: gemvCase(t), Variant: "TC"}); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no entry written (err=%v)", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Base(names[0]), data
}

func gemvCase(t *testing.T) string {
	t.Helper()
	w, err := harness.New().Suite.ByName("GEMV")
	if err != nil {
		t.Fatal(err)
	}
	return w.Cases()[0].Name
}

func newStoreServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	c, err := runcache.OpenWithFingerprint(t.TempDir(), "srv-fp")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(harness.New().AttachCache(c), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func httpGetBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// TestCacheStoreRoundTrip: a PUT entry is served back byte-identical, and
// the daemon refuses what the addressing contract forbids.
func TestCacheStoreRoundTrip(t *testing.T) {
	_, ts := newStoreServer(t)
	name, data := wireEntry(t, "peer-fp") // foreign fingerprint: stores must hold it anyway

	put := func(path string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPut, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Miss before the PUT.
	resp := getJSON(t, ts.URL+"/api/v1/cache/"+name, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-put GET: HTTP %d, want 404", resp.StatusCode)
	}

	if resp := put("/api/v1/cache/"+name, data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: HTTP %d, want 204", resp.StatusCode)
	}
	got := httpGetBytes(t, ts.URL+"/api/v1/cache/"+name)
	if !bytes.Equal(got, data) {
		t.Fatalf("served entry differs from stored entry (%d vs %d bytes)", len(got), len(data))
	}

	// Invalid names are 400 on both verbs.
	if resp := getJSON(t, ts.URL+"/api/v1/cache/not-an-entry", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET bad name: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := put("/api/v1/cache/not-an-entry", data); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT bad name: HTTP %d, want 400", resp.StatusCode)
	}
	// A valid name that does not match the body's address is refused.
	other := runcache.EntryName("peer-fp", "result", "no|such|key")
	if resp := put("/api/v1/cache/"+other, data); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT address mismatch: HTTP %d, want 400", resp.StatusCode)
	}
	// Garbage under a valid name is refused too.
	if resp := put("/api/v1/cache/"+name, []byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT garbage: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestCacheEndpointsWithoutCache: a cacheless daemon (CUBIE_CACHE=off)
// answers 404 — peers treat it as a silent miss.
func TestCacheEndpointsWithoutCache(t *testing.T) {
	_, ts := newTestServer(t, nil) // harness.New() with no cache attached
	name := runcache.EntryName("fp", "result", "k")
	if resp := getJSON(t, ts.URL+"/api/v1/cache/"+name, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET: HTTP %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/v1/cache/"+name, bytes.NewReader([]byte("{}")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestWorkEndpointsWithoutQueue: a daemon that coordinates nothing
// answers 404 on the whole /api/v1/work surface.
func TestWorkEndpointsWithoutQueue(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cl := client.New(ts.URL).WithPolicy(fastClientPolicy())
	if _, err := cl.LeaseWork("w"); !isAPICode(err, api.CodeNotFound) {
		t.Fatalf("LeaseWork err = %v, want not_found", err)
	}
	if _, err := cl.CompleteWork("l1", ""); !isAPICode(err, api.CodeNotFound) {
		t.Fatalf("CompleteWork err = %v, want not_found", err)
	}
	if _, err := cl.WorkStatus(); !isAPICode(err, api.CodeNotFound) {
		t.Fatalf("WorkStatus err = %v, want not_found", err)
	}
}

func isAPICode(err error, code string) bool {
	ae, ok := err.(*api.Error)
	return ok && ae.Code == code
}

// TestWorkQueueOverHTTP drives a two-key campaign through the wire
// protocol, including the worker-death fault path: worker w1 leases a key
// and dies (never completes); after the lease timeout the key is
// re-issued to w2, w2 drains the plan, and w1's late completion is
// reported stale.
func TestWorkQueueOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, nil)
	h := harness.New()
	small := gemvCase(t)
	keys := []harness.RunKey{
		{Workload: "GEMV", Case: small, Variant: "TC"},
		{Workload: "GEMV", Case: small, Variant: "Baseline"},
	}
	q, err := h.NewWorkQueue(keys, 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkQueue(q)
	cl := client.New(ts.URL).WithPolicy(fastClientPolicy())

	st, err := cl.WorkStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Total != 2 {
		t.Fatalf("status = %+v, want running with 2 keys", st)
	}

	// w1 leases one key and dies.
	dead, err := cl.LeaseWork("w1")
	if err != nil {
		t.Fatal(err)
	}
	if dead.Status != "ok" || dead.Key == nil || dead.Key.Workload != "GEMV" {
		t.Fatalf("w1 lease = %+v, want ok GEMV grant", dead)
	}

	// w2 gets the other key immediately, then waits out w1's corpse.
	g2, err := cl.LeaseWork("w2")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Status != "ok" {
		t.Fatalf("w2 first lease = %+v, want ok", g2)
	}
	if _, err := cl.CompleteWork(g2.Lease, ""); err != nil {
		t.Fatal(err)
	}

	// Poll until the dead worker's lease expires into w2's hands.
	deadline := time.Now().Add(5 * time.Second)
	var g3 api.WorkLeaseResponse
	for {
		g3, err = cl.LeaseWork("w2")
		if err != nil {
			t.Fatal(err)
		}
		if g3.Status == "ok" {
			break
		}
		if g3.Status != "wait" {
			t.Fatalf("w2 re-lease = %+v, want ok or wait", g3)
		}
		if time.Now().After(deadline) {
			t.Fatal("dead worker's key was never re-issued")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if *g3.Key != *dead.Key {
		t.Fatalf("re-issued key = %+v, want %+v", g3.Key, dead.Key)
	}
	if ack, err := cl.CompleteWork(g3.Lease, ""); err != nil || ack.Status != "ok" {
		t.Fatalf("complete re-issued = %+v, %v", ack, err)
	}

	// The straggler's completion must be ignored.
	if ack, err := cl.CompleteWork(dead.Lease, ""); err != nil || ack.Status != "stale" {
		t.Fatalf("stale complete = %+v, %v, want stale", ack, err)
	}

	if g, err := cl.LeaseWork("w2"); err != nil || g.Status != "done" {
		t.Fatalf("final lease = %+v, %v, want done", g, err)
	}
	st, err = cl.WorkStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Completed != 2 || st.Reissued != 1 {
		t.Fatalf("final status = %+v, want done/2 completed/1 reissued", st)
	}
}
