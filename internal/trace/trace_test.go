package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

func report(t *testing.T) sim.Report {
	t.Helper()
	return sim.Run(device.H200(), sim.Profile{
		TensorFLOPs: 1e12, DRAMBytes: 1e10, Launches: 1,
		Eff: sim.Efficiency{Tensor: 0.6, DRAM: 0.8},
	})
}

func TestTimelineStructure(t *testing.T) {
	tl := NewTimeline()
	r := report(t)
	tl.AddKernelLoop(device.H200(), "GEMM", "TC", r, 10)
	tl.AddKernelLoop(device.H200(), "GEMM", "CC", r, 10)
	tl.AddKernelLoop(device.H200(), "SpMV", "TC", r, 5)
	tl.AddKernelLoop(device.A100(), "GEMM", "TC", r, 10)
	if tl.Len() != 4 {
		t.Fatalf("%d spans, want 4", tl.Len())
	}

	var buf bytes.Buffer
	if err := tl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}

	// Two devices → two process-name metadata events; three tracks.
	procs, threads, spans := 0, 0, 0
	for _, e := range parsed.TraceEvents {
		switch {
		case e.Name == "process_name":
			procs++
		case e.Name == "thread_name":
			threads++
		case e.Phase == "X":
			spans++
			if e.DurUS <= 0 {
				t.Fatalf("span with non-positive duration: %+v", e)
			}
			if e.Arguments["bottleneck"] == "" {
				t.Fatal("span missing breakdown arguments")
			}
		}
	}
	if procs != 2 || threads != 3 || spans != 4 {
		t.Fatalf("procs/threads/spans = %d/%d/%d, want 2/3/4", procs, threads, spans)
	}
}

func TestSpansLaidEndToEnd(t *testing.T) {
	tl := NewTimeline()
	r := report(t)
	tl.AddKernelLoop(device.H200(), "GEMM", "TC", r, 10)
	tl.AddKernelLoop(device.H200(), "GEMM", "CC", r, 10)
	var first, second *Event
	for i := range tl.events {
		e := &tl.events[i]
		if e.Phase != "X" {
			continue
		}
		if first == nil {
			first = e
		} else {
			second = e
		}
	}
	if first.TimeUS != 0 {
		t.Errorf("first span starts at %v", first.TimeUS)
	}
	if second.TimeUS != first.DurUS {
		t.Errorf("second span at %v, want %v", second.TimeUS, first.DurUS)
	}
}

func TestRepeatsClamped(t *testing.T) {
	tl := NewTimeline()
	r := report(t)
	tl.AddKernelLoop(device.H200(), "X", "TC", r, 0)
	for _, e := range tl.events {
		if e.Phase == "X" && e.Arguments["repeats"] != 1 {
			t.Fatalf("repeats = %v, want clamped to 1", e.Arguments["repeats"])
		}
	}
}
