package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/par"
)

// TestHostRecorderSpans checks lane allocation, event capture, and that
// concurrent spans land on distinct lanes.
func TestHostRecorderSpans(t *testing.T) {
	rec := NewHostRecorder()
	endA := rec.Span("test", "a")
	endB := rec.Span("test", "b") // concurrent with a: second lane
	endB()
	endA()
	endC := rec.Span("test", "c") // a's lane is free again
	endC()

	if rec.Len() != 3 {
		t.Fatalf("recorded %d spans, want 3", rec.Len())
	}
	evs := rec.Events()
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["a"].TID == byName["b"].TID {
		t.Error("concurrent spans must occupy distinct lanes")
	}
	if byName["c"].TID != 1 {
		t.Errorf("lane not reused: span c on lane %d, want 1", byName["c"].TID)
	}
}

// TestHostRecorderWrite checks the output is valid Chrome-trace JSON with
// monotonically non-decreasing, non-negative timestamps.
func TestHostRecorderWrite(t *testing.T) {
	rec := NewHostRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			end := rec.Span("test", "work")
			time.Sleep(time.Millisecond)
			end()
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("host trace is not valid JSON: %v", err)
	}
	var prev float64 = -1
	spans := 0
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			continue
		case "X":
			spans++
			if e.TimeUS < 0 || e.DurUS < 0 {
				t.Fatalf("negative timestamp in %+v", e)
			}
			if e.TimeUS < prev {
				t.Fatalf("timestamps not monotonic: %v after %v", e.TimeUS, prev)
			}
			prev = e.TimeUS
			if e.PID != hostPID || e.TID < 1 {
				t.Fatalf("bad track ids in %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if spans != 8 {
		t.Fatalf("wrote %d spans, want 8", spans)
	}
}

// TestHostSpanInactive checks the disabled path is a cheap no-op.
func TestHostSpanInactive(t *testing.T) {
	if ActiveHost() != nil {
		t.Fatal("unexpected active recorder")
	}
	end := HostSpan("test", "nothing")
	end() // must not panic
	if allocs := testing.AllocsPerRun(100, func() { HostSpan("x", "y")() }); allocs != 0 {
		t.Errorf("inactive HostSpan allocates %.1f per call, want 0", allocs)
	}
}

// TestStartStopHost checks the par range hook wiring: with host tracing
// active, tile ranges show up as par-range spans; after StopHost they stop.
func TestStartStopHost(t *testing.T) {
	prev := par.SetWorkers(2)
	defer par.SetWorkers(prev)

	rec := StartHost()
	if ActiveHost() != rec {
		t.Fatal("StartHost did not install the recorder")
	}
	end := HostSpan("harness-run", "GEMM|case|TC")
	par.ForTiles(64, func(lo, hi int) {})
	end()
	if got := StopHost(); got != rec {
		t.Fatalf("StopHost returned %p, want %p", got, rec)
	}
	if ActiveHost() != nil {
		t.Fatal("recorder still active after StopHost")
	}

	var sawRange, sawRun bool
	for _, e := range rec.Events() {
		switch e.Category {
		case "par-range":
			sawRange = true
		case "harness-run":
			sawRun = true
		}
	}
	if !sawRange {
		t.Error("no par-range spans recorded while host tracing was active")
	}
	if !sawRun {
		t.Error("harness-run span missing")
	}

	before := rec.Len()
	par.ForTiles(64, func(lo, hi int) {})
	if rec.Len() != before {
		t.Error("range hook still firing after StopHost")
	}
}
