// Package trace exports simulated execution timelines in the Chrome
// trace-event format (chrome://tracing, Perfetto): each workload variant's
// measurement loop becomes a span on its device's track, with the
// per-resource breakdown attached as arguments. Useful for eyeballing the
// Figure 7/8 measurement campaigns.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/sim"
)

// Event is one Chrome trace event (the "X" complete-event form).
type Event struct {
	Name      string         `json:"name"`
	Category  string         `json:"cat"`
	Phase     string         `json:"ph"`
	TimeUS    float64        `json:"ts"`
	DurUS     float64        `json:"dur"`
	PID       int            `json:"pid"`
	TID       int            `json:"tid"`
	Arguments map[string]any `json:"args,omitempty"`
}

// Timeline accumulates events, one process per device and one thread per
// workload.
type Timeline struct {
	events  []Event
	pids    map[string]int
	tids    map[string]int
	cursors map[int]float64 // per-tid time cursor in µs
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{
		pids:    map[string]int{},
		tids:    map[string]int{},
		cursors: map[int]float64{},
	}
}

func (t *Timeline) pid(deviceName string) int {
	if id, ok := t.pids[deviceName]; ok {
		return id
	}
	id := len(t.pids) + 1
	t.pids[deviceName] = id
	t.events = append(t.events, Event{
		Name: "process_name", Category: "__metadata", Phase: "M",
		PID: id, Arguments: map[string]any{"name": deviceName},
	})
	return id
}

func (t *Timeline) tid(pid int, workloadName string) int {
	key := fmt.Sprintf("%d/%s", pid, workloadName)
	if id, ok := t.tids[key]; ok {
		return id
	}
	id := len(t.tids) + 1
	t.tids[key] = id
	t.events = append(t.events, Event{
		Name: "thread_name", Category: "__metadata", Phase: "M",
		PID: pid, TID: id, Arguments: map[string]any{"name": workloadName},
	})
	return id
}

// AddKernelLoop appends a measurement-loop span: `repeats` invocations of
// the kernel described by report r, on the device/workload/variant track.
// Spans on the same track are laid end to end.
func (t *Timeline) AddKernelLoop(spec device.Spec, workloadName, variant string,
	r sim.Report, repeats int) {
	if repeats < 1 {
		repeats = 1
	}
	pid := t.pid(spec.Name)
	tid := t.tid(pid, workloadName)
	start := t.cursors[tid]
	dur := r.Time * float64(repeats) * 1e6
	t.events = append(t.events, Event{
		Name:     variant,
		Category: "kernel-loop",
		Phase:    "X",
		TimeUS:   start,
		DurUS:    dur,
		PID:      pid,
		TID:      tid,
		Arguments: map[string]any{
			"repeats":        repeats,
			"per_kernel_us":  r.Time * 1e6,
			"bottleneck":     r.Bottleneck,
			"avg_power_w":    r.AvgPower,
			"energy_j":       r.Energy,
			"util_tensor":    r.UtilTensor,
			"util_vector":    r.UtilVector,
			"util_dram":      r.UtilDRAM,
			"tensor_time_us": r.Breakdown.Tensor * 1e6,
			"dram_time_us":   r.Breakdown.DRAM * 1e6,
		},
	})
	t.cursors[tid] = start + dur
}

// Len returns the number of non-metadata spans recorded.
func (t *Timeline) Len() int {
	n := 0
	for _, e := range t.events {
		if e.Phase == "X" {
			n++
		}
	}
	return n
}

// Write emits the timeline as Chrome trace JSON.
func (t *Timeline) Write(w io.Writer) error {
	wrapper := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: t.events}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wrapper)
}
