package trace

// Host-side tracing: alongside the *simulated* device timelines
// (Timeline), a HostRecorder captures what this process really did — the
// wall-clock span of every harness kernel execution and of every tile
// range the internal/par pool ran — in the same Chrome trace-event JSON, so
// a Perfetto view shows the emulator's own concurrency next to the modeled
// device's. See docs/OBSERVABILITY.md for how to read the output.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
)

// hostPID is the synthetic Chrome-trace process id of the host track
// (device timelines number their pids from 1 per device; the host track
// uses a distinct range so the two can be merged by hand if desired).
const hostPID = 1000

// HostRecorder collects real wall-clock execution spans. Spans are placed
// on numbered lanes: a lane is held for the lifetime of its span and
// reused afterwards, so the lane count of the rendered timeline equals the
// peak host concurrency. The zero value is not usable; use NewHostRecorder
// or StartHost.
type HostRecorder struct {
	start time.Time

	mu     sync.Mutex
	events []Event
	lanes  []bool // lanes[i] == true while lane i is occupied
	peak   int
}

// NewHostRecorder returns a recorder whose clock starts now.
func NewHostRecorder() *HostRecorder {
	return &HostRecorder{start: time.Now()}
}

// active is the recorder HostSpan reports to (nil when host tracing is
// off). A single process-wide slot mirrors how CPU profiling works: one
// recording session at a time.
var active atomic.Pointer[HostRecorder]

// StartHost creates a recorder, installs it as the process-wide active one,
// and hooks the internal/par engine so every executed tile range is
// recorded. Call StopHost to detach before writing the result.
func StartHost() *HostRecorder {
	rec := NewHostRecorder()
	active.Store(rec)
	par.SetRangeHook(func(lo, hi int) func() {
		return rec.Span("par-range", fmt.Sprintf("tiles[%d,%d)", lo, hi))
	})
	return rec
}

// StopHost detaches the active recorder (if any) and returns it. The
// recorder remains readable; recording simply stops.
func StopHost() *HostRecorder {
	par.SetRangeHook(nil)
	return active.Swap(nil)
}

// ActiveHost returns the recorder installed by StartHost, or nil.
func ActiveHost() *HostRecorder { return active.Load() }

// noopEnd is the shared closer HostSpan returns when tracing is off, so the
// disabled path performs no allocation.
var noopEnd = func() {}

// HostSpan opens a span on the active recorder and returns its closer. When
// host tracing is off it returns a shared no-op, so instrumented call sites
// (harness.run) can call it unconditionally.
func HostSpan(category, name string) func() {
	rec := active.Load()
	if rec == nil {
		return noopEnd
	}
	return rec.Span(category, name)
}

// Span records one wall-clock span: the lane is claimed now, the span's
// timestamps run from now until the returned closer is called, and the
// event is appended at close time. The closer must be called exactly once.
func (h *HostRecorder) Span(category, name string) func() {
	h.mu.Lock()
	lane := 0
	for lane < len(h.lanes) && h.lanes[lane] {
		lane++
	}
	if lane == len(h.lanes) {
		h.lanes = append(h.lanes, true)
	} else {
		h.lanes[lane] = true
	}
	if lane+1 > h.peak {
		h.peak = lane + 1
	}
	h.mu.Unlock()

	t0 := time.Now()
	return func() {
		dur := time.Since(t0)
		h.mu.Lock()
		h.events = append(h.events, Event{
			Name:     name,
			Category: category,
			Phase:    "X",
			TimeUS:   float64(t0.Sub(h.start).Nanoseconds()) / 1e3,
			DurUS:    float64(dur.Nanoseconds()) / 1e3,
			PID:      hostPID,
			TID:      lane + 1,
		})
		h.lanes[lane] = false
		h.mu.Unlock()
	}
}

// Len returns the number of completed spans recorded so far.
func (h *HostRecorder) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// Events returns a copy of the completed spans sorted by start time
// (metadata excluded).
func (h *HostRecorder) Events() []Event {
	h.mu.Lock()
	evs := append([]Event(nil), h.events...)
	h.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TimeUS < evs[j].TimeUS })
	return evs
}

// Write emits the host timeline as Chrome trace JSON: process/thread
// metadata first, then every span in ascending start-time order (events are
// buffered at span *end*, so sorting restores the monotonic order trace
// viewers expect).
func (h *HostRecorder) Write(w io.Writer) error {
	evs := h.Events()
	h.mu.Lock()
	peak := h.peak
	h.mu.Unlock()

	all := make([]Event, 0, len(evs)+peak+1)
	all = append(all, Event{
		Name: "process_name", Category: "__metadata", Phase: "M",
		PID: hostPID, Arguments: map[string]any{"name": "cubie host (real wall clock)"},
	})
	for lane := 1; lane <= peak; lane++ {
		all = append(all, Event{
			Name: "thread_name", Category: "__metadata", Phase: "M",
			PID: hostPID, TID: lane,
			Arguments: map[string]any{"name": fmt.Sprintf("lane-%02d", lane)},
		})
	}
	all = append(all, evs...)

	wrapper := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: all}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wrapper)
}
