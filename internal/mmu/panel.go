// Panel-level MMA execution engine.
//
// The tile-at-a-time entry points (DMMATile, BMMAAndPopc) pay three taxes on
// every 8×8×4 step: the C tile is re-loaded and re-stored through a slice,
// slice indexing carries bounds checks the compiler cannot always hoist, and
// a sharded metrics increment lands per 512 FLOPs. Real MMA pipelines — see
// Sun et al., "Dissecting Tensor Cores via Microbenchmarks", and the BLIS
// packing literature — win precisely by keeping the accumulator fragment
// register-resident across the whole k-sweep and staging operands once per
// panel. The functions in this file give the functional model the same
// structure on the host CPU:
//
//   - DMMAPanel     — c(8×8) += Σ_kt a_kt(8×4)·b_kt(4×8), accumulator held in
//     a fixed-size local across all k-tiles.
//   - DMMAPanelPair — the software-pipelined double-buffered variant the
//     cudaSample GEMM uses: even k-tiles accumulate into cEven, odd into cOdd.
//   - DMMABatch     — n independent c_i += a_i·b_i products with one metrics
//     update (the SpGEMM paired-product sweep).
//   - BMMAPanel     — a word-batched run of broadcast-B b1 MMAs over packed
//     uint64 words (the BerryBees pull sweep), one counter update per run.
//
// Bit-identity is preserved by construction: the accumulation order for each
// output element is the exact ascending-k FMA chain DMMATile performs, so the
// paper's TC ≡ CC contract (Table 6) and the parallel==serial determinism
// contract hold unchanged. TestDMMAPanelMatchesTileLoop and friends pin the
// equivalence bitwise; CUBIE_NO_PANEL=1 (or SetPanelEnabled(false)) routes
// every panel call through the tile-at-a-time loop for A/B verification.
package mmu

import (
	"math"
	"math/bits"
	"os"
	"sync/atomic"
	"unsafe"

	"repro/internal/tensor"
)

// PanelDisableEnv is the environment variable that, when set to "1", disables
// the fused panel fast paths: every panel call then executes as the
// equivalent loop of tile-at-a-time MMAs. Results are bit-identical either
// way; the switch exists so the equivalence stays testable end to end.
const PanelDisableEnv = "CUBIE_NO_PANEL"

// panelDisabled gates the fused fast paths. Atomic so tests can flip it
// while racing workers read it.
var panelDisabled atomic.Bool

func init() {
	panelDisabled.Store(os.Getenv(PanelDisableEnv) == "1")
}

// SetPanelEnabled enables or disables the fused panel fast paths and reports
// whether they were previously enabled. Tests use it to pin the panel and
// tile-loop paths bit-identical without re-execing the process.
func SetPanelEnabled(on bool) (was bool) {
	return !panelDisabled.Swap(!on)
}

// PanelEnabled reports whether the fused panel fast paths are active.
func PanelEnabled() bool { return !panelDisabled.Load() }

// panelBlock is the register-blocking depth of the DMMAPanel k-sweep: how
// many consecutive k-tiles each blocked micro-kernel pass fuses (1 = one
// tile per pass, 2 = the pair kernel, 4 = the quad kernel). All depths run
// the identical ascending-k FMA chain per output element, so the choice is
// performance-only — `cubie tune` calibrates it per host.
var panelBlock atomic.Int32

func init() { panelBlock.Store(2) }

// SetPanelBlock sets the DMMAPanel register-blocking depth and returns the
// previous one. Values snap to the supported depths: ≤1 → 1, ≥4 → 4,
// otherwise 2. Results are bit-identical at every depth (pinned by
// TestDMMAPanelBlockDepths).
func SetPanelBlock(depth int) (prev int) {
	switch {
	case depth <= 1:
		depth = 1
	case depth >= 4:
		depth = 4
	default:
		depth = 2
	}
	return int(panelBlock.Swap(int32(depth)))
}

// PanelBlock reports the active DMMAPanel register-blocking depth.
func PanelBlock() int { return int(panelBlock.Load()) }

// dmmaTileInto executes one 8×8×4 MMA step on array pointers with the
// accumulator resident: acc(8×8) += a(8×4)·b(4×8). Each output element's
// update is the ascending-k FMA chain of DMMATile — same operations, same
// order, no slice bounds checks.
func dmmaTileInto(acc *[M * N]float64, a *[M * K]float64, b *[K * N]float64) {
	for i := 0; i < M; i++ {
		a0, a1, a2, a3 := a[i*K], a[i*K+1], a[i*K+2], a[i*K+3]
		for j := 0; j < N; j++ {
			v := acc[i*N+j]
			v = math.FMA(a0, b[j], v)
			v = math.FMA(a1, b[N+j], v)
			v = math.FMA(a2, b[2*N+j], v)
			v = math.FMA(a3, b[3*N+j], v)
			acc[i*N+j] = v
		}
	}
}

// dmmaTilePairInto executes two consecutive 8×8×4 MMA steps with the
// accumulator loaded and stored once: acc(8×8) += a0(8×4)·b0(4×8) followed by
// a1(8×4)·b1(4×8). Each output element's update is the 8-FMA chain of
// dmmaTileInto on (a0,b0) then (a1,b1) — same operations, same order, so the
// fusion is bit-invisible — but the register-blocked sweep halves the
// accumulator load/store traffic of calling dmmaTileInto twice.
func dmmaTilePairInto(acc *[M * N]float64,
	a0, a1 *[M * K]float64, b0, b1 *[K * N]float64) {
	for i := 0; i < M; i++ {
		p0, p1, p2, p3 := a0[i*K], a0[i*K+1], a0[i*K+2], a0[i*K+3]
		q0, q1, q2, q3 := a1[i*K], a1[i*K+1], a1[i*K+2], a1[i*K+3]
		for j := 0; j < N; j++ {
			v := acc[i*N+j]
			v = math.FMA(p0, b0[j], v)
			v = math.FMA(p1, b0[N+j], v)
			v = math.FMA(p2, b0[2*N+j], v)
			v = math.FMA(p3, b0[3*N+j], v)
			v = math.FMA(q0, b1[j], v)
			v = math.FMA(q1, b1[N+j], v)
			v = math.FMA(q2, b1[2*N+j], v)
			v = math.FMA(q3, b1[3*N+j], v)
			acc[i*N+j] = v
		}
	}
}

// dmmaTileQuadInto executes four consecutive k-tiles of a double-buffered
// sweep in one register-blocked pass: tiles 0 and 2 of the packed quad
// accumulate into cE, tiles 1 and 3 into cO, exactly the even/odd assignment
// of the alternating DMMATile loop. Per accumulator element the FMA chain is
// ascending-k (tile 0 then 2 into cE, tile 1 then 3 into cO), so the fusion
// is bit-identical to four dmmaTileInto calls while touching each
// accumulator row once instead of four times.
func dmmaTileQuadInto(cE, cO *[M * N]float64,
	a *[4 * M * K]float64, b *[4 * K * N]float64) {
	for i := 0; i < M; i++ {
		e0, e1, e2, e3 := a[i*K], a[i*K+1], a[i*K+2], a[i*K+3]
		o0, o1, o2, o3 := a[M*K+i*K], a[M*K+i*K+1], a[M*K+i*K+2], a[M*K+i*K+3]
		f0, f1, f2, f3 := a[2*M*K+i*K], a[2*M*K+i*K+1], a[2*M*K+i*K+2], a[2*M*K+i*K+3]
		g0, g1, g2, g3 := a[3*M*K+i*K], a[3*M*K+i*K+1], a[3*M*K+i*K+2], a[3*M*K+i*K+3]
		for j := 0; j < N; j++ {
			ve := cE[i*N+j]
			ve = math.FMA(e0, b[j], ve)
			ve = math.FMA(e1, b[N+j], ve)
			ve = math.FMA(e2, b[2*N+j], ve)
			ve = math.FMA(e3, b[3*N+j], ve)
			ve = math.FMA(f0, b[2*K*N+j], ve)
			ve = math.FMA(f1, b[2*K*N+N+j], ve)
			ve = math.FMA(f2, b[2*K*N+2*N+j], ve)
			ve = math.FMA(f3, b[2*K*N+3*N+j], ve)
			cE[i*N+j] = ve
			vo := cO[i*N+j]
			vo = math.FMA(o0, b[K*N+j], vo)
			vo = math.FMA(o1, b[K*N+N+j], vo)
			vo = math.FMA(o2, b[K*N+2*N+j], vo)
			vo = math.FMA(o3, b[K*N+3*N+j], vo)
			vo = math.FMA(g0, b[3*K*N+j], vo)
			vo = math.FMA(g1, b[3*K*N+N+j], vo)
			vo = math.FMA(g2, b[3*K*N+2*N+j], vo)
			vo = math.FMA(g3, b[3*K*N+3*N+j], vo)
			cO[i*N+j] = vo
		}
	}
}

// dmmaTileQuad1Into executes four consecutive k-tiles into ONE resident
// accumulator: acc += a0·b0 + a1·b1 + a2·b2 + a3·b3, with each output
// element's update the 16-FMA ascending-k chain of calling dmmaTileInto four
// times — same operations, same order, so the deeper blocking is
// bit-invisible while touching each accumulator row once per four tiles.
// (dmmaTileQuadInto above is the double-buffered variant with two
// accumulators; this one serves single-accumulator DMMAPanel sweeps at
// blocking depth 4.)
func dmmaTileQuad1Into(acc *[M * N]float64,
	a *[4 * M * K]float64, b *[4 * K * N]float64) {
	for i := 0; i < M; i++ {
		p0, p1, p2, p3 := a[i*K], a[i*K+1], a[i*K+2], a[i*K+3]
		q0, q1, q2, q3 := a[M*K+i*K], a[M*K+i*K+1], a[M*K+i*K+2], a[M*K+i*K+3]
		f0, f1, f2, f3 := a[2*M*K+i*K], a[2*M*K+i*K+1], a[2*M*K+i*K+2], a[2*M*K+i*K+3]
		g0, g1, g2, g3 := a[3*M*K+i*K], a[3*M*K+i*K+1], a[3*M*K+i*K+2], a[3*M*K+i*K+3]
		for j := 0; j < N; j++ {
			v := acc[i*N+j]
			v = math.FMA(p0, b[j], v)
			v = math.FMA(p1, b[N+j], v)
			v = math.FMA(p2, b[2*N+j], v)
			v = math.FMA(p3, b[3*N+j], v)
			v = math.FMA(q0, b[K*N+j], v)
			v = math.FMA(q1, b[K*N+N+j], v)
			v = math.FMA(q2, b[K*N+2*N+j], v)
			v = math.FMA(q3, b[K*N+3*N+j], v)
			v = math.FMA(f0, b[2*K*N+j], v)
			v = math.FMA(f1, b[2*K*N+N+j], v)
			v = math.FMA(f2, b[2*K*N+2*N+j], v)
			v = math.FMA(f3, b[2*K*N+3*N+j], v)
			v = math.FMA(g0, b[3*K*N+j], v)
			v = math.FMA(g1, b[3*K*N+N+j], v)
			v = math.FMA(g2, b[3*K*N+2*N+j], v)
			v = math.FMA(g3, b[3*K*N+3*N+j], v)
			acc[i*N+j] = v
		}
	}
}

// checkPanels panics early (with a clearer message than the raw conversion)
// when the operand panels cannot cover kTiles tiles.
func checkPanels(aPanel, bPanel []float64, kTiles int) {
	if kTiles < 0 {
		panic("mmu: negative kTiles")
	}
	if len(aPanel) < kTiles*M*K || len(bPanel) < kTiles*K*N {
		panic("mmu: operand panels shorter than kTiles tiles")
	}
}

// DMMAPanel executes a full k-sweep of FP64 m8n8k4 MMAs on a packed panel:
// c(8×8) += Σ_{kt<kTiles} a_kt(8×4)·b_kt(4×8), where aPanel holds kTiles
// consecutive row-major 8×4 tiles and bPanel kTiles consecutive row-major
// 4×8 tiles. The accumulator stays resident in a fixed-size local across the
// whole sweep — the register-file residency real tensor-core pipelines rely
// on — and the sweep costs one batched metrics update instead of kTiles.
//
// The per-element accumulation order is exactly the ascending-k chain of
// calling DMMATile(c, aPanel[32kt:], bPanel[32kt:]) for kt = 0..kTiles-1, so
// results are bit-identical to the tile loop (pinned by
// TestDMMAPanelMatchesTileLoop).
func DMMAPanel(c, aPanel, bPanel []float64, kTiles int) {
	checkPanels(aPanel, bPanel, kTiles)
	if kTiles == 0 {
		return
	}
	if panelDisabled.Load() {
		for kt := 0; kt < kTiles; kt++ {
			DMMATile(c, aPanel[kt*M*K:(kt+1)*M*K], bPanel[kt*K*N:(kt+1)*K*N])
		}
		return
	}
	cc := (*[M * N]float64)(c)
	if kTiles == 1 {
		// Single-tile sweep: skip the local copy, run straight on c.
		dmmaTileInto(cc, (*[M * K]float64)(aPanel), (*[K * N]float64)(bPanel))
	} else {
		// The blocking depth (SetPanelBlock) picks how many k-tiles each
		// micro-kernel pass fuses; the remainder cascades through the
		// shallower kernels. Per element the FMA chain is ascending-k at
		// every depth, so the choice is bit-invisible.
		depth := int(panelBlock.Load())
		local := *cc
		kt := 0
		if depth >= 4 {
			for ; kt+3 < kTiles; kt += 4 {
				dmmaTileQuad1Into(&local,
					(*[4 * M * K]float64)(aPanel[kt*M*K:]),
					(*[4 * K * N]float64)(bPanel[kt*K*N:]))
			}
		}
		if depth >= 2 {
			for ; kt+1 < kTiles; kt += 2 {
				dmmaTilePairInto(&local,
					(*[M * K]float64)(aPanel[kt*M*K:]),
					(*[M * K]float64)(aPanel[(kt+1)*M*K:]),
					(*[K * N]float64)(bPanel[kt*K*N:]),
					(*[K * N]float64)(bPanel[(kt+1)*K*N:]))
			}
		}
		for ; kt < kTiles; kt++ {
			dmmaTileInto(&local,
				(*[M * K]float64)(aPanel[kt*M*K:]),
				(*[K * N]float64)(bPanel[kt*K*N:]))
		}
		*cc = local
	}
	h := hintOf(unsafe.Pointer(cc))
	metDMMATiles.AddAt(h, uint64(kTiles))
	metDMMAPanels.AddAt(h, 1)
	// Operand staging traffic: one A and one B fragment per k-tile, plus the
	// panel-resident C fragment load + store.
	AddFragmentOps(2*kTiles + 2)
}

// DMMAPanelPair executes the software-pipelined double-buffered k-sweep of
// the cudaSample GEMM: even-indexed k-tiles accumulate into cEven, odd ones
// into cOdd, both accumulators resident across the sweep. Summing
// cEven+cOdd afterwards reproduces the two-accumulator rounding behaviour
// Table 6 depends on; each accumulator's chain is the ascending order of the
// alternating DMMATile loop (pinned by TestDMMAPanelPairMatchesTileLoop).
func DMMAPanelPair(cEven, cOdd, aPanel, bPanel []float64, kTiles int) {
	checkPanels(aPanel, bPanel, kTiles)
	if kTiles == 0 {
		return
	}
	if panelDisabled.Load() {
		for kt := 0; kt < kTiles; kt++ {
			dst := cEven
			if kt%2 == 1 {
				dst = cOdd
			}
			DMMATile(dst, aPanel[kt*M*K:(kt+1)*M*K], bPanel[kt*K*N:(kt+1)*K*N])
		}
		return
	}
	ce := (*[M * N]float64)(cEven)
	co := (*[M * N]float64)(cOdd)
	localE, localO := *ce, *co
	kt := 0
	for ; kt+3 < kTiles; kt += 4 {
		dmmaTileQuadInto(&localE, &localO,
			(*[4 * M * K]float64)(aPanel[kt*M*K:]),
			(*[4 * K * N]float64)(bPanel[kt*K*N:]))
	}
	// Remainder tiles keep the even/odd assignment and ascending-k order of
	// the alternating tile loop: kt→E, kt+1→O, kt+2→E.
	switch kTiles - kt {
	case 1:
		dmmaTileInto(&localE,
			(*[M * K]float64)(aPanel[kt*M*K:]),
			(*[K * N]float64)(bPanel[kt*K*N:]))
	case 2:
		dmmaTileInto(&localE,
			(*[M * K]float64)(aPanel[kt*M*K:]),
			(*[K * N]float64)(bPanel[kt*K*N:]))
		dmmaTileInto(&localO,
			(*[M * K]float64)(aPanel[(kt+1)*M*K:]),
			(*[K * N]float64)(bPanel[(kt+1)*K*N:]))
	case 3:
		dmmaTilePairInto(&localE,
			(*[M * K]float64)(aPanel[kt*M*K:]),
			(*[M * K]float64)(aPanel[(kt+2)*M*K:]),
			(*[K * N]float64)(bPanel[kt*K*N:]),
			(*[K * N]float64)(bPanel[(kt+2)*K*N:]))
		dmmaTileInto(&localO,
			(*[M * K]float64)(aPanel[(kt+1)*M*K:]),
			(*[K * N]float64)(bPanel[(kt+1)*K*N:]))
	}
	*ce, *co = localE, localO
	h := hintOf(unsafe.Pointer(ce))
	metDMMATiles.AddAt(h, uint64(kTiles))
	metDMMAPanels.AddAt(h, 1)
	AddFragmentOps(2*kTiles + 4) // A+B per tile, two C fragments in and out
}

// DMMABatch executes n independent FP64 m8n8k4 MMAs from packed panels:
// c_i(8×8) += a_i(8×4)·b_i(4×8) for i = 0..n-1, with cPanel holding n
// consecutive 8×8 tiles. Products are independent (nothing is fused across
// i), so each result is bit-identical to DMMATile on the same operands; the
// batch costs one metrics update and runs on bounds-check-free array
// pointers. SpGEMM uses it for its paired-product queue.
func DMMABatch(cPanel, aPanel, bPanel []float64, n int) {
	checkPanels(aPanel, bPanel, n)
	if n == 0 {
		return
	}
	if len(cPanel) < n*M*N {
		panic("mmu: DMMABatch accumulator panel shorter than n tiles")
	}
	if panelDisabled.Load() {
		for i := 0; i < n; i++ {
			DMMATile(cPanel[i*M*N:(i+1)*M*N], aPanel[i*M*K:(i+1)*M*K], bPanel[i*K*N:(i+1)*K*N])
		}
		return
	}
	for i := 0; i < n; i++ {
		dmmaTileInto(
			(*[M * N]float64)(cPanel[i*M*N:]),
			(*[M * K]float64)(aPanel[i*M*K:]),
			(*[K * N]float64)(bPanel[i*K*N:]))
	}
	h := hintOf(unsafe.Pointer(&cPanel[0]))
	metDMMATiles.AddAt(h, uint64(n))
	metDMMAPanels.AddAt(h, 1)
	AddFragmentOps(4 * n) // A, B, C-in, C-out per product
}

// PackA packs the leading 8 rows of a row-major operand into kTiles
// consecutive 8×4 MMA A tiles: tile t covers source columns 4t..4t+3. src
// must have at least M rows of the given stride and 4·kTiles columns. This is
// the panel-layout shim for operands that are not tensor.Matrix values
// (stencil line gathers, the 8×8 scan/reduction stages). The pack itself is
// tensor.PackARows, the single stride-aware bulk helper shared with
// Matrix.PackAPanel and the packed-panel cache.
func PackA(dst, src []float64, stride, kTiles int) {
	if stride < kTiles*K {
		panic("mmu: PackA stride shorter than packed columns")
	}
	if len(dst) < kTiles*M*K {
		panic("mmu: PackA destination too small")
	}
	if len(src) < (M-1)*stride+kTiles*K {
		panic("mmu: PackA source too small")
	}
	tensor.PackARows(dst, src, stride, kTiles)
}

// BMMAPanel executes a run of single-bit broadcast-B m8n8k128 AND+POPC MMAs
// — the BerryBees pull-sweep inner loop — directly on packed uint64 words.
// For each stored block i, the 128-bit frontier segment selected by
// colSegs[i] (words frontier[2·seg], frontier[2·seg+1], zero beyond the end)
// forms every column of the B operand; blocks whose segment is all zero are
// skipped, exactly like the tile-at-a-time callers did. For executed blocks
// the consumed column-0 popcounts accumulate into rowHits:
//
//	rowHits[r] += Σ_w popcount(frags[i][r][w] AND seg[w])
//
// which is bit-for-bit what BMMAAndPopc produces in column 0 of its 8×8
// output under a broadcast B (pinned by TestBMMAPanelMatchesAndPopc). The
// whole run costs one metrics update; the return value is the number of MMAs
// executed (the skip count is len(frags) minus the return).
func BMMAPanel(rowHits *[BitM]int32, frags []BitFragA, colSegs []int32, frontier []uint64) int {
	if len(colSegs) < len(frags) {
		panic("mmu: BMMAPanel colSegs shorter than frags")
	}
	if panelDisabled.Load() {
		return bmmaPanelTileLoop(rowHits, frags, colSegs, frontier)
	}
	executed := 0
	for i := range frags {
		base := int(colSegs[i]) * BitWordsPerRow
		var seg0, seg1 uint64
		if base < len(frontier) {
			seg0 = frontier[base]
		}
		if base+1 < len(frontier) {
			seg1 = frontier[base+1]
		}
		if seg0 == 0 && seg1 == 0 {
			continue
		}
		executed++
		a := &frags[i]
		for r := 0; r < BitM; r++ {
			rowHits[r] += int32(bits.OnesCount64(a[r][0]&seg0) +
				bits.OnesCount64(a[r][1]&seg1))
		}
	}
	if executed > 0 {
		metBMMAOps.AddAt(hintOf(unsafe.Pointer(rowHits)), uint64(executed))
	}
	return executed
}

// bmmaPanelTileLoop is the CUBIE_NO_PANEL reference path: the literal
// broadcast-B BMMAAndPopc loop the kernels executed before the panel engine.
func bmmaPanelTileLoop(rowHits *[BitM]int32, frags []BitFragA, colSegs []int32, frontier []uint64) int {
	var b BitFragB
	var c BitFragC
	executed := 0
	for i := range frags {
		base := int(colSegs[i]) * BitWordsPerRow
		var seg0, seg1 uint64
		if base < len(frontier) {
			seg0 = frontier[base]
		}
		if base+1 < len(frontier) {
			seg1 = frontier[base+1]
		}
		if seg0 == 0 && seg1 == 0 {
			continue
		}
		executed++
		for col := 0; col < BitN; col++ {
			b[col][0], b[col][1] = seg0, seg1
		}
		for j := range c {
			c[j] = 0
		}
		BMMAAndPopc(&c, &frags[i], &b)
		for r := 0; r < BitM; r++ {
			rowHits[r] += c[r*BitN]
		}
	}
	return executed
}
