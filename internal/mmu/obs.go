package mmu

// MMA-layer instrumentation. These are the hottest counters in the suite —
// one increment per executed MMA tile — so they use sharded counters whose
// shard is picked from the output tile's address: concurrent internal/par
// workers process disjoint tiles and therefore land on (mostly) disjoint
// cache lines, keeping the per-tile cost to a single uncontended atomic
// add. FLOP totals are derivable (tiles × FLOPsPerDMMA, ops × OpsPerBMMA),
// so only call counts are kept.

import (
	"unsafe"

	"repro/internal/metrics"
)

var (
	metDMMATiles = metrics.NewShardedCounter("cubie_mmu_dmma_tiles_total",
		"FP64 m8n8k4 MMA tile executions (TC and CC variants both route here; ×512 for FLOPs).")
	metDMMAWarps = metrics.NewShardedCounter("cubie_mmu_dmma_warps_total",
		"FP64 m8n8k4 MMAs executed on explicit warp-register fragments.")
	metBMMAOps = metrics.NewShardedCounter("cubie_mmu_bmma_ops_total",
		"Single-bit m8n8k128 AND+POPC MMA executions (×2048 for bit ops).")
	metDMMAPanels = metrics.NewShardedCounter("cubie_mmu_dmma_panels_total",
		"Fused panel k-sweeps executed (DMMAPanel/DMMAPanelPair/DMMABatch calls).")
	metFragmentOps = metrics.NewShardedCounter("cubie_mmu_fragment_ops_total",
		"Warp fragment load/store operations (FragA/FragB/FragC traffic).")
)

// AddFragmentOps records n fragment load/store operations in one batched
// metrics update. The panel engine uses it to account a whole k-sweep's
// operand staging (2 fragments per k-tile plus the resident accumulator's
// load and store) with a single atomic add; explicit fragment users go
// through the same entry point via the Frag Load/Store methods.
func AddFragmentOps(n int) {
	if n > 0 {
		metFragmentOps.Add(uint64(n))
	}
}

// hintOf derives a shard hint from a pointer without retaining it.
func hintOf(p unsafe.Pointer) uintptr { return uintptr(p) }
