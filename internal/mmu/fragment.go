// Package mmu implements the functional semantics of matrix multiply-
// accumulate (MMA) instructions as exposed by NVIDIA FP64 tensor cores, the
// representative matrix multiplication unit (MMU) the paper characterizes.
//
// Two instructions are modeled:
//
//   - DMMA: mma.m8n8k4 on FP64 — C(8×8) += A(8×4) · B(4×8), executed
//     cooperatively by one 32-thread warp with the PTX-documented fragment
//     ownership, and with a fixed per-element accumulation order (a chain of
//     fused multiply-adds over k = 0..3). This fixed order is what makes the
//     paper's TC and CC variants bit-identical (Table 6): the CC variant
//     replays the exact same FMA chain on the vector unit.
//
//   - BMMA: mma.m8n8k128 on single-bit operands — C(8×8, int32) +=
//     popcount(A(8×128) AND B(128×8)), the instruction BerryBees BFS uses.
//
// The package is purely functional: it computes results. Cost accounting
// (cycles, bytes, power) is the job of package sim.
package mmu

// Shapes of the FP64 DMMA instruction.
const (
	M = 8 // rows of A and C
	N = 8 // cols of B and C
	K = 4 // cols of A, rows of B

	WarpSize = 32
)

// AElement returns the (row, col) of the A-fragment element owned by warp
// lane t for the FP64 m8n8k4 MMA, per the PTX ISA fragment layout: each lane
// holds exactly one A element at row = t/4, col = t%4.
func AElement(t int) (row, col int) { return t / 4, t % 4 }

// BElement returns the (row, col) of the B-fragment element owned by lane t:
// row = t%4, col = t/4.
func BElement(t int) (row, col int) { return t % 4, t / 4 }

// CElements returns the two (row, col) pairs of the C-fragment elements owned
// by lane t: row = t/4, cols = 2*(t%4) and 2*(t%4)+1.
func CElements(t int) (row, col0, col1 int) {
	return t / 4, 2 * (t % 4), 2*(t%4) + 1
}

// FragA is the per-warp register state for an A operand: one FP64 per lane.
type FragA [WarpSize]float64

// FragB is the per-warp register state for a B operand: one FP64 per lane.
type FragB [WarpSize]float64

// FragC is the per-warp register state for a C accumulator: two FP64 per lane.
type FragC [2 * WarpSize]float64

// LoadA fills the fragment from an 8×4 row-major tile (stride 4).
func (f *FragA) Load(tile []float64) {
	AddFragmentOps(1)
	for t := 0; t < WarpSize; t++ {
		r, c := AElement(t)
		f[t] = tile[r*K+c]
	}
}

// Load fills the fragment from a 4×8 row-major tile (stride 8).
func (f *FragB) Load(tile []float64) {
	AddFragmentOps(1)
	for t := 0; t < WarpSize; t++ {
		r, c := BElement(t)
		f[t] = tile[r*N+c]
	}
}

// Load fills the fragment from an 8×8 row-major tile (stride 8).
func (f *FragC) Load(tile []float64) {
	AddFragmentOps(1)
	for t := 0; t < WarpSize; t++ {
		r, c0, c1 := CElements(t)
		f[2*t] = tile[r*N+c0]
		f[2*t+1] = tile[r*N+c1]
	}
}

// Store writes the fragment back to an 8×8 row-major tile (stride 8).
func (f *FragC) Store(tile []float64) {
	AddFragmentOps(1)
	for t := 0; t < WarpSize; t++ {
		r, c0, c1 := CElements(t)
		tile[r*N+c0] = f[2*t]
		tile[r*N+c1] = f[2*t+1]
	}
}

// Zero clears the accumulator fragment.
func (f *FragC) Zero() {
	for i := range f {
		f[i] = 0
	}
}
