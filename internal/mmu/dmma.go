package mmu

import (
	"math"
	"unsafe"
)

// FLOPsPerDMMA is the floating-point operation count of one FP64 m8n8k4 MMA
// (8·8·4 multiplies plus as many adds).
const FLOPsPerDMMA = 2 * M * N * K

// DMMAWarp executes one FP64 m8n8k4 MMA on warp-register fragments:
// d = a·b + c. The accumulation for each output element is the fixed FMA
// chain over k = 0..3 — the deterministic dot-product order the tensor core
// datapath applies. d and c may alias.
func DMMAWarp(d, c *FragC, a *FragA, b *FragB) {
	metDMMAWarps.IncAt(hintOf(unsafe.Pointer(d)))
	// Gather operands into matrix form. On hardware this is the implicit
	// cross-lane operand exchange inside the tensor core.
	var am [M][K]float64
	var bm [K][N]float64
	for t := 0; t < WarpSize; t++ {
		ar, ac := AElement(t)
		am[ar][ac] = a[t]
		br, bc := BElement(t)
		bm[br][bc] = b[t]
	}
	for t := 0; t < WarpSize; t++ {
		r, c0, c1 := CElements(t)
		d[2*t] = dot4(am[r][:], bm[:], c0, c[2*t])
		d[2*t+1] = dot4(am[r][:], bm[:], c1, c[2*t+1])
	}
}

// dot4 computes acc + Σ_{k<4} a[k]·b[k][col] as a chain of fused
// multiply-adds in ascending k order.
func dot4(a []float64, b [][N]float64, col int, acc float64) float64 {
	for k := 0; k < K; k++ {
		acc = math.FMA(a[k], b[k][col], acc)
	}
	return acc
}

// DMMATile executes one FP64 m8n8k4 MMA directly on row-major tiles:
// c(8×8) += a(8×4)·b(4×8). It is semantically identical to loading
// fragments, calling DMMAWarp, and storing the result — the kernels use this
// convenience form, and TestDMMATileMatchesWarp pins the equivalence.
func DMMATile(c, a, b []float64) {
	metDMMATiles.IncAt(hintOf(unsafe.Pointer(&c[0])))
	for i := 0; i < M; i++ {
		for j := 0; j < N; j++ {
			acc := c[i*N+j]
			for k := 0; k < K; k++ {
				acc = math.FMA(a[i*K+k], b[k*N+j], acc)
			}
			c[i*N+j] = acc
		}
	}
}

// VectorDMMATile is the CUDA-core replacement of DMMATile: the exact same
// algorithm and accumulation order executed as scalar FMA instructions on
// the vector unit. It is intentionally the same arithmetic — the paper's CC
// variants "implement the exact same algorithm as TC but using CUDA core
// instructions", and Table 6 shows they produce identical FP64 results.
func VectorDMMATile(c, a, b []float64) {
	DMMATile(c, a, b)
}

// FMA exposes the scalar fused multiply-add used for CUDA-core arithmetic.
func FMA(x, y, z float64) float64 { return math.FMA(x, y, z) }
